// Benchmarks: one per reproduced table/figure (E1-E12; see EXPERIMENTS.md)
// plus micro-benchmarks of the migration mechanism itself. Each experiment
// bench runs its driver and reports the headline simulated-time metrics via
// b.ReportMetric; run with -v to see the full reproduced tables.
package sprite_test

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"sprite/internal/core"
	"sprite/internal/experiments"
	"sprite/internal/sim"
)

// benchConfig keeps experiment benches fast and deterministic.
func benchConfig() experiments.Config {
	return experiments.Config{Seed: 42, Quick: true}
}

// runExperiment executes one experiment driver b.N times, logging the final
// table.
func runExperiment(b *testing.B, id string) *experiments.Table {
	b.Helper()
	r := experiments.Find(id)
	if r == nil {
		b.Fatalf("no experiment %s", id)
	}
	var tbl *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = r.Run(benchConfig())
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	b.Logf("\n%s", tbl)
	return tbl
}

func BenchmarkE1MigrationBreakdown(b *testing.B) {
	tbl := runExperiment(b, "E1")
	reportCell(b, tbl, 0, 2, "base-migration-sim-ms")
}

func BenchmarkE2RemoteExec(b *testing.B) {
	tbl := runExperiment(b, "E2")
	reportCell(b, tbl, 1, 2, "remote-exec-sim-ms")
}

func BenchmarkE3VMStrategies(b *testing.B) {
	tbl := runExperiment(b, "E3")
	reportCell(b, tbl, 0, 3, "sprite-flush-freeze-sim-ms")
}

func BenchmarkE4Forwarding(b *testing.B) {
	tbl := runExperiment(b, "E4")
	reportCell(b, tbl, 1, 3, "forwarded-gettimeofday-sim-us")
}

func BenchmarkE5PmakeSpeedup(b *testing.B) {
	tbl := runExperiment(b, "E5")
	reportCell(b, tbl, len(tbl.Rows)-1, 2, "speedup-at-max-hosts")
}

func BenchmarkE6Utilization(b *testing.B) {
	tbl := runExperiment(b, "E6")
	reportCell(b, tbl, 0, 5, "simulations-utilization-pct")
}

func BenchmarkE7SelectionLatency(b *testing.B) {
	tbl := runExperiment(b, "E7")
	reportCell(b, tbl, 0, 1, "central-select-release-sim-ms")
}

func BenchmarkE8SelectionArchitectures(b *testing.B) {
	runExperiment(b, "E8")
}

func BenchmarkE9Eviction(b *testing.B) {
	tbl := runExperiment(b, "E9")
	reportCell(b, tbl, len(tbl.Rows)-1, 1, "reclaim-sim-ms")
}

func BenchmarkE10IdleFraction(b *testing.B) {
	tbl := runExperiment(b, "E10")
	reportCell(b, tbl, 0, 1, "day-idle-pct")
}

func BenchmarkE11PlacementVsMigration(b *testing.B) {
	tbl := runExperiment(b, "E11")
	reportCell(b, tbl, 1, 2, "placement-mean-completion-s")
}

func BenchmarkE12SyscallTable(b *testing.B) {
	runExperiment(b, "E12")
}

func BenchmarkE13RemotePenalty(b *testing.B) {
	tbl := runExperiment(b, "E13")
	reportCell(b, tbl, 2, 3, "home-call-slowdown-pct")
}

func BenchmarkE14DayInTheLife(b *testing.B) {
	runExperiment(b, "E14")
}

// reportCell publishes one numeric table cell as a benchmark metric.
func reportCell(b *testing.B, tbl *experiments.Table, row, col int, unit string) {
	b.Helper()
	if row >= len(tbl.Rows) || col >= len(tbl.Rows[row]) {
		b.Fatalf("no cell (%d,%d) in %s", row, col, tbl.ID)
	}
	s := strings.TrimSuffix(tbl.Rows[row][col], "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return // non-numeric cell: skip the metric, keep the table log
	}
	b.ReportMetric(v, unit)
}

// --- micro-benchmarks of the mechanism itself ---

// BenchmarkMicroMigration measures the real (host) cost of simulating one
// full migration, and reports the simulated migration latency.
func BenchmarkMicroMigration(b *testing.B) {
	var simTotal time.Duration
	for i := 0; i < b.N; i++ {
		c, err := core.NewCluster(core.Options{Workstations: 2, FileServers: 1, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.SeedBinary("/bin/prog", 64<<10); err != nil {
			b.Fatal(err)
		}
		src, dst := c.Workstation(0), c.Workstation(1)
		c.Boot("boot", func(env *sim.Env) error {
			p, err := src.StartProcess(env, "m", func(ctx *core.Ctx) error {
				if err := ctx.TouchHeap(0, 16, true); err != nil {
					return err
				}
				return ctx.Migrate(dst.Host())
			}, core.ProcConfig{Binary: "/bin/prog", CodePages: 4, HeapPages: 16, StackPages: 2})
			if err != nil {
				return err
			}
			_, err = p.Exited().Wait(env)
			return err
		})
		if err := c.Run(0); err != nil {
			b.Fatal(err)
		}
		recs := c.MigrationRecords()
		simTotal += recs[0].Total
	}
	b.ReportMetric(float64(simTotal.Milliseconds())/float64(b.N), "sim-ms/migration")
}

// BenchmarkMicroSimulatorThroughput measures raw simulator event throughput
// (CPU quanta processed per second of host time).
func BenchmarkMicroSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New(1)
		cpu := sim.NewCPU(s, 10*time.Millisecond)
		for j := 0; j < 8; j++ {
			s.Spawn("burn", func(env *sim.Env) error {
				return cpu.Compute(env, 10*time.Second)
			})
		}
		if err := s.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}
