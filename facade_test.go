// Facade API tests: lock down the public surface the examples and any
// downstream user depend on.
package sprite_test

import (
	"errors"
	"testing"
	"time"

	"sprite"
	"sprite/internal/experiments"
	"sprite/internal/sim"
)

func TestFacadeErrorsMatch(t *testing.T) {
	c := newFacadeCluster(t, 2, nil)
	dst := c.Workstation(1)
	var merr error
	c.Boot("boot", func(env *sim.Env) error {
		p, err := c.Workstation(0).StartProcess(env, "shared", func(ctx *sprite.Ctx) error {
			ctx.Process().SetShared(true)
			merr = ctx.Migrate(dst.Host())
			return nil
		}, sprite.ProcConfig{Binary: "/bin/prog", CodePages: 2, HeapPages: 4, StackPages: 1})
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(merr, sprite.ErrNotMigratable) {
		t.Fatalf("err = %v, want facade ErrNotMigratable", merr)
	}
}

func TestFacadeSyscallTableExposed(t *testing.T) {
	if got := sprite.SyscallTable["gettimeofday"]; got != sprite.PolicyHome {
		t.Fatalf("gettimeofday policy = %v", got)
	}
	if got := sprite.SyscallTable["read"]; got != sprite.PolicyFile {
		t.Fatalf("read policy = %v", got)
	}
}

func TestFacadeSignalsExposed(t *testing.T) {
	c := newFacadeCluster(t, 1, nil)
	k := c.Workstation(0)
	caught := false
	c.Boot("boot", func(env *sim.Env) error {
		p, err := k.StartProcess(env, "sig", func(ctx *sprite.Ctx) error {
			if err := ctx.SigVec(sprite.SigUser2, func(cc *sprite.Ctx, s sprite.Signal) error {
				caught = true
				return nil
			}); err != nil {
				return err
			}
			return ctx.Compute(2 * time.Second)
		}, sprite.ProcConfig{Binary: "/bin/prog", CodePages: 2, HeapPages: 4, StackPages: 1})
		if err != nil {
			return err
		}
		if err := env.Sleep(time.Second); err != nil {
			return err
		}
		sender, err := k.StartProcess(env, "send", func(ctx *sprite.Ctx) error {
			return ctx.SendSignal(p.PID(), sprite.SigUser2)
		}, sprite.ProcConfig{Binary: "/bin/prog", CodePages: 2, HeapPages: 4, StackPages: 1})
		if err != nil {
			return err
		}
		if _, err := sender.Exited().Wait(env); err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if !caught {
		t.Fatal("facade signal handler never ran")
	}
}

func TestFacadeRejectsZeroWorkstations(t *testing.T) {
	if _, err := sprite.NewCluster(sprite.Options{}); err == nil {
		t.Fatal("expected error for zero workstations")
	}
}

func TestConcurrentMigrationRequestsRejected(t *testing.T) {
	c := newFacadeCluster(t, 3, nil)
	d1, d2 := c.Workstation(1), c.Workstation(2)
	c.Boot("boot", func(env *sim.Env) error {
		p, err := c.Workstation(0).StartProcess(env, "busy", func(ctx *sprite.Ctx) error {
			return ctx.Compute(5 * time.Second)
		}, sprite.ProcConfig{Binary: "/bin/prog", CodePages: 2, HeapPages: 4, StackPages: 1})
		if err != nil {
			return err
		}
		first := c.Workstation(0).RequestMigration(p, d1, "a")
		second := c.Workstation(0).RequestMigration(p, d2, "b")
		if _, err := first.Wait(env); err != nil {
			t.Errorf("first request failed: %v", err)
		}
		if _, err := second.Wait(env); !errors.Is(err, sprite.ErrNotMigratable) {
			t.Errorf("second request err = %v, want ErrNotMigratable", err)
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestTableColumnsConsistent(t *testing.T) {
	// Every experiment table row must have exactly len(Columns) cells.
	for _, id := range []string{"E12", "E13"} {
		r := experiments.Find(id)
		tbl, err := r.Run(experiments.Config{Seed: 42, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		for i, row := range tbl.Rows {
			if len(row) != len(tbl.Columns) {
				t.Errorf("%s row %d has %d cells, want %d", id, i, len(row), len(tbl.Columns))
			}
		}
	}
}
