# Convenience targets for the Sprite process-migration reproduction.

GO ?= go

.PHONY: all build vet test race cover bench experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The simulator parks goroutines and hands control across channels, so the
# race detector is the test that the one-activity-at-a-time discipline holds.
race:
	$(GO) test -race ./...

# Minimum total coverage enforced; raise as the suite grows.
COVER_MIN ?= 60
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -1
	@total=$$($(GO) tool cover -func=coverage.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	ok=$$(awk -v t="$$total" -v m="$(COVER_MIN)" 'BEGIN{print (t>=m)?"yes":"no"}'); \
	if [ "$$ok" != "yes" ]; then \
		echo "coverage $$total% is below the $(COVER_MIN)% floor"; exit 1; \
	fi

# One benchmark iteration per reproduced table/figure plus ablations.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Regenerate every reproduced table (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/spritesim -all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pmake
	$(GO) run ./examples/eviction
	$(GO) run ./examples/loadsharing
	$(GO) run ./examples/ipc

clean:
	$(GO) clean ./...
