# Convenience targets for the Sprite process-migration reproduction.

GO ?= go

.PHONY: all build vet lint test race race-confined cover bench bench-baseline bench-wallclock chaos chaos-confined shootout shootout-confined fleet scale experiments examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# spritelint (DESIGN.md §11, §16): the project's own go/analysis-style
# suite — six intraprocedural analyzers (walltime, globalrand, maporder,
# failpointreg, metricname, shardedstate) plus the interprocedural tier
# (simtaint, confine, sharded) built on whole-tree function summaries —
# run over the whole tree. Built once into bin/ so repeated runs reuse
# the build cache; the whole-tree pattern also enables the
# dead-failpoint audit and the stale-allow audit (-deadallow).
lint:
	$(GO) build -o bin/spritelint ./cmd/spritelint
	./bin/spritelint -deadallow ./...

# Dump the SCC-condensed whole-tree call graph the interprocedural
# analyzers run over (DESIGN.md §16) — one line per function with its
# resolved callees — for offline inspection of why a summary converged
# the way it did.
lint-graph:
	$(GO) build -o bin/spritelint ./cmd/spritelint
	./bin/spritelint -graph ./...

test:
	$(GO) test ./...

# The simulator parks goroutines and hands control across channels, so the
# race detector is the test that the one-activity-at-a-time discipline holds.
# The second leg reruns the cross-shard suites — chaos, churn, fuzz,
# cluster, and the kernel's own stress tests — with the conservative
# parallel kernel enabled (SPRITE_SIM_PARALLEL): worker handoffs, mailbox
# delivery, and sharded metrics cells must be clean under the race detector
# at every worker count, not just logically equivalent.
race:
	$(GO) test -race ./...
	SPRITE_SIM_PARALLEL=4 $(GO) test -race ./internal/sim ./internal/core ./internal/fault ./internal/recovery ./internal/hostsel
	$(MAKE) race-confined

# Confined-hosts leg (DESIGN.md §14): the suites written for the confined
# contract — migration equivalence across all four strategies, the
# cross-host RPC storm, the frozen golden, and the contract panics — under
# the race detector with the parallel kernel forced. SPRITE_SIM_CONFINE=1
# additionally exercises the env opt-in path; it is scoped to these suites
# by name because confined clusters reject crashes and migration aborts.
race-confined:
	SPRITE_SIM_PARALLEL=4 SPRITE_SIM_CONFINE=1 $(GO) test -race -run 'TestConfined' -v ./internal/core

# Minimum total coverage enforced; raise as the suite grows.
COVER_MIN ?= 60
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -1
	@total=$$($(GO) tool cover -func=coverage.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	ok=$$(awk -v t="$$total" -v m="$(COVER_MIN)" 'BEGIN{print (t>=m)?"yes":"no"}'); \
	if [ "$$ok" != "yes" ]; then \
		echo "coverage $$total% is below the $(COVER_MIN)% floor"; exit 1; \
	fi

# Benchmarks, in two parts:
#   1. Go micro-benchmarks across the tree, benchstat-compatible (pipe two
#      runs through `benchstat old.txt new.txt` to compare).
#   2. The migration macro-benchmark, emitting BENCH_migration.json and
#      failing on a >20% total-time regression against the checked-in
#      baseline (bench/BENCH_migration.json). Virtual time is
#      deterministic, so the gate is exact, not statistical.
BENCH_BASELINE ?= bench/BENCH_migration.json
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./... | tee bench.txt
	$(GO) run ./cmd/migbench -out BENCH_migration.json -baseline $(BENCH_BASELINE)

# Refresh the checked-in migration baseline (run after intentional
# performance changes, and commit the result).
bench-baseline:
	$(GO) run ./cmd/migbench -out $(BENCH_BASELINE)

# Wall-clock benchmarks of the simulator, RPC, VM, and metrics hot paths —
# the code whose real (not virtual) speed bounds how fast experiments run.
# Repeated runs (BENCH_COUNT) make the output benchstat-ready: save one
# run, make a change, run again, and `benchstat old.txt
# bench-wallclock.txt`. BenchmarkParallelKernel (sim) and
# BenchmarkRegistryParallel (metrics) are the parallel kernel's speedup and
# contention evidence; E17 then measures the same end to end and emits the
# BENCH_wallclock.json CI artifact (committed reference: bench/).
BENCH_COUNT ?= 6
bench-wallclock:
	$(GO) test -run '^$$' -bench=. -benchmem -count=$(BENCH_COUNT) \
		./internal/sim ./internal/rpc ./internal/vm ./internal/metrics | tee bench-wallclock.txt
	$(GO) run ./cmd/spritesim -experiment E17 -wallclock-snapshot BENCH_wallclock.json

# Crash-storm chaos suite (DESIGN.md §10) under the race detector: every
# migration strategy in both batch modes survives a storm of host crashes
# and instant reboots with all jobs completing and invariants green. Emits
# RECOVERY_metrics.json — per-configuration recovery counters — plus the
# recovery demo's full metrics snapshot for the CI artifact.
chaos:
	SPRITE_CHAOS_SNAPSHOT=$(CURDIR)/RECOVERY_metrics.json SPRITE_SIM_PARALLEL=4 \
		$(GO) test -race -run 'TestCrashStorm|TestCrashAnyHostAtAnyFailpoint|TestGoldenCrashScenarios' -v ./internal/recovery
	$(GO) run ./cmd/spritesim -experiment E15 -recovery-snapshot RECOVERY_demo.json
	$(MAKE) chaos-confined

# The confined counterpart of the chaos storm: crashes are off the table
# under host confinement (the guards panic), so the stress here is traffic —
# the cross-host RPC storm over all four strategies plus the contract
# panics, racing at 4 workers.
chaos-confined:
	SPRITE_SIM_PARALLEL=4 $(GO) test -race -run 'TestConfinedCrossHostStorm|TestConfinedContract' -v ./internal/core

# Host-selection churn suite (DESIGN.md §12) under the race detector —
# reboot storms, flapping, and partitions against all four selector
# architectures, audited by the claim ledger — plus the load-vector
# property tests and the misplacement-rate gate against
# bench/BENCH_hostsel.json. Then the full-scale E16 shoot-out, emitting
# HOSTSEL_shootout.json for the CI artifact.
shootout:
	SPRITE_SIM_PARALLEL=4 $(GO) test -race -run 'Churn|Gossip|LoadVector|Merge|Decay|VectorBound|EvictionHint|EpochAdvance|NewestHalf|RebootReleases' -v ./internal/hostsel
	SPRITE_SIM_PARALLEL=4 $(GO) test -race -run 'GossipMisplaceGate' ./internal/experiments
	$(GO) run ./cmd/spritesim -experiment E16 -hostsel-snapshot HOSTSEL_shootout.json
	$(MAKE) shootout-confined

# Confined-hosts leg: E17's migration-heavy workload must commit the same
# order at every worker count with the whole RPC/FS/migration plane
# shard-confined.
shootout-confined:
	SPRITE_SIM_PARALLEL=4 $(GO) test -race -run 'TestE17MigrationDigestsAgree' -v ./internal/experiments

# Fleet-management chaos suite (DESIGN.md §15): the drain state machine's
# transition matrix, the 50-seed eviction-storm fuzz family (drain-safety
# audit + shrinking), and the serial-vs-parallel kernel equivalence check,
# all under the race detector with the parallel kernel enabled; then the
# fleet economy gate against bench/BENCH_fleet.json and the full E18
# sweep, emitting FLEET_storms.json for the CI artifact.
fleet:
	SPRITE_SIM_PARALLEL=4 $(GO) test -race -run 'TestDrainStateMachine|TestManagerDeterministic|TestFleetFuzz|TestFleetScenarioDeterminism|TestFleetKernelEquivalence' -v ./internal/fleet ./internal/fault
	SPRITE_SIM_PARALLEL=4 $(GO) test -race -run 'TestFleetEconomyGate' ./internal/experiments
	$(GO) run ./cmd/spritesim -experiment E18 -fleet-snapshot FLEET_storms.json

# The 10,000-host scale tier (nightly CI), two planes:
#   1. E16's combined-churn schedule — reboot storm, flapping hosts, two
#      partitions, competing requesters — at fleet scale on the parallel
#      kernel (churn needs crashes, so this plane cannot confine hosts).
#      Emits HOSTSEL_10k.json.
#   2. The confined-hosts migration plane (DESIGN.md §14) at 10k hosts,
#      run under the serial oracle AND the parallel kernel: the run fails
#      if their order digests diverge at fleet scale, and the
#      serial-vs-parallel wallclock comparison lands in SCALE_confined.json.
scale:
	$(GO) run ./cmd/spritesim -experiment E16 -hosts 10000 -parallel -hostsel-snapshot HOSTSEL_10k.json
	$(GO) run ./cmd/spritesim -confined-scale SCALE_confined.json

# Regenerate every reproduced table (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/spritesim -all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pmake
	$(GO) run ./examples/eviction
	$(GO) run ./examples/loadsharing
	$(GO) run ./examples/ipc
	$(GO) run ./examples/recovery

clean:
	$(GO) clean ./...
