# Convenience targets for the Sprite process-migration reproduction.

GO ?= go

.PHONY: all build vet test bench experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One benchmark iteration per reproduced table/figure plus ablations.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Regenerate every reproduced table (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/spritesim -all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pmake
	$(GO) run ./examples/eviction
	$(GO) run ./examples/loadsharing
	$(GO) run ./examples/ipc

clean:
	$(GO) clean ./...
