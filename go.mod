module sprite

go 1.22
