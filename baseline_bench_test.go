// Baseline comparisons: Sprite migration against the mechanisms the thesis
// positions it against — checkpoint/restart (Condor-style) for moving a
// running computation, and forward-everything (Remote UNIX-style) for
// remote transparency.
package sprite_test

import (
	"testing"
	"time"

	"sprite/internal/checkpoint"
	"sprite/internal/core"
	"sprite/internal/sim"
)

// moveViaMigration runs a job that dirties `dirty` of `resident` pages,
// moves mid-run to the second host via Sprite migration, touches its
// working set back in, and finishes. Returns the time from move-start to
// back-at-full-speed.
func moveViaMigration(b *testing.B, resident, dirty int) time.Duration {
	b.Helper()
	c, err := core.NewCluster(core.Options{Workstations: 2, FileServers: 1, Seed: 77})
	if err != nil {
		b.Fatal(err)
	}
	if err := c.SeedBinary("/bin/job", 128<<10); err != nil {
		b.Fatal(err)
	}
	dst := c.Workstation(1)
	cfg := core.ProcConfig{Binary: "/bin/job", CodePages: 4, HeapPages: resident, StackPages: 2}
	var moveCost time.Duration
	c.Boot("boot", func(env *sim.Env) error {
		p, err := c.Workstation(0).StartProcess(env, "job", func(ctx *core.Ctx) error {
			if err := ctx.TouchHeap(0, resident, false); err != nil {
				return err
			}
			if err := ctx.TouchHeap(0, dirty, true); err != nil {
				return err
			}
			t0 := ctx.Now()
			if err := ctx.Migrate(dst.Host()); err != nil {
				return err
			}
			if err := ctx.TouchHeap(0, resident, false); err != nil {
				return err
			}
			moveCost = ctx.Now() - t0
			return nil
		}, cfg)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		b.Fatal(err)
	}
	return moveCost
}

// moveViaCheckpoint does the same move with a checkpoint file: save image,
// exit, restart on the target, restore.
func moveViaCheckpoint(b *testing.B, resident, dirty int) time.Duration {
	b.Helper()
	c, err := core.NewCluster(core.Options{Workstations: 2, FileServers: 1, Seed: 77})
	if err != nil {
		b.Fatal(err)
	}
	if err := c.SeedBinary("/bin/job", 128<<10); err != nil {
		b.Fatal(err)
	}
	dst := c.Workstation(1)
	cfg := core.ProcConfig{Binary: "/bin/job", CodePages: 4, HeapPages: resident, StackPages: 2}
	var moveCost time.Duration
	c.Boot("boot", func(env *sim.Env) error {
		var t0 time.Duration
		p1, err := c.Workstation(0).StartProcess(env, "job", func(ctx *core.Ctx) error {
			if err := ctx.TouchHeap(0, resident, false); err != nil {
				return err
			}
			if err := ctx.TouchHeap(0, dirty, true); err != nil {
				return err
			}
			t0 = ctx.Now()
			if _, err := checkpoint.Save(ctx, "/ckpt/job.img"); err != nil {
				return err
			}
			return ctx.Exit(0)
		}, cfg)
		if err != nil {
			return err
		}
		if _, err := p1.Exited().Wait(env); err != nil {
			return err
		}
		p2, err := dst.StartProcess(env, "job", func(ctx *core.Ctx) error {
			if _, err := checkpoint.Restore(ctx, "/ckpt/job.img"); err != nil {
				return err
			}
			if err := ctx.TouchHeap(0, resident, false); err != nil {
				return err
			}
			moveCost = ctx.Now() - t0
			return nil
		}, cfg)
		if err != nil {
			return err
		}
		_, err = p2.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		b.Fatal(err)
	}
	return moveCost
}

// BenchmarkBaselineMigrationVsCheckpoint compares the two ways of moving a
// running computation for a mostly-clean working set (the common case:
// code and warmed read-only data dominate). Sprite moves only the dirty
// pages through the server and demand-pages the rest; checkpoint/restart
// writes and re-reads the whole resident image.
func BenchmarkBaselineMigrationVsCheckpoint(b *testing.B) {
	const resident, dirty = 256, 32 // 2 MB resident, 256 KB dirty
	b.Run("sprite-migration", func(b *testing.B) {
		var cost time.Duration
		for i := 0; i < b.N; i++ {
			cost = moveViaMigration(b, resident, dirty)
		}
		b.ReportMetric(float64(cost.Milliseconds()), "sim-ms/move")
	})
	b.Run("checkpoint-restart", func(b *testing.B) {
		var cost time.Duration
		for i := 0; i < b.N; i++ {
			cost = moveViaCheckpoint(b, resident, dirty)
		}
		b.ReportMetric(float64(cost.Milliseconds()), "sim-ms/move")
	})
}

// BenchmarkBaselineForwardAll compares Sprite's selective forwarding with
// the Remote UNIX forward-everything design on a syscall-heavy remote
// process.
func BenchmarkBaselineForwardAll(b *testing.B) {
	run := func(b *testing.B, forwardAll bool) time.Duration {
		b.Helper()
		c, err := core.NewCluster(core.Options{Workstations: 2, FileServers: 1, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.SeedBinary("/bin/job", 64<<10); err != nil {
			b.Fatal(err)
		}
		dst := c.Workstation(1)
		dst.SetForwardAll(forwardAll)
		var elapsed time.Duration
		c.Boot("boot", func(env *sim.Env) error {
			p, err := c.Workstation(0).StartProcess(env, "sysheavy", func(ctx *core.Ctx) error {
				if err := ctx.Migrate(dst.Host()); err != nil {
					return err
				}
				t0 := ctx.Now()
				for i := 0; i < 200; i++ {
					if _, err := ctx.GetPID(); err != nil {
						return err
					}
				}
				elapsed = ctx.Now() - t0
				return nil
			}, core.ProcConfig{Binary: "/bin/job", CodePages: 2, HeapPages: 4, StackPages: 1})
			if err != nil {
				return err
			}
			_, err = p.Exited().Wait(env)
			return err
		})
		if err := c.Run(0); err != nil {
			b.Fatal(err)
		}
		return elapsed
	}
	b.Run("sprite-selective", func(b *testing.B) {
		var d time.Duration
		for i := 0; i < b.N; i++ {
			d = run(b, false)
		}
		b.ReportMetric(float64(d.Milliseconds()), "sim-ms/200-getpid")
	})
	b.Run("remote-unix-forward-all", func(b *testing.B) {
		var d time.Duration
		for i := 0; i < b.N; i++ {
			d = run(b, true)
		}
		b.ReportMetric(float64(d.Milliseconds()), "sim-ms/200-getpid")
	})
}
