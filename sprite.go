// Package sprite is a faithful, simulation-backed reproduction of the
// process migration facility of the Sprite network operating system
// (Douglis & Ousterhout, ICDCS 1987; Douglis's 1990 thesis "Transparent
// Process Migration in the Sprite Operating System").
//
// The package simulates a cluster of diskless workstations and file
// servers connected by a LAN: a shared network file system with client
// caching and server-driven consistency, per-host kernels speaking
// kernel-to-kernel RPC, demand-paged virtual memory backed by the shared
// FS, and — the contribution — transparent process migration with
// home-machine call forwarding, plus the host-selection architectures the
// thesis compares. All time is virtual and every run is deterministic
// given its seed.
//
// Quick start:
//
//	c, err := sprite.NewCluster(sprite.Options{Workstations: 2})
//	if err != nil { ... }
//	_ = c.SeedBinary("/bin/prog", 128<<10)
//	c.Boot("boot", func(env *sim.Env) error {
//	    p, err := c.Workstation(0).StartProcess(env, "job", func(ctx *sprite.Ctx) error {
//	        if err := ctx.Migrate(c.Workstation(1).Host()); err != nil {
//	            return err
//	        }
//	        return ctx.Compute(time.Second)
//	    }, sprite.ProcConfig{Binary: "/bin/prog", CodePages: 4, HeapPages: 8, StackPages: 2})
//	    if err != nil {
//	        return err
//	    }
//	    _, err = p.Exited().Wait(env)
//	    return err
//	})
//	err = c.Run(0)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced tables and figures.
package sprite

import (
	"sprite/internal/core"
	"sprite/internal/rpc"
)

// Re-exported core types: the public API is the cluster, its kernels, and
// the process/kernel-call surface programs use.
type (
	// Cluster is a simulated Sprite installation.
	Cluster = core.Cluster
	// Options configures NewCluster.
	Options = core.Options
	// Params carries every calibration constant.
	Params = core.Params
	// Kernel is one host's Sprite kernel.
	Kernel = core.Kernel
	// Ctx is a program's kernel-call interface.
	Ctx = core.Ctx
	// Program is the body of a simulated user process.
	Program = core.Program
	// Process is a simulated user process.
	Process = core.Process
	// ProcConfig sizes a process image.
	ProcConfig = core.ProcConfig
	// PID identifies a process; it encodes the home machine.
	PID = core.PID
	// MigrationRecord documents one completed migration.
	MigrationRecord = core.MigrationRecord
	// TransferStrategy is a virtual-memory migration strategy.
	TransferStrategy = core.TransferStrategy
	// HostID identifies a host on the network.
	HostID = rpc.HostID
	// HandlingPolicy classifies a kernel call's migration behaviour.
	HandlingPolicy = core.HandlingPolicy
	// Signal is a 4.3BSD-style signal, routed through home machines.
	Signal = core.Signal
	// SignalHandler is a user signal handler.
	SignalHandler = core.SignalHandler
	// Rusage is the resource-usage record of GetRusage.
	Rusage = core.Rusage
)

// Signals.
const (
	SigTerm  = core.SigTerm
	SigKill  = core.SigKill
	SigStop  = core.SigStop
	SigCont  = core.SigCont
	SigUser1 = core.SigUser1
	SigUser2 = core.SigUser2
)

// The four virtual-memory transfer strategies from the thesis's design
// space (Ch. 2 and 4).
type (
	// SpriteFlushStrategy is Sprite's design: flush dirty pages to the
	// shared backing file and demand-page on the target.
	SpriteFlushStrategy = core.SpriteFlushStrategy
	// FullCopyStrategy ships the whole resident image while frozen
	// (Charlotte, LOCUS).
	FullCopyStrategy = core.FullCopyStrategy
	// CopyOnReferenceStrategy leaves pages at the source and pulls them on
	// fault (Accent/Zayas).
	CopyOnReferenceStrategy = core.CopyOnReferenceStrategy
	// PreCopyStrategy copies while running, refreezing only for the last
	// dirty pages (V System/Theimer).
	PreCopyStrategy = core.PreCopyStrategy
)

// Kernel-call handling policies (Appendix A).
const (
	PolicyLocal    = core.PolicyLocal
	PolicyFile     = core.PolicyFile
	PolicyHome     = core.PolicyHome
	PolicyTransfer = core.PolicyTransfer
	PolicyDenied   = core.PolicyDenied
)

// Errors re-exported for matching with errors.Is.
var (
	// ErrKilled is delivered to a killed process.
	ErrKilled = core.ErrKilled
	// ErrNotMigratable marks processes that refuse migration.
	ErrNotMigratable = core.ErrNotMigratable
	// ErrNoSuchProcess is returned for unknown pids.
	ErrNoSuchProcess = core.ErrNoSuchProcess
	// ErrVersionMismatch is returned for incompatible migration versions.
	ErrVersionMismatch = core.ErrVersionMismatch
)

// SyscallTable is the Appendix-A classification of kernel calls by how
// Sprite keeps them transparent for migrated processes.
var SyscallTable = core.SyscallTable

// NewCluster builds a simulated Sprite cluster.
func NewCluster(opts Options) (*Cluster, error) {
	return core.NewCluster(opts)
}

// DefaultParams returns the Sun-3-era calibration constants.
func DefaultParams() Params {
	return core.DefaultParams()
}
