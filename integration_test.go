// Integration tests: end-to-end scenarios across the public facade —
// builds that survive evictions, process families spanning hosts, and
// ablation knobs, all through the same API the examples use.
package sprite_test

import (
	"math/rand"
	"testing"
	"time"

	"sprite"
	"sprite/internal/fs"
	"sprite/internal/pmake"
	"sprite/internal/sim"
)

func newFacadeCluster(t *testing.T, workstations int, params *sprite.Params) *sprite.Cluster {
	t.Helper()
	c, err := sprite.NewCluster(sprite.Options{Workstations: workstations, FileServers: 1, Seed: 21, Params: params})
	if err != nil {
		t.Fatal(err)
	}
	for _, bin := range []string{"/bin/prog", "/bin/cc", "/bin/pmake"} {
		if err := c.SeedBinary(bin, 128<<10); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestBuildSurvivesMidBuildEviction: a parallel build is underway on
// borrowed hosts when one host's owner returns; the worker is evicted to
// its home machine mid-job and the build still completes with correct
// outputs.
func TestBuildSurvivesMidBuildEviction(t *testing.T) {
	c := newFacadeCluster(t, 4, nil)
	proj := pmake.DefaultProjectParams()
	proj.Units = 6
	proj.CompileCPU = 2 * time.Second
	proj.LinkCPU = time.Second
	proj.LookupsPerUnit = 5
	mf, err := pmake.SyntheticProject(c, rand.New(rand.NewSource(2)), proj)
	if err != nil {
		t.Fatal(err)
	}
	submit := c.Workstation(0)
	victim := c.Workstation(1)
	var res *pmake.Result
	c.Boot("boot", func(env *sim.Env) error {
		var hosts []sprite.HostID
		for _, k := range c.Workstations()[1:] {
			hosts = append(hosts, k.Host())
		}
		p, err := submit.StartProcess(env, "pmake", func(ctx *sprite.Ctx) error {
			r, err := pmake.Run(ctx, mf, pmake.Options{Force: true, Hosts: hosts})
			res = r
			return err
		}, sprite.ProcConfig{Binary: "/bin/pmake", CodePages: 8, HeapPages: 16, StackPages: 2})
		if err != nil {
			return err
		}
		// Mid-first-wave, the owner of one borrowed host returns.
		if err := env.Sleep(1500 * time.Millisecond); err != nil {
			return err
		}
		victim.NoteInput(env.Now())
		if err := victim.EvictAll(env); err != nil {
			return err
		}
		if _, err := p.Exited().Wait(env); err != nil {
			return err
		}
		// Verify outputs despite the disruption.
		_, size, err := submit.FSClient().Stat(env, "/src/prog")
		if err != nil {
			return err
		}
		if size != proj.BinaryBytes {
			t.Errorf("binary size = %d, want %d", size, proj.BinaryBytes)
		}
		return nil
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Jobs != 7 {
		t.Fatalf("result = %+v, want 7 jobs", res)
	}
	evicted := 0
	for _, rec := range c.MigrationRecords() {
		if rec.Reason == "eviction" {
			evicted++
		}
	}
	if evicted == 0 {
		t.Fatal("no eviction happened mid-build")
	}
}

// TestFamilySpansHosts: a migrated parent forks children on its current
// host; waits and kills route through the home machine correctly.
func TestFamilySpansHosts(t *testing.T) {
	c := newFacadeCluster(t, 3, nil)
	home, away := c.Workstation(0), c.Workstation(1)
	cfg := sprite.ProcConfig{Binary: "/bin/prog", CodePages: 4, HeapPages: 8, StackPages: 2}
	c.Boot("boot", func(env *sim.Env) error {
		p, err := home.StartProcess(env, "matriarch", func(ctx *sprite.Ctx) error {
			if err := ctx.Migrate(away.Host()); err != nil {
				return err
			}
			// Three children, forked while foreign.
			for i := 0; i < 3; i++ {
				d := time.Duration(i+1) * 100 * time.Millisecond
				if _, err := ctx.Fork("kid", func(cc *sprite.Ctx) error {
					return cc.Compute(d)
				}, cfg); err != nil {
					return err
				}
			}
			// Wait for all three through the home machine.
			for i := 0; i < 3; i++ {
				if _, _, err := ctx.Wait(); err != nil {
					return err
				}
			}
			return nil
		}, cfg)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if home.HomeProcessCount() != 0 {
		t.Fatalf("home records remain: %d", home.HomeProcessCount())
	}
}

// TestWriteThroughAblationPreservesCorrectness: with write-through caching
// the consistency recalls disappear but cross-host reads stay correct.
func TestWriteThroughAblationPreservesCorrectness(t *testing.T) {
	params := sprite.DefaultParams()
	params.FS.WriteThrough = true
	c := newFacadeCluster(t, 2, &params)
	a, b := c.Workstation(0), c.Workstation(1)
	c.Boot("boot", func(env *sim.Env) error {
		if err := a.FSClient().WriteFile(env, "/x", []byte("through")); err != nil {
			return err
		}
		if a.FSClient().DirtyBlocks() != 0 {
			t.Error("write-through left dirty blocks")
		}
		got, err := b.FSClient().ReadFile(env, "/x")
		if err != nil {
			return err
		}
		if string(got) != "through" {
			t.Errorf("read %q", got)
		}
		return nil
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if c.Servers()[0].Stats().FlushRecall != 0 {
		t.Fatal("write-through should not need flush recalls")
	}
}

// TestStrategySwapThroughFacade: the public API can swap all four transfer
// strategies and each completes a migration.
func TestStrategySwapThroughFacade(t *testing.T) {
	strategies := []sprite.TransferStrategy{
		sprite.SpriteFlushStrategy{},
		sprite.FullCopyStrategy{},
		sprite.CopyOnReferenceStrategy{},
		sprite.PreCopyStrategy{RedirtyPagesPerSec: 25},
	}
	for _, s := range strategies {
		c := newFacadeCluster(t, 2, nil)
		c.SetStrategyAll(s)
		dst := c.Workstation(1)
		c.Boot("boot", func(env *sim.Env) error {
			p, err := c.Workstation(0).StartProcess(env, "m", func(ctx *sprite.Ctx) error {
				if err := ctx.TouchHeap(0, 8, true); err != nil {
					return err
				}
				return ctx.Migrate(dst.Host())
			}, sprite.ProcConfig{Binary: "/bin/prog", CodePages: 4, HeapPages: 8, StackPages: 2})
			if err != nil {
				return err
			}
			_, err = p.Exited().Wait(env)
			return err
		})
		if err := c.Run(0); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		recs := c.MigrationRecords()
		if len(recs) != 1 || recs[0].Strategy != s.Name() {
			t.Fatalf("%s: records = %+v", s.Name(), recs)
		}
	}
}

// TestAppendixAConformance exercises every modeled kernel call before and
// after migration and asserts the per-class behaviour from Appendix A.
func TestAppendixAConformance(t *testing.T) {
	c := newFacadeCluster(t, 2, nil)
	if err := c.Seed("/data/conf", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	dst := c.Workstation(1)
	cfg := sprite.ProcConfig{Binary: "/bin/prog", CodePages: 4, HeapPages: 8, StackPages: 2}
	c.Boot("boot", func(env *sim.Env) error {
		p, err := c.Workstation(0).StartProcess(env, "conform", func(ctx *sprite.Ctx) error {
			type result struct {
				pid  sprite.PID
				host string
				data string
			}
			probe := func() (result, error) {
				var r result
				var err error
				if r.pid, err = ctx.GetPID(); err != nil {
					return r, err
				}
				if r.host, err = ctx.GetHostname(); err != nil {
					return r, err
				}
				fd, err := ctx.Open("/data/conf", fs.ReadMode, fs.OpenOptions{})
				if err != nil {
					return r, err
				}
				data, err := ctx.Read(fd, 10)
				if err != nil {
					return r, err
				}
				r.data = string(data)
				return r, ctx.Close(fd)
			}
			before, err := probe()
			if err != nil {
				return err
			}
			if err := ctx.Migrate(dst.Host()); err != nil {
				return err
			}
			after, err := probe()
			if err != nil {
				return err
			}
			if before != after {
				t.Errorf("observable behaviour changed across migration:\n before %+v\n after  %+v", before, after)
			}
			// Denied class: shared-memory processes refuse to migrate.
			ctx.Process().SetShared(true)
			err = ctx.Migrate(c.Workstation(0).Host())
			if err == nil {
				t.Error("shared-memory migrate should be denied")
			}
			ctx.Process().SetShared(false)
			return nil
		}, cfg)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
}
