// Golden determinism tests: the experiment drivers must produce
// bit-identical tables for a fixed seed, run after run and process after
// process. A change in any charged cost shows up here first — regenerate
// EXPERIMENTS.md when that is intentional.
package sprite_test

import (
	"strings"
	"testing"

	"sprite/internal/experiments"
)

// goldenE12 is the only experiment whose full output is stable by
// construction (it is a census, independent of timing constants); it pins
// the Appendix-A classification itself.
const goldenE12 = `E12 — Kernel-call handling for migrated processes (Appendix A census)
  [paper: thesis Appendix A]
policy             calls  examples
-----------------------------------------------------------------
local              14     [geteuid getgid getpid getppid]
file-system        21     [chdir chmod chown close]
forwarded-home     12     [fork gethostname getpgrp getpriority]
transferred-state  5      [brk exec exit sigreturn]
denied             2      [mmap-shared ptrace]
note: total calls classified: 54; the conformance tests exercise each modeled call before and after migration
`

func TestGoldenAppendixA(t *testing.T) {
	tbl, err := experiments.E12SyscallTable(experiments.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.String(); got != goldenE12 {
		t.Fatalf("Appendix-A census changed:\n--- got ---\n%s\n--- want ---\n%s", got, goldenE12)
	}
}

// TestExperimentsAreReproducible runs every driver twice with the same
// seed and requires identical tables.
func TestExperimentsAreReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := experiments.Config{Seed: 7, Quick: true}
	for _, r := range experiments.All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			if r.ID == "E17" {
				// E17's table is wallclock (real time) by design; its
				// determinism claim — identical order digests across
				// kernels — is asserted inside the driver and in
				// internal/experiments TestE17DigestsAgree.
				t.Skip("wallclock output is not byte-reproducible by design")
			}
			a, err := r.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := r.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if a.String() != b.String() {
				t.Fatalf("%s not reproducible:\n%s\nvs\n%s", r.ID, a, b)
			}
		})
	}
}

// TestSeedChangesOutcome guards against accidentally ignoring the seed:
// stochastic experiments must differ across seeds.
func TestSeedChangesOutcome(t *testing.T) {
	run := func(seed int64) string {
		tbl, err := experiments.E11PlacementVsMigration(experiments.Config{Seed: seed, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		return tbl.String()
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical E11 tables")
	}
}

// TestTablesRenderCleanly: every table renders with aligned columns and a
// paper reference.
func TestTablesRenderCleanly(t *testing.T) {
	cfg := experiments.Config{Seed: 42, Quick: true}
	for _, r := range []string{"E12", "E13"} {
		tbl, err := experiments.Find(r).Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := tbl.String()
		if !strings.Contains(s, "[paper:") {
			t.Errorf("%s missing paper reference:\n%s", r, s)
		}
		lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
		if len(lines) < 4 {
			t.Errorf("%s too short:\n%s", r, s)
		}
	}
}
