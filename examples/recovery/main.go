// Recovery: three checkpointed jobs are farmed out to an idle workstation;
// that workstation fail-stops mid-run. The liveness monitor detects the
// crash by missed pings, homes reap their orphans (Sprite's home-dependency
// rule), and the supervisor restarts each job from its last durable
// checkpoint on a surviving host — so all three finish despite the crash.
package main

import (
	"fmt"
	"log"
	"time"

	"sprite"
	"sprite/internal/recovery"
	"sprite/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := sprite.NewCluster(sprite.Options{Workstations: 4, FileServers: 1, Seed: 42})
	if err != nil {
		return err
	}
	// Deferred reaping: a crash leaves stale state on the survivors until the
	// monitor's reaping pass cleans it up — the realistic mode, where nobody
	// learns of a death except by detecting it.
	cluster.SetDeferredReap(true)
	if err := cluster.SeedBinary("/bin/job", 128<<10); err != nil {
		return err
	}

	mon := recovery.NewMonitor(cluster, recovery.DefaultParams())
	sup := recovery.NewSupervisor(cluster, mon, recovery.DefaultSupervisorParams())
	mon.Start()
	mon.Subscribe(func(ev recovery.Event) {
		fmt.Printf("[%8v] monitor: %v %v (epoch %d)\n", ev.At, ev.Kind, ev.Host, ev.Epoch)
	})

	cfg := sprite.ProcConfig{Binary: "/bin/job", CodePages: 16, HeapPages: 32, StackPages: 4}
	victim := cluster.Workstation(1).Host()

	cluster.Boot("driver", func(env *sim.Env) error {
		var handles []*recovery.Handle
		for i := 0; i < 3; i++ {
			h, err := sup.Submit(env, fmt.Sprintf("job%d", i), cfg,
				recovery.ComputeJob(250*time.Millisecond, 25*time.Millisecond))
			if err != nil {
				return err
			}
			handles = append(handles, h)
		}
		fmt.Printf("[%8v] submitted 3 checkpointed jobs (they migrate to %v)\n", env.Now(), victim)
		if err := sup.Wait(env); err != nil {
			return err
		}
		for _, h := range handles {
			fmt.Printf("[%8v] %s done: restarts=%d resumed=%v of checkpointed work\n",
				env.Now(), h.Name(), h.Restarts(), time.Duration(h.Resumed().CPUUsedNanos))
		}
		mon.Stop()
		sup.Stop()
		return nil
	})
	cluster.Boot("saboteur", func(env *sim.Env) error {
		if err := env.Sleep(250 * time.Millisecond); err != nil {
			return nil
		}
		fmt.Printf("[%8v] %v fail-stops with all three jobs on it\n", env.Now(), victim)
		cluster.CrashHost(env, victim)
		if err := env.Sleep(200 * time.Millisecond); err != nil {
			return nil
		}
		cluster.RestartHost(env, victim)
		fmt.Printf("[%8v] %v reboots with empty tables under a new epoch\n", env.Now(), victim)
		return nil
	})
	if err := cluster.Run(0); err != nil {
		return err
	}

	if v := cluster.CheckInvariants(true); len(v) != 0 {
		return fmt.Errorf("invariants violated after the crash: %v", v)
	}
	snap := cluster.MetricsSnapshot()
	fmt.Printf("\ncheckpoints=%d restarts=%d cpu-recovered=%v; invariants green\n",
		snap.Counters["recovery.checkpoints"],
		snap.Counters["recovery.restarts"],
		time.Duration(snap.Counters["recovery.cpu_recovered_ns"]))
	return nil
}
