// IPC transparency: a producer and consumer connected by a pipe keep
// talking while both migrate, and a pseudo-device name service keeps
// answering while *it* migrates — nobody notices anything but latency
// (thesis §3.2: only the operating system knows where anyone is).
package main

import (
	"fmt"
	"log"

	"sprite"
	"sprite/internal/pdev"
	"sprite/internal/sim"
	"sprite/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := sprite.NewCluster(sprite.Options{Workstations: 4, FileServers: 1, Seed: 11})
	if err != nil {
		return err
	}
	if err := cluster.SeedBinary("/bin/prog", 128<<10); err != nil {
		return err
	}
	events := trace.New(64)
	events.SetFilter("migration", "exec-migration")
	cluster.SetTrace(events.Func())
	pdevs := pdev.NewSystem(cluster)
	h := cluster.Workstations()
	cfg := sprite.ProcConfig{Binary: "/bin/prog", CodePages: 4, HeapPages: 16, StackPages: 2}

	cluster.Boot("boot", func(env *sim.Env) error {
		// A pseudo-device "name service" that migrates mid-life.
		nameServer, err := h[0].StartProcess(env, "named", func(ctx *sprite.Ctx) error {
			dev, err := pdevs.Serve(ctx, "/dev/named")
			if err != nil {
				return err
			}
			defer dev.Close()
			for i := 0; i < 4; i++ {
				req, err := dev.Recv(ctx)
				if err != nil {
					return err
				}
				where := ctx.Process().Current().Host()
				if err := dev.Reply(ctx, req, []byte(fmt.Sprintf("%s@%v", req.Data, where))); err != nil {
					return err
				}
				if i == 1 { // move the service mid-stream
					if err := ctx.Migrate(h[3].Host()); err != nil {
						return err
					}
				}
			}
			return nil
		}, cfg)
		if err != nil {
			return err
		}

		// A producer/consumer pair over a pipe, both migrating.
		pair, err := h[1].StartProcess(env, "pair", func(ctx *sprite.Ctx) error {
			rfd, wfd, err := ctx.Pipe()
			if err != nil {
				return err
			}
			if _, err := ctx.Fork("producer", func(cc *sprite.Ctx) error {
				if err := cc.Close(rfd); err != nil {
					return err
				}
				for i := 1; i <= 4; i++ {
					reply, err := pdevs.Call(cc, "/dev/named", []byte(fmt.Sprintf("msg%d", i)))
					if err != nil {
						return err
					}
					if _, err := cc.Write(wfd, append(reply, '\n')); err != nil {
						return err
					}
					if i == 2 {
						if err := cc.Migrate(h[2].Host()); err != nil {
							return err
						}
					}
				}
				return cc.Close(wfd)
			}, cfg); err != nil {
				return err
			}
			if _, err := ctx.Fork("consumer", func(cc *sprite.Ctx) error {
				if err := cc.Close(wfd); err != nil {
					return err
				}
				var got []byte
				for {
					data, err := cc.Read(rfd, 128)
					if err != nil {
						return err
					}
					if len(data) == 0 {
						break
					}
					got = append(got, data...)
					if len(got) > 0 && got[len(got)-1] == '\n' && cc.Process().Migrations() == 0 {
						if err := cc.Migrate(h[3].Host()); err != nil {
							return err
						}
					}
				}
				fmt.Printf("[%8v] consumer (on %v) received:\n%s",
					cc.Now(), cc.Process().Current().Host(), got)
				return cc.Close(rfd)
			}, cfg); err != nil {
				return err
			}
			if err := ctx.Close(rfd); err != nil {
				return err
			}
			if err := ctx.Close(wfd); err != nil {
				return err
			}
			for i := 0; i < 2; i++ {
				if _, _, err := ctx.Wait(); err != nil {
					return err
				}
			}
			return nil
		}, cfg)
		if err != nil {
			return err
		}
		if _, err := pair.Exited().Wait(env); err != nil {
			return err
		}
		_, err = nameServer.Exited().Wait(env)
		return err
	})
	if err := cluster.Run(0); err != nil {
		return err
	}
	fmt.Printf("\nmigrations while communicating (trace):\n%s", events)
	fmt.Println("note: replies show where the *server* ran; the clients' pipe never broke.")
	return nil
}
