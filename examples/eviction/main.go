// Eviction: a long simulation borrows an idle workstation; when that
// workstation's owner comes back, migd revokes the loan and the simulation
// is transparently migrated home, where it finishes correctly.
package main

import (
	"fmt"
	"log"
	"time"

	"sprite"
	"sprite/internal/hostsel"
	"sprite/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := sprite.NewCluster(sprite.Options{Workstations: 2, FileServers: 1, Seed: 3})
	if err != nil {
		return err
	}
	if err := cluster.SeedBinary("/bin/sim", 256<<10); err != nil {
		return err
	}
	migd := hostsel.NewCentral(cluster, sprite.HostID(1), hostsel.DefaultCentralParams())
	home, lent := cluster.Workstation(0), cluster.Workstation(1)

	cluster.Boot("boot", func(env *sim.Env) error {
		if err := env.Sleep(time.Minute); err != nil {
			return err
		}
		for _, k := range cluster.Workstations() {
			if err := migd.NotifyAvailability(env, k.Host(), k.Available(env.Now())); err != nil {
				return err
			}
		}
		hosts, err := migd.RequestHosts(env, home.Host(), 1)
		if err != nil {
			return err
		}
		fmt.Printf("[%8v] borrowed %v for a long simulation\n", env.Now(), hosts)

		p, err := home.StartProcess(env, "simulation", func(ctx *sprite.Ctx) error {
			if err := ctx.Migrate(hosts[0]); err != nil {
				return err
			}
			fmt.Printf("[%8v] simulation running on %v, dirtying 2 MB\n",
				ctx.Now(), ctx.Process().Current().Host())
			if err := ctx.TouchHeap(0, 256, true); err != nil {
				return err
			}
			if err := ctx.Compute(30 * time.Second); err != nil {
				return err
			}
			fmt.Printf("[%8v] simulation finished on %v after %d migrations\n",
				ctx.Now(), ctx.Process().Current().Host(), ctx.Process().Migrations())
			return nil
		}, sprite.ProcConfig{Binary: "/bin/sim", CodePages: 8, HeapPages: 256, StackPages: 2})
		if err != nil {
			return err
		}

		// Ten seconds in, the owner of the borrowed machine returns.
		if err := env.Sleep(10 * time.Second); err != nil {
			return err
		}
		fmt.Printf("[%8v] owner returns to %v — migd revokes the loan\n", env.Now(), lent.Host())
		lent.NoteInput(env.Now())
		t0 := env.Now()
		if err := migd.NotifyAvailability(env, lent.Host(), false); err != nil {
			return err
		}
		fmt.Printf("[%8v] workstation reclaimed in %v; foreign processes left: %d\n",
			env.Now(), env.Now()-t0, len(lent.ForeignProcesses()))

		if _, err := p.Exited().Wait(env); err != nil {
			return err
		}
		return nil
	})
	if err := cluster.Run(0); err != nil {
		return err
	}
	for _, rec := range cluster.MigrationRecords() {
		fmt.Printf("migration %v -> %v (%s): total=%v, vm=%v\n",
			rec.From, rec.To, rec.Reason,
			rec.Total.Round(time.Millisecond), rec.VMTime.Round(time.Millisecond))
	}
	return nil
}
