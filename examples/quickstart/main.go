// Quickstart: build a two-workstation Sprite cluster, run a process that
// dirties memory and holds an open file, migrate it transparently to the
// other host, and show that nothing observable changed for the process.
package main

import (
	"fmt"
	"log"
	"time"

	"sprite"
	"sprite/internal/fs"
	"sprite/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := sprite.NewCluster(sprite.Options{Workstations: 2, FileServers: 1, Seed: 1})
	if err != nil {
		return err
	}
	if err := cluster.SeedBinary("/bin/prog", 128<<10); err != nil {
		return err
	}
	src, dst := cluster.Workstation(0), cluster.Workstation(1)

	cluster.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "worker", func(ctx *sprite.Ctx) error {
			pid, err := ctx.GetPID()
			if err != nil {
				return err
			}
			host, err := ctx.GetHostname()
			if err != nil {
				return err
			}
			fmt.Printf("[%8v] pid %v starts on %v (hostname says %q)\n", ctx.Now(), pid, src.Host(), host)

			// Write a log file and dirty some memory.
			fd, err := ctx.Open("/log", fs.WriteMode, fs.OpenOptions{Create: true})
			if err != nil {
				return err
			}
			if _, err := ctx.Write(fd, []byte("written at home; ")); err != nil {
				return err
			}
			if err := ctx.TouchHeap(0, 64, true); err != nil { // 512 KB dirty
				return err
			}
			if err := ctx.Compute(200 * time.Millisecond); err != nil {
				return err
			}

			fmt.Printf("[%8v] migrating to %v...\n", ctx.Now(), dst.Host())
			if err := ctx.Migrate(dst.Host()); err != nil {
				return err
			}

			// Same pid, same hostname, same open file — transparent.
			pid2, err := ctx.GetPID()
			if err != nil {
				return err
			}
			host2, err := ctx.GetHostname()
			if err != nil {
				return err
			}
			fmt.Printf("[%8v] now on %v; pid still %v, hostname still %q\n",
				ctx.Now(), ctx.Process().Current().Host(), pid2, host2)
			if _, err := ctx.Write(fd, []byte("written away from home")); err != nil {
				return err
			}
			if err := ctx.Close(fd); err != nil {
				return err
			}
			return ctx.Compute(200 * time.Millisecond)
		}, sprite.ProcConfig{Binary: "/bin/prog", CodePages: 8, HeapPages: 64, StackPages: 2})
		if err != nil {
			return err
		}
		if _, err := p.Exited().Wait(env); err != nil {
			return err
		}

		// Read the file from a third party to prove both writes landed.
		data, err := dst.FSClient().ReadFile(env, "/log")
		if err != nil {
			return err
		}
		fmt.Printf("[%8v] /log = %q\n", env.Now(), data)
		return nil
	})
	if err := cluster.Run(0); err != nil {
		return err
	}

	for _, rec := range cluster.MigrationRecords() {
		fmt.Printf("migration %v -> %v: total=%v (vm=%v files=%v pcb=%v), %d streams, strategy=%s\n",
			rec.From, rec.To, rec.Total.Round(100*time.Microsecond),
			rec.VMTime.Round(100*time.Microsecond),
			rec.FileTime.Round(100*time.Microsecond),
			rec.PCBTime.Round(100*time.Microsecond),
			rec.Files, rec.Strategy)
	}
	return nil
}
