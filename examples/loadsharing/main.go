// Load sharing in daily use: a day of simulated users comes and goes on a
// 16-workstation cluster while a batch of independent simulation jobs
// soaks up whatever is idle, getting evicted and re-placed as owners
// return — the thesis's production scenario in miniature.
package main

import (
	"fmt"
	"log"
	"time"

	"sprite"
	"sprite/internal/hostsel"
	"sprite/internal/sim"
	"sprite/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := sprite.NewCluster(sprite.Options{Workstations: 16, FileServers: 1, Seed: 9})
	if err != nil {
		return err
	}
	if err := cluster.SeedBinary("/bin/sim", 256<<10); err != nil {
		return err
	}
	migd := hostsel.NewCentral(cluster, sprite.HostID(1), hostsel.DefaultCentralParams())
	users := workload.NewUserPool(cluster, workload.DefaultDayProfile(), migd.NotifyAvailability)
	submit := cluster.Workstation(0)

	const jobs = 24
	jobCPU := 2 * time.Minute

	cluster.Boot("boot", func(env *sim.Env) error {
		users.Start(env)
		if err := env.Sleep(10 * time.Hour); err != nil { // mid-morning
			return err
		}
		fmt.Printf("[%8v] submitting %d simulation jobs (%v CPU each)\n", env.Now(), jobs, jobCPU)
		t0 := env.Now()
		done := sim.NewWaitGroup(cluster.Sim())
		done.Add(jobs)
		evictions := 0
		launched := 0
		for launched < jobs {
			hosts, err := migd.RequestHosts(env, submit.Host(), jobs-launched)
			if err != nil {
				return err
			}
			if len(hosts) == 0 {
				if err := env.Sleep(30 * time.Second); err != nil {
					return err
				}
				continue
			}
			for _, h := range hosts {
				target := cluster.KernelOn(h)
				p, err := submit.StartProcess(env, fmt.Sprintf("sim%d", launched),
					func(ctx *sprite.Ctx) error {
						return ctx.Exec("sim", func(cc *sprite.Ctx) error {
							if err := cc.TouchHeap(0, 128, true); err != nil {
								return err
							}
							return cc.Compute(jobCPU)
						}, sprite.ProcConfig{Binary: "/bin/sim", CodePages: 8, HeapPages: 128, StackPages: 2})
					}, sprite.ProcConfig{})
				if err != nil {
					return err
				}
				submit.RequestExecMigration(p, target, "load-sharing")
				host := h
				env.Spawn("join", func(jenv *sim.Env) error {
					defer done.Done()
					if _, err := p.Exited().Wait(jenv); err != nil {
						return err
					}
					if p.Migrations() > 1 {
						evictions++ // moved again after placement
					}
					return migd.Release(jenv, submit.Host(), []sprite.HostID{host})
				})
				launched++
			}
		}
		if err := done.Wait(env); err != nil {
			return err
		}
		fmt.Printf("[%8v] all %d jobs done in %v (%.0f%% effective utilization)\n",
			env.Now(), jobs, (env.Now() - t0).Round(time.Second),
			float64(jobs)*jobCPU.Seconds()/(env.Now()-t0).Seconds()*100)
		users.Stop()
		return nil
	})
	if err := cluster.Run(14 * time.Hour); err != nil {
		return err
	}
	cluster.Stop()
	if err := cluster.Run(0); err != nil {
		return err
	}
	total, evict := 0, 0
	for _, rec := range cluster.MigrationRecords() {
		total++
		if rec.Reason == "eviction" {
			evict++
		}
	}
	fmt.Printf("migrations: %d total, %d evictions; migd stats: %+v\n", total, evict, migd.Stats())
	return nil
}
