// Parallel make across idle hosts — the workload that motivated Sprite's
// migration facility. A pmake process asks the central host-selection
// server (migd) for idle hosts, fans compilation units out to them with
// exec-time migration, links sequentially, and releases the hosts.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"sprite"
	"sprite/internal/hostsel"
	"sprite/internal/pmake"
	"sprite/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := sprite.NewCluster(sprite.Options{Workstations: 10, FileServers: 1, Seed: 7})
	if err != nil {
		return err
	}
	for _, bin := range []string{"/bin/cc", "/bin/pmake"} {
		if err := cluster.SeedBinary(bin, 256<<10); err != nil {
			return err
		}
	}
	proj := pmake.DefaultProjectParams()
	proj.Units = 16
	proj.CompileCPU = 3 * time.Second
	mf, err := pmake.SyntheticProject(cluster, rand.New(rand.NewSource(7)), proj)
	if err != nil {
		return err
	}
	migd := hostsel.NewCentral(cluster, sprite.HostID(1), hostsel.DefaultCentralParams())

	cluster.Boot("boot", func(env *sim.Env) error {
		// Everyone has been idle for a minute; load daemons report in.
		if err := env.Sleep(time.Minute); err != nil {
			return err
		}
		for _, k := range cluster.Workstations() {
			if err := migd.NotifyAvailability(env, k.Host(), k.Available(env.Now())); err != nil {
				return err
			}
		}
		self := cluster.Workstation(0)
		hosts, err := migd.RequestHosts(env, self.Host(), 8)
		if err != nil {
			return err
		}
		fmt.Printf("[%8v] migd granted %d idle hosts: %v\n", env.Now(), len(hosts), hosts)

		p, err := self.StartProcess(env, "pmake", func(ctx *sprite.Ctx) error {
			res, err := pmake.Run(ctx, mf, pmake.Options{Force: true, Hosts: hosts})
			if err != nil {
				return err
			}
			fmt.Printf("[%8v] build done: %d jobs (%d remote), makespan %v, job CPU %v\n",
				ctx.Now(), res.Jobs, res.RemoteJobs,
				res.Makespan.Round(10*time.Millisecond),
				res.TotalJobCPU.Round(10*time.Millisecond))
			fmt.Printf("           effective utilization: %.0f%%\n",
				float64(res.TotalJobCPU)/float64(res.Makespan)*100)
			return nil
		}, sprite.ProcConfig{Binary: "/bin/pmake", CodePages: 8, HeapPages: 16, StackPages: 2})
		if err != nil {
			return err
		}
		if _, err := p.Exited().Wait(env); err != nil {
			return err
		}
		if err := migd.Release(env, self.Host(), hosts); err != nil {
			return err
		}
		fmt.Printf("[%8v] hosts released\n", env.Now())
		return nil
	})
	if err := cluster.Run(0); err != nil {
		return err
	}
	fmt.Printf("file server busy for %v; %d exec-time migrations\n",
		cluster.Servers()[0].CPUBusy().Round(10*time.Millisecond),
		len(cluster.MigrationRecords()))
	return nil
}
