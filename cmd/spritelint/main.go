// Command spritelint is the project's multichecker: it runs the
// internal/analysis suite — walltime, globalrand, maporder, failpointreg,
// metricname, shardedstate — over the requested packages and fails (exit 1)
// on any violation. The analyzers statically enforce the contracts
// everything else in this repo only promises: byte-identical goldens,
// seed-replayable fuzzing, the exact virtual-time regression gate, a
// failpoint/metric namespace shared by code, tests, and DESIGN.md §11, and
// the parallel kernel's confined-activity discipline (DESIGN.md §13).
//
// Usage:
//
//	spritelint [flags] [packages]
//
// With no packages, ./... is linted. After a whole-tree run (a ./...
// pattern) the driver additionally cross-checks the failpoint registry for
// dead entries — registered names no code references.
//
//	-list              print the analyzers and exit
//	-audit-failpoints  print every constant failpoint name found at a
//	                   fault-plane call site (the registry audit) and exit
//	-deadcheck         enable the dead-registry-entry check (default true;
//	                   effective only with a ./... pattern)
//	-debug             print per-package load/type-check diagnostics
//
// Violations are suppressed line by line with
//
//	//spritelint:allow <analyzer>[,<analyzer>] <rationale>
//
// per the policy in DESIGN.md §11.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"sprite/internal/analysis/failpointreg"
	"sprite/internal/analysis/globalrand"
	"sprite/internal/analysis/lint"
	"sprite/internal/analysis/load"
	"sprite/internal/analysis/maporder"
	"sprite/internal/analysis/metricname"
	"sprite/internal/analysis/shardedstate"
	"sprite/internal/analysis/walltime"
)

var analyzers = []*lint.Analyzer{
	walltime.Analyzer,
	globalrand.Analyzer,
	maporder.Analyzer,
	failpointreg.Analyzer,
	metricname.Analyzer,
	shardedstate.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	audit := flag.Bool("audit-failpoints", false, "print every constant failpoint name at a fault-plane call site and exit")
	deadcheck := flag.Bool("deadcheck", true, "flag registered failpoints no analyzed code references (whole-tree runs only)")
	debug := flag.Bool("debug", false, "print per-package load/type-check diagnostics")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wholeTree := false
	for _, p := range patterns {
		if p == "./..." || p == "all" {
			wholeTree = true
		}
	}

	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spritelint: %v\n", err)
		os.Exit(2)
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "spritelint: no packages matched")
		os.Exit(2)
	}

	var all []lint.Diagnostic
	var sites []failpointreg.SiteRef
	for _, pkg := range pkgs {
		if *debug {
			fmt.Fprintf(os.Stderr, "spritelint: %s: %d files, %d type errors\n",
				pkg.ImportPath, len(pkg.Files), len(pkg.TypeErrors))
			for _, e := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "spritelint:   type error: %v\n", e)
			}
		}
		supp := lint.NewSuppressor(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			diags, res, err := lint.Run(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spritelint: %s on %s: %v\n", a.Name, pkg.ImportPath, err)
				os.Exit(2)
			}
			all = append(all, supp.Filter(diags)...)
			if refs, ok := res.([]failpointreg.SiteRef); ok {
				sites = append(sites, refs...)
			}
		}
	}

	if *audit {
		sort.Slice(sites, func(i, j int) bool {
			if sites[i].Name != sites[j].Name {
				return sites[i].Name < sites[j].Name
			}
			return sites[i].Pos.String() < sites[j].Pos.String()
		})
		for _, s := range sites {
			status := "registered"
			if !s.Registered {
				status = "UNREGISTERED"
			}
			fmt.Printf("%-20s %-13s %s\n", s.Name, status, s.Pos)
		}
		return
	}

	for _, d := range all {
		fmt.Println(d)
	}
	exit := 0
	if len(all) > 0 {
		exit = 1
	}
	if *deadcheck && wholeTree {
		for _, name := range failpointreg.DeadEntries(sites) {
			fmt.Printf("internal/fault/failpoints.go: registered failpoint %q has no remaining call site; delete the entry or restore the site (failpointreg)\n", name)
			exit = 1
		}
	}
	if exit == 0 {
		fmt.Printf("spritelint: %d packages clean under %d analyzers\n", len(pkgs), len(analyzers))
	}
	os.Exit(exit)
}
