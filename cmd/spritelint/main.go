// Command spritelint is the project's multichecker: it runs the
// internal/analysis suite — the per-function analyzers walltime,
// globalrand, maporder, failpointreg, metricname, shardedstate, and the
// interprocedural tree analyzers simtaint, confine, sharded — over the
// requested packages and fails (exit 1) on any violation. The analyzers
// statically enforce the contracts everything else in this repo only
// promises: byte-identical goldens, seed-replayable fuzzing, the exact
// virtual-time regression gate, a failpoint/metric namespace shared by
// code, tests, and DESIGN.md §11, and the parallel kernel's
// confined-activity discipline (DESIGN.md §13) — the tree analyzers
// proving the determinism and confinement contracts across call chains
// (DESIGN.md §16).
//
// Usage:
//
//	spritelint [flags] [packages]
//
// With no packages, ./... is linted. After a whole-tree run (a ./...
// pattern) the driver additionally cross-checks the failpoint registry for
// dead entries — registered names no code references.
//
//	-list              print the analyzers and exit
//	-json              emit diagnostics and run metadata as JSON
//	-graph             dump the whole-tree call graph (roots included) and exit
//	-deadallow         report //spritelint:allow comments that suppressed
//	                   nothing this run (run whole-tree so every analyzer votes)
//	-cache             reuse per-package dataflow summaries across runs (default true)
//	-cachedir DIR      summary cache location (default: user cache dir)
//	-audit-failpoints  print every constant failpoint name found at a
//	                   fault-plane call site (the registry audit) and exit
//	-deadcheck         enable the dead-registry-entry check (default true;
//	                   effective only with a ./... pattern)
//	-debug             print per-package load/type-check diagnostics
//
// Violations are suppressed line by line with
//
//	//spritelint:allow <analyzer>[,<analyzer>] <rationale>
//
// covering the full extent of the statement the comment is attached to,
// per the policy in DESIGN.md §11.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"sprite/internal/analysis/confine"
	"sprite/internal/analysis/dataflow"
	"sprite/internal/analysis/failpointreg"
	"sprite/internal/analysis/globalrand"
	"sprite/internal/analysis/lint"
	"sprite/internal/analysis/load"
	"sprite/internal/analysis/maporder"
	"sprite/internal/analysis/metricname"
	"sprite/internal/analysis/sharded"
	"sprite/internal/analysis/shardedstate"
	"sprite/internal/analysis/simtaint"
	"sprite/internal/analysis/walltime"
)

var analyzers = []*lint.Analyzer{
	walltime.Analyzer,
	globalrand.Analyzer,
	maporder.Analyzer,
	failpointreg.Analyzer,
	metricname.Analyzer,
	shardedstate.Analyzer,
}

var treeAnalyzers = []*dataflow.TreeAnalyzer{
	simtaint.Analyzer,
	confine.Analyzer,
	sharded.Analyzer,
}

// jsonReport is the -json output schema, kept stable for CI artifacts.
type jsonReport struct {
	Packages    int               `json:"packages"`
	Analyzers   int               `json:"analyzers"`
	Diagnostics []lint.Diagnostic `json:"diagnostics"`
	StaleAllows []lint.StaleAllow `json:"stale_allows,omitempty"`
	CacheHits   int               `json:"cache_hits"`
	CacheMisses int               `json:"cache_misses"`
}

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics and run metadata as JSON")
	graph := flag.Bool("graph", false, "dump the whole-tree call graph and exit")
	deadallow := flag.Bool("deadallow", false, "report allow comments that suppressed nothing this run")
	useCache := flag.Bool("cache", true, "reuse per-package dataflow summaries across runs")
	cacheDir := flag.String("cachedir", dataflow.DefaultCacheDir(), "summary cache location")
	audit := flag.Bool("audit-failpoints", false, "print every constant failpoint name at a fault-plane call site and exit")
	deadcheck := flag.Bool("deadcheck", true, "flag registered failpoints no analyzed code references (whole-tree runs only)")
	debug := flag.Bool("debug", false, "print per-package load/type-check diagnostics")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		for _, a := range treeAnalyzers {
			fmt.Printf("%-14s %s (interprocedural)\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wholeTree := false
	for _, p := range patterns {
		if p == "./..." || p == "all" {
			wholeTree = true
		}
	}

	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spritelint: %v\n", err)
		os.Exit(2)
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "spritelint: no packages matched")
		os.Exit(2)
	}

	// One suppressor across every package: tree-analyzer diagnostics land
	// in whichever file the violating function lives, and the -deadallow
	// audit needs the global view of which allows fired.
	supp := lint.NewSuppressor(pkgs[0].Fset, nil)
	for _, pkg := range pkgs {
		supp.Add(pkg.Fset, pkg.Files)
	}

	var all []lint.Diagnostic
	var sites []failpointreg.SiteRef
	for _, pkg := range pkgs {
		if *debug {
			fmt.Fprintf(os.Stderr, "spritelint: %s: %d files, %d type errors\n",
				pkg.ImportPath, len(pkg.Files), len(pkg.TypeErrors))
			for _, e := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "spritelint:   type error: %v\n", e)
			}
		}
		for _, a := range analyzers {
			diags, res, err := lint.Run(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spritelint: %s on %s: %v\n", a.Name, pkg.ImportPath, err)
				os.Exit(2)
			}
			all = append(all, supp.Filter(diags)...)
			if refs, ok := res.([]failpointreg.SiteRef); ok {
				sites = append(sites, refs...)
			}
		}
	}

	// Interprocedural pass: one shared Tree, three analyzers over it.
	var cache *dataflow.Cache
	if *useCache {
		cache = &dataflow.Cache{Dir: *cacheDir}
	}
	tree := dataflow.Analyze(pkgs, dataflow.Options{Cache: cache})
	if *graph {
		fmt.Print(tree.Graph.Dump())
		return
	}
	for _, a := range treeAnalyzers {
		diags, err := a.Run(tree)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spritelint: %s: %v\n", a.Name, err)
			os.Exit(2)
		}
		all = append(all, supp.Filter(diags)...)
	}

	if *audit {
		sort.Slice(sites, func(i, j int) bool {
			if sites[i].Name != sites[j].Name {
				return sites[i].Name < sites[j].Name
			}
			return sites[i].Pos.String() < sites[j].Pos.String()
		})
		for _, s := range sites {
			status := "registered"
			if !s.Registered {
				status = "UNREGISTERED"
			}
			fmt.Printf("%-20s %-13s %s\n", s.Name, status, s.Pos)
		}
		return
	}

	exit := 0
	if len(all) > 0 {
		exit = 1
	}
	if *deadcheck && wholeTree {
		for _, name := range failpointreg.DeadEntries(sites) {
			all = append(all, lint.Diagnostic{
				Analyzer: "failpointreg",
				Message:  fmt.Sprintf("internal/fault/failpoints.go: registered failpoint %q has no remaining call site; delete the entry or restore the site", name),
			})
			exit = 1
		}
	}
	var stale []lint.StaleAllow
	if *deadallow {
		stale = supp.Stale()
		if len(stale) > 0 {
			exit = 1
		}
	}

	if *jsonOut {
		rep := jsonReport{
			Packages:    len(pkgs),
			Analyzers:   len(analyzers) + len(treeAnalyzers),
			Diagnostics: all,
			StaleAllows: stale,
			CacheHits:   tree.CacheHits,
			CacheMisses: tree.CacheMisses,
		}
		if rep.Diagnostics == nil {
			rep.Diagnostics = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "spritelint: %v\n", err)
			os.Exit(2)
		}
		os.Exit(exit)
	}

	for _, d := range all {
		fmt.Println(d)
	}
	for _, s := range stale {
		fmt.Printf("%s: stale //spritelint:allow %s — it suppressed nothing this run; delete it (deadallow)\n", s.Pos, s.Name)
	}
	if exit == 0 {
		fmt.Printf("spritelint: %d packages clean under %d analyzers (summary cache: %d hits, %d misses)\n",
			len(pkgs), len(analyzers)+len(treeAnalyzers), tree.CacheHits, tree.CacheMisses)
	}
	os.Exit(exit)
}
