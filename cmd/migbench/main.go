// Command migbench runs migration micro-benchmarks: one migration with a
// configurable process footprint under each VM transfer strategy, printing
// the per-phase breakdown (negotiate, VM transfer, stream handoff, PCB,
// resume) the thesis tabulates.
//
// Usage:
//
//	migbench -files 4 -dirty-mb 8 [-strategy all|sprite-flush|full-copy|copy-on-reference|pre-copy]
//	migbench -out BENCH_migration.json [-baseline bench/BENCH_migration.json]
//
// -out writes the results as JSON for the benchmark-regression harness
// (see `make bench`). -baseline compares the run against a previously
// saved JSON file and exits non-zero if any strategy's total migration
// time regressed by more than -tolerance (default 20%). A missing
// baseline file is not an error: the gate arms once a baseline exists.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"time"

	"sprite/internal/core"
	spritefs "sprite/internal/fs"
	"sprite/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "migbench:", err)
		os.Exit(1)
	}
}

func strategies(name string) ([]core.TransferStrategy, error) {
	all := []core.TransferStrategy{
		core.SpriteFlushStrategy{},
		core.FullCopyStrategy{},
		core.CopyOnReferenceStrategy{},
		core.PreCopyStrategy{RedirtyPagesPerSec: 50},
	}
	if name == "all" || name == "" {
		return all, nil
	}
	for _, s := range all {
		if s.Name() == name {
			return []core.TransferStrategy{s}, nil
		}
	}
	return nil, fmt.Errorf("unknown strategy %q", name)
}

// benchResult is one strategy's measured migration, as written to the JSON
// report. Durations are milliseconds of virtual time, so the numbers are
// deterministic for a given seed and safe to diff across machines.
type benchResult struct {
	Strategy    string  `json:"strategy"`
	TotalMS     float64 `json:"total_ms"`
	FreezeMS    float64 `json:"freeze_ms"`
	NegotiateMS float64 `json:"negotiate_ms"`
	VMMS        float64 `json:"vm_ms"`
	StreamsMS   float64 `json:"streams_ms"`
	PCBMS       float64 `json:"pcb_ms"`
	ResumeMS    float64 `json:"resume_ms"`
	TouchbackMS float64 `json:"touchback_ms"`
	VMBytes     int     `json:"vm_bytes"`
	Files       int     `json:"files"`
	Residual    bool    `json:"residual"`
}

// benchReport is the BENCH_migration.json document.
type benchReport struct {
	Name    string        `json:"name"`
	Seed    int64         `json:"seed"`
	Files   int           `json:"files"`
	DirtyMB int           `json:"dirty_mb"`
	Results []benchResult `json:"results"`
}

func msf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func run(args []string, w io.Writer) error {
	flags := flag.NewFlagSet("migbench", flag.ContinueOnError)
	var (
		files     = flags.Int("files", 4, "open files at migration time")
		dirtyMB   = flags.Int("dirty-mb", 8, "dirty heap megabytes at migration time")
		strategy  = flags.String("strategy", "all", "VM transfer strategy (or 'all')")
		seed      = flags.Int64("seed", 42, "simulation seed")
		out       = flags.String("out", "", "write results as JSON to this file")
		baseline  = flags.String("baseline", "", "compare against this JSON report; missing file disarms the gate")
		tolerance = flags.Float64("tolerance", 0.20, "allowed fractional total-time regression vs baseline")
	)
	if err := flags.Parse(args); err != nil {
		return err
	}
	sts, err := strategies(*strategy)
	if err != nil {
		return err
	}
	report := benchReport{Name: "migration", Seed: *seed, Files: *files, DirtyMB: *dirtyMB}
	fmt.Fprintf(w, "%-18s %-10s %-10s %-9s %-9s %-9s %-9s %-9s %-9s %-8s\n",
		"strategy", "total", "freeze", "negotiate", "vm", "streams", "pcb", "resume", "touchback", "residual")
	for _, s := range sts {
		rec, touchback, err := migrateOnce(*seed, s, *files, *dirtyMB)
		if err != nil {
			return err
		}
		r := 100 * time.Microsecond
		fmt.Fprintf(w, "%-18s %-10s %-10s %-9s %-9s %-9s %-9s %-9s %-9s %-8v\n",
			s.Name(),
			rec.Total.Round(r), rec.Freeze.Round(r),
			rec.NegotiateTime.Round(r), rec.VMTime.Round(r),
			rec.FileTime.Round(r), rec.PCBTime.Round(r), rec.ResumeTime.Round(r),
			touchback.Round(r),
			rec.Residual)
		report.Results = append(report.Results, benchResult{
			Strategy:    s.Name(),
			TotalMS:     msf(rec.Total),
			FreezeMS:    msf(rec.Freeze),
			NegotiateMS: msf(rec.NegotiateTime),
			VMMS:        msf(rec.VMTime),
			StreamsMS:   msf(rec.FileTime),
			PCBMS:       msf(rec.PCBTime),
			ResumeMS:    msf(rec.ResumeTime),
			TouchbackMS: msf(touchback),
			VMBytes:     rec.VMBytes,
			Files:       rec.Files,
			Residual:    rec.Residual,
		})
	}
	if *out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *out)
	}
	if *baseline != "" {
		if err := checkBaseline(w, report, *baseline, *tolerance); err != nil {
			return err
		}
	}
	return nil
}

// checkBaseline compares the fresh report against a saved one and errors on
// any strategy whose total migration time regressed beyond tolerance. A
// missing baseline file only prints a note: the gate arms once someone
// commits a baseline.
func checkBaseline(w io.Writer, cur benchReport, path string, tolerance float64) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		fmt.Fprintf(w, "no baseline at %s; regression gate disarmed\n", path)
		return nil
	}
	if err != nil {
		return err
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	baseBy := make(map[string]benchResult, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Strategy] = r
	}
	var regressions []string
	for _, r := range cur.Results {
		b, ok := baseBy[r.Strategy]
		if !ok || b.TotalMS <= 0 {
			continue
		}
		ratio := r.TotalMS / b.TotalMS
		status := "ok"
		if ratio > 1+tolerance {
			status = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: total %.2fms vs baseline %.2fms (%+.1f%%)",
					r.Strategy, r.TotalMS, b.TotalMS, (ratio-1)*100))
		}
		fmt.Fprintf(w, "vs baseline %-18s %.2fms -> %.2fms (%+.1f%%) %s\n",
			r.Strategy, b.TotalMS, r.TotalMS, (ratio-1)*100, status)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("total migration time regressed >%.0f%%: %v", tolerance*100, regressions)
	}
	return nil
}

func migrateOnce(seed int64, strategy core.TransferStrategy, files, dirtyMB int) (core.MigrationRecord, time.Duration, error) {
	c, err := core.NewCluster(core.Options{Workstations: 2, FileServers: 1, Seed: seed})
	if err != nil {
		return core.MigrationRecord{}, 0, err
	}
	if err := c.SeedBinary("/bin/prog", 128<<10); err != nil {
		return core.MigrationRecord{}, 0, err
	}
	for i := 0; i < files; i++ {
		if err := c.Seed(fmt.Sprintf("/data/f%d", i), []byte("contents")); err != nil {
			return core.MigrationRecord{}, 0, err
		}
	}
	c.SetStrategyAll(strategy)
	pageSize := c.Params().VM.PageSize
	dirtyPages := dirtyMB << 20 / pageSize
	heap := dirtyPages
	if heap < 8 {
		heap = 8
	}
	src, dst := c.Workstation(0), c.Workstation(1)
	var touchback time.Duration
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "subject", func(ctx *core.Ctx) error {
			for i := 0; i < files; i++ {
				if _, err := ctx.Open(fmt.Sprintf("/data/f%d", i), spritefs.ReadMode, spritefs.OpenOptions{}); err != nil {
					return err
				}
			}
			if dirtyPages > 0 {
				if err := ctx.TouchHeap(0, dirtyPages, true); err != nil {
					return err
				}
			}
			if err := ctx.Migrate(dst.Host()); err != nil {
				return err
			}
			t0 := ctx.Now()
			if dirtyPages > 0 {
				if err := ctx.TouchHeap(0, dirtyPages, false); err != nil {
					return err
				}
			}
			touchback = ctx.Now() - t0
			return nil
		}, core.ProcConfig{Binary: "/bin/prog", CodePages: 8, HeapPages: heap, StackPages: 2})
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		return core.MigrationRecord{}, 0, err
	}
	recs := c.MigrationRecords()
	if len(recs) != 1 {
		return core.MigrationRecord{}, 0, fmt.Errorf("expected 1 migration, got %d", len(recs))
	}
	return recs[0], touchback, nil
}
