// Command migbench runs migration micro-benchmarks: one migration with a
// configurable process footprint under each VM transfer strategy, printing
// the per-component breakdown.
//
// Usage:
//
//	migbench -files 4 -dirty-mb 8 [-strategy all|sprite-flush|full-copy|copy-on-reference|pre-copy]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sprite/internal/core"
	"sprite/internal/fs"
	"sprite/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "migbench:", err)
		os.Exit(1)
	}
}

func strategies(name string) ([]core.TransferStrategy, error) {
	all := []core.TransferStrategy{
		core.SpriteFlushStrategy{},
		core.FullCopyStrategy{},
		core.CopyOnReferenceStrategy{},
		core.PreCopyStrategy{RedirtyPagesPerSec: 50},
	}
	if name == "all" || name == "" {
		return all, nil
	}
	for _, s := range all {
		if s.Name() == name {
			return []core.TransferStrategy{s}, nil
		}
	}
	return nil, fmt.Errorf("unknown strategy %q", name)
}

func run(args []string) error {
	flags := flag.NewFlagSet("migbench", flag.ContinueOnError)
	var (
		files    = flags.Int("files", 4, "open files at migration time")
		dirtyMB  = flags.Int("dirty-mb", 8, "dirty heap megabytes at migration time")
		strategy = flags.String("strategy", "all", "VM transfer strategy (or 'all')")
		seed     = flags.Int64("seed", 42, "simulation seed")
	)
	if err := flags.Parse(args); err != nil {
		return err
	}
	sts, err := strategies(*strategy)
	if err != nil {
		return err
	}
	fmt.Printf("%-18s %-10s %-10s %-9s %-9s %-9s %-9s %-8s\n",
		"strategy", "total", "freeze", "vm", "files", "pcb", "resume", "residual")
	for _, s := range sts {
		rec, resume, err := migrateOnce(*seed, s, *files, *dirtyMB)
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %-10s %-10s %-9s %-9s %-9s %-9s %-8v\n",
			s.Name(),
			rec.Total.Round(100*time.Microsecond),
			rec.Freeze.Round(100*time.Microsecond),
			rec.VMTime.Round(100*time.Microsecond),
			rec.FileTime.Round(100*time.Microsecond),
			rec.PCBTime.Round(100*time.Microsecond),
			resume.Round(100*time.Microsecond),
			rec.Residual)
	}
	return nil
}

func migrateOnce(seed int64, strategy core.TransferStrategy, files, dirtyMB int) (core.MigrationRecord, time.Duration, error) {
	c, err := core.NewCluster(core.Options{Workstations: 2, FileServers: 1, Seed: seed})
	if err != nil {
		return core.MigrationRecord{}, 0, err
	}
	if err := c.SeedBinary("/bin/prog", 128<<10); err != nil {
		return core.MigrationRecord{}, 0, err
	}
	for i := 0; i < files; i++ {
		if err := c.Seed(fmt.Sprintf("/data/f%d", i), []byte("contents")); err != nil {
			return core.MigrationRecord{}, 0, err
		}
	}
	c.SetStrategyAll(strategy)
	pageSize := c.Params().VM.PageSize
	dirtyPages := dirtyMB << 20 / pageSize
	heap := dirtyPages
	if heap < 8 {
		heap = 8
	}
	src, dst := c.Workstation(0), c.Workstation(1)
	var resume time.Duration
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "subject", func(ctx *core.Ctx) error {
			for i := 0; i < files; i++ {
				if _, err := ctx.Open(fmt.Sprintf("/data/f%d", i), fs.ReadMode, fs.OpenOptions{}); err != nil {
					return err
				}
			}
			if dirtyPages > 0 {
				if err := ctx.TouchHeap(0, dirtyPages, true); err != nil {
					return err
				}
			}
			if err := ctx.Migrate(dst.Host()); err != nil {
				return err
			}
			t0 := ctx.Now()
			if dirtyPages > 0 {
				if err := ctx.TouchHeap(0, dirtyPages, false); err != nil {
					return err
				}
			}
			resume = ctx.Now() - t0
			return nil
		}, core.ProcConfig{Binary: "/bin/prog", CodePages: 8, HeapPages: heap, StackPages: 2})
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		return core.MigrationRecord{}, 0, err
	}
	recs := c.MigrationRecords()
	if len(recs) != 1 {
		return core.MigrationRecord{}, 0, fmt.Errorf("expected 1 migration, got %d", len(recs))
	}
	return recs[0], resume, nil
}
