// Command migbench runs migration micro-benchmarks: one migration with a
// configurable process footprint under each VM transfer strategy, printing
// the per-phase breakdown (negotiate, VM transfer, stream handoff, PCB,
// resume) the thesis tabulates. Each strategy runs twice — once over the
// batched bulk-transfer data plane and once over the legacy per-page path —
// so the ablation is part of every report.
//
// Usage:
//
//	migbench -files 4 -dirty-mb 8 [-strategy all|sprite-flush|full-copy|copy-on-reference|pre-copy]
//	migbench -out BENCH_migration.json [-baseline bench/BENCH_migration.json]
//
// -out writes the results as JSON for the benchmark-regression harness
// (see `make bench`). -baseline compares the run against a previously
// saved JSON file and exits non-zero if any strategy's total migration
// time — or any individual phase — regressed by more than -tolerance
// (default 20%). A missing baseline file is not an error: the gate arms
// once a baseline exists. -min-batch-gain (default 0.30) additionally
// requires the batched sprite-flush migration to beat the legacy one by at
// least that fraction of total time whenever both modes were measured.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"time"

	"sprite/internal/core"
	spritefs "sprite/internal/fs"
	"sprite/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "migbench:", err)
		os.Exit(1)
	}
}

func strategies(name string) ([]core.TransferStrategy, error) {
	all := []core.TransferStrategy{
		core.SpriteFlushStrategy{},
		core.FullCopyStrategy{},
		core.CopyOnReferenceStrategy{},
		core.PreCopyStrategy{RedirtyPagesPerSec: 50},
	}
	if name == "all" || name == "" {
		return all, nil
	}
	for _, s := range all {
		if s.Name() == name {
			return []core.TransferStrategy{s}, nil
		}
	}
	return nil, fmt.Errorf("unknown strategy %q", name)
}

// benchResult is one strategy+mode's measured migration, as written to the
// JSON report. Durations are milliseconds of virtual time, so the numbers
// are deterministic for a given seed and safe to diff across machines.
type benchResult struct {
	Strategy    string  `json:"strategy"`
	Batching    bool    `json:"batching"`
	TotalMS     float64 `json:"total_ms"`
	FreezeMS    float64 `json:"freeze_ms"`
	NegotiateMS float64 `json:"negotiate_ms"`
	VMMS        float64 `json:"vm_ms"`
	StreamsMS   float64 `json:"streams_ms"`
	PCBMS       float64 `json:"pcb_ms"`
	ResumeMS    float64 `json:"resume_ms"`
	TouchbackMS float64 `json:"touchback_ms"`
	VMBytes     int     `json:"vm_bytes"`
	Files       int     `json:"files"`
	Residual    bool    `json:"residual"`

	// Bulk data-plane counters (zero on the legacy path).
	BatchRuns        int `json:"batch_runs,omitempty"`
	BatchFragments   int `json:"batch_fragments,omitempty"`
	BatchRetransmits int `json:"batch_retransmits,omitempty"`
}

// key identifies a result across reports: strategy plus data-plane mode.
func (r benchResult) key() string { return r.Strategy + "/" + modeName(r.Batching) }

func modeName(batched bool) string {
	if batched {
		return "batched"
	}
	return "legacy"
}

// benchReport is the BENCH_migration.json document.
type benchReport struct {
	Name    string        `json:"name"`
	Seed    int64         `json:"seed"`
	Files   int           `json:"files"`
	DirtyMB int           `json:"dirty_mb"`
	Results []benchResult `json:"results"`
}

func msf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func run(args []string, w io.Writer) error {
	flags := flag.NewFlagSet("migbench", flag.ContinueOnError)
	var (
		files     = flags.Int("files", 4, "open files at migration time")
		dirtyMB   = flags.Int("dirty-mb", 8, "dirty heap megabytes at migration time")
		strategy  = flags.String("strategy", "all", "VM transfer strategy (or 'all')")
		mode      = flags.String("mode", "both", "data plane: both|batched|legacy")
		seed      = flags.Int64("seed", 42, "simulation seed")
		out       = flags.String("out", "", "write results as JSON to this file")
		baseline  = flags.String("baseline", "", "compare against this JSON report; missing file disarms the gate")
		tolerance = flags.Float64("tolerance", 0.20, "allowed fractional regression vs baseline, total and per phase")
		minGain   = flags.Float64("min-batch-gain", 0.30, "required fractional sprite-flush total-time win of batched over legacy (0 disables)")
	)
	if err := flags.Parse(args); err != nil {
		return err
	}
	sts, err := strategies(*strategy)
	if err != nil {
		return err
	}
	var modes []bool
	switch *mode {
	case "both":
		modes = []bool{true, false}
	case "batched":
		modes = []bool{true}
	case "legacy":
		modes = []bool{false}
	default:
		return fmt.Errorf("unknown mode %q (want both, batched, or legacy)", *mode)
	}
	report := benchReport{Name: "migration", Seed: *seed, Files: *files, DirtyMB: *dirtyMB}
	fmt.Fprintf(w, "%-18s %-8s %-10s %-10s %-9s %-9s %-9s %-9s %-9s %-9s %-6s %-8s\n",
		"strategy", "mode", "total", "freeze", "negotiate", "vm", "streams", "pcb", "resume", "touchback", "frags", "residual")
	for _, s := range sts {
		for _, batched := range modes {
			rec, touchback, err := migrateOnce(*seed, s, *files, *dirtyMB, batched)
			if err != nil {
				return err
			}
			// Phases must tile Total exactly — the span accounting
			// contract holds even when streams overlap the VM transfer.
			if sum := rec.NegotiateTime + rec.VMTime + rec.FileTime + rec.PCBTime + rec.ResumeTime; sum != rec.Total {
				return fmt.Errorf("%s/%s: phases sum to %v, total %v",
					s.Name(), modeName(batched), sum, rec.Total)
			}
			r := 100 * time.Microsecond
			fmt.Fprintf(w, "%-18s %-8s %-10s %-10s %-9s %-9s %-9s %-9s %-9s %-9s %-6d %-8v\n",
				s.Name(), modeName(batched),
				rec.Total.Round(r), rec.Freeze.Round(r),
				rec.NegotiateTime.Round(r), rec.VMTime.Round(r),
				rec.FileTime.Round(r), rec.PCBTime.Round(r), rec.ResumeTime.Round(r),
				touchback.Round(r),
				rec.BatchFragments, rec.Residual)
			report.Results = append(report.Results, benchResult{
				Strategy:         s.Name(),
				Batching:         batched,
				TotalMS:          msf(rec.Total),
				FreezeMS:         msf(rec.Freeze),
				NegotiateMS:      msf(rec.NegotiateTime),
				VMMS:             msf(rec.VMTime),
				StreamsMS:        msf(rec.FileTime),
				PCBMS:            msf(rec.PCBTime),
				ResumeMS:         msf(rec.ResumeTime),
				TouchbackMS:      msf(touchback),
				VMBytes:          rec.VMBytes,
				Files:            rec.Files,
				Residual:         rec.Residual,
				BatchRuns:        rec.BatchRuns,
				BatchFragments:   rec.BatchFragments,
				BatchRetransmits: rec.BatchRetransmits,
			})
		}
	}
	if *minGain > 0 {
		if err := checkBatchGain(w, report, *minGain); err != nil {
			return err
		}
	}
	if *out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *out)
	}
	if *baseline != "" {
		if err := checkBaseline(w, report, *baseline, *tolerance); err != nil {
			return err
		}
	}
	return nil
}

// checkBatchGain enforces the data-plane speedup claim: when sprite-flush was
// measured in both modes, the batched total must undercut the legacy total by
// at least minGain.
func checkBatchGain(w io.Writer, rep benchReport, minGain float64) error {
	var batched, legacy float64
	for _, r := range rep.Results {
		if r.Strategy != "sprite-flush" {
			continue
		}
		if r.Batching {
			batched = r.TotalMS
		} else {
			legacy = r.TotalMS
		}
	}
	if batched <= 0 || legacy <= 0 {
		return nil // one of the modes was not measured; nothing to compare
	}
	gain := 1 - batched/legacy
	fmt.Fprintf(w, "sprite-flush batched %.2fms vs legacy %.2fms: %.1f%% faster (need >= %.0f%%)\n",
		batched, legacy, gain*100, minGain*100)
	if gain < minGain {
		return fmt.Errorf("batched sprite-flush gained only %.1f%% over legacy, need >= %.0f%%",
			gain*100, minGain*100)
	}
	return nil
}

// phaseGates lists the per-result fields the regression gate checks
// individually, beyond the total.
var phaseGates = []struct {
	name string
	get  func(benchResult) float64
}{
	{"negotiate", func(r benchResult) float64 { return r.NegotiateMS }},
	{"vm", func(r benchResult) float64 { return r.VMMS }},
	{"streams", func(r benchResult) float64 { return r.StreamsMS }},
	{"pcb", func(r benchResult) float64 { return r.PCBMS }},
	{"resume", func(r benchResult) float64 { return r.ResumeMS }},
}

// phaseGateFloorMS: baseline phases at or below this are too small for a
// meaningful ratio (an overlapped streams phase can legitimately be 0), so
// they are reported but not gated.
const phaseGateFloorMS = 0.5

// checkBaseline compares the fresh report against a saved one and errors on
// any strategy+mode whose total migration time — or any individual phase —
// regressed beyond tolerance. Phases with a near-zero baseline are exempt
// from the ratio gate. A missing baseline file only prints a note: the gate
// arms once someone commits a baseline.
func checkBaseline(w io.Writer, cur benchReport, path string, tolerance float64) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		fmt.Fprintf(w, "no baseline at %s; regression gate disarmed\n", path)
		return nil
	}
	if err != nil {
		return err
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	baseBy := make(map[string]benchResult, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.key()] = r
	}
	pct := func(curv, basev float64) float64 { return (curv/basev - 1) * 100 }
	var regressions []string
	for _, r := range cur.Results {
		b, ok := baseBy[r.key()]
		if !ok || b.TotalMS <= 0 {
			continue
		}
		ratio := r.TotalMS / b.TotalMS
		status := "ok"
		if ratio > 1+tolerance {
			status = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: total %.2fms vs baseline %.2fms (%+.1f%%)",
					r.key(), r.TotalMS, b.TotalMS, (ratio-1)*100))
		}
		fmt.Fprintf(w, "vs baseline %-26s total %.2fms -> %.2fms (%+.1f%%) %s\n",
			r.key(), b.TotalMS, r.TotalMS, (ratio-1)*100, status)
		for _, pg := range phaseGates {
			bv, cv := pg.get(b), pg.get(r)
			switch {
			case bv <= phaseGateFloorMS:
				fmt.Fprintf(w, "    %-9s %8.2fms -> %8.2fms (baseline too small to gate)\n", pg.name, bv, cv)
			case cv > bv*(1+tolerance):
				fmt.Fprintf(w, "    %-9s %8.2fms -> %8.2fms (%+.1f%%) REGRESSION\n", pg.name, bv, cv, pct(cv, bv))
				regressions = append(regressions,
					fmt.Sprintf("%s: phase %s %.2fms vs baseline %.2fms (%+.1f%%)",
						r.key(), pg.name, cv, bv, pct(cv, bv)))
			default:
				fmt.Fprintf(w, "    %-9s %8.2fms -> %8.2fms (%+.1f%%) ok\n", pg.name, bv, cv, pct(cv, bv))
			}
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("migration time regressed >%.0f%%: %v", tolerance*100, regressions)
	}
	return nil
}

func migrateOnce(seed int64, strategy core.TransferStrategy, files, dirtyMB int, batched bool) (core.MigrationRecord, time.Duration, error) {
	params := core.DefaultParams()
	params.Batch.Enabled = batched
	c, err := core.NewCluster(core.Options{Workstations: 2, FileServers: 1, Seed: seed, Params: &params})
	if err != nil {
		return core.MigrationRecord{}, 0, err
	}
	if err := c.SeedBinary("/bin/prog", 128<<10); err != nil {
		return core.MigrationRecord{}, 0, err
	}
	for i := 0; i < files; i++ {
		if err := c.Seed(fmt.Sprintf("/data/f%d", i), []byte("contents")); err != nil {
			return core.MigrationRecord{}, 0, err
		}
	}
	c.SetStrategyAll(strategy)
	pageSize := c.Params().VM.PageSize
	dirtyPages := dirtyMB << 20 / pageSize
	heap := dirtyPages
	if heap < 8 {
		heap = 8
	}
	src, dst := c.Workstation(0), c.Workstation(1)
	var touchback time.Duration
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "subject", func(ctx *core.Ctx) error {
			for i := 0; i < files; i++ {
				if _, err := ctx.Open(fmt.Sprintf("/data/f%d", i), spritefs.ReadMode, spritefs.OpenOptions{}); err != nil {
					return err
				}
			}
			if dirtyPages > 0 {
				if err := ctx.TouchHeap(0, dirtyPages, true); err != nil {
					return err
				}
			}
			if err := ctx.Migrate(dst.Host()); err != nil {
				return err
			}
			t0 := ctx.Now()
			if dirtyPages > 0 {
				if err := ctx.TouchHeap(0, dirtyPages, false); err != nil {
					return err
				}
			}
			touchback = ctx.Now() - t0
			return nil
		}, core.ProcConfig{Binary: "/bin/prog", CodePages: 8, HeapPages: heap, StackPages: 2})
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		return core.MigrationRecord{}, 0, err
	}
	recs := c.MigrationRecords()
	if len(recs) != 1 {
		return core.MigrationRecord{}, 0, fmt.Errorf("expected 1 migration, got %d", len(recs))
	}
	return recs[0], touchback, nil
}
