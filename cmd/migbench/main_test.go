package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchJSONHasPhaseBreakdown: the emitted BENCH_migration.json carries
// the negotiate / VM / stream-handoff / resume decomposition for all four
// strategies in both data-plane modes, and the phases tile the total.
func TestBenchJSONHasPhaseBreakdown(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_migration.json")
	var buf bytes.Buffer
	if err := run([]string{"-dirty-mb", "2", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 8 {
		t.Fatalf("results = %d, want all 4 strategies x 2 modes", len(rep.Results))
	}
	seen := map[string]bool{}
	for _, r := range rep.Results {
		seen[r.key()] = true
		// StreamsMS may be zero in batched mode: the stream transfer
		// overlaps the VM transfer and its span covers only the tail.
		if r.TotalMS <= 0 || r.NegotiateMS <= 0 || r.StreamsMS < 0 || r.PCBMS <= 0 || r.ResumeMS < 0 {
			t.Fatalf("%s: non-positive phase fields: %+v", r.key(), r)
		}
		sum := r.NegotiateMS + r.VMMS + r.StreamsMS + r.PCBMS + r.ResumeMS
		if diff := sum - r.TotalMS; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("%s: phases sum to %.6f, total %.6f", r.key(), sum, r.TotalMS)
		}
		if r.Batching && r.Strategy != "copy-on-reference" && r.BatchFragments <= 0 {
			t.Fatalf("%s: batched run reports no fragments: %+v", r.key(), r)
		}
		if !r.Batching && (r.BatchRuns != 0 || r.BatchFragments != 0 || r.BatchRetransmits != 0) {
			t.Fatalf("%s: legacy run reports batch counters: %+v", r.key(), r)
		}
	}
	for _, s := range []string{"sprite-flush", "full-copy", "copy-on-reference", "pre-copy"} {
		for _, m := range []string{"batched", "legacy"} {
			if !seen[s+"/"+m] {
				t.Fatalf("%s/%s missing from report", s, m)
			}
		}
	}
}

// TestBatchGainGate: the batched sprite-flush run must beat the legacy one by
// the advertised margin at the standard footprint, and an unreachable margin
// trips the gate.
func TestBatchGainGate(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-dirty-mb", "2", "-strategy", "sprite-flush"}, &buf); err != nil {
		t.Fatalf("default -min-batch-gain failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "faster") {
		t.Fatalf("batch-gain line missing:\n%s", buf.String())
	}
	err := run([]string{"-dirty-mb", "2", "-strategy", "sprite-flush", "-min-batch-gain", "0.99"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "gained only") {
		t.Fatalf("unreachable gain did not trip the gate: %v", err)
	}
}

// TestBaselineGate: an identical baseline passes, a tightened one trips the
// >20% regression check — on the total and on any individual phase — and a
// missing baseline only prints a note.
func TestBaselineGate(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "cur.json")
	var buf bytes.Buffer
	if err := run([]string{"-dirty-mb", "1", "-strategy", "sprite-flush", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}

	writeBaseline := func(mutate func(*benchResult)) string {
		b := rep
		b.Results = append([]benchResult(nil), rep.Results...)
		for i := range b.Results {
			mutate(&b.Results[i])
		}
		p := filepath.Join(dir, "baseline.json")
		enc, _ := json.Marshal(b)
		if err := os.WriteFile(p, enc, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Same numbers: identical run, deterministic simulation — must pass.
	p := writeBaseline(func(r *benchResult) {})
	if err := run([]string{"-dirty-mb", "1", "-strategy", "sprite-flush", "-baseline", p}, &buf); err != nil {
		t.Fatalf("identical baseline failed the gate: %v", err)
	}
	// Baseline total 40% faster than reality: the gate must trip.
	p = writeBaseline(func(r *benchResult) { r.TotalMS /= 1.4 })
	err = run([]string{"-dirty-mb", "1", "-strategy", "sprite-flush", "-baseline", p}, &buf)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("gate did not trip on a 40%% total regression: %v", err)
	}
	// Only the VM phase regresses (total left alone): the per-phase gate
	// must trip on its own.
	p = writeBaseline(func(r *benchResult) { r.VMMS /= 1.4 })
	err = run([]string{"-dirty-mb", "1", "-strategy", "sprite-flush", "-baseline", p}, &buf)
	if err == nil || !strings.Contains(err.Error(), "phase vm") {
		t.Fatalf("gate did not trip on a 40%% vm-phase regression: %v", err)
	}
	// A near-zero baseline phase (overlapped streams) is reported but not
	// gated, even if the current value is larger.
	p = writeBaseline(func(r *benchResult) { r.StreamsMS = 0 })
	buf.Reset()
	if err := run([]string{"-dirty-mb", "1", "-strategy", "sprite-flush", "-baseline", p}, &buf); err != nil {
		t.Fatalf("zero-baseline streams phase tripped the gate: %v", err)
	}
	if !strings.Contains(buf.String(), "too small to gate") {
		t.Fatalf("ungated-phase note absent:\n%s", buf.String())
	}
	// Missing baseline: disarmed, not an error.
	buf.Reset()
	if err := run([]string{"-dirty-mb", "1", "-strategy", "sprite-flush", "-baseline", filepath.Join(dir, "nope.json")}, &buf); err != nil {
		t.Fatalf("missing baseline errored: %v", err)
	}
	if !strings.Contains(buf.String(), "disarmed") {
		t.Fatalf("missing baseline note absent:\n%s", buf.String())
	}
}
