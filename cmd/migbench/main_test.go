package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchJSONHasPhaseBreakdown: the emitted BENCH_migration.json carries
// the negotiate / VM / stream-handoff / resume decomposition for all four
// strategies, and the phases tile the total.
func TestBenchJSONHasPhaseBreakdown(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_migration.json")
	var buf bytes.Buffer
	if err := run([]string{"-dirty-mb", "2", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("results = %d, want all 4 strategies", len(rep.Results))
	}
	seen := map[string]bool{}
	for _, r := range rep.Results {
		seen[r.Strategy] = true
		if r.TotalMS <= 0 || r.NegotiateMS <= 0 || r.StreamsMS <= 0 || r.PCBMS <= 0 || r.ResumeMS < 0 {
			t.Fatalf("%s: non-positive phase fields: %+v", r.Strategy, r)
		}
		sum := r.NegotiateMS + r.VMMS + r.StreamsMS + r.PCBMS + r.ResumeMS
		if diff := sum - r.TotalMS; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("%s: phases sum to %.6f, total %.6f", r.Strategy, sum, r.TotalMS)
		}
	}
	for _, s := range []string{"sprite-flush", "full-copy", "copy-on-reference", "pre-copy"} {
		if !seen[s] {
			t.Fatalf("strategy %s missing from report", s)
		}
	}
}

// TestBaselineGate: an inflated baseline passes, a tightened one trips the
// >20% regression check, and a missing baseline only prints a note.
func TestBaselineGate(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "cur.json")
	var buf bytes.Buffer
	if err := run([]string{"-dirty-mb", "1", "-strategy", "sprite-flush", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}

	writeBaseline := func(scale float64) string {
		b := rep
		b.Results = append([]benchResult(nil), rep.Results...)
		for i := range b.Results {
			b.Results[i].TotalMS *= scale
		}
		p := filepath.Join(dir, "baseline.json")
		enc, _ := json.Marshal(b)
		if err := os.WriteFile(p, enc, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Same numbers: identical run, deterministic simulation — must pass.
	p := writeBaseline(1.0)
	if err := run([]string{"-dirty-mb", "1", "-strategy", "sprite-flush", "-baseline", p}, &buf); err != nil {
		t.Fatalf("identical baseline failed the gate: %v", err)
	}
	// Baseline 40% faster than reality: the gate must trip.
	p = writeBaseline(1 / 1.4)
	err = run([]string{"-dirty-mb", "1", "-strategy", "sprite-flush", "-baseline", p}, &buf)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("gate did not trip on a 40%% regression: %v", err)
	}
	// Missing baseline: disarmed, not an error.
	buf.Reset()
	if err := run([]string{"-dirty-mb", "1", "-strategy", "sprite-flush", "-baseline", filepath.Join(dir, "nope.json")}, &buf); err != nil {
		t.Fatalf("missing baseline errored: %v", err)
	}
	if !strings.Contains(buf.String(), "disarmed") {
		t.Fatalf("missing baseline note absent:\n%s", buf.String())
	}
}
