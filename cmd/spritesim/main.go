// Command spritesim runs the reproduced experiments of the Sprite process
// migration thesis and prints their tables.
//
// Usage:
//
//	spritesim -list
//	spritesim -experiment E5 [-seed 42] [-quick] [-metrics]
//	spritesim -all [-quick]
//
// -metrics appends every cluster's metrics snapshot (RPC traffic, cache
// behaviour, migration phase timings) under the corresponding table.
package main

import (
	"flag"
	"fmt"
	"os"

	"sprite/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spritesim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("spritesim", flag.ContinueOnError)
	var (
		list  = fs.Bool("list", false, "list available experiments")
		expID = fs.String("experiment", "", "experiment id to run (E1..E14)")
		all   = fs.Bool("all", false, "run every experiment")
		seed    = fs.Int64("seed", 42, "simulation seed")
		quick   = fs.Bool("quick", false, "smaller parameter sweeps")
		metrics = fs.Bool("metrics", false, "append each cluster's metrics snapshot to the tables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Seed: *seed, Quick: *quick, Metrics: *metrics}
	switch {
	case *list:
		for _, r := range experiments.All() {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return nil
	case *all:
		for _, r := range experiments.All() {
			tbl, err := r.Run(cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", r.ID, err)
			}
			fmt.Println(tbl)
		}
		return nil
	case *expID != "":
		r := experiments.Find(*expID)
		if r == nil {
			return fmt.Errorf("unknown experiment %q (try -list)", *expID)
		}
		tbl, err := r.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Println(tbl)
		return nil
	default:
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -experiment, -all, or -list")
	}
}
