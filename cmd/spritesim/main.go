// Command spritesim runs the reproduced experiments of the Sprite process
// migration thesis and prints their tables.
//
// Usage:
//
//	spritesim -list
//	spritesim -experiment E5 [-seed 42] [-quick] [-metrics]
//	spritesim -experiment E15 [-crash ws1@250ms+200ms] [-recovery-snapshot out.json]
//	spritesim -experiment E16 [-fleet-10k] [-hostsel-snapshot HOSTSEL_shootout.json]
//	spritesim -experiment E16 -hosts 10000
//	spritesim -experiment E17 [-hosts 1000] [-wallclock-snapshot BENCH_wallclock.json]
//	spritesim -experiment E18 [-quick] [-fleet-snapshot FLEET_storms.json]
//	spritesim -fleet-storm 5007
//	spritesim -confined-scale SCALE_confined.json [-hosts 10000]
//	spritesim -all [-quick] [-parallel] [-workers N]
//
// -metrics appends every cluster's metrics snapshot (RPC traffic, cache
// behaviour, migration phase timings) under the corresponding table.
//
// -crash schedules a host fault in the recovery experiment (E15):
// host@at[+dur] crashes the host at `at` and restarts it `dur` later;
// without +dur the host reboots instantly (state lost, epoch bumped).
// Repeatable. -recovery-snapshot writes E15's final metrics as JSON.
//
// -fleet-10k adds the 10,000-host point to the selector shoot-out (E16);
// -hostsel-snapshot writes E16's per-selector results as JSON.
//
// -hosts overrides the scale-aware experiments' host count: E16 runs its
// combined-churn schedule at exactly that fleet size (the 10k CI tier),
// and E17 sizes its confined load-daemon fleet.
//
// -parallel / -workers run every cluster on the conservative parallel
// kernel, which commits the identical event order — same tables, less
// wallclock. -wallclock-snapshot writes E17's measurements as JSON.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"sprite/internal/experiments"
	"sprite/internal/fault"
	"sprite/internal/recovery"
)

// crashFlags collects repeated -crash values.
type crashFlags []recovery.CrashSpec

func (c *crashFlags) String() string {
	s := ""
	for i, sp := range *c {
		if i > 0 {
			s += ","
		}
		s += sp.String()
	}
	return s
}

func (c *crashFlags) Set(v string) error {
	sp, err := recovery.ParseCrashSpec(v)
	if err != nil {
		return err
	}
	*c = append(*c, sp)
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		//spritelint:allow simtaint E17's error values may carry measured host wall time; operator diagnostics, not sim state
		fmt.Fprintln(os.Stderr, "spritesim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("spritesim", flag.ContinueOnError)
	var (
		list      = fs.Bool("list", false, "list available experiments")
		expID     = fs.String("experiment", "", "experiment id to run (E1..E14)")
		all       = fs.Bool("all", false, "run every experiment")
		seed      = fs.Int64("seed", 42, "simulation seed")
		quick     = fs.Bool("quick", false, "smaller parameter sweeps")
		metrics   = fs.Bool("metrics", false, "append each cluster's metrics snapshot to the tables")
		recSnap   = fs.String("recovery-snapshot", "", "write the recovery experiment's (E15) metrics snapshot JSON to this file")
		fleet10k  = fs.Bool("fleet-10k", false, "add the 10,000-host point to the selector shoot-out (E16)")
		hostSnap  = fs.String("hostsel-snapshot", "", "write the selector shoot-out's (E16) results JSON to this file")
		hosts     = fs.Int("hosts", 0, "override the scale-aware experiments' host count (E16 fleet size, E17 load daemons)")
		wallSnap  = fs.String("wallclock-snapshot", "", "write the wallclock experiment's (E17) rows JSON to this file")
		confScale  = fs.String("confined-scale", "", "run the confined-hosts scale tier (serial vs parallel migration plane, default 10000 hosts; -hosts overrides) and write the comparison JSON to this file")
		fleetSnap  = fs.String("fleet-snapshot", "", "write the fleet economy experiment's (E18) rows JSON to this file")
		fleetStorm = fs.Int64("fleet-storm", 0, "replay one fleet eviction-storm fuzz scenario by seed and print its report")
		parallel  = fs.Bool("parallel", false, "run every cluster on the conservative parallel kernel (identical results, less wallclock)")
		workers   = fs.Int("workers", 0, "parallel kernel worker count (0 = GOMAXPROCS; implies -parallel)")
	)
	var crashes crashFlags
	fs.Var(&crashes, "crash", "recovery-experiment fault: host@at[+dur], e.g. ws1@250ms+200ms (repeatable; no +dur = instant reboot)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallel || *workers > 0 {
		// Every cluster any experiment builds honours SPRITE_SIM_PARALLEL
		// (core.NewCluster), so one env var opts the whole run in. The
		// parallel kernel commits the serial event order bit for bit, so
		// outputs are unchanged.
		v := "true"
		if *workers > 0 {
			v = strconv.Itoa(*workers)
		}
		os.Setenv("SPRITE_SIM_PARALLEL", v)
	}
	cfg := experiments.Config{
		Seed: *seed, Quick: *quick, Metrics: *metrics,
		Crashes: crashes, RecoverySnapshot: *recSnap,
		Fleet10k: *fleet10k, HostselSnapshot: *hostSnap,
		Hosts: *hosts, WallclockSnapshot: *wallSnap,
		ConfinedScaleSnapshot: *confScale,
		FleetSnapshot:         *fleetSnap,
	}
	switch {
	case *fleetStorm != 0:
		// Replay one seed of the fleet fuzzer's eviction-storm family (the
		// same scenarios TestFleetFuzz sweeps) and print its verdict — the
		// debugging entry point a failure report names.
		sc := fault.GenFleetScenario(*fleetStorm)
		res := fault.RunFleetScenario(sc)
		fmt.Print(sc.Report(res))
		if res.Failed() {
			min, minRes := fault.ShrinkFleet(sc)
			fmt.Printf("shrunk:\n%s", min.Report(minRes))
			return fmt.Errorf("fleet storm seed %d failed", *fleetStorm)
		}
		fmt.Println("ok")
		return nil
	case *confScale != "":
		// The tier runs its own serial and parallel legs, so it must not be
		// combined with -parallel (which forces every cluster parallel and
		// would turn the serial baseline into a second parallel run).
		if *parallel || *workers > 0 {
			return fmt.Errorf("-confined-scale runs its own serial and parallel legs; drop -parallel/-workers")
		}
		tbl, err := experiments.E17ConfinedScale(cfg)
		if err != nil {
			return err
		}
		//spritelint:allow simtaint the confined-scale table reports measured host wall time by design (serial vs parallel speedup)
		fmt.Println(tbl)
		return nil
	case *list:
		for _, r := range experiments.All() {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return nil
	case *all:
		for _, r := range experiments.All() {
			tbl, err := r.Run(cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", r.ID, err)
			}
			fmt.Println(tbl)
		}
		return nil
	case *expID != "":
		r := experiments.Find(*expID)
		if r == nil {
			return fmt.Errorf("unknown experiment %q (try -list)", *expID)
		}
		tbl, err := r.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Println(tbl)
		return nil
	default:
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -experiment, -all, or -list")
	}
}
