// Command pmakesim runs parallel-make speedup sweeps on a simulated Sprite
// cluster (the thesis's flagship workload) with tunable project shape.
//
// Usage:
//
//	pmakesim -hosts 1,2,4,8,12,16 -units 24 -compile 4s -link 6s
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"sprite/internal/core"
	"sprite/internal/pmake"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pmakesim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pmakesim", flag.ContinueOnError)
	var (
		hostsFlag = fs.String("hosts", "1,2,4,8,12,16", "comma-separated host counts to sweep")
		units     = fs.Int("units", 24, "compilation units")
		compile   = fs.Duration("compile", 4*time.Second, "mean compile CPU per unit")
		link      = fs.Duration("link", 6*time.Second, "link CPU")
		lookups   = fs.Int("lookups", 80, "include-path lookups per unit")
		seed      = fs.Int64("seed", 42, "simulation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var sweep []int
	for _, part := range strings.Split(*hostsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return fmt.Errorf("bad host count %q", part)
		}
		sweep = append(sweep, n)
	}
	proj := pmake.DefaultProjectParams()
	proj.Units = *units
	proj.CompileCPU = *compile
	proj.LinkCPU = *link
	proj.LookupsPerUnit = *lookups

	fmt.Printf("%-6s %-12s %-8s %-14s %-10s\n", "hosts", "makespan", "speedup", "server-busy", "remote-jobs")
	var base time.Duration
	for _, h := range sweep {
		res, serverBusy, err := buildOnce(*seed, h, proj)
		if err != nil {
			return err
		}
		if base == 0 {
			base = res.Makespan
		}
		fmt.Printf("%-6d %-12s %-8.2f %-14s %-10d\n",
			h, res.Makespan.Round(10*time.Millisecond),
			float64(base)/float64(res.Makespan),
			serverBusy.Round(10*time.Millisecond), res.RemoteJobs)
	}
	return nil
}

func buildOnce(seed int64, hosts int, proj pmake.ProjectParams) (*pmake.Result, time.Duration, error) {
	c, err := core.NewCluster(core.Options{Workstations: hosts, FileServers: 1, Seed: seed})
	if err != nil {
		return nil, 0, err
	}
	for _, bin := range []string{"/bin/cc", "/bin/pmake"} {
		if err := c.SeedBinary(bin, 256<<10); err != nil {
			return nil, 0, err
		}
	}
	mf, err := pmake.SyntheticProject(c, rand.New(rand.NewSource(seed)), proj)
	if err != nil {
		return nil, 0, err
	}
	var remote []rpc.HostID
	for _, k := range c.Workstations()[1:] {
		remote = append(remote, k.Host())
	}
	var res *pmake.Result
	c.Boot("boot", func(env *sim.Env) error {
		p, err := c.Workstation(0).StartProcess(env, "pmake", func(ctx *core.Ctx) error {
			r, err := pmake.Run(ctx, mf, pmake.Options{Force: true, Hosts: remote})
			res = r
			return err
		}, core.ProcConfig{Binary: "/bin/pmake", CodePages: 8, HeapPages: 16, StackPages: 2})
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		return nil, 0, err
	}
	return res, c.Servers()[0].CPUBusy(), nil
}
