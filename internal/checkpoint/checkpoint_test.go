package checkpoint

import (
	"errors"
	"testing"
	"time"

	"sprite/internal/core"
	"sprite/internal/fs"
	"sprite/internal/sim"
)

func newCluster(t *testing.T) *core.Cluster {
	t.Helper()
	c, err := core.NewCluster(core.Options{Workstations: 2, FileServers: 1, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SeedBinary("/bin/job", 128<<10); err != nil {
		t.Fatal(err)
	}
	return c
}

var jobCfg = core.ProcConfig{Binary: "/bin/job", CodePages: 4, HeapPages: 64, StackPages: 2}

// TestCheckpointRestartRoundTrip: a job computes half its work, checkpoints,
// exits; a new process on another host restores and finishes exactly the
// remaining work.
func TestCheckpointRestartRoundTrip(t *testing.T) {
	c := newCluster(t)
	src, dst := c.Workstation(0), c.Workstation(1)
	total := 2 * time.Second
	var phase1CPU, phase2CPU time.Duration
	var origPID, newPID core.PID
	c.Boot("boot", func(env *sim.Env) error {
		p1, err := src.StartProcess(env, "job", func(ctx *core.Ctx) error {
			origPID = ctx.Process().PID()
			if err := ctx.TouchHeap(0, 48, true); err != nil {
				return err
			}
			if err := ctx.Compute(total / 2); err != nil {
				return err
			}
			phase1CPU = ctx.Process().CPUUsed()
			if _, err := Save(ctx, "/ckpt/job.img"); err != nil {
				return err
			}
			return ctx.Exit(0)
		}, jobCfg)
		if err != nil {
			return err
		}
		if _, err := p1.Exited().Wait(env); err != nil {
			return err
		}
		// Restart elsewhere: a brand new process.
		p2, err := dst.StartProcess(env, "job", func(ctx *core.Ctx) error {
			newPID = ctx.Process().PID()
			h, err := Restore(ctx, "/ckpt/job.img")
			if err != nil {
				return err
			}
			// The image carries how much work was done; finish the rest.
			used := time.Duration(h.CPUUsedNanos)
			if used < total/2 {
				t.Errorf("image CPUUsed = %v, want >= %v", used, total/2)
			}
			if err := ctx.Compute(total / 2); err != nil {
				return err
			}
			phase2CPU = ctx.Process().CPUUsed()
			// Restored pages are resident: touching them faults nothing.
			before := ctx.Process().Space().Stats().Faults
			if err := ctx.TouchHeap(0, 48, false); err != nil {
				return err
			}
			if got := ctx.Process().Space().Stats().Faults; got != before {
				t.Errorf("restored pages faulted: %d new faults", got-before)
			}
			return nil
		}, jobCfg)
		if err != nil {
			return err
		}
		_, err = p2.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if origPID == newPID {
		t.Fatal("checkpoint/restart should produce a NEW pid (unlike migration)")
	}
	if newPID.Home != dst.Host() {
		t.Fatalf("restarted process home = %v, want %v", newPID.Home, dst.Host())
	}
	if phase1CPU < total/2 || phase2CPU < total/2 {
		t.Fatalf("phases too short: %v + %v", phase1CPU, phase2CPU)
	}
}

// TestRestoreValidatesImage: garbage and size mismatches are rejected.
func TestRestoreValidatesImage(t *testing.T) {
	c := newCluster(t)
	if err := c.Seed("/ckpt/garbage.img", []byte("not an image")); err != nil {
		t.Fatal(err)
	}
	var gotErr error
	c.Boot("boot", func(env *sim.Env) error {
		p, err := c.Workstation(0).StartProcess(env, "job", func(ctx *core.Ctx) error {
			_, gotErr = Restore(ctx, "/ckpt/garbage.img")
			return nil
		}, jobCfg)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, ErrBadImage) {
		t.Fatalf("err = %v, want ErrBadImage", gotErr)
	}
}

// TestRestoreSizeMismatch: restoring into a differently-sized image fails.
func TestRestoreSizeMismatch(t *testing.T) {
	c := newCluster(t)
	var gotErr error
	c.Boot("boot", func(env *sim.Env) error {
		p1, err := c.Workstation(0).StartProcess(env, "small", func(ctx *core.Ctx) error {
			if err := ctx.TouchHeap(0, 4, true); err != nil {
				return err
			}
			_, err := Save(ctx, "/ckpt/small.img")
			return err
		}, core.ProcConfig{Binary: "/bin/job", CodePages: 4, HeapPages: 8, StackPages: 2})
		if err != nil {
			return err
		}
		if _, err := p1.Exited().Wait(env); err != nil {
			return err
		}
		p2, err := c.Workstation(1).StartProcess(env, "big", func(ctx *core.Ctx) error {
			_, gotErr = Restore(ctx, "/ckpt/small.img")
			return nil
		}, jobCfg)
		if err != nil {
			return err
		}
		_, err = p2.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, ErrBadImage) {
		t.Fatalf("err = %v, want ErrBadImage", gotErr)
	}
}

// TestOpenFilesDoNotFollowCheckpoint documents the semantic gap the thesis
// emphasizes: unlike migration, a restart loses open descriptors.
func TestOpenFilesDoNotFollowCheckpoint(t *testing.T) {
	c := newCluster(t)
	if err := c.Seed("/data/f", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	var readErr error
	c.Boot("boot", func(env *sim.Env) error {
		p1, err := c.Workstation(0).StartProcess(env, "reader", func(ctx *core.Ctx) error {
			fd, err := ctx.Open("/data/f", fs.ReadMode, fs.OpenOptions{})
			if err != nil {
				return err
			}
			if _, err := ctx.Read(fd, 5); err != nil {
				return err
			}
			if _, err := Save(ctx, "/ckpt/reader.img"); err != nil {
				return err
			}
			return ctx.Close(fd)
		}, jobCfg)
		if err != nil {
			return err
		}
		if _, err := p1.Exited().Wait(env); err != nil {
			return err
		}
		p2, err := c.Workstation(1).StartProcess(env, "reader2", func(ctx *core.Ctx) error {
			if _, err := Restore(ctx, "/ckpt/reader.img"); err != nil {
				return err
			}
			// The old fd does not exist in this process.
			_, readErr = ctx.Read(0, 5)
			return nil
		}, jobCfg)
		if err != nil {
			return err
		}
		_, err = p2.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(readErr, core.ErrBadFD) {
		t.Fatalf("read err = %v, want ErrBadFD (descriptors lost)", readErr)
	}
}

// TestCheckpointMovesWholeResidentImage: the cost asymmetry vs Sprite's
// flush — checkpoint writes all resident pages even when few are dirty.
func TestCheckpointMovesWholeResidentImage(t *testing.T) {
	c := newCluster(t)
	var imageSize int
	c.Boot("boot", func(env *sim.Env) error {
		p, err := c.Workstation(0).StartProcess(env, "mostly-clean", func(ctx *core.Ctx) error {
			// 48 resident pages, only 4 dirty.
			if err := ctx.TouchHeap(0, 48, false); err != nil {
				return err
			}
			if err := ctx.TouchHeap(0, 4, true); err != nil {
				return err
			}
			if _, err := Save(ctx, "/ckpt/clean.img"); err != nil {
				return err
			}
			size, err := ctx.Stat("/ckpt/clean.img")
			if err != nil {
				return err
			}
			imageSize = size
			return nil
		}, jobCfg)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	pageSize := core.DefaultParams().VM.PageSize
	if imageSize < 48*pageSize {
		t.Fatalf("image = %d bytes, want >= 48 resident pages (%d)", imageSize, 48*pageSize)
	}
}
