// Package checkpoint implements the checkpoint/restart style of moving
// computations that the thesis compares migration against (Condor/Remote
// UNIX [Lit87, LLM88], Smith & Ioannidis's remote fork [SI89], and Alonso &
// Kyrimis's facility [AK88]).
//
// A checkpoint writes the process's entire resident memory image and a
// small PCB record to a file in the shared file system; a restart creates a
// *new* process elsewhere that reads the image back and resumes. The
// semantic differences from Sprite migration are the ones the thesis calls
// out, and the tests assert them:
//
//   - the restarted process has a new pid and a new home (it is not the
//     same process);
//   - open streams do not follow; the program must reopen and reposition;
//   - the whole resident image moves twice (source -> file server ->
//     target), whereas Sprite's flush moves only dirty pages once and
//     demand-pages only what is touched.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"sprite/internal/core"
	"sprite/internal/fs"
	"sprite/internal/vm"
)

// ErrBadImage is returned when an image file fails validation.
var ErrBadImage = errors.New("checkpoint: bad image")

// imageMagic guards against restoring from garbage.
const imageMagic = 0x53505249 // "SPRI"

// Header describes a checkpoint image.
type Header struct {
	// CodePages, HeapPages, StackPages are the segment sizes in pages.
	CodePages  int
	HeapPages  int
	StackPages int
	// ResidentHeap and ResidentStack are the counts of image pages saved.
	ResidentHeap  int
	ResidentStack int
	// CPUUsedNanos is accumulated compute time, so a restartable job can
	// resume where it left off.
	CPUUsedNanos int64
}

func (h Header) encode() []byte {
	buf := make([]byte, 4+6*8)
	binary.LittleEndian.PutUint32(buf, imageMagic)
	vals := []int64{
		int64(h.CodePages), int64(h.HeapPages), int64(h.StackPages),
		int64(h.ResidentHeap), int64(h.ResidentStack), h.CPUUsedNanos,
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[4+i*8:], uint64(v))
	}
	return buf
}

func decodeHeader(buf []byte) (Header, error) {
	if len(buf) < 4+6*8 || binary.LittleEndian.Uint32(buf) != imageMagic {
		return Header{}, ErrBadImage
	}
	at := func(i int) int64 { return int64(binary.LittleEndian.Uint64(buf[4+i*8:])) }
	return Header{
		CodePages:     int(at(0)),
		HeapPages:     int(at(1)),
		StackPages:    int(at(2)),
		ResidentHeap:  int(at(3)),
		ResidentStack: int(at(4)),
		CPUUsedNanos:  at(5),
	}, nil
}

// Save writes the calling process's checkpoint image to path: a header plus
// every resident heap/stack page (code pages come from the binary and are
// not saved). It is called by the program itself at a point of its
// choosing, as in Condor.
func Save(ctx *core.Ctx, path string) (Header, error) {
	return SaveFrom(ctx, path, 0)
}

// SaveFrom is Save with a progress base: the recorded CPUUsedNanos is base
// plus the process's own compute time. A supervisor restarting jobs from
// checkpoints passes the CPUUsedNanos it restored from, so progress stays
// cumulative across incarnations even though each restarted process's own
// CPU clock starts at zero.
func SaveFrom(ctx *core.Ctx, path string, base time.Duration) (Header, error) {
	p := ctx.Process()
	space := p.Space()
	if space == nil {
		return Header{}, fmt.Errorf("checkpoint: process %v has no address space", p.PID())
	}
	h := Header{
		CodePages:     space.Code.Pages(),
		HeapPages:     space.Heap.Pages(),
		StackPages:    space.Stack.Pages(),
		ResidentHeap:  space.Heap.ResidentCount(),
		ResidentStack: space.Stack.ResidentCount(),
		CPUUsedNanos:  int64(base + p.CPUUsed()),
	}
	fd, err := ctx.Open(path, fs.WriteMode, fs.OpenOptions{Create: true, Truncate: true})
	if err != nil {
		return Header{}, fmt.Errorf("checkpoint save: %w", err)
	}
	if _, err := ctx.Write(fd, h.encode()); err != nil {
		return Header{}, err
	}
	// The memory payload: every resident page, dirty or clean — a
	// checkpointer cannot tell which pages the backing store already has.
	pageSize := space.Params().PageSize
	payload := (h.ResidentHeap + h.ResidentStack) * pageSize
	zeros := make([]byte, 16*1024)
	for payload > 0 {
		n := len(zeros)
		if payload < n {
			n = payload
		}
		if _, err := ctx.Write(fd, zeros[:n]); err != nil {
			return Header{}, err
		}
		payload -= n
	}
	// The image must survive the writer's own host crashing — that is its
	// entire purpose — so it cannot sit in the client cache waiting for the
	// delayed write-back. Flush it to the server before declaring success.
	if err := ctx.Fsync(fd); err != nil {
		return Header{}, err
	}
	if err := ctx.Close(fd); err != nil {
		return Header{}, err
	}
	return h, nil
}

// Restore reads the image at path into the calling (freshly started)
// process: the header is validated against the process's own segment sizes
// and the memory payload is read in full, leaving the pages resident.
func Restore(ctx *core.Ctx, path string) (Header, error) {
	p := ctx.Process()
	space := p.Space()
	fd, err := ctx.Open(path, fs.ReadMode, fs.OpenOptions{})
	if err != nil {
		return Header{}, fmt.Errorf("checkpoint restore: %w", err)
	}
	hdrBuf, err := ctx.Read(fd, 4+6*8)
	if err != nil {
		return Header{}, err
	}
	h, err := decodeHeader(hdrBuf)
	if err != nil {
		return Header{}, err
	}
	if h.HeapPages != space.Heap.Pages() || h.StackPages != space.Stack.Pages() {
		return Header{}, fmt.Errorf("%w: image sized %d/%d pages, process %d/%d",
			ErrBadImage, h.HeapPages, h.StackPages, space.Heap.Pages(), space.Stack.Pages())
	}
	pageSize := space.Params().PageSize
	remaining := (h.ResidentHeap + h.ResidentStack) * pageSize
	for remaining > 0 {
		n := 16 * 1024
		if remaining < n {
			n = remaining
		}
		data, err := ctx.Read(fd, n)
		if err != nil {
			return Header{}, err
		}
		if len(data) == 0 {
			return Header{}, fmt.Errorf("%w: truncated payload", ErrBadImage)
		}
		remaining -= len(data)
	}
	if err := ctx.Close(fd); err != nil {
		return Header{}, err
	}
	// The pages read from the image are now resident (and dirty: the
	// backing store has not seen them).
	markResident(space.Heap, h.ResidentHeap)
	markResident(space.Stack, h.ResidentStack)
	return h, nil
}

func markResident(seg *vm.Segment, n int) {
	for i := 0; i < n && i < seg.Pages(); i++ {
		seg.MarkResident(i, true)
	}
}
