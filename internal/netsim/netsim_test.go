package netsim

import (
	"testing"
	"time"

	"sprite/internal/sim"
)

func TestTransferTime(t *testing.T) {
	n := New(sim.New(1), Params{BandwidthBytesPerSec: 1e6})
	if got := n.TransferTime(1e6); got != time.Second {
		t.Fatalf("TransferTime(1MB) = %v, want 1s", got)
	}
	if got := n.TransferTime(0); got != 0 {
		t.Fatalf("TransferTime(0) = %v, want 0", got)
	}
	zero := New(sim.New(1), Params{})
	if got := zero.TransferTime(1 << 20); got != 0 {
		t.Fatalf("bandwidth=0 should cost nothing, got %v", got)
	}
}

func TestSendChargesLatencyAndBandwidth(t *testing.T) {
	s := sim.New(1)
	n := New(s, Params{Latency: time.Millisecond, BandwidthBytesPerSec: 1e6})
	var elapsed time.Duration
	s.Spawn("sender", func(env *sim.Env) error {
		if err := n.Send(env, 500_000); err != nil {
			return err
		}
		elapsed = env.Now()
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	want := time.Millisecond + 500*time.Millisecond
	if elapsed != want {
		t.Fatalf("send took %v, want %v", elapsed, want)
	}
	if n.Messages() != 1 || n.Bytes() != 500_000 {
		t.Fatalf("stats = %d msgs / %d bytes", n.Messages(), n.Bytes())
	}
}

func TestContendedMediumSerializes(t *testing.T) {
	s := sim.New(1)
	n := New(s, Params{Latency: 0, BandwidthBytesPerSec: 1e6, Contended: true})
	var last time.Duration
	for i := 0; i < 3; i++ {
		s.Spawn("sender", func(env *sim.Env) error {
			if err := n.Send(env, 1e6); err != nil {
				return err
			}
			if env.Now() > last {
				last = env.Now()
			}
			return nil
		})
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if last != 3*time.Second {
		t.Fatalf("3 contended 1s transfers finished at %v, want 3s", last)
	}
}

func TestUncontendedMediumOverlaps(t *testing.T) {
	s := sim.New(1)
	n := New(s, Params{Latency: 0, BandwidthBytesPerSec: 1e6})
	var last time.Duration
	for i := 0; i < 3; i++ {
		s.Spawn("sender", func(env *sim.Env) error {
			if err := n.Send(env, 1e6); err != nil {
				return err
			}
			if env.Now() > last {
				last = env.Now()
			}
			return nil
		})
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if last != time.Second {
		t.Fatalf("3 uncontended 1s transfers finished at %v, want 1s", last)
	}
}
