// Package netsim models the local-area network that connects Sprite hosts:
// a 10 Mbit/s-class shared medium with per-message latency, per-byte
// bandwidth cost, and optional contention for the shared medium.
//
// The model is intentionally simple — the thesis's evaluation depends on the
// relative cost of small control messages versus bulk page/block transfer,
// not on the details of CSMA/CD.
package netsim

import (
	"errors"
	"sync/atomic"
	"time"

	"sprite/internal/sim"
)

// ErrDropped is returned by Send when the installed fault hook decides the
// message is lost. The sender has still been charged for the transmission;
// it is the delivery that never happens. Callers at the RPC layer translate
// this into a timeout and retransmission.
var ErrDropped = errors.New("netsim: message dropped")

// Hook observes every message send and may perturb it: extra is added to the
// delivery time (congestion, routing flaps) and drop marks the message lost
// after the sender has paid for the transmission. The hook runs in the
// sending activity and must be a deterministic function of simulation state.
type Hook func(env *sim.Env, bytes int) (extra time.Duration, drop bool)

// Params configures the network model.
type Params struct {
	// Latency is the one-way delivery latency of a message, independent of
	// size (propagation + interrupt handling).
	Latency time.Duration
	// BandwidthBytesPerSec is the sustained transfer rate for message
	// payloads. Zero disables the per-byte cost.
	BandwidthBytesPerSec float64
	// Contended, when true, serializes all transfers through the shared
	// medium, as on a single Ethernet segment.
	Contended bool
}

// DefaultParams returns a 10 Mbit/s Ethernet-era configuration: 0.5 ms
// one-way latency and roughly 1 MB/s of achievable payload bandwidth.
func DefaultParams() Params {
	return Params{
		Latency:              500 * time.Microsecond,
		BandwidthBytesPerSec: 1e6,
	}
}

// Network charges virtual time for message deliveries and accounts traffic.
// The traffic counters are atomics: with hosts confined to shards, senders on
// different workers account concurrently, and commutative sums are the one
// kind of shared state the confined contract allows (snapshots are only taken
// from exclusive context, where every window has already committed).
type Network struct {
	params Params
	medium *sim.Resource
	hook   Hook

	messages atomic.Uint64
	bytes    atomic.Uint64
	delayed  atomic.Uint64
	dropped  atomic.Uint64
}

// New returns a network bound to the simulation.
func New(s *sim.Simulation, params Params) *Network {
	n := &Network{params: params}
	if params.Contended {
		n.medium = sim.NewResource(s, 1)
	}
	return n
}

// TransferTime returns the time the payload occupies the medium.
func (n *Network) TransferTime(bytes int) time.Duration {
	if n.params.BandwidthBytesPerSec <= 0 || bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / n.params.BandwidthBytesPerSec * float64(time.Second))
}

// Send charges the calling activity for transmitting a message of the given
// payload size and records it. It returns after the message has been
// delivered (latency + transfer time).
func (n *Network) Send(env *sim.Env, bytes int) error {
	extra, drop := n.account(env, bytes)
	xfer := n.TransferTime(bytes)
	if n.medium != nil {
		if err := n.medium.Use(env, xfer); err != nil {
			return err
		}
		if err := env.Sleep(n.params.Latency + extra); err != nil {
			return err
		}
	} else if err := env.Sleep(n.params.Latency + xfer + extra); err != nil {
		return err
	}
	if drop {
		n.dropped.Add(1)
		return ErrDropped
	}
	return nil
}

// SendPipelined charges the calling activity for one fragment of a pipelined
// stream: the fragment occupies the medium for its transfer time, but the
// per-message latency is not paid — in a windowed bulk protocol the
// propagation delay overlaps with the fragments already in flight, so the
// caller charges latency once per stream (and per stall), not per fragment.
// Accounting, the fault hook, and contention behave exactly as in Send.
func (n *Network) SendPipelined(env *sim.Env, bytes int) error {
	extra, drop := n.account(env, bytes)
	xfer := n.TransferTime(bytes)
	if n.medium != nil {
		if err := n.medium.Use(env, xfer); err != nil {
			return err
		}
		if extra > 0 {
			if err := env.Sleep(extra); err != nil {
				return err
			}
		}
	} else if err := env.Sleep(xfer + extra); err != nil {
		return err
	}
	if drop {
		n.dropped.Add(1)
		return ErrDropped
	}
	return nil
}

// account books one message on the traffic counters and consults the fault
// hook. It charges no virtual time.
func (n *Network) account(env *sim.Env, bytes int) (extra time.Duration, drop bool) {
	n.messages.Add(1)
	if bytes > 0 {
		n.bytes.Add(uint64(bytes))
	}
	if n.hook != nil {
		extra, drop = n.hook(env, bytes)
		if extra > 0 {
			n.delayed.Add(1)
		}
	}
	return extra, drop
}

// Account books one message without charging any virtual time and returns
// the delay components a mailbox-routed delivery must carry: the transfer
// time, any hook-injected extra, and whether the hook dropped the message
// (already counted). The confined RPC path uses it where Send would have
// slept in the caller.
func (n *Network) Account(env *sim.Env, bytes int) (xfer, extra time.Duration, drop bool) {
	extra, drop = n.account(env, bytes)
	if drop {
		n.dropped.Add(1)
	}
	return n.TransferTime(bytes), extra, drop
}

// Latency returns the one-way propagation latency.
func (n *Network) Latency() time.Duration { return n.params.Latency }

// Contended reports whether transfers serialize through the shared medium.
// The confined RPC path refuses to run on a contended network: the medium is
// a cluster-global resource, which no shard may block on.
func (n *Network) Contended() bool { return n.medium != nil }

// Hooked reports whether a fault hook is installed. The confined RPC path
// uses it to decide whether message loss is possible at all: with no hook and
// no injector, replies always arrive and the timeout machinery stays inert.
func (n *Network) Hooked() bool { return n.hook != nil }

// SetHook installs (or, with nil, removes) the fault hook consulted on every
// Send. With no hook installed, Send behaves exactly as before — the default
// path stays bit-identical for golden runs.
func (n *Network) SetHook(h Hook) { n.hook = h }

// Messages returns the number of messages sent so far.
func (n *Network) Messages() uint64 { return n.messages.Load() }

// Bytes returns the cumulative payload bytes sent so far.
func (n *Network) Bytes() uint64 { return n.bytes.Load() }

// Dropped returns the number of messages the fault hook discarded.
func (n *Network) Dropped() uint64 { return n.dropped.Load() }

// Delayed returns the number of messages the fault hook slowed down.
func (n *Network) Delayed() uint64 { return n.delayed.Load() }

// Params returns the network's configuration.
func (n *Network) Params() Params { return n.params }
