// Package netsim models the local-area network that connects Sprite hosts:
// a 10 Mbit/s-class shared medium with per-message latency, per-byte
// bandwidth cost, and optional contention for the shared medium.
//
// The model is intentionally simple — the thesis's evaluation depends on the
// relative cost of small control messages versus bulk page/block transfer,
// not on the details of CSMA/CD.
package netsim

import (
	"time"

	"sprite/internal/sim"
)

// Params configures the network model.
type Params struct {
	// Latency is the one-way delivery latency of a message, independent of
	// size (propagation + interrupt handling).
	Latency time.Duration
	// BandwidthBytesPerSec is the sustained transfer rate for message
	// payloads. Zero disables the per-byte cost.
	BandwidthBytesPerSec float64
	// Contended, when true, serializes all transfers through the shared
	// medium, as on a single Ethernet segment.
	Contended bool
}

// DefaultParams returns a 10 Mbit/s Ethernet-era configuration: 0.5 ms
// one-way latency and roughly 1 MB/s of achievable payload bandwidth.
func DefaultParams() Params {
	return Params{
		Latency:              500 * time.Microsecond,
		BandwidthBytesPerSec: 1e6,
	}
}

// Network charges virtual time for message deliveries and accounts traffic.
type Network struct {
	params Params
	medium *sim.Resource

	messages uint64
	bytes    uint64
}

// New returns a network bound to the simulation.
func New(s *sim.Simulation, params Params) *Network {
	n := &Network{params: params}
	if params.Contended {
		n.medium = sim.NewResource(s, 1)
	}
	return n
}

// TransferTime returns the time the payload occupies the medium.
func (n *Network) TransferTime(bytes int) time.Duration {
	if n.params.BandwidthBytesPerSec <= 0 || bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / n.params.BandwidthBytesPerSec * float64(time.Second))
}

// Send charges the calling activity for transmitting a message of the given
// payload size and records it. It returns after the message has been
// delivered (latency + transfer time).
func (n *Network) Send(env *sim.Env, bytes int) error {
	n.messages++
	if bytes > 0 {
		n.bytes += uint64(bytes)
	}
	xfer := n.TransferTime(bytes)
	if n.medium != nil {
		if err := n.medium.Use(env, xfer); err != nil {
			return err
		}
		return env.Sleep(n.params.Latency)
	}
	return env.Sleep(n.params.Latency + xfer)
}

// Messages returns the number of messages sent so far.
func (n *Network) Messages() uint64 { return n.messages }

// Bytes returns the cumulative payload bytes sent so far.
func (n *Network) Bytes() uint64 { return n.bytes }

// Params returns the network's configuration.
func (n *Network) Params() Params { return n.params }
