package fs

import (
	"fmt"
	"sort"
	"time"

	"sprite/internal/rpc"
)

// This file is the file system's half of the fault plane: crash scrubbing
// (the simulator analogue of Sprite's server recovery protocol, which
// discards a crashed host's open state), direct-state stream recovery for
// aborted migrations, and the state exports the cluster invariant checker
// cross-checks against.

// ScrubHost discards one end of every piece of per-host state this stream
// holds: the crashed host's references vanish wholesale. Used by crash
// injection; a stream with no remaining references anywhere is closed.
func (st *Stream) ScrubHost(host rpc.HostID) {
	delete(st.owners, host)
	if st.Refs() == 0 {
		st.closed = true
	}
}

// CrashReset discards all soft state a host's client keeps in memory: the
// block cache (dirty blocks are lost — that is what a crash means), version
// and attribute caches, and the prefix table (repopulated by broadcast after
// restart, as in Sprite).
func (c *Client) CrashReset() {
	c.blocks = make(map[cacheKey]*cacheBlock)
	c.lru.Init()
	c.fileVer = make(map[FileID]uint64)
	c.fileSize = make(map[FileID]int)
	c.fileMTime = make(map[FileID]time.Duration)
	c.noCache = make(map[FileID]bool)
	c.prefixCache = nil
}

// ScrubHost runs this server's recovery for a crashed host: every open
// reference the host held is discarded, dirty-cache bookkeeping naming the
// host is cleared, and the host disappears from every pipe end — delivering
// EOF (no writers left) or EPIPE (no readers left) to blocked survivors.
func (s *Server) ScrubHost(host rpc.HostID) {
	for _, fl := range s.files {
		delete(fl.opens, host)
		if fl.lastWriter == host {
			fl.lastWriter = rpc.NoHost
		}
	}
	// Pipes wake blocked waiters, so scrub them in a deterministic order.
	inos := make([]int, 0, len(s.pipes))
	for ino := range s.pipes {
		inos = append(inos, ino)
	}
	sort.Ints(inos)
	for _, ino := range inos {
		p := s.pipes[ino]
		delete(p.writerHosts, host)
		if len(p.writerHosts) == 0 {
			wakeAll(&p.readWaiters)
		}
		delete(p.readerHosts, host)
		if len(p.readerHosts) == 0 {
			wakeAll(&p.writeWaiters)
		}
		if len(p.readerHosts) == 0 && len(p.writerHosts) == 0 {
			delete(s.pipes, ino)
		}
	}
}

// ScrubHost applies crash recovery for host across the whole fabric: every
// server discards the host's open state, and the host's own client forgets
// its caches.
func (f *FS) ScrubHost(host rpc.HostID) {
	hosts := make([]int, 0, len(f.servers))
	for h := range f.servers {
		hosts = append(hosts, int(h))
	}
	sort.Ints(hosts)
	for _, h := range hosts {
		f.servers[rpc.HostID(h)].ScrubHost(host)
	}
	if c := f.clients[host]; c != nil {
		c.CrashReset()
	}
}

// ScrubHostEpoch runs ScrubHost for one boot incarnation of host exactly
// once: the crash injector scrubs eagerly when the host dies (servers run
// recovery as soon as the RPC channel breaks, as in Sprite), and the
// recovery plane's reaping pass calls it again on detection — the epoch
// guard makes the second call a no-op instead of a double scrub. A later
// incarnation's crash (higher epoch) scrubs again.
func (f *FS) ScrubHostEpoch(host rpc.HostID, epoch rpc.Epoch) {
	if f.scrubbed == nil {
		f.scrubbed = make(map[rpc.HostID]rpc.Epoch)
	}
	if f.scrubbed[host] >= epoch {
		return
	}
	f.scrubbed[host] = epoch
	f.ScrubHost(host)
}

// RecoverStream repairs a stream whose reference was stranded on a crashed
// host mid-migration: the client-side references move from -> to, and the
// owning server's open table is adjusted to match, directly and without
// charging time (the source kernel's recovery runs against a server that has
// already scrubbed the crashed host). It is only used by migration abort
// recovery when the normal RPC path to the stranded host is gone.
func (f *FS) RecoverStream(st *Stream, from, to rpc.HostID) {
	n := st.owners[from]
	if n <= 0 {
		return
	}
	delete(st.owners, from)
	hadTo := st.owners[to] > 0
	st.owners[to] += n
	srv := f.servers[st.FID.Server]
	if srv == nil || st.pipe {
		if srv != nil {
			if p, ok := srv.pipes[st.FID.Ino]; ok {
				hosts := p.readerHosts
				if st.Mode.canWrite() {
					hosts = p.writerHosts
				}
				hosts[to] = true
				delete(hosts, from)
			}
		}
		return
	}
	fl, ok := srv.byID[st.FID]
	if !ok {
		return
	}
	// One server-side open reference per (stream, host) pair: drop the
	// stranded host's, add the recovering host's if it had none.
	if o := fl.opens[from]; o != nil {
		if st.Mode.canWrite() {
			o.writers--
		} else {
			o.readers--
		}
		if o.total() <= 0 {
			delete(fl.opens, from)
		}
	}
	if !hadTo {
		o := fl.opens[to]
		if o == nil {
			o = &openState{}
			fl.opens[to] = o
		}
		if st.Mode.canWrite() {
			o.writers++
		} else {
			o.readers++
		}
	}
}

// DropRef releases one of host's references to st directly, without RPC or
// simulated time: the client-side count drops by one, and if that was the
// host's last reference the owning server's open table (or pipe end set)
// drops the host too, waking pipe waiters exactly as a normal close would.
// Crash injection uses it to release references a process that died
// mid-migration had already moved to a surviving target host.
func (f *FS) DropRef(st *Stream, host rpc.HostID) {
	if st.owners[host] <= 0 {
		return
	}
	st.owners[host]--
	last := st.owners[host] == 0
	if last {
		delete(st.owners, host)
	}
	if st.Refs() == 0 {
		st.closed = true
	}
	if !last {
		return
	}
	srv := f.servers[st.FID.Server]
	if srv == nil {
		return
	}
	if st.pipe {
		p, ok := srv.pipes[st.FID.Ino]
		if !ok {
			return
		}
		if st.Mode.canWrite() {
			delete(p.writerHosts, host)
			if len(p.writerHosts) == 0 {
				wakeAll(&p.readWaiters)
			}
		} else {
			delete(p.readerHosts, host)
			if len(p.readerHosts) == 0 {
				wakeAll(&p.writeWaiters)
			}
		}
		if len(p.readerHosts) == 0 && len(p.writerHosts) == 0 {
			delete(srv.pipes, st.FID.Ino)
		}
		return
	}
	if fl, ok := srv.byID[st.FID]; ok {
		if o := fl.opens[host]; o != nil {
			if st.Mode.canWrite() {
				o.writers--
			} else {
				o.readers--
			}
			if o.total() <= 0 {
				delete(fl.opens, host)
			}
		}
	}
}

// CanWrite reports whether the mode opens the file for writing (the mode
// class the server's open table counts it under).
func (m OpenMode) CanWrite() bool { return m.canWrite() }

// Owners returns a copy of the stream's per-host reference counts, for
// invariant checking.
func (st *Stream) Owners() map[rpc.HostID]int {
	out := make(map[rpc.HostID]int, len(st.owners))
	for h, n := range st.owners {
		out[h] = n
	}
	return out
}

// OpenCount is one host's open-reference counts for a file, as the server
// sees them.
type OpenCount struct {
	Readers int
	Writers int
}

// OpenRefs exports the server's open table for invariant checking.
func (s *Server) OpenRefs() map[FileID]map[rpc.HostID]OpenCount {
	out := make(map[FileID]map[rpc.HostID]OpenCount)
	for _, fl := range s.files {
		if len(fl.opens) == 0 {
			continue
		}
		fid := FileID{Server: s.host, Ino: fl.ino}
		m := make(map[rpc.HostID]OpenCount, len(fl.opens))
		for h, o := range fl.opens {
			m[h] = OpenCount{Readers: o.readers, Writers: o.writers}
		}
		out[fid] = m
	}
	return out
}

// PipeInfo describes one live pipe for invariant checking.
type PipeInfo struct {
	Ino         int
	ReaderHosts []rpc.HostID
	WriterHosts []rpc.HostID
	Buffered    int
}

// Pipes exports the server's live pipes, hosts sorted, for invariant
// checking.
func (s *Server) Pipes() []PipeInfo {
	out := make([]PipeInfo, 0, len(s.pipes))
	for ino, p := range s.pipes {
		out = append(out, PipeInfo{
			Ino:         ino,
			ReaderHosts: sortedHosts(p.readerHosts),
			WriterHosts: sortedHosts(p.writerHosts),
			Buffered:    len(p.buf),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ino < out[j].Ino })
	return out
}

func sortedHosts(set map[rpc.HostID]bool) []rpc.HostID {
	out := make([]rpc.HostID, 0, len(set))
	for h := range set {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CheckInvariants verifies the file system's own consistency rules and
// returns one message per violation (empty means clean):
//
//   - a host may hold dirty cache blocks for a file only while the server
//     still believes its cache is valid: the file must be cacheable and the
//     host must be its last writer or hold it open for writing (the "no
//     stale dirty blocks after a conflicting remote open" rule);
//   - no server open entry may have a non-positive total (zombie opens);
//   - with endOfRun set, every open table and every pipe must be empty.
func (f *FS) CheckInvariants(endOfRun bool) []string {
	var out []string
	srvHosts := make([]int, 0, len(f.servers))
	for h := range f.servers {
		srvHosts = append(srvHosts, int(h))
	}
	sort.Ints(srvHosts)
	for _, sh := range srvHosts {
		srv := f.servers[rpc.HostID(sh)]
		paths := make([]string, 0, len(srv.files))
		for p := range srv.files {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, path := range paths {
			fl := srv.files[path]
			openHosts := make([]int, 0, len(fl.opens))
			for h := range fl.opens {
				openHosts = append(openHosts, int(h))
			}
			sort.Ints(openHosts)
			for _, oh := range openHosts {
				o := fl.opens[rpc.HostID(oh)]
				if o.total() <= 0 {
					out = append(out, fmt.Sprintf("fs: server %d file %s: zombie open entry for host %v (r=%d w=%d)", sh, path, rpc.HostID(oh), o.readers, o.writers))
				}
			}
			if endOfRun && len(fl.opens) > 0 {
				out = append(out, fmt.Sprintf("fs: server %d file %s: %d open entries at end of run", sh, path, len(fl.opens)))
			}
		}
		if endOfRun && len(srv.pipes) > 0 {
			out = append(out, fmt.Sprintf("fs: server %d: %d pipes alive at end of run", sh, len(srv.pipes)))
		}
	}
	cliHosts := make([]int, 0, len(f.clients))
	for h := range f.clients {
		cliHosts = append(cliHosts, int(h))
	}
	sort.Ints(cliHosts)
	for _, ch := range cliHosts {
		c := f.clients[rpc.HostID(ch)]
		dirty := make(map[FileID]bool)
		for _, b := range c.blocks {
			if b.dirty {
				dirty[b.key.fid] = true
			}
		}
		fids := make([]FileID, 0, len(dirty))
		for fid := range dirty {
			fids = append(fids, fid)
		}
		sort.Slice(fids, func(i, j int) bool {
			if fids[i].Server != fids[j].Server {
				return fids[i].Server < fids[j].Server
			}
			return fids[i].Ino < fids[j].Ino
		})
		for _, fid := range fids {
			srv := f.servers[fid.Server]
			if srv == nil {
				out = append(out, fmt.Sprintf("fs: host %d: dirty blocks for %v with no server", ch, fid))
				continue
			}
			fl, ok := srv.byID[fid]
			if !ok {
				// Removed file: lingering dirty blocks are moot, not stale.
				continue
			}
			if !fl.cacheable {
				out = append(out, fmt.Sprintf("fs: host %d: stale dirty blocks for uncacheable %s", ch, fl.path))
				continue
			}
			o := fl.opens[rpc.HostID(ch)]
			if fl.lastWriter != rpc.HostID(ch) && (o == nil || o.writers == 0) {
				out = append(out, fmt.Sprintf("fs: host %d: dirty blocks for %s but host is neither last writer nor an open writer", ch, fl.path))
			}
		}
	}
	return out
}
