package fs

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// ErrCrossDomain is returned when a rename would cross file-server
// domains, which Sprite's prefix tables disallow for a single operation.
var ErrCrossDomain = errors.New("fs: rename across server domains")

type (
	renameArgs struct {
		From string
		To   string
	}
	readDirArgs struct {
		Dir string
	}
	readDirReply struct {
		Names []string
	}
)

// handleRename atomically renames From to To within this server's domain.
// The file id is preserved, so open streams and cached blocks stay valid.
func (s *Server) handleRename(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(renameArgs)
	if !ok {
		return nil, 0, fmt.Errorf("fs.rename: bad args %T", arg)
	}
	// Two name lookups: source and target directories.
	if err := s.chargeCPU(env, 2*s.fs.params.NameLookupCPU); err != nil {
		return nil, 0, err
	}
	s.stats.Lookups += 2
	fl, ok := s.files[a.From]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrNotFound, a.From)
	}
	if old, exists := s.files[a.To]; exists {
		// Rename replaces the target, as in UNIX.
		delete(s.byID, FileID{Server: s.host, Ino: old.ino})
	}
	delete(s.files, a.From)
	s.files[a.To] = fl
	fl.path = a.To
	return nil, 16, nil
}

// handleReadDir lists the immediate children of a directory.
func (s *Server) handleReadDir(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(readDirArgs)
	if !ok {
		return nil, 0, fmt.Errorf("fs.readdir: bad args %T", arg)
	}
	if err := s.chargeCPU(env, s.fs.params.NameLookupCPU); err != nil {
		return nil, 0, err
	}
	s.stats.Lookups++
	prefix := a.Dir
	if !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	seen := make(map[string]bool)
	for path := range s.files {
		if !strings.HasPrefix(path, prefix) || path == a.Dir {
			continue
		}
		rest := path[len(prefix):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i] // subdirectory: report the component once
		}
		if rest != "" {
			seen[rest] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	size := 16
	for _, n := range names {
		size += len(n) + 1
	}
	return readDirReply{Names: names}, size, nil
}

// Rename atomically renames a file within one server's domain; a rename
// that would cross domains fails with ErrCrossDomain.
func (c *Client) Rename(env *sim.Env, from, to string) error {
	sFrom, err := c.server(from)
	if err != nil {
		return err
	}
	sTo, err := c.server(to)
	if err != nil {
		return err
	}
	if sFrom != sTo {
		return fmt.Errorf("%w: %s -> %s", ErrCrossDomain, from, to)
	}
	_, err = c.ep.Call(env, sFrom, "fs.rename", renameArgs{From: from, To: to}, 32+len(from)+len(to))
	return err
}

// ReadDir returns the names (not full paths) of a directory's immediate
// children, sorted.
func (c *Client) ReadDir(env *sim.Env, dir string) ([]string, error) {
	srvHost, err := c.server(dir)
	if err != nil {
		return nil, err
	}
	reply, err := c.ep.Call(env, srvHost, "fs.readdir", readDirArgs{Dir: dir}, 16+len(dir))
	if err != nil {
		return nil, err
	}
	r, ok := reply.(readDirReply)
	if !ok {
		return nil, fmt.Errorf("fs.readdir: bad reply %T", reply)
	}
	return r.Names, nil
}
