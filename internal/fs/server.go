package fs

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// Wire message types for the fs.* services. They stay unexported: only this
// package speaks the protocol.
type (
	openArgs struct {
		Path        string
		Mode        OpenMode
		Host        rpc.HostID
		Create      bool
		Truncate    bool
		Uncacheable bool
	}
	openReply struct {
		FID       FileID
		Size      int
		Version   uint64
		Cacheable bool
	}
	closeArgs struct {
		FID  FileID
		Mode OpenMode
		Host rpc.HostID
		// Dirty reports whether the closing client retains dirty blocks
		// under delayed write-back; the server must recall them before
		// another host reads the file.
		Dirty bool
	}
	readArgs struct {
		FID   FileID
		Block int
	}
	readReply struct {
		Data []byte
	}
	writeArgs struct {
		FID     FileID
		Block   int
		Data    []byte
		Offset  int // byte offset of Data within the block
		NewSize int // -1 to keep current size
	}
	writeReply struct {
		Version uint64
		Size    int
	}
	// Bulk-transfer messages: one request covers a contiguous byte range
	// spanning many blocks; the payload travels as pipelined fragments
	// (rpc.CallBulk) rather than one message per block.
	writeBulkArgs struct {
		FID     FileID
		Off     int64
		Data    []byte
		NewSize int // -1 to keep current size
	}
	readBulkArgs struct {
		FID FileID
		Off int64
		N   int
	}
	readBulkReply struct {
		Data []byte
	}
	statArgs struct {
		Path string
	}
	statReply struct {
		FID     FileID
		Size    int
		Version uint64
		MTime   time.Duration
	}
	removeArgs struct {
		Path string
	}
	offsetArgs struct {
		Stream StreamID
		FID    FileID
		// Advance the offset by Delta, or if Set >= 0 assign it.
		Delta int64
		Set   int64
	}
	offsetReply struct {
		Old  int64
		Size int
	}
	migrateStreamArgs struct {
		Stream StreamID
		FID    FileID
		Mode   OpenMode
		From   rpc.HostID
		To     rpc.HostID
		Offset int64 // current client-side offset, adopted by the server
		Share  bool  // stream now spans hosts: shadow the offset
	}
	lockArgs struct {
		Path string
	}
	// Client callback arguments (server -> client).
	cacheCallbackArgs struct {
		FID FileID
	}
	// attrReply is the client's answer to a cached-attribute fetch.
	attrReply struct {
		Size  int
		MTime time.Duration
	}
)

// openState tracks one host's open references to a file.
type openState struct {
	readers int
	writers int
}

func (o *openState) total() int { return o.readers + o.writers }

// file is the server-side state of one file.
type file struct {
	ino        int
	path       string
	data       []byte
	version    uint64
	mtime      time.Duration // virtual time of the last server-side change
	neverCache bool          // backing-store and similar files are never client-cached
	cacheable  bool
	opens      map[rpc.HostID]*openState
	lastWriter rpc.HostID // host that may hold dirty blocks in its cache
	touched    map[int]bool
	// mu serializes open/close/migrate consistency actions on this file.
	// An open that blocks mid-handler issuing cache callbacks has not yet
	// registered its reference; without the monitor lock a concurrent open
	// or stream migration would read the stale open table and re-enable
	// caching the blocked open is about to rely on being disabled.
	mu *sim.Resource
}

func (fl *file) writersOn(except rpc.HostID) int {
	n := 0
	for h, o := range fl.opens {
		if h != except {
			n += o.writers
		}
	}
	return n
}

// openHostsOther returns the hosts (other than except) with the file open,
// in host order: callers fire consistency RPCs (recalls, shoot-downs) down
// this list, so its order is part of the deterministic event schedule.
func (fl *file) openHostsOther(except rpc.HostID) []rpc.HostID {
	var out []rpc.HostID
	for h := range fl.opens {
		if h != except {
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ServerStats summarizes one server's activity.
type ServerStats struct {
	Lookups     uint64
	BlocksRead  uint64
	BlocksWrite uint64
	ColdReads   uint64
	FlushRecall uint64 // consistency callbacks asking a client to flush
	Disables    uint64 // times caching was disabled for a file
	BulkWrites  uint64 // fs.writeBulk batches served
	BulkReads   uint64 // fs.readBulk batches served
}

// Server is one Sprite file server: the authority for the files in its
// domain, the consistency point for client caches, and the home of shadow
// stream offsets.
type Server struct {
	fs   *FS
	host rpc.HostID
	cpu  *sim.Resource
	disk *sim.Resource

	files   map[string]*file
	byID    map[FileID]*file
	inoSeq  int
	offsets map[StreamID]int64
	locks   map[string]*sim.Resource
	pipes   map[int]*pipeState

	stats ServerStats
}

func newServer(f *FS, host rpc.HostID) *Server {
	srv := &Server{
		fs:      f,
		host:    host,
		cpu:     sim.NewResource(f.sim, 1),
		disk:    sim.NewResource(f.sim, 1),
		files:   make(map[string]*file),
		byID:    make(map[FileID]*file),
		offsets: make(map[StreamID]int64),
		locks:   make(map[string]*sim.Resource),
		pipes:   make(map[int]*pipeState),
	}
	ep := f.transport.Register(host)
	ep.Handle("fs.open", srv.handleOpen)
	ep.Handle("fs.close", srv.handleClose)
	ep.Handle("fs.read", srv.handleRead)
	ep.Handle("fs.write", srv.handleWrite)
	ep.Handle("fs.readBulk", srv.handleReadBulk)
	ep.Handle("fs.writeBulk", srv.handleWriteBulk)
	ep.Handle("fs.stat", srv.handleStat)
	ep.Handle("fs.remove", srv.handleRemove)
	ep.Handle("fs.offset", srv.handleOffset)
	ep.Handle("fs.migrateStream", srv.handleMigrateStream)
	ep.Handle("fs.lock", srv.handleLock)
	ep.Handle("fs.unlock", srv.handleUnlock)
	ep.Handle("fs.rename", srv.handleRename)
	ep.Handle("fs.readdir", srv.handleReadDir)
	ep.Handle("fs.pipeCreate", srv.handlePipeCreate)
	ep.Handle("fs.pipeRead", srv.handlePipeRead)
	ep.Handle("fs.pipeWrite", srv.handlePipeWrite)
	ep.Handle("fs.pipeClose", srv.handlePipeClose)
	ep.Handle("fs.pipeMigrate", srv.handlePipeMigrate)
	return srv
}

// Host returns the server's host id.
func (s *Server) Host() rpc.HostID { return s.host }

// Stats returns a copy of the server's counters.
func (s *Server) Stats() ServerStats { return s.stats }

// CPUBusy returns total server CPU busy time (the pmake bottleneck metric).
func (s *Server) CPUBusy() time.Duration { return s.cpu.BusyTime() }

// CPUWait returns cumulative time requests queued for the server CPU.
func (s *Server) CPUWait() time.Duration { return s.cpu.WaitTime() }

// FileCount returns the number of files in the server's domain.
func (s *Server) FileCount() int { return len(s.files) }

func (s *Server) chargeCPU(env *sim.Env, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	return s.cpu.Use(env, d)
}

func (s *Server) lookup(fid FileID) (*file, error) {
	fl, ok := s.byID[fid]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNotFound, fid)
	}
	return fl, nil
}

func (s *Server) create(path string, neverCache bool) *file {
	s.inoSeq++
	fl := &file{
		ino:        s.inoSeq,
		path:       path,
		version:    1,
		neverCache: neverCache,
		cacheable:  !neverCache,
		opens:      make(map[rpc.HostID]*openState),
		touched:    make(map[int]bool),
		mu:         sim.NewResource(s.fs.sim, 1),
	}
	s.files[path] = fl
	s.byID[FileID{Server: s.host, Ino: fl.ino}] = fl
	return fl
}

func (s *Server) handleOpen(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(openArgs)
	if !ok {
		return nil, 0, fmt.Errorf("fs.open: bad args %T", arg)
	}
	if err := s.chargeCPU(env, s.fs.params.NameLookupCPU); err != nil {
		return nil, 0, err
	}
	s.stats.Lookups++
	fl, exists := s.files[a.Path]
	switch {
	case !exists && a.Create:
		fl = s.create(a.Path, a.Uncacheable)
	case !exists:
		return nil, 0, fmt.Errorf("%w: %s", ErrNotFound, a.Path)
	}

	if err := fl.mu.Acquire(env); err != nil {
		return nil, 0, err
	}
	defer fl.mu.Release()
	// Consistency first: recall dirty blocks or disable caches as needed
	// [NWO88]. This must precede truncation — a recalled flush of the
	// previous writer's dirty blocks must not resurrect data into the
	// freshly truncated file.
	if err := s.ensureConsistentOpen(env, fl, a.Host, a.Mode); err != nil {
		return nil, 0, err
	}
	if exists && a.Create && a.Truncate {
		fl.data = nil
		fl.version++
		fl.mtime = env.Now()
	}
	if !exists && a.Create {
		fl.mtime = env.Now()
	}

	st := fl.opens[a.Host]
	if st == nil {
		st = &openState{}
		fl.opens[a.Host] = st
	}
	if a.Mode.canWrite() {
		st.writers++
	} else {
		st.readers++
	}
	reply := openReply{
		FID:       FileID{Server: s.host, Ino: fl.ino},
		Size:      len(fl.data),
		Version:   fl.version,
		Cacheable: fl.cacheable,
	}
	return reply, 64, nil
}

// ensureConsistentOpen performs Sprite's open-time consistency actions for
// an open of fl by host in the given mode.
func (s *Server) ensureConsistentOpen(env *sim.Env, fl *file, host rpc.HostID, mode OpenMode) error {
	conflict := false
	if !fl.neverCache {
		others := fl.openHostsOther(host)
		if mode.canWrite() && len(others) > 0 {
			conflict = true
		}
		if fl.writersOn(host) > 0 {
			conflict = true
		}
	}
	switch {
	case fl.neverCache:
		fl.cacheable = false
	case conflict:
		if fl.cacheable {
			s.stats.Disables++
		}
		fl.cacheable = false
		// Recall dirty data and shoot down every cache that may hold the
		// file, including the opener's own.
		targets := fl.openHostsOther(rpc.NoHost)
		if fl.lastWriter != rpc.NoHost {
			targets = appendUnique(targets, fl.lastWriter)
		}
		targets = appendUnique(targets, host)
		fid := FileID{Server: s.host, Ino: fl.ino}
		for _, t := range targets {
			if _, err := s.callback(env, t, "fsc.disable", fid); err != nil {
				// A crashed target has no cache left to disable; its open
				// state is scrubbed by the crash path.
				if errors.Is(err, rpc.ErrHostDown) {
					continue
				}
				return err
			}
		}
		fl.lastWriter = rpc.NoHost
	default:
		fl.cacheable = true
		if fl.lastWriter != rpc.NoHost && fl.lastWriter != host {
			// Another host's cache holds the current data; recall it so
			// this open observes it.
			s.stats.FlushRecall++
			fid := FileID{Server: s.host, Ino: fl.ino}
			if _, err := s.callback(env, fl.lastWriter, "fsc.flush", fid); err != nil {
				if !errors.Is(err, rpc.ErrHostDown) {
					return err
				}
			}
			fl.lastWriter = rpc.NoHost
		}
	}
	return nil
}

// callback performs a server-to-client consistency RPC.
func (s *Server) callback(env *sim.Env, to rpc.HostID, service string, fid FileID) (any, error) {
	ep := s.fs.transport.Endpoint(s.host)
	return ep.Call(env, to, service, cacheCallbackArgs{FID: fid}, 32)
}

func (s *Server) handleClose(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(closeArgs)
	if !ok {
		return nil, 0, fmt.Errorf("fs.close: bad args %T", arg)
	}
	fl, err := s.lookup(a.FID)
	if err != nil {
		return nil, 0, err
	}
	if err := fl.mu.Acquire(env); err != nil {
		return nil, 0, err
	}
	defer fl.mu.Release()
	st := fl.opens[a.Host]
	if st != nil {
		if a.Mode.canWrite() {
			st.writers--
			// The closing writer's cache may retain dirty blocks under
			// delayed write-back.
			if !fl.neverCache && a.Dirty {
				fl.lastWriter = a.Host
			}
		} else {
			st.readers--
		}
		if st.total() <= 0 {
			delete(fl.opens, a.Host)
		}
	}
	return nil, 16, nil
}

func (s *Server) handleRead(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(readArgs)
	if !ok {
		return nil, 0, fmt.Errorf("fs.read: bad args %T", arg)
	}
	fl, err := s.lookup(a.FID)
	if err != nil {
		return nil, 0, err
	}
	if err := s.chargeCPU(env, s.fs.params.BlockServerCPU); err != nil {
		return nil, 0, err
	}
	if !fl.touched[a.Block] {
		// Cold block: charge a disk transfer.
		s.stats.ColdReads++
		fl.touched[a.Block] = true
		if s.fs.params.DiskPerBlock > 0 {
			if err := s.disk.Use(env, s.fs.params.DiskPerBlock); err != nil {
				return nil, 0, err
			}
		}
	}
	s.stats.BlocksRead++
	bs := s.fs.params.BlockSize
	lo := a.Block * bs
	if lo >= len(fl.data) {
		return readReply{}, 16, nil
	}
	hi := lo + bs
	if hi > len(fl.data) {
		hi = len(fl.data)
	}
	data := make([]byte, hi-lo)
	copy(data, fl.data[lo:hi])
	return readReply{Data: data}, 16 + len(data), nil
}

func (s *Server) handleWrite(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(writeArgs)
	if !ok {
		return nil, 0, fmt.Errorf("fs.write: bad args %T", arg)
	}
	fl, err := s.lookup(a.FID)
	if err != nil {
		return nil, 0, err
	}
	if err := s.chargeCPU(env, s.fs.params.BlockServerCPU); err != nil {
		return nil, 0, err
	}
	s.stats.BlocksWrite++
	fl.touched[a.Block] = true
	bs := s.fs.params.BlockSize
	lo := a.Block*bs + a.Offset
	need := lo + len(a.Data)
	if a.NewSize >= 0 && a.NewSize > need {
		need = a.NewSize
	}
	if need > len(fl.data) {
		grown := make([]byte, need)
		copy(grown, fl.data)
		fl.data = grown
	}
	copy(fl.data[lo:], a.Data)
	if a.NewSize >= 0 && a.NewSize < len(fl.data) {
		fl.data = fl.data[:a.NewSize]
	}
	fl.version++
	fl.mtime = env.Now()
	return writeReply{Version: fl.version, Size: len(fl.data)}, 32, nil
}

// bulkCPU charges the per-batch server cost for a bulk transfer covering
// `blocks` blocks: one BlockServerCPU for the request as a whole, plus the
// (much cheaper) BulkPerBlockCPU marginal cost per block.
func (s *Server) bulkCPU(env *sim.Env, blocks int) error {
	if err := s.chargeCPU(env, s.fs.params.BlockServerCPU); err != nil {
		return err
	}
	if blocks > 1 {
		return s.chargeCPU(env, time.Duration(blocks-1)*s.fs.params.BulkPerBlockCPU)
	}
	return nil
}

// handleWriteBulk applies one contiguous multi-block write delivered through
// the bulk-transfer path.
func (s *Server) handleWriteBulk(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(writeBulkArgs)
	if !ok {
		return nil, 0, fmt.Errorf("fs.writeBulk: bad args %T", arg)
	}
	fl, err := s.lookup(a.FID)
	if err != nil {
		return nil, 0, err
	}
	bs := s.fs.params.BlockSize
	lo := int(a.Off)
	hi := lo + len(a.Data)
	first := lo / bs
	last := (hi - 1) / bs
	if len(a.Data) == 0 {
		last = first
	}
	if err := s.bulkCPU(env, last-first+1); err != nil {
		return nil, 0, err
	}
	s.stats.BulkWrites++
	for b := first; b <= last; b++ {
		fl.touched[b] = true
	}
	s.stats.BlocksWrite += uint64(last - first + 1)
	need := hi
	if a.NewSize >= 0 && a.NewSize > need {
		need = a.NewSize
	}
	if need > len(fl.data) {
		grown := make([]byte, need)
		copy(grown, fl.data)
		fl.data = grown
	}
	copy(fl.data[lo:], a.Data)
	if a.NewSize >= 0 && a.NewSize < len(fl.data) {
		fl.data = fl.data[:a.NewSize]
	}
	fl.version++
	fl.mtime = env.Now()
	return writeReply{Version: fl.version, Size: len(fl.data)}, 32, nil
}

// handleReadBulk serves one contiguous multi-block read; the reply payload
// streams back to the caller as pipelined fragments.
func (s *Server) handleReadBulk(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(readBulkArgs)
	if !ok {
		return nil, 0, fmt.Errorf("fs.readBulk: bad args %T", arg)
	}
	fl, err := s.lookup(a.FID)
	if err != nil {
		return nil, 0, err
	}
	bs := s.fs.params.BlockSize
	lo := int(a.Off)
	hi := lo + a.N
	if hi > len(fl.data) {
		hi = len(fl.data)
	}
	if hi < lo {
		hi = lo
	}
	first := lo / bs
	last := first
	if hi > lo {
		last = (hi - 1) / bs
	}
	if err := s.bulkCPU(env, last-first+1); err != nil {
		return nil, 0, err
	}
	s.stats.BulkReads++
	// Cold blocks still pay their disk transfers, back to back: a bulk read
	// of untouched data is one long sequential disk run.
	var cold int
	for b := first; b <= last; b++ {
		if !fl.touched[b] {
			cold++
			fl.touched[b] = true
		}
	}
	if cold > 0 {
		s.stats.ColdReads += uint64(cold)
		if s.fs.params.DiskPerBlock > 0 {
			if err := s.disk.Use(env, time.Duration(cold)*s.fs.params.DiskPerBlock); err != nil {
				return nil, 0, err
			}
		}
	}
	s.stats.BlocksRead += uint64(last - first + 1)
	data := make([]byte, hi-lo)
	copy(data, fl.data[lo:hi])
	return readBulkReply{Data: data}, 16 + len(data), nil
}

func (s *Server) handleStat(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(statArgs)
	if !ok {
		return nil, 0, fmt.Errorf("fs.stat: bad args %T", arg)
	}
	if err := s.chargeCPU(env, s.fs.params.NameLookupCPU); err != nil {
		return nil, 0, err
	}
	s.stats.Lookups++
	fl, ok := s.files[a.Path]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrNotFound, a.Path)
	}
	size := len(fl.data)
	mtime := fl.mtime
	// Under delayed write-back the last writer's cache may hold newer
	// attributes than the server; Sprite servers fetch cached attributes
	// from that client on stat.
	if fl.lastWriter != rpc.NoHost && fl.lastWriter != from {
		fid := FileID{Server: s.host, Ino: fl.ino}
		if reply, err := s.callback(env, fl.lastWriter, "fsc.attr", fid); err == nil {
			if ar, ok := reply.(attrReply); ok {
				if ar.Size > size {
					size = ar.Size
				}
				if ar.MTime > mtime {
					mtime = ar.MTime
				}
			}
		}
	}
	return statReply{
		FID:     FileID{Server: s.host, Ino: fl.ino},
		Size:    size,
		Version: fl.version,
		MTime:   mtime,
	}, 48, nil
}

func (s *Server) handleRemove(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(removeArgs)
	if !ok {
		return nil, 0, fmt.Errorf("fs.remove: bad args %T", arg)
	}
	if err := s.chargeCPU(env, s.fs.params.NameLookupCPU); err != nil {
		return nil, 0, err
	}
	s.stats.Lookups++
	fl, ok := s.files[a.Path]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrNotFound, a.Path)
	}
	delete(s.files, a.Path)
	delete(s.byID, FileID{Server: s.host, Ino: fl.ino})
	return nil, 16, nil
}

func (s *Server) handleOffset(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(offsetArgs)
	if !ok {
		return nil, 0, fmt.Errorf("fs.offset: bad args %T", arg)
	}
	fl, err := s.lookup(a.FID)
	if err != nil {
		return nil, 0, err
	}
	old := s.offsets[a.Stream]
	if a.Set >= 0 {
		s.offsets[a.Stream] = a.Set
	} else {
		s.offsets[a.Stream] = old + a.Delta
	}
	return offsetReply{Old: old, Size: len(fl.data)}, 32, nil
}

func (s *Server) handleMigrateStream(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(migrateStreamArgs)
	if !ok {
		return nil, 0, fmt.Errorf("fs.migrateStream: bad args %T", arg)
	}
	fl, err := s.lookup(a.FID)
	if err != nil {
		return nil, 0, err
	}
	if err := fl.mu.Acquire(env); err != nil {
		return nil, 0, err
	}
	defer fl.mu.Release()
	// Move one open reference from the source to the target host.
	if st := fl.opens[a.From]; st != nil {
		if a.Mode.canWrite() {
			st.writers--
		} else {
			st.readers--
		}
		if st.total() <= 0 {
			delete(fl.opens, a.From)
		}
	}
	if err := s.ensureConsistentOpen(env, fl, a.To, a.Mode); err != nil {
		return nil, 0, err
	}
	st := fl.opens[a.To]
	if st == nil {
		st = &openState{}
		fl.opens[a.To] = st
	}
	if a.Mode.canWrite() {
		st.writers++
	} else {
		st.readers++
	}
	if a.Share {
		// The access position is now shared across hosts: the server
		// becomes its home (a shadow stream) [Wel90].
		if _, exists := s.offsets[a.Stream]; !exists {
			s.offsets[a.Stream] = a.Offset
		}
	}
	return openReply{
		FID:       a.FID,
		Size:      len(fl.data),
		Version:   fl.version,
		Cacheable: fl.cacheable,
	}, 64, nil
}

func (s *Server) handleLock(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(lockArgs)
	if !ok {
		return nil, 0, fmt.Errorf("fs.lock: bad args %T", arg)
	}
	res, ok := s.locks[a.Path]
	if !ok {
		res = sim.NewResource(s.fs.sim, 1)
		s.locks[a.Path] = res
	}
	if err := res.Acquire(env); err != nil {
		return nil, 0, err
	}
	return nil, 8, nil
}

func (s *Server) handleUnlock(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(lockArgs)
	if !ok {
		return nil, 0, fmt.Errorf("fs.unlock: bad args %T", arg)
	}
	if res, ok := s.locks[a.Path]; ok {
		res.Release()
	}
	return nil, 8, nil
}

func appendUnique(hosts []rpc.HostID, h rpc.HostID) []rpc.HostID {
	for _, x := range hosts {
		if x == h {
			return hosts
		}
	}
	return append(hosts, h)
}
