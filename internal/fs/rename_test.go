package fs

import (
	"errors"
	"testing"

	"sprite/internal/netsim"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// rpcFabric builds a default transport for multi-server tests.
func rpcFabric(s *sim.Simulation) *rpc.Transport {
	return rpc.NewTransport(s, netsim.New(s, netsim.DefaultParams()), rpc.DefaultParams())
}

func TestRenamePreservesContentAndStreams(t *testing.T) {
	h := newHarness(t, 1)
	c := h.fs.Client(2)
	h.run(t, func(env *sim.Env) error {
		if err := c.WriteFile(env, "/a/old", []byte("payload")); err != nil {
			return err
		}
		st, err := c.Open(env, "/a/old", ReadMode, OpenOptions{})
		if err != nil {
			return err
		}
		if err := c.Rename(env, "/a/old", "/a/new"); err != nil {
			return err
		}
		// The open stream keeps working (FID preserved).
		got, err := c.Read(env, st, 7)
		if err != nil {
			return err
		}
		if string(got) != "payload" {
			t.Errorf("read through renamed stream = %q", got)
		}
		if err := c.Close(env, st); err != nil {
			return err
		}
		// Old name gone, new name present.
		if _, err := c.ReadFile(env, "/a/old"); !errors.Is(err, ErrNotFound) {
			t.Errorf("old name err = %v, want ErrNotFound", err)
		}
		got, err = c.ReadFile(env, "/a/new")
		if err != nil {
			return err
		}
		if string(got) != "payload" {
			t.Errorf("new name = %q", got)
		}
		return nil
	})
}

func TestRenameReplacesTarget(t *testing.T) {
	h := newHarness(t, 1)
	c := h.fs.Client(2)
	h.run(t, func(env *sim.Env) error {
		if err := c.WriteFile(env, "/x", []byte("new content")); err != nil {
			return err
		}
		if err := c.WriteFile(env, "/y", []byte("old content")); err != nil {
			return err
		}
		if err := c.Rename(env, "/x", "/y"); err != nil {
			return err
		}
		got, err := c.ReadFile(env, "/y")
		if err != nil {
			return err
		}
		if string(got) != "new content" {
			t.Errorf("target = %q", got)
		}
		return nil
	})
}

func TestRenameCrossDomainFails(t *testing.T) {
	s := sim.New(1)
	tr := rpcFabric(s)
	f := New(s, tr, DefaultParams())
	f.AddServer(1, "/")
	f.AddServer(4, "/b")
	c := f.AddClient(3)
	s.Spawn("t", func(env *sim.Env) error {
		if err := c.WriteFile(env, "/a/x", []byte("v")); err != nil {
			return err
		}
		if err := c.Rename(env, "/a/x", "/b/x"); !errors.Is(err, ErrCrossDomain) {
			t.Errorf("err = %v, want ErrCrossDomain", err)
		}
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestReadDirListsChildren(t *testing.T) {
	h := newHarness(t, 1)
	c := h.fs.Client(2)
	for _, p := range []string{"/src/a.c", "/src/b.c", "/src/sub/c.c", "/other/d"} {
		if _, err := h.fs.Seed(p, []byte("x"), false); err != nil {
			t.Fatal(err)
		}
	}
	h.run(t, func(env *sim.Env) error {
		names, err := c.ReadDir(env, "/src")
		if err != nil {
			return err
		}
		want := []string{"a.c", "b.c", "sub"}
		if len(names) != len(want) {
			t.Fatalf("names = %v, want %v", names, want)
		}
		for i := range want {
			if names[i] != want[i] {
				t.Fatalf("names = %v, want %v", names, want)
			}
		}
		empty, err := c.ReadDir(env, "/nothing")
		if err != nil {
			return err
		}
		if len(empty) != 0 {
			t.Fatalf("empty dir = %v", empty)
		}
		return nil
	})
}
