package fs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"sprite/internal/netsim"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// modelFile is the reference implementation: a flat byte slice.
type modelFile struct {
	data []byte
}

func (m *modelFile) writeAt(off int64, p []byte) {
	need := int(off) + len(p)
	if need > len(m.data) {
		grown := make([]byte, need)
		copy(grown, m.data)
		m.data = grown
	}
	copy(m.data[off:], p)
}

func (m *modelFile) readAt(off int64, n int) []byte {
	if off >= int64(len(m.data)) {
		return nil
	}
	hi := int(off) + n
	if hi > len(m.data) {
		hi = len(m.data)
	}
	out := make([]byte, hi-int(off))
	copy(out, m.data[off:hi])
	return out
}

// TestModelRandomOpsSingleClient drives a random sequence of stream
// operations against one client and checks every read against the
// reference model. Runs several seeds; each run is deterministic.
func TestModelRandomOpsSingleClient(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runModelTest(t, seed, 1, 300)
		})
	}
}

// TestModelRandomOpsTwoClients alternates operations between two hosts.
// Reads go through open/close cycles so Sprite's consistency machinery
// (recall, disable, versioning) is constantly exercised; every read must
// still match the reference model.
func TestModelRandomOpsTwoClients(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runModelTest(t, seed, 2, 200)
		})
	}
}

func runModelTest(t *testing.T, seed int64, nClients, ops int) {
	t.Helper()
	s := sim.New(seed)
	net := netsim.New(s, netsim.DefaultParams())
	tr := rpc.NewTransport(s, net, rpc.DefaultParams())
	params := DefaultParams()
	params.ClientCacheBlocks = 8 // small cache: force evictions
	f := New(s, tr, params)
	f.AddServer(1, "/")
	clients := make([]*Client, nClients)
	for i := range clients {
		clients[i] = f.AddClient(rpc.HostID(2 + i))
	}
	rng := rand.New(rand.NewSource(seed))
	model := map[string]*modelFile{}
	paths := []string{"/a", "/b", "/c"}

	s.Spawn("driver", func(env *sim.Env) error {
		for op := 0; op < ops; op++ {
			c := clients[rng.Intn(len(clients))]
			path := paths[rng.Intn(len(paths))]
			mf, exists := model[path]
			switch rng.Intn(5) {
			case 0, 1: // write a random range
				if !exists {
					mf = &modelFile{}
					model[path] = mf
				}
				off := int64(rng.Intn(20000))
				n := 1 + rng.Intn(6000)
				data := make([]byte, n)
				for i := range data {
					data[i] = byte(rng.Intn(256))
				}
				st, err := c.Open(env, path, ReadWriteMode, OpenOptions{Create: true})
				if err != nil {
					return fmt.Errorf("op %d open-w %s: %w", op, path, err)
				}
				if err := c.WriteAt(env, st, off, data); err != nil {
					return fmt.Errorf("op %d write %s: %w", op, path, err)
				}
				mf.writeAt(off, data)
				if err := c.Close(env, st); err != nil {
					return err
				}
			case 2, 3: // read a random range
				if !exists {
					continue
				}
				off := int64(rng.Intn(20000))
				n := 1 + rng.Intn(6000)
				st, err := c.Open(env, path, ReadMode, OpenOptions{})
				if err != nil {
					return fmt.Errorf("op %d open-r %s: %w", op, path, err)
				}
				got, err := c.ReadAt(env, st, off, n)
				if err != nil {
					return fmt.Errorf("op %d read %s: %w", op, path, err)
				}
				want := mf.readAt(off, n)
				if !bytes.Equal(got, want) {
					return fmt.Errorf("op %d: read %s@%d+%d diverged (got %d bytes, want %d; first diff at %d)",
						op, path, off, n, len(got), len(want), firstDiff(got, want))
				}
				if err := c.Close(env, st); err != nil {
					return err
				}
			case 4: // whole-file rewrite (truncate)
				n := rng.Intn(10000)
				data := make([]byte, n)
				for i := range data {
					data[i] = byte(rng.Intn(256))
				}
				if err := c.WriteFile(env, path, data); err != nil {
					return fmt.Errorf("op %d rewrite %s: %w", op, path, err)
				}
				model[path] = &modelFile{data: append([]byte(nil), data...)}
			}
			if err := env.Sleep(time.Millisecond); err != nil {
				return err
			}
		}
		// Final audit: every file read from every client matches.
		for _, path := range paths {
			mf, ok := model[path]
			if !ok {
				continue
			}
			for i, c := range clients {
				got, err := c.ReadFile(env, path)
				if err != nil {
					return fmt.Errorf("audit %s via client %d: %w", path, i, err)
				}
				if !bytes.Equal(got, mf.data) {
					return fmt.Errorf("audit %s via client %d diverged (got %d bytes, want %d, first diff %d)",
						path, i, len(got), len(mf.data), firstDiff(got, mf.data))
				}
			}
		}
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}
