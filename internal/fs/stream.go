package fs

import (
	"fmt"

	"sprite/internal/rpc"
)

// Stream is an open file: the Sprite analogue of a file descriptor's
// underlying object. Streams are reference counted per host: fork on one
// host shares the stream (and its access position) in place; migration moves
// references between hosts, and the moment references span more than one
// host the access position becomes a *shadow stream* kept at the I/O server.
type Stream struct {
	ID   StreamID
	FID  FileID
	Path string
	Mode OpenMode

	offset    int64
	size      int
	cacheable bool
	shared    bool // offset lives at the I/O server
	pipe      bool // stream is one end of a pipe (buffer at the server)
	closed    bool
	owners    map[rpc.HostID]int
}

// Pipe reports whether the stream is one end of a pipe.
func (st *Stream) Pipe() bool { return st.pipe }

// Offset returns the stream's local access position. For a shared stream the
// authoritative position is at the server and this value is a snapshot.
func (st *Stream) Offset() int64 { return st.offset }

// Size returns the stream's last known file size.
func (st *Stream) Size() int { return st.size }

// Shared reports whether the access position is shadowed at the I/O server.
func (st *Stream) Shared() bool { return st.shared }

// Closed reports whether all references have been closed.
func (st *Stream) Closed() bool { return st.closed }

// Refs returns the total reference count across hosts.
func (st *Stream) Refs() int {
	n := 0
	for _, c := range st.owners {
		n += c
	}
	return n
}

// RefsOn returns the reference count on one host.
func (st *Stream) RefsOn(host rpc.HostID) int { return st.owners[host] }

// hostsWithRefs returns how many distinct hosts hold references.
func (st *Stream) hostsWithRefs() int {
	n := 0
	for _, c := range st.owners {
		if c > 0 {
			n++
		}
	}
	return n
}

// String renders the stream for debugging.
func (st *Stream) String() string {
	return fmt.Sprintf("stream %d (%s %s, off=%d, shared=%v)", st.ID, st.Path, st.Mode, st.offset, st.shared)
}
