// Package fs implements the Sprite network file system substrate that the
// migration mechanism depends on [Nel88, NWO88, Wel90]:
//
//   - a single shared namespace served by one or more file servers, located
//     through a prefix table;
//   - client block caching with delayed write-back;
//   - server-driven cache consistency: when a file cached dirty on one host
//     is opened by another, the server recalls the dirty blocks; when a file
//     is concurrently write-shared across hosts, the server disables client
//     caching for it entirely;
//   - streams (open files) with reference counts, and *shadow streams*: when
//     a stream's access position becomes shared across hosts (fork followed
//     by migration), the offset moves to the I/O server;
//   - advisory file locks (used by the shared-file host-selection
//     architecture);
//   - uncacheable files used as virtual-memory backing store.
//
// All costs — server CPU per name lookup and per block, disk transfers,
// network messages — are charged in virtual time, so the file server
// contention that limits the thesis's pmake speedups emerges from the model
// rather than being scripted.
package fs

import (
	"errors"
	"fmt"
	"time"

	"sprite/internal/metrics"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// Errors reported by file system operations.
var (
	// ErrNotFound is returned for operations on paths that do not exist.
	ErrNotFound = errors.New("fs: file not found")
	// ErrExists is returned when creating a path that already exists.
	ErrExists = errors.New("fs: file exists")
	// ErrBadStream is returned for operations on closed or invalid streams.
	ErrBadStream = errors.New("fs: bad stream")
	// ErrReadOnly is returned for writes through a read-only stream.
	ErrReadOnly = errors.New("fs: stream not open for writing")
	// ErrNoServer is returned when no server's prefix covers a path.
	ErrNoServer = errors.New("fs: no server for path")
)

// OpenMode selects the access mode of a stream.
type OpenMode int

// Stream access modes.
const (
	ReadMode OpenMode = iota + 1
	WriteMode
	ReadWriteMode
)

func (m OpenMode) String() string {
	switch m {
	case ReadMode:
		return "r"
	case WriteMode:
		return "w"
	case ReadWriteMode:
		return "rw"
	default:
		return "?"
	}
}

func (m OpenMode) canRead() bool  { return m == ReadMode || m == ReadWriteMode }
func (m OpenMode) canWrite() bool { return m == WriteMode || m == ReadWriteMode }

// FileID names a file on a particular I/O server.
type FileID struct {
	Server rpc.HostID
	Ino    int
}

// String renders the id as "host<N>:<ino>".
func (f FileID) String() string { return fmt.Sprintf("%v:%d", f.Server, f.Ino) }

// StreamID uniquely identifies a stream across the cluster.
type StreamID uint64

// Params configures file system costs and policies.
type Params struct {
	// BlockSize is the cache/transfer block size in bytes.
	BlockSize int
	// NameLookupCPU is server CPU charged per path lookup (open/create/
	// remove/stat). Nelson identified lookups as the dominant server cost.
	NameLookupCPU time.Duration
	// BlockServerCPU is server CPU charged per block read or written.
	BlockServerCPU time.Duration
	// DiskPerBlock is disk time per cold block read (blocks never yet
	// touched are "on disk"; everything else hits the server cache).
	DiskPerBlock time.Duration
	// ClientCacheBlocks is the client block cache capacity.
	ClientCacheBlocks int
	// WriteBackDelay is the age at which a client's background flusher
	// pushes dirty blocks to the server (Sprite used 30 s).
	WriteBackDelay time.Duration
	// WriteThrough disables delayed write-back: every cached write is
	// pushed to the server synchronously (an ablation of Sprite's delayed
	// writes; costs server traffic but removes dirty-cache recalls).
	WriteThrough bool
	// BulkPerBlockCPU is server CPU charged per block inside a bulk
	// transfer (fs.writeBulk / fs.readBulk), on top of one BlockServerCPU
	// for the whole batch. Bulk requests amortize the per-request protocol
	// work across the batch, so the marginal block is much cheaper than a
	// standalone fs.write.
	BulkPerBlockCPU time.Duration
}

// DefaultParams returns Sun-3-era file system parameters.
func DefaultParams() Params {
	return Params{
		BlockSize:         4096,
		NameLookupCPU:     2 * time.Millisecond,
		BlockServerCPU:    400 * time.Microsecond,
		DiskPerBlock:      15 * time.Millisecond,
		ClientCacheBlocks: 1024, // 4 MB of cache
		WriteBackDelay:    30 * time.Second,
		BulkPerBlockCPU:   100 * time.Microsecond,
	}
}

// FS is the cluster-wide file system fabric: the prefix table, the servers,
// and the per-host clients.
type FS struct {
	sim       *sim.Simulation
	transport *rpc.Transport
	params    Params
	ns        *Namespace
	servers   map[rpc.HostID]*Server
	clients   map[rpc.HostID]*Client
	streamSeq StreamID

	// scrubbed records the highest boot epoch per host for which crash
	// recovery (ScrubHost) has already run, making ScrubHostEpoch idempotent
	// when both the crash injector and a later reaping pass request it.
	scrubbed map[rpc.HostID]rpc.Epoch

	// m holds the optional metrics plane's cached counters, shared by every
	// client so cluster-wide cache behaviour reads as one set of series.
	m *fsCounters
}

// fsCounters caches the fabric-wide instrument pointers.
type fsCounters struct {
	hits, misses, flushes, recalls *metrics.Counter
	bytesRead, bytesWritten        *metrics.Counter
	prefixQueries                  *metrics.Counter
	streamMoves, pipeMoves         *metrics.Counter
}

// SetMetrics installs (or with nil removes) the registry receiving the
// fabric's cache and stream-forwarding counters: fs.cache.{hits,misses,
// flushes,recalls}, fs.bytes.{read,written}, fs.prefix.queries, and
// fs.stream.{moves,pipe_moves}.
func (f *FS) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		f.m = nil
		return
	}
	f.m = &fsCounters{
		hits:          reg.Counter("fs.cache.hits"),
		misses:        reg.Counter("fs.cache.misses"),
		flushes:       reg.Counter("fs.cache.flushes"),
		recalls:       reg.Counter("fs.cache.recalls"),
		bytesRead:     reg.Counter("fs.bytes.read"),
		bytesWritten:  reg.Counter("fs.bytes.written"),
		prefixQueries: reg.Counter("fs.prefix.queries"),
		streamMoves:   reg.Counter("fs.stream.moves"),
		pipeMoves:     reg.Counter("fs.stream.pipe_moves"),
	}
}

// New returns an empty file system fabric.
func New(s *sim.Simulation, transport *rpc.Transport, params Params) *FS {
	if params.BlockSize <= 0 {
		params.BlockSize = 4096
	}
	return &FS{
		sim:       s,
		transport: transport,
		params:    params,
		ns:        NewNamespace(),
		servers:   make(map[rpc.HostID]*Server),
		clients:   make(map[rpc.HostID]*Client),
	}
}

// Params returns the file system configuration.
func (f *FS) Params() Params { return f.params }

// AddServer creates a file server on the given host serving the given path
// prefix (e.g. "/" or "/b").
func (f *FS) AddServer(host rpc.HostID, prefix string) *Server {
	srv := newServer(f, host)
	f.servers[host] = srv
	f.ns.AddPrefix(prefix, host)
	return srv
}

// AddClient creates the FS client for the given host.
func (f *FS) AddClient(host rpc.HostID) *Client {
	c := newClient(f, host)
	f.clients[host] = c
	return c
}

// Client returns the client for a host, or nil.
func (f *FS) Client(host rpc.HostID) *Client { return f.clients[host] }

// Server returns the server on a host, or nil.
func (f *FS) Server(host rpc.HostID) *Server { return f.servers[host] }

// Servers returns all servers keyed by host.
func (f *FS) Servers() map[rpc.HostID]*Server { return f.servers }

// Namespace returns the prefix table.
func (f *FS) Namespace() *Namespace { return f.ns }

// Seed creates a file directly on its server without charging any virtual
// time. It exists for scenario setup (program binaries, source trees) whose
// cost is not part of any measured experiment. If the path already exists
// its content is replaced.
func (f *FS) Seed(path string, data []byte, neverCache bool) (FileID, error) {
	srvHost, err := f.ns.Lookup(path)
	if err != nil {
		return FileID{}, fmt.Errorf("seed %s: %w", path, err)
	}
	srv := f.servers[srvHost]
	if srv == nil {
		return FileID{}, fmt.Errorf("seed %s: %w", path, ErrNoServer)
	}
	fl, ok := srv.files[path]
	if !ok {
		fl = srv.create(path, neverCache)
	}
	fl.data = append([]byte(nil), data...)
	fl.version++
	fl.mtime = f.sim.Now()
	// Seeded data is considered on disk: first reads pay the disk cost.
	fl.touched = make(map[int]bool)
	return FileID{Server: srvHost, Ino: fl.ino}, nil
}

// SeedSized seeds a file of the given size with zero bytes (cheap way to
// create large inputs).
func (f *FS) SeedSized(path string, size int, neverCache bool) (FileID, error) {
	return f.Seed(path, make([]byte, size), neverCache)
}

func (f *FS) nextStreamID() StreamID {
	f.streamSeq++
	return f.streamSeq
}

// blockCount returns the number of blocks covering n bytes.
func (f *FS) blockCount(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + f.params.BlockSize - 1) / f.params.BlockSize
}
