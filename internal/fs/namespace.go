package fs

import (
	"sort"
	"strings"

	"sprite/internal/rpc"
)

// Namespace is Sprite's prefix table: it maps absolute path prefixes to the
// file server responsible for that domain. The cluster-wide table here is
// the authoritative registry servers publish into; clients keep their own
// cached copies populated by broadcast (see Client.lookupServer), exactly
// as Sprite clients discover domains.
type Namespace struct {
	prefixes []prefixEntry
}

type prefixEntry struct {
	prefix string
	server rpc.HostID
}

// NewNamespace returns an empty prefix table.
func NewNamespace() *Namespace {
	return &Namespace{}
}

// AddPrefix registers a domain. Longer prefixes take precedence over
// shorter ones, as in Sprite's prefix tables.
func (n *Namespace) AddPrefix(prefix string, server rpc.HostID) {
	if prefix == "" {
		prefix = "/"
	}
	for i, e := range n.prefixes {
		if e.prefix == prefix {
			n.prefixes[i].server = server
			return
		}
	}
	n.prefixes = append(n.prefixes, prefixEntry{prefix: prefix, server: server})
	sort.Slice(n.prefixes, func(i, j int) bool {
		return len(n.prefixes[i].prefix) > len(n.prefixes[j].prefix)
	})
}

// Lookup resolves a path to its server.
func (n *Namespace) Lookup(path string) (rpc.HostID, error) {
	for _, e := range n.prefixes {
		if matchPrefix(path, e.prefix) {
			return e.server, nil
		}
	}
	return rpc.NoHost, ErrNoServer
}

// matchPrefix reports whether path lies inside the domain rooted at prefix.
func matchPrefix(path, prefix string) bool {
	if prefix == "/" {
		return strings.HasPrefix(path, "/")
	}
	if !strings.HasPrefix(path, prefix) {
		return false
	}
	return len(path) == len(prefix) || path[len(prefix)] == '/'
}

// prefixFor returns the matching prefix for a path ("" if none).
func (n *Namespace) prefixFor(path string) string {
	for _, e := range n.prefixes {
		if matchPrefix(path, e.prefix) {
			return e.prefix
		}
	}
	return ""
}

// Domains returns the registered prefixes, longest first.
func (n *Namespace) Domains() []string {
	out := make([]string, len(n.prefixes))
	for i, e := range n.prefixes {
		out[i] = e.prefix
	}
	return out
}
