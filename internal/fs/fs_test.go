package fs

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"sprite/internal/netsim"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// harness builds a simulation with one file server (host 1) and clients on
// hosts 2..(1+clients).
type harness struct {
	sim *sim.Simulation
	fs  *FS
	srv *Server
}

func newHarness(t *testing.T, clients int) *harness {
	t.Helper()
	s := sim.New(1)
	net := netsim.New(s, netsim.Params{Latency: 500 * time.Microsecond, BandwidthBytesPerSec: 1e6})
	tr := rpc.NewTransport(s, net, rpc.Params{ClientOverhead: time.Millisecond})
	f := New(s, tr, DefaultParams())
	srv := f.AddServer(1, "/")
	for i := 0; i < clients; i++ {
		f.AddClient(rpc.HostID(2 + i))
	}
	return &harness{sim: s, fs: f, srv: srv}
}

func (h *harness) run(t *testing.T, fn func(env *sim.Env) error) {
	t.Helper()
	h.sim.Spawn("test", fn)
	if err := h.sim.Run(0); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestWriteReadBackSameHost(t *testing.T) {
	h := newHarness(t, 1)
	c := h.fs.Client(2)
	want := []byte("hello, sprite world")
	h.run(t, func(env *sim.Env) error {
		if err := c.WriteFile(env, "/tmp/a", want); err != nil {
			return err
		}
		got, err := c.ReadFile(env, "/tmp/a")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			t.Errorf("got %q, want %q", got, want)
		}
		return nil
	})
}

func TestCrossHostVisibilityViaConsistency(t *testing.T) {
	h := newHarness(t, 2)
	a, b := h.fs.Client(2), h.fs.Client(3)
	want := []byte("written on A, read on B")
	h.run(t, func(env *sim.Env) error {
		if err := a.WriteFile(env, "/f", want); err != nil {
			return err
		}
		// A's dirty blocks are still in its cache (delayed write-back);
		// B's open must recall them through the server.
		if a.DirtyBlocks() == 0 {
			t.Error("expected dirty blocks in A's cache before B's open")
		}
		got, err := b.ReadFile(env, "/f")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			t.Errorf("got %q, want %q", got, want)
		}
		return nil
	})
	if h.srv.Stats().FlushRecall == 0 {
		t.Error("expected a flush recall")
	}
}

func TestConcurrentWriteSharingDisablesCaching(t *testing.T) {
	h := newHarness(t, 2)
	a, b := h.fs.Client(2), h.fs.Client(3)
	h.run(t, func(env *sim.Env) error {
		sa, err := a.Open(env, "/f", WriteMode, OpenOptions{Create: true})
		if err != nil {
			return err
		}
		if _, err := a.Write(env, sa, []byte("aaaa")); err != nil {
			return err
		}
		sb, err := b.Open(env, "/f", ReadWriteMode, OpenOptions{})
		if err != nil {
			return err
		}
		// Caching must now be off for both; B must observe A's data.
		got, err := b.Read(env, sb, 4)
		if err != nil {
			return err
		}
		if string(got) != "aaaa" {
			t.Errorf("B read %q, want aaaa", got)
		}
		// B writes; A (seeking back) must observe it immediately since
		// neither caches.
		if err := b.Seek(env, sb, 0); err != nil {
			return err
		}
		if _, err := b.Write(env, sb, []byte("bbbb")); err != nil {
			return err
		}
		if err := a.Seek(env, sa, 0); err != nil {
			return err
		}
		sa.Mode = ReadWriteMode // allow reading for verification
		got, err = a.Read(env, sa, 4)
		if err != nil {
			return err
		}
		if string(got) != "bbbb" {
			t.Errorf("A read %q, want bbbb", got)
		}
		if err := a.Close(env, sa); err != nil {
			return err
		}
		return b.Close(env, sb)
	})
	if h.srv.Stats().Disables == 0 {
		t.Error("expected caching to be disabled")
	}
}

func TestCacheHitsOnRepeatedReads(t *testing.T) {
	h := newHarness(t, 1)
	c := h.fs.Client(2)
	if _, err := h.fs.Seed("/data", bytes.Repeat([]byte("x"), 64*1024), false); err != nil {
		t.Fatal(err)
	}
	h.run(t, func(env *sim.Env) error {
		for i := 0; i < 3; i++ {
			if _, err := c.ReadFile(env, "/data"); err != nil {
				return err
			}
		}
		return nil
	})
	st := c.Stats()
	if st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("stats = %+v, want both hits and misses", st)
	}
	if st.Hits < 2*st.Misses {
		t.Fatalf("stats = %+v, want hits ~2x misses for 3 reads", st)
	}
}

func TestColdReadsChargeDisk(t *testing.T) {
	h := newHarness(t, 1)
	c := h.fs.Client(2)
	if _, err := h.fs.Seed("/cold", make([]byte, 8*4096), false); err != nil {
		t.Fatal(err)
	}
	var first, second time.Duration
	h.run(t, func(env *sim.Env) error {
		t0 := env.Now()
		if _, err := c.ReadFile(env, "/cold"); err != nil {
			return err
		}
		first = env.Now() - t0
		t0 = env.Now()
		if _, err := c.ReadFile(env, "/cold"); err != nil {
			return err
		}
		second = env.Now() - t0
		return nil
	})
	if first <= second {
		t.Fatalf("cold read %v should exceed cached read %v", first, second)
	}
	if h.srv.Stats().ColdReads != 8 {
		t.Fatalf("cold reads = %d, want 8", h.srv.Stats().ColdReads)
	}
}

func TestUncacheableFileAlwaysGoesToServer(t *testing.T) {
	h := newHarness(t, 1)
	c := h.fs.Client(2)
	h.run(t, func(env *sim.Env) error {
		st, err := c.Open(env, "/swap/1", ReadWriteMode, OpenOptions{Create: true, Uncacheable: true})
		if err != nil {
			return err
		}
		if _, err := c.Write(env, st, make([]byte, 4096)); err != nil {
			return err
		}
		if err := c.Seek(env, st, 0); err != nil {
			return err
		}
		if _, err := c.Read(env, st, 4096); err != nil {
			return err
		}
		return c.Close(env, st)
	})
	if got := c.CachedBlocks(); got != 0 {
		t.Fatalf("cached blocks = %d, want 0", got)
	}
	if h.srv.Stats().BlocksWrite == 0 || h.srv.Stats().BlocksRead == 0 {
		t.Fatalf("server stats = %+v, want direct traffic", h.srv.Stats())
	}
}

func TestStreamOffsetSemantics(t *testing.T) {
	h := newHarness(t, 1)
	c := h.fs.Client(2)
	h.run(t, func(env *sim.Env) error {
		st, err := c.Open(env, "/seq", ReadWriteMode, OpenOptions{Create: true})
		if err != nil {
			return err
		}
		if _, err := c.Write(env, st, []byte("abcdef")); err != nil {
			return err
		}
		if st.Offset() != 6 {
			t.Errorf("offset = %d, want 6", st.Offset())
		}
		if err := c.Seek(env, st, 2); err != nil {
			return err
		}
		got, err := c.Read(env, st, 2)
		if err != nil {
			return err
		}
		if string(got) != "cd" {
			t.Errorf("read %q, want cd", got)
		}
		return c.Close(env, st)
	})
}

func TestDupSharesOffset(t *testing.T) {
	h := newHarness(t, 1)
	c := h.fs.Client(2)
	h.run(t, func(env *sim.Env) error {
		if err := c.WriteFile(env, "/f", []byte("0123456789")); err != nil {
			return err
		}
		st, err := c.Open(env, "/f", ReadMode, OpenOptions{})
		if err != nil {
			return err
		}
		if err := c.Dup(st); err != nil {
			return err
		}
		if st.Refs() != 2 {
			t.Errorf("refs = %d, want 2", st.Refs())
		}
		if _, err := c.Read(env, st, 4); err != nil {
			return err
		}
		got, err := c.Read(env, st, 4)
		if err != nil {
			return err
		}
		if string(got) != "4567" {
			t.Errorf("second read %q, want 4567", got)
		}
		if err := c.Close(env, st); err != nil {
			return err
		}
		if st.Closed() {
			t.Error("stream closed with one ref remaining")
		}
		if err := c.Close(env, st); err != nil {
			return err
		}
		if !st.Closed() {
			t.Error("stream not closed after last ref")
		}
		return nil
	})
}

func TestMoveStreamPreservesDataAndOffset(t *testing.T) {
	h := newHarness(t, 2)
	a, b := h.fs.Client(2), h.fs.Client(3)
	h.run(t, func(env *sim.Env) error {
		if err := a.WriteFile(env, "/f", []byte("0123456789")); err != nil {
			return err
		}
		st, err := a.Open(env, "/f", ReadMode, OpenOptions{})
		if err != nil {
			return err
		}
		if _, err := a.Read(env, st, 4); err != nil {
			return err
		}
		// Migrate the stream (whole reference) to host 3.
		if err := a.MoveStream(env, st, 3); err != nil {
			return err
		}
		if st.RefsOn(3) != 1 || st.RefsOn(2) != 0 {
			t.Errorf("refs after move: on2=%d on3=%d", st.RefsOn(2), st.RefsOn(3))
		}
		if st.Shared() {
			t.Error("single-host stream should not be shared after move")
		}
		got, err := b.Read(env, st, 4)
		if err != nil {
			return err
		}
		if string(got) != "4567" {
			t.Errorf("read on target %q, want 4567", got)
		}
		return b.Close(env, st)
	})
}

func TestMoveStreamFlushesSourceDirtyBlocks(t *testing.T) {
	h := newHarness(t, 2)
	a, b := h.fs.Client(2), h.fs.Client(3)
	h.run(t, func(env *sim.Env) error {
		st, err := a.Open(env, "/f", ReadWriteMode, OpenOptions{Create: true})
		if err != nil {
			return err
		}
		if _, err := a.Write(env, st, []byte("dirty data here")); err != nil {
			return err
		}
		if a.DirtyBlocks() == 0 {
			t.Error("expected dirty blocks before move")
		}
		if err := a.MoveStream(env, st, 3); err != nil {
			return err
		}
		if a.DirtyBlocks() != 0 {
			t.Error("source cache still dirty after move")
		}
		if err := b.Seek(env, st, 0); err != nil {
			return err
		}
		got, err := b.Read(env, st, 15)
		if err != nil {
			return err
		}
		if string(got) != "dirty data here" {
			t.Errorf("read %q", got)
		}
		return b.Close(env, st)
	})
}

func TestSharedOffsetAfterForkAndMigrate(t *testing.T) {
	h := newHarness(t, 2)
	a, b := h.fs.Client(2), h.fs.Client(3)
	h.run(t, func(env *sim.Env) error {
		if err := a.WriteFile(env, "/f", []byte("abcdefghij")); err != nil {
			return err
		}
		st, err := a.Open(env, "/f", ReadMode, OpenOptions{})
		if err != nil {
			return err
		}
		// Fork: two references on host 2, then one migrates to host 3.
		if err := a.Dup(st); err != nil {
			return err
		}
		if err := a.MoveStream(env, st, 3); err != nil {
			return err
		}
		if !st.Shared() {
			t.Fatal("stream spanning hosts must have a shadow offset")
		}
		// Reads from both hosts advance one shared position.
		g1, err := a.Read(env, st, 3)
		if err != nil {
			return err
		}
		g2, err := b.Read(env, st, 3)
		if err != nil {
			return err
		}
		if string(g1) != "abc" || string(g2) != "def" {
			t.Errorf("reads %q,%q want abc,def", g1, g2)
		}
		if err := a.Close(env, st); err != nil {
			return err
		}
		return b.Close(env, st)
	})
}

func TestPrefixTableRoutesToServers(t *testing.T) {
	s := sim.New(1)
	net := netsim.New(s, netsim.DefaultParams())
	tr := rpc.NewTransport(s, net, rpc.DefaultParams())
	f := New(s, tr, DefaultParams())
	f.AddServer(1, "/")
	f.AddServer(2, "/b")
	c := f.AddClient(3)
	s.Spawn("t", func(env *sim.Env) error {
		if err := c.WriteFile(env, "/a/x", []byte("root")); err != nil {
			return err
		}
		if err := c.WriteFile(env, "/b/x", []byte("sub")); err != nil {
			return err
		}
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if f.Server(1).FileCount() != 1 || f.Server(2).FileCount() != 1 {
		t.Fatalf("files: s1=%d s2=%d, want 1 each", f.Server(1).FileCount(), f.Server(2).FileCount())
	}
}

func TestNamespaceLongestPrefixWins(t *testing.T) {
	ns := NewNamespace()
	ns.AddPrefix("/", 1)
	ns.AddPrefix("/b", 2)
	ns.AddPrefix("/b/c", 3)
	cases := []struct {
		path string
		want rpc.HostID
	}{
		{"/x", 1}, {"/b", 2}, {"/b/x", 2}, {"/b/c/d", 3}, {"/bc", 1},
	}
	for _, cse := range cases {
		got, err := ns.Lookup(cse.path)
		if err != nil {
			t.Fatalf("lookup %s: %v", cse.path, err)
		}
		if got != cse.want {
			t.Errorf("lookup %s = %v, want %v", cse.path, got, cse.want)
		}
	}
	empty := NewNamespace()
	if _, err := empty.Lookup("/x"); !errors.Is(err, ErrNoServer) {
		t.Errorf("empty namespace lookup err = %v", err)
	}
}

func TestRemoveAndNotFound(t *testing.T) {
	h := newHarness(t, 1)
	c := h.fs.Client(2)
	h.run(t, func(env *sim.Env) error {
		if err := c.WriteFile(env, "/gone", []byte("x")); err != nil {
			return err
		}
		if err := c.Remove(env, "/gone"); err != nil {
			return err
		}
		_, err := c.Open(env, "/gone", ReadMode, OpenOptions{})
		if !errors.Is(err, ErrNotFound) {
			t.Errorf("open removed file err = %v", err)
		}
		_, _, err = c.Stat(env, "/gone")
		if !errors.Is(err, ErrNotFound) {
			t.Errorf("stat removed file err = %v", err)
		}
		return nil
	})
}

func TestLockSerializesCriticalSections(t *testing.T) {
	h := newHarness(t, 2)
	a, b := h.fs.Client(2), h.fs.Client(3)
	var order []string
	worker := func(name string, c *Client, hold time.Duration) func(env *sim.Env) error {
		return func(env *sim.Env) error {
			if err := c.Lock(env, "/lock"); err != nil {
				return err
			}
			order = append(order, name+"+")
			if err := env.Sleep(hold); err != nil {
				return err
			}
			order = append(order, name+"-")
			return c.Unlock(env, "/lock")
		}
	}
	h.sim.Spawn("a", worker("a", a, time.Second))
	h.sim.Spawn("b", worker("b", b, time.Second))
	if err := h.sim.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []string{"a+", "a-", "b+", "b-"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTruncateInvalidatesOtherCaches(t *testing.T) {
	h := newHarness(t, 2)
	a, b := h.fs.Client(2), h.fs.Client(3)
	h.run(t, func(env *sim.Env) error {
		if err := a.WriteFile(env, "/f", []byte("old content")); err != nil {
			return err
		}
		if _, err := b.ReadFile(env, "/f"); err != nil { // B caches it
			return err
		}
		if err := a.WriteFile(env, "/f", []byte("new")); err != nil { // truncate+rewrite
			return err
		}
		got, err := b.ReadFile(env, "/f")
		if err != nil {
			return err
		}
		if string(got) != "new" {
			t.Errorf("B read %q, want new (stale cache?)", got)
		}
		return nil
	})
}

func TestCacheEvictionWritesBackDirty(t *testing.T) {
	s := sim.New(1)
	net := netsim.New(s, netsim.DefaultParams())
	tr := rpc.NewTransport(s, net, rpc.DefaultParams())
	params := DefaultParams()
	params.ClientCacheBlocks = 4
	f := New(s, tr, params)
	srv := f.AddServer(1, "/")
	c := f.AddClient(2)
	s.Spawn("t", func(env *sim.Env) error {
		// Write 8 blocks through a 4-block cache.
		return c.WriteFile(env, "/big", make([]byte, 8*4096))
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if c.CachedBlocks() > 4 {
		t.Fatalf("cache holds %d blocks, cap 4", c.CachedBlocks())
	}
	if srv.Stats().BlocksWrite == 0 {
		t.Fatal("expected eviction write-backs")
	}
}

func TestReadAtDoesNotMoveOffset(t *testing.T) {
	h := newHarness(t, 1)
	c := h.fs.Client(2)
	h.run(t, func(env *sim.Env) error {
		if err := c.WriteFile(env, "/f", []byte("0123456789")); err != nil {
			return err
		}
		st, err := c.Open(env, "/f", ReadMode, OpenOptions{})
		if err != nil {
			return err
		}
		got, err := c.ReadAt(env, st, 5, 3)
		if err != nil {
			return err
		}
		if string(got) != "567" {
			t.Errorf("ReadAt = %q", got)
		}
		if st.Offset() != 0 {
			t.Errorf("offset moved to %d", st.Offset())
		}
		return c.Close(env, st)
	})
}

func TestSeedIsFree(t *testing.T) {
	h := newHarness(t, 1)
	if _, err := h.fs.Seed("/seeded", []byte("content"), false); err != nil {
		t.Fatal(err)
	}
	if h.sim.Now() != 0 {
		t.Fatal("seeding must not advance time")
	}
	c := h.fs.Client(2)
	h.run(t, func(env *sim.Env) error {
		got, err := c.ReadFile(env, "/seeded")
		if err != nil {
			return err
		}
		if string(got) != "content" {
			t.Errorf("got %q", got)
		}
		return nil
	})
}

func TestEOFReadReturnsNil(t *testing.T) {
	h := newHarness(t, 1)
	c := h.fs.Client(2)
	h.run(t, func(env *sim.Env) error {
		if err := c.WriteFile(env, "/f", []byte("ab")); err != nil {
			return err
		}
		st, err := c.Open(env, "/f", ReadMode, OpenOptions{})
		if err != nil {
			return err
		}
		if _, err := c.Read(env, st, 10); err != nil {
			return err
		}
		got, err := c.Read(env, st, 10)
		if err != nil {
			return err
		}
		if got != nil {
			t.Errorf("read past EOF = %q, want nil", got)
		}
		return c.Close(env, st)
	})
}

func TestWriteToReadOnlyStreamFails(t *testing.T) {
	h := newHarness(t, 1)
	c := h.fs.Client(2)
	h.run(t, func(env *sim.Env) error {
		if err := c.WriteFile(env, "/f", []byte("x")); err != nil {
			return err
		}
		st, err := c.Open(env, "/f", ReadMode, OpenOptions{})
		if err != nil {
			return err
		}
		if _, err := c.Write(env, st, []byte("y")); !errors.Is(err, ErrReadOnly) {
			t.Errorf("err = %v, want ErrReadOnly", err)
		}
		return c.Close(env, st)
	})
}

func TestUseAfterCloseFails(t *testing.T) {
	h := newHarness(t, 1)
	c := h.fs.Client(2)
	h.run(t, func(env *sim.Env) error {
		if err := c.WriteFile(env, "/f", []byte("x")); err != nil {
			return err
		}
		st, err := c.Open(env, "/f", ReadMode, OpenOptions{})
		if err != nil {
			return err
		}
		if err := c.Close(env, st); err != nil {
			return err
		}
		if _, err := c.Read(env, st, 1); !errors.Is(err, ErrBadStream) {
			t.Errorf("read err = %v, want ErrBadStream", err)
		}
		if err := c.Close(env, st); !errors.Is(err, ErrBadStream) {
			t.Errorf("double close err = %v, want ErrBadStream", err)
		}
		return nil
	})
}
