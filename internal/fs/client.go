package fs

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"time"

	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// ClientStats summarizes one host's cache behaviour.
type ClientStats struct {
	Hits          uint64
	Misses        uint64
	BytesRead     uint64
	BytesWritten  uint64
	BlockFlushes  uint64
	Recalls       uint64 // consistency callbacks served (flush or disable)
	PrefixQueries uint64 // prefix-table broadcasts to discover a domain
}

type cacheKey struct {
	fid   FileID
	block int
}

type cacheBlock struct {
	key   cacheKey
	data  []byte // always BlockSize long
	dirty bool
	elem  *list.Element
}

// Client is one host's window onto the shared file system: it resolves
// paths through the prefix table, talks RPC to the owning server, and runs
// the host's block cache.
type Client struct {
	fs   *FS
	host rpc.HostID
	ep   *rpc.Endpoint

	blocks    map[cacheKey]*cacheBlock
	lru       *list.List // front = most recently used
	fileVer   map[FileID]uint64
	fileSize  map[FileID]int
	fileMTime map[FileID]time.Duration // last local cached write per file
	noCache   map[FileID]bool

	// prefixCache is the client's own prefix table, filled by broadcast on
	// the first lookup of each domain (Sprite's prefix-table protocol).
	prefixCache *Namespace

	// pendingCloses holds close RPCs that failed in transit (server
	// unreachable: crash window, partition) for retry at the next Open.
	// Without the retry the server's open entry leaks until an epoch
	// scrub, and a host that never reboots never gets scrubbed.
	pendingCloses []pendingClose

	// streamSeq allocates stream IDs host-locally when the transport is
	// confined: the global FS sequence would be a cross-shard write on every
	// Open, and its allocation order would differ between the serial and
	// parallel kernels. The host id is folded into the high bits so the IDs
	// stay unique cluster-wide.
	streamSeq uint64

	// pendingRec queues destination-cache reconciliations deferred by
	// MoveStream under host confinement: the migrating process applies them
	// itself once it lands on the target's shard (see ApplyReconciles).
	pendingRec []Reconcile

	stats ClientStats
}

// Reconcile is one deferred destination-cache update from a stream
// migration: under host confinement the source host must not touch the
// destination client's tables directly, so MoveStream records what the
// destination needs to learn and the migrated process applies it after its
// activity has rehomed to the target's shard.
type Reconcile struct {
	FID       FileID
	Version   uint64
	Cacheable bool
	Size      int
}

// pendingClose is one queued close retry, tagged with the client's boot
// epoch at failure time: a reboot voids the retry (the server scrubs the
// dead epoch's entries itself, and a late close must not debit a fresh
// post-reboot open).
type pendingClose struct {
	args  closeArgs
	epoch rpc.Epoch
}

func newClient(f *FS, host rpc.HostID) *Client {
	c := &Client{
		fs:        f,
		host:      host,
		ep:        f.transport.Register(host),
		blocks:    make(map[cacheKey]*cacheBlock),
		lru:       list.New(),
		fileVer:   make(map[FileID]uint64),
		fileSize:  make(map[FileID]int),
		fileMTime: make(map[FileID]time.Duration),
		noCache:   make(map[FileID]bool),
	}
	c.ep.Handle("fsc.flush", c.handleFlushCallback)
	c.ep.Handle("fsc.disable", c.handleDisableCallback)
	c.ep.Handle("fsc.attr", c.handleAttrCallback)
	return c
}

// Host returns the client's host id.
func (c *Client) Host() rpc.HostID { return c.host }

// Stats returns a copy of the cache statistics.
func (c *Client) Stats() ClientStats { return c.stats }

// DirtyBlocks returns the number of dirty blocks held in the cache.
func (c *Client) DirtyBlocks() int {
	n := 0
	for _, b := range c.blocks {
		if b.dirty {
			n++
		}
	}
	return n
}

// CachedBlocks returns the number of blocks held in the cache.
func (c *Client) CachedBlocks() int { return len(c.blocks) }

// server resolves a path to its file server through the client's cached
// prefix table; outside the simulation's zero-cost setup phase, a miss is
// resolved by broadcasting a prefix query to which the owning server
// responds (Sprite's prefix-table protocol). The authoritative table is
// consulted only to decide who answers; the client pays the broadcast.
func (c *Client) server(path string) (rpc.HostID, error) {
	return c.fs.ns.Lookup(path)
}

// lookupServer is the charged variant used from activities: a prefix-cache
// miss costs one broadcast plus the owner's reply before being cached.
func (c *Client) lookupServer(env *sim.Env, path string) (rpc.HostID, error) {
	if c.prefixCache == nil {
		c.prefixCache = NewNamespace()
	}
	host, err := c.fs.ns.Lookup(path)
	if err != nil {
		return rpc.NoHost, err
	}
	// A cached prefix that agrees with the authority is a free hit. A
	// cached shorter prefix shadowing an undiscovered longer one is
	// detected by the server redirecting the request (charged below as a
	// fresh broadcast), exactly like an outright miss.
	if cached, cerr := c.prefixCache.Lookup(path); cerr == nil && cached == host {
		return host, nil
	}
	// One broadcast query + one reply from the owning server.
	if err := c.fs.transport.Network().Send(env, 32+len(path)); err != nil {
		return rpc.NoHost, err
	}
	if err := c.fs.transport.Network().Send(env, 32); err != nil {
		return rpc.NoHost, err
	}
	c.stats.PrefixQueries++
	if m := c.fs.m; m != nil {
		m.prefixQueries.IncSlot(sim.WorkerSlot(env))
	}
	prefix := c.fs.ns.prefixFor(path)
	c.prefixCache.AddPrefix(prefix, host)
	return host, nil
}

// OpenOptions modify Open behaviour.
type OpenOptions struct {
	// Create the file if it does not exist.
	Create bool
	// Truncate an existing file to zero length (with Create).
	Truncate bool
	// Uncacheable marks the file never-client-cached (backing store).
	Uncacheable bool
}

// transportFailed reports whether an RPC error means the server never
// processed the call (as opposed to processing it and returning an error).
func transportFailed(err error) bool {
	return errors.Is(err, rpc.ErrHostDown) || errors.Is(err, rpc.ErrTimeout) || errors.Is(err, rpc.ErrNoService)
}

// drainCloses retries queued close RPCs. A server response — success or
// error — settles an entry; another transport failure keeps it for later.
// Entries from a previous boot epoch are dropped: the epoch scrub already
// reclaimed them on the server.
func (c *Client) drainCloses(env *sim.Env) {
	if len(c.pendingCloses) == 0 {
		return
	}
	keep := c.pendingCloses[:0]
	for _, p := range c.pendingCloses {
		if p.epoch != c.ep.Epoch() {
			continue
		}
		p.args.Dirty = c.hasDirty(p.args.FID)
		if _, err := c.ep.Call(env, p.args.FID.Server, "fs.close", p.args, 32); err != nil && transportFailed(err) {
			keep = append(keep, p)
		}
	}
	c.pendingCloses = keep
}

// Settle retries close RPCs that failed in transit, for callers that know
// the network healed but will not Open again (a daemon's shutdown path).
// Best-effort: entries whose server is still unreachable stay queued.
func (c *Client) Settle(env *sim.Env) { c.drainCloses(env) }

// Open opens path in the given mode and returns a new stream.
func (c *Client) Open(env *sim.Env, path string, mode OpenMode, opts OpenOptions) (*Stream, error) {
	c.drainCloses(env)
	srvHost, err := c.lookupServer(env, path)
	if err != nil {
		return nil, fmt.Errorf("open %s: %w", path, err)
	}
	reply, err := c.ep.Call(env, srvHost, "fs.open", openArgs{
		Path:        path,
		Mode:        mode,
		Host:        c.host,
		Create:      opts.Create,
		Truncate:    opts.Truncate,
		Uncacheable: opts.Uncacheable,
	}, 64+len(path))
	if err != nil {
		return nil, fmt.Errorf("open %s: %w", path, err)
	}
	r, ok := reply.(openReply)
	if !ok {
		return nil, fmt.Errorf("open %s: bad reply %T", path, reply)
	}
	sameVersion := c.fileVer[r.FID] == r.Version
	c.noteVersion(r.FID, r.Version, r.Cacheable)
	// Under delayed write-back this client may hold dirty blocks that
	// extend the file beyond the server's idea of its size; keep the larger
	// size in that case. Any version change already dropped the cache, so
	// the server is then authoritative.
	if sameVersion && c.hasDirty(r.FID) {
		if r.Size > c.fileSize[r.FID] {
			c.fileSize[r.FID] = r.Size
		}
	} else {
		c.fileSize[r.FID] = r.Size
	}
	st := &Stream{
		ID:        c.nextStreamID(),
		FID:       r.FID,
		Path:      path,
		Mode:      mode,
		size:      c.fileSize[r.FID],
		cacheable: r.Cacheable,
		owners:    map[rpc.HostID]int{c.host: 1},
	}
	return st, nil
}

// nextStreamID allocates a stream ID. Confined transports use a host-local
// sequence (tagged with the host in the high bits) so concurrent Opens on
// different shards neither race on the global counter nor depend on
// cross-shard allocation order; the serial oracle takes the same branch, so
// the IDs are identical under both kernels.
func (c *Client) nextStreamID() StreamID {
	if c.fs.transport.Confined() {
		c.streamSeq++
		return StreamID(uint64(c.host)<<32 | c.streamSeq)
	}
	return c.fs.nextStreamID()
}

// TakeReconciles drains the destination-cache updates deferred by confined
// stream moves. The migration path harvests them on the source shard right
// after each MoveStream and carries them with the process.
func (c *Client) TakeReconciles() []Reconcile {
	rs := c.pendingRec
	c.pendingRec = nil
	return rs
}

// ApplyReconciles applies deferred destination-cache updates. It must run on
// this client's home shard — the migrated process calls it right after
// rehoming to the target host.
func (c *Client) ApplyReconciles(rs []Reconcile) {
	for _, r := range rs {
		c.noteVersion(r.FID, r.Version, r.Cacheable)
		c.fileSize[r.FID] = r.Size
	}
}

// noteVersion reconciles the client's cache with the server's version: a
// version change invalidates all cached blocks for the file.
func (c *Client) noteVersion(fid FileID, version uint64, cacheable bool) {
	if old, ok := c.fileVer[fid]; ok && old != version {
		c.dropFile(fid)
	}
	c.fileVer[fid] = version
	if cacheable {
		delete(c.noCache, fid)
	} else {
		c.noCache[fid] = true
	}
}

// Close drops one reference held by this host. The last reference on the
// host notifies the server; the last reference anywhere closes the stream.
func (c *Client) Close(env *sim.Env, st *Stream) error {
	if st.closed || st.owners[c.host] <= 0 {
		return ErrBadStream
	}
	st.owners[c.host]--
	if st.owners[c.host] == 0 {
		delete(st.owners, c.host)
		if st.pipe {
			if err := c.pipeClose(env, st); err != nil {
				return fmt.Errorf("close %s: %w", st.Path, err)
			}
		} else if _, err := c.ep.Call(env, st.FID.Server, "fs.close", closeArgs{
			FID: st.FID, Mode: st.Mode, Host: c.host, Dirty: c.hasDirty(st.FID),
		}, 32); err != nil {
			if transportFailed(err) {
				// The server never saw the close; queue it so the open
				// entry doesn't leak server-side (retried at next Open).
				c.pendingCloses = append(c.pendingCloses, pendingClose{
					args:  closeArgs{FID: st.FID, Mode: st.Mode, Host: c.host},
					epoch: c.ep.Epoch(),
				})
			}
			return fmt.Errorf("close %s: %w", st.Path, err)
		}
	}
	if st.Refs() == 0 {
		st.closed = true
	}
	return nil
}

// Dup adds a reference on this host (used by fork: parent and child share
// the stream and its access position in place).
func (c *Client) Dup(st *Stream) error {
	if st.closed {
		return ErrBadStream
	}
	st.owners[c.host]++
	return nil
}

// cacheEnabled reports whether reads/writes of the file may use the cache.
func (c *Client) cacheEnabled(st *Stream) bool {
	return st.cacheable && !c.noCache[st.FID]
}

// Read reads up to n bytes at the stream's access position, advancing it.
func (c *Client) Read(env *sim.Env, st *Stream, n int) ([]byte, error) {
	if st.closed || st.owners[c.host] <= 0 {
		return nil, ErrBadStream
	}
	if !st.Mode.canRead() {
		return nil, fmt.Errorf("read %s: %w", st.Path, ErrBadStream)
	}
	if st.pipe {
		return c.pipeRead(env, st, n)
	}
	off, size, err := c.advanceOffset(env, st, int64(n))
	if err != nil {
		return nil, err
	}
	avail := int64(size) - off
	if avail <= 0 {
		return nil, nil // EOF
	}
	if int64(n) < avail {
		avail = int64(n)
	}
	data, err := c.readRange(env, st, off, int(avail))
	if err != nil {
		return nil, err
	}
	c.stats.BytesRead += uint64(len(data))
	if m := c.fs.m; m != nil {
		m.bytesRead.AddSlot(sim.WorkerSlot(env), int64(len(data)))
	}
	return data, nil
}

// ReadAt reads n bytes at an explicit offset without moving the access
// position (used by the VM system for paging).
func (c *Client) ReadAt(env *sim.Env, st *Stream, off int64, n int) ([]byte, error) {
	if st.closed {
		return nil, ErrBadStream
	}
	size := c.knownSize(st)
	avail := int64(size) - off
	if avail <= 0 {
		return nil, nil
	}
	if int64(n) < avail {
		avail = int64(n)
	}
	data, err := c.readRange(env, st, off, int(avail))
	if err != nil {
		return nil, err
	}
	c.stats.BytesRead += uint64(len(data))
	if m := c.fs.m; m != nil {
		m.bytesRead.AddSlot(sim.WorkerSlot(env), int64(len(data)))
	}
	return data, nil
}

// Write writes data at the stream's access position, advancing it.
func (c *Client) Write(env *sim.Env, st *Stream, data []byte) (int, error) {
	if st.closed || st.owners[c.host] <= 0 {
		return 0, ErrBadStream
	}
	if !st.Mode.canWrite() {
		return 0, fmt.Errorf("write %s: %w", st.Path, ErrReadOnly)
	}
	if st.pipe {
		return c.pipeWrite(env, st, data)
	}
	off, _, err := c.advanceOffset(env, st, int64(len(data)))
	if err != nil {
		return 0, err
	}
	if err := c.writeRange(env, st, off, data); err != nil {
		return 0, err
	}
	c.stats.BytesWritten += uint64(len(data))
	if m := c.fs.m; m != nil {
		m.bytesWritten.AddSlot(sim.WorkerSlot(env), int64(len(data)))
	}
	return len(data), nil
}

// WriteAt writes data at an explicit offset without moving the access
// position.
func (c *Client) WriteAt(env *sim.Env, st *Stream, off int64, data []byte) error {
	if st.closed {
		return ErrBadStream
	}
	if err := c.writeRange(env, st, off, data); err != nil {
		return err
	}
	c.stats.BytesWritten += uint64(len(data))
	if m := c.fs.m; m != nil {
		m.bytesWritten.AddSlot(sim.WorkerSlot(env), int64(len(data)))
	}
	return nil
}

// Seek sets the access position.
func (c *Client) Seek(env *sim.Env, st *Stream, off int64) error {
	if st.closed {
		return ErrBadStream
	}
	if st.pipe {
		return fmt.Errorf("seek %s: %w", st.Path, ErrBadStream)
	}
	if st.shared {
		_, err := c.ep.Call(env, st.FID.Server, "fs.offset", offsetArgs{
			Stream: st.ID, FID: st.FID, Set: off, Delta: 0,
		}, 40)
		return err
	}
	st.offset = off
	return nil
}

// advanceOffset reserves [old, old+delta) of the access position, going to
// the I/O server when the stream is shared, and returns the old position
// and the current file size.
func (c *Client) advanceOffset(env *sim.Env, st *Stream, delta int64) (int64, int, error) {
	if !st.shared {
		old := st.offset
		st.offset += delta
		return old, c.knownSize(st), nil
	}
	reply, err := c.ep.Call(env, st.FID.Server, "fs.offset", offsetArgs{
		Stream: st.ID, FID: st.FID, Delta: delta, Set: -1,
	}, 40)
	if err != nil {
		return 0, 0, err
	}
	r, ok := reply.(offsetReply)
	if !ok {
		return 0, 0, fmt.Errorf("fs.offset: bad reply %T", reply)
	}
	st.offset = r.Old + delta
	// The server's size is authoritative for shared streams, but local
	// dirty writes may have extended the file beyond it.
	size := r.Size
	if local := c.knownSize(st); local > size {
		size = local
	}
	return r.Old, size, nil
}

func (c *Client) knownSize(st *Stream) int {
	if s, ok := c.fileSize[st.FID]; ok {
		if s > st.size {
			return s
		}
	}
	return st.size
}

func (c *Client) bumpSize(st *Stream, size int) {
	if size > st.size {
		st.size = size
	}
	if size > c.fileSize[st.FID] {
		c.fileSize[st.FID] = size
	}
}

// readRange returns file bytes [off, off+n), via the cache when permitted.
func (c *Client) readRange(env *sim.Env, st *Stream, off int64, n int) ([]byte, error) {
	bs := c.fs.params.BlockSize
	out := make([]byte, 0, n)
	for n > 0 {
		block := int(off) / bs
		inOff := int(off) % bs
		want := bs - inOff
		if want > n {
			want = n
		}
		data, err := c.readBlock(env, st, block)
		if err != nil {
			return nil, err
		}
		chunk := make([]byte, want)
		if inOff < len(data) {
			copy(chunk, data[inOff:])
		}
		out = append(out, chunk...)
		off += int64(want)
		n -= want
	}
	return out, nil
}

// readBlock returns one block's data (len <= BlockSize).
func (c *Client) readBlock(env *sim.Env, st *Stream, block int) ([]byte, error) {
	key := cacheKey{fid: st.FID, block: block}
	if c.cacheEnabled(st) {
		if b, ok := c.blocks[key]; ok {
			c.stats.Hits++
			if m := c.fs.m; m != nil {
				m.hits.IncSlot(sim.WorkerSlot(env))
			}
			c.lru.MoveToFront(b.elem)
			return b.data, nil
		}
		c.stats.Misses++
		if m := c.fs.m; m != nil {
			m.misses.IncSlot(sim.WorkerSlot(env))
		}
	}
	reply, err := c.ep.Call(env, st.FID.Server, "fs.read", readArgs{FID: st.FID, Block: block}, 32)
	if err != nil {
		return nil, fmt.Errorf("read %s block %d: %w", st.Path, block, err)
	}
	r, ok := reply.(readReply)
	if !ok {
		return nil, fmt.Errorf("fs.read: bad reply %T", reply)
	}
	data := make([]byte, c.fs.params.BlockSize)
	copy(data, r.Data)
	if c.cacheEnabled(st) {
		c.insertBlock(env, key, data, false)
	}
	return data, nil
}

// writeRange writes data at [off, off+len(data)).
func (c *Client) writeRange(env *sim.Env, st *Stream, off int64, data []byte) error {
	bs := c.fs.params.BlockSize
	newSize := int(off) + len(data)
	// Record the new size first so that any eviction write-back triggered
	// mid-loop flushes with the correct size.
	defer c.bumpSize(st, newSize)
	if newSize > c.fileSize[st.FID] {
		c.fileSize[st.FID] = newSize
	}
	pos := 0
	anyCached := false
	for pos < len(data) {
		block := (int(off) + pos) / bs
		inOff := (int(off) + pos) % bs
		want := bs - inOff
		if want > len(data)-pos {
			want = len(data) - pos
		}
		chunk := data[pos : pos+want]
		// Re-decide per block: a consistency callback can disable caching
		// for this file while an earlier iteration blocked on the network.
		cached := false
		if c.cacheEnabled(st) {
			ok, err := c.writeBlockCached(env, st, block, inOff, chunk)
			if err != nil {
				return err
			}
			cached = ok
			if cached && c.fs.params.WriteThrough {
				if b, ok := c.blocks[cacheKey{fid: st.FID, block: block}]; ok && b.dirty {
					if err := c.flushBlock(env, b); err != nil {
						return err
					}
				}
			}
		}
		if !cached {
			reply, err := c.ep.Call(env, st.FID.Server, "fs.write", writeArgs{
				FID: st.FID, Block: block, Data: chunk, Offset: inOff, NewSize: -1,
			}, 48+len(chunk))
			if err != nil {
				return fmt.Errorf("write %s block %d: %w", st.Path, block, err)
			}
			if r, ok := reply.(writeReply); ok {
				c.fileVer[st.FID] = r.Version
				c.bumpSize(st, r.Size)
			}
		} else {
			anyCached = true
		}
		pos += want
	}
	if anyCached {
		c.fileMTime[st.FID] = env.Now()
	}
	return nil
}

// hasDirty reports whether the cache holds dirty blocks for fid.
func (c *Client) hasDirty(fid FileID) bool {
	for _, b := range c.blocks {
		if b.key.fid == fid && b.dirty {
			return true
		}
	}
	return false
}

// writeBlockCached applies a write to the cache (delayed write-back),
// fetching the block first for a partial overwrite of existing data. It
// reports false, leaving the cache untouched, if caching was disabled while
// the fetch blocked — the caller must then write through to the server;
// dirtying the cache after the disable callback would strand blocks that no
// flush recall knows about.
func (c *Client) writeBlockCached(env *sim.Env, st *Stream, block, inOff int, chunk []byte) (bool, error) {
	bs := c.fs.params.BlockSize
	key := cacheKey{fid: st.FID, block: block}
	b, ok := c.blocks[key]
	if !ok {
		data := make([]byte, bs)
		partial := inOff > 0 || len(chunk) < bs
		existsOnServer := block*bs < c.knownSize(st)
		if partial && existsOnServer {
			fetched, err := c.readBlock(env, st, block)
			if err != nil {
				return false, err
			}
			if !c.cacheEnabled(st) {
				return false, nil
			}
			copy(data, fetched)
			// readBlock may have inserted the block already.
			if cached, ok2 := c.blocks[key]; ok2 {
				b = cached
			}
		}
		if b == nil {
			b = c.insertBlock(env, key, data, true)
		}
	}
	copy(b.data[inOff:], chunk)
	b.dirty = true
	c.lru.MoveToFront(b.elem)
	return true, nil
}

// insertBlock adds a block to the cache, evicting as needed.
func (c *Client) insertBlock(env *sim.Env, key cacheKey, data []byte, dirty bool) *cacheBlock {
	b := &cacheBlock{key: key, data: data, dirty: dirty}
	b.elem = c.lru.PushFront(b)
	c.blocks[key] = b
	for len(c.blocks) > c.fs.params.ClientCacheBlocks {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		victim, ok := tail.Value.(*cacheBlock)
		if !ok {
			break
		}
		if victim.dirty {
			// Ignore eviction write-back failures: the block is still
			// dropped, matching a best-effort cache.
			_ = c.flushBlock(env, victim)
		}
		c.lru.Remove(tail)
		delete(c.blocks, victim.key)
	}
	return b
}

// flushBlock writes one dirty block through to the server.
func (c *Client) flushBlock(env *sim.Env, b *cacheBlock) error {
	size := c.fileSize[b.key.fid]
	bs := c.fs.params.BlockSize
	lo := b.key.block * bs
	hi := lo + bs
	if hi > size {
		hi = size
	}
	if hi <= lo {
		b.dirty = false
		return nil
	}
	reply, err := c.ep.Call(env, b.key.fid.Server, "fs.write", writeArgs{
		FID: b.key.fid, Block: b.key.block, Data: b.data[:hi-lo], Offset: 0, NewSize: size,
	}, 48+(hi-lo))
	if err != nil {
		return fmt.Errorf("flush block: %w", err)
	}
	b.dirty = false
	c.stats.BlockFlushes++
	if m := c.fs.m; m != nil {
		m.flushes.IncSlot(sim.WorkerSlot(env))
	}
	if r, ok := reply.(writeReply); ok {
		c.fileVer[b.key.fid] = r.Version
	}
	return nil
}

// FlushFile writes back all dirty blocks of one file.
func (c *Client) FlushFile(env *sim.Env, fid FileID) error {
	var dirty []*cacheBlock
	for _, b := range c.blocks {
		if b.key.fid == fid && b.dirty {
			dirty = append(dirty, b)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].key.block < dirty[j].key.block })
	for _, b := range dirty {
		if err := c.flushBlock(env, b); err != nil {
			return err
		}
	}
	return nil
}

// SyncAll writes back every dirty block in the cache.
func (c *Client) SyncAll(env *sim.Env) error {
	var dirty []*cacheBlock
	for _, b := range c.blocks {
		if b.dirty {
			dirty = append(dirty, b)
		}
	}
	sort.Slice(dirty, func(i, j int) bool {
		if dirty[i].key.fid != dirty[j].key.fid {
			return dirty[i].key.fid.Ino < dirty[j].key.fid.Ino
		}
		return dirty[i].key.block < dirty[j].key.block
	})
	for _, b := range dirty {
		if err := c.flushBlock(env, b); err != nil {
			return err
		}
	}
	return nil
}

// DropCaches discards every clean cached block (dirty blocks are kept so
// no data is lost). Useful for tests and benchmarks that want cold-cache
// behaviour.
func (c *Client) DropCaches() {
	for key, b := range c.blocks {
		if b.dirty {
			continue
		}
		c.lru.Remove(b.elem)
		delete(c.blocks, key)
	}
}

// dropFile discards cached blocks of fid, dirty ones included — callers
// flush first when the dirty data matters.
func (c *Client) dropFile(fid FileID) {
	for key, b := range c.blocks {
		if key.fid == fid {
			c.lru.Remove(b.elem)
			delete(c.blocks, key)
		}
	}
}

// handleFlushCallback serves the server's "write back your dirty blocks"
// consistency recall.
func (c *Client) handleFlushCallback(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(cacheCallbackArgs)
	if !ok {
		return nil, 0, fmt.Errorf("fsc.flush: bad args %T", arg)
	}
	c.stats.Recalls++
	if m := c.fs.m; m != nil {
		m.recalls.IncSlot(sim.WorkerSlot(env))
	}
	if err := c.FlushFile(env, a.FID); err != nil {
		return nil, 0, err
	}
	return nil, 8, nil
}

// handleDisableCallback serves the server's "stop caching this file"
// consistency action: flush dirty blocks, then drop the file from the cache.
func (c *Client) handleDisableCallback(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(cacheCallbackArgs)
	if !ok {
		return nil, 0, fmt.Errorf("fsc.disable: bad args %T", arg)
	}
	c.stats.Recalls++
	if m := c.fs.m; m != nil {
		m.recalls.IncSlot(sim.WorkerSlot(env))
	}
	if err := c.FlushFile(env, a.FID); err != nil {
		return nil, 0, err
	}
	c.dropFile(a.FID)
	c.noCache[a.FID] = true
	return nil, 8, nil
}

// handleAttrCallback serves the server's cached-attribute fetch: the size
// and modification time this client's cache implies for the file.
func (c *Client) handleAttrCallback(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(cacheCallbackArgs)
	if !ok {
		return nil, 0, fmt.Errorf("fsc.attr: bad args %T", arg)
	}
	return attrReply{Size: c.fileSize[a.FID], MTime: c.fileMTime[a.FID]}, 24, nil
}

// StatInfo is the attribute record returned by StatFull.
type StatInfo struct {
	FID   FileID
	Size  int
	MTime time.Duration
}

// StatFull returns a file's id, size and modification time.
func (c *Client) StatFull(env *sim.Env, path string) (StatInfo, error) {
	srvHost, err := c.server(path)
	if err != nil {
		return StatInfo{}, err
	}
	reply, err := c.ep.Call(env, srvHost, "fs.stat", statArgs{Path: path}, 16+len(path))
	if err != nil {
		return StatInfo{}, err
	}
	r, ok := reply.(statReply)
	if !ok {
		return StatInfo{}, fmt.Errorf("fs.stat: bad reply %T", reply)
	}
	size := r.Size
	mtime := r.MTime
	if c.hasDirty(r.FID) {
		if local, ok := c.fileSize[r.FID]; ok && local > size {
			size = local
		}
		if lm := c.fileMTime[r.FID]; lm > mtime {
			mtime = lm
		}
	}
	return StatInfo{FID: r.FID, Size: size, MTime: mtime}, nil
}

// Stat returns a file's id, size and version.
func (c *Client) Stat(env *sim.Env, path string) (FileID, int, error) {
	srvHost, err := c.server(path)
	if err != nil {
		return FileID{}, 0, err
	}
	reply, err := c.ep.Call(env, srvHost, "fs.stat", statArgs{Path: path}, 16+len(path))
	if err != nil {
		return FileID{}, 0, err
	}
	r, ok := reply.(statReply)
	if !ok {
		return FileID{}, 0, fmt.Errorf("fs.stat: bad reply %T", reply)
	}
	size := r.Size
	// Reconcile with this host's own cached attributes: our dirty blocks
	// may extend the file beyond what the server has seen.
	if local, ok := c.fileSize[r.FID]; ok && c.hasDirty(r.FID) && local > size {
		size = local
	}
	return r.FID, size, nil
}

// Remove deletes a file.
func (c *Client) Remove(env *sim.Env, path string) error {
	srvHost, err := c.server(path)
	if err != nil {
		return err
	}
	_, err = c.ep.Call(env, srvHost, "fs.remove", removeArgs{Path: path}, 16+len(path))
	return err
}

// Lock acquires the advisory cluster-wide lock named by path, blocking until
// it is free.
func (c *Client) Lock(env *sim.Env, path string) error {
	srvHost, err := c.server(path)
	if err != nil {
		return err
	}
	_, err = c.ep.Call(env, srvHost, "fs.lock", lockArgs{Path: path}, 16+len(path))
	return err
}

// Unlock releases the advisory lock named by path.
func (c *Client) Unlock(env *sim.Env, path string) error {
	srvHost, err := c.server(path)
	if err != nil {
		return err
	}
	_, err = c.ep.Call(env, srvHost, "fs.unlock", lockArgs{Path: path}, 16+len(path))
	return err
}

// WriteFile creates (or truncates) path and writes data through a temporary
// stream.
func (c *Client) WriteFile(env *sim.Env, path string, data []byte) error {
	st, err := c.Open(env, path, WriteMode, OpenOptions{Create: true, Truncate: true})
	if err != nil {
		return err
	}
	if _, err := c.Write(env, st, data); err != nil {
		return err
	}
	return c.Close(env, st)
}

// ReadFile reads the whole of path.
func (c *Client) ReadFile(env *sim.Env, path string) ([]byte, error) {
	st, err := c.Open(env, path, ReadMode, OpenOptions{})
	if err != nil {
		return nil, err
	}
	data, err := c.Read(env, st, c.knownSize(st))
	if err != nil {
		return nil, err
	}
	if cerr := c.Close(env, st); cerr != nil {
		return nil, cerr
	}
	return data, nil
}

// MoveStream transfers one of this host's references on st to host `to`,
// performing the I/O-server coordination Sprite does during migration:
// dirty blocks for the file are flushed from the source cache, the server
// moves the open reference, and if the stream now spans hosts its access
// position is shadowed at the server.
func (c *Client) MoveStream(env *sim.Env, st *Stream, to rpc.HostID) error {
	if st.closed || st.owners[c.host] <= 0 {
		return ErrBadStream
	}
	if to == c.host {
		return nil
	}
	if st.pipe {
		// A pipe's buffer lives at its I/O server; moving an end is pure
		// bookkeeping there. The server tracks which hosts hold each end,
		// so report which hosts joined or left the set.
		migFrom, migTo := rpc.NoHost, rpc.NoHost
		st.owners[to]++
		if st.owners[to] == 1 {
			migTo = to
		}
		st.owners[c.host]--
		if st.owners[c.host] == 0 {
			delete(st.owners, c.host)
			migFrom = c.host
		}
		if err := c.pipeMigrate(env, st, migFrom, migTo); err != nil {
			// Undo the local move so abort recovery sees counts that still
			// match the server's end sets.
			st.owners[to]--
			if st.owners[to] == 0 {
				delete(st.owners, to)
			}
			st.owners[c.host]++
			return err
		}
		if m := c.fs.m; m != nil {
			m.pipeMoves.IncSlot(sim.WorkerSlot(env))
		}
		return nil
	}
	if err := c.FlushFile(env, st.FID); err != nil {
		return err
	}
	keepSource := st.owners[c.host] > 1
	addTarget := st.owners[to] == 0
	st.owners[c.host]--
	if st.owners[c.host] == 0 {
		delete(st.owners, c.host)
	}
	st.owners[to]++
	share := st.shared || st.hostsWithRefs() > 1
	if !keepSource || addTarget {
		reply, err := c.ep.Call(env, st.FID.Server, "fs.migrateStream", migrateStreamArgs{
			Stream: st.ID,
			FID:    st.FID,
			Mode:   st.Mode,
			From:   sourceForMove(c.host, keepSource),
			To:     to,
			Offset: st.offset,
			Share:  share,
		}, 72)
		if err != nil {
			// Undo the local move: abort recovery repairs state from the
			// stream's reference counts, so they must still say the
			// reference sits where the server believes it does.
			st.owners[to]--
			if st.owners[to] == 0 {
				delete(st.owners, to)
			}
			st.owners[c.host]++
			return fmt.Errorf("migrate stream %s: %w", st.Path, err)
		}
		if r, ok := reply.(openReply); ok {
			st.cacheable = r.Cacheable
			// Let the destination host reconcile its cache. Under host
			// confinement the destination client's tables belong to another
			// shard, so the update is deferred: the migrating process carries
			// it and applies it after rehoming (ApplyReconciles).
			if c.fs.transport.Confined() {
				c.pendingRec = append(c.pendingRec, Reconcile{
					FID: st.FID, Version: r.Version, Cacheable: r.Cacheable, Size: r.Size,
				})
			} else if dst := c.fs.Client(to); dst != nil {
				dst.noteVersion(st.FID, r.Version, r.Cacheable)
				dst.fileSize[st.FID] = r.Size
			}
			st.size = r.Size
		}
	}
	if share {
		st.shared = true
	}
	if m := c.fs.m; m != nil {
		m.streamMoves.IncSlot(sim.WorkerSlot(env))
	}
	return nil
}

// sourceForMove returns the host whose open reference the server should
// drop, or NoHost when the source keeps other references.
func sourceForMove(host rpc.HostID, keepSource bool) rpc.HostID {
	if keepSource {
		return rpc.NoHost
	}
	return host
}
