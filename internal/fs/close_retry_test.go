package fs

import (
	"testing"

	"sprite/internal/sim"
)

// TestCloseRetriedAfterTransportFailure: a close whose RPC never reaches
// the server (caller partitioned or mid-crash-window) must not leak the
// server-side open entry forever — the client queues it and retries at its
// next Open. Found by the E16 shoot-out at 10,000 hosts, where partitioned
// announcers left /sprite/hoststate open entries behind and tripped the
// end-of-run refcount invariant.
func TestCloseRetriedAfterTransportFailure(t *testing.T) {
	h := newHarness(t, 1)
	c := h.fs.Client(2)
	h.run(t, func(env *sim.Env) error {
		st, err := c.Open(env, "/x", WriteMode, OpenOptions{Create: true})
		if err != nil {
			return err
		}
		// The caller drops off the network before the close goes out.
		c.ep.SetDown(true)
		if err := c.Close(env, st); err == nil {
			t.Error("close with caller down should fail")
		}
		if got := h.srv.files["/x"].opens[2]; got == nil || got.writers != 1 {
			t.Fatalf("server entry after failed close = %+v, want writers=1 (leaked close not yet retried)", got)
		}
		c.ep.SetDown(false)

		// The next Open drains the queue before opening.
		st2, err := c.Open(env, "/x", WriteMode, OpenOptions{})
		if err != nil {
			return err
		}
		if got := h.srv.files["/x"].opens[2]; got == nil || got.writers != 1 {
			t.Errorf("server entry after retry+reopen = %+v, want writers=1 (old close applied, new open live)", got)
		}
		if err := c.Close(env, st2); err != nil {
			return err
		}
		if got := h.srv.files["/x"].opens[2]; got != nil {
			t.Errorf("server entry after final close = %+v, want gone", got)
		}
		return nil
	})
}

// TestStaleCloseDroppedAfterRestart: a queued close from a previous boot
// epoch must be discarded, not retried — the server reclaims the dead
// epoch's entries via its own scrub, and a late close would debit a fresh
// post-reboot open session instead.
func TestStaleCloseDroppedAfterRestart(t *testing.T) {
	h := newHarness(t, 1)
	c := h.fs.Client(2)
	h.run(t, func(env *sim.Env) error {
		st, err := c.Open(env, "/x", WriteMode, OpenOptions{Create: true})
		if err != nil {
			return err
		}
		c.ep.SetDown(true)
		if err := c.Close(env, st); err == nil {
			t.Error("close with caller down should fail")
		}
		// The host reboots: new epoch. (In a cluster the server's epoch
		// scrub reclaims the old entry; the harness has no scrubber, so the
		// pre-reboot entry stays — what matters here is that the stale
		// queued close is not re-sent against the new session.)
		c.ep.Restart()
		before := h.srv.files["/x"].opens[2].writers

		st2, err := c.Open(env, "/x", WriteMode, OpenOptions{})
		if err != nil {
			return err
		}
		if got := h.srv.files["/x"].opens[2].writers; got != before+1 {
			t.Errorf("writers after post-reboot open = %d, want %d (stale close must not fire)", got, before+1)
		}
		return c.Close(env, st2)
	})
}
