package fs

import (
	"errors"
	"testing"
	"time"

	"sprite/internal/sim"
)

func TestPipeBasicTransfer(t *testing.T) {
	h := newHarness(t, 2)
	a, b := h.fs.Client(2), h.fs.Client(3)
	h.sim.Spawn("writer-reader", func(env *sim.Env) error {
		r, w, err := a.CreatePipe(env)
		if err != nil {
			return err
		}
		// Hand the read end to host 3.
		if err := a.MoveStream(env, r, 3); err != nil {
			return err
		}
		done := sim.NewWaitGroup(h.sim)
		done.Add(2)
		env.Spawn("writer", func(we *sim.Env) error {
			defer done.Done()
			if _, err := a.Write(we, w, []byte("hello ")); err != nil {
				return err
			}
			if _, err := a.Write(we, w, []byte("pipe")); err != nil {
				return err
			}
			return a.Close(we, w)
		})
		var got []byte
		env.Spawn("reader", func(re *sim.Env) error {
			defer done.Done()
			for {
				data, err := b.Read(re, r, 64)
				if err != nil {
					return err
				}
				if len(data) == 0 {
					break // EOF
				}
				got = append(got, data...)
			}
			return b.Close(re, r)
		})
		if err := done.Wait(env); err != nil {
			return err
		}
		if string(got) != "hello pipe" {
			t.Errorf("got %q", got)
		}
		return nil
	})
	if err := h.sim.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestPipeBlocksWhenEmptyAndFull(t *testing.T) {
	h := newHarness(t, 2)
	a := h.fs.Client(2)
	h.sim.Spawn("t", func(env *sim.Env) error {
		r, w, err := a.CreatePipe(env)
		if err != nil {
			return err
		}
		var readAt time.Duration
		done := sim.NewWaitGroup(h.sim)
		done.Add(1)
		env.Spawn("reader", func(re *sim.Env) error {
			defer done.Done()
			data, err := a.Read(re, r, 4)
			if err != nil {
				return err
			}
			if string(data) != "late" {
				t.Errorf("read %q", data)
			}
			readAt = re.Now()
			return nil
		})
		if err := env.Sleep(2 * time.Second); err != nil {
			return err
		}
		if _, err := a.Write(env, w, []byte("late")); err != nil {
			return err
		}
		if err := done.Wait(env); err != nil {
			return err
		}
		if readAt < 2*time.Second {
			t.Errorf("read completed at %v, want blocked until 2s", readAt)
		}
		// Fill to capacity: the next write must block until a read drains.
		big := make([]byte, pipeDefaultCapacity)
		if _, err := a.Write(env, w, big); err != nil {
			return err
		}
		var wroteAt time.Duration
		done2 := sim.NewWaitGroup(h.sim)
		done2.Add(1)
		env.Spawn("blocked-writer", func(we *sim.Env) error {
			defer done2.Done()
			if _, err := a.Write(we, w, []byte("x")); err != nil {
				return err
			}
			wroteAt = we.Now()
			return nil
		})
		drainTime := env.Now() + time.Second
		if err := env.Sleep(time.Second); err != nil {
			return err
		}
		if _, err := a.Read(env, r, 1024); err != nil {
			return err
		}
		if err := done2.Wait(env); err != nil {
			return err
		}
		if wroteAt < drainTime {
			t.Errorf("write completed at %v, want blocked until reader drained at %v", wroteAt, drainTime)
		}
		if err := a.Close(env, w); err != nil {
			return err
		}
		return a.Close(env, r)
	})
	if err := h.sim.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestPipeEPIPEWhenNoReaders(t *testing.T) {
	h := newHarness(t, 1)
	a := h.fs.Client(2)
	h.run(t, func(env *sim.Env) error {
		r, w, err := a.CreatePipe(env)
		if err != nil {
			return err
		}
		if err := a.Close(env, r); err != nil {
			return err
		}
		if _, err := a.Write(env, w, []byte("x")); !errors.Is(err, ErrBadStream) {
			t.Errorf("write err = %v, want ErrBadStream (EPIPE)", err)
		}
		return a.Close(env, w)
	})
}

func TestPipeSeekRejected(t *testing.T) {
	h := newHarness(t, 1)
	a := h.fs.Client(2)
	h.run(t, func(env *sim.Env) error {
		r, w, err := a.CreatePipe(env)
		if err != nil {
			return err
		}
		if err := a.Seek(env, r, 0); !errors.Is(err, ErrBadStream) {
			t.Errorf("seek err = %v, want ErrBadStream", err)
		}
		if err := a.Close(env, r); err != nil {
			return err
		}
		return a.Close(env, w)
	})
}
