package fs

import (
	"fmt"
	"sort"

	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// PageRun is one contiguous byte extent of a scatter-gather write.
type PageRun struct {
	Off  int64
	Data []byte
}

// WriteAtBatch performs a vectored write: the runs are sorted, contiguous
// runs are coalesced, and each coalesced extent is shipped to the I/O server
// as one fs.writeBulk bulk transfer (a single handshake plus pipelined
// fragments) instead of one fs.write RPC per block. This is the migration
// flush hot path: a dirty 8 MB heap becomes a handful of bulk calls rather
// than two thousand round trips.
//
// Cacheable files fall back to the ordinary per-block write path, which
// keeps the delayed-write-back and consistency machinery authoritative;
// bulk transfer is for uncacheable data (VM backing store) where every byte
// goes to the server anyway.
//
// maxRunBytes bounds a single bulk transfer: coalesced extents longer than
// that are split, so one call never monopolizes the server or the wire for
// arbitrarily long (0 = unlimited).
func (c *Client) WriteAtBatch(env *sim.Env, st *Stream, runs []PageRun, maxRunBytes int) (rpc.BulkStats, error) {
	var bs rpc.BulkStats
	if st.closed {
		return bs, ErrBadStream
	}
	if st.pipe {
		return bs, fmt.Errorf("bulk write %s: %w", st.Path, ErrBadStream)
	}
	for _, ext := range splitRuns(coalesceRuns(runs), maxRunBytes) {
		if c.cacheEnabled(st) {
			if err := c.writeRange(env, st, ext.Off, ext.Data); err != nil {
				return bs, err
			}
		} else {
			one, err := c.writeBulk(env, st, ext.Off, ext.Data)
			if err != nil {
				return bs, err
			}
			bs.Add(one)
		}
		c.stats.BytesWritten += uint64(len(ext.Data))
		if m := c.fs.m; m != nil {
			m.bytesWritten.AddSlot(sim.WorkerSlot(env), int64(len(ext.Data)))
		}
	}
	return bs, nil
}

// writeBulk ships one contiguous extent through the bulk-transfer path.
func (c *Client) writeBulk(env *sim.Env, st *Stream, off int64, data []byte) (rpc.BulkStats, error) {
	newSize := int(off) + len(data)
	defer c.bumpSize(st, newSize)
	if newSize > c.fileSize[st.FID] {
		c.fileSize[st.FID] = newSize
	}
	reply, bs, err := c.ep.CallBulk(env, st.FID.Server, "fs.writeBulk", writeBulkArgs{
		FID: st.FID, Off: off, Data: data, NewSize: -1,
	}, 48, len(data), rpc.BulkOut)
	if err != nil {
		return bs, fmt.Errorf("bulk write %s at %d: %w", st.Path, off, err)
	}
	if r, ok := reply.(writeReply); ok {
		c.fileVer[st.FID] = r.Version
		c.bumpSize(st, r.Size)
	}
	// Any cached blocks overlapping the extent predate this write and are
	// now stale; drop them rather than patching.
	c.dropRange(st.FID, off, len(data))
	return bs, nil
}

// ReadAtBulk reads [off, off+n) as one fs.readBulk bulk transfer, without
// moving the access position. It is the readahead pager's fill path: a page
// fault pulls a whole run of pages in one handshake instead of one RPC per
// block. Cacheable files fall back to the per-block cached path.
func (c *Client) ReadAtBulk(env *sim.Env, st *Stream, off int64, n int) ([]byte, rpc.BulkStats, error) {
	var bs rpc.BulkStats
	if st.closed {
		return nil, bs, ErrBadStream
	}
	size := c.knownSize(st)
	avail := int64(size) - off
	if avail <= 0 {
		return nil, bs, nil
	}
	if int64(n) < avail {
		avail = int64(n)
	}
	if c.cacheEnabled(st) {
		data, err := c.readRange(env, st, off, int(avail))
		if err != nil {
			return nil, bs, err
		}
		c.stats.BytesRead += uint64(len(data))
		if m := c.fs.m; m != nil {
			m.bytesRead.AddSlot(sim.WorkerSlot(env), int64(len(data)))
		}
		return data, bs, nil
	}
	reply, bs, err := c.ep.CallBulk(env, st.FID.Server, "fs.readBulk", readBulkArgs{
		FID: st.FID, Off: off, N: int(avail),
	}, 40, 0, rpc.BulkIn)
	if err != nil {
		return nil, bs, fmt.Errorf("bulk read %s at %d: %w", st.Path, off, err)
	}
	r, ok := reply.(readBulkReply)
	if !ok {
		return nil, bs, fmt.Errorf("fs.readBulk: bad reply %T", reply)
	}
	out := make([]byte, avail)
	copy(out, r.Data)
	c.stats.BytesRead += uint64(len(out))
	if m := c.fs.m; m != nil {
		m.bytesRead.AddSlot(sim.WorkerSlot(env), int64(len(out)))
	}
	return out, bs, nil
}

// dropRange evicts cached blocks of fid overlapping [off, off+n).
func (c *Client) dropRange(fid FileID, off int64, n int) {
	if n <= 0 {
		return
	}
	bs := c.fs.params.BlockSize
	first := int(off) / bs
	last := (int(off) + n - 1) / bs
	for b := first; b <= last; b++ {
		if cb, ok := c.blocks[cacheKey{fid: fid, block: b}]; ok {
			c.lru.Remove(cb.elem)
			delete(c.blocks, cb.key)
		}
	}
}

// coalesceRuns sorts runs by offset and merges extents that touch, so the
// bulk path sees the longest possible contiguous transfers.
func coalesceRuns(runs []PageRun) []PageRun {
	if len(runs) <= 1 {
		return runs
	}
	sorted := make([]PageRun, len(runs))
	copy(sorted, runs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Off < sorted[j].Off })
	var out []PageRun
	for i := 0; i < len(sorted); {
		j := i + 1
		total := len(sorted[i].Data)
		for j < len(sorted) && sorted[j-1].Off+int64(len(sorted[j-1].Data)) == sorted[j].Off {
			total += len(sorted[j].Data)
			j++
		}
		if j == i+1 {
			out = append(out, sorted[i])
		} else {
			buf := make([]byte, 0, total)
			for k := i; k < j; k++ {
				buf = append(buf, sorted[k].Data...)
			}
			out = append(out, PageRun{Off: sorted[i].Off, Data: buf})
		}
		i = j
	}
	return out
}

// splitRuns cuts extents longer than maxBytes into maxBytes-sized pieces.
func splitRuns(runs []PageRun, maxBytes int) []PageRun {
	if maxBytes <= 0 {
		return runs
	}
	var out []PageRun
	for _, r := range runs {
		for len(r.Data) > maxBytes {
			out = append(out, PageRun{Off: r.Off, Data: r.Data[:maxBytes]})
			r = PageRun{Off: r.Off + int64(maxBytes), Data: r.Data[maxBytes:]}
		}
		out = append(out, r)
	}
	return out
}
