package fs

import (
	"testing"
	"time"

	"sprite/internal/sim"
)

// TestPrefixBroadcastChargedOncePerDomain: a client's first open in a
// domain pays the prefix broadcast; subsequent opens hit the cached table.
func TestPrefixBroadcastChargedOncePerDomain(t *testing.T) {
	s := sim.New(1)
	tr := rpcFabric(s)
	f := New(s, tr, DefaultParams())
	f.AddServer(1, "/")
	f.AddServer(4, "/b")
	c := f.AddClient(3)
	if _, err := f.Seed("/a/x", []byte("1"), false); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seed("/b/x", []byte("2"), false); err != nil {
		t.Fatal(err)
	}
	s.Spawn("t", func(env *sim.Env) error {
		for i := 0; i < 3; i++ {
			if _, err := c.ReadFile(env, "/a/x"); err != nil {
				return err
			}
		}
		if got := c.Stats().PrefixQueries; got != 1 {
			t.Errorf("prefix queries after repeated root opens = %d, want 1", got)
		}
		// First touch of the /b domain pays another broadcast.
		if _, err := c.ReadFile(env, "/b/x"); err != nil {
			return err
		}
		if got := c.Stats().PrefixQueries; got != 2 {
			t.Errorf("prefix queries after /b open = %d, want 2", got)
		}
		if _, err := c.ReadFile(env, "/b/x"); err != nil {
			return err
		}
		if got := c.Stats().PrefixQueries; got != 2 {
			t.Errorf("prefix queries after cached /b open = %d, want 2", got)
		}
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
}

// TestPrefixMissCostsTime: the discovery broadcast shows up as latency on
// the first open only.
func TestPrefixMissCostsTime(t *testing.T) {
	s := sim.New(1)
	tr := rpcFabric(s)
	f := New(s, tr, DefaultParams())
	f.AddServer(1, "/")
	c := f.AddClient(2)
	if _, err := f.Seed("/f", make([]byte, 64), false); err != nil {
		t.Fatal(err)
	}
	var first, second time.Duration
	s.Spawn("t", func(env *sim.Env) error {
		t0 := env.Now()
		if _, err := c.ReadFile(env, "/f"); err != nil {
			return err
		}
		first = env.Now() - t0
		c.DropCaches() // keep block behaviour identical between the runs
		t0 = env.Now()
		if _, err := c.ReadFile(env, "/f"); err != nil {
			return err
		}
		second = env.Now() - t0
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if first <= second {
		t.Fatalf("first open (%v) should exceed later opens (%v) by the prefix broadcast", first, second)
	}
}
