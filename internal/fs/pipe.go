package fs

import (
	"fmt"

	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// Sprite pipes are file-like kernel channels. We keep each pipe's buffer at
// the I/O server that created it, so the two ends can live on different
// hosts — and can migrate independently — without either end noticing:
// reads and writes are server round trips like any uncached file I/O.
// (Sprite kept local pipes in the kernel and promoted them on migration;
// we model the promoted form, which is the one that matters for migration.)

// pipeDefaultCapacity bounds a pipe's in-kernel buffer.
const pipeDefaultCapacity = 16 * 1024

// pipeState is the server-side representation of one pipe. Each end tracks
// the set of hosts holding references to it, so that a host crash can scrub
// exactly that host's ends and deliver EOF/EPIPE to survivors.
type pipeState struct {
	ino         int
	buf         []byte
	capacity    int
	readerHosts map[rpc.HostID]bool
	writerHosts map[rpc.HostID]bool

	readWaiters  []*sim.Future
	writeWaiters []*sim.Future
}

// wire formats for the pipe services.
type (
	pipeCreateReply struct {
		Ino int
	}
	pipeIOArgs struct {
		Ino  int
		N    int
		Data []byte
	}
	pipeCloseArgs struct {
		Ino    int
		Writer bool
		Host   rpc.HostID
	}
	pipeAdjustArgs struct {
		Ino    int
		Writer bool
		// From loses its reference to this end and To gains one; either may
		// be NoHost when migration does not change that side (the end keeps
		// or already has references there).
		From rpc.HostID
		To   rpc.HostID
	}
)

func (s *Server) pipe(ino int) (*pipeState, error) {
	p, ok := s.pipes[ino]
	if !ok {
		return nil, fmt.Errorf("%w: pipe %d", ErrNotFound, ino)
	}
	return p, nil
}

func (s *Server) handlePipeCreate(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	if err := s.chargeCPU(env, s.fs.params.NameLookupCPU); err != nil {
		return nil, 0, err
	}
	s.inoSeq++
	p := &pipeState{
		ino:         s.inoSeq,
		capacity:    pipeDefaultCapacity,
		readerHosts: map[rpc.HostID]bool{from: true},
		writerHosts: map[rpc.HostID]bool{from: true},
	}
	s.pipes[p.ino] = p
	return pipeCreateReply{Ino: p.ino}, 16, nil
}

// handlePipeRead blocks the calling (client) activity until data or EOF.
func (s *Server) handlePipeRead(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(pipeIOArgs)
	if !ok {
		return nil, 0, fmt.Errorf("fs.pipeRead: bad args %T", arg)
	}
	p, err := s.pipe(a.Ino)
	if err != nil {
		return nil, 0, err
	}
	if err := s.chargeCPU(env, s.fs.params.BlockServerCPU); err != nil {
		return nil, 0, err
	}
	for len(p.buf) == 0 {
		if len(p.writerHosts) == 0 {
			return readReply{}, 16, nil // EOF
		}
		w := sim.NewFuture(s.fs.sim)
		p.readWaiters = append(p.readWaiters, w)
		if _, err := w.Wait(env); err != nil {
			return nil, 0, err
		}
	}
	n := a.N
	if n > len(p.buf) {
		n = len(p.buf)
	}
	data := make([]byte, n)
	copy(data, p.buf[:n])
	p.buf = p.buf[n:]
	wakeAll(&p.writeWaiters)
	return readReply{Data: data}, 16 + n, nil
}

// handlePipeWrite blocks while the buffer is full; fails with ErrBadStream
// when no readers remain (EPIPE).
func (s *Server) handlePipeWrite(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(pipeIOArgs)
	if !ok {
		return nil, 0, fmt.Errorf("fs.pipeWrite: bad args %T", arg)
	}
	p, err := s.pipe(a.Ino)
	if err != nil {
		return nil, 0, err
	}
	if err := s.chargeCPU(env, s.fs.params.BlockServerCPU); err != nil {
		return nil, 0, err
	}
	written := 0
	data := a.Data
	for len(data) > 0 {
		if len(p.readerHosts) == 0 {
			return nil, 0, fmt.Errorf("%w: pipe %d has no readers", ErrBadStream, a.Ino)
		}
		space := p.capacity - len(p.buf)
		if space == 0 {
			w := sim.NewFuture(s.fs.sim)
			p.writeWaiters = append(p.writeWaiters, w)
			if _, err := w.Wait(env); err != nil {
				return nil, 0, err
			}
			continue
		}
		n := len(data)
		if n > space {
			n = space
		}
		p.buf = append(p.buf, data[:n]...)
		data = data[n:]
		written += n
		wakeAll(&p.readWaiters)
	}
	return writeReply{Size: written}, 16, nil
}

func (s *Server) handlePipeClose(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(pipeCloseArgs)
	if !ok {
		return nil, 0, fmt.Errorf("fs.pipeClose: bad args %T", arg)
	}
	p, err := s.pipe(a.Ino)
	if err != nil {
		return nil, 0, err
	}
	if a.Writer {
		delete(p.writerHosts, a.Host)
		if len(p.writerHosts) == 0 {
			wakeAll(&p.readWaiters) // deliver EOF
		}
	} else {
		delete(p.readerHosts, a.Host)
		if len(p.readerHosts) == 0 {
			wakeAll(&p.writeWaiters) // deliver EPIPE
		}
	}
	if len(p.readerHosts) == 0 && len(p.writerHosts) == 0 {
		delete(s.pipes, a.Ino)
	}
	return nil, 8, nil
}

// handlePipeMigrate accounts a pipe stream's move between hosts; the
// buffer stays here at the I/O server, so only reference bookkeeping
// happens. The target host is added before the source is removed so the
// end never looks transiently unreferenced (which would deliver a
// spurious EOF/EPIPE to waiters mid-migration).
func (s *Server) handlePipeMigrate(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(pipeAdjustArgs)
	if !ok {
		return nil, 0, fmt.Errorf("fs.pipeMigrate: bad args %T", arg)
	}
	p, err := s.pipe(a.Ino)
	if err != nil {
		return nil, 0, err
	}
	hosts := p.readerHosts
	if a.Writer {
		hosts = p.writerHosts
	}
	if a.To != rpc.NoHost {
		hosts[a.To] = true
	}
	if a.From != rpc.NoHost {
		delete(hosts, a.From)
	}
	if len(hosts) == 0 {
		if a.Writer {
			wakeAll(&p.readWaiters)
		} else {
			wakeAll(&p.writeWaiters)
		}
	}
	return nil, 8, nil
}

func wakeAll(waiters *[]*sim.Future) {
	for _, w := range *waiters {
		w.Complete(nil, nil)
	}
	*waiters = nil
}

// --- client side ---

// CreatePipe creates a pipe at this host's root I/O server and returns its
// read and write ends as streams.
func (c *Client) CreatePipe(env *sim.Env) (r, w *Stream, err error) {
	srvHost, err := c.server("/")
	if err != nil {
		return nil, nil, err
	}
	reply, err := c.ep.Call(env, srvHost, "fs.pipeCreate", nil, 16)
	if err != nil {
		return nil, nil, fmt.Errorf("create pipe: %w", err)
	}
	pr, ok := reply.(pipeCreateReply)
	if !ok {
		return nil, nil, fmt.Errorf("fs.pipeCreate: bad reply %T", reply)
	}
	fid := FileID{Server: srvHost, Ino: pr.Ino}
	r = &Stream{
		ID: c.nextStreamID(), FID: fid, Path: fmt.Sprintf("<pipe %d r>", pr.Ino),
		Mode: ReadMode, pipe: true, owners: map[rpc.HostID]int{c.host: 1},
	}
	w = &Stream{
		ID: c.nextStreamID(), FID: fid, Path: fmt.Sprintf("<pipe %d w>", pr.Ino),
		Mode: WriteMode, pipe: true, owners: map[rpc.HostID]int{c.host: 1},
	}
	return r, w, nil
}

// pipeRead reads up to n bytes from the pipe, blocking until data or EOF.
func (c *Client) pipeRead(env *sim.Env, st *Stream, n int) ([]byte, error) {
	reply, err := c.ep.Call(env, st.FID.Server, "fs.pipeRead", pipeIOArgs{Ino: st.FID.Ino, N: n}, 24)
	if err != nil {
		return nil, err
	}
	r, ok := reply.(readReply)
	if !ok {
		return nil, fmt.Errorf("fs.pipeRead: bad reply %T", reply)
	}
	c.stats.BytesRead += uint64(len(r.Data))
	if m := c.fs.m; m != nil {
		m.bytesRead.AddSlot(sim.WorkerSlot(env), int64(len(r.Data)))
	}
	return r.Data, nil
}

// pipeWrite writes data into the pipe, blocking while it is full.
func (c *Client) pipeWrite(env *sim.Env, st *Stream, data []byte) (int, error) {
	reply, err := c.ep.Call(env, st.FID.Server, "fs.pipeWrite",
		pipeIOArgs{Ino: st.FID.Ino, Data: append([]byte(nil), data...)}, 24+len(data))
	if err != nil {
		return 0, err
	}
	r, ok := reply.(writeReply)
	if !ok {
		return 0, fmt.Errorf("fs.pipeWrite: bad reply %T", reply)
	}
	c.stats.BytesWritten += uint64(r.Size)
	if m := c.fs.m; m != nil {
		m.bytesWritten.AddSlot(sim.WorkerSlot(env), int64(r.Size))
	}
	return r.Size, nil
}

// pipeClose drops this host's reference to one pipe end.
func (c *Client) pipeClose(env *sim.Env, st *Stream) error {
	_, err := c.ep.Call(env, st.FID.Server, "fs.pipeClose",
		pipeCloseArgs{Ino: st.FID.Ino, Writer: st.Mode.canWrite(), Host: c.host}, 16)
	return err
}

// pipeMigrate informs the I/O server that one reference moved hosts. From
// and To name the hosts whose membership in the end's host set changed
// (NoHost for a side that kept or already had references).
func (c *Client) pipeMigrate(env *sim.Env, st *Stream, from, to rpc.HostID) error {
	_, err := c.ep.Call(env, st.FID.Server, "fs.pipeMigrate",
		pipeAdjustArgs{Ino: st.FID.Ino, Writer: st.Mode.canWrite(), From: from, To: to}, 24)
	return err
}
