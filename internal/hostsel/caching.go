package hostsel

import (
	"sort"
	"time"

	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// Caching wraps any Selector with a per-client grant cache: released hosts
// are kept for up to TTL and handed back to the next request without a
// server round trip. This is the thesis's future-work suggestion for
// scaling the central server ("host assignments may be cached effectively
// to reduce the rate of requests to a central server"); pmake-style
// workloads that request and release in quick succession hit the cache
// almost every time.
type Caching struct {
	inner Selector
	ttl   time.Duration
	pools map[rpc.HostID][]cachedGrant
	stats Stats
}

type cachedGrant struct {
	host    rpc.HostID
	expires time.Duration
}

var _ Selector = (*Caching)(nil)

// NewCaching wraps inner with a grant cache of the given TTL.
func NewCaching(inner Selector, ttl time.Duration) *Caching {
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	return &Caching{
		inner: inner,
		ttl:   ttl,
		pools: make(map[rpc.HostID][]cachedGrant),
	}
}

// Name implements Selector.
func (c *Caching) Name() string { return c.inner.Name() + "+cache" }

// Stats implements Selector: the wrapper's own counters (cache hits show
// up as Requests minus the inner selector's Requests).
func (c *Caching) Stats() Stats { return c.stats }

// InnerStats exposes the wrapped selector's counters.
func (c *Caching) InnerStats() Stats { return c.inner.Stats() }

// NotifyAvailability implements Selector: transitions invalidate cached
// grants for that host everywhere, then pass through.
func (c *Caching) NotifyAvailability(env *sim.Env, host rpc.HostID, available bool) error {
	if !available {
		for client, pool := range c.pools {
			kept := pool[:0]
			for _, g := range pool {
				if g.host != host {
					kept = append(kept, g)
				}
			}
			c.pools[client] = kept
		}
	}
	return c.inner.NotifyAvailability(env, host, available)
}

// RequestHosts implements Selector: cached grants first, the wrapped
// selector for the remainder.
func (c *Caching) RequestHosts(env *sim.Env, client rpc.HostID, n int) ([]rpc.HostID, error) {
	c.stats.Requests++
	if err := c.expire(env, client); err != nil {
		return nil, err
	}
	var got []rpc.HostID
	pool := c.pools[client]
	for len(pool) > 0 && len(got) < n {
		g := pool[0]
		pool = pool[1:]
		got = append(got, g.host)
	}
	c.pools[client] = pool
	if len(got) < n {
		more, err := c.inner.RequestHosts(env, client, n-len(got))
		if err != nil {
			return got, err
		}
		got = append(got, more...)
	}
	c.stats.Granted += uint64(len(got))
	if len(got) < n {
		c.stats.Denied++
	}
	return got, nil
}

// Release implements Selector: grants go into the cache rather than back
// to the server; they are really released when their TTL lapses.
func (c *Caching) Release(env *sim.Env, client rpc.HostID, hosts []rpc.HostID) error {
	pool := c.pools[client]
	for _, h := range hosts {
		pool = append(pool, cachedGrant{host: h, expires: env.Now() + c.ttl})
	}
	c.pools[client] = pool
	return c.expire(env, client)
}

// expire returns lapsed grants to the wrapped selector.
func (c *Caching) expire(env *sim.Env, client rpc.HostID) error {
	pool := c.pools[client]
	kept := pool[:0]
	var lapsed []rpc.HostID
	for _, g := range pool {
		if env.Now() >= g.expires {
			lapsed = append(lapsed, g.host)
		} else {
			kept = append(kept, g)
		}
	}
	c.pools[client] = kept
	if len(lapsed) > 0 {
		return c.inner.Release(env, client, lapsed)
	}
	return nil
}

// FlushAll immediately releases every cached grant (used at client exit).
// Clients are flushed in sorted order: the wrapped selector sees the
// released hosts in a fixed sequence, so its free-list order — and every
// grant it hands out afterwards — stays independent of map iteration.
func (c *Caching) FlushAll(env *sim.Env) error {
	clients := make([]int, 0, len(c.pools))
	for client := range c.pools {
		clients = append(clients, int(client))
	}
	sort.Ints(clients)
	for _, cl := range clients {
		client := rpc.HostID(cl)
		pool := c.pools[client]
		var hosts []rpc.HostID
		for _, g := range pool {
			hosts = append(hosts, g.host)
		}
		c.pools[client] = nil
		if len(hosts) > 0 {
			if err := c.inner.Release(env, client, hosts); err != nil {
				return err
			}
		}
	}
	return nil
}
