package hostsel

import (
	"sprite/internal/metrics"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// Instrumented wraps a Selector and reports its behaviour to a metrics
// registry: one latency timing per operation (the thesis's 56 ms
// host-selection figure is exactly this number for the central server) and
// grant/denial/conflict counters. The wrapper adds no simulated time — it
// reads env.Now() around the delegate — so instrumenting a selector cannot
// change an experiment's outcome.
type Instrumented struct {
	inner Selector

	requestT *metrics.Timing
	releaseT *metrics.Timing
	notifyT  *metrics.Timing
	requests *metrics.Counter
	granted  *metrics.Counter
	denied   *metrics.Counter
	errs     *metrics.Counter
}

var _ Selector = (*Instrumented)(nil)

// Instrument wraps sel so its selection latency and grant counters land in
// reg under hostsel.<name>.*. A nil registry returns sel unchanged.
func Instrument(sel Selector, reg *metrics.Registry) Selector {
	if reg == nil {
		return sel
	}
	prefix := "hostsel." + sel.Name() + "."
	return &Instrumented{
		inner:    sel,
		requestT: reg.Timing(prefix + "request"),
		releaseT: reg.Timing(prefix + "release"),
		notifyT:  reg.Timing(prefix + "notify"),
		requests: reg.Counter(prefix + "requests"),
		granted:  reg.Counter(prefix + "granted"),
		denied:   reg.Counter(prefix + "denied"),
		errs:     reg.Counter(prefix + "errs"),
	}
}

// Unwrap returns the underlying selector.
func (i *Instrumented) Unwrap() Selector { return i.inner }

// Name identifies the wrapped architecture.
func (i *Instrumented) Name() string { return i.inner.Name() }

// RequestHosts delegates and records the call's virtual-time latency.
func (i *Instrumented) RequestHosts(env *sim.Env, client rpc.HostID, n int) ([]rpc.HostID, error) {
	start := env.Now()
	hosts, err := i.inner.RequestHosts(env, client, n)
	slot := sim.WorkerSlot(env)
	i.requestT.ObserveSlot(slot, env.Now()-start)
	i.requests.IncSlot(slot)
	i.granted.AddSlot(slot, int64(len(hosts)))
	if err != nil || len(hosts) < n {
		i.denied.IncSlot(slot)
	}
	if err != nil {
		i.errs.IncSlot(slot)
	}
	return hosts, err
}

// Release delegates and records latency.
func (i *Instrumented) Release(env *sim.Env, client rpc.HostID, hosts []rpc.HostID) error {
	start := env.Now()
	err := i.inner.Release(env, client, hosts)
	slot := sim.WorkerSlot(env)
	i.releaseT.ObserveSlot(slot, env.Now()-start)
	if err != nil {
		i.errs.IncSlot(slot)
	}
	return err
}

// NotifyAvailability delegates and records latency.
func (i *Instrumented) NotifyAvailability(env *sim.Env, host rpc.HostID, available bool) error {
	start := env.Now()
	err := i.inner.NotifyAvailability(env, host, available)
	slot := sim.WorkerSlot(env)
	i.notifyT.ObserveSlot(slot, env.Now()-start)
	if err != nil {
		i.errs.IncSlot(slot)
	}
	return err
}

// Stats returns the wrapped selector's own counters.
func (i *Instrumented) Stats() Stats { return i.inner.Stats() }
