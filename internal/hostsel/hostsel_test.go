package hostsel

import (
	"testing"
	"time"

	"sprite/internal/core"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// newCluster builds a cluster where every workstation has been quiet long
// enough to count as idle.
func newCluster(t *testing.T, workstations int) *core.Cluster {
	t.Helper()
	c, err := core.NewCluster(core.Options{Workstations: workstations, FileServers: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// warmup advances past the idle-input age so quiet hosts are available.
func warmup(env *sim.Env) error { return env.Sleep(time.Minute) }

// announceAll pushes every workstation's availability into the selector.
func announceAll(env *sim.Env, c *core.Cluster, sel Selector) error {
	for _, k := range c.Workstations() {
		if err := sel.NotifyAvailability(env, k.Host(), k.Available(env.Now())); err != nil {
			return err
		}
	}
	return nil
}

// selectors returns one instance of each architecture, freshly wired.
func selectors(t *testing.T, c *core.Cluster) []Selector {
	t.Helper()
	sf, err := NewSharedFile(c, "")
	if err != nil {
		t.Fatal(err)
	}
	// For the deterministic request/grant tests the gossip selector uses
	// full fanout so one announcement reaches every view.
	probParams := DefaultProbabilisticParams()
	probParams.Fanout = 64
	return []Selector{
		NewCentral(c, rpc.HostID(1), DefaultCentralParams()),
		sf,
		NewProbabilistic(c, probParams),
		NewMulticast(c),
	}
}

func TestRequestAndReleaseAllArchitectures(t *testing.T) {
	c := newCluster(t, 5)
	sels := selectors(t, c)
	c.Boot("boot", func(env *sim.Env) error {
		if err := warmup(env); err != nil {
			return err
		}
		client := c.Workstation(0).Host()
		for _, sel := range sels {
			if err := announceAll(env, c, sel); err != nil {
				return err
			}
			hosts, err := sel.RequestHosts(env, client, 2)
			if err != nil {
				return err
			}
			if len(hosts) != 2 {
				t.Errorf("%s: got %d hosts, want 2", sel.Name(), len(hosts))
			}
			for _, h := range hosts {
				if h == client {
					t.Errorf("%s: granted the client itself", sel.Name())
				}
			}
			if err := sel.Release(env, client, hosts); err != nil {
				return err
			}
			// After release the hosts are available again.
			again, err := sel.RequestHosts(env, client, 4)
			if err != nil {
				return err
			}
			if len(again) != 4 {
				t.Errorf("%s: after release got %d hosts, want 4", sel.Name(), len(again))
			}
			if err := sel.Release(env, client, again); err != nil {
				return err
			}
		}
		return nil
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestNoDoubleGrant(t *testing.T) {
	c := newCluster(t, 4)
	sels := selectors(t, c)
	c.Boot("boot", func(env *sim.Env) error {
		if err := warmup(env); err != nil {
			return err
		}
		a, b := c.Workstation(0).Host(), c.Workstation(1).Host()
		for _, sel := range sels {
			if err := announceAll(env, c, sel); err != nil {
				return err
			}
			ha, err := sel.RequestHosts(env, a, 4)
			if err != nil {
				return err
			}
			hb, err := sel.RequestHosts(env, b, 4)
			if err != nil {
				return err
			}
			for _, x := range ha {
				for _, y := range hb {
					if x == y {
						t.Errorf("%s: host %v granted twice", sel.Name(), x)
					}
				}
			}
			if err := sel.Release(env, a, ha); err != nil {
				return err
			}
			if err := sel.Release(env, b, hb); err != nil {
				return err
			}
		}
		return nil
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestBusyHostsNotOffered(t *testing.T) {
	c := newCluster(t, 3)
	c.Boot("boot", func(env *sim.Env) error {
		if err := warmup(env); err != nil {
			return err
		}
		// Host 1 (workstation index 1) has a user typing.
		c.Workstation(1).NoteInput(env.Now())
		sel := NewCentral(c, rpc.HostID(1), DefaultCentralParams())
		if err := announceAll(env, c, sel); err != nil {
			return err
		}
		hosts, err := sel.RequestHosts(env, c.Workstation(0).Host(), 3)
		if err != nil {
			return err
		}
		for _, h := range hosts {
			if h == c.Workstation(1).Host() {
				t.Error("busy host was offered")
			}
		}
		if len(hosts) != 1 {
			t.Errorf("got %d hosts, want 1 (only ws2 is idle and not the client)", len(hosts))
		}
		return nil
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestCentralFairAllocationUnderContention(t *testing.T) {
	c := newCluster(t, 9)
	sel := NewCentral(c, rpc.HostID(1), DefaultCentralParams())
	c.Boot("boot", func(env *sim.Env) error {
		if err := warmup(env); err != nil {
			return err
		}
		if err := announceAll(env, c, sel); err != nil {
			return err
		}
		a, b := c.Workstation(0).Host(), c.Workstation(1).Host()
		// 7 other idle hosts exist. A asks for all of them first.
		ha, err := sel.RequestHosts(env, a, 7)
		if err != nil {
			return err
		}
		if len(ha) != 7 {
			t.Fatalf("uncontended request got %d, want 7", len(ha))
		}
		// Release half; now B competes and must get a fair share rather
		// than nothing while A holds the rest.
		if err := sel.Release(env, a, ha[:4]); err != nil {
			return err
		}
		hb, err := sel.RequestHosts(env, b, 7)
		if err != nil {
			return err
		}
		if len(hb) < 2 {
			t.Errorf("contended request got %d hosts, want a fair share (>=2)", len(hb))
		}
		return nil
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestCentralEvictsOnOwnerReturn(t *testing.T) {
	c := newCluster(t, 2)
	if err := c.SeedBinary("/bin/prog", 64*1024); err != nil {
		t.Fatal(err)
	}
	sel := NewCentral(c, rpc.HostID(1), DefaultCentralParams())
	home, lent := c.Workstation(0), c.Workstation(1)
	cfg := core.ProcConfig{Binary: "/bin/prog", CodePages: 2, HeapPages: 4, StackPages: 1}
	c.Boot("boot", func(env *sim.Env) error {
		if err := warmup(env); err != nil {
			return err
		}
		if err := announceAll(env, c, sel); err != nil {
			return err
		}
		hosts, err := sel.RequestHosts(env, home.Host(), 1)
		if err != nil {
			return err
		}
		if len(hosts) != 1 || hosts[0] != lent.Host() {
			t.Fatalf("hosts = %v, want [%v]", hosts, lent.Host())
		}
		p, err := home.StartProcess(env, "guest", func(ctx *core.Ctx) error {
			if err := ctx.Migrate(lent.Host()); err != nil {
				return err
			}
			return ctx.Compute(time.Hour)
		}, cfg)
		if err != nil {
			return err
		}
		if err := env.Sleep(2 * time.Second); err != nil {
			return err
		}
		// The lent host's owner comes back: its load daemon reports
		// unavailability and migd triggers eviction.
		lent.NoteInput(env.Now())
		if err := sel.NotifyAvailability(env, lent.Host(), false); err != nil {
			return err
		}
		if p.Current() != home {
			t.Errorf("guest on %v after owner return, want home", p.Current().Host())
		}
		if len(lent.ForeignProcesses()) != 0 {
			t.Error("foreign processes remain on reclaimed host")
		}
		// Stop the long compute.
		killer, err := home.StartProcess(env, "killer", func(ctx *core.Ctx) error {
			return ctx.Kill(p.PID())
		}, cfg)
		if err != nil {
			return err
		}
		if _, err := killer.Exited().Wait(env); err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if sel.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", sel.Stats().Evictions)
	}
}

func TestProbabilisticGossipPropagates(t *testing.T) {
	c := newCluster(t, 6)
	sel := NewProbabilistic(c, DefaultProbabilisticParams())
	c.Boot("boot", func(env *sim.Env) error {
		if err := warmup(env); err != nil {
			return err
		}
		sel.StartDaemons(env)
		// Let gossip circulate for a while.
		if err := env.Sleep(10 * time.Second); err != nil {
			return err
		}
		client := c.Workstation(0).Host()
		hosts, err := sel.RequestHosts(env, client, 3)
		if err != nil {
			return err
		}
		if len(hosts) == 0 {
			t.Error("gossip never delivered any availability")
		}
		if err := sel.Release(env, client, hosts); err != nil {
			return err
		}
		sel.Stop()
		return nil
	})
	if err := c.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	c.Stop()
	_ = c.Run(0)
	if sel.Stats().Messages == 0 {
		t.Fatal("no gossip messages recorded")
	}
}

func TestProbabilisticStaleViewCausesConflict(t *testing.T) {
	c := newCluster(t, 3)
	sel := NewProbabilistic(c, DefaultProbabilisticParams())
	c.Boot("boot", func(env *sim.Env) error {
		if err := warmup(env); err != nil {
			return err
		}
		// Announce host 2 as available, then make it busy without gossiping.
		target := c.Workstation(1)
		if err := sel.NotifyAvailability(env, target.Host(), true); err != nil {
			return err
		}
		// Force the stale entry into every view (fanout randomness may
		// have missed the client); direct injection keeps the test exact.
		for _, view := range sel.views {
			view.Put(VectorEntry{
				Host:      target.Host(),
				Available: true,
				Epoch:     sel.epochOf(target.Host()),
			})
		}
		target.NoteInput(env.Now()) // user returns; views are now stale
		client := c.Workstation(0).Host()
		hosts, err := sel.RequestHosts(env, client, 1)
		if err != nil {
			return err
		}
		for _, h := range hosts {
			if h == target.Host() {
				t.Error("claimed a busy host")
			}
		}
		return nil
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if sel.Stats().Conflicts == 0 {
		t.Fatal("stale claim should have counted a conflict")
	}
}

func TestMulticastStatelessQuery(t *testing.T) {
	c := newCluster(t, 5)
	sel := NewMulticast(c)
	c.Boot("boot", func(env *sim.Env) error {
		if err := warmup(env); err != nil {
			return err
		}
		client := c.Workstation(0).Host()
		hosts, err := sel.RequestHosts(env, client, 2)
		if err != nil {
			return err
		}
		if len(hosts) != 2 {
			t.Errorf("got %d hosts, want 2", len(hosts))
		}
		return sel.Release(env, client, hosts)
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	// 1 multicast + 4 replies + 2 claims + 2 releases
	if sel.Stats().Messages < 9 {
		t.Fatalf("messages = %d, want >= 9", sel.Stats().Messages)
	}
}

func TestSharedFileDisablesCachingByDesign(t *testing.T) {
	c := newCluster(t, 4)
	sf, err := NewSharedFile(c, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Boot("boot", func(env *sim.Env) error {
		if err := warmup(env); err != nil {
			return err
		}
		// Several hosts update their records: concurrent write sharing.
		for _, k := range c.Workstations() {
			if err := sf.NotifyAvailability(env, k.Host(), true); err != nil {
				return err
			}
		}
		hosts, err := sf.RequestHosts(env, c.Workstation(0).Host(), 2)
		if err != nil {
			return err
		}
		if len(hosts) != 2 {
			t.Errorf("got %d hosts, want 2", len(hosts))
		}
		return sf.Release(env, c.Workstation(0).Host(), hosts)
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	// The state file is write-shared by every host, so it is seeded
	// never-cacheable: no client may hold its blocks, and every record read
	// and write is a file-server round trip — the per-operation cost that
	// made the shared-file design expensive. Four notifications, one scan,
	// and one release must all have hit the server's block counters.
	st := c.Servers()[0].Stats()
	if st.BlocksRead < 6 || st.BlocksWrite < 6 {
		t.Fatalf("uncached state file should hit the server per operation: reads=%d writes=%d", st.BlocksRead, st.BlocksWrite)
	}
}

func TestAvailabilityUpdateCostOrdering(t *testing.T) {
	// The load-bearing difference that made Sprite replace the shared file
	// with migd: every availability transition through the shared file is
	// an open/read/write/close against the file server, several times the
	// cost of migd's single small RPC.
	c := newCluster(t, 8)
	central := NewCentral(c, rpc.HostID(1), DefaultCentralParams())
	sf, err := NewSharedFile(c, "")
	if err != nil {
		t.Fatal(err)
	}
	var centralUpdate, sharedUpdate time.Duration
	c.Boot("boot", func(env *sim.Env) error {
		if err := warmup(env); err != nil {
			return err
		}
		host := c.Workstation(3).Host()
		t0 := env.Now()
		if err := central.NotifyAvailability(env, host, true); err != nil {
			return err
		}
		centralUpdate = env.Now() - t0
		t0 = env.Now()
		if err := sf.NotifyAvailability(env, host, true); err != nil {
			return err
		}
		sharedUpdate = env.Now() - t0
		return nil
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if centralUpdate <= 0 || sharedUpdate <= 0 {
		t.Fatalf("times: central=%v shared=%v", centralUpdate, sharedUpdate)
	}
	if sharedUpdate <= centralUpdate {
		t.Fatalf("shared-file update (%v) should cost more than central update (%v)", sharedUpdate, centralUpdate)
	}
}
