package hostsel

import (
	"errors"
	"testing"
	"time"

	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// TestCentralCrashAndRestart: while migd's host is down, selection fails;
// after restart the soft state is repopulated by the hosts' next
// announcements and selection works again — the thesis's argument that a
// centralized facility needs no replication, just restartability.
func TestCentralCrashAndRestart(t *testing.T) {
	c := newCluster(t, 4)
	sel := NewCentral(c, rpc.HostID(1), DefaultCentralParams())
	migdEP := c.Transport().Endpoint(rpc.HostID(1))
	c.Boot("boot", func(env *sim.Env) error {
		if err := warmup(env); err != nil {
			return err
		}
		if err := announceAll(env, c, sel); err != nil {
			return err
		}
		client := c.Workstation(0).Host()
		hosts, err := sel.RequestHosts(env, client, 1)
		if err != nil {
			return err
		}
		if len(hosts) != 1 {
			t.Fatalf("pre-crash grant = %v", hosts)
		}
		if err := sel.Release(env, client, hosts); err != nil {
			return err
		}

		// migd's host crashes.
		migdEP.SetDown(true)
		if _, err := sel.RequestHosts(env, client, 1); !errors.Is(err, rpc.ErrHostDown) {
			t.Errorf("request during crash err = %v, want ErrHostDown", err)
		}

		// Restart: empty soft state, hosts re-announce, service resumes.
		migdEP.SetDown(false)
		sel.Reset()
		got, err := sel.RequestHosts(env, client, 1)
		if err != nil {
			return err
		}
		if len(got) != 0 {
			t.Errorf("freshly restarted migd granted %v before any announcements", got)
		}
		if err := announceAll(env, c, sel); err != nil {
			return err
		}
		got, err = sel.RequestHosts(env, client, 2)
		if err != nil {
			return err
		}
		if len(got) != 2 {
			t.Errorf("post-restart grant = %v, want 2 hosts", got)
		}
		return sel.Release(env, client, got)
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
}

// TestCentralRestartForgetsAssignments documents the soft-state trade-off:
// assignments made before the crash are forgotten, so a host can be
// double-granted until its borrower releases and the load daemon reports
// the real load. The load threshold is what bounds the damage.
func TestCentralRestartForgetsAssignments(t *testing.T) {
	c := newCluster(t, 3)
	sel := NewCentral(c, rpc.HostID(1), DefaultCentralParams())
	c.Boot("boot", func(env *sim.Env) error {
		if err := warmup(env); err != nil {
			return err
		}
		if err := announceAll(env, c, sel); err != nil {
			return err
		}
		a, b := c.Workstation(0).Host(), c.Workstation(1).Host()
		got, err := sel.RequestHosts(env, a, 1)
		if err != nil {
			return err
		}
		if len(got) != 1 {
			t.Fatalf("grant = %v", got)
		}
		sel.Reset() // crash+restart loses the assignment
		if err := announceAll(env, c, sel); err != nil {
			return err
		}
		again, err := sel.RequestHosts(env, b, 3)
		if err != nil {
			return err
		}
		for _, h := range again {
			if h == got[0] {
				// Documented soft-state behaviour: the double grant is
				// possible until load information catches up.
				return nil
			}
		}
		// Not double-granted this time is also fine (load may have risen).
		return nil
	})
	if err := c.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
}
