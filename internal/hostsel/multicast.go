package hostsel

import (
	"fmt"
	"sort"
	"time"

	"sprite/internal/core"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// Multicast is the stateless request/response architecture Theimer & Lantz
// analyze: a requester multicasts "who is idle?", idle hosts answer, and
// the requester claims the first responders. No standing state anywhere,
// but every request disturbs every host, which bounds scalability.
type Multicast struct {
	cluster *core.Cluster
	claims  map[rpc.HostID]rpc.HostID
	stats   Stats
}

var _ Selector = (*Multicast)(nil)

type queryReply struct {
	IdleSince time.Duration
}

// NewMulticast creates the multicast selector and registers its services on
// every workstation.
func NewMulticast(cluster *core.Cluster) *Multicast {
	m := &Multicast{
		cluster: cluster,
		claims:  make(map[rpc.HostID]rpc.HostID),
	}
	for _, k := range cluster.Workstations() {
		owner := k.Host()
		ep := cluster.Transport().Endpoint(owner)
		ep.Handle("hs.query", m.makeQueryHandler(owner))
		ep.Handle("hs.mclaim", m.makeClaimHandler(owner))
		ep.Handle("hs.mrelease", m.makeReleaseHandler(owner))
	}
	return m
}

// Name implements Selector.
func (m *Multicast) Name() string { return "multicast" }

// Stats implements Selector.
func (m *Multicast) Stats() Stats { return m.stats }

func (m *Multicast) makeQueryHandler(owner rpc.HostID) rpc.Handler {
	return func(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
		k := m.cluster.KernelOn(owner)
		if _, taken := m.claims[owner]; taken || k == nil || !k.Available(env.Now()) {
			return nil, 0, ErrNoHosts // non-responders stay silent
		}
		return queryReply{IdleSince: k.LastInput()}, 16, nil
	}
}

func (m *Multicast) makeClaimHandler(owner rpc.HostID) rpc.Handler {
	return func(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
		a, ok := arg.(claimArgs)
		if !ok {
			return nil, 0, fmt.Errorf("hs.mclaim: bad args %T", arg)
		}
		k := m.cluster.KernelOn(owner)
		if _, taken := m.claims[owner]; taken || k == nil || !k.Available(env.Now()) {
			return false, 8, nil
		}
		m.claims[owner] = a.Client
		return true, 8, nil
	}
}

func (m *Multicast) makeReleaseHandler(owner rpc.HostID) rpc.Handler {
	return func(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
		a, ok := arg.(claimArgs)
		if !ok {
			return nil, 0, fmt.Errorf("hs.mrelease: bad args %T", arg)
		}
		if m.claims[owner] == a.Client {
			delete(m.claims, owner)
		}
		return nil, 8, nil
	}
}

// NotifyAvailability implements Selector: stateless, nothing to update.
func (m *Multicast) NotifyAvailability(env *sim.Env, host rpc.HostID, available bool) error {
	return nil
}

// RequestHosts implements Selector: multicast a query, claim the longest
// idle responders.
func (m *Multicast) RequestHosts(env *sim.Env, client rpc.HostID, n int) ([]rpc.HostID, error) {
	m.stats.Requests++
	ep := m.cluster.Transport().Endpoint(client)
	m.stats.Messages++ // the multicast itself
	replies, err := ep.Broadcast(env, "hs.query", nil, 16)
	if err != nil {
		return nil, err
	}
	m.stats.Messages += uint64(len(replies))
	type cand struct {
		host rpc.HostID
		idle time.Duration
	}
	var cands []cand
	for h, r := range replies {
		if qr, ok := r.(queryReply); ok && h != client {
			cands = append(cands, cand{host: h, idle: qr.IdleSince})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].idle != cands[j].idle {
			return cands[i].idle < cands[j].idle // longest idle first
		}
		return cands[i].host < cands[j].host
	})
	var got []rpc.HostID
	for _, cd := range cands {
		if len(got) >= n {
			break
		}
		m.stats.Messages++
		reply, err := ep.Call(env, cd.host, "hs.mclaim", claimArgs{Client: client}, 16)
		if err != nil {
			return got, err
		}
		if ok, _ := reply.(bool); ok {
			got = append(got, cd.host)
		} else {
			m.stats.Conflicts++
		}
	}
	m.stats.Granted += uint64(len(got))
	if len(got) < n {
		m.stats.Denied++
	}
	return got, nil
}

// Release implements Selector.
func (m *Multicast) Release(env *sim.Env, client rpc.HostID, hosts []rpc.HostID) error {
	ep := m.cluster.Transport().Endpoint(client)
	for _, h := range hosts {
		m.stats.Messages++
		if _, err := ep.Call(env, h, "hs.mrelease", claimArgs{Client: client}, 16); err != nil {
			return err
		}
	}
	return nil
}
