package hostsel

import (
	"testing"
	"time"

	"sprite/internal/rpc"
	"sprite/internal/sim"
)

func TestCachingAvoidsServerRoundTrips(t *testing.T) {
	c := newCluster(t, 6)
	central := NewCentral(c, rpc.HostID(1), DefaultCentralParams())
	sel := NewCaching(central, 30*time.Second)
	c.Boot("boot", func(env *sim.Env) error {
		if err := warmup(env); err != nil {
			return err
		}
		if err := announceAll(env, c, sel); err != nil {
			return err
		}
		client := c.Workstation(0).Host()
		// Burst of request/release pairs within the TTL.
		for i := 0; i < 10; i++ {
			hosts, err := sel.RequestHosts(env, client, 2)
			if err != nil {
				return err
			}
			if len(hosts) != 2 {
				t.Fatalf("iter %d: got %d hosts", i, len(hosts))
			}
			if err := sel.Release(env, client, hosts); err != nil {
				return err
			}
			if err := env.Sleep(time.Second); err != nil {
				return err
			}
		}
		return sel.FlushAll(env)
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := sel.Stats().Requests; got != 10 {
		t.Fatalf("wrapper requests = %d, want 10", got)
	}
	// Only the first request should have reached migd.
	if got := central.Stats().Requests; got != 1 {
		t.Fatalf("server requests = %d, want 1 (cache absorbs the rest)", got)
	}
}

func TestCachingTTLReturnsHosts(t *testing.T) {
	c := newCluster(t, 4)
	central := NewCentral(c, rpc.HostID(1), DefaultCentralParams())
	sel := NewCaching(central, 5*time.Second)
	c.Boot("boot", func(env *sim.Env) error {
		if err := warmup(env); err != nil {
			return err
		}
		if err := announceAll(env, c, sel); err != nil {
			return err
		}
		a, b := c.Workstation(0).Host(), c.Workstation(1).Host()
		hosts, err := sel.RequestHosts(env, a, 3)
		if err != nil {
			return err
		}
		if err := sel.Release(env, a, hosts); err != nil {
			return err
		}
		// While cached by A, B cannot have them.
		got, err := sel.RequestHosts(env, b, 3)
		if err != nil {
			return err
		}
		if len(got) > 1 { // only the one host not granted to A (there are 3 others minus a itself...)
			// With 4 workstations, A held 3; B (itself one of them) can
			// get at most the spares. The precise count depends on which
			// hosts were granted; what matters is the cached ones are
			// unavailable.
			for _, h := range got {
				for _, held := range hosts {
					if h == held {
						t.Errorf("host %v granted to B while cached by A", h)
					}
				}
			}
		}
		if err := sel.Release(env, b, got); err != nil {
			return err
		}
		// After the TTL, A's cache lapses back to migd and B can get them.
		if err := env.Sleep(6 * time.Second); err != nil {
			return err
		}
		// Trigger expiry on A's pool.
		if _, err := sel.RequestHosts(env, a, 0); err != nil {
			return err
		}
		got, err = sel.RequestHosts(env, b, 3)
		if err != nil {
			return err
		}
		if len(got) == 0 {
			t.Error("hosts never returned to the pool after TTL")
		}
		return sel.Release(env, b, got)
	})
	if err := c.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
}

func TestCachingInvalidatesOnOwnerReturn(t *testing.T) {
	c := newCluster(t, 3)
	central := NewCentral(c, rpc.HostID(1), DefaultCentralParams())
	sel := NewCaching(central, time.Minute)
	c.Boot("boot", func(env *sim.Env) error {
		if err := warmup(env); err != nil {
			return err
		}
		if err := announceAll(env, c, sel); err != nil {
			return err
		}
		client := c.Workstation(0).Host()
		hosts, err := sel.RequestHosts(env, client, 2)
		if err != nil {
			return err
		}
		if err := sel.Release(env, client, hosts); err != nil {
			return err
		}
		// The owner of one cached host returns: the cache must drop it.
		victim := hosts[0]
		c.KernelOn(victim).NoteInput(env.Now())
		if err := sel.NotifyAvailability(env, victim, false); err != nil {
			return err
		}
		again, err := sel.RequestHosts(env, client, 2)
		if err != nil {
			return err
		}
		for _, h := range again {
			if h == victim {
				t.Errorf("reclaimed host %v served from cache", h)
			}
		}
		return sel.Release(env, client, again)
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
}
