package hostsel

import (
	"encoding/binary"
	"fmt"
	"time"

	"sprite/internal/core"
	"sprite/internal/fs"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// recordSize is the fixed per-host record in the shared state file.
const recordSize = 64

// SharedFile is Sprite's original host-selection design: one file in the
// shared file system holds a record per host; hosts write their own records
// and requesters lock the file, scan it, and claim hosts by writing claim
// marks. The file is write-shared by every host, so the FS disables client
// caching for it and every access is a server round trip — the measured
// reason Sprite replaced it with migd.
type SharedFile struct {
	cluster *core.Cluster
	path    string
	lock    string
	slots   map[rpc.HostID]int
	hosts   []rpc.HostID
	stats   Stats
}

var _ Selector = (*SharedFile)(nil)

// NewSharedFile creates the shared-file selector, seeding the state file.
func NewSharedFile(cluster *core.Cluster, path string) (*SharedFile, error) {
	if path == "" {
		path = "/sprite/hoststate"
	}
	s := &SharedFile{
		cluster: cluster,
		path:    path,
		lock:    path + ".lock",
		slots:   make(map[rpc.HostID]int),
	}
	for i, k := range cluster.Workstations() {
		s.slots[k.Host()] = i
		s.hosts = append(s.hosts, k.Host())
	}
	if _, err := cluster.FS().SeedSized(path, recordSize*len(s.hosts), true); err != nil {
		return nil, err
	}
	return s, nil
}

// Name implements Selector.
func (s *SharedFile) Name() string { return "shared-file" }

// Stats implements Selector.
func (s *SharedFile) Stats() Stats { return s.stats }

type hostRecord struct {
	available bool
	claimed   bool
	claimedBy rpc.HostID
	idleSince time.Duration
}

// The record is split into two single-writer regions so concurrent updates
// never clobber each other: bytes [0, availPartSize) — available flag and
// idle timestamp — are written only by the host the record describes, and
// bytes [availPartSize, recordSize) — the claim mark — only by requesters
// holding the lock. An earlier layout interleaved the two, and a host
// rewriting its whole record could race a locked claimer and silently clear
// the claim bit (a lost update the churn suite caught as a double grant).
const availPartSize = 9

func encodeRecord(r hostRecord) []byte {
	buf := make([]byte, recordSize)
	if r.available {
		buf[0] = 1
	}
	binary.LittleEndian.PutUint64(buf[1:], uint64(r.idleSince))
	if r.claimed {
		buf[availPartSize] = 1
	}
	binary.LittleEndian.PutUint64(buf[availPartSize+1:], uint64(r.claimedBy))
	return buf
}

func decodeRecord(buf []byte) hostRecord {
	if len(buf) < recordSize {
		return hostRecord{}
	}
	return hostRecord{
		available: buf[0] == 1,
		idleSince: time.Duration(binary.LittleEndian.Uint64(buf[1:])),
		claimed:   buf[availPartSize] == 1,
		claimedBy: rpc.HostID(binary.LittleEndian.Uint64(buf[availPartSize+1:])),
	}
}

// NotifyAvailability implements Selector: the host rewrites its own record.
func (s *SharedFile) NotifyAvailability(env *sim.Env, host rpc.HostID, available bool) error {
	slot, ok := s.slots[host]
	if !ok {
		return fmt.Errorf("hostsel: %w: %v", rpc.ErrNoHost, host)
	}
	s.stats.Messages++
	client := s.cluster.FS().Client(host)
	st, err := client.Open(env, s.path, fs.ReadWriteMode, fs.OpenOptions{})
	if err != nil {
		return err
	}
	defer func() { _ = client.Close(env, st) }()
	off := int64(slot * recordSize)
	old, err := client.ReadAt(env, st, off, recordSize)
	if err != nil {
		return err
	}
	rec := decodeRecord(old)
	if available && !rec.available {
		rec.idleSince = env.Now()
	}
	rec.available = available
	// Only the availability region is written: the claim bytes belong to
	// requesters, and a host never blocks on their lock — a faulted host
	// stuck holding the file lock would wedge selection cluster-wide.
	return client.WriteAt(env, st, off, encodeRecord(rec)[:availPartSize])
}

// RequestHosts implements Selector: lock, scan, claim, unlock.
func (s *SharedFile) RequestHosts(env *sim.Env, client rpc.HostID, n int) ([]rpc.HostID, error) {
	s.stats.Requests++
	s.stats.Messages++
	c := s.cluster.FS().Client(client)
	if err := c.Lock(env, s.lock); err != nil {
		return nil, err
	}
	defer func() { _ = c.Unlock(env, s.lock) }()
	st, err := c.Open(env, s.path, fs.ReadWriteMode, fs.OpenOptions{})
	if err != nil {
		return nil, err
	}
	defer func() { _ = c.Close(env, st) }()
	data, err := c.ReadAt(env, st, 0, recordSize*len(s.hosts))
	if err != nil {
		return nil, err
	}
	info := make(map[rpc.HostID]availInfo, len(s.hosts))
	var cands []rpc.HostID
	for i, h := range s.hosts {
		if h == client {
			continue
		}
		rec := decodeRecord(data[i*recordSize:])
		if rec.available && !rec.claimed {
			cands = append(cands, h)
			info[h] = availInfo{available: true, idleSince: rec.idleSince}
		}
	}
	picked := pickLongestIdle(cands, info, n)
	for _, h := range picked {
		i := s.slots[h]
		rec := decodeRecord(data[i*recordSize:])
		rec.claimed = true
		rec.claimedBy = client
		if err := c.WriteAt(env, st, int64(i*recordSize+availPartSize), encodeRecord(rec)[availPartSize:]); err != nil {
			return nil, err
		}
	}
	s.stats.Granted += uint64(len(picked))
	if len(picked) < n {
		s.stats.Denied++
	}
	return picked, nil
}

// Release implements Selector.
func (s *SharedFile) Release(env *sim.Env, client rpc.HostID, hosts []rpc.HostID) error {
	if len(hosts) == 0 {
		return nil
	}
	s.stats.Messages++
	c := s.cluster.FS().Client(client)
	if err := c.Lock(env, s.lock); err != nil {
		return err
	}
	defer func() { _ = c.Unlock(env, s.lock) }()
	st, err := c.Open(env, s.path, fs.ReadWriteMode, fs.OpenOptions{})
	if err != nil {
		return err
	}
	defer func() { _ = c.Close(env, st) }()
	for _, h := range hosts {
		slot, ok := s.slots[h]
		if !ok {
			continue
		}
		off := int64(slot * recordSize)
		data, err := c.ReadAt(env, st, off, recordSize)
		if err != nil {
			return err
		}
		rec := decodeRecord(data)
		if rec.claimedBy == client {
			rec.claimed = false
			rec.claimedBy = rpc.NoHost
			if err := c.WriteAt(env, st, off+availPartSize, encodeRecord(rec)[availPartSize:]); err != nil {
				return err
			}
		}
	}
	return nil
}
