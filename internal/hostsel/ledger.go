package hostsel

import (
	"fmt"
	"sort"
	"time"

	"sprite/internal/core"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// ClaimLedger wraps a Selector and audits the allocation protocol from the
// outside: no host may be granted to two clients at once, a client must
// never be granted itself, and every grant must be returned by the end of
// the run. It plugs into Cluster.CheckInvariants (Register), so the churn
// suite and the fuzzer assert selector correctness through the same
// invariant machinery as the kernel.
//
// The ledger is epoch-aware, mirroring the protocols it audits: a grant
// whose target host rebooted is void (the host's claim state died with the
// reboot — the epoch guard releases it), a grant whose *holder* rebooted
// or is down cannot be released by anyone and is likewise void, and a
// grant older than the claim lease has expired. Only live grants count for
// double-claim and leak detection.
type ClaimLedger struct {
	inner   Selector
	cluster *core.Cluster
	lease   time.Duration

	grants     map[rpc.HostID]ledgerGrant
	inFlight   int
	violations []string
}

var _ Selector = (*ClaimLedger)(nil)

// ledgerGrant records one outstanding grant with the boot incarnations of
// both parties at grant time.
type ledgerGrant struct {
	client      rpc.HostID
	clientEpoch rpc.Epoch
	hostEpoch   rpc.Epoch
	at          time.Duration
}

// NewClaimLedger wraps sel. The lease (0 = none) mirrors the selector's
// claim lease so expired grants are not reported as leaks.
func NewClaimLedger(sel Selector, cluster *core.Cluster, lease time.Duration) *ClaimLedger {
	return &ClaimLedger{
		inner:   sel,
		cluster: cluster,
		lease:   lease,
		grants:  make(map[rpc.HostID]ledgerGrant),
	}
}

// Register hooks the ledger's audit into the cluster's invariant checker.
func (l *ClaimLedger) Register(c *core.Cluster) {
	c.AddInvariantCheck(l.Check)
}

// Unwrap returns the audited selector.
func (l *ClaimLedger) Unwrap() Selector { return l.inner }

// Name implements Selector.
func (l *ClaimLedger) Name() string { return l.inner.Name() }

// Stats implements Selector.
func (l *ClaimLedger) Stats() Stats { return l.inner.Stats() }

func (l *ClaimLedger) violatef(format string, args ...any) {
	l.violations = append(l.violations, fmt.Sprintf(format, args...))
}

// live reports whether a recorded grant is still binding at now: both
// parties survive under their grant-time incarnations and the lease (if
// any) has not expired.
func (l *ClaimLedger) live(host rpc.HostID, g ledgerGrant, now time.Duration) bool {
	if l.cluster.HostDown(host) || l.cluster.HostEpoch(host) != g.hostEpoch {
		return false // target rebooted/down: its claim state is gone
	}
	if l.cluster.HostDown(g.client) || l.cluster.HostEpoch(g.client) != g.clientEpoch {
		return false // holder rebooted/down: nobody is left to release
	}
	if l.lease > 0 && now-g.at >= l.lease {
		return false // lease expired: the selector may re-grant
	}
	return true
}

// RequestHosts delegates and audits each grant.
func (l *ClaimLedger) RequestHosts(env *sim.Env, client rpc.HostID, n int) ([]rpc.HostID, error) {
	l.inFlight++
	hosts, err := l.inner.RequestHosts(env, client, n)
	l.inFlight--
	now := env.Now()
	for _, h := range hosts {
		if h == client {
			l.violatef("ledger: %s granted client %v to itself at %v", l.Name(), client, now)
		}
		if g, held := l.grants[h]; held && l.live(h, g, now) {
			l.violatef("ledger: %s double-claimed %v at %v: granted to %v while held by %v (since %v)",
				l.Name(), h, now, client, g.client, g.at)
		}
		l.grants[h] = ledgerGrant{
			client:      client,
			clientEpoch: l.cluster.HostEpoch(client),
			hostEpoch:   l.cluster.HostEpoch(h),
			at:          now,
		}
	}
	return hosts, err
}

// Release retires the caller's grants, then delegates. The ledger entry is
// dropped before the protocol runs: the server-side claim is freed at some
// point during the call, so a concurrent grant of the same host is legal the
// moment release is initiated — retiring afterwards would flag it as a
// double claim. A release by a non-holder (typically a client whose own
// grant was voided by the target's reboot, re-releasing out of caution)
// leaves the holder's grant recorded: the selector is expected to ignore
// it, and if it wrongly honours it the resulting re-grant trips the
// double-claim audit instead.
func (l *ClaimLedger) Release(env *sim.Env, client rpc.HostID, hosts []rpc.HostID) error {
	for _, h := range hosts {
		if g, held := l.grants[h]; held && g.client == client {
			delete(l.grants, h)
		}
	}
	return l.inner.Release(env, client, hosts)
}

// NotifyAvailability delegates.
func (l *ClaimLedger) NotifyAvailability(env *sim.Env, host rpc.HostID, available bool) error {
	return l.inner.NotifyAvailability(env, host, available)
}

// Check returns every audit violation so far; with endOfRun it also
// reports lost selection requests (a RequestHosts that never returned) and
// leaked grants (still live and binding at the end of the run).
func (l *ClaimLedger) Check(endOfRun bool) []string {
	out := append([]string(nil), l.violations...)
	if !endOfRun {
		return out
	}
	if l.inFlight != 0 {
		out = append(out, fmt.Sprintf("ledger: %s lost %d selection request(s): RequestHosts never returned", l.Name(), l.inFlight))
	}
	now := l.cluster.Sim().Now()
	hosts := make([]rpc.HostID, 0, len(l.grants))
	for h := range l.grants {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	for _, h := range hosts {
		if g := l.grants[h]; l.live(h, g, now) {
			out = append(out, fmt.Sprintf("ledger: %s leaked grant of %v to %v (granted at %v, never released)",
				l.Name(), h, g.client, g.at))
		}
	}
	return out
}

// Outstanding returns the number of recorded (not necessarily live)
// grants.
func (l *ClaimLedger) Outstanding() int { return len(l.grants) }
