// Package hostsel implements the host-selection architectures the thesis
// compares in Chapter 6:
//
//   - Central: a centralized server (Sprite's migd) that tracks idle hosts,
//     allocates them fairly, and revokes them when their users return.
//   - SharedFile: availability records kept in one file in the shared file
//     system, guarded by a file lock (Sprite's original design). Because
//     many hosts write the file, the FS disables client caching for it and
//     every access goes to the server — the cost that motivated migd.
//   - Probabilistic: MOSIX-style distributed state; each host gossips its
//     availability to a few random peers, and selection uses possibly-stale
//     local views, verified by a claim message (stale views show up as
//     conflicts).
//   - Multicast: stateless request/response; a requester multicasts a query
//     and takes the first responders (V/Theimer-Lantz style).
//
// All four implement Selector, so the comparison experiments (Tables E7/E8)
// swap them freely.
package hostsel

import (
	"errors"
	"time"

	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// ErrNoHosts is returned when no idle host is available.
var ErrNoHosts = errors.New("hostsel: no idle hosts available")

// Stats summarizes a selector's behaviour.
type Stats struct {
	Requests  uint64 // RequestHosts calls
	Granted   uint64 // hosts handed out
	Denied    uint64 // requests that got fewer hosts than asked (incl. zero)
	Conflicts uint64 // claims that failed due to stale information
	Messages  uint64 // selector-generated messages (updates, gossip, claims)
	Evictions uint64 // revocations triggered by owners returning
}

// Selector allocates idle hosts to clients.
type Selector interface {
	// Name identifies the architecture.
	Name() string
	// RequestHosts returns up to n idle hosts for the client host.
	RequestHosts(env *sim.Env, client rpc.HostID, n int) ([]rpc.HostID, error)
	// Release returns hosts to the pool.
	Release(env *sim.Env, client rpc.HostID, hosts []rpc.HostID) error
	// NotifyAvailability reports a host's availability transition (called
	// by the host's load daemon / user-session model).
	NotifyAvailability(env *sim.Env, host rpc.HostID, available bool) error
	// Stats returns the selector's counters.
	Stats() Stats
}

// availInfo is one host's availability as known to some view.
type availInfo struct {
	available bool
	idleSince time.Duration
	updatedAt time.Duration
}

// pickLongestIdle orders candidate hosts by longest idle time first, the
// heuristic Mutka & Livny's measurements justify: hosts idle a long time
// tend to stay idle.
func pickLongestIdle(cands []rpc.HostID, info map[rpc.HostID]availInfo, n int) []rpc.HostID {
	sorted := make([]rpc.HostID, len(cands))
	copy(sorted, cands)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0; j-- {
			a, b := info[sorted[j]], info[sorted[j-1]]
			if a.idleSince < b.idleSince || (a.idleSince == b.idleSince && sorted[j] < sorted[j-1]) {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			} else {
				break
			}
		}
	}
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}
