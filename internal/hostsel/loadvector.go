package hostsel

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sprite/internal/rpc"
)

// This file is the pure data-structure core of the MOSIX-style gossip
// selector: a bounded partial load vector with per-entry age. Everything
// here is deterministic and side-effect free — the protocol machinery in
// probabilistic.go layers RPC on top — so the merge/decay/hint semantics
// can be property-tested in isolation.

// VectorEntry is one host's row in a partial load vector: the load-daemon
// sample the gossip protocol spreads around, plus how stale it is.
type VectorEntry struct {
	Host rpc.HostID
	// Available mirrors the host's idle predicate (low load, no recent
	// keyboard input) at sample time.
	Available bool
	// Load is the host's recent CPU load average.
	Load float64
	// IdleSince is the virtual time of the host's last keyboard/mouse
	// input, the longest-idle selection signal.
	IdleSince time.Duration
	// FreePages is a free-memory proxy: pages not resident to any process.
	FreePages int
	// Epoch is the boot incarnation the sample was taken under. A higher
	// epoch always wins a merge: any sample from an earlier incarnation
	// describes state the reboot destroyed.
	Epoch rpc.Epoch
	// Age is how stale the sample is. A freshly taken sample has age zero;
	// age grows under Decay and travels with the entry through gossip.
	Age time.Duration
}

// fresher reports whether a carries strictly newer information than b for
// the same host: a later boot epoch beats anything, then a smaller age.
func fresher(a, b VectorEntry) bool {
	if a.Epoch != b.Epoch {
		return a.Epoch > b.Epoch
	}
	return a.Age < b.Age
}

// EvictHint says "stop treating this host as available": it was claimed,
// its user returned, or it rebooted. Hints ride on gossip conflicts and on
// ordinary RPC replies (the reply piggyback), so negative information
// spreads faster than the periodic gossip that planted the positive entry.
type EvictHint struct {
	Host  rpc.HostID
	Epoch rpc.Epoch
	Age   time.Duration
}

// LoadVector is a bounded, age-decayed partial view of the cluster: the
// per-host state of the gossip protocol. At fleet scale the bound keeps
// each host's view (and each gossip message) O(1) in the cluster size —
// the MOSIX argument for probabilistic information dissemination.
type LoadVector struct {
	bound   int
	entries map[rpc.HostID]VectorEntry
}

// NewLoadVector returns an empty vector holding at most bound entries
// (bound <= 0 means a small default).
func NewLoadVector(bound int) *LoadVector {
	if bound <= 0 {
		bound = 32
	}
	return &LoadVector{bound: bound, entries: make(map[rpc.HostID]VectorEntry)}
}

// Len returns the number of entries.
func (v *LoadVector) Len() int { return len(v.entries) }

// Bound returns the maximum number of entries.
func (v *LoadVector) Bound() int { return v.bound }

// Get returns the entry for host, if present.
func (v *LoadVector) Get(host rpc.HostID) (VectorEntry, bool) {
	e, ok := v.entries[host]
	return e, ok
}

// Put unconditionally installs e (the host's own self-sample path), then
// enforces the bound.
func (v *LoadVector) Put(e VectorEntry) {
	v.entries[e.Host] = e
	v.enforceBound()
}

// Update merges one gossiped entry: it is accepted only if the vector has
// no entry for the host or the incoming entry is strictly fresher (higher
// epoch, else lower age). Merging a vector into itself is therefore a
// no-op, and merging two identical batches in either order yields the same
// vector — the idempotence/commutativity the gossip protocol leans on.
func (v *LoadVector) Update(e VectorEntry) bool {
	if old, ok := v.entries[e.Host]; ok && !fresher(e, old) {
		return false
	}
	v.entries[e.Host] = e
	v.enforceBound()
	return true
}

// Merge applies a batch of entries via Update and returns how many were
// accepted.
func (v *LoadVector) Merge(batch []VectorEntry) int {
	n := 0
	for _, e := range batch {
		if v.Update(e) {
			n++
		}
	}
	return n
}

// Decay ages every entry by elapsed and evicts entries whose age exceeds
// staleAfter (if positive), returning the number evicted. Ages only ever
// grow under Decay; only a fresher sample resets them.
func (v *LoadVector) Decay(elapsed, staleAfter time.Duration) int {
	if elapsed < 0 {
		elapsed = 0
	}
	evicted := 0
	for h, e := range v.entries {
		e.Age += elapsed
		if staleAfter > 0 && e.Age > staleAfter {
			delete(v.entries, h)
			evicted++
			continue
		}
		v.entries[h] = e
	}
	return evicted
}

// ApplyHint processes an eviction hint. The hint wins — the entry is
// flipped to unavailable — unless the entry is from a strictly newer boot
// epoch. In particular a hint at the same epoch always beats a stale
// positive entry, whatever its age: negative information is cheap to act
// on (worst case a lost selection candidate) while stale positive
// information costs a misplaced claim.
func (v *LoadVector) ApplyHint(h EvictHint) bool {
	e, ok := v.entries[h.Host]
	if !ok {
		return false
	}
	if e.Epoch > h.Epoch {
		return false // entry postdates the incarnation the hint is about
	}
	if !e.Available && e.Epoch == h.Epoch {
		return false // nothing to retract
	}
	v.entries[h.Host] = VectorEntry{
		Host:      h.Host,
		Available: false,
		Epoch:     h.Epoch,
		Age:       h.Age,
	}
	return true
}

// AdvanceEpoch drops the entry for host if it predates epoch: a reboot
// invalidates every sample taken under an older incarnation.
func (v *LoadVector) AdvanceEpoch(host rpc.HostID, epoch rpc.Epoch) bool {
	if e, ok := v.entries[host]; ok && e.Epoch < epoch {
		delete(v.entries, host)
		return true
	}
	return false
}

// Remove drops the entry for host.
func (v *LoadVector) Remove(host rpc.HostID) { delete(v.entries, host) }

// Entries returns all entries ordered youngest first (ties: lower load,
// then longer idle, then lower host id) — the selection preference order.
func (v *LoadVector) Entries() []VectorEntry {
	out := make([]VectorEntry, 0, len(v.entries))
	for _, e := range v.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return entryLess(out[i], out[j]) })
	return out
}

// entryLess is the canonical entry order: youngest first, then least
// loaded, then longest idle (earlier last input), then host id.
func entryLess(a, b VectorEntry) bool {
	if a.Age != b.Age {
		return a.Age < b.Age
	}
	if a.Load != b.Load {
		return a.Load < b.Load
	}
	if a.IdleSince != b.IdleSince {
		return a.IdleSince < b.IdleSince
	}
	return a.Host < b.Host
}

// NewestHalf returns the ceil(n/2) youngest entries — the gossip payload.
// Spreading only the newest half is the MOSIX compromise: old entries have
// already made their rounds, and resending them would displace fresh
// information from peers' bounded vectors.
func (v *LoadVector) NewestHalf() []VectorEntry {
	all := v.Entries()
	n := (len(all) + 1) / 2
	return all[:n]
}

// enforceBound evicts the oldest entries (ties: higher host id) until the
// vector fits its bound.
func (v *LoadVector) enforceBound() {
	for len(v.entries) > v.bound {
		var victim rpc.HostID
		first := true
		var worst VectorEntry
		for h, e := range v.entries {
			if first || e.Age > worst.Age || (e.Age == worst.Age && h > victim) {
				victim, worst, first = h, e, false
			}
		}
		delete(v.entries, victim)
	}
}

// Snapshot renders the vector deterministically (sorted by host id) for
// the determinism regression tests and goldens.
func (v *LoadVector) Snapshot() string {
	hosts := make([]rpc.HostID, 0, len(v.entries))
	for h := range v.entries {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	var b strings.Builder
	for _, h := range hosts {
		e := v.entries[h]
		fmt.Fprintf(&b, "%v avail=%t load=%.2f idle=%v free=%d epoch=%d age=%v\n",
			e.Host, e.Available, e.Load, e.IdleSince, e.FreePages, e.Epoch, e.Age)
	}
	return b.String()
}
