package hostsel

import (
	"testing"

	"sprite/internal/metrics"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

func TestInstrumentedRecordsLatencyAndGrants(t *testing.T) {
	c := newCluster(t, 5)
	reg := metrics.New()
	sel := Instrument(NewCentral(c, rpc.HostID(1), DefaultCentralParams()), reg)
	if sel.Name() != "central" {
		t.Fatalf("name = %q", sel.Name())
	}
	c.Boot("boot", func(env *sim.Env) error {
		if err := warmup(env); err != nil {
			return err
		}
		if err := announceAll(env, c, sel); err != nil {
			return err
		}
		client := c.Workstation(0).Host()
		hosts, err := sel.RequestHosts(env, client, 2)
		if err != nil {
			return err
		}
		if err := sel.Release(env, client, hosts); err != nil {
			return err
		}
		// Ask for far more than exists: counted as a denial, not an error.
		if _, err := sel.RequestHosts(env, client, 64); err != nil && err != ErrNoHosts {
			return err
		}
		return nil
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("hostsel.central.requests").Value(); got != 2 {
		t.Fatalf("requests = %d", got)
	}
	if got := reg.Counter("hostsel.central.granted").Value(); got < 2 {
		t.Fatalf("granted = %d", got)
	}
	if got := reg.Counter("hostsel.central.denied").Value(); got != 1 {
		t.Fatalf("denied = %d", got)
	}
	rt := reg.Timing("hostsel.central.request")
	if rt.N() != 2 {
		t.Fatalf("request timings = %d", rt.N())
	}
	// The central server costs RPC round trips: selection latency must be
	// visible virtual time, not zero.
	if rt.Sum() <= 0 {
		t.Fatalf("request latency sum = %v", rt.Sum())
	}
	if n := reg.Timing("hostsel.central.notify").N(); n != 5 {
		t.Fatalf("notify timings = %d", n)
	}
}

func TestInstrumentNilRegistryIsIdentity(t *testing.T) {
	c := newCluster(t, 2)
	inner := NewMulticast(c)
	if got := Instrument(inner, nil); got != Selector(inner) {
		t.Fatal("nil registry must return the selector unchanged")
	}
	reg := metrics.New()
	wrapped := Instrument(inner, reg)
	iw, ok := wrapped.(*Instrumented)
	if !ok || iw.Unwrap() != Selector(inner) {
		t.Fatal("Unwrap must return the inner selector")
	}
}
