// External test package: internal/fault imports internal/hostsel (the
// fuzzer drives the gossip selector), so tests that use the fault plane must
// live outside package hostsel to avoid an import cycle.
package hostsel_test

import (
	"errors"
	"testing"
	"time"

	"sprite/internal/core"
	"sprite/internal/fault"
	"sprite/internal/hostsel"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// newCluster builds a cluster where every workstation has been quiet long
// enough to count as idle.
func newCluster(t *testing.T, workstations int) *core.Cluster {
	t.Helper()
	c, err := core.NewCluster(core.Options{Workstations: workstations, FileServers: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// warmup advances past the idle-input age so quiet hosts are available.
func warmup(env *sim.Env) error { return env.Sleep(time.Minute) }

// announceAll pushes every workstation's availability into the selector.
func announceAll(env *sim.Env, c *core.Cluster, sel hostsel.Selector) error {
	for _, k := range c.Workstations() {
		if err := sel.NotifyAvailability(env, k.Host(), k.Available(env.Now())); err != nil {
			return err
		}
	}
	return nil
}

// TestCentralUnderFaultPlane drives the migd crash/restart scenario through
// the fault plane instead of poking endpoints directly: first a lossy
// message window that the RPC retry layer must absorb (selection still
// succeeds), then a fail-stop of migd's host (selection fails with
// ErrHostDown), then restart plus re-announcement (service resumes with
// empty soft state). This is the same restartability argument as
// TestCentralCrashAndRestart, but exercised end to end through the
// injection hooks the fuzzer uses.
func TestCentralUnderFaultPlane(t *testing.T) {
	c := newCluster(t, 4)
	migd := rpc.HostID(1)
	sel := hostsel.NewCentral(c, migd, hostsel.DefaultCentralParams())
	plane := fault.NewPlane(c, 42)
	defer plane.Detach()
	c.Boot("boot", func(env *sim.Env) error {
		if err := warmup(env); err != nil {
			return err
		}
		if err := announceAll(env, c, sel); err != nil {
			return err
		}
		client := c.Workstation(0).Host()

		// Lossy window around migd: a third of the messages touching its
		// host vanish, and the retry/backoff layer has to carry selection
		// through anyway.
		plane.DropMessages(env.Now(), env.Now()+2*time.Second, 0.33, migd)
		hosts, err := sel.RequestHosts(env, client, 1)
		if err != nil {
			return err
		}
		if len(hosts) != 1 {
			t.Fatalf("grant under message loss = %v, want 1 host", hosts)
		}
		if err := sel.Release(env, client, hosts); err != nil {
			return err
		}
		if err := env.Sleep(2 * time.Second); err != nil { // window closes
			return err
		}
		if plane.Injected() == 0 {
			t.Error("drop window injected nothing; fault plane not exercised")
		}

		// migd's host fail-stops.
		plane.CrashHost(env, migd)
		if _, err := sel.RequestHosts(env, client, 1); !errors.Is(err, rpc.ErrHostDown) {
			t.Errorf("request during crash err = %v, want ErrHostDown", err)
		}

		// Restart: soft state is gone until hosts re-announce.
		plane.RestartHost(env, migd)
		sel.Reset()
		got, err := sel.RequestHosts(env, client, 1)
		if err != nil {
			return err
		}
		if len(got) != 0 {
			t.Errorf("restarted migd granted %v before any announcements", got)
		}
		if err := announceAll(env, c, sel); err != nil {
			return err
		}
		got, err = sel.RequestHosts(env, client, 2)
		if err != nil {
			return err
		}
		if len(got) != 2 {
			t.Errorf("post-restart grant = %v, want 2 hosts", got)
		}
		return sel.Release(env, client, got)
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if v := c.CheckInvariants(true); len(v) != 0 {
		t.Errorf("invariants violated: %v", v)
	}
}
