package hostsel

import (
	"math/rand"
	"testing"
	"time"

	"sprite/internal/rpc"
)

// randEntry draws an arbitrary vector entry from a bounded host universe.
func randEntry(rng *rand.Rand, hosts int) VectorEntry {
	return VectorEntry{
		Host:      rpc.HostID(1 + rng.Intn(hosts)),
		Available: rng.Intn(2) == 0,
		Load:      float64(rng.Intn(800)) / 100,
		IdleSince: time.Duration(rng.Intn(600)) * time.Second,
		FreePages: rng.Intn(4096),
		Epoch:     rpc.Epoch(1 + rng.Intn(3)),
		Age:       time.Duration(rng.Intn(10000)) * time.Millisecond,
	}
}

// TestMergeCommutativeIdempotent: merging identical batches is idempotent,
// and merging two batches in either order yields the same vector.
func TestMergeCommutativeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a := make([]VectorEntry, rng.Intn(12))
		b := make([]VectorEntry, rng.Intn(12))
		for i := range a {
			a[i] = randEntry(rng, 8)
		}
		for i := range b {
			b[i] = randEntry(rng, 8)
		}
		v1 := NewLoadVector(16)
		v1.Merge(a)
		snap := v1.Snapshot()
		v1.Merge(a) // idempotent: same batch again changes nothing
		if got := v1.Snapshot(); got != snap {
			t.Fatalf("trial %d: merge not idempotent:\nbefore:\n%s\nafter:\n%s", trial, snap, got)
		}

		ab := NewLoadVector(16)
		ab.Merge(a)
		ab.Merge(b)
		ba := NewLoadVector(16)
		ba.Merge(b)
		ba.Merge(a)
		// Batches may contain several samples for one host; keep only
		// trials where per-host winners are unambiguous (distinct
		// freshness), which the protocol guarantees by construction —
		// each host stamps its own samples with strictly growing epochs
		// or strictly shrinking age.
		if unambiguous(append(append([]VectorEntry(nil), a...), b...)) {
			if ab.Snapshot() != ba.Snapshot() {
				t.Fatalf("trial %d: merge not commutative:\na,b:\n%s\nb,a:\n%s", trial, ab.Snapshot(), ba.Snapshot())
			}
		}
	}
}

// unambiguous reports whether no two entries for the same host tie on
// (epoch, age) with different payloads — the only case where merge order
// could matter.
func unambiguous(entries []VectorEntry) bool {
	type key struct {
		h rpc.HostID
		e rpc.Epoch
		a time.Duration
	}
	seen := make(map[key]VectorEntry)
	for _, e := range entries {
		k := key{e.Host, e.Epoch, e.Age}
		if prev, ok := seen[k]; ok && prev != e {
			return false
		}
		seen[k] = e
	}
	return true
}

// TestDecayAgesMonotone: decay only ever grows ages, and never below the
// elapsed amount.
func TestDecayAgesMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := NewLoadVector(32)
	for i := 0; i < 20; i++ {
		v.Update(randEntry(rng, 20))
	}
	for step := 0; step < 50; step++ {
		before := make(map[rpc.HostID]time.Duration)
		for _, e := range v.Entries() {
			before[e.Host] = e.Age
		}
		elapsed := time.Duration(rng.Intn(2000)) * time.Millisecond
		v.Decay(elapsed, 0) // no staleness eviction: pure aging
		for _, e := range v.Entries() {
			want := before[e.Host] + elapsed
			if e.Age != want {
				t.Fatalf("step %d: host %v age %v, want %v", step, e.Host, e.Age, want)
			}
		}
	}
}

// TestDecayEvictsStale: entries whose age passes the bound disappear.
func TestDecayEvictsStale(t *testing.T) {
	v := NewLoadVector(8)
	v.Update(VectorEntry{Host: 1, Available: true, Epoch: 1, Age: 0})
	v.Update(VectorEntry{Host: 2, Available: true, Epoch: 1, Age: 9 * time.Second})
	if n := v.Decay(2*time.Second, 10*time.Second); n != 1 {
		t.Fatalf("evicted %d entries, want 1", n)
	}
	if _, ok := v.Get(2); ok {
		t.Fatal("stale entry survived decay")
	}
	if e, ok := v.Get(1); !ok || e.Age != 2*time.Second {
		t.Fatalf("young entry: %+v ok=%t, want age 2s", e, ok)
	}
}

// TestVectorBoundNeverExceeded: no operation sequence grows the vector
// past its bound.
func TestVectorBoundNeverExceeded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const bound = 8
	v := NewLoadVector(bound)
	for i := 0; i < 2000; i++ {
		switch rng.Intn(4) {
		case 0:
			v.Update(randEntry(rng, 64))
		case 1:
			v.Put(randEntry(rng, 64))
		case 2:
			batch := make([]VectorEntry, rng.Intn(10))
			for j := range batch {
				batch[j] = randEntry(rng, 64)
			}
			v.Merge(batch)
		case 3:
			v.Decay(time.Duration(rng.Intn(500))*time.Millisecond, 8*time.Second)
		}
		if v.Len() > bound {
			t.Fatalf("op %d: vector has %d entries, bound %d", i, v.Len(), bound)
		}
	}
}

// TestEvictionHintBeatsStalePositive: an eviction hint at the same (or a
// later) epoch retracts a positive entry no matter how young the entry
// claims to be.
func TestEvictionHintBeatsStalePositive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		e := randEntry(rng, 4)
		e.Available = true
		v := NewLoadVector(8)
		v.Put(e)
		h := EvictHint{Host: e.Host, Epoch: e.Epoch + rpc.Epoch(rng.Intn(2)), Age: time.Duration(rng.Intn(5000)) * time.Millisecond}
		if !v.ApplyHint(h) {
			t.Fatalf("trial %d: hint %+v did not beat positive entry %+v", trial, h, e)
		}
		if got, _ := v.Get(e.Host); got.Available {
			t.Fatalf("trial %d: entry still positive after hint: %+v", trial, got)
		}
		// And the converse: an entry from a strictly newer boot epoch is
		// newer truth than the hint and must survive.
		v2 := NewLoadVector(8)
		newer := e
		newer.Epoch = h.Epoch + 1
		v2.Put(newer)
		if v2.ApplyHint(h) {
			t.Fatalf("trial %d: hint about epoch %d retracted entry from epoch %d", trial, h.Epoch, newer.Epoch)
		}
	}
}

// TestEpochAdvanceInvalidatesOlderEntries: a reboot invalidates every
// sample taken under an earlier incarnation, via merge and via
// AdvanceEpoch.
func TestEpochAdvanceInvalidatesOlderEntries(t *testing.T) {
	v := NewLoadVector(8)
	old := VectorEntry{Host: 3, Available: true, Epoch: 1, Age: time.Millisecond}
	v.Put(old)

	// A very old (high-age) sample from a newer epoch still beats a young
	// sample from the previous incarnation.
	reborn := VectorEntry{Host: 3, Available: false, Epoch: 2, Age: time.Hour}
	if !v.Update(reborn) {
		t.Fatal("newer-epoch entry rejected")
	}
	if e, _ := v.Get(3); e.Epoch != 2 || e.Available {
		t.Fatalf("entry after epoch advance: %+v, want epoch 2 unavailable", e)
	}
	// And the pre-reboot sample can never displace it again.
	if v.Update(old) {
		t.Fatal("older-epoch entry re-accepted after epoch advance")
	}

	// AdvanceEpoch drops stale-incarnation entries outright.
	v2 := NewLoadVector(8)
	v2.Put(old)
	if !v2.AdvanceEpoch(3, 2) {
		t.Fatal("AdvanceEpoch did not drop the older entry")
	}
	if _, ok := v2.Get(3); ok {
		t.Fatal("older-epoch entry survived AdvanceEpoch")
	}
	if v2.AdvanceEpoch(3, 2) {
		t.Fatal("AdvanceEpoch reported a drop on an empty slot")
	}
}

// TestNewestHalfYoungestFirst: the gossip payload is the youngest ceil(n/2)
// entries in canonical order.
func TestNewestHalfYoungestFirst(t *testing.T) {
	v := NewLoadVector(16)
	for i := 1; i <= 5; i++ {
		v.Put(VectorEntry{Host: rpc.HostID(i), Epoch: 1, Age: time.Duration(i) * time.Second})
	}
	half := v.NewestHalf()
	if len(half) != 3 {
		t.Fatalf("newest half has %d entries, want 3", len(half))
	}
	for i, e := range half {
		if e.Host != rpc.HostID(i+1) {
			t.Fatalf("newest half[%d] = %v, want host%d", i, e.Host, i+1)
		}
	}
}
