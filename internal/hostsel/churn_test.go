// Churn scenario suite: every selector architecture is exercised under
// reboot storms, flapping availability, and network partitions, with the
// ClaimLedger registered into Cluster.CheckInvariants so the no-double-claim
// and no-lost-request audits run through the same invariant machinery as the
// kernel checks.
//
// This lives in an external test package because internal/fault now imports
// internal/hostsel (the fuzzer drives the gossip selector); an in-package
// test importing fault would be an import cycle.
package hostsel_test

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sprite/internal/core"
	"sprite/internal/fault"
	"sprite/internal/hostsel"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

const (
	churnWorkstations = 16
	churnRequesters   = 3 // workstation indices 0..2 issue requests
	churnFaultBase    = 8 // workstation indices >= this absorb the faults
)

// tolerableErr mirrors the selector protocols' own churn tolerance: a host
// that is down, unreachable, or freshly rebooted mid-protocol is expected
// weather, not a test failure.
func tolerableErr(err error) bool {
	for _, e := range []error{rpc.ErrHostDown, rpc.ErrTimeout, rpc.ErrNoService, rpc.ErrNoHost, hostsel.ErrNoHosts} {
		if errors.Is(err, e) {
			return true
		}
	}
	return false
}

// churnBuild constructs one selector architecture on c and reports the claim
// lease the ledger should honour (0 = grants never expire).
type churnBuild struct {
	name  string
	build func(t *testing.T, c *core.Cluster) (hostsel.Selector, time.Duration)
}

func churnBuilds() []churnBuild {
	return []churnBuild{
		{"central", func(t *testing.T, c *core.Cluster) (hostsel.Selector, time.Duration) {
			return hostsel.NewCentral(c, rpc.HostID(1), hostsel.DefaultCentralParams()), 0
		}},
		{"sharedfile", func(t *testing.T, c *core.Cluster) (hostsel.Selector, time.Duration) {
			sf, err := hostsel.NewSharedFile(c, "")
			if err != nil {
				t.Fatal(err)
			}
			return sf, 0
		}},
		{"gossip", func(t *testing.T, c *core.Cluster) (hostsel.Selector, time.Duration) {
			p := hostsel.DefaultProbabilisticParams()
			return hostsel.NewProbabilistic(c, p), p.ClaimLease
		}},
		{"multicast", func(t *testing.T, c *core.Cluster) (hostsel.Selector, time.Duration) {
			return hostsel.NewMulticast(c), 0
		}},
	}
}

// faultHosts returns the host ids of the workstations designated to absorb
// reboots, flaps, and partitions.
func faultHosts(c *core.Cluster) []rpc.HostID {
	var hosts []rpc.HostID
	for i := churnFaultBase; i < churnWorkstations; i++ {
		hosts = append(hosts, c.Workstation(i).Host())
	}
	return hosts
}

// runChurn builds a 16-workstation cluster, wires one selector wrapped in a
// ClaimLedger, lets inject schedule the churn, and drives announcer and
// requester activities through it. It returns a deterministic digest of the
// selector's end state; any invariant violation fails the test.
func runChurn(t *testing.T, cb churnBuild, seed int64, inject func(c *core.Cluster, plane *fault.Plane, sel hostsel.Selector)) string {
	t.Helper()
	c, err := core.NewCluster(core.Options{Workstations: churnWorkstations, FileServers: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	sel, lease := cb.build(t, c)
	ledger := hostsel.NewClaimLedger(sel, c, lease)
	ledger.Register(c)
	plane := fault.NewPlane(c, seed^0x5eed)
	inject(c, plane, sel)

	warmup := time.Minute // hosts must be idle >1min to count available

	// The load-daemon stand-in: periodically push every host's availability
	// into the selector, tolerating hosts that are down mid-announcement.
	c.Boot("announce", func(env *sim.Env) error {
		if err := env.Sleep(warmup); err != nil {
			return err
		}
		for round := 0; round < 30; round++ {
			for _, k := range c.Workstations() {
				if c.HostDown(k.Host()) {
					continue
				}
				if err := sel.NotifyAvailability(env, k.Host(), k.Available(env.Now())); err != nil && !tolerableErr(err) {
					return err
				}
			}
			if err := env.Sleep(5 * time.Second); err != nil {
				return err
			}
		}
		return nil
	})

	if g, ok := sel.(*hostsel.Probabilistic); ok {
		c.Boot("gossipd", func(env *sim.Env) error {
			if err := env.Sleep(warmup); err != nil {
				return err
			}
			g.StartDaemons(env)
			if err := env.Sleep(150 * time.Second); err != nil {
				return err
			}
			g.Stop()
			return nil
		})
	}

	for i := 0; i < churnRequesters; i++ {
		i := i
		client := c.Workstation(i).Host()
		c.Boot(fmt.Sprintf("req%d", i), func(env *sim.Env) error {
			if err := env.Sleep(warmup + time.Duration(i)*300*time.Millisecond); err != nil {
				return err
			}
			for iter := 0; iter < 80; iter++ {
				hosts, err := ledger.RequestHosts(env, client, 2)
				if err != nil && !tolerableErr(err) {
					return fmt.Errorf("req%d iter %d: %w", i, iter, err)
				}
				if err := env.Sleep(500 * time.Millisecond); err != nil {
					return err
				}
				if len(hosts) > 0 {
					if err := ledger.Release(env, client, hosts); err != nil && !tolerableErr(err) {
						return fmt.Errorf("req%d iter %d release: %w", i, iter, err)
					}
				}
				if err := env.Sleep(200 * time.Millisecond); err != nil {
					return err
				}
			}
			return nil
		})
	}

	if err := c.Run(0); err != nil {
		t.Fatalf("%s: %v", cb.name, err)
	}
	if viol := c.CheckInvariants(true); len(viol) > 0 {
		for _, v := range viol {
			t.Errorf("%s: invariant: %s", cb.name, v)
		}
	}
	st := sel.Stats()
	digest := fmt.Sprintf("%s stats: req=%d granted=%d denied=%d conflicts=%d msgs=%d evictions=%d outstanding=%d\n",
		cb.name, st.Requests, st.Granted, st.Denied, st.Conflicts, st.Messages, st.Evictions, ledger.Outstanding())
	if g, ok := sel.(*hostsel.Probabilistic); ok {
		gs := g.Gossip()
		digest += fmt.Sprintf("gossip: rounds=%d sent=%d unreachable=%d entries=%d merged=%d bytes=%d hintsQ=%d hintsA=%d misplaced=%d staleEvicted=%d\n",
			gs.Rounds, gs.Sent, gs.Unreachable, gs.EntriesSent, gs.Merged, gs.Bytes, gs.HintsQueued, gs.HintsApplied, gs.Misplaced, gs.StaleEvicted)
		digest += g.ViewSnapshot()
	}
	return digest
}

// --- the three churn shapes ---

// rebootStorm power-cycles the fault hosts in two staggered waves.
func rebootStorm(c *core.Cluster, plane *fault.Plane, _ hostsel.Selector) {
	for i, h := range faultHosts(c) {
		plane.ScheduleReboot(h, 70*time.Second+time.Duration(i)*4*time.Second)
		plane.ScheduleReboot(h, 110*time.Second+time.Duration(i)*5*time.Second)
	}
}

// flapping drives the fault hosts through rapid availability transitions:
// simulated user input plus explicit availability retractions, then fresh
// announcements, without any host actually going down.
func flapping(c *core.Cluster, plane *fault.Plane, sel hostsel.Selector) {
	c.Boot("flapper", func(env *sim.Env) error {
		if err := env.Sleep(70 * time.Second); err != nil {
			return err
		}
		for round := 0; round < 20; round++ {
			for i := churnFaultBase; i < churnWorkstations; i++ {
				k := c.Workstation(i)
				if (round+i)%2 == 0 {
					k.NoteInput(env.Now()) // user touches the keyboard
					if err := sel.NotifyAvailability(env, k.Host(), false); err != nil && !tolerableErr(err) {
						return err
					}
				} else if err := sel.NotifyAvailability(env, k.Host(), true); err != nil && !tolerableErr(err) {
					return err
				}
			}
			if err := env.Sleep(4 * time.Second); err != nil {
				return err
			}
		}
		return nil
	})
}

// partitions isolates half the fault hosts in one window and the other half
// in a later one; requester and server hosts stay connected throughout.
func partitions(c *core.Cluster, plane *fault.Plane, _ hostsel.Selector) {
	hosts := faultHosts(c)
	half := len(hosts) / 2
	plane.Partition(70*time.Second, 100*time.Second, hosts[:half]...)
	plane.Partition(115*time.Second, 145*time.Second, hosts[half:]...)
}

func TestChurnRebootStormAllSelectors(t *testing.T) {
	for _, cb := range churnBuilds() {
		cb := cb
		t.Run(cb.name, func(t *testing.T) {
			digest := runChurn(t, cb, 42, rebootStorm)
			if st := parseGranted(digest); st == 0 {
				t.Errorf("%s: no grants at all under reboot storm:\n%s", cb.name, digest)
			}
		})
	}
}

func TestChurnFlappingAllSelectors(t *testing.T) {
	for _, cb := range churnBuilds() {
		cb := cb
		t.Run(cb.name, func(t *testing.T) {
			digest := runChurn(t, cb, 43, flapping)
			if st := parseGranted(digest); st == 0 {
				t.Errorf("%s: no grants at all under flapping:\n%s", cb.name, digest)
			}
		})
	}
}

func TestChurnPartitionAllSelectors(t *testing.T) {
	for _, cb := range churnBuilds() {
		cb := cb
		t.Run(cb.name, func(t *testing.T) {
			digest := runChurn(t, cb, 44, partitions)
			if st := parseGranted(digest); st == 0 {
				t.Errorf("%s: no grants at all under partitions:\n%s", cb.name, digest)
			}
		})
	}
}

// parseGranted pulls the granted count back out of a digest line.
func parseGranted(digest string) int {
	var req, granted int
	var name string
	fmt.Sscanf(digest, "%s stats: req=%d granted=%d", &name, &req, &granted)
	return granted
}

// TestChurnDeterminism: the same seed must reproduce byte-identical
// gossip-view and selector-stats digests — the whole churn run, faults and
// all, is a pure function of the seed.
func TestChurnDeterminism(t *testing.T) {
	for _, name := range []string{"gossip", "central"} {
		var cb churnBuild
		for _, b := range churnBuilds() {
			if b.name == name {
				cb = b
			}
		}
		first := runChurn(t, cb, 42, rebootStorm)
		second := runChurn(t, cb, 42, rebootStorm)
		if first != second {
			t.Errorf("%s: same-seed churn runs diverged:\n--- run 1:\n%s\n--- run 2:\n%s", name, first, second)
		}
	}
}

// TestChurnGolden pins the full gossip digest for one churn scenario, so any
// change to the protocol's message pattern, decay schedule, or selection
// order shows up as a reviewed diff. Regenerate with -update.
func TestChurnGolden(t *testing.T) {
	var gossip churnBuild
	for _, b := range churnBuilds() {
		if b.name == "gossip" {
			gossip = b
		}
	}
	digest := runChurn(t, gossip, 42, rebootStorm)
	path := filepath.Join("testdata", "churn_reboot_gossip.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(digest), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if digest != string(want) {
		t.Errorf("gossip churn digest diverged from golden:\n--- got:\n%s\n--- want:\n%s", digest, want)
	}
}

// TestRebootReleasesStaleClaim is the regression test for the claim-leak
// audit: a claim held on a host that crashes and reboots must be released by
// the epoch guard when the host comes back — not leaked until the end of
// time. Client A claims host H, H power-cycles, and client B must then be
// able to claim H; A's release of its dead grant is a harmless no-op.
func TestRebootReleasesStaleClaim(t *testing.T) {
	c, err := core.NewCluster(core.Options{Workstations: 3, FileServers: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	params := hostsel.DefaultProbabilisticParams()
	params.Fanout = 8 // full fanout: one announcement reaches every view
	sel := hostsel.NewProbabilistic(c, params)
	ledger := hostsel.NewClaimLedger(sel, c, params.ClaimLease)
	ledger.Register(c)
	a := c.Workstation(0).Host()
	target := c.Workstation(1).Host()
	b := c.Workstation(2).Host()
	c.Boot("boot", func(env *sim.Env) error {
		if err := env.Sleep(time.Minute); err != nil {
			return err
		}
		// Only the target announces: both clients' views hold exactly one
		// candidate, so grants are forced onto it.
		if err := sel.NotifyAvailability(env, target, true); err != nil {
			return err
		}
		got, err := ledger.RequestHosts(env, a, 1)
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0] != target {
			t.Fatalf("A's claim: got %v, want [%v]", got, target)
		}
		if oc := sel.OutstandingClaims(env.Now()); oc[target] != a {
			t.Fatalf("outstanding claims %v, want %v held by %v", oc, target, a)
		}

		// H power-cycles while A still holds it: the claim state recorded
		// under the old boot epoch is now stale.
		c.Reboot(env, target)
		if err := env.Sleep(time.Minute); err != nil { // H idles back to available
			return err
		}
		if err := sel.NotifyAvailability(env, target, true); err != nil {
			return err
		}

		// B's claim must succeed: the epoch guard releases the stale claim
		// rather than leaking it until the lease runs out.
		got, err = ledger.RequestHosts(env, b, 1)
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0] != target {
			t.Fatalf("B's claim after reboot: got %v, want [%v]", got, target)
		}
		if oc := sel.OutstandingClaims(env.Now()); oc[target] != b {
			t.Fatalf("outstanding claims %v, want %v held by %v", oc, target, b)
		}

		// A releasing its dead grant is a no-op, not an error, and must not
		// disturb B's live claim.
		if err := ledger.Release(env, a, []rpc.HostID{target}); err != nil {
			return err
		}
		if oc := sel.OutstandingClaims(env.Now()); oc[target] != b {
			t.Fatalf("after A's stale release: outstanding %v, want %v still held by %v", oc, target, b)
		}
		if err := ledger.Release(env, b, []rpc.HostID{target}); err != nil {
			return err
		}
		if oc := sel.OutstandingClaims(env.Now()); len(oc) != 0 {
			t.Fatalf("claims leaked at end: %v", oc)
		}
		return nil
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if viol := c.CheckInvariants(true); len(viol) > 0 {
		t.Fatalf("invariants: %v", viol)
	}
}
