// Regression test for the dead-claimant scrub: a leased claim must be
// released not only when the claimed host reboots (the epoch guard) but
// also when the CLAIMING host dies mid-claim — its memory, and with it the
// intent to release, is gone. Before the scrub this leak was visible only
// to the end-of-run ledger audit.
package hostsel_test

import (
	"testing"
	"time"

	"sprite/internal/core"
	"sprite/internal/hostsel"
	"sprite/internal/sim"
)

func TestReapDeadClaimantReleasesClaim(t *testing.T) {
	c, err := core.NewCluster(core.Options{Workstations: 3, FileServers: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	c.SetDeferredReap(true)
	params := hostsel.DefaultProbabilisticParams()
	params.Fanout = 8
	params.ClaimLease = 0 // no lease: only the scrub can release the claim
	sel := hostsel.NewProbabilistic(c, params)
	ledger := hostsel.NewClaimLedger(sel, c, params.ClaimLease)
	ledger.Register(c)
	a := c.Workstation(0).Host()
	target := c.Workstation(1).Host()
	b := c.Workstation(2).Host()
	c.Boot("boot", func(env *sim.Env) error {
		if err := env.Sleep(time.Minute); err != nil {
			return err
		}
		if err := sel.NotifyAvailability(env, target, true); err != nil {
			return err
		}
		got, err := ledger.RequestHosts(env, a, 1)
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0] != target {
			t.Fatalf("A's claim: got %v, want [%v]", got, target)
		}

		// A dies holding the claim. The target is fine — only the claimant
		// is gone, so the epoch guard on the *owner's* incarnation never
		// fires and, with no lease, the claim would leak forever.
		aEpoch := c.HostEpoch(a)
		c.CrashHost(env, a)
		if oc := sel.OutstandingClaims(env.Now()); oc[target] != a {
			t.Fatalf("pre-reap claims %v, want %v still held by dead %v", oc, target, a)
		}

		// Detection: the death is reaped cluster-wide; the reap hook scrubs
		// every claim held by A's dead incarnation.
		c.ReapDeadHost(env, a, aEpoch)
		if oc := sel.OutstandingClaims(env.Now()); len(oc) != 0 {
			t.Fatalf("post-reap claims %v, want none", oc)
		}

		// The freed host is immediately grantable to B.
		if err := env.Sleep(time.Minute); err != nil {
			return err
		}
		if err := sel.NotifyAvailability(env, target, true); err != nil {
			return err
		}
		got, err = ledger.RequestHosts(env, b, 1)
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0] != target {
			t.Fatalf("B's claim after reap: got %v, want [%v]", got, target)
		}

		// A's next incarnation re-claiming must not be scrubbed by a late
		// (idempotent) re-reap of the old epoch.
		if err := ledger.Release(env, b, got); err != nil {
			return err
		}
		c.RestartHost(env, a)
		if err := env.Sleep(time.Minute); err != nil {
			return err
		}
		if err := sel.NotifyAvailability(env, target, true); err != nil {
			return err
		}
		got, err = ledger.RequestHosts(env, a, 1)
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0] != target {
			t.Fatalf("A's reclaim after restart: got %v, want [%v]", got, target)
		}
		c.ReapDeadHost(env, a, aEpoch) // stale epoch: must be a no-op
		if oc := sel.OutstandingClaims(env.Now()); oc[target] != a {
			t.Fatalf("claims after stale re-reap %v, want %v held by %v", oc, target, a)
		}
		ledger.Release(env, a, got)
		c.Stop()
		return nil
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if msgs := c.CheckInvariants(true); len(msgs) != 0 {
		t.Fatalf("invariants: %v", msgs)
	}
}
