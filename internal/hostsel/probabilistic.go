package hostsel

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"sprite/internal/core"
	"sprite/internal/metrics"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// ProbabilisticParams configures the MOSIX-style gossip selector.
type ProbabilisticParams struct {
	// Fanout is how many random peers receive each gossip message.
	Fanout int
	// Interval is the periodic gossip period (MOSIX used one second).
	Interval time.Duration
	// StaleAfter ages out view entries older than this.
	StaleAfter time.Duration
	// VectorBound caps each host's partial load vector, keeping views and
	// gossip messages O(1) in the cluster size.
	VectorBound int
	// HintBound caps the eviction hints piggybacked on one RPC reply.
	HintBound int
	// ClaimLease bounds how long a claim can sit unreleased before a new
	// claimer may take the host anyway. It is the backstop for claims whose
	// holder became unreachable without the host itself rebooting (a reboot
	// already voids claims through the epoch guard).
	ClaimLease time.Duration
}

// DefaultProbabilisticParams mirrors the MOSIX description: one-second
// gossip of a small bounded load vector to a few random peers.
func DefaultProbabilisticParams() ProbabilisticParams {
	return ProbabilisticParams{
		Fanout:      3,
		Interval:    time.Second,
		StaleAfter:  10 * time.Second,
		VectorBound: 32,
		HintBound:   4,
		ClaimLease:  time.Minute,
	}
}

// GossipStats are the gossip-specific counters on top of the common Stats.
type GossipStats struct {
	Rounds       uint64 // gossip rounds executed
	Sent         uint64 // gossip messages sent
	Unreachable  uint64 // gossip sends lost to down/partitioned peers
	EntriesSent  uint64 // vector entries shipped
	Merged       uint64 // entries accepted into some view
	Bytes        uint64 // gossip payload bytes on the wire
	HintsQueued  uint64 // eviction hints queued for piggybacking
	HintsApplied uint64 // piggybacked hints that retracted a view entry
	Misplaced    uint64 // claims that failed because the view was stale
	StaleEvicted uint64 // view entries aged out by decay
}

// Probabilistic is the distributed, gossip-based architecture: each host
// maintains a bounded partial load vector (load, idle time, free memory,
// boot epoch) with per-entry age. Every gossip round a host refreshes its
// own row and merges the newest half of its vector into a few random
// peers' views; entries age out by decay, reboots invalidate older
// incarnations through the epoch guard, and eviction hints piggybacked on
// ordinary RPC replies retract stale positive entries between rounds.
// Selection reads the local vector youngest-entry first and verifies each
// pick with a claim message; staleness shows up as misplaced claims
// (hostsel.gossip.misplace) rather than as double allocations.
type Probabilistic struct {
	cluster *core.Cluster
	params  ProbabilisticParams

	hosts  []rpc.HostID
	views  map[rpc.HostID]*LoadVector
	viewAt map[rpc.HostID]time.Duration
	claims map[rpc.HostID]claimRec
	hints  map[rpc.HostID][]EvictHint

	stopped  bool
	stats    Stats
	gstats   GossipStats
	hintSink func(subject rpc.HostID)

	misplaceC *metrics.Counter
	ageT      *metrics.Timing
	hintC     *metrics.Counter
	evictC    *metrics.Counter
}

var _ Selector = (*Probabilistic)(nil)

// claimRec is one held claim, bound to the boot incarnation that granted
// it: a claim taken under an older epoch died with the reboot. The
// claimant's own boot epoch is recorded too, so a claim whose holder dies
// mid-claim can be scrubbed when the death is reaped (ScrubDeadClaimant)
// without voiding a claim re-taken by the holder's next incarnation.
type claimRec struct {
	client      rpc.HostID
	epoch       rpc.Epoch // owner's boot epoch when granted
	clientEpoch rpc.Epoch // claimant's boot epoch when granted
	at          time.Duration
}

// Wire sizes for the gossip protocol (modeled, like every argSize here).
const (
	gossipBaseBytes  = 16
	gossipEntryBytes = 40
	hintBytes        = 12
)

type gossipArgs struct {
	From    rpc.HostID
	Entries []VectorEntry
}

type claimArgs struct {
	Client rpc.HostID
}

// claimReply carries the claim/release verdict plus a fresh self-sample of
// the replying host, so even a misplaced claim refreshes the caller's view.
type claimReply struct {
	OK    bool
	State VectorEntry
}

// hintBatch is the reply-piggyback payload: pending eviction hints.
type hintBatch struct {
	Hints []EvictHint
}

// NewProbabilistic creates the gossip selector, registers its services on
// every workstation, and wires eviction hints into the RPC reply piggyback.
func NewProbabilistic(cluster *core.Cluster, params ProbabilisticParams) *Probabilistic {
	if params.Fanout <= 0 {
		params.Fanout = 3
	}
	if params.Interval <= 0 {
		params.Interval = time.Second
	}
	if params.VectorBound <= 0 {
		params.VectorBound = 32
	}
	if params.HintBound <= 0 {
		params.HintBound = 4
	}
	p := &Probabilistic{
		cluster: cluster,
		params:  params,
		views:   make(map[rpc.HostID]*LoadVector),
		viewAt:  make(map[rpc.HostID]time.Duration),
		claims:  make(map[rpc.HostID]claimRec),
		hints:   make(map[rpc.HostID][]EvictHint),
	}
	if reg := cluster.Metrics(); reg != nil {
		p.misplaceC = reg.Counter("hostsel.gossip.misplace")
		p.ageT = reg.Timing("hostsel.gossip.age")
		p.hintC = reg.Counter("hostsel.gossip.hints")
		p.evictC = reg.Counter("hostsel.gossip.evict")
	}
	for _, k := range cluster.Workstations() {
		h := k.Host()
		p.hosts = append(p.hosts, h)
		p.views[h] = NewLoadVector(params.VectorBound)
		ep := cluster.Transport().Endpoint(h)
		ep.Handle("hs.gossip", p.makeGossipHandler(h))
		ep.Handle("hs.claim", p.makeClaimHandler(h))
		ep.Handle("hs.release", p.makeReleaseHandler(h))
		host := h
		ep.SetHintProvider(func() (any, int) {
			hints := p.takeHints(host)
			if len(hints) == 0 {
				return nil, 0
			}
			return hintBatch{Hints: hints}, hintBytes * len(hints)
		})
	}
	cluster.Transport().SetHintObserver(p.observeHints)
	cluster.AddReapHook(func(env *sim.Env, host rpc.HostID, epoch rpc.Epoch) {
		p.ScrubDeadClaimant(host, epoch)
	})
	return p
}

// Name implements Selector.
func (p *Probabilistic) Name() string { return "gossip" }

// Stats implements Selector.
func (p *Probabilistic) Stats() Stats { return p.stats }

// Gossip returns the gossip-specific counters.
func (p *Probabilistic) Gossip() GossipStats { return p.gstats }

// tolerable reports whether a call error is an expected churn outcome
// (down peer, partition, reboot window) rather than a simulation error.
// Gossip is an epidemic protocol: losing a round to an unreachable peer is
// the normal case, and the next round routes around it.
func tolerable(err error) bool {
	return errors.Is(err, rpc.ErrHostDown) ||
		errors.Is(err, rpc.ErrTimeout) ||
		errors.Is(err, rpc.ErrNoService) ||
		errors.Is(err, rpc.ErrNoHost)
}

// view returns host's vector decayed up to now.
func (p *Probabilistic) view(host rpc.HostID, now time.Duration) *LoadVector {
	v := p.views[host]
	if v == nil {
		return nil
	}
	if last, ok := p.viewAt[host]; ok && now > last {
		if n := v.Decay(now-last, p.params.StaleAfter); n > 0 {
			p.stats.Evictions += uint64(n)
			p.gstats.StaleEvicted += uint64(n)
			if p.evictC != nil {
				p.evictC.Add(int64(n))
			}
		}
	}
	p.viewAt[host] = now
	return v
}

// resetView discards host's volatile view state (a reboot lost it).
func (p *Probabilistic) resetView(host rpc.HostID, now time.Duration) {
	p.views[host] = NewLoadVector(p.params.VectorBound)
	p.viewAt[host] = now
	delete(p.hints, host)
}

// memPages is the modeled physical memory per workstation, the baseline
// for the free-memory proxy in the load vector.
const memPages = 4096

// sample takes a fresh self-observation of host.
func (p *Probabilistic) sample(host rpc.HostID, now time.Duration) VectorEntry {
	e := VectorEntry{Host: host, Epoch: p.epochOf(host)}
	k := p.cluster.KernelOn(host)
	if k == nil {
		return e
	}
	free := memPages
	for _, pr := range k.Processes() {
		if sp := pr.Space(); sp != nil {
			free -= sp.ResidentPages()
		}
	}
	if free < 0 {
		free = 0
	}
	e.Available = k.Available(now)
	e.Load = k.LoadAverage(now)
	e.IdleSince = k.LastInput()
	e.FreePages = free
	return e
}

func (p *Probabilistic) epochOf(host rpc.HostID) rpc.Epoch {
	if ep := p.cluster.Transport().Endpoint(host); ep != nil {
		return ep.Epoch()
	}
	return 0
}

// SetHintSink installs a callback fired once for every eviction hint
// queued, with the hint's subject (the host the hint retracts). The fleet
// health plane counts per-host hint rate through it. The callback runs in
// the queueing activity's context and must not block or add simulated
// time; nil removes it.
func (p *Probabilistic) SetHintSink(fn func(subject rpc.HostID)) { p.hintSink = fn }

// ScrubDeadClaimant releases every claim held by a claimant whose boot
// incarnation <= epoch has been declared dead: the holder's memory — and
// with it the intent to release — is gone, so without the scrub the claim
// leaks until its lease expires (or forever with no lease), surfacing only
// in the end-of-run ledger audit. The epoch guard keeps a claim re-taken
// by the claimant's next incarnation intact. Registered as a cluster reap
// hook, so it runs exactly when the death becomes cluster-wide knowledge.
func (p *Probabilistic) ScrubDeadClaimant(claimant rpc.HostID, epoch rpc.Epoch) {
	for owner, rec := range p.claims {
		if rec.client == claimant && rec.clientEpoch <= epoch {
			delete(p.claims, owner)
		}
	}
}

// claimed reports whether host holds a live claim at now, lazily releasing
// records voided by the epoch guard or an expired lease. A claim taken
// under an earlier boot epoch is memory the reboot destroyed: honoring it
// would leak the host forever, since its holder's release will be a no-op.
func (p *Probabilistic) claimed(host rpc.HostID, now time.Duration) bool {
	rec, ok := p.claims[host]
	if !ok {
		return false
	}
	if rec.epoch != p.epochOf(host) {
		delete(p.claims, host)
		return false
	}
	if p.params.ClaimLease > 0 && now-rec.at >= p.params.ClaimLease {
		delete(p.claims, host)
		return false
	}
	return true
}

// StartDaemons spawns the per-host gossip tickers. They run until Stop is
// called (or the simulation ends), skipping rounds while their host is
// down and resetting their view after a reboot (the old view died with the
// old incarnation's memory).
func (p *Probabilistic) StartDaemons(env *sim.Env) {
	for _, h := range p.hosts {
		host := h
		env.Spawn(fmt.Sprintf("gossip-%v", host), func(genv *sim.Env) error {
			lastEpoch := p.epochOf(host)
			for !p.stopped {
				if err := genv.Sleep(p.params.Interval); err != nil {
					return err
				}
				if p.stopped {
					return nil
				}
				if p.cluster.HostDown(host) {
					continue
				}
				if cur := p.epochOf(host); cur != lastEpoch {
					p.resetView(host, genv.Now())
					lastEpoch = cur
				}
				if err := p.gossipFrom(genv, host); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

// Stop ends the gossip daemons at their next tick.
func (p *Probabilistic) Stop() { p.stopped = true }

// gossipFrom runs one gossip round for host: refresh the host's own row,
// then merge the newest half of its vector into Fanout random peers.
func (p *Probabilistic) gossipFrom(env *sim.Env, host rpc.HostID) error {
	if p.cluster.HostDown(host) || p.cluster.KernelOn(host) == nil {
		return nil
	}
	now := env.Now()
	v := p.view(host, now)
	if v == nil {
		return nil
	}
	v.Put(p.sample(host, now))
	payload := v.NewestHalf()
	ep := p.cluster.Transport().Endpoint(host)
	peers := make([]rpc.HostID, 0, len(p.hosts)-1)
	for _, h := range p.hosts {
		if h != host {
			peers = append(peers, h)
		}
	}
	rng := env.Rand()
	rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	n := p.params.Fanout
	if n > len(peers) {
		n = len(peers)
	}
	p.gstats.Rounds++
	size := gossipBaseBytes + gossipEntryBytes*len(payload)
	for _, peer := range peers[:n] {
		p.stats.Messages++
		p.gstats.Sent++
		p.gstats.EntriesSent += uint64(len(payload))
		p.gstats.Bytes += uint64(size)
		if _, err := ep.Call(env, peer, "hs.gossip", gossipArgs{From: host, Entries: payload}, size); err != nil {
			if tolerable(err) {
				p.gstats.Unreachable++
				continue
			}
			return err
		}
	}
	return nil
}

func (p *Probabilistic) makeGossipHandler(owner rpc.HostID) rpc.Handler {
	return func(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
		a, ok := arg.(gossipArgs)
		if !ok {
			return nil, 0, fmt.Errorf("hs.gossip: bad args %T", arg)
		}
		v := p.view(owner, env.Now())
		if v == nil {
			return nil, 8, nil
		}
		for _, e := range a.Entries {
			if e.Host == owner {
				continue // a host is its own best source of truth
			}
			if v.Update(e) {
				p.gstats.Merged++
			}
		}
		return nil, 8, nil
	}
}

func (p *Probabilistic) makeClaimHandler(owner rpc.HostID) rpc.Handler {
	return func(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
		a, ok := arg.(claimArgs)
		if !ok {
			return nil, 0, fmt.Errorf("hs.claim: bad args %T", arg)
		}
		now := env.Now()
		k := p.cluster.KernelOn(owner)
		state := p.sample(owner, now)
		if p.claimed(owner, now) || k == nil || !k.Available(now) {
			state.Available = false
			// Queue a hint so ordinary replies from this host retract any
			// stale positive entry other peers still hold.
			p.pushHint(owner, EvictHint{Host: owner, Epoch: state.Epoch})
			return claimReply{OK: false, State: state}, gossipEntryBytes + 8, nil
		}
		p.claims[owner] = claimRec{
			client: a.Client, epoch: state.Epoch,
			clientEpoch: p.epochOf(a.Client), at: now,
		}
		state.Available = false // claimed now: not available to anyone else
		return claimReply{OK: true, State: state}, gossipEntryBytes + 8, nil
	}
}

func (p *Probabilistic) makeReleaseHandler(owner rpc.HostID) rpc.Handler {
	return func(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
		a, ok := arg.(claimArgs)
		if !ok {
			return nil, 0, fmt.Errorf("hs.release: bad args %T", arg)
		}
		now := env.Now()
		if rec, ok := p.claims[owner]; ok {
			if rec.client == a.Client || rec.epoch != p.epochOf(owner) {
				delete(p.claims, owner)
			}
		}
		state := p.sample(owner, now)
		if p.claimed(owner, now) {
			state.Available = false
		}
		return claimReply{OK: true, State: state}, gossipEntryBytes + 8, nil
	}
}

// pushHint queues an eviction hint on host's outgoing piggyback queue,
// replacing any older hint about the same subject.
func (p *Probabilistic) pushHint(host rpc.HostID, h EvictHint) {
	if p.hintSink != nil {
		p.hintSink(h.Host)
	}
	q := p.hints[host]
	for i, old := range q {
		if old.Host == h.Host {
			if h.Epoch >= old.Epoch {
				q[i] = h
			}
			return
		}
	}
	if limit := p.params.HintBound * 4; len(q) >= limit {
		q = q[1:]
	}
	p.hints[host] = append(q, h)
	p.gstats.HintsQueued++
	if p.hintC != nil {
		p.hintC.Inc()
	}
}

// takeHints drains up to HintBound hints from host's queue (the reply
// piggyback provider).
func (p *Probabilistic) takeHints(host rpc.HostID) []EvictHint {
	q := p.hints[host]
	if len(q) == 0 {
		return nil
	}
	n := p.params.HintBound
	if n > len(q) {
		n = len(q)
	}
	out := make([]EvictHint, n)
	copy(out, q[:n])
	if len(q) == n {
		delete(p.hints, host)
	} else {
		p.hints[host] = append([]EvictHint(nil), q[n:]...)
	}
	return out
}

// observeHints is the transport hint observer: hints piggybacked on a
// reply retract stale positive entries in the calling host's view. It runs
// inside the calling activity and only mutates local view state.
func (p *Probabilistic) observeHints(caller, server rpc.HostID, payload any) {
	b, ok := payload.(hintBatch)
	if !ok {
		return
	}
	v := p.views[caller]
	if v == nil {
		return
	}
	for _, h := range b.Hints {
		if h.Host == caller {
			continue
		}
		if v.ApplyHint(h) {
			p.gstats.HintsApplied++
		}
	}
}

// NotifyAvailability implements Selector: the transition refreshes the
// host's own row and gossips immediately (in addition to the periodic
// tick); an unavailability transition also queues an eviction hint.
func (p *Probabilistic) NotifyAvailability(env *sim.Env, host rpc.HostID, available bool) error {
	if _, ok := p.views[host]; !ok {
		return nil
	}
	if !available {
		p.pushHint(host, EvictHint{Host: host, Epoch: p.epochOf(host)})
	}
	return p.gossipFrom(env, host)
}

// RequestHosts implements Selector: consult the client's local vector,
// youngest entries first, and verify each pick with a claim message. A
// failed claim is a misplacement — the staleness cost the gossip design
// accepts — and feeds back a fresh negative entry plus an eviction hint.
func (p *Probabilistic) RequestHosts(env *sim.Env, client rpc.HostID, n int) ([]rpc.HostID, error) {
	p.stats.Requests++
	now := env.Now()
	v := p.view(client, now)
	if v == nil {
		return nil, fmt.Errorf("hostsel: %v runs no gossip view", client)
	}
	var cands []VectorEntry
	for _, e := range v.Entries() {
		if e.Available && e.Host != client {
			cands = append(cands, e)
		}
	}
	ep := p.cluster.Transport().Endpoint(client)
	var got []rpc.HostID
	for _, cd := range cands {
		if len(got) >= n {
			break
		}
		p.stats.Messages++
		if p.ageT != nil {
			p.ageT.ObserveSlot(sim.WorkerSlot(env), cd.Age)
		}
		reply, err := ep.Call(env, cd.Host, "hs.claim", claimArgs{Client: client}, 16)
		if err != nil {
			if tolerable(err) {
				// The candidate is down, rebooting, or partitioned away:
				// the view was stale about its reachability.
				p.misplaced(v, client, cd)
				continue
			}
			return got, err
		}
		cr, ok := reply.(claimReply)
		if !ok {
			return got, fmt.Errorf("hs.claim: bad reply %T", reply)
		}
		v.Put(cr.State)
		if cr.OK {
			got = append(got, cd.Host)
		} else {
			p.misplaced(v, client, cd)
		}
	}
	p.stats.Granted += uint64(len(got))
	if len(got) < n {
		p.stats.Denied++
	}
	return got, nil
}

// misplaced records one stale-view claim failure and spreads the
// correction: drop/retract the entry locally and queue an eviction hint so
// the client's own replies carry the news.
func (p *Probabilistic) misplaced(v *LoadVector, client rpc.HostID, cd VectorEntry) {
	p.stats.Conflicts++
	p.gstats.Misplaced++
	if p.misplaceC != nil {
		p.misplaceC.Inc()
	}
	v.ApplyHint(EvictHint{Host: cd.Host, Epoch: cd.Epoch})
	p.pushHint(client, EvictHint{Host: cd.Host, Epoch: cd.Epoch})
}

// Release implements Selector. Releases to unreachable hosts are
// tolerated: a host that went down comes back under a new epoch (voiding
// the claim through the epoch guard), and a partitioned host's claim
// expires with the lease.
func (p *Probabilistic) Release(env *sim.Env, client rpc.HostID, hosts []rpc.HostID) error {
	now := env.Now()
	v := p.view(client, now)
	ep := p.cluster.Transport().Endpoint(client)
	for _, h := range hosts {
		p.stats.Messages++
		reply, err := ep.Call(env, h, "hs.release", claimArgs{Client: client}, 16)
		if err != nil {
			if tolerable(err) {
				if v != nil {
					v.Remove(h)
				}
				continue
			}
			return err
		}
		if cr, ok := reply.(claimReply); ok && v != nil {
			v.Put(cr.State)
		}
	}
	return nil
}

// OutstandingClaims returns the hosts currently holding a live (current
// epoch, unexpired) claim, keyed to the claiming client — the audit hook
// for the churn suite's leak checks.
func (p *Probabilistic) OutstandingClaims(now time.Duration) map[rpc.HostID]rpc.HostID {
	out := make(map[rpc.HostID]rpc.HostID)
	for host, rec := range p.claims {
		if rec.epoch != p.epochOf(host) {
			continue
		}
		if p.params.ClaimLease > 0 && now-rec.at >= p.params.ClaimLease {
			continue
		}
		out[host] = rec.client
	}
	return out
}

// ViewSnapshot renders every host's vector deterministically — the
// byte-identical fingerprint the determinism regression tests compare.
func (p *Probabilistic) ViewSnapshot() string {
	hosts := make([]rpc.HostID, len(p.hosts))
	copy(hosts, p.hosts)
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	var b strings.Builder
	for _, h := range hosts {
		v := p.views[h]
		if v == nil {
			continue
		}
		fmt.Fprintf(&b, "view %v (%d entries, decayed at %v):\n", h, v.Len(), p.viewAt[h])
		for _, line := range strings.Split(strings.TrimRight(v.Snapshot(), "\n"), "\n") {
			if line == "" {
				continue
			}
			b.WriteString("  ")
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}
