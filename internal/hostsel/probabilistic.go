package hostsel

import (
	"fmt"
	"sort"
	"time"

	"sprite/internal/core"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// ProbabilisticParams configures the MOSIX-style gossip selector.
type ProbabilisticParams struct {
	// Fanout is how many random peers receive each gossip message.
	Fanout int
	// Interval is the periodic gossip period (MOSIX used one second).
	Interval time.Duration
	// StaleAfter ages out view entries older than this.
	StaleAfter time.Duration
}

// DefaultProbabilisticParams mirrors the MOSIX description: one-second
// gossip to a small random subset.
func DefaultProbabilisticParams() ProbabilisticParams {
	return ProbabilisticParams{
		Fanout:     3,
		Interval:   time.Second,
		StaleAfter: 10 * time.Second,
	}
}

// Probabilistic is the distributed, gossip-based architecture: each host
// keeps a local (possibly stale) view of other hosts' availability, updated
// by periodic gossip to random subsets. Selection reads the local view and
// verifies with a claim message; staleness shows up as claim conflicts.
type Probabilistic struct {
	cluster *core.Cluster
	params  ProbabilisticParams

	hosts   []rpc.HostID
	views   map[rpc.HostID]map[rpc.HostID]availInfo
	claims  map[rpc.HostID]rpc.HostID
	stopped bool
	stats   Stats
}

var _ Selector = (*Probabilistic)(nil)

type gossipArgs struct {
	Host      rpc.HostID
	Available bool
	IdleSince time.Duration
	SentAt    time.Duration
}

type claimArgs struct {
	Client rpc.HostID
}

// NewProbabilistic creates the gossip selector and registers its services
// on every workstation.
func NewProbabilistic(cluster *core.Cluster, params ProbabilisticParams) *Probabilistic {
	if params.Fanout <= 0 {
		params.Fanout = 3
	}
	if params.Interval <= 0 {
		params.Interval = time.Second
	}
	p := &Probabilistic{
		cluster: cluster,
		params:  params,
		views:   make(map[rpc.HostID]map[rpc.HostID]availInfo),
		claims:  make(map[rpc.HostID]rpc.HostID),
	}
	for _, k := range cluster.Workstations() {
		h := k.Host()
		p.hosts = append(p.hosts, h)
		p.views[h] = make(map[rpc.HostID]availInfo)
		ep := cluster.Transport().Endpoint(h)
		ep.Handle("hs.gossip", p.makeGossipHandler(h))
		ep.Handle("hs.claim", p.makeClaimHandler(h))
		ep.Handle("hs.release", p.makeReleaseHandler(h))
	}
	return p
}

// Name implements Selector.
func (p *Probabilistic) Name() string { return "probabilistic" }

// Stats implements Selector.
func (p *Probabilistic) Stats() Stats { return p.stats }

// StartDaemons spawns the per-host gossip tickers. They run until Stop is
// called (or the simulation ends).
func (p *Probabilistic) StartDaemons(env *sim.Env) {
	for _, h := range p.hosts {
		host := h
		env.Spawn(fmt.Sprintf("gossip-%v", host), func(genv *sim.Env) error {
			for !p.stopped {
				if err := genv.Sleep(p.params.Interval); err != nil {
					return err
				}
				if p.stopped {
					return nil
				}
				if err := p.gossipFrom(genv, host); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

// Stop ends the gossip daemons at their next tick.
func (p *Probabilistic) Stop() { p.stopped = true }

// gossipFrom sends the host's own state to Fanout random peers.
func (p *Probabilistic) gossipFrom(env *sim.Env, host rpc.HostID) error {
	k := p.cluster.KernelOn(host)
	if k == nil {
		return nil
	}
	msg := gossipArgs{
		Host:      host,
		Available: k.Available(env.Now()),
		IdleSince: k.LastInput(),
		SentAt:    env.Now(),
	}
	ep := p.cluster.Transport().Endpoint(host)
	// Sample Fanout distinct peers (excluding self) without replacement.
	peers := make([]rpc.HostID, 0, len(p.hosts)-1)
	for _, h := range p.hosts {
		if h != host {
			peers = append(peers, h)
		}
	}
	rng := env.Rand()
	rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	n := p.params.Fanout
	if n > len(peers) {
		n = len(peers)
	}
	for _, peer := range peers[:n] {
		p.stats.Messages++
		if _, err := ep.Call(env, peer, "hs.gossip", msg, 48); err != nil {
			return err
		}
	}
	return nil
}

func (p *Probabilistic) makeGossipHandler(owner rpc.HostID) rpc.Handler {
	return func(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
		a, ok := arg.(gossipArgs)
		if !ok {
			return nil, 0, fmt.Errorf("hs.gossip: bad args %T", arg)
		}
		view := p.views[owner]
		if old, exists := view[a.Host]; !exists || a.SentAt > old.updatedAt {
			view[a.Host] = availInfo{
				available: a.Available,
				idleSince: a.IdleSince,
				updatedAt: a.SentAt,
			}
		}
		return nil, 8, nil
	}
}

func (p *Probabilistic) makeClaimHandler(owner rpc.HostID) rpc.Handler {
	return func(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
		a, ok := arg.(claimArgs)
		if !ok {
			return nil, 0, fmt.Errorf("hs.claim: bad args %T", arg)
		}
		k := p.cluster.KernelOn(owner)
		if _, taken := p.claims[owner]; taken || k == nil || !k.Available(env.Now()) {
			return false, 8, nil
		}
		p.claims[owner] = a.Client
		return true, 8, nil
	}
}

func (p *Probabilistic) makeReleaseHandler(owner rpc.HostID) rpc.Handler {
	return func(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
		a, ok := arg.(claimArgs)
		if !ok {
			return nil, 0, fmt.Errorf("hs.release: bad args %T", arg)
		}
		if p.claims[owner] == a.Client {
			delete(p.claims, owner)
		}
		return nil, 8, nil
	}
}

// NotifyAvailability implements Selector: the transition gossips
// immediately (in addition to the periodic tick).
func (p *Probabilistic) NotifyAvailability(env *sim.Env, host rpc.HostID, available bool) error {
	return p.gossipFrom(env, host)
}

// RequestHosts implements Selector: consult the client's local view, newest
// information first, and verify each pick with a claim message.
func (p *Probabilistic) RequestHosts(env *sim.Env, client rpc.HostID, n int) ([]rpc.HostID, error) {
	p.stats.Requests++
	view := p.views[client]
	now := env.Now()
	type cand struct {
		host rpc.HostID
		at   time.Duration
	}
	var cands []cand
	for h, inf := range view {
		if h == client || !inf.available {
			continue
		}
		if p.params.StaleAfter > 0 && now-inf.updatedAt > p.params.StaleAfter {
			continue
		}
		cands = append(cands, cand{host: h, at: inf.updatedAt})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].at != cands[j].at {
			return cands[i].at > cands[j].at
		}
		return cands[i].host < cands[j].host
	})
	ep := p.cluster.Transport().Endpoint(client)
	var got []rpc.HostID
	for _, cd := range cands {
		if len(got) >= n {
			break
		}
		p.stats.Messages++
		reply, err := ep.Call(env, cd.host, "hs.claim", claimArgs{Client: client}, 16)
		if err != nil {
			return got, err
		}
		if ok, _ := reply.(bool); ok {
			got = append(got, cd.host)
		} else {
			// Stale view: the host was not actually available.
			p.stats.Conflicts++
			view[cd.host] = availInfo{available: false, updatedAt: now}
		}
	}
	p.stats.Granted += uint64(len(got))
	if len(got) < n {
		p.stats.Denied++
	}
	return got, nil
}

// Release implements Selector.
func (p *Probabilistic) Release(env *sim.Env, client rpc.HostID, hosts []rpc.HostID) error {
	ep := p.cluster.Transport().Endpoint(client)
	for _, h := range hosts {
		p.stats.Messages++
		if _, err := ep.Call(env, h, "hs.release", claimArgs{Client: client}, 16); err != nil {
			return err
		}
	}
	return nil
}
