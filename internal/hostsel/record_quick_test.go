package hostsel

import (
	"testing"
	"testing/quick"
	"time"

	"sprite/internal/rpc"
)

// Property: host records survive an encode/decode round trip.
func TestRecordRoundTrip(t *testing.T) {
	f := func(available, claimed bool, claimedBy uint16, idleNanos int64) bool {
		if idleNanos < 0 {
			idleNanos = -idleNanos
		}
		in := hostRecord{
			available: available,
			claimed:   claimed,
			claimedBy: rpc.HostID(claimedBy),
			idleSince: time.Duration(idleNanos),
		}
		out := decodeRecord(encodeRecord(in))
		return out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding junk never panics and never decodes a short buffer.
func TestDecodeRecordTolerant(t *testing.T) {
	f := func(buf []byte) bool {
		rec := decodeRecord(buf)
		if len(buf) < recordSize {
			return rec == hostRecord{}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: pickLongestIdle returns at most n hosts, all from the
// candidate set, sorted longest-idle-first.
func TestPickLongestIdleProperties(t *testing.T) {
	f := func(seeds []uint8, n uint8) bool {
		info := make(map[rpc.HostID]availInfo)
		var cands []rpc.HostID
		for i, s := range seeds {
			h := rpc.HostID(i + 1)
			cands = append(cands, h)
			info[h] = availInfo{available: true, idleSince: time.Duration(s) * time.Second}
		}
		picked := pickLongestIdle(cands, info, int(n))
		if len(picked) > int(n) || len(picked) > len(cands) {
			return false
		}
		seen := make(map[rpc.HostID]bool)
		for i, h := range picked {
			if seen[h] {
				return false // duplicates
			}
			seen[h] = true
			if i > 0 && info[picked[i-1]].idleSince > info[h].idleSince {
				return false // not longest-idle-first
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
