package hostsel

import (
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// Filter vets and orders the hosts a selector hands out. The fleet plane
// implements it to keep cordoned/draining hosts out of placement and to
// prefer hosts with a long expected time-to-eviction (the Pricer);
// fairness accounting can deny a grant outright by filtering every
// candidate away.
type Filter interface {
	// FilterHosts returns the subset of hosts the client may use, in
	// preference order. It must be deterministic and add no simulated time.
	FilterHosts(env *sim.Env, client rpc.HostID, hosts []rpc.HostID) []rpc.HostID
}

// FilterFunc adapts a function to the Filter interface.
type FilterFunc func(env *sim.Env, client rpc.HostID, hosts []rpc.HostID) []rpc.HostID

// FilterHosts calls f.
func (f FilterFunc) FilterHosts(env *sim.Env, client rpc.HostID, hosts []rpc.HostID) []rpc.HostID {
	return f(env, client, hosts)
}

// Filtered layers a Filter over any Selector: grants pass through the
// filter, and rejected hosts are released back to the pool immediately so
// a vetoed grant never leaks a claim. To keep the grant count useful the
// wrapper over-requests by a configurable slack, then trims to what the
// caller asked for.
type Filtered struct {
	inner  Selector
	filter Filter
	// slack is how many extra candidates each request asks the inner
	// selector for, giving the filter room to reject without starving the
	// caller.
	slack int
}

var _ Selector = (*Filtered)(nil)

// WithFilter wraps sel so every grant is vetted by f. slack extra
// candidates are requested per call (negative means the default of 2).
// A nil filter returns sel unchanged.
func WithFilter(sel Selector, f Filter, slack int) Selector {
	if f == nil {
		return sel
	}
	if slack < 0 {
		slack = 2
	}
	return &Filtered{inner: sel, filter: f, slack: slack}
}

// Unwrap returns the underlying selector.
func (f *Filtered) Unwrap() Selector { return f.inner }

// Name identifies the wrapped architecture.
func (f *Filtered) Name() string { return f.inner.Name() }

// RequestHosts asks the inner selector for n+slack candidates, filters
// them, releases the rejects and the overshoot, and returns up to n.
func (f *Filtered) RequestHosts(env *sim.Env, client rpc.HostID, n int) ([]rpc.HostID, error) {
	got, err := f.inner.RequestHosts(env, client, n+f.slack)
	if len(got) == 0 {
		return nil, err
	}
	kept := f.filter.FilterHosts(env, client, got)
	if len(kept) > n {
		kept = kept[:n]
	}
	keep := make(map[rpc.HostID]bool, len(kept))
	for _, h := range kept {
		keep[h] = true
	}
	var rejects []rpc.HostID
	for _, h := range got {
		if !keep[h] {
			rejects = append(rejects, h)
		}
	}
	if len(rejects) > 0 {
		if rerr := f.inner.Release(env, client, rejects); rerr != nil && err == nil {
			err = rerr
		}
	}
	if len(kept) == 0 {
		if err == nil {
			err = ErrNoHosts
		}
		return nil, err
	}
	// A partial grant is a grant: suppress the inner selector's shortfall
	// error the way callers of the raw interface expect.
	return kept, nil
}

// Release delegates to the inner selector.
func (f *Filtered) Release(env *sim.Env, client rpc.HostID, hosts []rpc.HostID) error {
	return f.inner.Release(env, client, hosts)
}

// NotifyAvailability delegates to the inner selector.
func (f *Filtered) NotifyAvailability(env *sim.Env, host rpc.HostID, available bool) error {
	return f.inner.NotifyAvailability(env, host, available)
}

// Stats returns the inner selector's counters.
func (f *Filtered) Stats() Stats { return f.inner.Stats() }
