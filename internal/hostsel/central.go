package hostsel

import (
	"fmt"
	"time"

	"sprite/internal/core"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// CentralParams configures the centralized server.
type CentralParams struct {
	// RequestCPU is server processing per host request (state update, fair
	// allocation decision, reply via the pseudo-device stream).
	RequestCPU time.Duration
	// ReleaseCPU is server processing per release.
	ReleaseCPU time.Duration
	// UpdateCPU is server processing per availability update.
	UpdateCPU time.Duration
	// EvictOnOwnerReturn revokes assignments (and triggers eviction at the
	// borrowed host) when the host's owner returns.
	EvictOnOwnerReturn bool
}

// DefaultCentralParams calibrates the request path so that one
// select-plus-release round trip lands near the 56 ms the thesis reports
// for migd on DECstation 3100s.
func DefaultCentralParams() CentralParams {
	return CentralParams{
		RequestCPU:         40 * time.Millisecond,
		ReleaseCPU:         8 * time.Millisecond,
		UpdateCPU:          2 * time.Millisecond,
		EvictOnOwnerReturn: true,
	}
}

// Central is Sprite's migd: one server process that knows every host's
// availability, allocates idle hosts fairly, and revokes them on owner
// return.
type Central struct {
	cluster *core.Cluster
	host    rpc.HostID
	params  CentralParams

	info        map[rpc.HostID]availInfo
	assignments map[rpc.HostID]rpc.HostID // idle host -> client using it
	allocCount  map[rpc.HostID]int        // client -> hosts currently held
	stats       Stats
}

var _ Selector = (*Central)(nil)

type (
	migdUpdateArgs struct {
		Host      rpc.HostID
		Available bool
	}
	migdRequestArgs struct {
		Client rpc.HostID
		N      int
	}
	migdReleaseArgs struct {
		Client rpc.HostID
		Hosts  []rpc.HostID
	}
)

// NewCentral creates the central selector with its server on the given host
// (commonly a file server or any ordinary machine).
func NewCentral(cluster *core.Cluster, host rpc.HostID, params CentralParams) *Central {
	c := &Central{
		cluster:     cluster,
		host:        host,
		params:      params,
		info:        make(map[rpc.HostID]availInfo),
		assignments: make(map[rpc.HostID]rpc.HostID),
		allocCount:  make(map[rpc.HostID]int),
	}
	ep := cluster.Transport().Register(host)
	ep.Handle("migd.update", c.handleUpdate)
	ep.Handle("migd.request", c.handleRequest)
	ep.Handle("migd.release", c.handleRelease)
	return c
}

// Name implements Selector.
func (c *Central) Name() string { return "central" }

// Stats implements Selector.
func (c *Central) Stats() Stats { return c.stats }

// Reset discards all server state, as after a crash and restart of the
// migd process. Theimer & Lantz's observation — adopted by the thesis —
// is that a centralized facility can simply be restarted on failure: the
// state is soft, and hosts repopulate it with their next availability
// announcements.
func (c *Central) Reset() {
	c.info = make(map[rpc.HostID]availInfo)
	c.assignments = make(map[rpc.HostID]rpc.HostID)
	c.allocCount = make(map[rpc.HostID]int)
}

// Assignments returns a copy of the current host->client assignments.
func (c *Central) Assignments() map[rpc.HostID]rpc.HostID {
	out := make(map[rpc.HostID]rpc.HostID, len(c.assignments))
	for k, v := range c.assignments {
		out[k] = v
	}
	return out
}

// NotifyAvailability implements Selector: the host's load daemon reports a
// transition with one RPC to the server.
func (c *Central) NotifyAvailability(env *sim.Env, host rpc.HostID, available bool) error {
	c.stats.Messages++
	ep := c.cluster.Transport().Endpoint(host)
	if ep == nil {
		return fmt.Errorf("hostsel: %w: %v", rpc.ErrNoHost, host)
	}
	_, err := ep.Call(env, c.host, "migd.update", migdUpdateArgs{Host: host, Available: available}, 32)
	return err
}

// RequestHosts implements Selector.
func (c *Central) RequestHosts(env *sim.Env, client rpc.HostID, n int) ([]rpc.HostID, error) {
	c.stats.Messages++
	ep := c.cluster.Transport().Endpoint(client)
	reply, err := ep.Call(env, c.host, "migd.request", migdRequestArgs{Client: client, N: n}, 32)
	if err != nil {
		return nil, err
	}
	hosts, ok := reply.([]rpc.HostID)
	if !ok {
		return nil, fmt.Errorf("migd.request: bad reply %T", reply)
	}
	return hosts, nil
}

// Release implements Selector.
func (c *Central) Release(env *sim.Env, client rpc.HostID, hosts []rpc.HostID) error {
	if len(hosts) == 0 {
		return nil
	}
	c.stats.Messages++
	ep := c.cluster.Transport().Endpoint(client)
	_, err := ep.Call(env, c.host, "migd.release", migdReleaseArgs{Client: client, Hosts: hosts}, 32+8*len(hosts))
	return err
}

func (c *Central) handleUpdate(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(migdUpdateArgs)
	if !ok {
		return nil, 0, fmt.Errorf("migd.update: bad args %T", arg)
	}
	if err := env.Sleep(c.params.UpdateCPU); err != nil {
		return nil, 0, err
	}
	prev := c.info[a.Host]
	info := availInfo{available: a.Available, updatedAt: env.Now()}
	if a.Available {
		if prev.available {
			info.idleSince = prev.idleSince
		} else {
			info.idleSince = env.Now()
		}
	}
	c.info[a.Host] = info
	if !a.Available {
		if client, assigned := c.assignments[a.Host]; assigned {
			// Owner returned while the host was lent out: revoke and make
			// the borrowed host evict its foreign processes.
			delete(c.assignments, a.Host)
			c.allocCount[client]--
			c.stats.Evictions++
			if c.params.EvictOnOwnerReturn {
				srvEP := c.cluster.Transport().Endpoint(c.host)
				if _, err := srvEP.Call(env, a.Host, "k.evict", nil, 16); err != nil {
					return nil, 0, fmt.Errorf("evict %v: %w", a.Host, err)
				}
			}
		}
	}
	return nil, 8, nil
}

func (c *Central) handleRequest(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(migdRequestArgs)
	if !ok {
		return nil, 0, fmt.Errorf("migd.request: bad args %T", arg)
	}
	if err := env.Sleep(c.params.RequestCPU); err != nil {
		return nil, 0, err
	}
	c.stats.Requests++
	var cands []rpc.HostID
	for h, inf := range c.info {
		if _, busy := c.assignments[h]; !busy && inf.available && h != a.Client {
			cands = append(cands, h) //spritelint:allow maporder pickLongestIdle re-sorts below with a total order (idleSince, host id)
		}
	}
	// Fair allocation under contention: a client's holdings may not exceed
	// its share of the pool when other clients are also consuming hosts.
	want := a.N
	others := 0
	for cl, n := range c.allocCount {
		if n > 0 && cl != a.Client {
			others++
		}
	}
	if others > 0 {
		pool := len(cands) + c.allocCount[a.Client]
		for cl, n := range c.allocCount {
			if n > 0 && cl != a.Client {
				pool += n
			}
		}
		share := pool / (others + 1)
		if share < 1 {
			share = 1
		}
		if allowed := share - c.allocCount[a.Client]; allowed < want {
			want = allowed
		}
		if want < 0 {
			want = 0
		}
	}
	picked := pickLongestIdle(cands, c.info, want)
	for _, h := range picked {
		c.assignments[h] = a.Client
	}
	c.allocCount[a.Client] += len(picked)
	c.stats.Granted += uint64(len(picked))
	if len(picked) < a.N {
		c.stats.Denied++
	}
	return picked, 16 + 8*len(picked), nil
}

func (c *Central) handleRelease(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(migdReleaseArgs)
	if !ok {
		return nil, 0, fmt.Errorf("migd.release: bad args %T", arg)
	}
	if err := env.Sleep(c.params.ReleaseCPU); err != nil {
		return nil, 0, err
	}
	for _, h := range a.Hosts {
		if c.assignments[h] == a.Client {
			delete(c.assignments, h)
			c.allocCount[a.Client]--
		}
	}
	return nil, 8, nil
}
