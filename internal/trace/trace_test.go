package trace

import (
	"strings"
	"testing"
	"time"

	"sprite/internal/core"
	"sprite/internal/sim"
)

func TestRingRetainsNewest(t *testing.T) {
	l := New(3)
	for i := 0; i < 5; i++ {
		l.Append(time.Duration(i)*time.Second, "k", "")
	}
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d, want 3", len(evs))
	}
	if evs[0].At != 2*time.Second || evs[2].At != 4*time.Second {
		t.Fatalf("events = %v", evs)
	}
	if l.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", l.Dropped())
	}
}

func TestTail(t *testing.T) {
	l := New(4)
	for i := 0; i < 6; i++ { // wraps: ring holds seconds 2..5
		l.Append(time.Duration(i)*time.Second, "k", "")
	}
	tail := l.Tail(2)
	if len(tail) != 2 || tail[0].At != 4*time.Second || tail[1].At != 5*time.Second {
		t.Fatalf("Tail(2) = %v", tail)
	}
	if got := l.Tail(10); len(got) != 4 {
		t.Fatalf("Tail(10) len = %d, want all 4 retained", len(got))
	}
	if got := l.Tail(0); got != nil {
		t.Fatalf("Tail(0) = %v, want nil", got)
	}
}

func TestFilter(t *testing.T) {
	l := New(10)
	l.SetFilter("migration")
	l.Append(0, "migration", "a")
	l.Append(0, "proc-start", "b")
	if l.Len() != 1 || l.CountKind("migration") != 1 {
		t.Fatalf("len = %d", l.Len())
	}
}

func TestStringRendering(t *testing.T) {
	l := New(2)
	for i := 0; i < 3; i++ {
		l.Append(time.Second, "k", "x")
	}
	s := l.String()
	if !strings.Contains(s, "dropped") || !strings.Contains(s, "k") {
		t.Fatalf("render = %q", s)
	}
}

// TestClusterEmitsTraceEvents wires a log into a cluster and checks that a
// migration run produces the expected event kinds in time order.
func TestClusterEmitsTraceEvents(t *testing.T) {
	c, err := core.NewCluster(core.Options{Workstations: 2, FileServers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SeedBinary("/bin/prog", 64<<10); err != nil {
		t.Fatal(err)
	}
	l := New(128)
	c.SetTrace(l.Func())
	dst := c.Workstation(1)
	c.Boot("boot", func(env *sim.Env) error {
		p, err := c.Workstation(0).StartProcess(env, "traced", func(ctx *core.Ctx) error {
			if err := ctx.TouchHeap(0, 4, true); err != nil {
				return err
			}
			return ctx.Migrate(dst.Host())
		}, core.ProcConfig{Binary: "/bin/prog", CodePages: 2, HeapPages: 4, StackPages: 1})
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if l.CountKind("proc-start") != 1 || l.CountKind("migration") != 1 || l.CountKind("proc-exit") != 1 {
		t.Fatalf("events:\n%s", l)
	}
	evs := l.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events out of order:\n%s", l)
		}
	}
}
