// Package trace provides a bounded in-memory event log for cluster runs:
// migrations, evictions, process lifecycle, and consistency actions, in
// virtual-time order. It exists for debugging scenarios and for the
// spritesim -trace flag; it has no effect on simulated time.
package trace

import (
	"fmt"
	"strings"
	"time"
)

// Event is one recorded occurrence.
type Event struct {
	At     time.Duration
	Kind   string
	Detail string
}

// String renders the event as one line.
func (e Event) String() string {
	return fmt.Sprintf("[%12v] %-16s %s", e.At, e.Kind, e.Detail)
}

// Log is a bounded ring of events. The zero value is unusable; use New.
type Log struct {
	ring    []Event
	next    int
	size    int
	dropped uint64
	filter  map[string]bool
}

// New returns a log holding at most capacity events (older ones are
// dropped first).
func New(capacity int) *Log {
	if capacity < 1 {
		capacity = 1
	}
	return &Log{ring: make([]Event, capacity)}
}

// SetFilter restricts recording to the given kinds (nil records all).
func (l *Log) SetFilter(kinds ...string) {
	if len(kinds) == 0 {
		l.filter = nil
		return
	}
	l.filter = make(map[string]bool, len(kinds))
	for _, k := range kinds {
		l.filter[k] = true
	}
}

// Append records one event.
func (l *Log) Append(at time.Duration, kind, detail string) {
	if l.filter != nil && !l.filter[kind] {
		return
	}
	if l.size == len(l.ring) {
		l.dropped++
	} else {
		l.size++
	}
	l.ring[l.next] = Event{At: at, Kind: kind, Detail: detail}
	l.next = (l.next + 1) % len(l.ring)
}

// Func adapts the log to the core.TraceFunc hook signature.
func (l *Log) Func() func(at time.Duration, kind, detail string) {
	return l.Append
}

// Events returns the recorded events, oldest first.
func (l *Log) Events() []Event {
	out := make([]Event, 0, l.size)
	start := l.next - l.size
	if start < 0 {
		start += len(l.ring)
	}
	for i := 0; i < l.size; i++ {
		out = append(out, l.ring[(start+i)%len(l.ring)])
	}
	return out
}

// Tail returns the most recent n retained events, oldest first. It is the
// view failure reports want: the last few things the cluster did before a
// check fired.
func (l *Log) Tail(n int) []Event {
	if n >= l.size {
		return l.Events()
	}
	if n < 1 {
		return nil
	}
	out := make([]Event, 0, n)
	start := l.next - n
	if start < 0 {
		start += len(l.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, l.ring[(start+i)%len(l.ring)])
	}
	return out
}

// Dropped returns how many events were evicted from the ring.
func (l *Log) Dropped() uint64 { return l.dropped }

// Len returns the number of retained events.
func (l *Log) Len() int { return l.size }

// String renders the retained events, one per line.
func (l *Log) String() string {
	var b strings.Builder
	if l.dropped > 0 {
		fmt.Fprintf(&b, "(%d earlier events dropped)\n", l.dropped)
	}
	for _, e := range l.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// CountKind returns how many retained events have the given kind.
func (l *Log) CountKind(kind string) int {
	n := 0
	for _, e := range l.Events() {
		if e.Kind == kind {
			n++
		}
	}
	return n
}
