package vm

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"sprite/internal/sim"
)

// refSegment is the reference model: two bitmaps.
type refSegment struct {
	resident []bool
	dirty    []bool
}

func (r *refSegment) touch(i int, write bool) {
	r.resident[i] = true
	if write {
		r.dirty[i] = true
	}
}

func (r *refSegment) flush() int {
	n := 0
	for i, d := range r.dirty {
		if d {
			r.dirty[i] = false
			n++
		}
	}
	return n
}

func (r *refSegment) invalidate() {
	for i := range r.resident {
		r.resident[i] = false
		r.dirty[i] = false
	}
}

func count(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// TestModelRandomTouchSequences drives random touch/flush/invalidate
// sequences against an address space and the reference bitmaps; resident
// and dirty counts must agree at every step.
func TestModelRandomTouchSequences(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			h := newHarness(t)
			h.run(t, func(env *sim.Env) error {
				const pages = 64
				as, err := New(env, h.fs.Client(2), fmt.Sprintf("m%d", seed), Config{
					HeapPages:  pages,
					StackPages: 0,
					CodePages:  0,
				}, DefaultParams())
				if err != nil {
					return err
				}
				ref := &refSegment{resident: make([]bool, pages), dirty: make([]bool, pages)}
				rng := rand.New(rand.NewSource(seed))
				for op := 0; op < 400; op++ {
					switch rng.Intn(10) {
					case 0: // flush
						want := ref.flush()
						got, err := as.FlushDirty(env, h.fs.Client(2))
						if err != nil {
							return err
						}
						if got != want {
							return fmt.Errorf("op %d: flushed %d, want %d", op, got, want)
						}
					case 1: // invalidate (migration arrival)
						as.Heap.InvalidateAll()
						ref.invalidate()
					default:
						i := rng.Intn(pages)
						write := rng.Intn(2) == 0
						if err := as.Touch(env, as.Heap, i, write); err != nil {
							return err
						}
						ref.touch(i, write)
					}
					if as.Heap.ResidentCount() != count(ref.resident) {
						return fmt.Errorf("op %d: resident %d, want %d", op, as.Heap.ResidentCount(), count(ref.resident))
					}
					if as.Heap.DirtyCount() != count(ref.dirty) {
						return fmt.Errorf("op %d: dirty %d, want %d", op, as.Heap.DirtyCount(), count(ref.dirty))
					}
				}
				return nil
			})
		})
	}
}

// Property: SetResidency produces exactly the requested counts and dirty
// pages are always a subset of resident pages.
func TestSetResidencyProperty(t *testing.T) {
	h := newHarness(t)
	h.run(t, func(env *sim.Env) error {
		as, err := New(env, h.fs.Client(2), "prop", Config{HeapPages: 128}, DefaultParams())
		if err != nil {
			return err
		}
		f := func(r8, d8 uint8) bool {
			rf := float64(r8) / 255
			df := float64(d8) / 255
			as.Heap.SetResidency(rf, df)
			for i := 0; i < as.Heap.Pages(); i++ {
				if as.Heap.Dirty(i) && !as.Heap.Resident(i) {
					return false // dirty must imply resident
				}
			}
			wantRes := int(rf * 128)
			return abs(as.Heap.ResidentCount()-wantRes) <= 1
		}
		return quick.Check(f, nil)
	})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Property: a flush after n dirtying touches writes exactly the number of
// distinct dirtied pages, and a second flush writes zero.
func TestFlushIdempotent(t *testing.T) {
	h := newHarness(t)
	h.run(t, func(env *sim.Env) error {
		as, err := New(env, h.fs.Client(2), "idem", Config{HeapPages: 32}, DefaultParams())
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(9))
		distinct := map[int]bool{}
		for i := 0; i < 50; i++ {
			p := rng.Intn(32)
			distinct[p] = true
			if err := as.Touch(env, as.Heap, p, true); err != nil {
				return err
			}
		}
		n1, err := as.FlushDirty(env, h.fs.Client(2))
		if err != nil {
			return err
		}
		if n1 != len(distinct) {
			return fmt.Errorf("first flush %d, want %d", n1, len(distinct))
		}
		n2, err := as.FlushDirty(env, h.fs.Client(2))
		if err != nil {
			return err
		}
		if n2 != 0 {
			return fmt.Errorf("second flush %d, want 0", n2)
		}
		return nil
	})
}
