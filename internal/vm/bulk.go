package vm

import (
	"fmt"

	"sprite/internal/fs"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// FlushDirtyBulk writes every dirty heap/stack page to backing store as
// coalesced page runs through the bulk-transfer path (fs.WriteAtBatch →
// fs.writeBulk), marking them clean. Contiguous dirty pages become one
// transfer; maxRunPages bounds a single transfer's length (0 = unlimited).
// It returns the pages written and the accumulated wire statistics. This is
// the batched core of Sprite's migration-time VM transfer: where FlushDirty
// pays one synchronous RPC per block, this pays one handshake per run.
func (as *AddressSpace) FlushDirtyBulk(env *sim.Env, client *fs.Client, maxRunPages int) (int, rpc.BulkStats, error) {
	var bs rpc.BulkStats
	written := 0
	ps := as.params.PageSize
	maxRunBytes := 0
	if maxRunPages > 0 {
		maxRunBytes = maxRunPages * ps
	}
	for _, seg := range []*Segment{as.Heap, as.Stack} {
		if seg.Backing == nil {
			continue
		}
		dirty := seg.DirtyList()
		if len(dirty) == 0 {
			continue
		}
		runs := make([]fs.PageRun, 0, len(dirty))
		for _, page := range dirty {
			runs = append(runs, fs.PageRun{
				Off:  int64(page) * int64(ps),
				Data: make([]byte, ps),
			})
		}
		segStats, err := client.WriteAtBatch(env, seg.Backing, runs, maxRunBytes)
		bs.Add(segStats)
		if err != nil {
			return written, bs, fmt.Errorf("vm: bulk flush %s: %w", seg.Kind, err)
		}
		for _, page := range dirty {
			seg.dirty[page] = false
			written++
			as.stats.PageOuts++
		}
	}
	return written, bs, nil
}

// ReadaheadPager pages from the backing stream like FilePager, but fills a
// run of pages per fault through the bulk-read path: the faulting page plus
// up to Window-1 following non-resident pages arrive in one fs.readBulk
// transfer and are mapped in clean. A freshly migrated process touching its
// memory sequentially takes one fault per run instead of one per page.
type ReadaheadPager struct {
	// Client is the FS client of the host where the process currently runs.
	Client *fs.Client
	// Window is the maximum pages fetched per fault (values < 1 behave as 1).
	Window int
}

var _ Pager = (*ReadaheadPager)(nil)

// PageIn reads the faulting page and its readahead run from backing store.
func (p *ReadaheadPager) PageIn(env *sim.Env, seg *Segment, page int) error {
	if seg.Backing == nil {
		return nil // anonymous zero-fill page
	}
	ps := seg.space.params.PageSize
	// The run extends from the faulting page up to the next resident page
	// (whose contents must not be overwritten in the resident set model) or
	// the window/segment end.
	end := page + 1
	for end < seg.pages && end-page < p.Window && !seg.resident[end] {
		end++
	}
	off := int64(page) * int64(ps)
	_, _, err := p.Client.ReadAtBulk(env, seg.Backing, off, (end-page)*ps)
	if err != nil {
		return err
	}
	// The extra pages become resident and clean without faults of their own;
	// the faulting page itself is mapped by Touch on return.
	for i := page + 1; i < end; i++ {
		seg.resident[i] = true
		seg.dirty[i] = false
		seg.space.stats.Prefetched++
	}
	return nil
}
