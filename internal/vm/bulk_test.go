package vm

import (
	"testing"

	"sprite/internal/sim"
)

func TestFlushDirtyBulkCoalescesAndClears(t *testing.T) {
	h := newHarness(t)
	h.run(t, func(env *sim.Env) error {
		as := newSpace(t, env, h, "p1", 16)
		// Two dirty extents with a gap: pages 0-5 and 8-11.
		for _, i := range []int{0, 1, 2, 3, 4, 5, 8, 9, 10, 11} {
			if err := as.Touch(env, as.Heap, i, true); err != nil {
				return err
			}
		}
		n, bs, err := as.FlushDirtyBulk(env, h.fs.Client(2), 4)
		if err != nil {
			return err
		}
		if n != 10 || as.DirtyPages() != 0 {
			t.Fatalf("flushed %d pages, %d still dirty", n, as.DirtyPages())
		}
		// The 6-page extent splits at maxRunPages=4 into 4+2; the 4-page
		// extent ships whole: three bulk calls for ten pages.
		if bs.Calls != 3 {
			t.Errorf("bulk calls = %d, want 3", bs.Calls)
		}
		if want := 10 * as.Params().PageSize; bs.Bytes != want {
			t.Errorf("bulk bytes = %d, want %d", bs.Bytes, want)
		}
		if as.Stats().PageOuts != 10 {
			t.Errorf("page-outs = %d, want 10", as.Stats().PageOuts)
		}
		return nil
	})
}

func TestFlushDirtyBulkFasterThanLegacy(t *testing.T) {
	h := newHarness(t)
	h.run(t, func(env *sim.Env) error {
		dirtyAll := func(as *AddressSpace) error {
			for i := 0; i < 32; i++ {
				if err := as.Touch(env, as.Heap, i, true); err != nil {
					return err
				}
			}
			return nil
		}
		legacy := newSpace(t, env, h, "legacy", 32)
		if err := dirtyAll(legacy); err != nil {
			return err
		}
		t0 := env.Now()
		if _, err := legacy.FlushDirty(env, h.fs.Client(2)); err != nil {
			return err
		}
		legacyTook := env.Now() - t0

		bulk := newSpace(t, env, h, "bulk", 32)
		if err := dirtyAll(bulk); err != nil {
			return err
		}
		t0 = env.Now()
		if _, _, err := bulk.FlushDirtyBulk(env, h.fs.Client(2), 256); err != nil {
			return err
		}
		bulkTook := env.Now() - t0
		if bulkTook >= legacyTook {
			t.Errorf("bulk flush %v not faster than legacy %v", bulkTook, legacyTook)
		}
		return nil
	})
}

func TestReadaheadPagerFillsRuns(t *testing.T) {
	h := newHarness(t)
	h.run(t, func(env *sim.Env) error {
		as := newSpace(t, env, h, "p1", 16)
		for i := 0; i < 16; i++ {
			if err := as.Touch(env, as.Heap, i, true); err != nil {
				return err
			}
		}
		// Flush so the backing store has every page, then drop the resident
		// set — the state of a freshly migrated process under sprite-flush.
		if _, _, err := as.FlushDirtyBulk(env, h.fs.Client(2), 0); err != nil {
			return err
		}
		as.Heap.InvalidateAll()
		as.Heap.SetPager(&ReadaheadPager{Client: h.fs.Client(2), Window: 4})

		faults0 := as.Stats().Faults
		if err := as.Touch(env, as.Heap, 0, false); err != nil {
			return err
		}
		for i := 0; i < 4; i++ {
			if !as.Heap.Resident(i) {
				t.Fatalf("page %d not resident after readahead fault", i)
			}
		}
		if as.Heap.Resident(4) {
			t.Fatal("page 4 resident beyond the readahead window")
		}
		if got := as.Stats().Prefetched; got != 3 {
			t.Errorf("prefetched = %d, want 3", got)
		}
		// The prefetched pages must not fault again.
		for i := 1; i < 4; i++ {
			if err := as.Touch(env, as.Heap, i, false); err != nil {
				return err
			}
		}
		if got := as.Stats().Faults - faults0; got != 1 {
			t.Errorf("faults = %d for 4 touches, want 1", got)
		}
		// A run stops early at an already-resident page.
		as.Heap.MarkResident(6, false)
		if err := as.Touch(env, as.Heap, 4, false); err != nil {
			return err
		}
		if !as.Heap.Resident(5) || as.Heap.Resident(7) {
			t.Errorf("run after resident page: 5=%v 7=%v, want true,false",
				as.Heap.Resident(5), as.Heap.Resident(7))
		}
		return nil
	})
}

// BenchmarkFlushDirtyBulk measures the batched migration flush hot path:
// a fully dirty 64-page heap coalesced into bulk transfers.
func BenchmarkFlushDirtyBulk(b *testing.B) {
	benchFlush(b, func(env *sim.Env, h *harness, as *AddressSpace) error {
		_, _, err := as.FlushDirtyBulk(env, h.fs.Client(2), 256)
		return err
	})
}

// BenchmarkFlushDirtyLegacy is the ablation: the same flush paying one
// synchronous RPC per block.
func BenchmarkFlushDirtyLegacy(b *testing.B) {
	benchFlush(b, func(env *sim.Env, h *harness, as *AddressSpace) error {
		_, err := as.FlushDirty(env, h.fs.Client(2))
		return err
	})
}

func benchFlush(b *testing.B, flush func(env *sim.Env, h *harness, as *AddressSpace) error) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := newHarness(b)
		h.run(b, func(env *sim.Env) error {
			as := newSpace(b, env, h, "bench", 64)
			for p := 0; p < 64; p++ {
				if err := as.Touch(env, as.Heap, p, true); err != nil {
					return err
				}
			}
			return flush(env, h, as)
		})
	}
}
