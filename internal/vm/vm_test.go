package vm

import (
	"errors"
	"testing"
	"time"

	"sprite/internal/fs"
	"sprite/internal/netsim"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

type harness struct {
	sim *sim.Simulation
	fs  *fs.FS
}

func newHarness(t testing.TB) *harness {
	t.Helper()
	s := sim.New(1)
	net := netsim.New(s, netsim.Params{Latency: 500 * time.Microsecond, BandwidthBytesPerSec: 1e6})
	tr := rpc.NewTransport(s, net, rpc.Params{ClientOverhead: time.Millisecond})
	f := fs.New(s, tr, fs.DefaultParams())
	f.AddServer(1, "/")
	f.AddClient(2)
	f.AddClient(3)
	if _, err := f.Seed("/bin/prog", make([]byte, 64*1024), false); err != nil {
		t.Fatal(err)
	}
	return &harness{sim: s, fs: f}
}

func (h *harness) run(t testing.TB, fn func(env *sim.Env) error) {
	t.Helper()
	h.sim.Spawn("test", fn)
	if err := h.sim.Run(0); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func newSpace(t testing.TB, env *sim.Env, h *harness, name string, heapPages int) *AddressSpace {
	t.Helper()
	as, err := New(env, h.fs.Client(2), name, Config{
		CodePages:  8,
		HeapPages:  heapPages,
		StackPages: 2,
		BinaryPath: "/bin/prog",
	}, DefaultParams())
	if err != nil {
		t.Fatalf("vm.New: %v", err)
	}
	return as
}

func TestTouchFaultsOnceThenResident(t *testing.T) {
	h := newHarness(t)
	h.run(t, func(env *sim.Env) error {
		as := newSpace(t, env, h, "p1", 16)
		if err := as.Touch(env, as.Heap, 3, false); err != nil {
			return err
		}
		if !as.Heap.Resident(3) {
			t.Error("page not resident after touch")
		}
		before := as.Stats().Faults
		if err := as.Touch(env, as.Heap, 3, true); err != nil {
			return err
		}
		if as.Stats().Faults != before {
			t.Error("second touch faulted")
		}
		if !as.Heap.Dirty(3) {
			t.Error("write touch did not dirty page")
		}
		return nil
	})
}

func TestTouchOutOfRange(t *testing.T) {
	h := newHarness(t)
	h.run(t, func(env *sim.Env) error {
		as := newSpace(t, env, h, "p1", 4)
		if err := as.Touch(env, as.Heap, 4, false); !errors.Is(err, ErrBadPage) {
			t.Errorf("err = %v, want ErrBadPage", err)
		}
		if err := as.Touch(env, as.Heap, -1, false); !errors.Is(err, ErrBadPage) {
			t.Errorf("err = %v, want ErrBadPage", err)
		}
		return nil
	})
}

func TestFlushDirtyWritesToBackingStore(t *testing.T) {
	h := newHarness(t)
	h.run(t, func(env *sim.Env) error {
		as := newSpace(t, env, h, "p1", 16)
		for i := 0; i < 8; i++ {
			if err := as.Touch(env, as.Heap, i, true); err != nil {
				return err
			}
		}
		if as.DirtyPages() != 8 {
			t.Fatalf("dirty = %d, want 8", as.DirtyPages())
		}
		t0 := env.Now()
		n, err := as.FlushDirty(env, h.fs.Client(2))
		if err != nil {
			return err
		}
		if n != 8 {
			t.Errorf("flushed %d, want 8", n)
		}
		if as.DirtyPages() != 0 {
			t.Error("pages still dirty after flush")
		}
		if env.Now() == t0 {
			t.Error("flush of 64KB must take time")
		}
		// Backing file now holds the data: the swap file grew.
		_, size, err := h.fs.Client(2).Stat(env, "/swap/p1.heap")
		if err != nil {
			return err
		}
		if size != 8*8192 {
			t.Errorf("swap size = %d, want %d", size, 8*8192)
		}
		return nil
	})
}

func TestDemandPagingAfterInvalidate(t *testing.T) {
	h := newHarness(t)
	h.run(t, func(env *sim.Env) error {
		as := newSpace(t, env, h, "p1", 16)
		for i := 0; i < 8; i++ {
			if err := as.Touch(env, as.Heap, i, true); err != nil {
				return err
			}
		}
		if _, err := as.FlushDirty(env, h.fs.Client(2)); err != nil {
			return err
		}
		// Simulate arrival on the target: empty resident set, pages come
		// from backing store on demand.
		as.Heap.InvalidateAll()
		as.SetPagerAll(&FilePager{Client: h.fs.Client(3)})
		t0 := env.Now()
		if err := as.Touch(env, as.Heap, 0, false); err != nil {
			return err
		}
		if env.Now() == t0 {
			t.Error("demand paging a flushed page must cost time")
		}
		if !as.Heap.Resident(0) {
			t.Error("page not resident after demand paging")
		}
		return nil
	})
}

func TestSetResidency(t *testing.T) {
	h := newHarness(t)
	h.run(t, func(env *sim.Env) error {
		as := newSpace(t, env, h, "p1", 100)
		as.Heap.SetResidency(0.5, 0.25)
		if got := as.Heap.ResidentCount(); got != 50 {
			t.Errorf("resident = %d, want 50", got)
		}
		if got := as.Heap.DirtyCount(); got != 25 {
			t.Errorf("dirty = %d, want 25", got)
		}
		return nil
	})
}

func TestCodePagesFromBinaryAreCached(t *testing.T) {
	h := newHarness(t)
	h.run(t, func(env *sim.Env) error {
		as := newSpace(t, env, h, "p1", 4)
		// Touch all code pages; the binary is cacheable so a second
		// process's touches on the same host would hit the client cache.
		for i := 0; i < as.Code.Pages(); i++ {
			if err := as.Touch(env, as.Code, i, false); err != nil {
				return err
			}
		}
		hits := h.fs.Client(2).Stats().Hits
		as2 := newSpace(t, env, h, "p2", 4)
		for i := 0; i < as2.Code.Pages(); i++ {
			if err := as2.Touch(env, as2.Code, i, false); err != nil {
				return err
			}
		}
		if h.fs.Client(2).Stats().Hits <= hits {
			t.Error("second process's code touches should hit the cache")
		}
		return nil
	})
}

func TestTouchRangeAndCounts(t *testing.T) {
	h := newHarness(t)
	h.run(t, func(env *sim.Env) error {
		as := newSpace(t, env, h, "p1", 32)
		if err := as.TouchRange(env, as.Heap, 4, 12, true); err != nil {
			return err
		}
		if got := as.Heap.ResidentCount(); got != 8 {
			t.Errorf("resident = %d, want 8", got)
		}
		if got := len(as.Heap.DirtyList()); got != 8 {
			t.Errorf("dirty list = %d, want 8", got)
		}
		if as.TotalPages() != 8+32+2 {
			t.Errorf("total = %d", as.TotalPages())
		}
		return nil
	})
}
