package vm

import (
	"testing"

	"sprite/internal/sim"
)

func TestResidentSetCapEnforced(t *testing.T) {
	h := newHarness(t)
	h.run(t, func(env *sim.Env) error {
		as := newSpace(t, env, h, "capped", 32)
		as.SetMaxResident(8)
		for i := 0; i < 32; i++ {
			if err := as.Touch(env, as.Heap, i, false); err != nil {
				return err
			}
			if got := as.ResidentPages(); got > 8 {
				t.Fatalf("resident = %d after touch %d, cap 8", got, i)
			}
		}
		return nil
	})
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	h := newHarness(t)
	h.run(t, func(env *sim.Env) error {
		as := newSpace(t, env, h, "dirtycap", 32)
		as.SetMaxResident(4)
		// Dirty 12 pages through a 4-page cap: 8+ evictions of dirty pages.
		for i := 0; i < 12; i++ {
			if err := as.Touch(env, as.Heap, i, true); err != nil {
				return err
			}
		}
		if as.Stats().PageOuts == 0 {
			t.Fatal("no page-outs under pressure")
		}
		// Written-back pages landed in the backing store.
		_, size, err := h.fs.Client(2).Stat(env, "/swap/dirtycap.heap")
		if err != nil {
			return err
		}
		if size == 0 {
			t.Fatal("backing store empty after dirty evictions")
		}
		// Evicted pages fault back in on re-touch.
		before := as.Stats().Faults
		if err := as.Touch(env, as.Heap, 0, false); err != nil {
			return err
		}
		if as.Stats().Faults == before {
			t.Fatal("evicted page did not fault on re-touch")
		}
		return nil
	})
}

func TestThrashingStillMakesProgress(t *testing.T) {
	h := newHarness(t)
	h.run(t, func(env *sim.Env) error {
		as := newSpace(t, env, h, "thrash", 16)
		as.SetMaxResident(2)
		// Repeatedly sweep a working set far larger than the cap.
		for pass := 0; pass < 3; pass++ {
			for i := 0; i < 16; i++ {
				if err := as.Touch(env, as.Heap, i, pass == 0); err != nil {
					return err
				}
			}
		}
		if got := as.ResidentPages(); got > 2 {
			t.Fatalf("resident = %d, cap 2", got)
		}
		return nil
	})
}

func TestUnlimitedByDefault(t *testing.T) {
	h := newHarness(t)
	h.run(t, func(env *sim.Env) error {
		as := newSpace(t, env, h, "uncapped", 64)
		for i := 0; i < 64; i++ {
			if err := as.Touch(env, as.Heap, i, true); err != nil {
				return err
			}
		}
		if got := as.Heap.ResidentCount(); got != 64 {
			t.Fatalf("resident = %d, want 64 (no cap)", got)
		}
		if as.Stats().PageOuts != 0 {
			t.Fatal("page-outs without a cap")
		}
		return nil
	})
}
