// Package vm models Sprite's virtual memory as it matters to process
// migration: segmented address spaces whose pages carry resident and dirty
// bits, demand-paged from backing files in the shared network file system.
//
// Paging through the file system is the property that makes Sprite's
// migration strategy cheap: to migrate, the source flushes dirty pages to
// the (network) backing file and the target demand-pages them as the
// process touches memory — the machinery to page across the network already
// exists [Nel88]. Alternative strategies (full copy, copy-on-reference,
// pre-copy) are expressed by swapping the segment's Pager.
package vm

import (
	"errors"
	"fmt"
	"time"

	"sprite/internal/fs"
	"sprite/internal/sim"
)

// Errors reported by the VM system.
var (
	// ErrBadPage is returned for out-of-range page indexes.
	ErrBadPage = errors.New("vm: page index out of range")
)

// SegmentKind distinguishes the classic UNIX segments.
type SegmentKind int

// Segment kinds.
const (
	CodeSegment SegmentKind = iota + 1
	HeapSegment
	StackSegment
)

func (k SegmentKind) String() string {
	switch k {
	case CodeSegment:
		return "code"
	case HeapSegment:
		return "heap"
	case StackSegment:
		return "stack"
	default:
		return "?"
	}
}

// Params configures the VM system.
type Params struct {
	// PageSize in bytes (Sprite used 8 KB on Sun-3s).
	PageSize int
	// FaultCPU is the local CPU cost of taking a page fault, excluding the
	// I/O to fetch the page.
	FaultCPU time.Duration
}

// DefaultParams returns Sun-3-era VM parameters.
func DefaultParams() Params {
	return Params{
		PageSize: 8192,
		FaultCPU: 500 * time.Microsecond,
	}
}

// Pager supplies a page's contents when a non-resident page is touched.
type Pager interface {
	// PageIn charges the cost of bringing one page into memory.
	PageIn(env *sim.Env, seg *Segment, page int) error
}

// Stats counts VM events for an address space.
type Stats struct {
	Faults   uint64
	PageIns  uint64
	PageOuts uint64
	// Prefetched counts pages brought in ahead of demand by the readahead
	// pager (they become resident without taking a fault of their own).
	Prefetched uint64
}

// Segment is one region of an address space.
type Segment struct {
	Kind     SegmentKind
	pages    int
	resident []bool
	dirty    []bool
	pager    Pager
	space    *AddressSpace

	// Backing is the segment's backing-store stream (nil for code, which
	// pages from the program binary through Binary).
	Backing *fs.Stream
}

// Pages returns the segment's size in pages.
func (s *Segment) Pages() int { return s.pages }

// Bytes returns the segment's size in bytes.
func (s *Segment) Bytes() int { return s.pages * s.space.params.PageSize }

// Resident reports whether page i is resident.
func (s *Segment) Resident(i int) bool { return i >= 0 && i < s.pages && s.resident[i] }

// Dirty reports whether page i is dirty.
func (s *Segment) Dirty(i int) bool { return i >= 0 && i < s.pages && s.dirty[i] }

// ResidentCount returns the number of resident pages.
func (s *Segment) ResidentCount() int { return countTrue(s.resident) }

// DirtyCount returns the number of dirty pages.
func (s *Segment) DirtyCount() int { return countTrue(s.dirty) }

// DirtyList returns the indexes of dirty pages in ascending order.
func (s *Segment) DirtyList() []int { return listTrue(s.dirty) }

// ResidentList returns the indexes of resident pages in ascending order.
func (s *Segment) ResidentList() []int { return listTrue(s.resident) }

// SetPager replaces the segment's pager (used by migration strategies).
func (s *Segment) SetPager(p Pager) { s.pager = p }

// SetResidency force-sets page state without cost; experiment setup uses it
// to express "this process has been running for a while".
func (s *Segment) SetResidency(residentFrac, dirtyFrac float64) {
	for i := 0; i < s.pages; i++ {
		s.resident[i] = float64(i) < residentFrac*float64(s.pages)
		s.dirty[i] = s.resident[i] && float64(i) < dirtyFrac*float64(s.pages)
	}
}

// InvalidateAll marks every page non-resident and clean (after the Sprite
// flush, the target starts with an empty resident set).
func (s *Segment) InvalidateAll() {
	for i := range s.resident {
		s.resident[i] = false
		s.dirty[i] = false
	}
}

// MarkResident marks page i resident (no cost — used by transfer strategies
// that ship pages directly).
func (s *Segment) MarkResident(i int, dirty bool) {
	if i >= 0 && i < s.pages {
		s.resident[i] = true
		s.dirty[i] = dirty
	}
}

// ClearDirty marks page i clean.
func (s *Segment) ClearDirty(i int) {
	if i >= 0 && i < s.pages {
		s.dirty[i] = false
	}
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

func listTrue(bs []bool) []int {
	var out []int
	for i, b := range bs {
		if b {
			out = append(out, i)
		}
	}
	return out
}

// AddressSpace is a process's memory image.
type AddressSpace struct {
	params Params
	name   string

	Code  *Segment
	Heap  *Segment
	Stack *Segment

	stats Stats

	// cpu is charged for fault handling; it is the current host's CPU and
	// is updated on migration.
	chargeCPU func(env *sim.Env, d time.Duration) error

	// maxResident caps the resident set (0 = unlimited); clockSeg and
	// clockPage are the replacement hand.
	maxResident int
	clockSeg    int
	clockPage   int
}

// Config sizes a new address space.
type Config struct {
	// CodePages, HeapPages, StackPages size the three segments.
	CodePages  int
	HeapPages  int
	StackPages int
	// BinaryPath is the program file backing the code segment.
	BinaryPath string
	// SwapDir is the directory for backing-store files (default "/swap").
	SwapDir string
}

// New creates an address space for a named process, opening its backing
// store through the given file system client. The code segment pages from
// the binary; heap and stack page from per-process uncacheable swap files.
func New(env *sim.Env, client *fs.Client, name string, cfg Config, params Params) (*AddressSpace, error) {
	if params.PageSize <= 0 {
		params.PageSize = 8192
	}
	swapDir := cfg.SwapDir
	if swapDir == "" {
		swapDir = "/swap"
	}
	as := &AddressSpace{params: params, name: name}
	as.Code = as.newSegment(CodeSegment, cfg.CodePages)
	as.Heap = as.newSegment(HeapSegment, cfg.HeapPages)
	as.Stack = as.newSegment(StackSegment, cfg.StackPages)

	if cfg.BinaryPath != "" && cfg.CodePages > 0 {
		st, err := client.Open(env, cfg.BinaryPath, fs.ReadMode, fs.OpenOptions{})
		if err != nil {
			return nil, fmt.Errorf("vm: open binary: %w", err)
		}
		as.Code.Backing = st
	}
	for _, seg := range []*Segment{as.Heap, as.Stack} {
		if seg.pages == 0 {
			continue
		}
		path := fmt.Sprintf("%s/%s.%s", swapDir, name, seg.Kind)
		st, err := client.Open(env, path, fs.ReadWriteMode, fs.OpenOptions{Create: true, Uncacheable: true})
		if err != nil {
			return nil, fmt.Errorf("vm: open backing store: %w", err)
		}
		seg.Backing = st
	}
	fsp := &FilePager{Client: client}
	as.Code.pager = fsp
	as.Heap.pager = fsp
	as.Stack.pager = fsp
	return as, nil
}

func (as *AddressSpace) newSegment(kind SegmentKind, pages int) *Segment {
	return &Segment{
		Kind:     kind,
		pages:    pages,
		resident: make([]bool, pages),
		dirty:    make([]bool, pages),
		space:    as,
	}
}

// Name returns the address space's owner name.
func (as *AddressSpace) Name() string { return as.name }

// Params returns the VM parameters.
func (as *AddressSpace) Params() Params { return as.params }

// Stats returns a copy of the fault counters.
func (as *AddressSpace) Stats() Stats { return as.stats }

// Segments returns the three segments.
func (as *AddressSpace) Segments() []*Segment {
	return []*Segment{as.Code, as.Heap, as.Stack}
}

// TotalPages returns the address space size in pages.
func (as *AddressSpace) TotalPages() int {
	return as.Code.pages + as.Heap.pages + as.Stack.pages
}

// ResidentPages returns the total resident page count.
func (as *AddressSpace) ResidentPages() int {
	return as.Code.ResidentCount() + as.Heap.ResidentCount() + as.Stack.ResidentCount()
}

// DirtyPages returns the total dirty page count.
func (as *AddressSpace) DirtyPages() int {
	return as.Heap.DirtyCount() + as.Stack.DirtyCount()
}

// SetCPU installs the current host's CPU charge function (updated by the
// kernel on migration).
func (as *AddressSpace) SetCPU(charge func(env *sim.Env, d time.Duration) error) {
	as.chargeCPU = charge
}

// SetPagerAll installs one pager on every segment.
func (as *AddressSpace) SetPagerAll(p Pager) {
	for _, seg := range as.Segments() {
		seg.pager = p
	}
}

// Touch references page i of seg, faulting it in if necessary; write marks
// it dirty. This is the single entry point by which running programs
// exercise their memory.
func (as *AddressSpace) Touch(env *sim.Env, seg *Segment, page int, write bool) error {
	if page < 0 || page >= seg.pages {
		return fmt.Errorf("%w: %s page %d of %d", ErrBadPage, seg.Kind, page, seg.pages)
	}
	if !seg.resident[page] {
		as.stats.Faults++
		if as.chargeCPU != nil && as.params.FaultCPU > 0 {
			if err := as.chargeCPU(env, as.params.FaultCPU); err != nil {
				return err
			}
		}
		if as.maxResident > 0 && as.ResidentPages() >= as.maxResident {
			if err := as.evictOne(env, seg, page); err != nil {
				return err
			}
		}
		if seg.pager != nil {
			if err := seg.pager.PageIn(env, seg, page); err != nil {
				return fmt.Errorf("vm: page in %s/%d: %w", seg.Kind, page, err)
			}
		}
		as.stats.PageIns++
		seg.resident[page] = true
	}
	if write {
		seg.dirty[page] = true
	}
	return nil
}

// TouchRange references pages [lo, hi) of seg.
func (as *AddressSpace) TouchRange(env *sim.Env, seg *Segment, lo, hi int, write bool) error {
	for i := lo; i < hi; i++ {
		if err := as.Touch(env, seg, i, write); err != nil {
			return err
		}
	}
	return nil
}

// FlushDirty writes every dirty heap/stack page to backing store through the
// given client and marks it clean. It returns the number of pages written.
// This is the core of Sprite's migration-time VM transfer.
func (as *AddressSpace) FlushDirty(env *sim.Env, client *fs.Client) (int, error) {
	written := 0
	buf := make([]byte, as.params.PageSize)
	for _, seg := range []*Segment{as.Heap, as.Stack} {
		if seg.Backing == nil {
			continue
		}
		for _, page := range seg.DirtyList() {
			off := int64(page) * int64(as.params.PageSize)
			if err := client.WriteAt(env, seg.Backing, off, buf); err != nil {
				return written, fmt.Errorf("vm: flush %s/%d: %w", seg.Kind, page, err)
			}
			seg.dirty[page] = false
			written++
			as.stats.PageOuts++
		}
	}
	return written, nil
}

// FilePager pages from the segment's backing stream through the file
// system — Sprite's normal paging path.
type FilePager struct {
	// Client is the FS client of the host where the process currently runs.
	Client *fs.Client
}

var _ Pager = (*FilePager)(nil)

// PageIn reads the page from the backing stream.
func (p *FilePager) PageIn(env *sim.Env, seg *Segment, page int) error {
	if seg.Backing == nil {
		return nil // anonymous zero-fill page
	}
	ps := seg.space.params.PageSize
	off := int64(page) * int64(ps)
	_, err := p.Client.ReadAt(env, seg.Backing, off, ps)
	return err
}
