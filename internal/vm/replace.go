package vm

import (
	"fmt"

	"sprite/internal/sim"
)

// PageOuter is implemented by pagers that can write a dirty page back to
// wherever it pages from, so the page can be evicted under memory pressure.
type PageOuter interface {
	// PageOut charges the cost of writing one dirty page out.
	PageOut(env *sim.Env, seg *Segment, page int) error
}

// SetMaxResident caps the address space's resident set; bringing in a page
// beyond the cap evicts another first (clock order). Zero means unlimited.
func (as *AddressSpace) SetMaxResident(pages int) { as.maxResident = pages }

// MaxResident returns the resident-set cap (0 = unlimited).
func (as *AddressSpace) MaxResident() int { return as.maxResident }

// evictOne frees one resident page using a simple clock sweep across the
// segments. Dirty pages are written back through the segment's pager
// first; clean pages are dropped for free.
func (as *AddressSpace) evictOne(env *sim.Env, keep *Segment, keepPage int) error {
	segs := as.Segments()
	total := 0
	for _, s := range segs {
		total += s.pages
	}
	for scanned := 0; scanned < total; scanned++ {
		seg, page := as.clockPosition()
		as.advanceClock()
		if seg == keep && page == keepPage {
			continue
		}
		if !seg.resident[page] {
			continue
		}
		if seg.dirty[page] {
			po, ok := seg.pager.(PageOuter)
			if !ok {
				continue // cannot evict dirty pages through this pager
			}
			if err := po.PageOut(env, seg, page); err != nil {
				return fmt.Errorf("vm: page out %s/%d: %w", seg.Kind, page, err)
			}
			seg.dirty[page] = false
			as.stats.PageOuts++
		}
		seg.resident[page] = false
		return nil
	}
	return fmt.Errorf("vm: no evictable page in %s", as.name)
}

// clockPosition returns the segment and page under the clock hand.
func (as *AddressSpace) clockPosition() (*Segment, int) {
	segs := as.Segments()
	idx := as.clockSeg % len(segs)
	seg := segs[idx]
	if seg.pages == 0 {
		return seg, 0
	}
	return seg, as.clockPage % seg.pages
}

// advanceClock moves the hand one page forward, wrapping across segments.
func (as *AddressSpace) advanceClock() {
	segs := as.Segments()
	seg := segs[as.clockSeg%len(segs)]
	as.clockPage++
	if seg.pages == 0 || as.clockPage >= seg.pages {
		as.clockPage = 0
		as.clockSeg = (as.clockSeg + 1) % len(segs)
	}
}

// PageOut implements PageOuter for the file-system pager: the page is
// written to its backing stream.
func (p *FilePager) PageOut(env *sim.Env, seg *Segment, page int) error {
	if seg.Backing == nil {
		return nil
	}
	ps := seg.space.params.PageSize
	off := int64(page) * int64(ps)
	return p.Client.WriteAt(env, seg.Backing, off, make([]byte, ps))
}

var _ PageOuter = (*FilePager)(nil)
