// Package pdev implements Sprite's pseudo-devices [WO88]: file-like
// communication channels served by user-level server processes. A client
// opens a path and exchanges request/response messages with whatever
// process serves that path; only the operating system knows where either
// end currently runs, so migration of the client *or* the server is
// invisible to the other — the property the thesis relies on for IPC
// transparency (§3.2). Sprite's Internet protocol service [Che87] was built
// this way, which is why sockets posed no problem for migration.
//
// Routing mirrors Sprite's: the file server that owns the pseudo-device's
// name is the rendezvous; it tracks the serving process's current host and
// forwards requests there. When the server process migrates, the first
// request routed to the old host discovers the stale location, and the
// rendezvous is updated — one extra hop, once.
package pdev

import (
	"errors"
	"fmt"

	"sprite/internal/core"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// Errors reported by pseudo-device operations.
var (
	// ErrNotServed is returned when no process serves the path.
	ErrNotServed = errors.New("pdev: path not served")
	// ErrClosed is returned when the device has been shut down.
	ErrClosed = errors.New("pdev: device closed")
)

// registration is the rendezvous record kept at the owning file server.
type registration struct {
	dev  *Device
	host rpc.HostID // last known host of the serving process
}

// System is the cluster-wide pseudo-device fabric. One System serves a
// cluster; it registers its routing services on every host.
type System struct {
	cluster *core.Cluster
	// registry is indexed by path; conceptually it lives at each path's
	// owning file server, and every access is charged a hop to that server.
	registry map[string]*registration
}

// NewSystem creates the pseudo-device fabric for a cluster.
func NewSystem(cluster *core.Cluster) *System {
	s := &System{
		cluster:  cluster,
		registry: make(map[string]*registration),
	}
	for _, k := range cluster.Workstations() {
		host := k.Host()
		ep := cluster.Transport().Endpoint(host)
		ep.Handle("pdev.deliver", s.makeDeliverHandler(host))
	}
	for srvHost := range cluster.FS().Servers() {
		ep := cluster.Transport().Endpoint(srvHost)
		ep.Handle("pdev.route", s.makeRouteHandler(srvHost))
	}
	return s
}

// Device is one served pseudo-device.
type Device struct {
	sys    *System
	path   string
	owner  *core.Process
	queue  *sim.Queue
	closed bool
}

// Request is one client message awaiting a reply.
type Request struct {
	From core.PID
	Data []byte

	reply *sim.Future
}

// wire formats
type (
	routeArgs struct {
		Path string
		From core.PID
		Data []byte
	}
	deliverArgs struct {
		Path string
		From core.PID
		Data []byte
	}
	deliverReply struct {
		Data []byte
	}
)

// Serve registers the calling process as the server for path. The path's
// owning file server records the rendezvous (one RPC, like opening the
// pseudo-device for serving).
func (s *System) Serve(ctx *core.Ctx, path string) (*Device, error) {
	srvHost, err := s.cluster.FS().Namespace().Lookup(path)
	if err != nil {
		return nil, fmt.Errorf("pdev serve %s: %w", path, err)
	}
	p := ctx.Process()
	// Registration is a small control round trip to the owning file
	// server (Sprite opens the pseudo-device file in "server" mode).
	if p.Current().Host() != srvHost {
		if err := s.cluster.Network().Send(ctx.Env(), 64); err != nil {
			return nil, err
		}
		if err := s.cluster.Network().Send(ctx.Env(), 16); err != nil {
			return nil, err
		}
	}
	dev := &Device{
		sys:   s,
		path:  path,
		owner: p,
		queue: sim.NewQueue(s.cluster.Sim()),
	}
	s.registry[path] = &registration{dev: dev, host: p.Current().Host()}
	return dev, nil
}

// Recv blocks until a client request arrives. It is a kernel call (a read
// on the pseudo-device): entering it — and returning from it — are
// migration and signal-delivery points, so a blocked server can still be
// evicted as soon as it wakes.
func (d *Device) Recv(ctx *core.Ctx) (*Request, error) {
	if d.closed {
		return nil, ErrClosed
	}
	if err := ctx.Syscall("pdev-read"); err != nil {
		return nil, err
	}
	v, err := d.queue.Recv(ctx.Env())
	if err != nil {
		return nil, err
	}
	// Deliver any migration that was requested while we were blocked.
	if err := ctx.Syscall("pdev-read"); err != nil {
		return nil, err
	}
	req, ok := v.(*Request)
	if !ok {
		return nil, fmt.Errorf("pdev: bad queue item %T", v)
	}
	return req, nil
}

// Reply completes a request. It is a kernel call (a write on the
// pseudo-device); the response is charged as a message from the server's
// current host back through the fabric.
func (d *Device) Reply(ctx *core.Ctx, req *Request, data []byte) error {
	if err := ctx.Syscall("pdev-write"); err != nil {
		return err
	}
	if err := d.sys.cluster.Network().Send(ctx.Env(), 32+len(data)); err != nil {
		return err
	}
	req.reply.Complete(append([]byte(nil), data...), nil)
	return nil
}

// Close shuts the device down: queued and future callers get ErrNotServed.
func (d *Device) Close() {
	if d.closed {
		return
	}
	d.closed = true
	delete(d.sys.registry, d.path)
	d.queue.Close()
}

// Path returns the device's name.
func (d *Device) Path() string { return d.path }

// Call sends data to the process serving path and waits for its reply.
// The request travels client host -> owning file server -> server-process
// host; a stale rendezvous costs one extra forwarding hop.
func (s *System) Call(ctx *core.Ctx, path string, data []byte) ([]byte, error) {
	srvHost, err := s.cluster.FS().Namespace().Lookup(path)
	if err != nil {
		return nil, fmt.Errorf("pdev call %s: %w", path, err)
	}
	from := ctx.Process()
	ep := s.cluster.Transport().Endpoint(from.Current().Host())
	reply, err := ep.Call(ctx.Env(), srvHost, "pdev.route", routeArgs{
		Path: path,
		From: from.PID(),
		Data: data,
	}, 48+len(data))
	if err != nil {
		return nil, err
	}
	r, ok := reply.(deliverReply)
	if !ok {
		return nil, fmt.Errorf("pdev call %s: bad reply %T", path, reply)
	}
	return r.Data, nil
}

// makeRouteHandler serves "pdev.route" at a file server: resolve the
// rendezvous and forward to the serving process's host, healing stale
// locations.
func (s *System) makeRouteHandler(srvHost rpc.HostID) rpc.Handler {
	return func(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
		a, ok := arg.(routeArgs)
		if !ok {
			return nil, 0, fmt.Errorf("pdev.route: bad args %T", arg)
		}
		reg, ok := s.registry[a.Path]
		if !ok || reg.dev.closed {
			return nil, 0, fmt.Errorf("%w: %s", ErrNotServed, a.Path)
		}
		ep := s.cluster.Transport().Endpoint(srvHost)
		for hops := 0; hops < 2; hops++ {
			reply, err := ep.Call(env, reg.host, "pdev.deliver", deliverArgs(a), 48+len(a.Data))
			if err == nil {
				r, ok := reply.(deliverReply)
				if !ok {
					return nil, 0, fmt.Errorf("pdev.route: bad reply %T", reply)
				}
				return r, 16 + len(r.Data), nil
			}
			if !errors.Is(err, errStaleLocation) {
				return nil, 0, err
			}
			// Stale rendezvous: the server process migrated. Update and
			// retry once.
			reg.host = reg.dev.owner.Current().Host()
		}
		return nil, 0, fmt.Errorf("%w: %s (location thrashing)", ErrNotServed, a.Path)
	}
}

// errStaleLocation marks a delivery attempt at a host the server process
// has migrated away from.
var errStaleLocation = errors.New("pdev: server process not at this host")

// makeDeliverHandler serves "pdev.deliver" at a workstation: enqueue for
// the serving process if it is actually here, then wait for its reply.
func (s *System) makeDeliverHandler(host rpc.HostID) rpc.Handler {
	return func(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
		a, ok := arg.(deliverArgs)
		if !ok {
			return nil, 0, fmt.Errorf("pdev.deliver: bad args %T", arg)
		}
		reg, ok := s.registry[a.Path]
		if !ok || reg.dev.closed {
			return nil, 0, fmt.Errorf("%w: %s", ErrNotServed, a.Path)
		}
		dev := reg.dev
		if dev.owner.Current().Host() != host {
			return nil, 0, errStaleLocation
		}
		req := &Request{
			From:  a.From,
			Data:  append([]byte(nil), a.Data...),
			reply: sim.NewFuture(s.cluster.Sim()),
		}
		dev.queue.Send(req)
		v, err := req.reply.Wait(env)
		if err != nil {
			return nil, 0, err
		}
		data, _ := v.([]byte)
		return deliverReply{Data: data}, 16 + len(data), nil
	}
}
