package pdev

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"sprite/internal/core"
	"sprite/internal/sim"
)

func newCluster(t *testing.T, workstations int) (*core.Cluster, *System) {
	t.Helper()
	c, err := core.NewCluster(core.Options{Workstations: workstations, FileServers: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SeedBinary("/bin/prog", 64*1024); err != nil {
		t.Fatal(err)
	}
	return c, NewSystem(c)
}

var cfg = core.ProcConfig{Binary: "/bin/prog", CodePages: 4, HeapPages: 8, StackPages: 2}

// echoServer serves path, answering n requests by echoing with a prefix.
func echoServer(sys *System, path string, n int) core.Program {
	return func(ctx *core.Ctx) error {
		dev, err := sys.Serve(ctx, path)
		if err != nil {
			return err
		}
		defer dev.Close()
		for i := 0; i < n; i++ {
			req, err := dev.Recv(ctx)
			if err != nil {
				return err
			}
			if err := dev.Reply(ctx, req, append([]byte("echo:"), req.Data...)); err != nil {
				return err
			}
		}
		return nil
	}
}

func TestRequestResponseAcrossHosts(t *testing.T) {
	c, sys := newCluster(t, 2)
	srvK, cliK := c.Workstation(0), c.Workstation(1)
	c.Boot("boot", func(env *sim.Env) error {
		srv, err := srvK.StartProcess(env, "ipserver", echoServer(sys, "/dev/ip", 1), cfg)
		if err != nil {
			return err
		}
		cli, err := cliK.StartProcess(env, "client", func(ctx *core.Ctx) error {
			if err := ctx.Env().Sleep(10 * time.Millisecond); err != nil {
				return err
			}
			reply, err := sys.Call(ctx, "/dev/ip", []byte("hello"))
			if err != nil {
				return err
			}
			if string(reply) != "echo:hello" {
				t.Errorf("reply = %q", reply)
			}
			return nil
		}, cfg)
		if err != nil {
			return err
		}
		if _, err := cli.Exited().Wait(env); err != nil {
			return err
		}
		_, err = srv.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestServerMigrationIsTransparentToClients(t *testing.T) {
	c, sys := newCluster(t, 3)
	srvK, cliK, dstK := c.Workstation(0), c.Workstation(1), c.Workstation(2)
	c.Boot("boot", func(env *sim.Env) error {
		srv, err := srvK.StartProcess(env, "server", func(ctx *core.Ctx) error {
			dev, err := sys.Serve(ctx, "/dev/svc")
			if err != nil {
				return err
			}
			defer dev.Close()
			// Answer one request at home.
			req, err := dev.Recv(ctx)
			if err != nil {
				return err
			}
			if err := dev.Reply(ctx, req, []byte("from-home")); err != nil {
				return err
			}
			// Migrate, then answer another.
			if err := ctx.Migrate(dstK.Host()); err != nil {
				return err
			}
			req, err = dev.Recv(ctx)
			if err != nil {
				return err
			}
			return dev.Reply(ctx, req, []byte("from-away"))
		}, cfg)
		if err != nil {
			return err
		}
		cli, err := cliK.StartProcess(env, "client", func(ctx *core.Ctx) error {
			if err := ctx.Env().Sleep(10 * time.Millisecond); err != nil {
				return err
			}
			r1, err := sys.Call(ctx, "/dev/svc", []byte("a"))
			if err != nil {
				return err
			}
			// Give the server time to migrate.
			if err := ctx.Env().Sleep(5 * time.Second); err != nil {
				return err
			}
			r2, err := sys.Call(ctx, "/dev/svc", []byte("b"))
			if err != nil {
				return err
			}
			if string(r1) != "from-home" || string(r2) != "from-away" {
				t.Errorf("replies = %q, %q", r1, r2)
			}
			return nil
		}, cfg)
		if err != nil {
			return err
		}
		if _, err := cli.Exited().Wait(env); err != nil {
			return err
		}
		_, err = srv.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestClientMigrationIsTransparentToServer(t *testing.T) {
	c, sys := newCluster(t, 3)
	srvK, cliK, dstK := c.Workstation(0), c.Workstation(1), c.Workstation(2)
	c.Boot("boot", func(env *sim.Env) error {
		srv, err := srvK.StartProcess(env, "server", echoServer(sys, "/dev/svc", 2), cfg)
		if err != nil {
			return err
		}
		cli, err := cliK.StartProcess(env, "client", func(ctx *core.Ctx) error {
			if err := ctx.Env().Sleep(10 * time.Millisecond); err != nil {
				return err
			}
			if _, err := sys.Call(ctx, "/dev/svc", []byte("one")); err != nil {
				return err
			}
			if err := ctx.Migrate(dstK.Host()); err != nil {
				return err
			}
			reply, err := sys.Call(ctx, "/dev/svc", []byte("two"))
			if err != nil {
				return err
			}
			if string(reply) != "echo:two" {
				t.Errorf("reply after migration = %q", reply)
			}
			return nil
		}, cfg)
		if err != nil {
			return err
		}
		if _, err := cli.Exited().Wait(env); err != nil {
			return err
		}
		_, err = srv.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestUnservedPathFails(t *testing.T) {
	c, sys := newCluster(t, 1)
	var got error
	c.Boot("boot", func(env *sim.Env) error {
		p, err := c.Workstation(0).StartProcess(env, "client", func(ctx *core.Ctx) error {
			_, got = sys.Call(ctx, "/dev/ghost", []byte("x"))
			return nil
		}, cfg)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got, ErrNotServed) {
		t.Fatalf("err = %v, want ErrNotServed", got)
	}
}

func TestClosedDeviceRejectsCalls(t *testing.T) {
	c, sys := newCluster(t, 2)
	var got error
	c.Boot("boot", func(env *sim.Env) error {
		srv, err := c.Workstation(0).StartProcess(env, "server", func(ctx *core.Ctx) error {
			dev, err := sys.Serve(ctx, "/dev/once")
			if err != nil {
				return err
			}
			dev.Close()
			return nil
		}, cfg)
		if err != nil {
			return err
		}
		if _, err := srv.Exited().Wait(env); err != nil {
			return err
		}
		cli, err := c.Workstation(1).StartProcess(env, "client", func(ctx *core.Ctx) error {
			_, got = sys.Call(ctx, "/dev/once", []byte("x"))
			return nil
		}, cfg)
		if err != nil {
			return err
		}
		_, err = cli.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got, ErrNotServed) {
		t.Fatalf("err = %v, want ErrNotServed", got)
	}
}

func TestManyClientsOneServer(t *testing.T) {
	c, sys := newCluster(t, 5)
	const reqsPerClient = 3
	clients := 4
	c.Boot("boot", func(env *sim.Env) error {
		srv, err := c.Workstation(0).StartProcess(env, "server",
			echoServer(sys, "/dev/busy", clients*reqsPerClient), cfg)
		if err != nil {
			return err
		}
		wg := sim.NewWaitGroup(c.Sim())
		wg.Add(clients)
		for i := 0; i < clients; i++ {
			k := c.Workstation(1 + i)
			idx := i
			_, err := k.StartProcess(env, fmt.Sprintf("client%d", i), func(ctx *core.Ctx) error {
				defer wg.Done()
				if err := ctx.Env().Sleep(10 * time.Millisecond); err != nil {
					return err
				}
				for r := 0; r < reqsPerClient; r++ {
					msg := []byte(fmt.Sprintf("c%d-r%d", idx, r))
					reply, err := sys.Call(ctx, "/dev/busy", msg)
					if err != nil {
						return err
					}
					if string(reply) != "echo:"+string(msg) {
						t.Errorf("reply = %q for %q", reply, msg)
					}
				}
				return nil
			}, cfg)
			if err != nil {
				return err
			}
		}
		if err := wg.Wait(env); err != nil {
			return err
		}
		_, err = srv.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
}

// TestServerSurvivesEviction: the pseudo-device keeps serving when its
// process is *evicted* (not just explicitly migrated) — the realistic path
// in production.
func TestServerSurvivesEviction(t *testing.T) {
	c, sys := newCluster(t, 3)
	homeK, lentK, cliK := c.Workstation(0), c.Workstation(1), c.Workstation(2)
	c.Boot("boot", func(env *sim.Env) error {
		srv, err := homeK.StartProcess(env, "server", func(ctx *core.Ctx) error {
			if err := ctx.Migrate(lentK.Host()); err != nil {
				return err
			}
			dev, err := sys.Serve(ctx, "/dev/evictable")
			if err != nil {
				return err
			}
			defer dev.Close()
			for i := 0; i < 2; i++ {
				req, err := dev.Recv(ctx)
				if err != nil {
					return err
				}
				where := ctx.Process().Current().Host()
				if err := dev.Reply(ctx, req, []byte(where.String())); err != nil {
					return err
				}
			}
			return nil
		}, cfg)
		if err != nil {
			return err
		}
		cli, err := cliK.StartProcess(env, "client", func(ctx *core.Ctx) error {
			if err := ctx.Env().Sleep(time.Second); err != nil {
				return err
			}
			r1, err := sys.Call(ctx, "/dev/evictable", []byte("a"))
			if err != nil {
				return err
			}
			if string(r1) != lentK.Host().String() {
				t.Errorf("first reply from %q, want lent host", r1)
			}
			// The lent host's owner returns. Eviction runs concurrently:
			// the server is blocked reading its pseudo-device, so the
			// migration happens the moment the next request wakes it.
			lentK.NoteInput(ctx.Env().Now())
			ctx.Env().Spawn("evictor", func(ee *sim.Env) error {
				return lentK.EvictAll(ee)
			})
			if err := ctx.Env().Sleep(100 * time.Millisecond); err != nil {
				return err
			}
			r2, err := sys.Call(ctx, "/dev/evictable", []byte("b"))
			if err != nil {
				return err
			}
			if string(r2) != homeK.Host().String() {
				t.Errorf("post-eviction reply from %q, want home host", r2)
			}
			return nil
		}, cfg)
		if err != nil {
			return err
		}
		if _, err := cli.Exited().Wait(env); err != nil {
			return err
		}
		_, err = srv.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestCallsCostTime(t *testing.T) {
	c, sys := newCluster(t, 2)
	var took time.Duration
	c.Boot("boot", func(env *sim.Env) error {
		srv, err := c.Workstation(0).StartProcess(env, "server", echoServer(sys, "/dev/t", 1), cfg)
		if err != nil {
			return err
		}
		cli, err := c.Workstation(1).StartProcess(env, "client", func(ctx *core.Ctx) error {
			if err := ctx.Env().Sleep(10 * time.Millisecond); err != nil {
				return err
			}
			t0 := ctx.Now()
			if _, err := sys.Call(ctx, "/dev/t", make([]byte, 1024)); err != nil {
				return err
			}
			took = ctx.Now() - t0
			return nil
		}, cfg)
		if err != nil {
			return err
		}
		if _, err := cli.Exited().Wait(env); err != nil {
			return err
		}
		_, err = srv.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	// Two hops out + replies: at least 4 network latencies.
	if took < 2*time.Millisecond {
		t.Fatalf("pdev call took %v, want >= 2ms (two routed hops)", took)
	}
}
