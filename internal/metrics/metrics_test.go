package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"sprite/internal/trace"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("x") != c {
		t.Fatal("Counter must return the same instance per name")
	}
	g := r.Gauge("q")
	g.Add(3)
	g.Add(4)
	g.Add(-5)
	if g.Value() != 2 || g.Max() != 7 {
		t.Fatalf("gauge = %d max %d", g.Value(), g.Max())
	}
	g.Set(1)
	if g.Value() != 1 || g.Max() != 7 {
		t.Fatalf("gauge after Set = %d max %d", g.Value(), g.Max())
	}
}

func TestTimingSummary(t *testing.T) {
	r := New()
	tm := r.Timing("phase")
	for i := 1; i <= 100; i++ {
		tm.Observe(time.Duration(i) * time.Millisecond)
	}
	s := tm.summary()
	if s.N != 100 || s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Fatalf("summary = %+v", s)
	}
	if s.Sum != 5050*time.Millisecond {
		t.Fatalf("sum = %v", s.Sum)
	}
	// Sketch quantiles carry a 1% relative bound around the value at rank
	// round(q*(n-1)) — for q=0.5 over 1..100ms that is the 51 ms element.
	if got, want := s.P50, 51*time.Millisecond; got < want*98/100 || got > want*102/100 {
		t.Fatalf("p50 = %v", got)
	}
}

func TestTimingMerge(t *testing.T) {
	r := New()
	a, b := r.Timing("a"), r.Timing("b")
	for i := 1; i <= 50; i++ {
		a.Observe(time.Duration(i) * time.Millisecond)
	}
	for i := 51; i <= 100; i++ {
		b.Observe(time.Duration(i) * time.Millisecond)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != 100 || a.Sum() != 5050*time.Millisecond {
		t.Fatalf("merged n=%d sum=%v", a.N(), a.Sum())
	}
	if err := a.Merge(a); err != nil {
		t.Fatal("self-merge must be a no-op")
	}
	if a.N() != 100 {
		t.Fatalf("self-merge changed n=%d", a.N())
	}
}

func TestSnapshotDeterministicText(t *testing.T) {
	build := func() string {
		r := New()
		r.Counter("b.count").Add(2)
		r.Counter("a.count").Add(1)
		r.Gauge("depth").Set(3)
		r.Timing("t1").Observe(5 * time.Millisecond)
		r.Timing("t1").Observe(7 * time.Millisecond)
		return r.Snapshot().Text()
	}
	x, y := build(), build()
	if x != y {
		t.Fatalf("snapshot text not deterministic:\n%s\nvs\n%s", x, y)
	}
	if !strings.Contains(x, "counter a.count") || strings.Index(x, "a.count") > strings.Index(x, "b.count") {
		t.Fatalf("names not sorted:\n%s", x)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := New()
	r.Counter("c").Inc()
	r.Gauge("g").Set(2)
	r.Timing("t").Observe(time.Millisecond)
	data, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatal(err)
	}
	if round.Counters["c"] != 1 || round.Gauges["g"].Value != 2 || round.Timings["t"].N != 1 {
		t.Fatalf("round-trip = %+v", round)
	}
}

func TestSpanRecordsAndTraces(t *testing.T) {
	r := New()
	log := trace.New(16)
	r.SetTrace(log.Func())
	sp := r.StartSpan("mig.phase.vm", 10*time.Millisecond)
	if d := sp.End(35 * time.Millisecond); d != 25*time.Millisecond {
		t.Fatalf("span duration = %v", d)
	}
	if d := sp.End(99 * time.Millisecond); d != 0 {
		t.Fatal("double End must be a no-op")
	}
	if n := r.Timing("mig.phase.vm").N(); n != 1 {
		t.Fatalf("timing n = %d", n)
	}
	if log.CountKind("span") != 1 {
		t.Fatalf("trace events:\n%s", log.String())
	}
}

func TestSpanAbort(t *testing.T) {
	r := New()
	sp := r.StartSpan("mig.phase.streams", 0)
	sp.Abort(4 * time.Millisecond)
	sp.End(9 * time.Millisecond) // no-op after abort
	if n := r.Timing("mig.phase.streams").N(); n != 0 {
		t.Fatalf("aborted span recorded a duration (n=%d)", n)
	}
	if got := r.Counter("mig.phase.streams.aborted").Value(); got != 1 {
		t.Fatalf("abort counter = %d", got)
	}
	var nilSpan *Span
	nilSpan.Abort(0) // nil-safe
	if d := nilSpan.End(0); d != 0 {
		t.Fatal("nil span End must return 0")
	}
}

// TestConcurrentCounters: instruments must be race-safe (the simulator is
// single-threaded, but the contract is atomic ops so future parallel
// drivers can share a registry).
func TestConcurrentCounters(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n").Inc()
				r.Gauge("g").Add(1)
				r.Timing("t").Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if r.Counter("n").Value() != 8000 || r.Gauge("g").Value() != 8000 || r.Timing("t").N() != 8000 {
		t.Fatalf("lost updates: n=%d g=%d t=%d",
			r.Counter("n").Value(), r.Gauge("g").Value(), r.Timing("t").N())
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := New()
	c := r.Counter("hot")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
