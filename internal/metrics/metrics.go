// Package metrics is the cluster's observability plane: a registry of
// named counters, gauges, and duration timings that every layer (rpc, fs,
// core, sim, hostsel) feeds and one deterministic snapshot reports.
//
// Design constraints, in order:
//
//   - Cheap when ignored. A counter increment is one atomic add; nothing
//     allocates on the hot path once the counter pointer is cached. No
//     instrument ever touches simulated time, so installing the plane
//     cannot perturb golden outputs.
//   - Deterministic when read. Snapshot output is sorted by name and every
//     rendered value is a pure function of the recorded observations, so
//     two same-seed runs produce byte-identical snapshots.
//   - Mergeable. Timings carry quantile sketches (internal/stats.Sketch)
//     whose merge keeps the relative-error bound, so per-host timings can
//     roll up into cluster ones.
package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sprite/internal/stats"
)

// Counter is a monotonically increasing event count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be any sign; use Gauge for values meant to go down).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, in-flight migrations).
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(n int64) {
	g.v.Store(n)
	g.bumpMax(n)
}

// Add moves the level by n and returns the new value.
func (g *Gauge) Add(n int64) int64 {
	v := g.v.Add(n)
	g.bumpMax(v)
	return v
}

func (g *Gauge) bumpMax(v int64) {
	for {
		cur := g.max.Load()
		if v <= cur || g.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the high-water mark since creation.
func (g *Gauge) Max() int64 { return g.max.Load() }

// TimingBuckets configures the fixed histogram under every Timing: bucket
// i counts observations in [Lo + i*Width, Lo + (i+1)*Width).
type TimingBuckets struct {
	Lo      time.Duration
	Width   time.Duration
	Buckets int
}

// DefaultTimingBuckets spans 0..1s in 10 ms steps — the range of one
// migration phase at the thesis's hardware scale.
var DefaultTimingBuckets = TimingBuckets{Lo: 0, Width: 10 * time.Millisecond, Buckets: 100}

// Timing accumulates duration observations: count, sum, min, max, a
// fixed-bucket histogram, and an online quantile sketch.
type Timing struct {
	mu       sync.Mutex
	n        uint64
	sum      time.Duration
	min, max time.Duration
	hist     *stats.Histogram
	sketch   *stats.Sketch
}

func newTiming(b TimingBuckets) *Timing {
	if b.Buckets <= 0 {
		b = DefaultTimingBuckets
	}
	return &Timing{
		hist:   stats.NewHistogram(b.Lo.Seconds(), b.Width.Seconds(), b.Buckets),
		sketch: stats.NewSketch(stats.DefaultSketchAccuracy),
	}
}

// Observe records one duration.
func (t *Timing) Observe(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n == 0 || d < t.min {
		t.min = d
	}
	if t.n == 0 || d > t.max {
		t.max = d
	}
	t.n++
	t.sum += d
	t.hist.Add(d.Seconds())
	t.sketch.Add(d.Seconds())
}

// N returns the number of observations.
func (t *Timing) N() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Sum returns the total of all observations.
func (t *Timing) Sum() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sum
}

// Quantile returns the approximate q-th quantile (see stats.Sketch).
func (t *Timing) Quantile(q float64) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return time.Duration(t.sketch.Quantile(q) * float64(time.Second))
}

// Merge folds other into t (cluster roll-ups of per-host timings).
func (t *Timing) Merge(other *Timing) error {
	if other == nil || t == other {
		return nil
	}
	other.mu.Lock()
	on, osum, omin, omax := other.n, other.sum, other.min, other.max
	osketch := other.sketch
	other.mu.Unlock()
	if on == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n == 0 || omin < t.min {
		t.min = omin
	}
	if t.n == 0 || omax > t.max {
		t.max = omax
	}
	t.n += on
	t.sum += osum
	return t.sketch.Merge(osketch)
}

// snapshotLocked renders the timing's summary; callers hold t.mu.
func (t *Timing) summary() TimingSummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TimingSummary{N: t.n, Sum: t.sum, Min: t.min, Max: t.max}
	if t.n > 0 {
		s.P50 = time.Duration(t.sketch.Quantile(0.50) * float64(time.Second))
		s.P95 = time.Duration(t.sketch.Quantile(0.95) * float64(time.Second))
		s.P99 = time.Duration(t.sketch.Quantile(0.99) * float64(time.Second))
	}
	return s
}

// TimingSummary is one timing's rendered state.
type TimingSummary struct {
	N             uint64        `json:"n"`
	Sum           time.Duration `json:"sum_ns"`
	Min           time.Duration `json:"min_ns"`
	Max           time.Duration `json:"max_ns"`
	P50, P95, P99 time.Duration `json:"-"`
}

// Registry holds named instruments. Get-or-create accessors are guarded by
// a mutex; hot paths should look an instrument up once and keep the pointer.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timings  map[string]*Timing
	buckets  TimingBuckets

	// emit, when set, receives one trace event per finished span —
	// the hook that layers spans onto internal/trace.
	emit func(at time.Duration, kind, detail string)
}

// New returns an empty registry using DefaultTimingBuckets.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timings:  make(map[string]*Timing),
		buckets:  DefaultTimingBuckets,
	}
}

// SetTrace installs (or with nil removes) the trace sink that finished
// spans report to. See internal/trace.Log.Func for a ready-made sink.
func (r *Registry) SetTrace(fn func(at time.Duration, kind, detail string)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.emit = fn
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timing returns the named timing, creating it if needed.
func (r *Registry) Timing(name string) *Timing {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timings[name]
	if !ok {
		t = newTiming(r.buckets)
		r.timings[name] = t
	}
	return t
}

// Snapshot captures every instrument's current state, sorted by name.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	snap := Snapshot{
		Counters: make(map[string]int64, len(r.counters)),
		Gauges:   make(map[string]GaugeValue, len(r.gauges)),
		Timings:  make(map[string]TimingSummary, len(r.timings)),
	}
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	timings := make(map[string]*Timing, len(r.timings))
	for k, v := range r.timings {
		timings[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		snap.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		snap.Gauges[k] = GaugeValue{Value: v.Value(), Max: v.Max()}
	}
	for k, v := range timings {
		snap.Timings[k] = v.summary()
	}
	return snap
}

// GaugeValue is one gauge's rendered state.
type GaugeValue struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// Snapshot is a point-in-time copy of a registry, safe to render or
// serialize after the run continues.
type Snapshot struct {
	Counters map[string]int64         `json:"counters"`
	Gauges   map[string]GaugeValue    `json:"gauges"`
	Timings  map[string]TimingSummary `json:"timings"`
}

// Text renders the snapshot as sorted "name value" lines — the format
// spritesim -metrics prints and the determinism goldens compare.
func (s Snapshot) Text() string {
	var b strings.Builder
	for _, name := range sortedNames(s.Counters) {
		fmt.Fprintf(&b, "counter %-40s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedNames(s.Gauges) {
		g := s.Gauges[name]
		fmt.Fprintf(&b, "gauge   %-40s %d (max %d)\n", name, g.Value, g.Max)
	}
	for _, name := range sortedNames(s.Timings) {
		t := s.Timings[name]
		fmt.Fprintf(&b, "timing  %-40s n=%d sum=%v min=%v max=%v p50=%v p95=%v p99=%v\n",
			name, t.N, t.Sum, t.Min, t.Max, t.P50, t.P95, t.P99)
	}
	return b.String()
}

// JSON renders the snapshot as deterministic (sorted-key) JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ") // encoding/json sorts map keys
}

func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
