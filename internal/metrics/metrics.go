// Package metrics is the cluster's observability plane: a registry of
// named counters, gauges, and duration timings that every layer (rpc, fs,
// core, sim, hostsel) feeds and one deterministic snapshot reports.
//
// Design constraints, in order:
//
//   - Cheap when ignored. A counter increment is one atomic add; nothing
//     allocates on the hot path once the counter pointer is cached. No
//     instrument ever touches simulated time, so installing the plane
//     cannot perturb golden outputs.
//   - Deterministic when read. Snapshot output is sorted by name and every
//     rendered value is a pure function of the recorded observations, so
//     two same-seed runs produce byte-identical snapshots.
//   - Mergeable. Timings carry quantile sketches (internal/stats.Sketch)
//     whose merge keeps the relative-error bound, so per-host timings can
//     roll up into cluster ones.
package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sprite/internal/stats"
)

// counterCell is one worker's private counter slot, padded out to a cache
// line so neighbouring workers' increments never contend (the sigmaos
// stats.Tcounter "separate cache lines" idiom). The atomic is only for the
// snapshot reader; each cell has exactly one writer.
type counterCell struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing event count. When the registry has
// sharding enabled, AddSlot lets concurrently dispatched simulation workers
// increment private cache-line-padded cells that are summed only when the
// value is read, so the merged count is exactly what a serial run would
// have produced (integer addition is commutative) at none of the
// cross-core contention.
type Counter struct {
	v     atomic.Int64
	cells []counterCell
}

// shard equips the counter with private cells for slots 1..n. Called under
// the registry lock before the counter is shared with workers.
func (c *Counter) shard(n int) {
	if c.cells == nil {
		c.cells = make([]counterCell, n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be any sign; use Gauge for values meant to go down).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// AddSlot adds n through the worker slot's private cell (sim.WorkerSlot).
// Slot 0 — the serial kernel, shard 0, scheduler context — and any
// out-of-range slot fall through to the shared base cell.
func (c *Counter) AddSlot(slot int, n int64) {
	if slot <= 0 || slot > len(c.cells) {
		c.v.Add(n)
		return
	}
	c.cells[slot-1].v.Add(n)
}

// IncSlot adds one through the worker slot's private cell.
func (c *Counter) IncSlot(slot int) { c.AddSlot(slot, 1) }

// Value returns the current count: the base cell plus every worker cell,
// merged in slot order.
func (c *Counter) Value() int64 {
	v := c.v.Load()
	for i := range c.cells {
		v += c.cells[i].v.Load()
	}
	return v
}

// Gauge is an instantaneous level (queue depth, in-flight migrations).
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(n int64) {
	g.v.Store(n)
	g.bumpMax(n)
}

// Add moves the level by n and returns the new value.
func (g *Gauge) Add(n int64) int64 {
	v := g.v.Add(n)
	g.bumpMax(v)
	return v
}

func (g *Gauge) bumpMax(v int64) {
	for {
		cur := g.max.Load()
		if v <= cur || g.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the high-water mark since creation.
func (g *Gauge) Max() int64 { return g.max.Load() }

// TimingBuckets configures the fixed histogram under every Timing: bucket
// i counts observations in [Lo + i*Width, Lo + (i+1)*Width).
type TimingBuckets struct {
	Lo      time.Duration
	Width   time.Duration
	Buckets int
}

// DefaultTimingBuckets spans 0..1s in 10 ms steps — the range of one
// migration phase at the thesis's hardware scale.
var DefaultTimingBuckets = TimingBuckets{Lo: 0, Width: 10 * time.Millisecond, Buckets: 100}

// timingAcc is the accumulator state shared by a Timing's base cell and
// its per-worker cells.
type timingAcc struct {
	n        uint64
	sum      time.Duration
	min, max time.Duration
	hist     *stats.Histogram
	sketch   *stats.Sketch
}

func (a *timingAcc) observe(d time.Duration) {
	if a.n == 0 || d < a.min {
		a.min = d
	}
	if a.n == 0 || d > a.max {
		a.max = d
	}
	a.n++
	a.sum += d
	a.hist.Add(d.Seconds())
	a.sketch.Add(d.Seconds())
}

// timingCell is one worker's private timing slot. Cells are separately
// allocated and padded so concurrent workers never share a cache line; the
// mutex is uncontended (one writer per cell) and exists for the snapshot
// reader.
type timingCell struct {
	mu sync.Mutex
	timingAcc
	_ [32]byte
}

// Timing accumulates duration observations: count, sum, min, max, a
// fixed-bucket histogram, and an online quantile sketch. With registry
// sharding enabled, ObserveSlot records into per-worker cells that are
// merged only when the timing is read. Counts, sums (integer nanoseconds),
// extrema, and sketch buckets are all commutative, so the merged view is
// bit-for-bit what a serial run observing the same durations would report,
// for any worker count.
type Timing struct {
	mu sync.Mutex
	timingAcc
	buckets TimingBuckets
	cells   []*timingCell
}

func newTiming(b TimingBuckets) *Timing {
	if b.Buckets <= 0 {
		b = DefaultTimingBuckets
	}
	t := &Timing{}
	t.timingAcc = newTimingAcc(b)
	t.buckets = b
	return t
}

func newTimingAcc(b TimingBuckets) timingAcc {
	return timingAcc{
		hist:   stats.NewHistogram(b.Lo.Seconds(), b.Width.Seconds(), b.Buckets),
		sketch: stats.NewSketch(stats.DefaultSketchAccuracy),
	}
}

// shard equips the timing with private cells for slots 1..n. Called under
// the registry lock before the timing is shared with workers.
func (t *Timing) shard(n int) {
	if t.cells != nil {
		return
	}
	t.cells = make([]*timingCell, n)
	for i := range t.cells {
		c := &timingCell{}
		c.timingAcc = newTimingAcc(t.buckets)
		t.cells[i] = c
	}
}

// Observe records one duration.
func (t *Timing) Observe(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.observe(d)
}

// ObserveSlot records one duration through the worker slot's private cell
// (sim.WorkerSlot). Slot 0 and out-of-range slots use the shared base cell.
func (t *Timing) ObserveSlot(slot int, d time.Duration) {
	if slot <= 0 || slot > len(t.cells) {
		t.Observe(d)
		return
	}
	c := t.cells[slot-1]
	c.mu.Lock()
	c.observe(d)
	c.mu.Unlock()
}

// fold merges the base cell and every worker cell (in slot order) into one
// view: scalar accumulators plus a freshly merged sketch that the caller
// owns. With no cells this is just a copy of the base state.
func (t *Timing) fold() (acc timingAcc, sketch *stats.Sketch) {
	t.mu.Lock()
	acc = t.timingAcc
	if len(t.cells) == 0 {
		sk := stats.NewSketch(acc.sketch.Alpha())
		_ = sk.Merge(acc.sketch)
		t.mu.Unlock()
		return acc, sk
	}
	sketch = stats.NewSketch(acc.sketch.Alpha())
	_ = sketch.Merge(acc.sketch)
	t.mu.Unlock()
	for _, c := range t.cells {
		c.mu.Lock()
		if c.n > 0 {
			if acc.n == 0 || c.min < acc.min {
				acc.min = c.min
			}
			if acc.n == 0 || c.max > acc.max {
				acc.max = c.max
			}
			acc.n += c.n
			acc.sum += c.sum
			_ = sketch.Merge(c.sketch)
		}
		c.mu.Unlock()
	}
	return acc, sketch
}

// N returns the number of observations.
func (t *Timing) N() uint64 {
	acc, _ := t.fold()
	return acc.n
}

// Sum returns the total of all observations.
func (t *Timing) Sum() time.Duration {
	acc, _ := t.fold()
	return acc.sum
}

// Quantile returns the approximate q-th quantile (see stats.Sketch).
func (t *Timing) Quantile(q float64) time.Duration {
	_, sk := t.fold()
	return time.Duration(sk.Quantile(q) * float64(time.Second))
}

// Merge folds other into t (cluster roll-ups of per-host timings).
func (t *Timing) Merge(other *Timing) error {
	if other == nil || t == other {
		return nil
	}
	oacc, osketch := other.fold()
	if oacc.n == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n == 0 || oacc.min < t.min {
		t.min = oacc.min
	}
	if t.n == 0 || oacc.max > t.max {
		t.max = oacc.max
	}
	t.n += oacc.n
	t.sum += oacc.sum
	return t.sketch.Merge(osketch)
}

// summary renders the timing's merged state.
func (t *Timing) summary() TimingSummary {
	acc, sk := t.fold()
	s := TimingSummary{N: acc.n, Sum: acc.sum, Min: acc.min, Max: acc.max}
	if acc.n > 0 {
		s.P50 = time.Duration(sk.Quantile(0.50) * float64(time.Second))
		s.P95 = time.Duration(sk.Quantile(0.95) * float64(time.Second))
		s.P99 = time.Duration(sk.Quantile(0.99) * float64(time.Second))
	}
	return s
}

// TimingSummary is one timing's rendered state.
type TimingSummary struct {
	N             uint64        `json:"n"`
	Sum           time.Duration `json:"sum_ns"`
	Min           time.Duration `json:"min_ns"`
	Max           time.Duration `json:"max_ns"`
	P50, P95, P99 time.Duration `json:"-"`
}

// Registry holds named instruments. Get-or-create accessors are guarded by
// a mutex; hot paths should look an instrument up once and keep the pointer.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timings  map[string]*Timing
	buckets  TimingBuckets
	slots    int

	// emit, when set, receives one trace event per finished span —
	// the hook that layers spans onto internal/trace.
	emit func(at time.Duration, kind, detail string)
}

// New returns an empty registry using DefaultTimingBuckets.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timings:  make(map[string]*Timing),
		buckets:  DefaultTimingBuckets,
	}
}

// SetTrace installs (or with nil removes) the trace sink that finished
// spans report to. See internal/trace.Log.Func for a ready-made sink.
func (r *Registry) SetTrace(fn func(at time.Duration, kind, detail string)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.emit = fn
}

// EnableSharding equips every instrument — existing and future — with
// `slots` private per-worker cells, so AddSlot/IncSlot/ObserveSlot from
// concurrently dispatched simulation workers land on disjoint cache lines.
// Call it once, before the parallel kernel starts (cells must not appear
// while workers are mid-window). Gauges are not sharded: Set is
// last-writer-wins, which only the replayed serial order can decide, so
// gauge writes stay confined to the exclusive shard.
func (r *Registry) EnableSharding(slots int) {
	if slots <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.slots = slots
	for _, c := range r.counters {
		c.shard(slots)
	}
	for _, t := range r.timings {
		t.shard(slots)
	}
}

// Slots returns the per-worker cell count set by EnableSharding (0 when
// sharding is off).
func (r *Registry) Slots() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.slots
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		if r.slots > 0 {
			c.shard(r.slots)
		}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timing returns the named timing, creating it if needed.
func (r *Registry) Timing(name string) *Timing {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timings[name]
	if !ok {
		t = newTiming(r.buckets)
		if r.slots > 0 {
			t.shard(r.slots)
		}
		r.timings[name] = t
	}
	return t
}

// Snapshot captures every instrument's current state, sorted by name.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	snap := Snapshot{
		Counters: make(map[string]int64, len(r.counters)),
		Gauges:   make(map[string]GaugeValue, len(r.gauges)),
		Timings:  make(map[string]TimingSummary, len(r.timings)),
	}
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	timings := make(map[string]*Timing, len(r.timings))
	for k, v := range r.timings {
		timings[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		snap.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		snap.Gauges[k] = GaugeValue{Value: v.Value(), Max: v.Max()}
	}
	for k, v := range timings {
		snap.Timings[k] = v.summary()
	}
	return snap
}

// GaugeValue is one gauge's rendered state.
type GaugeValue struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// Snapshot is a point-in-time copy of a registry, safe to render or
// serialize after the run continues.
type Snapshot struct {
	Counters map[string]int64         `json:"counters"`
	Gauges   map[string]GaugeValue    `json:"gauges"`
	Timings  map[string]TimingSummary `json:"timings"`
}

// Text renders the snapshot as sorted "name value" lines — the format
// spritesim -metrics prints and the determinism goldens compare.
func (s Snapshot) Text() string {
	var b strings.Builder
	for _, name := range sortedNames(s.Counters) {
		fmt.Fprintf(&b, "counter %-40s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedNames(s.Gauges) {
		g := s.Gauges[name]
		fmt.Fprintf(&b, "gauge   %-40s %d (max %d)\n", name, g.Value, g.Max)
	}
	for _, name := range sortedNames(s.Timings) {
		t := s.Timings[name]
		fmt.Fprintf(&b, "timing  %-40s n=%d sum=%v min=%v max=%v p50=%v p95=%v p99=%v\n",
			name, t.N, t.Sum, t.Min, t.Max, t.P50, t.P95, t.P99)
	}
	return b.String()
}

// JSON renders the snapshot as deterministic (sorted-key) JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ") // encoding/json sorts map keys
}

func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
