package metrics

import (
	"fmt"
	"time"
)

// Span is a phase timer: started at one virtual-time instant, ended (or
// aborted) at another. Ending records the elapsed time into the registry
// timing of the span's name and, when the registry has a trace sink,
// emits one "span" event — which is how phase timers layer onto
// internal/trace. Aborting records nothing in the timing (a half-run phase
// has no duration worth averaging) but counts under "<name>.aborted", so
// interrupted work stays visible without polluting the latency data.
//
// Spans carry virtual time explicitly (the simulator's clock, not the wall
// clock): callers pass env.Now() at both ends.
type Span struct {
	reg   *Registry
	name  string
	start time.Duration
	done  bool
}

// StartSpan opens a phase timer at virtual time now.
func (r *Registry) StartSpan(name string, now time.Duration) *Span {
	return &Span{reg: r, name: name, start: now}
}

// End closes the span at virtual time now, records the elapsed duration,
// and returns it. A second End (or End after Abort) is a no-op returning 0.
func (s *Span) End(now time.Duration) time.Duration { return s.EndSlot(0, now) }

// EndSlot is End recording through the worker slot's private timing cell
// (sim.WorkerSlot); confined callers use it to keep phase timers off the
// shared cells. Slot 0 is End exactly.
func (s *Span) EndSlot(slot int, now time.Duration) time.Duration {
	if s == nil || s.done {
		return 0
	}
	s.done = true
	d := now - s.start
	s.reg.Timing(s.name).ObserveSlot(slot, d) //spritelint:allow metricname name was convention-checked at StartSpan; this is a re-lookup of the same string
	if emit := s.emitFn(); emit != nil {
		emit(now, "span", fmt.Sprintf("%s took %v", s.name, d))
	}
	return d
}

// Abort closes the span without recording a duration; the interruption is
// counted under "<name>.aborted".
func (s *Span) Abort(now time.Duration) { s.AbortSlot(0, now) }

// AbortSlot is Abort counting through the worker slot's private cell.
func (s *Span) AbortSlot(slot int, now time.Duration) {
	if s == nil || s.done {
		return
	}
	s.done = true
	s.reg.Counter(s.name + ".aborted").IncSlot(slot)
	if emit := s.emitFn(); emit != nil {
		emit(now, "span", fmt.Sprintf("%s aborted after %v", s.name, now-s.start))
	}
}

func (s *Span) emitFn() func(at time.Duration, kind, detail string) {
	s.reg.mu.Lock()
	defer s.reg.mu.Unlock()
	return s.reg.emit
}
