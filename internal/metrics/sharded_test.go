package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestShardedCounterExact proves the sharded counter's merged value is
// exactly the serial count: the same increment stream, dealt round-robin
// across worker slots, folds back to the single-cell total (integer
// addition is commutative — no approximation anywhere).
func TestShardedCounterExact(t *testing.T) {
	const slots, n = 8, 10_000
	serial := New()
	sharded := New()
	sharded.EnableSharding(slots)
	sc := serial.Counter("m")
	pc := sharded.Counter("m")
	for i := 0; i < n; i++ {
		sc.Add(int64(i % 7))
		pc.AddSlot(1+i%slots, int64(i%7))
	}
	if sc.Value() != pc.Value() {
		t.Fatalf("sharded counter diverged: %d vs %d", pc.Value(), sc.Value())
	}
}

// TestShardedTimingExact proves the merged timing — count, sum, extrema,
// and every sketch-derived quantile — is byte-identical to a serial timing
// fed the same observations, for any round-robin split across slots. The
// comparison is on Snapshot.Text, the exact bytes the determinism goldens
// diff.
func TestShardedTimingExact(t *testing.T) {
	const n = 5_000
	durations := make([]time.Duration, n)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range durations {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		durations[i] = time.Duration(x%50_000_000) * time.Nanosecond
	}
	serial := New()
	st := serial.Timing("lat")
	for _, d := range durations {
		st.Observe(d)
	}
	want := serial.Snapshot().Text()
	for _, slots := range []int{1, 2, 4, 8} {
		sharded := New()
		sharded.EnableSharding(slots)
		pt := sharded.Timing("lat")
		for i, d := range durations {
			pt.ObserveSlot(1+i%slots, d)
		}
		if got := sharded.Snapshot().Text(); got != want {
			t.Fatalf("slots=%d snapshot diverged:\n got: %s\nwant: %s", slots, got, want)
		}
	}
}

// TestShardedSpanTiling checks the invariant the migration spans rely on:
// when per-phase durations tile a total (total = sum of phases), the
// sharded timings preserve it exactly — Sum over the phase timing equals
// Sum over the total timing even when phases land on different worker
// slots than their totals.
func TestShardedSpanTiling(t *testing.T) {
	const slots, migrations = 4, 500
	r := New()
	r.EnableSharding(slots)
	phases := []*Timing{r.Timing("phase.freeze"), r.Timing("phase.transfer"), r.Timing("phase.resume")}
	total := r.Timing("total")
	var wantTotal time.Duration
	for i := 0; i < migrations; i++ {
		var sum time.Duration
		for j, p := range phases {
			d := time.Duration((i*7+j*3)%977) * time.Microsecond
			p.ObserveSlot(1+(i+j)%slots, d)
			sum += d
		}
		total.ObserveSlot(1+i%slots, sum)
		wantTotal += sum
	}
	var phaseSum time.Duration
	for _, p := range phases {
		phaseSum += p.Sum()
	}
	if phaseSum != wantTotal || total.Sum() != wantTotal {
		t.Fatalf("span tiling broken: phases=%v total=%v want=%v", phaseSum, total.Sum(), wantTotal)
	}
	if total.N() != migrations {
		t.Fatalf("total n=%d want %d", total.N(), migrations)
	}
}

// TestEnableShardingRetrofit proves instruments created before
// EnableSharding gain cells too, and that slot 0 / out-of-range slots fall
// through to the shared base cell rather than dropping observations.
func TestEnableShardingRetrofit(t *testing.T) {
	r := New()
	c := r.Counter("pre")
	tm := r.Timing("pre")
	c.Add(3)
	tm.Observe(time.Millisecond)
	r.EnableSharding(4)
	if got := r.Slots(); got != 4 {
		t.Fatalf("Slots() = %d, want 4", got)
	}
	c.AddSlot(2, 5)   // sharded path
	c.AddSlot(0, 7)   // scheduler context: base cell
	c.AddSlot(99, 11) // out of range: base cell
	if got := c.Value(); got != 26 {
		t.Fatalf("retrofitted counter = %d, want 26", got)
	}
	tm.ObserveSlot(3, 2*time.Millisecond)
	tm.ObserveSlot(0, 3*time.Millisecond)
	if got := tm.N(); got != 3 {
		t.Fatalf("retrofitted timing n = %d, want 3", got)
	}
	if got := tm.Sum(); got != 6*time.Millisecond {
		t.Fatalf("retrofitted timing sum = %v, want 6ms", got)
	}
}

// TestShardedTimingMergeRollup proves cluster roll-ups (Timing.Merge) see
// the folded per-worker state: merging a sharded per-host timing into an
// unsharded cluster one yields the same result as merging its serial twin.
func TestShardedTimingMergeRollup(t *testing.T) {
	mk := func(sharded bool) *Timing {
		r := New()
		if sharded {
			r.EnableSharding(4)
		}
		tm := r.Timing("host")
		for i := 0; i < 300; i++ {
			d := time.Duration(i%53) * 100 * time.Microsecond
			if sharded {
				tm.ObserveSlot(1+i%4, d)
			} else {
				tm.Observe(d)
			}
		}
		return tm
	}
	rollup := func(host *Timing) string {
		cluster := newTiming(DefaultTimingBuckets)
		if err := cluster.Merge(host); err != nil {
			t.Fatal(err)
		}
		s := cluster.summary()
		return fmt.Sprintf("%d %v %v %v %v %v %v", s.N, s.Sum, s.Min, s.Max, s.P50, s.P95, s.P99)
	}
	want := rollup(mk(false))
	if got := rollup(mk(true)); got != want {
		t.Fatalf("sharded rollup diverged:\n got: %s\nwant: %s", got, want)
	}
}

// BenchmarkRegistryParallel contrasts the contended single-cell counter
// with the sharded per-slot cells under concurrent writers — the number
// bench-wallclock tracks to show the parallel kernel's metrics plane does
// not serialize on cache-line ping-pong.
func BenchmarkRegistryParallel(b *testing.B) {
	const slots = 8
	b.Run("shared", func(b *testing.B) {
		r := New()
		c := r.Counter("hot")
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Add(1)
			}
		})
		_ = c.Value()
	})
	b.Run("sharded", func(b *testing.B) {
		r := New()
		r.EnableSharding(slots)
		c := r.Counter("hot")
		var next atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			slot := 1 + int(next.Add(1)-1)%slots
			for pb.Next() {
				c.AddSlot(slot, 1)
			}
		})
		_ = c.Value()
	})
	b.Run("timing-shared", func(b *testing.B) {
		r := New()
		tm := r.Timing("hot")
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				tm.Observe(time.Millisecond)
			}
		})
	})
	b.Run("timing-sharded", func(b *testing.B) {
		r := New()
		r.EnableSharding(slots)
		tm := r.Timing("hot")
		var next atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			slot := 1 + int(next.Add(1)-1)%slots
			for pb.Next() {
				tm.ObserveSlot(slot, time.Millisecond)
			}
		})
	})
}

// TestShardedConcurrentWriters is the race-detector companion to the
// benchmark: slot-disjoint writers plus a concurrent snapshot reader.
func TestShardedConcurrentWriters(t *testing.T) {
	const slots, per = 8, 2_000
	r := New()
	r.EnableSharding(slots)
	c := r.Counter("hot")
	tm := r.Timing("hot")
	var wg sync.WaitGroup
	for s := 1; s <= slots; s++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.IncSlot(slot)
				tm.ObserveSlot(slot, time.Duration(i)*time.Microsecond)
			}
		}(s)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Snapshot().Text()
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != slots*per {
		t.Fatalf("lost updates: counter = %d, want %d", got, slots*per)
	}
	if got := tm.N(); got != slots*per {
		t.Fatalf("lost updates: timing n = %d, want %d", got, slots*per)
	}
}
