// Package pmake reimplements Sprite's parallel make: a dependency graph
// whose independent out-of-date targets are rebuilt in parallel on idle
// hosts using exec-time migration (remote invocation with no VM transfer).
//
// The compile jobs are synthetic but exercise the real code paths the
// thesis identifies as the bottleneck: every job opens its sources through
// the shared file system, searches include paths (server name lookups),
// and writes its object file back — so the file server, not the CPUs,
// eventually limits the speedup, as in the thesis's measurements.
package pmake

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"sprite/internal/core"
	"sprite/internal/fs"
	"sprite/internal/rpc"
)

// Errors reported by pmake.
var (
	// ErrCycle is returned when the dependency graph has a cycle.
	ErrCycle = errors.New("pmake: dependency cycle")
	// ErrUnknownDep is returned when a target depends on an undefined name.
	ErrUnknownDep = errors.New("pmake: unknown dependency")
	// ErrJobFailed is returned when a build job exits nonzero.
	ErrJobFailed = errors.New("pmake: job failed")
)

// Job describes the work to produce one target.
type Job struct {
	// CPU is the pure compute time of the job.
	CPU time.Duration
	// Inputs are files read in full.
	Inputs []string
	// LookupPaths are stat-ed one by one (include-path searching), the
	// dominant source of file-server CPU load.
	LookupPaths []string
	// Output is the file written (created/truncated).
	Output string
	// OutputSize is the number of bytes written to Output.
	OutputSize int
	// HeapPages sizes the job's working set.
	HeapPages int
}

// Target is one node in the dependency graph. A nil Job marks a source.
type Target struct {
	Name string
	Deps []string
	Job  *Job
}

// Makefile is a dependency graph.
type Makefile struct {
	targets map[string]*Target
	names   []string
}

// NewMakefile returns an empty graph.
func NewMakefile() *Makefile {
	return &Makefile{targets: make(map[string]*Target)}
}

// AddSource declares a source file (always up to date).
func (m *Makefile) AddSource(name string) {
	m.add(&Target{Name: name})
}

// AddTarget declares a buildable target.
func (m *Makefile) AddTarget(name string, deps []string, job *Job) {
	m.add(&Target{Name: name, Deps: deps, Job: job})
}

func (m *Makefile) add(t *Target) {
	if _, exists := m.targets[t.Name]; !exists {
		m.names = append(m.names, t.Name)
	}
	m.targets[t.Name] = t
}

// Target returns a target by name, or nil.
func (m *Makefile) Target(name string) *Target { return m.targets[name] }

// Targets returns all targets in insertion order.
func (m *Makefile) Targets() []*Target {
	out := make([]*Target, 0, len(m.names))
	for _, n := range m.names {
		out = append(out, m.targets[n])
	}
	return out
}

// BuildOrder returns the buildable targets in a valid topological order,
// or ErrCycle / ErrUnknownDep.
func (m *Makefile) BuildOrder() ([]*Target, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(m.targets))
	var order []*Target
	var visit func(name string) error
	visit = func(name string) error {
		t, ok := m.targets[name]
		if !ok {
			return fmt.Errorf("%w: %s", ErrUnknownDep, name)
		}
		switch state[name] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("%w involving %s", ErrCycle, name)
		}
		state[name] = visiting
		for _, d := range t.Deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[name] = done
		if t.Job != nil {
			order = append(order, t)
		}
		return nil
	}
	names := make([]string, len(m.names))
	copy(names, m.names)
	sort.Strings(names)
	for _, n := range names {
		if err := visit(n); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Options configures an execution.
type Options struct {
	// Hosts are remote hosts to run jobs on (one job at a time each).
	Hosts []rpc.HostID
	// LocalJobs is the number of concurrent jobs on the invoking host
	// (default 1).
	LocalJobs int
	// Binary is the compiler binary path (must be seeded; default
	// "/bin/cc").
	Binary string
	// Force rebuilds everything regardless of output existence.
	Force bool
}

// Result summarizes an execution.
type Result struct {
	// Makespan is total wall time of the build.
	Makespan time.Duration
	// Jobs is the number of jobs executed; RemoteJobs ran off-host.
	Jobs       int
	RemoteJobs int
	// Skipped counts up-to-date targets that were not rebuilt.
	Skipped int
	// TotalJobCPU sums the pure compute time of the executed jobs.
	TotalJobCPU time.Duration
}

// Run executes the makefile from inside a process (the pmake process
// itself). Remote jobs are dispatched with fork + exec-time migration.
func Run(ctx *core.Ctx, mf *Makefile, opts Options) (*Result, error) {
	order, err := mf.BuildOrder()
	if err != nil {
		return nil, err
	}
	if opts.LocalJobs <= 0 {
		opts.LocalJobs = 1
	}
	if opts.Binary == "" {
		opts.Binary = "/bin/cc"
	}
	start := ctx.Now()
	res := &Result{}

	// Out-of-date analysis: a target builds if forced, its output is
	// missing, any dependency's modification time is newer than the
	// output's, or any dependency is itself being rebuilt.
	pending := make(map[string]*Target)
	remainingDeps := make(map[string]int)
	dependents := make(map[string][]*Target)
	for _, t := range order {
		if !opts.Force {
			stale, err := isStale(ctx, t, pending)
			if err != nil {
				return nil, err
			}
			if !stale {
				res.Skipped++
				continue
			}
		}
		pending[t.Name] = t
	}
	// Dependency counting walks order, not the pending map: the dependents
	// lists seed the ready queue as jobs finish, so their order decides
	// which target grabs which host. Iterating the map here would make the
	// schedule — and the reproduced pmake tables — a map-order coin flip.
	for _, t := range order {
		if pending[t.Name] == nil {
			continue
		}
		n := 0
		for _, d := range t.Deps {
			if _, isPending := pending[d]; isPending {
				n++
				dependents[d] = append(dependents[d], t)
			}
		}
		remainingDeps[t.Name] = n
	}

	// Slot pool: one per remote host plus LocalJobs local slots. NoHost
	// marks a local slot.
	var free []rpc.HostID
	for i := 0; i < opts.LocalJobs; i++ {
		free = append(free, rpc.NoHost)
	}
	free = append(free, opts.Hosts...)

	ready := make([]*Target, 0, len(pending))
	for _, t := range order {
		if pending[t.Name] != nil && remainingDeps[t.Name] == 0 {
			ready = append(ready, t)
		}
	}
	running := make(map[core.PID]*jobSlot)
	launched := 0

	for launched < len(pending) || len(running) > 0 {
		// Fill free slots with ready targets.
		for len(ready) > 0 && len(free) > 0 {
			t := ready[0]
			ready = ready[1:]
			host := free[0]
			free = free[1:]
			child, err := launchJob(ctx, t, host, opts.Binary)
			if err != nil {
				return nil, err
			}
			running[child.PID()] = &jobSlot{target: t, host: host}
			launched++
			res.Jobs++
			res.TotalJobCPU += t.Job.CPU
			if host != rpc.NoHost {
				res.RemoteJobs++
			}
		}
		if len(running) == 0 {
			break
		}
		pid, status, err := ctx.Wait()
		if err != nil {
			return nil, err
		}
		slot, ok := running[pid]
		if !ok {
			continue // not one of ours
		}
		delete(running, pid)
		free = append(free, slot.host)
		if status != 0 {
			return nil, fmt.Errorf("%w: %s exited %d", ErrJobFailed, slot.target.Name, status)
		}
		for _, dep := range dependents[slot.target.Name] {
			remainingDeps[dep.Name]--
			if remainingDeps[dep.Name] == 0 {
				ready = append(ready, dep)
			}
		}
	}
	res.Makespan = ctx.Now() - start
	return res, nil
}

type jobSlot struct {
	target *Target
	host   rpc.HostID
}

// isStale reports whether t must be rebuilt: missing output, a newer
// dependency, or a dependency already scheduled for rebuild. The order
// parameter walk guarantees dependencies are decided before dependents.
func isStale(ctx *core.Ctx, t *Target, pending map[string]*Target) (bool, error) {
	_, outTime, err := ctx.StatTimes(t.Job.Output)
	if err != nil {
		return true, nil // no output yet
	}
	for _, d := range t.Deps {
		if _, rebuilding := pending[d]; rebuilding {
			return true, nil
		}
		_, depTime, err := ctx.StatTimes(d)
		if err != nil {
			return true, nil // dependency unknown: rebuild defensively
		}
		if depTime > outTime {
			return true, nil
		}
	}
	return false, nil
}

// launchJob forks a worker for the target, locally or via remote exec.
func launchJob(ctx *core.Ctx, t *Target, host rpc.HostID, binary string) (*core.Process, error) {
	job := t.Job
	cfg := core.ProcConfig{
		Binary:     binary,
		CodePages:  16,
		HeapPages:  job.HeapPages,
		StackPages: 2,
		Args:       []string{t.Name},
	}
	prog := jobProgram(job)
	if host == rpc.NoHost {
		return ctx.Fork("cc-"+t.Name, prog, cfg)
	}
	return ctx.ForkRemoteExec("cc-"+t.Name, prog, cfg, host)
}

// jobProgram builds the worker program for one job: search includes, read
// inputs, compute, write the output.
func jobProgram(job *Job) core.Program {
	return func(ctx *core.Ctx) error {
		for _, p := range job.LookupPaths {
			if _, err := ctx.Stat(p); err != nil {
				return fmt.Errorf("lookup %s: %w", p, err)
			}
		}
		for _, in := range job.Inputs {
			fd, err := ctx.Open(in, fs.ReadMode, fs.OpenOptions{})
			if err != nil {
				return err
			}
			for {
				data, err := ctx.Read(fd, 16*1024)
				if err != nil {
					return err
				}
				if len(data) == 0 {
					break
				}
			}
			if err := ctx.Close(fd); err != nil {
				return err
			}
		}
		if job.HeapPages > 0 {
			if err := ctx.TouchHeap(0, job.HeapPages, true); err != nil {
				return err
			}
		}
		if err := ctx.Compute(job.CPU); err != nil {
			return err
		}
		if job.Output != "" {
			fd, err := ctx.Open(job.Output, fs.WriteMode, fs.OpenOptions{Create: true, Truncate: true})
			if err != nil {
				return err
			}
			remaining := job.OutputSize
			chunk := make([]byte, 16*1024)
			for remaining > 0 {
				n := len(chunk)
				if remaining < n {
					n = remaining
				}
				if _, err := ctx.Write(fd, chunk[:n]); err != nil {
					return err
				}
				remaining -= n
			}
			if err := ctx.Close(fd); err != nil {
				return err
			}
		}
		return ctx.Exit(0)
	}
}

// ProjectParams sizes a synthetic compile project.
type ProjectParams struct {
	// Units is the number of compilation units.
	Units int
	// CompileCPU is the mean compute time per unit; CPUJitter is the
	// +/- uniform fraction applied per unit.
	CompileCPU time.Duration
	CPUJitter  float64
	// SrcBytes, HdrBytes, ObjBytes size the files.
	SrcBytes int
	HdrBytes int
	ObjBytes int
	// Headers is the number of shared header files; LookupsPerUnit is how
	// many include-path probes each unit performs.
	Headers        int
	LookupsPerUnit int
	// HeadersRead is how many headers each unit actually reads.
	HeadersRead int
	// LinkCPU and BinaryBytes describe the final sequential link.
	LinkCPU     time.Duration
	BinaryBytes int
	// HeapPages is each job's working set.
	HeapPages int
	// Dir is the source tree root (default "/src").
	Dir string
}

// DefaultProjectParams approximates the thesis's 24-unit builds.
func DefaultProjectParams() ProjectParams {
	return ProjectParams{
		Units:          24,
		CompileCPU:     4 * time.Second,
		CPUJitter:      0.25,
		SrcBytes:       24 * 1024,
		HdrBytes:       8 * 1024,
		ObjBytes:       20 * 1024,
		Headers:        16,
		LookupsPerUnit: 80,
		HeadersRead:    4,
		LinkCPU:        6 * time.Second,
		BinaryBytes:    400 * 1024,
		HeapPages:      32,
		Dir:            "/src",
	}
}

// SyntheticProject seeds the source tree into the cluster's FS and returns
// the corresponding makefile.
func SyntheticProject(c *core.Cluster, rng *rand.Rand, p ProjectParams) (*Makefile, error) {
	if p.Dir == "" {
		p.Dir = "/src"
	}
	mf := NewMakefile()
	headers := make([]string, p.Headers)
	for i := range headers {
		headers[i] = fmt.Sprintf("%s/h%d.h", p.Dir, i)
		if err := c.SeedBinary(headers[i], p.HdrBytes); err != nil {
			return nil, err
		}
		mf.AddSource(headers[i])
	}
	var objs []string
	for i := 0; i < p.Units; i++ {
		src := fmt.Sprintf("%s/u%d.c", p.Dir, i)
		obj := fmt.Sprintf("%s/u%d.o", p.Dir, i)
		if err := c.SeedBinary(src, p.SrcBytes); err != nil {
			return nil, err
		}
		mf.AddSource(src)
		inputs := []string{src}
		deps := []string{src}
		for h := 0; h < p.HeadersRead && h < len(headers); h++ {
			hdr := headers[(i+h)%len(headers)]
			inputs = append(inputs, hdr)
			deps = append(deps, hdr)
		}
		var lookups []string
		for l := 0; l < p.LookupsPerUnit; l++ {
			lookups = append(lookups, headers[l%len(headers)])
		}
		cpu := p.CompileCPU
		if p.CPUJitter > 0 && rng != nil {
			f := 1 + p.CPUJitter*(2*rng.Float64()-1)
			cpu = time.Duration(float64(cpu) * f)
		}
		mf.AddTarget(obj, deps, &Job{
			CPU:         cpu,
			Inputs:      inputs,
			LookupPaths: lookups,
			Output:      obj,
			OutputSize:  p.ObjBytes,
			HeapPages:   p.HeapPages,
		})
		objs = append(objs, obj)
	}
	mf.AddTarget(p.Dir+"/prog", objs, &Job{
		CPU:        p.LinkCPU,
		Inputs:     objs,
		Output:     p.Dir + "/prog",
		OutputSize: p.BinaryBytes,
		HeapPages:  p.HeapPages,
	})
	return mf, nil
}
