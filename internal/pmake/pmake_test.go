package pmake

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"sprite/internal/core"
	"sprite/internal/fs"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

func newCluster(t *testing.T, workstations int) *core.Cluster {
	t.Helper()
	c, err := core.NewCluster(core.Options{Workstations: workstations, FileServers: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, bin := range []string{"/bin/cc", "/bin/pmake"} {
		if err := c.SeedBinary(bin, 256*1024); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func smallProject(t *testing.T, c *core.Cluster, units int) *Makefile {
	t.Helper()
	p := DefaultProjectParams()
	p.Units = units
	p.CompileCPU = 500 * time.Millisecond
	p.LinkCPU = 300 * time.Millisecond
	p.LookupsPerUnit = 10
	mf, err := SyntheticProject(c, rand.New(rand.NewSource(1)), p)
	if err != nil {
		t.Fatal(err)
	}
	return mf
}

// runPmake executes mf from a pmake process on workstation 0 and returns
// the result.
func runPmake(t *testing.T, c *core.Cluster, mf *Makefile, opts Options) *Result {
	t.Helper()
	var res *Result
	c.Boot("boot", func(env *sim.Env) error {
		p, err := c.Workstation(0).StartProcess(env, "pmake", func(ctx *core.Ctx) error {
			r, err := Run(ctx, mf, opts)
			if err != nil {
				return err
			}
			res = r
			return nil
		}, core.ProcConfig{Binary: "/bin/pmake", CodePages: 8, HeapPages: 16, StackPages: 2})
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestBuildOrderRespectsDeps(t *testing.T) {
	mf := NewMakefile()
	mf.AddSource("a.c")
	mf.AddTarget("a.o", []string{"a.c"}, &Job{})
	mf.AddTarget("prog", []string{"a.o"}, &Job{})
	order, err := mf.BuildOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0].Name != "a.o" || order[1].Name != "prog" {
		t.Fatalf("order = %v", names(order))
	}
}

func TestBuildOrderDetectsCycle(t *testing.T) {
	mf := NewMakefile()
	mf.AddTarget("a", []string{"b"}, &Job{})
	mf.AddTarget("b", []string{"a"}, &Job{})
	if _, err := mf.BuildOrder(); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
}

func TestBuildOrderUnknownDep(t *testing.T) {
	mf := NewMakefile()
	mf.AddTarget("a", []string{"ghost"}, &Job{})
	if _, err := mf.BuildOrder(); !errors.Is(err, ErrUnknownDep) {
		t.Fatalf("err = %v, want ErrUnknownDep", err)
	}
}

func names(ts []*Target) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name
	}
	return out
}

func TestLocalBuildProducesOutputs(t *testing.T) {
	c := newCluster(t, 1)
	mf := smallProject(t, c, 3)
	res := runPmake(t, c, mf, Options{Force: true})
	if res.Jobs != 4 { // 3 compiles + link
		t.Fatalf("jobs = %d, want 4", res.Jobs)
	}
	if res.RemoteJobs != 0 {
		t.Fatalf("remote jobs = %d, want 0", res.RemoteJobs)
	}
	// Outputs exist with the right sizes.
	c2 := c.FS().Client(c.Workstation(0).Host())
	c.Boot("verify", func(env *sim.Env) error {
		_, size, err := c2.Stat(env, "/src/u0.o")
		if err != nil {
			return err
		}
		if size != DefaultProjectParams().ObjBytes {
			t.Errorf("u0.o size = %d", size)
		}
		_, size, err = c2.Stat(env, "/src/prog")
		if err != nil {
			return err
		}
		if size != DefaultProjectParams().BinaryBytes {
			t.Errorf("prog size = %d", size)
		}
		return nil
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteBuildUsesMigration(t *testing.T) {
	c := newCluster(t, 4)
	mf := smallProject(t, c, 6)
	var hosts []rpc.HostID
	for _, k := range c.Workstations()[1:] {
		hosts = append(hosts, k.Host())
	}
	res := runPmake(t, c, mf, Options{Force: true, Hosts: hosts})
	if res.RemoteJobs == 0 {
		t.Fatal("no jobs ran remotely")
	}
	recs := c.MigrationRecords()
	if len(recs) == 0 {
		t.Fatal("no migrations recorded")
	}
	for _, r := range recs {
		if !r.ExecTime {
			t.Fatalf("pmake migration not exec-time: %+v", r)
		}
	}
}

func TestParallelBuildIsFaster(t *testing.T) {
	cSeq := newCluster(t, 4)
	seq := runPmake(t, cSeq, smallProject(t, cSeq, 8), Options{Force: true})

	cPar := newCluster(t, 4)
	var hosts []rpc.HostID
	for _, k := range cPar.Workstations()[1:] {
		hosts = append(hosts, k.Host())
	}
	par := runPmake(t, cPar, smallProject(t, cPar, 8), Options{Force: true, Hosts: hosts})

	if par.Makespan >= seq.Makespan {
		t.Fatalf("parallel %v not faster than sequential %v", par.Makespan, seq.Makespan)
	}
	speedup := float64(seq.Makespan) / float64(par.Makespan)
	if speedup < 1.5 {
		t.Fatalf("speedup = %.2f, want >= 1.5 with 3 extra hosts", speedup)
	}
}

func TestIncrementalBuildSkipsUpToDate(t *testing.T) {
	c := newCluster(t, 1)
	mf := smallProject(t, c, 3)
	first := runPmake(t, c, mf, Options{Force: true})
	if first.Skipped != 0 {
		t.Fatalf("first build skipped %d", first.Skipped)
	}
	second := runPmake(t, c, mf, Options{})
	if second.Jobs != 0 {
		t.Fatalf("second build ran %d jobs, want 0", second.Jobs)
	}
	if second.Skipped != 4 {
		t.Fatalf("second build skipped %d, want 4", second.Skipped)
	}
}

func TestTouchedSourceRebuildsDependentsOnly(t *testing.T) {
	c := newCluster(t, 1)
	mf := smallProject(t, c, 3)
	first := runPmake(t, c, mf, Options{Force: true})
	if first.Jobs != 4 {
		t.Fatalf("first build jobs = %d", first.Jobs)
	}
	// Touch one source: its object and the link must rebuild; the other
	// two objects stay fresh.
	cl := c.FS().Client(c.Workstation(0).Host())
	c.Boot("touch", func(env *sim.Env) error {
		st, err := cl.Open(env, "/src/u1.c", fs.ReadWriteMode, fs.OpenOptions{})
		if err != nil {
			return err
		}
		if _, err := cl.Write(env, st, []byte("edit")); err != nil {
			return err
		}
		if err := cl.FlushFile(env, st.FID); err != nil {
			return err
		}
		return cl.Close(env, st)
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	second := runPmake(t, c, mf, Options{})
	if second.Jobs != 2 {
		t.Fatalf("incremental jobs = %d, want 2 (u1.o + link)", second.Jobs)
	}
	if second.Skipped != 2 {
		t.Fatalf("skipped = %d, want 2", second.Skipped)
	}
}

func TestLinkWaitsForAllObjects(t *testing.T) {
	c := newCluster(t, 3)
	mf := smallProject(t, c, 4)
	var hosts []rpc.HostID
	for _, k := range c.Workstations()[1:] {
		hosts = append(hosts, k.Host())
	}
	// If the link ran before an object existed, the job would fail on
	// open; success implies ordering held.
	res := runPmake(t, c, mf, Options{Force: true, Hosts: hosts})
	if res.Jobs != 5 {
		t.Fatalf("jobs = %d, want 5", res.Jobs)
	}
}
