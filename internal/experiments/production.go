package experiments

import (
	"fmt"
	"sort"
	"time"

	"sprite/internal/core"
	"sprite/internal/hostsel"
	"sprite/internal/rpc"
	"sprite/internal/sim"
	"sprite/internal/stats"
	"sprite/internal/workload"
)

// E9Eviction reproduces the workstation-reclaiming measurement: the delay
// between an owner returning and the host being free of foreign processes,
// as a function of the foreign process's dirty memory.
func E9Eviction(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E9",
		Title:    "Eviction: time to reclaim a workstation vs foreign dirty VM",
		PaperRef: "thesis Ch. 8: process eviction when a user returns",
		Columns:  []string{"dirty MB", "reclaim ms", "migration total ms", "vm ms"},
	}
	pageSize := core.DefaultParams().VM.PageSize
	sizes := []int{0, 1, 2, 4, 8, 16}
	if cfg.Quick {
		sizes = []int{0, 4}
	}
	for _, m := range sizes {
		c, err := newPairCluster(cfg.Seed)
		if err != nil {
			return nil, err
		}
		sel := hostsel.NewCentral(c, rpc.HostID(1), hostsel.DefaultCentralParams())
		home, lent := c.Workstation(0), c.Workstation(1)
		dirtyPages := m * mb / pageSize
		heap := dirtyPages
		if heap < 8 {
			heap = 8
		}
		var reclaim time.Duration
		c.Boot("boot", func(env *sim.Env) error {
			if err := env.Sleep(time.Minute); err != nil {
				return err
			}
			for _, k := range c.Workstations() {
				if err := sel.NotifyAvailability(env, k.Host(), k.Available(env.Now())); err != nil {
					return err
				}
			}
			if _, err := sel.RequestHosts(env, home.Host(), 1); err != nil {
				return err
			}
			p, err := home.StartProcess(env, "guest", func(ctx *core.Ctx) error {
				if err := ctx.Migrate(lent.Host()); err != nil {
					return err
				}
				if dirtyPages > 0 {
					if err := ctx.TouchHeap(0, dirtyPages, true); err != nil {
						return err
					}
				}
				return ctx.Compute(10 * time.Minute)
			}, workerCfg(heap))
			if err != nil {
				return err
			}
			if err := env.Sleep(5 * time.Second); err != nil {
				return err
			}
			// The owner returns: measure until the host is clean.
			lent.NoteInput(env.Now())
			t0 := env.Now()
			if err := sel.NotifyAvailability(env, lent.Host(), false); err != nil {
				return err
			}
			reclaim = env.Now() - t0
			if len(lent.ForeignProcesses()) != 0 {
				return fmt.Errorf("eviction left foreign processes")
			}
			// Put the guest out of its misery so the run ends.
			killer, err := home.StartProcess(env, "killer", func(ctx *core.Ctx) error {
				return ctx.Kill(p.PID())
			}, workerCfg(8))
			if err != nil {
				return err
			}
			if _, err := killer.Exited().Wait(env); err != nil {
				return err
			}
			_, err = p.Exited().Wait(env)
			return err
		})
		if err := c.Run(0); err != nil {
			return nil, err
		}
		var mig core.MigrationRecord
		for _, r := range c.MigrationRecords() {
			if r.Reason == "eviction" {
				mig = r
			}
		}
		t.CaptureMetrics(cfg, fmt.Sprintf("dirtyMB=%d", m), c)
		t.AddRow(fmt.Sprintf("%d", m), ms(reclaim), ms(mig.Total), ms(mig.VMTime))
	}
	t.AddNote("paper shape: reclaim delay grows linearly with the foreign process's dirty memory; small for typical processes")
	return t, nil
}

// E10IdleFraction reproduces the availability measurements: the fraction of
// workstations idle through a simulated day, and the (low) total processor
// utilization.
func E10IdleFraction(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E10",
		Title:    "Idle hosts through a simulated day",
		PaperRef: "thesis Ch. 8: 65-70% of hosts idle during the day, ~80% at night; total utilization a few percent",
		Columns:  []string{"period", "mean idle %", "min idle %", "max idle %"},
	}
	hosts := 32
	if cfg.Quick {
		hosts = 12
	}
	c, err := core.NewCluster(core.Options{Workstations: hosts, FileServers: 1, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	if err := c.SeedBinary("/bin/sh", 64*1024); err != nil {
		return nil, err
	}
	users := workload.NewUserPool(c, workload.DefaultDayProfile(), nil)
	lifetimes := workload.ZhouLifetimes()

	// Light interactive process load: while a user is active, short
	// commands run per Zhou's lifetime distribution.
	spawnersStopped := false
	startSpawners := func(env *sim.Env) {
		for _, k := range c.Workstations() {
			kernel := k
			env.Spawn(fmt.Sprintf("spawner-%v", kernel.Host()), func(senv *sim.Env) error {
				rng := senv.Rand()
				for !spawnersStopped {
					gap := time.Duration(rng.ExpFloat64() * float64(15*time.Second))
					if err := senv.Sleep(gap); err != nil {
						return err
					}
					if spawnersStopped {
						return nil
					}
					if senv.Now()-kernel.LastInput() > 30*time.Second {
						continue // user away: no commands
					}
					life := lifetimes.Sample(rng)
					if life > 5*time.Minute {
						life = 5 * time.Minute
					}
					if _, err := kernel.StartProcess(senv, "cmd", func(ctx *core.Ctx) error {
						return ctx.Compute(life)
					}, core.ProcConfig{Binary: "/bin/sh", CodePages: 2, HeapPages: 2, StackPages: 1}); err != nil {
						return err
					}
				}
				return nil
			})
		}
	}

	var daySamples, nightSamples []float64
	c.Boot("boot", func(env *sim.Env) error {
		users.Start(env)
		startSpawners(env)
		// Night window: 02:00-06:00.
		if err := env.Sleep(2 * time.Hour); err != nil {
			return err
		}
		var err error
		nightSamples, err = workload.SampleAvailability(env, c, 5*time.Minute, 4*time.Hour)
		if err != nil {
			return err
		}
		// Day window: 10:00-16:00.
		if err := env.Sleep(4 * time.Hour); err != nil {
			return err
		}
		daySamples, err = workload.SampleAvailability(env, c, 5*time.Minute, 6*time.Hour)
		if err != nil {
			return err
		}
		users.Stop()
		spawnersStopped = true
		return nil
	})
	if err := c.Run(18 * time.Hour); err != nil {
		return nil, err
	}
	elapsed := c.Sim().Now()
	var busy time.Duration
	for _, k := range c.Workstations() {
		busy += k.CPU().BusyTime(elapsed)
	}
	util := float64(busy) / (float64(elapsed) * float64(hosts)) * 100
	c.Stop()
	_ = c.Run(0)
	t.CaptureMetrics(cfg, "day", c)

	summarize := func(name string, vals []float64) {
		var s stats.Sample
		for _, v := range vals {
			s.Add(v)
		}
		t.AddRow(name,
			fmt.Sprintf("%.0f", s.Mean()*100),
			fmt.Sprintf("%.0f", s.Min()*100),
			fmt.Sprintf("%.0f", s.Max()*100))
	}
	summarize("day (10:00-16:00)", daySamples)
	summarize("night (02:00-06:00)", nightSamples)
	t.AddNote("total processor utilization over the run: %.1f%% (thesis: 2.3%%)", util)
	t.AddNote("paper shape: a large majority of hosts are idle at all times, more at night than during the day")
	return t, nil
}

// E11PlacementVsMigration reproduces the Eager-et-al. versus Krueger-Livny
// comparison: how much completion-time improvement comes from initial
// placement alone, and how much more from migrating active processes.
func E11PlacementVsMigration(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E11",
		Title:    "Load-sharing policy: none vs initial placement vs placement+migration",
		PaperRef: "thesis Ch. 2/8: the ELZ88 vs KL88 debate, under Zhou-like lifetimes",
		Columns:  []string{"policy", "jobs", "mean completion s", "p95 s", "makespan s", "migrations"},
	}
	jobs := 160
	burst := 16
	gap := 10 * time.Second
	if cfg.Quick {
		jobs = 48
	}
	lifetimes := workload.ZhouLifetimes()

	type policy int
	const (
		policyNone policy = iota
		policyPlacement
		policyBoth
	)
	runPolicy := func(pol policy, label string) (*stats.Sample, time.Duration, int, error) {
		c, err := core.NewCluster(core.Options{Workstations: 8, FileServers: 1, Seed: cfg.Seed})
		if err != nil {
			return nil, 0, 0, err
		}
		if err := c.SeedBinary("/bin/job", 64*1024); err != nil {
			return nil, 0, 0, err
		}
		submit := c.Workstation(0)
		var sample stats.Sample
		var makespan time.Duration
		done := sim.NewWaitGroup(c.Sim())
		done.Add(jobs)
		rebalStop := false

		c.Boot("boot", func(env *sim.Env) error {
			rng := env.Rand()
			// Pre-sample lifetimes so every policy sees the same stream.
			lives := make([]time.Duration, jobs)
			for i := range lives {
				lives[i] = lifetimes.Sample(rng)
				if lives[i] > 4*time.Minute {
					lives[i] = 4 * time.Minute
				}
			}
			if pol == policyBoth {
				env.Spawn("rebalancer", func(renv *sim.Env) error {
					for !rebalStop {
						if err := renv.Sleep(time.Second); err != nil {
							return err
						}
						if rebalStop {
							return nil
						}
						var loaded, idle *core.Kernel
						for _, k := range c.Workstations() {
							switch {
							case k.CPU().Runnable() >= 2 && (loaded == nil || k.CPU().Runnable() > loaded.CPU().Runnable()):
								loaded = k
							case k.CPU().Runnable() == 0 && idle == nil:
								idle = k
							}
						}
						if loaded == nil || idle == nil {
							continue
						}
						// Move the longest-running process (Cabrera's
						// criterion: it is the one expected to keep
						// running), freeing the host for the queue
						// behind it.
						var victim *core.Process
						for _, p := range loaded.Processes() {
							if p.State() != core.StateRunning {
								continue
							}
							if victim == nil || p.CPUUsed() > victim.CPUUsed() {
								victim = p
							}
						}
						if victim == nil {
							continue
						}
						loaded.RequestMigration(victim, idle, "rebalance")
					}
					return nil
				})
			}
			cfgP := core.ProcConfig{Binary: "/bin/job", CodePages: 2, HeapPages: 4, StackPages: 1}
			next := 1 // round-robin placement cursor
			t0 := env.Now()
			for i := 0; i < jobs; i++ {
				if i > 0 && i%burst == 0 {
					if err := env.Sleep(gap); err != nil {
						return err
					}
				}
				life := lives[i]
				submitted := env.Now()
				prog := func(ctx *core.Ctx) error { return ctx.Compute(life) }
				var target *core.Kernel
				if pol != policyNone {
					// Initial placement: pick the least-loaded host.
					ws := c.Workstations()
					target = ws[next%len(ws)]
					for _, k := range ws {
						if k.CPU().Runnable() < target.CPU().Runnable() {
							target = k
						}
					}
					next++
				}
				var p *core.Process
				var err error
				if target == nil || target == submit {
					p, err = submit.StartProcess(env, fmt.Sprintf("job%d", i), prog, cfgP)
				} else {
					trampoline := func(ctx *core.Ctx) error {
						return ctx.Exec("job", prog, cfgP)
					}
					p, err = submit.StartProcess(env, fmt.Sprintf("job%d", i), trampoline, core.ProcConfig{})
					if err == nil {
						submit.RequestExecMigration(p, target, "placement")
					}
				}
				if err != nil {
					return err
				}
				env.Spawn(fmt.Sprintf("join%d", i), func(jenv *sim.Env) error {
					defer done.Done()
					if _, err := p.Exited().Wait(jenv); err != nil {
						return err
					}
					sample.AddDuration(jenv.Now() - submitted)
					return nil
				})
			}
			if err := done.Wait(env); err != nil {
				return err
			}
			makespan = env.Now() - t0
			rebalStop = true
			return nil
		})
		if err := c.Run(0); err != nil {
			return nil, 0, 0, err
		}
		migrations := 0
		for _, r := range c.MigrationRecords() {
			if r.Reason == "rebalance" || r.Reason == "placement" || r.Reason == "remote-exec" {
				migrations++
			}
		}
		t.CaptureMetrics(cfg, label, c)
		return &sample, makespan, migrations, nil
	}

	names := []string{"no load sharing", "initial placement", "placement + migration"}
	for pol, name := range names {
		sample, makespan, migs, err := runPolicy(policy(pol), name)
		if err != nil {
			return nil, err
		}
		t.AddRow(name,
			fmt.Sprintf("%d", sample.N()),
			fmt.Sprintf("%.2f", sample.Mean()),
			fmt.Sprintf("%.2f", sample.Percentile(95)),
			secs(makespan),
			fmt.Sprintf("%d", migs))
	}
	t.AddNote("paper shape: initial placement captures most of the benefit (Eager et al.); migrating active processes adds a further, smaller improvement for the long-lived tail (Krueger & Livny)")
	return t, nil
}

// E12SyscallTable reproduces Appendix A as a census: every 4.3BSD-style
// call classified by how Sprite keeps it transparent for migrated
// processes.
func E12SyscallTable(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E12",
		Title:    "Kernel-call handling for migrated processes (Appendix A census)",
		PaperRef: "thesis Appendix A",
		Columns:  []string{"policy", "calls", "examples"},
	}
	byPolicy := make(map[core.HandlingPolicy][]string)
	for call, pol := range core.SyscallTable {
		byPolicy[pol] = append(byPolicy[pol], call)
	}
	order := []core.HandlingPolicy{
		core.PolicyLocal, core.PolicyFile, core.PolicyHome,
		core.PolicyTransfer, core.PolicyDenied,
	}
	for _, pol := range order {
		calls := byPolicy[pol]
		sort.Strings(calls)
		examples := calls
		if len(examples) > 4 {
			examples = examples[:4]
		}
		t.AddRow(pol.String(), fmt.Sprintf("%d", len(calls)), fmt.Sprintf("%v", examples))
	}
	t.AddNote("total calls classified: %d; the conformance tests exercise each modeled call before and after migration", len(core.SyscallTable))
	return t, nil
}
