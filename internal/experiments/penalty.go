package experiments

import (
	"fmt"
	"time"

	"sprite/internal/core"
	"sprite/internal/fs"
	"sprite/internal/hostsel"
	"sprite/internal/rpc"
	"sprite/internal/sim"
	"sprite/internal/workload"
)

// E13RemotePenalty reproduces the remote-execution overhead measurement:
// the slowdown a process suffers from running away from home, broken down
// by workload mix. Compute-bound processes pay almost nothing; kernel-call
// heavy processes pay for every forwarded call (Ch. 7 reports a few
// percent for typical workloads).
func E13RemotePenalty(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E13",
		Title:    "Remote execution penalty by workload mix",
		PaperRef: "thesis Ch. 7: overhead of running a process away from home",
		Columns:  []string{"workload", "home s", "away s", "slowdown %"},
	}
	type mix struct {
		name string
		prog func(ctx *core.Ctx, scale int) error
	}
	mixes := []mix{
		{"compute-bound", func(ctx *core.Ctx, scale int) error {
			return ctx.Compute(time.Duration(scale) * time.Second)
		}},
		{"file I/O heavy", func(ctx *core.Ctx, scale int) error {
			for i := 0; i < scale*20; i++ {
				fd, err := ctx.Open("/data/in", fs.ReadMode, fs.OpenOptions{})
				if err != nil {
					return err
				}
				if _, err := ctx.Read(fd, 8192); err != nil {
					return err
				}
				if err := ctx.Close(fd); err != nil {
					return err
				}
				if err := ctx.Compute(20 * time.Millisecond); err != nil {
					return err
				}
			}
			return nil
		}},
		{"home-call heavy", func(ctx *core.Ctx, scale int) error {
			for i := 0; i < scale*50; i++ {
				if _, err := ctx.GetTimeOfDay(); err != nil {
					return err
				}
				if err := ctx.Compute(10 * time.Millisecond); err != nil {
					return err
				}
			}
			return nil
		}},
	}
	scale := 4
	if cfg.Quick {
		scale = 1
	}
	for _, m := range mixes {
		var times [2]time.Duration
		for variant := 0; variant < 2; variant++ {
			remote := variant == 1
			c, err := newPairCluster(cfg.Seed)
			if err != nil {
				return nil, err
			}
			if err := c.Seed("/data/in", make([]byte, 64*1024)); err != nil {
				return nil, err
			}
			dst := c.Workstation(1)
			var elapsed time.Duration
			c.Boot("boot", func(env *sim.Env) error {
				p, err := c.Workstation(0).StartProcess(env, m.name, func(ctx *core.Ctx) error {
					if remote {
						if err := ctx.Migrate(dst.Host()); err != nil {
							return err
						}
					}
					t0 := ctx.Now()
					if err := m.prog(ctx, scale); err != nil {
						return err
					}
					elapsed = ctx.Now() - t0
					return nil
				}, workerCfg(16))
				if err != nil {
					return err
				}
				_, err = p.Exited().Wait(env)
				return err
			})
			if err := c.Run(0); err != nil {
				return nil, err
			}
			where := "home"
			if remote {
				where = "away"
			}
			t.CaptureMetrics(cfg, m.name+" "+where, c)
			times[variant] = elapsed
		}
		slowdown := (float64(times[1])/float64(times[0]) - 1) * 100
		t.AddRow(m.name, secs(times[0]), secs(times[1]), fmt.Sprintf("%.1f", slowdown))
	}
	t.AddNote("paper shape: compute- and file-bound processes pay ~0%% away from home (the FS is location transparent); only home-forwarded calls cost, so typical processes see a few percent at most")
	return t, nil
}

// E14DayInTheLife reproduces the Ch. 8 production statistics: a working
// day on a shared cluster with users coming and going and a batch of
// migration-using jobs, reporting migrations, evictions, remote execution
// share, and host availability.
func E14DayInTheLife(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E14",
		Title:    "A day of load sharing in production",
		PaperRef: "thesis Ch. 8: migration in daily use",
		Columns:  []string{"metric", "value"},
	}
	hosts := 16
	jobs := 40
	jobCPU := 3 * time.Minute
	dayLen := 10 * time.Hour
	if cfg.Quick {
		hosts = 8
		jobs = 10
		jobCPU = time.Minute
		dayLen = 3 * time.Hour
	}
	c, err := core.NewCluster(core.Options{Workstations: hosts, FileServers: 1, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	if err := c.SeedBinary("/bin/sim", 256<<10); err != nil {
		return nil, err
	}
	migd := hostsel.NewCentral(c, rpc.HostID(1), hostsel.DefaultCentralParams())
	users := workload.NewUserPool(c, workload.DefaultDayProfile(), migd.NotifyAvailability)
	submit := c.Workstation(0)

	var remoteCPU, totalCPU time.Duration
	var batchSpan time.Duration
	c.Boot("boot", func(env *sim.Env) error {
		users.Start(env)
		if err := env.Sleep(2 * time.Hour); err != nil { // morning
			return err
		}
		t0 := env.Now()
		done := sim.NewWaitGroup(c.Sim())
		done.Add(jobs)
		launched := 0
		for launched < jobs {
			if env.Now()-t0 > dayLen {
				return fmt.Errorf("day ended with %d jobs unlaunched", jobs-launched)
			}
			hostsGot, err := migd.RequestHosts(env, submit.Host(), jobs-launched)
			if err != nil {
				return err
			}
			if len(hostsGot) == 0 {
				if err := env.Sleep(time.Minute); err != nil {
					return err
				}
				continue
			}
			for _, h := range hostsGot {
				target := c.KernelOn(h)
				p, err := submit.StartProcess(env, fmt.Sprintf("sim%d", launched),
					func(ctx *core.Ctx) error {
						return ctx.Exec("sim", func(cc *core.Ctx) error {
							if err := cc.TouchHeap(0, 64, true); err != nil {
								return err
							}
							return cc.Compute(jobCPU)
						}, core.ProcConfig{Binary: "/bin/sim", CodePages: 8, HeapPages: 64, StackPages: 2})
					}, core.ProcConfig{})
				if err != nil {
					return err
				}
				submit.RequestExecMigration(p, target, "load-sharing")
				host := h
				env.Spawn("join", func(je *sim.Env) error {
					defer done.Done()
					if _, err := p.Exited().Wait(je); err != nil {
						return err
					}
					return migd.Release(je, submit.Host(), []rpc.HostID{host})
				})
				launched++
			}
		}
		if err := done.Wait(env); err != nil {
			return err
		}
		batchSpan = env.Now() - t0
		users.Stop()
		return nil
	})
	if err := c.Run(14 * time.Hour); err != nil {
		return nil, err
	}
	elapsed := c.Sim().Now()
	var evictions, migrations int
	for _, rec := range c.MigrationRecords() {
		migrations++
		if rec.Reason == "eviction" {
			evictions++
		}
	}
	for _, k := range c.Workstations() {
		busy := k.CPU().BusyTime(elapsed)
		totalCPU += busy
		if k != submit {
			remoteCPU += busy
		}
	}
	c.Stop()
	if err := c.Run(0); err != nil {
		return nil, err
	}
	t.CaptureMetrics(cfg, "day", c)
	idle := 0
	for _, k := range c.Workstations() {
		if k.Available(elapsed) {
			idle++
		}
	}
	t.AddRow("jobs completed", fmt.Sprintf("%d", jobs))
	t.AddRow("batch makespan (s)", secs(batchSpan))
	t.AddRow("total migrations", fmt.Sprintf("%d", migrations))
	t.AddRow("evictions (owner returned)", fmt.Sprintf("%d", evictions))
	t.AddRow("remote share of batch CPU (%)", fmt.Sprintf("%.0f", float64(remoteCPU)/float64(totalCPU)*100))
	t.AddRow("migd host grants", fmt.Sprintf("%d", migd.Stats().Granted))
	t.AddRow("migd denied requests", fmt.Sprintf("%d", migd.Stats().Denied))
	t.AddNote("paper shape: migration-using batches run almost entirely on borrowed hosts; eviction happens but is rare relative to grants; users keep their machines")
	return t, nil
}
