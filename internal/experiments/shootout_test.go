package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// benchHostsel mirrors bench/BENCH_hostsel.json: ceiling-style bounds on the
// gossip selector's quick-mode shoot-out point. Virtual time makes the run
// deterministic, so the gate is exact — a drift past any bound is a real
// behaviour change, not noise.
type benchHostsel struct {
	Experiment string `json:"experiment"`
	Seed       int64  `json:"seed"`
	Quick      bool   `json:"quick"`
	Gossip     struct {
		MaxMisplaceRate float64 `json:"max_misplace_rate"`
		MinGranted      uint64  `json:"min_granted"`
		MaxMeanMs       float64 `json:"max_mean_ms"`
	} `json:"gossip"`
}

// TestGossipMisplaceGate runs the quick shoot-out at the checked-in seed and
// gates the gossip selector against bench/BENCH_hostsel.json: misplacement
// must stay under the ceiling (bounded stale views recovering via claim
// verification), enough requests must be granted (the selector keeps working
// through churn), and mean selection latency must stay local-read cheap.
func TestGossipMisplaceGate(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "bench", "BENCH_hostsel.json"))
	if err != nil {
		t.Fatal(err)
	}
	var base benchHostsel
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}

	snap := filepath.Join(t.TempDir(), "HOSTSEL_gate.json")
	cfg := Config{Seed: base.Seed, Quick: base.Quick, HostselSnapshot: snap}
	if _, err := E16SelectorShootout(cfg); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	var rows []e16Row
	if err := json.Unmarshal(out, &rows); err != nil {
		t.Fatal(err)
	}
	var gossip *e16Row
	for i := range rows {
		if rows[i].Architecture == "gossip" {
			gossip = &rows[i]
		}
	}
	if gossip == nil {
		t.Fatal("no gossip row in shoot-out snapshot")
	}
	if gossip.MisplaceRate > base.Gossip.MaxMisplaceRate {
		t.Errorf("gossip misplace rate %.4f exceeds baseline ceiling %.4f (bench/BENCH_hostsel.json)",
			gossip.MisplaceRate, base.Gossip.MaxMisplaceRate)
	}
	if gossip.Granted < base.Gossip.MinGranted {
		t.Errorf("gossip granted %d below baseline floor %d", gossip.Granted, base.Gossip.MinGranted)
	}
	if gossip.MeanMs > base.Gossip.MaxMeanMs {
		t.Errorf("gossip mean selection %.2fms exceeds baseline ceiling %.2fms", gossip.MeanMs, base.Gossip.MaxMeanMs)
	}
}
