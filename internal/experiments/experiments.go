// Package experiments contains one driver per reproduced table/figure of
// the thesis (see DESIGN.md §4 and EXPERIMENTS.md). Each driver builds its
// own cluster(s) from a seed, runs the workload, and returns a Table whose
// rows mirror what the paper reports. Benchmarks and the spritesim CLI call
// these drivers.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"sprite/internal/core"
	"sprite/internal/metrics"
	"sprite/internal/recovery"
)

// Config controls an experiment run.
type Config struct {
	// Seed makes the run reproducible.
	Seed int64
	// Quick shrinks sweeps for use inside benchmarks.
	Quick bool
	// Metrics attaches each cluster's metrics snapshot to the table
	// (rendered after the notes). Off by default, so standard outputs are
	// byte-identical with or without the metrics plane.
	Metrics bool
	// Crashes overrides the recovery experiment's (E15) default fault
	// schedule; parsed from repeated spritesim -crash flags.
	Crashes []recovery.CrashSpec
	// RecoverySnapshot, when non-empty, makes E15 write its final metrics
	// snapshot to this file as JSON.
	RecoverySnapshot string
	// Fleet10k opts the selector shoot-out (E16) into the 10,000-host
	// point, which is far slower than the standard 100/1,000 sweep.
	Fleet10k bool
	// HostselSnapshot, when non-empty, makes E16 write its per-selector
	// results to this file as JSON.
	HostselSnapshot string
	// Hosts overrides the primary scale knob of the scale-aware
	// experiments: E16's fleet size (replacing the standard sweep) and
	// E17's load-daemon count. Zero keeps each experiment's default.
	Hosts int
	// WallclockSnapshot, when non-empty, makes E17 write its per-kernel
	// wallclock rows to this file as JSON (the BENCH_wallclock.json CI
	// artifact).
	WallclockSnapshot string
	// ConfinedScaleSnapshot, when non-empty, makes the confined scale tier
	// (E17ConfinedScale) write its serial-vs-parallel comparison rows to
	// this file as JSON (the SCALE_confined.json nightly CI artifact).
	ConfinedScaleSnapshot string
	// FleetSnapshot, when non-empty, makes the fleet economy experiment
	// (E18) write its per-intensity rows to this file as JSON (the
	// FLEET_storms.json CI artifact; bench/BENCH_fleet.json gates it).
	FleetSnapshot string
}

// Table is one reproduced table or figure, as labeled rows.
type Table struct {
	ID       string
	Title    string
	PaperRef string
	Columns  []string
	Rows     [][]string
	Notes    []string
	// Metrics holds one rendered metrics snapshot per cluster the
	// experiment ran (populated only when Config.Metrics is set).
	Metrics []string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a free-text note rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// CaptureMetrics attaches the cluster's metrics snapshot to the table when
// cfg.Metrics is set (a no-op otherwise). The label distinguishes the
// several clusters one experiment may build — sweeps label each point.
func (t *Table) CaptureMetrics(cfg Config, label string, c *core.Cluster) {
	if !cfg.Metrics {
		return
	}
	t.CaptureSnapshot(cfg, label, c.MetricsSnapshot())
}

// CaptureSnapshot is CaptureMetrics for drivers that only hold a snapshot
// (the cluster itself already torn down or owned by another package).
func (t *Table) CaptureSnapshot(cfg Config, label string, snap metrics.Snapshot) {
	if !cfg.Metrics {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "metrics %s [%s]:\n", t.ID, label)
	text := strings.TrimRight(snap.Text(), "\n")
	for _, line := range strings.Split(text, "\n") {
		b.WriteString("  ")
		b.WriteString(line)
		b.WriteByte('\n')
	}
	t.Metrics = append(t.Metrics, b.String())
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.PaperRef != "" {
		fmt.Fprintf(&b, "  [paper: %s]\n", t.PaperRef)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == len(cells)-1 {
				b.WriteString(cell) // no trailing padding
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	for _, m := range t.Metrics {
		b.WriteString(m)
	}
	return b.String()
}

// Runner is one registered experiment.
type Runner struct {
	ID   string
	Name string
	Run  func(Config) (*Table, error)
}

// All lists every experiment in paper order.
func All() []Runner {
	return []Runner{
		{ID: "E1", Name: "migration-time breakdown", Run: E1MigrationBreakdown},
		{ID: "E2", Name: "exec-time migration vs local exec", Run: E2RemoteExec},
		{ID: "E3", Name: "VM transfer strategies", Run: E3VMStrategies},
		{ID: "E4", Name: "kernel-call forwarding", Run: E4Forwarding},
		{ID: "E5", Name: "pmake speedup vs hosts", Run: E5PmakeSpeedup},
		{ID: "E6", Name: "effective utilization", Run: E6Utilization},
		{ID: "E7", Name: "host-selection latency", Run: E7SelectionLatency},
		{ID: "E8", Name: "selection architectures", Run: E8SelectionArchitectures},
		{ID: "E9", Name: "eviction cost", Run: E9Eviction},
		{ID: "E10", Name: "idle-host availability", Run: E10IdleFraction},
		{ID: "E11", Name: "placement vs migration", Run: E11PlacementVsMigration},
		{ID: "E12", Name: "syscall handling census", Run: E12SyscallTable},
		{ID: "E13", Name: "remote execution penalty", Run: E13RemotePenalty},
		{ID: "E14", Name: "a day of load sharing", Run: E14DayInTheLife},
		{ID: "E15", Name: "crash recovery and failover", Run: E15CrashRecovery},
		{ID: "E16", Name: "selector shoot-out under churn", Run: E16SelectorShootout},
		{ID: "E17", Name: "parallel kernel wallclock speedup", Run: E17ParallelWallclock},
		{ID: "E18", Name: "fleet economy under eviction storms", Run: E18FleetEconomy},
	}
}

// Find returns the runner with the given id, or nil.
func Find(id string) *Runner {
	for _, r := range All() {
		if strings.EqualFold(r.ID, id) {
			rr := r
			return &rr
		}
	}
	return nil
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond))
}

func secs(d time.Duration) string {
	return fmt.Sprintf("%.2f", d.Seconds())
}
