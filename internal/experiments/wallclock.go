package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"sprite/internal/core"
	"sprite/internal/fs"
	"sprite/internal/sim"
	"sprite/internal/workload"
)

// E17 is the repo's only wallclock experiment: it measures how fast the
// simulator itself runs, not what the simulated cluster does. The workload
// is fixed — a migration-driving cluster plane plus a fleet of confined
// per-host load daemons — and is executed under the serial oracle and the
// conservative parallel kernel at increasing worker counts. Because the
// parallel kernel commits the identical event order, every run must produce
// the same order digest; the only thing allowed to vary is the wallclock,
// which is the point. This file is exempt from the walltime lint for
// exactly that reason.

// e17Row is one kernel configuration's measurement, and the JSON shape of
// the BENCH_wallclock.json artifact.
type e17Row struct {
	// Workload names the measured plane: "daemons" is the original fleet of
	// confined per-host load daemons around an exclusive cluster plane;
	// "migration" is the migration-heavy confined-hosts workload, where the
	// whole RPC/FS/migration plane runs shard-confined (DESIGN.md §14).
	Workload string  `json:"workload"`
	Kernel   string  `json:"kernel"` // "serial" or "parallel"
	Workers  int     `json:"workers"`
	Hosts    int     `json:"hosts"`
	Cores    int     `json:"cores"` // runtime.NumCPU() — speedup is bounded by this
	Reps     int     `json:"reps"`
	WallMs   float64 `json:"wall_ms"` // best of Reps
	Speedup  float64 `json:"speedup_vs_serial"`
	Digest   string  `json:"order_digest"`
}

// e17Shape fixes the workload dimensions for one scale.
type e17Shape struct {
	hosts int // confined load daemons, one shard each
	ticks int // bounded daemon lifetime so the run quiesces
}

// e17Measure runs the fixed workload once under the given kernel
// (workers == 0 selects the serial oracle) and returns the wallclock and
// the committed-order digest.
func e17Measure(seed int64, workers int, shape e17Shape) (time.Duration, uint64, error) {
	params := core.DefaultParams()
	if workers > 0 {
		params.Sim = core.SimParams{Parallel: true, Workers: workers}
	}
	c, err := core.NewCluster(core.Options{Workstations: 4, FileServers: 1, Seed: seed, Params: &params})
	if err != nil {
		return 0, 0, err
	}
	if err := c.SeedBinary("/bin/prog", 64<<10); err != nil {
		return 0, 0, err
	}
	workload.StartBgLoad(c.Sim(), c.Metrics(), workload.BgLoadConfig{
		Hosts:       shape.hosts,
		Ticks:       shape.ticks,
		ReportEvery: 10,
	})
	// The exclusive plane stays busy too: a hopper migrating around the
	// cluster for the daemons' whole lifetime, so the measurement includes
	// the serial fraction a real experiment would carry.
	c.Boot("hopper", func(env *sim.Env) error {
		p, err := c.Workstation(0).StartProcess(env, "hop", func(ctx *core.Ctx) error {
			for i := 0; ; i++ {
				if err := ctx.Compute(500 * time.Millisecond); err != nil {
					return nil
				}
				if err := ctx.Migrate(c.Workstation((i + 1) % 4).Host()); err != nil {
					return nil
				}
				if ctx.Now() > time.Duration(shape.ticks)*75*time.Millisecond {
					return nil
				}
			}
		}, core.ProcConfig{Binary: "/bin/prog", CodePages: 2, HeapPages: 8, StackPages: 1})
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	start := time.Now()
	if err := c.Run(0); err != nil {
		return 0, 0, err
	}
	return time.Since(start), c.Sim().OrderDigest(), nil
}

// e17MigShape fixes the migration-heavy confined workload's dimensions.
type e17MigShape struct {
	hosts  int // confined workstations, one shard each
	procs  int // migrating processes started per host
	rounds int // touch + compute + migrate rounds per process
}

// e17MigMeasure runs the migration-heavy workload once with every host
// confined to its own shard (DESIGN.md §14): per-host drivers boot on their
// host's shard and start processes that fault pages, compute, and hop
// around the ring, so RPC dispatch, fs traffic, page transfer, and the
// migrations themselves all execute inside lookahead windows. The VM
// strategies round-robin across hosts so each one's source- and target-side
// work is part of the measurement.
func e17MigMeasure(seed int64, workers int, shape e17MigShape) (time.Duration, uint64, error) {
	params := core.DefaultParams()
	params.Sim.ConfineHosts = true
	if workers > 0 {
		params.Sim.Parallel = true
		params.Sim.Workers = workers
	}
	c, err := core.NewCluster(core.Options{Workstations: shape.hosts, FileServers: 2, Seed: seed, Params: &params})
	if err != nil {
		return 0, 0, err
	}
	if err := c.SeedBinary("/bin/prog", 32<<10); err != nil {
		return 0, 0, err
	}
	if _, err := c.FS().SeedSized("/data/shared", 64<<10, false); err != nil {
		return 0, 0, err
	}
	ws := c.Workstations()
	strategies := []core.TransferStrategy{
		core.SpriteFlushStrategy{},
		core.FullCopyStrategy{},
		core.CopyOnReferenceStrategy{},
		core.PreCopyStrategy{RedirtyPagesPerSec: 100},
	}
	for i := range ws {
		i := i
		k := ws[i]
		k.SetStrategy(strategies[i%len(strategies)])
		c.BootOn(k.Host(), fmt.Sprintf("mig-driver-%d", i), func(env *sim.Env) error {
			procs := make([]*core.Process, 0, shape.procs)
			for j := 0; j < shape.procs; j++ {
				j := j
				p, err := k.StartProcess(env, fmt.Sprintf("m-%d-%d", i, j), func(ctx *core.Ctx) error {
					fd, err := ctx.Open("/data/shared", fs.ReadMode, fs.OpenOptions{})
					if err != nil {
						return err
					}
					for r := 0; r < shape.rounds; r++ {
						if err := ctx.TouchHeap(0, 16, true); err != nil {
							return err
						}
						if _, err := ctx.Read(fd, 2048); err != nil {
							return err
						}
						if err := ctx.Compute(25 * time.Millisecond); err != nil {
							return err
						}
						if err := ctx.Migrate(ws[(i+j+r+1)%len(ws)].Host()); err != nil {
							return err
						}
					}
					return ctx.Close(fd)
				}, core.ProcConfig{Binary: "/bin/prog", CodePages: 2, HeapPages: 16, StackPages: 1})
				if err != nil {
					return err
				}
				procs = append(procs, p)
			}
			for _, p := range procs {
				if _, err := p.Exited().Wait(env); err != nil {
					return err
				}
			}
			return nil
		})
	}
	start := time.Now()
	if err := c.Run(0); err != nil {
		return 0, 0, err
	}
	return time.Since(start), c.Sim().OrderDigest(), nil
}

// e17Best returns the best-of-reps wallclock (the standard way to strip
// scheduler noise from a throughput measurement) plus the digest, which
// must not vary across reps. measure abstracts over the two workloads.
func e17Best(reps int, measure func() (time.Duration, uint64, error)) (time.Duration, uint64, error) {
	var best time.Duration
	var digest uint64
	for r := 0; r < reps; r++ {
		wall, d, err := measure()
		if err != nil {
			return 0, 0, err
		}
		if r == 0 {
			best, digest = wall, d
			continue
		}
		if d != digest {
			return 0, 0, fmt.Errorf("E17: digest changed across reps: %#x vs %#x", d, digest)
		}
		if wall < best {
			best = wall
		}
	}
	return best, digest, nil
}

// e17Sweep runs one workload's serial oracle plus a parallel worker sweep,
// enforcing digest equality across every kernel, and returns the rows.
func e17Sweep(workload string, hosts, reps int, workerCounts []int,
	measure func(workers int) (time.Duration, uint64, error)) ([]*e17Row, error) {
	serialWall, serialDigest, err := e17Best(reps, func() (time.Duration, uint64, error) { return measure(0) })
	if err != nil {
		return nil, err
	}
	cores := runtime.NumCPU()
	rows := []*e17Row{{
		Workload: workload, Kernel: "serial", Hosts: hosts, Cores: cores, Reps: reps,
		WallMs: float64(serialWall) / 1e6, Speedup: 1.0,
		Digest: fmt.Sprintf("%#x", serialDigest),
	}}
	for _, w := range workerCounts {
		w := w
		wall, digest, err := e17Best(reps, func() (time.Duration, uint64, error) { return measure(w) })
		if err != nil {
			return nil, err
		}
		if digest != serialDigest {
			return nil, fmt.Errorf("E17 %s: workers=%d committed a different order (%#x) than serial (%#x) — kernel bug", workload, w, digest, serialDigest)
		}
		rows = append(rows, &e17Row{
			Workload: workload, Kernel: "parallel", Workers: w, Hosts: hosts, Cores: cores, Reps: reps,
			WallMs: float64(wall) / 1e6, Speedup: float64(serialWall) / float64(wall),
			Digest: fmt.Sprintf("%#x", digest),
		})
	}
	return rows, nil
}

// E17ParallelWallclock measures the conservative parallel kernel's
// multi-core speedup and proves, in the same run, that worker count never
// changes the committed event order. Two workloads run back to back: the
// original cluster + per-host-daemon fleet ("daemons"), and the
// migration-heavy confined-hosts plane ("migration"), where RPC service,
// fs/vm traffic, and the migrations themselves dispatch concurrently
// because every host kernel lives on its own shard. Quick shrinks both;
// Config.Hosts overrides the daemon fleet. Config.WallclockSnapshot writes
// the rows as BENCH_wallclock.json.
func E17ParallelWallclock(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E17",
		Title:    "Parallel kernel wallclock speedup (fixed workload, varying kernel)",
		PaperRef: "conservative parallel DES over the Sprite cluster model; order is a pure function of (program, seed)",
		Columns:  []string{"workload", "kernel", "workers", "hosts", "wall ms", "speedup", "digest"},
	}
	shape := e17Shape{hosts: 1000, ticks: 300}
	migShape := e17MigShape{hosts: 32, procs: 4, rounds: 6}
	reps := 3
	if cfg.Quick {
		shape, migShape, reps = e17Shape{hosts: 64, ticks: 100}, e17MigShape{hosts: 8, procs: 2, rounds: 3}, 1
	}
	if cfg.Hosts > 0 {
		shape.hosts = cfg.Hosts
	}
	workerCounts := []int{1, 2, 4}
	if runtime.NumCPU() >= 8 {
		workerCounts = append(workerCounts, 8)
	}

	rows, err := e17Sweep("daemons", shape.hosts, reps, workerCounts,
		func(workers int) (time.Duration, uint64, error) { return e17Measure(cfg.Seed, workers, shape) })
	if err != nil {
		return nil, err
	}
	migRows, err := e17Sweep("migration", migShape.hosts, reps, workerCounts,
		func(workers int) (time.Duration, uint64, error) { return e17MigMeasure(cfg.Seed, workers, migShape) })
	if err != nil {
		return nil, err
	}
	rows = append(rows, migRows...)
	for _, r := range rows {
		t.AddRow(r.Workload, r.Kernel, fmt.Sprintf("%d", r.Workers), fmt.Sprintf("%d", r.Hosts),
			fmt.Sprintf("%.1f", r.WallMs), fmt.Sprintf("%.2fx", r.Speedup), r.Digest)
	}
	t.AddNote("identical digests within each workload: worker count is not an input to the simulation")
	t.AddNote("migration rows run with ConfineHosts: host kernels, RPC loops, and migrations are shard-confined")
	t.AddNote("measured on %d cores; speedup is meaningful only when cores >= workers", runtime.NumCPU())
	if cfg.WallclockSnapshot != "" {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(cfg.WallclockSnapshot, data, 0o644); err != nil {
			return nil, err
		}
		t.AddNote("wallclock rows written to %s", cfg.WallclockSnapshot)
	}
	return t, nil
}

// E17ConfinedScale is the nightly fleet-scale tier of the confined-hosts
// plane: the migration-heavy workload at 10,000 hosts (Config.Hosts
// overrides), run once under the serial oracle and once under the parallel
// kernel at 4 workers. The run FAILS — not merely notes — if the two
// kernels commit different order digests at this scale, which is the
// regression the small equivalence suites could miss. The serial and
// parallel wallclocks land in Config.ConfinedScaleSnapshot as the
// SCALE_confined.json comparison artifact.
func E17ConfinedScale(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E17s",
		Title:    "Confined-hosts scale tier: serial vs parallel at fleet scale",
		PaperRef: "per-host shards over the Sprite cluster model (DESIGN.md §14); digests must agree at any scale",
		Columns:  []string{"workload", "kernel", "workers", "hosts", "wall ms", "speedup", "digest"},
	}
	hosts := 10000
	if cfg.Hosts > 0 {
		hosts = cfg.Hosts
	}
	if cfg.Quick && cfg.Hosts == 0 {
		hosts = 200
	}
	shape := e17MigShape{hosts: hosts, procs: 2, rounds: 3}
	serialWall, serialDigest, err := e17MigMeasure(cfg.Seed, 0, shape)
	if err != nil {
		return nil, err
	}
	const workers = 4
	parWall, parDigest, err := e17MigMeasure(cfg.Seed, workers, shape)
	if err != nil {
		return nil, err
	}
	if parDigest != serialDigest {
		return nil, fmt.Errorf("E17 scale: %d-host confined tier diverged: serial digest %#x, parallel(%d) %#x — kernel bug", hosts, serialDigest, workers, parDigest)
	}
	cores := runtime.NumCPU()
	rows := []*e17Row{
		{
			Workload: "migration-scale", Kernel: "serial", Hosts: hosts, Cores: cores, Reps: 1,
			WallMs: float64(serialWall) / 1e6, Speedup: 1.0,
			Digest: fmt.Sprintf("%#x", serialDigest),
		},
		{
			Workload: "migration-scale", Kernel: "parallel", Workers: workers, Hosts: hosts, Cores: cores, Reps: 1,
			WallMs: float64(parWall) / 1e6, Speedup: float64(serialWall) / float64(parWall),
			Digest: fmt.Sprintf("%#x", parDigest),
		},
	}
	for _, r := range rows {
		t.AddRow(r.Workload, r.Kernel, fmt.Sprintf("%d", r.Workers), fmt.Sprintf("%d", r.Hosts),
			fmt.Sprintf("%.1f", r.WallMs), fmt.Sprintf("%.2fx", r.Speedup), r.Digest)
	}
	t.AddNote("digests agree at %d hosts: the confined plane commits the serial order at fleet scale", hosts)
	t.AddNote("measured on %d cores; speedup is meaningful only when cores >= workers", cores)
	if cfg.ConfinedScaleSnapshot != "" {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(cfg.ConfinedScaleSnapshot, data, 0o644); err != nil {
			return nil, err
		}
		t.AddNote("comparison rows written to %s", cfg.ConfinedScaleSnapshot)
	}
	return t, nil
}
