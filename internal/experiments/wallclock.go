package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"sprite/internal/core"
	"sprite/internal/sim"
	"sprite/internal/workload"
)

// E17 is the repo's only wallclock experiment: it measures how fast the
// simulator itself runs, not what the simulated cluster does. The workload
// is fixed — a migration-driving cluster plane plus a fleet of confined
// per-host load daemons — and is executed under the serial oracle and the
// conservative parallel kernel at increasing worker counts. Because the
// parallel kernel commits the identical event order, every run must produce
// the same order digest; the only thing allowed to vary is the wallclock,
// which is the point. This file is exempt from the walltime lint for
// exactly that reason.

// e17Row is one kernel configuration's measurement, and the JSON shape of
// the BENCH_wallclock.json artifact.
type e17Row struct {
	Kernel  string  `json:"kernel"` // "serial" or "parallel"
	Workers int     `json:"workers"`
	Hosts   int     `json:"hosts"`
	Cores   int     `json:"cores"` // runtime.NumCPU() — speedup is bounded by this
	Reps    int     `json:"reps"`
	WallMs  float64 `json:"wall_ms"` // best of Reps
	Speedup float64 `json:"speedup_vs_serial"`
	Digest  string  `json:"order_digest"`
}

// e17Shape fixes the workload dimensions for one scale.
type e17Shape struct {
	hosts int // confined load daemons, one shard each
	ticks int // bounded daemon lifetime so the run quiesces
}

// e17Measure runs the fixed workload once under the given kernel
// (workers == 0 selects the serial oracle) and returns the wallclock and
// the committed-order digest.
func e17Measure(seed int64, workers int, shape e17Shape) (time.Duration, uint64, error) {
	params := core.DefaultParams()
	if workers > 0 {
		params.Sim = core.SimParams{Parallel: true, Workers: workers}
	}
	c, err := core.NewCluster(core.Options{Workstations: 4, FileServers: 1, Seed: seed, Params: &params})
	if err != nil {
		return 0, 0, err
	}
	if err := c.SeedBinary("/bin/prog", 64<<10); err != nil {
		return 0, 0, err
	}
	workload.StartBgLoad(c.Sim(), c.Metrics(), workload.BgLoadConfig{
		Hosts:       shape.hosts,
		Ticks:       shape.ticks,
		ReportEvery: 10,
	})
	// The exclusive plane stays busy too: a hopper migrating around the
	// cluster for the daemons' whole lifetime, so the measurement includes
	// the serial fraction a real experiment would carry.
	c.Boot("hopper", func(env *sim.Env) error {
		p, err := c.Workstation(0).StartProcess(env, "hop", func(ctx *core.Ctx) error {
			for i := 0; ; i++ {
				if err := ctx.Compute(500 * time.Millisecond); err != nil {
					return nil
				}
				if err := ctx.Migrate(c.Workstation((i + 1) % 4).Host()); err != nil {
					return nil
				}
				if ctx.Now() > time.Duration(shape.ticks)*75*time.Millisecond {
					return nil
				}
			}
		}, core.ProcConfig{Binary: "/bin/prog", CodePages: 2, HeapPages: 8, StackPages: 1})
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	start := time.Now()
	if err := c.Run(0); err != nil {
		return 0, 0, err
	}
	return time.Since(start), c.Sim().OrderDigest(), nil
}

// e17Best returns the best-of-reps wallclock (the standard way to strip
// scheduler noise from a throughput measurement) plus the digest, which
// must not vary across reps.
func e17Best(seed int64, workers, reps int, shape e17Shape) (time.Duration, uint64, error) {
	var best time.Duration
	var digest uint64
	for r := 0; r < reps; r++ {
		wall, d, err := e17Measure(seed, workers, shape)
		if err != nil {
			return 0, 0, err
		}
		if r == 0 {
			best, digest = wall, d
			continue
		}
		if d != digest {
			return 0, 0, fmt.Errorf("E17: digest changed across reps: %#x vs %#x", d, digest)
		}
		if wall < best {
			best = wall
		}
	}
	return best, digest, nil
}

// E17ParallelWallclock measures the conservative parallel kernel's
// multi-core speedup on the combined cluster + per-host-daemon workload and
// proves, in the same run, that worker count never changes the committed
// event order. Quick shrinks the fleet; Config.Hosts overrides it.
// Config.WallclockSnapshot writes the rows as BENCH_wallclock.json.
func E17ParallelWallclock(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E17",
		Title:    "Parallel kernel wallclock speedup (fixed workload, varying kernel)",
		PaperRef: "conservative parallel DES over the Sprite cluster model; order is a pure function of (program, seed)",
		Columns:  []string{"kernel", "workers", "hosts", "wall ms", "speedup", "digest"},
	}
	shape := e17Shape{hosts: 1000, ticks: 300}
	reps := 3
	if cfg.Quick {
		shape, reps = e17Shape{hosts: 64, ticks: 100}, 1
	}
	if cfg.Hosts > 0 {
		shape.hosts = cfg.Hosts
	}
	workerCounts := []int{1, 2, 4}
	if runtime.NumCPU() >= 8 {
		workerCounts = append(workerCounts, 8)
	}

	serialWall, serialDigest, err := e17Best(cfg.Seed, 0, reps, shape)
	if err != nil {
		return nil, err
	}
	cores := runtime.NumCPU()
	rows := []*e17Row{{
		Kernel: "serial", Hosts: shape.hosts, Cores: cores, Reps: reps,
		WallMs: float64(serialWall) / 1e6, Speedup: 1.0,
		Digest: fmt.Sprintf("%#x", serialDigest),
	}}
	for _, w := range workerCounts {
		wall, digest, err := e17Best(cfg.Seed, w, reps, shape)
		if err != nil {
			return nil, err
		}
		if digest != serialDigest {
			return nil, fmt.Errorf("E17: workers=%d committed a different order (%#x) than serial (%#x) — kernel bug", w, digest, serialDigest)
		}
		rows = append(rows, &e17Row{
			Kernel: "parallel", Workers: w, Hosts: shape.hosts, Cores: cores, Reps: reps,
			WallMs: float64(wall) / 1e6, Speedup: float64(serialWall) / float64(wall),
			Digest: fmt.Sprintf("%#x", digest),
		})
	}
	for _, r := range rows {
		t.AddRow(r.Kernel, fmt.Sprintf("%d", r.Workers), fmt.Sprintf("%d", r.Hosts),
			fmt.Sprintf("%.1f", r.WallMs), fmt.Sprintf("%.2fx", r.Speedup), r.Digest)
	}
	t.AddNote("identical digests across every row: worker count is not an input to the simulation")
	t.AddNote("measured on %d cores; speedup is meaningful only when cores >= workers", cores)
	if cfg.WallclockSnapshot != "" {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(cfg.WallclockSnapshot, data, 0o644); err != nil {
			return nil, err
		}
		t.AddNote("wallclock rows written to %s", cfg.WallclockSnapshot)
	}
	return t, nil
}
