package experiments

import (
	"fmt"
	"time"

	"sprite/internal/core"
	"sprite/internal/fs"
	"sprite/internal/sim"
)

// mb is one megabyte.
const mb = 1 << 20

// workerCfg is the standard test process image.
func workerCfg(heapPages int) core.ProcConfig {
	return core.ProcConfig{
		Binary:     "/bin/prog",
		CodePages:  8,
		HeapPages:  heapPages,
		StackPages: 2,
	}
}

// newPairCluster builds a 2-workstation cluster with a seeded binary.
func newPairCluster(seed int64) (*core.Cluster, error) {
	c, err := core.NewCluster(core.Options{Workstations: 2, FileServers: 1, Seed: seed})
	if err != nil {
		return nil, err
	}
	if err := c.SeedBinary("/bin/prog", 128*1024); err != nil {
		return nil, err
	}
	return c, nil
}

// measureMigration runs one migration with the given open files and dirty
// heap and returns its record. When cfg.Metrics is set the cluster's
// snapshot lands in t under the given label.
func measureMigration(cfg Config, t *Table, label string, strategy core.TransferStrategy, files, dirtyPages int) (core.MigrationRecord, time.Duration, error) {
	c, err := newPairCluster(cfg.Seed)
	if err != nil {
		return core.MigrationRecord{}, 0, err
	}
	c.SetStrategyAll(strategy)
	heapPages := dirtyPages
	if heapPages < 8 {
		heapPages = 8
	}
	src, dst := c.Workstation(0), c.Workstation(1)
	var resume time.Duration
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "subject", func(ctx *core.Ctx) error {
			for i := 0; i < files; i++ {
				path := fmt.Sprintf("/data/f%d", i)
				if _, err := ctx.Open(path, fs.ReadMode, fs.OpenOptions{}); err != nil {
					return err
				}
			}
			if dirtyPages > 0 {
				if err := ctx.TouchHeap(0, dirtyPages, true); err != nil {
					return err
				}
			}
			if err := ctx.Migrate(dst.Host()); err != nil {
				return err
			}
			// Resume cost: touch the working set back in on the target.
			t0 := ctx.Now()
			if dirtyPages > 0 {
				if err := ctx.TouchHeap(0, dirtyPages, false); err != nil {
					return err
				}
			}
			resume = ctx.Now() - t0
			return nil
		}, workerCfg(heapPages))
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	for i := 0; i < files; i++ {
		if err := c.Seed(fmt.Sprintf("/data/f%d", i), []byte("file contents")); err != nil {
			return core.MigrationRecord{}, 0, err
		}
	}
	if err := c.Run(0); err != nil {
		return core.MigrationRecord{}, 0, err
	}
	recs := c.MigrationRecords()
	if len(recs) != 1 {
		return core.MigrationRecord{}, 0, fmt.Errorf("expected 1 migration, got %d", len(recs))
	}
	t.CaptureMetrics(cfg, label, c)
	return recs[0], resume, nil
}

// E1MigrationBreakdown reproduces the migration-time component breakdown:
// a fixed base (handshake + PCB), a per-open-file cost, and a per-megabyte
// dirty-VM cost.
func E1MigrationBreakdown(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E1",
		Title:    "Migration time by component (Sprite flush strategy)",
		PaperRef: "thesis Ch. 7: cost of migration vs open files and dirty VM",
		Columns:  []string{"open files", "dirty MB", "total ms", "vm ms", "files ms", "pcb ms"},
	}
	pageSize := core.DefaultParams().VM.PageSize
	fileSweep := []int{0, 2, 4, 8}
	vmSweep := []int{0, 1, 2, 4, 8}
	if cfg.Quick {
		fileSweep = []int{0, 4}
		vmSweep = []int{0, 4}
	}
	type key struct{ f, m int }
	totals := make(map[key]time.Duration)
	for _, f := range fileSweep {
		for _, m := range vmSweep {
			rec, _, err := measureMigration(cfg, t, fmt.Sprintf("files=%d dirtyMB=%d", f, m),
				core.SpriteFlushStrategy{}, f, m*mb/pageSize)
			if err != nil {
				return nil, err
			}
			totals[key{f, m}] = rec.Total
			t.AddRow(
				fmt.Sprintf("%d", f),
				fmt.Sprintf("%d", m),
				ms(rec.Total), ms(rec.VMTime), ms(rec.FileTime), ms(rec.PCBTime),
			)
		}
	}
	base := totals[key{fileSweep[0], vmSweep[0]}]
	fMax, mMax := fileSweep[len(fileSweep)-1], vmSweep[len(vmSweep)-1]
	perFile := (totals[key{fMax, vmSweep[0]}] - base) / time.Duration(fMax)
	perMB := (totals[key{fileSweep[0], mMax}] - base) / time.Duration(mMax)
	t.AddNote("base (no files, no dirty VM): %s ms; per open file: %s ms; per dirty MB: %s ms",
		ms(base), ms(perFile), ms(perMB))
	t.AddNote("paper shape: total = base + k1*files + k2*dirtyMB; migration cost dominated by dirty VM for large processes")
	return t, nil
}

// E2RemoteExec reproduces the exec-time migration comparison: remote exec
// moves no VM, so its cost is close to a local fork+exec plus the transfer
// of the PCB and arguments.
func E2RemoteExec(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E2",
		Title:    "Remote exec (exec-time migration) vs local fork+exec",
		PaperRef: "thesis Ch. 4/7: migration at exec time avoids VM transfer",
		Columns:  []string{"variant", "arg KB", "time ms"},
	}
	argSweep := []int{0, 4, 16, 64}
	if cfg.Quick {
		argSweep = []int{0, 16}
	}
	measure := func(remote bool, argKB int) (time.Duration, error) {
		c, err := newPairCluster(cfg.Seed)
		if err != nil {
			return 0, err
		}
		variant := "local"
		if remote {
			variant = "remote"
		}
		defer t.CaptureMetrics(cfg, fmt.Sprintf("%s argKB=%d", variant, argKB), c)
		src, dst := c.Workstation(0), c.Workstation(1)
		var elapsed time.Duration
		args := []string{string(make([]byte, argKB*1024))}
		c.Boot("boot", func(env *sim.Env) error {
			p, err := src.StartProcess(env, "sh", func(ctx *core.Ctx) error {
				cfgP := workerCfg(8)
				cfgP.Args = args
				prog := func(cc *core.Ctx) error { return cc.Exit(0) }
				t0 := ctx.Now()
				var child *core.Process
				var err error
				if remote {
					child, err = ctx.ForkRemoteExec("job", prog, cfgP, dst.Host())
				} else {
					child, err = ctx.Fork("job", func(cc *core.Ctx) error {
						return cc.Exec("job", prog, cfgP)
					}, core.ProcConfig{})
				}
				if err != nil {
					return err
				}
				if _, err := child.Exited().Wait(ctx.Env()); err != nil {
					return err
				}
				elapsed = ctx.Now() - t0
				return nil
			}, workerCfg(8))
			if err != nil {
				return err
			}
			_, err = p.Exited().Wait(env)
			return err
		})
		if err := c.Run(0); err != nil {
			return 0, err
		}
		return elapsed, nil
	}
	for _, kb := range argSweep {
		local, err := measure(false, kb)
		if err != nil {
			return nil, err
		}
		remote, err := measure(true, kb)
		if err != nil {
			return nil, err
		}
		t.AddRow("local fork+exec", fmt.Sprintf("%d", kb), ms(local))
		t.AddRow("remote exec", fmt.Sprintf("%d", kb), ms(remote))
	}
	t.AddNote("paper shape: remote exec costs a small constant more than local exec (PCB + args over the wire), independent of address-space size")
	return t, nil
}

// E3VMStrategies reproduces the strategy comparison figure: total time,
// freeze time, and time to touch the working set back in after migration,
// as the dirty address space grows.
func E3VMStrategies(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E3",
		Title:    "VM transfer strategies vs address-space size",
		PaperRef: "thesis Ch. 2/4: Sprite flush vs full copy (LOCUS/Charlotte), copy-on-reference (Accent), pre-copy (V)",
		Columns:  []string{"strategy", "dirty MB", "total ms", "freeze ms", "resume ms", "residual"},
	}
	pageSize := core.DefaultParams().VM.PageSize
	sizes := []int{1, 2, 4, 8, 16}
	if cfg.Quick {
		sizes = []int{1, 4}
	}
	strategies := []core.TransferStrategy{
		core.SpriteFlushStrategy{},
		core.FullCopyStrategy{},
		core.CopyOnReferenceStrategy{},
		core.PreCopyStrategy{RedirtyPagesPerSec: 50},
	}
	for _, s := range strategies {
		for _, m := range sizes {
			rec, resume, err := measureMigration(cfg, t, fmt.Sprintf("%s dirtyMB=%d", s.Name(), m),
				s, 1, m*mb/pageSize)
			if err != nil {
				return nil, err
			}
			t.AddRow(
				s.Name(),
				fmt.Sprintf("%d", m),
				ms(rec.Total), ms(rec.Freeze), ms(resume),
				fmt.Sprintf("%v", rec.Residual),
			)
		}
	}
	t.AddNote("paper shape: copy-on-reference migrates almost instantly but pays on every later fault and leaves a residual dependency; pre-copy shortens freeze at the cost of extra copying; Sprite's flush bounds work by dirty pages and depends only on the file server")
	return t, nil
}

// E4Forwarding reproduces the kernel-call handling comparison: calls that
// execute locally cost the same at home and away; calls forwarded home pay
// a network round trip.
func E4Forwarding(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E4",
		Title:    "Kernel-call cost at home vs migrated (forwarding)",
		PaperRef: "thesis Ch. 4 + Appendix A: location-dependent calls are forwarded to the home machine",
		Columns:  []string{"call", "policy", "home us", "away us", "ratio"},
	}
	c, err := newPairCluster(cfg.Seed)
	if err != nil {
		return nil, err
	}
	if err := c.Seed("/data/f", []byte("0123456789abcdef")); err != nil {
		return nil, err
	}
	src, dst := c.Workstation(0), c.Workstation(1)
	type probe struct {
		name   string
		policy core.HandlingPolicy
		run    func(ctx *core.Ctx) error
	}
	probes := []probe{
		{"getpid", core.PolicyLocal, func(ctx *core.Ctx) error {
			_, err := ctx.GetPID()
			return err
		}},
		{"gettimeofday", core.PolicyHome, func(ctx *core.Ctx) error {
			_, err := ctx.GetTimeOfDay()
			return err
		}},
		{"gethostname", core.PolicyHome, func(ctx *core.Ctx) error {
			_, err := ctx.GetHostname()
			return err
		}},
		{"open+close", core.PolicyFile, func(ctx *core.Ctx) error {
			fd, err := ctx.Open("/data/f", fs.ReadMode, fs.OpenOptions{})
			if err != nil {
				return err
			}
			return ctx.Close(fd)
		}},
	}
	iters := 20
	if cfg.Quick {
		iters = 5
	}
	home := make([]time.Duration, len(probes))
	away := make([]time.Duration, len(probes))
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "probe", func(ctx *core.Ctx) error {
			for i, pr := range probes {
				t0 := ctx.Now()
				for n := 0; n < iters; n++ {
					if err := pr.run(ctx); err != nil {
						return err
					}
				}
				home[i] = (ctx.Now() - t0) / time.Duration(iters)
			}
			if err := ctx.Migrate(dst.Host()); err != nil {
				return err
			}
			for i, pr := range probes {
				t0 := ctx.Now()
				for n := 0; n < iters; n++ {
					if err := pr.run(ctx); err != nil {
						return err
					}
				}
				away[i] = (ctx.Now() - t0) / time.Duration(iters)
			}
			return nil
		}, workerCfg(8))
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		return nil, err
	}
	t.CaptureMetrics(cfg, "pair", c)
	for i, pr := range probes {
		ratio := float64(away[i]) / float64(home[i])
		t.AddRow(
			pr.name,
			pr.policy.String(),
			fmt.Sprintf("%.0f", float64(home[i])/float64(time.Microsecond)),
			fmt.Sprintf("%.0f", float64(away[i])/float64(time.Microsecond)),
			fmt.Sprintf("%.1fx", ratio),
		)
	}
	t.AddNote("paper shape: local and file-system calls are location independent; home-forwarded calls pay roughly an RPC round trip (~ms-scale vs us-scale)")
	return t, nil
}
