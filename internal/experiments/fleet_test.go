package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// benchFleet mirrors bench/BENCH_fleet.json: bounds on the quick-mode
// fleet economy sweep. Virtual time makes the run deterministic, so the
// gate is exact — a drift past any bound is a real behaviour change, not
// noise.
type benchFleet struct {
	Experiment string `json:"experiment"`
	Seed       int64  `json:"seed"`
	Quick      bool   `json:"quick"`
	Gate       struct {
		MinGoodput     float64 `json:"min_goodput"`
		MaxJobsLost    int     `json:"max_jobs_lost"`
		MaxDrainMeanMs float64 `json:"max_drain_mean_ms"`
		MaxMeanJobMs   float64 `json:"max_mean_job_ms"`
	} `json:"gate"`
}

// TestFleetEconomyGate runs the quick fleet sweep at the checked-in seed
// and gates it against bench/BENCH_fleet.json: no storm intensity may
// lose a job or dent goodput (every host comes back, so lost work is a
// control-plane bug), drains must complete as fast as the baseline
// promises, and job latency must stay inside the ceiling even under the
// hurricane schedule.
func TestFleetEconomyGate(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "bench", "BENCH_fleet.json"))
	if err != nil {
		t.Fatal(err)
	}
	var base benchFleet
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}

	snap := filepath.Join(t.TempDir(), "FLEET_gate.json")
	cfg := Config{Seed: base.Seed, Quick: base.Quick, FleetSnapshot: snap}
	if _, err := E18FleetEconomy(cfg); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	var rows []e18Row
	if err := json.Unmarshal(out, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows in fleet economy snapshot")
	}
	var hurricane *e18Row
	for i := range rows {
		r := &rows[i]
		if r.Intensity == "hurricane" {
			hurricane = r
		}
		if r.Goodput < base.Gate.MinGoodput {
			t.Errorf("%s: goodput %.2f below baseline floor %.2f (bench/BENCH_fleet.json)",
				r.Intensity, r.Goodput, base.Gate.MinGoodput)
		}
		if r.JobsLost > base.Gate.MaxJobsLost {
			t.Errorf("%s: %d jobs lost, baseline allows %d", r.Intensity, r.JobsLost, base.Gate.MaxJobsLost)
		}
		if r.DrainsCompleted != r.DrainsStarted {
			t.Errorf("%s: %d of %d drains completed — a drain stalled past the horizon",
				r.Intensity, r.DrainsCompleted, r.DrainsStarted)
		}
		if r.DrainMeanMs > base.Gate.MaxDrainMeanMs {
			t.Errorf("%s: drain mean %.1fms exceeds baseline ceiling %.1fms",
				r.Intensity, r.DrainMeanMs, base.Gate.MaxDrainMeanMs)
		}
		if r.MeanJobMs > base.Gate.MaxMeanJobMs {
			t.Errorf("%s: mean job latency %.1fms exceeds baseline ceiling %.1fms",
				r.Intensity, r.MeanJobMs, base.Gate.MaxMeanJobMs)
		}
	}
	if hurricane == nil {
		t.Fatal("no hurricane row in fleet economy snapshot")
	}
	// The hurricane drains must actually move work — a sweep where every
	// drained host happened to be empty gates nothing.
	if hurricane.Migrated+hurricane.Evacuated == 0 {
		t.Error("hurricane drains moved no residents: the storm no longer intersects placements")
	}
}
