package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"sprite/internal/core"
	"sprite/internal/hostsel"
	"sprite/internal/pmake"
	"sprite/internal/rpc"
	"sprite/internal/sim"
	"sprite/internal/stats"
	"sprite/internal/workload"
)

// runPmakeOn builds a fresh cluster with the given number of usable hosts
// and runs one synthetic project across them, capturing metrics into t
// when enabled.
func runPmakeOn(cfg Config, t *Table, label string, hosts int, proj pmake.ProjectParams) (*pmake.Result, time.Duration, error) {
	seed := cfg.Seed
	c, err := core.NewCluster(core.Options{Workstations: hosts, FileServers: 1, Seed: seed})
	if err != nil {
		return nil, 0, err
	}
	for _, bin := range []string{"/bin/cc", "/bin/pmake"} {
		if err := c.SeedBinary(bin, 256*1024); err != nil {
			return nil, 0, err
		}
	}
	mf, err := pmake.SyntheticProject(c, rand.New(rand.NewSource(seed)), proj)
	if err != nil {
		return nil, 0, err
	}
	var remote []rpc.HostID
	for _, k := range c.Workstations()[1:] {
		remote = append(remote, k.Host())
	}
	var res *pmake.Result
	c.Boot("boot", func(env *sim.Env) error {
		p, err := c.Workstation(0).StartProcess(env, "pmake", func(ctx *core.Ctx) error {
			r, err := pmake.Run(ctx, mf, pmake.Options{Force: true, Hosts: remote, LocalJobs: 1})
			res = r
			return err
		}, core.ProcConfig{Binary: "/bin/pmake", CodePages: 8, HeapPages: 16, StackPages: 2})
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		return nil, 0, err
	}
	t.CaptureMetrics(cfg, label, c)
	return res, c.Servers()[0].CPUBusy(), nil
}

// E5PmakeSpeedup reproduces the pmake speedup curve: speedup grows with
// hosts but flattens as the file server saturates and the sequential link
// dominates (Amdahl).
func E5PmakeSpeedup(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E5",
		Title:    "pmake speedup vs number of hosts",
		PaperRef: "thesis Ch. 7: 12-way parallel compilation; speedups of 3.5-12 in related systems, limited by server load",
		Columns:  []string{"hosts", "makespan s", "speedup", "server busy s"},
	}
	proj := pmake.DefaultProjectParams()
	sweep := []int{1, 2, 4, 8, 12, 16}
	if cfg.Quick {
		sweep = []int{1, 4, 8}
		proj.Units = 12
		proj.CompileCPU = 2 * time.Second
		proj.LinkCPU = 3 * time.Second
	}
	var base time.Duration
	for _, h := range sweep {
		res, serverBusy, err := runPmakeOn(cfg, t, fmt.Sprintf("hosts=%d", h), h, proj)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = res.Makespan
		}
		t.AddRow(
			fmt.Sprintf("%d", h),
			secs(res.Makespan),
			fmt.Sprintf("%.2f", float64(base)/float64(res.Makespan)),
			secs(serverBusy),
		)
	}
	t.AddNote("paper shape: near-linear speedup for few hosts, flattening near 10-16 hosts as the sequential link and file-server name lookups dominate")
	return t, nil
}

// E6Utilization reproduces the effective-utilization comparison: a batch
// of independent simulations keeps many processors busy (~800%), while a
// 12-way pmake is capped (~300%) by its sequential phase and server
// contention.
func E6Utilization(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E6",
		Title:    "Effective processor utilization by workload",
		PaperRef: "thesis Ch. 7: 100 independent simulations >800% vs ~300% for 12-way pmake",
		Columns:  []string{"workload", "jobs", "hosts", "cpu-time s", "makespan s", "utilization %"},
	}
	hosts := 13
	simJobs := 60
	simCPU := 30 * time.Second
	proj := pmake.DefaultProjectParams()
	if cfg.Quick {
		simJobs = 12
		simCPU = 5 * time.Second
		proj.Units = 12
		proj.CompileCPU = 2 * time.Second
	}

	// Independent simulations fanned out over idle hosts.
	c, err := core.NewCluster(core.Options{Workstations: hosts, FileServers: 1, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	if err := c.SeedBinary("/bin/sim", 256*1024); err != nil {
		return nil, err
	}
	var makespan time.Duration
	c.Boot("boot", func(env *sim.Env) error {
		p, err := c.Workstation(0).StartProcess(env, "driver", func(ctx *core.Ctx) error {
			ws := c.Workstations()
			t0 := ctx.Now()
			started := 0
			running := 0
			for started < simJobs || running > 0 {
				for started < simJobs && running < len(ws) {
					target := ws[started%len(ws)]
					cfgP := core.ProcConfig{Binary: "/bin/sim", CodePages: 8, HeapPages: 64, StackPages: 2}
					prog := func(cc *core.Ctx) error {
						if err := cc.TouchHeap(0, 64, true); err != nil {
							return err
						}
						return cc.Compute(simCPU)
					}
					var err error
					if target == ctx.Process().Current() {
						_, err = ctx.Fork("sim", prog, cfgP)
					} else {
						_, err = ctx.ForkRemoteExec("sim", prog, cfgP, target.Host())
					}
					if err != nil {
						return err
					}
					started++
					running++
				}
				if _, _, err := ctx.Wait(); err != nil {
					return err
				}
				running--
			}
			makespan = ctx.Now() - t0
			return nil
		}, core.ProcConfig{Binary: "/bin/sim", CodePages: 4, HeapPages: 8, StackPages: 2})
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		return nil, err
	}
	t.CaptureMetrics(cfg, "independent-simulations", c)
	simTotalCPU := time.Duration(simJobs) * simCPU
	simUtil := float64(simTotalCPU) / float64(makespan) * 100
	t.AddRow("independent simulations", fmt.Sprintf("%d", simJobs), fmt.Sprintf("%d", hosts),
		secs(simTotalCPU), secs(makespan), fmt.Sprintf("%.0f", simUtil))

	// 12-way pmake on the same cluster size.
	res, _, err := runPmakeOn(cfg, t, "parallel-compilation", hosts, proj)
	if err != nil {
		return nil, err
	}
	pmakeUtil := float64(res.TotalJobCPU) / float64(res.Makespan) * 100
	t.AddRow("parallel compilation", fmt.Sprintf("%d", res.Jobs), fmt.Sprintf("%d", hosts),
		secs(res.TotalJobCPU), secs(res.Makespan), fmt.Sprintf("%.0f", pmakeUtil))
	t.AddNote("paper shape: independent long jobs achieve several times the effective utilization of a dependency-limited build")
	return t, nil
}

// selectionCluster builds an idle cluster and all four selectors.
func selectionCluster(seed int64, hosts int) (*core.Cluster, []hostsel.Selector, error) {
	c, err := core.NewCluster(core.Options{Workstations: hosts, FileServers: 1, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	sf, err := hostsel.NewSharedFile(c, "")
	if err != nil {
		return nil, nil, err
	}
	probParams := hostsel.DefaultProbabilisticParams()
	sels := []hostsel.Selector{
		hostsel.NewCentral(c, rpc.HostID(1), hostsel.DefaultCentralParams()),
		sf,
		hostsel.NewProbabilistic(c, probParams),
		hostsel.NewMulticast(c),
	}
	return c, sels, nil
}

// E7SelectionLatency reproduces the select+release latency measurement
// (56 ms for migd on DECstations) across the four architectures.
func E7SelectionLatency(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E7",
		Title:    "Host selection: request+release latency on an idle cluster",
		PaperRef: "thesis Ch. 6: migd select+release measured at 56 ms [DO91]",
		Columns:  []string{"architecture", "mean ms", "p95 ms", "messages/op"},
	}
	hosts := 16
	iters := 20
	if cfg.Quick {
		hosts = 8
		iters = 5
	}
	c, sels, err := selectionCluster(cfg.Seed, hosts)
	if err != nil {
		return nil, err
	}
	type row struct {
		name   string
		sample stats.Sample
		msgs   uint64
	}
	rows := make([]*row, len(sels))
	c.Boot("boot", func(env *sim.Env) error {
		if err := env.Sleep(time.Minute); err != nil { // all hosts go idle
			return err
		}
		client := c.Workstation(0).Host()
		for i, sel := range sels {
			if p, ok := sel.(*hostsel.Probabilistic); ok {
				p.StartDaemons(env)
				if err := env.Sleep(15 * time.Second); err != nil {
					return err
				}
			}
			for _, k := range c.Workstations() {
				if err := sel.NotifyAvailability(env, k.Host(), k.Available(env.Now())); err != nil {
					return err
				}
			}
			r := &row{name: sel.Name()}
			before := sel.Stats().Messages
			for n := 0; n < iters; n++ {
				t0 := env.Now()
				got, err := sel.RequestHosts(env, client, 1)
				if err != nil {
					return err
				}
				if err := sel.Release(env, client, got); err != nil {
					return err
				}
				r.sample.AddDuration(env.Now() - t0)
			}
			r.msgs = (sel.Stats().Messages - before) / uint64(iters)
			rows[i] = r
			if p, ok := sel.(*hostsel.Probabilistic); ok {
				p.Stop()
			}
		}
		return nil
	})
	if err := c.Run(30 * time.Minute); err != nil {
		return nil, err
	}
	c.Stop()
	_ = c.Run(0)
	t.CaptureMetrics(cfg, "idle-cluster", c)
	for _, r := range rows {
		if r == nil {
			continue
		}
		t.AddRow(r.name,
			fmt.Sprintf("%.1f", r.sample.Mean()*1000),
			fmt.Sprintf("%.1f", r.sample.Percentile(95)*1000),
			fmt.Sprintf("%d", r.msgs))
	}
	t.AddNote("paper shape: selection latency is tens of ms for the central server — negligible against the work exported; multicast disturbs every host per request")
	return t, nil
}

// E8SelectionArchitectures reproduces the Table 6.2 comparison under churn:
// messages generated, conflicts from stale state, and grant latency as the
// cluster scales.
func E8SelectionArchitectures(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E8",
		Title:    "Selection architectures under availability churn",
		PaperRef: "thesis Table 6.2: centralized vs shared-file vs distributed vs multicast",
		Columns:  []string{"architecture", "hosts", "msgs/min", "conflicts", "granted", "mean latency ms"},
	}
	sizes := []int{8, 16, 32}
	duration := 10 * time.Minute
	if cfg.Quick {
		sizes = []int{8}
		duration = 3 * time.Minute
	}
	for _, n := range sizes {
		for which := 0; which < 4; which++ {
			c, sels, err := selectionCluster(cfg.Seed+int64(which), n)
			if err != nil {
				return nil, err
			}
			sel := sels[which]
			profile := workload.DefaultDayProfile()
			profile.SessionMean = 2 * time.Minute // brisk churn
			users := workload.NewUserPool(c, profile, sel.NotifyAvailability)
			var sample stats.Sample
			c.Boot("boot", func(env *sim.Env) error {
				users.Start(env)
				if p, ok := sel.(*hostsel.Probabilistic); ok {
					p.StartDaemons(env)
				}
				if err := env.Sleep(time.Minute); err != nil {
					return err
				}
				// Three clients compete for hosts: races between them are
				// what exposes stale distributed state as conflicts.
				requesters := 3
				wg := sim.NewWaitGroup(c.Sim())
				wg.Add(requesters)
				for r := 0; r < requesters; r++ {
					client := c.Workstation(r).Host()
					env.Spawn(fmt.Sprintf("requester-%d", r), func(renv *sim.Env) error {
						defer wg.Done()
						end := renv.Now() + duration
						for renv.Now() < end {
							t0 := renv.Now()
							got, err := sel.RequestHosts(renv, client, 2)
							if err != nil {
								return err
							}
							sample.AddDuration(renv.Now() - t0)
							if err := renv.Sleep(2 * time.Second); err != nil {
								return err
							}
							if err := sel.Release(renv, client, got); err != nil {
								return err
							}
							if err := renv.Sleep(2 * time.Second); err != nil {
								return err
							}
						}
						return nil
					})
				}
				if err := wg.Wait(env); err != nil {
					return err
				}
				users.Stop()
				if p, ok := sel.(*hostsel.Probabilistic); ok {
					p.Stop()
				}
				return nil
			})
			if err := c.Run(duration + 5*time.Minute); err != nil {
				return nil, err
			}
			c.Stop()
			_ = c.Run(0)
			t.CaptureMetrics(cfg, fmt.Sprintf("%s hosts=%d", sel.Name(), n), c)
			st := sel.Stats()
			t.AddRow(sel.Name(), fmt.Sprintf("%d", n),
				fmt.Sprintf("%.0f", float64(st.Messages)/duration.Minutes()),
				fmt.Sprintf("%d", st.Conflicts),
				fmt.Sprintf("%d", st.Granted),
				fmt.Sprintf("%.1f", sample.Mean()*1000))
		}
	}
	t.AddNote("paper shape: central keeps message load modest with zero conflicts; shared-file pays file-server traffic per update; gossip trades messages for staleness (conflicts); multicast's per-request cost grows with cluster size")
	return t, nil
}
