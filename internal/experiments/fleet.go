package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"sprite/internal/core"
	"sprite/internal/fleet"
	"sprite/internal/hostsel"
	"sprite/internal/recovery"
	"sprite/internal/sim"
)

// E18 measures the fleet-management plane (internal/fleet, DESIGN.md §15)
// as an economy: checkpointed jobs harvest idle hosts while eviction
// storms, flapping hosts, correlated rack failures, and operator cordons
// hit the pool, and the controller cordons, drains, remediates, and
// readmits around them. The claim of the plane is that storms cost
// goodput latency, never jobs — every host comes back, so a lost job is a
// control-plane bug, not weather.

// e18Storm is one storm intensity, scaled to the fleet size at run time.
type e18Storm struct {
	name    string
	bursts  int // eviction waves (owners return on a band of hosts)
	flaps   int // single-host power cycles
	racks   int // correlated band failures (crash together, restart together)
	cordons int // operator cordons: full drain/remediate/readmit cycles
}

// e18Intensities orders the sweep from calm to hurricane. Calm still
// drains one host so drain latency is measured at every point.
var e18Intensities = []e18Storm{
	{name: "calm", cordons: 1},
	{name: "squall", bursts: 2, flaps: 1, cordons: 2},
	{name: "storm", bursts: 4, flaps: 2, racks: 1, cordons: 3},
	{name: "hurricane", bursts: 6, flaps: 4, racks: 2, cordons: 4},
}

// e18Row is one (intensity, fleet size) measurement, also the JSON shape
// written to Config.FleetSnapshot and gated by bench/BENCH_fleet.json.
type e18Row struct {
	Intensity       string  `json:"intensity"`
	Hosts           int     `json:"hosts"`
	Jobs            int     `json:"jobs"`
	JobsDone        int     `json:"jobs_done"`
	JobsLost        int     `json:"jobs_lost"`
	Goodput         float64 `json:"goodput"` // done / submitted
	MeanJobMs       float64 `json:"mean_job_ms"`
	Cordons         int64   `json:"cordons"`
	DrainsStarted   int64   `json:"drains_started"`
	DrainsCompleted int64   `json:"drains_completed"`
	Remediations    int64   `json:"remediations"`
	Readmissions    int64   `json:"readmissions"`
	Migrated        int64   `json:"migrated"`
	Evacuated       int64   `json:"evacuated"`
	DrainMeanMs     float64 `json:"drain_mean_ms"`
	DrainMaxMs      float64 `json:"drain_max_ms"`
}

// e18Point runs one storm intensity over one fleet size.
func e18Point(cfg Config, t *Table, storm e18Storm, n, jobs int) (*e18Row, error) {
	// A compressed idle threshold keeps the harvesting loop inside a short
	// virtual horizon: hosts advertise as idle after 150ms without input,
	// so placement spreads jobs across the pool before the storms land.
	params := core.DefaultParams()
	params.IdleInputAge = 150 * time.Millisecond
	c, err := core.NewCluster(core.Options{
		Workstations: n,
		FileServers:  1,
		Params:       &params,
		Seed:         cfg.Seed + int64(n),
	})
	if err != nil {
		return nil, err
	}
	c.SetDeferredReap(true)
	if err := c.SeedBinary("/bin/job", 64<<10); err != nil {
		return nil, err
	}

	mon := recovery.NewMonitor(c, recovery.Params{
		Interval:      50 * time.Millisecond,
		FailThreshold: 2,
		Reap:          true,
	})
	sup := recovery.NewSupervisor(c, mon, recovery.SupervisorParams{
		MaxRestarts:     12,
		CheckpointEvery: 20 * time.Millisecond,
		Dir:             "/ckpt",
	})
	m := fleet.New(c, fleet.Params{
		Tick:             25 * time.Millisecond,
		CordonThreshold:  55,
		CordonGrace:      50 * time.Millisecond,
		DrainPassTimeout: 50 * time.Millisecond,
		CleanProbes:      2,
		HalfLife:         100 * time.Millisecond,
	})
	m.SetMonitor(mon)
	m.SetSupervisor(sup)

	// The gossip selector is both drain-target source and health input:
	// its eviction hints feed the manager's per-host signals, and the
	// wrapped selector adds the pricer ordering, so placement prefers
	// hosts with the longest expected time-to-eviction.
	gp := hostsel.DefaultProbabilisticParams()
	gp.Interval = 100 * time.Millisecond
	// The supervisor holds a placement claim for each incarnation and never
	// releases it; a short lease lets those claims expire instead of
	// leaking, while still spreading placements (a claimed host refuses
	// further claims until the lease runs out).
	gp.ClaimLease = 1500 * time.Millisecond
	gossip := hostsel.NewProbabilistic(c, gp)
	ledger := hostsel.NewClaimLedger(gossip, c, gp.ClaimLease)
	ledger.Register(c)
	sel := m.WrapSelector(ledger)
	m.SetSelector(sel)
	m.WatchGossip(gossip)
	sup.SetSelector(sel)
	c.Boot("gossipd", func(env *sim.Env) error {
		gossip.StartDaemons(env)
		return nil
	})

	mon.Start()
	m.Start()

	// Storm scheduler. Host 0 is the safety band — the jobs' home and the
	// submit origin stay up so a lost job is always a control-plane bug;
	// bands rotate through the rest of the fleet.
	const safety = 1
	burstSpan := max(2, n/10)
	rackSpan := max(2, n/20)
	bandAt := func(i, span int) []int {
		base := safety + (i*span)%(n-safety)
		out := make([]int, 0, span)
		for j := 0; j < span; j++ {
			out = append(out, safety+(base-safety+j)%(n-safety))
		}
		return out
	}
	c.Boot("storm", func(env *sim.Env) error {
		// Jobs are submitted at 700ms; the storm starts once they are
		// spread across the pool.
		if err := env.Sleep(time.Second); err != nil {
			return err
		}
		// Operators cordon the busiest hosts first: the machines owners
		// want back are exactly the ones running guest work, so drains
		// have residents to migrate or evacuate.
		var busy []int
		for w := safety; w < n; w++ {
			k := c.Workstation(w)
			if c.HostDown(k.Host()) {
				continue
			}
			for _, p := range k.Processes() {
				if p.State() != core.StateExited {
					busy = append(busy, w)
					break
				}
			}
		}
		for i := 0; i < storm.cordons; i++ {
			w := safety + (i*5)%(n-safety)
			if i < len(busy) {
				w = busy[i]
			}
			m.Cordon(env, c.Workstation(w).Host(), "operator")
		}
		for i := 0; i < storm.bursts; i++ {
			if err := env.Sleep(80 * time.Millisecond); err != nil {
				return err
			}
			for _, w := range bandAt(i, burstSpan) {
				k := c.Workstation(w)
				if c.HostDown(k.Host()) {
					continue
				}
				k.NoteInput(env.Now())
				m.NoteEviction(k.Host(), env.Now())
				_ = k.EvictAll(env)
			}
		}
		for i := 0; i < storm.flaps; i++ {
			if err := env.Sleep(60 * time.Millisecond); err != nil {
				return err
			}
			h := c.Workstation(safety + (i*11)%(n-safety)).Host()
			if !c.HostDown(h) {
				c.Reboot(env, h)
			}
		}
		for i := 0; i < storm.racks; i++ {
			if err := env.Sleep(80 * time.Millisecond); err != nil {
				return err
			}
			band := bandAt(i+1, rackSpan)
			for _, w := range band {
				if h := c.Workstation(w).Host(); !c.HostDown(h) {
					c.CrashHost(env, h)
				}
			}
			if err := env.Sleep(120 * time.Millisecond); err != nil {
				return err
			}
			for _, w := range band {
				if h := c.Workstation(w).Host(); c.HostDown(h) {
					c.RestartHost(env, h)
				}
			}
		}
		return nil
	})

	jobCfg := core.ProcConfig{Binary: "/bin/job", CodePages: 8, HeapPages: 16, StackPages: 2}
	done := 0
	var jobLatency time.Duration
	c.Boot("jobs", func(env *sim.Env) error {
		type sub struct {
			h  *recovery.Handle
			at time.Duration
		}
		var subs []sub
		// Wait out the idle threshold plus a few gossip rounds so the
		// selector already knows the idle pool at submit time — otherwise
		// every job dogpiles the supervisor's fallback host.
		if err := env.Sleep(700 * time.Millisecond); err != nil {
			return err
		}
		for i := 0; i < jobs; i++ {
			h, err := sup.Submit(env, fmt.Sprintf("job%d", i), jobCfg,
				recovery.ComputeJob(600*time.Millisecond, 10*time.Millisecond))
			if err != nil {
				return fmt.Errorf("submit job%d: %w", i, err)
			}
			subs = append(subs, sub{h, env.Now()})
			if err := env.Sleep(10 * time.Millisecond); err != nil {
				return err
			}
		}
		for _, s := range subs {
			if _, err := s.h.Done().Wait(env); err != nil {
				if err != recovery.ErrJobLost {
					return fmt.Errorf("join %s: %w", s.h.Name(), err)
				}
				continue
			}
			done++
			jobLatency += env.Now() - s.at
		}
		// Let in-flight drains, remediations, and readmissions settle, and
		// outlive the claim lease so the last incarnation's placement claim
		// expires, before unwinding the planes.
		if err := env.Sleep(2 * time.Second); err != nil {
			return err
		}
		gossip.Stop()
		mon.Stop()
		sup.Stop()
		m.Stop()
		return nil
	})

	if err := c.Run(10 * time.Minute); err != nil {
		return nil, fmt.Errorf("E18 %s hosts=%d: %w", storm.name, n, err)
	}
	if live := c.Sim().LiveActivities(); live > 0 {
		return nil, fmt.Errorf("E18 %s hosts=%d: %d activities still live", storm.name, n, live)
	}
	if viol := c.CheckInvariants(true); len(viol) > 0 {
		return nil, fmt.Errorf("E18 %s hosts=%d: invariants violated: %v", storm.name, n, viol)
	}
	t.CaptureMetrics(cfg, fmt.Sprintf("%s hosts=%d", storm.name, n), c)

	snap := c.MetricsSnapshot()
	row := &e18Row{
		Intensity:       storm.name,
		Hosts:           n,
		Jobs:            jobs,
		JobsDone:        done,
		JobsLost:        len(sup.Lost()),
		Goodput:         float64(done) / float64(jobs),
		Cordons:         snap.Counters["fleet.cordons"],
		DrainsStarted:   snap.Counters["fleet.drains.started"],
		DrainsCompleted: snap.Counters["fleet.drains.completed"],
		Remediations:    snap.Counters["fleet.remediations"],
		Readmissions:    snap.Counters["fleet.readmissions"],
		Migrated:        snap.Counters["fleet.procs.migrated"],
		Evacuated:       snap.Counters["fleet.procs.evacuated"],
	}
	if done > 0 {
		row.MeanJobMs = float64(jobLatency/time.Duration(done)) / float64(time.Millisecond)
	}
	if dt, ok := snap.Timings["fleet.drain_latency"]; ok && dt.N > 0 {
		row.DrainMeanMs = float64(dt.Sum/time.Duration(dt.N)) / float64(time.Millisecond)
		row.DrainMaxMs = float64(dt.Max) / float64(time.Millisecond)
	}
	return row, nil
}

// E18FleetEconomy sweeps storm intensity over the fleet sizes and scores
// the pool manager on goodput (jobs completed over jobs submitted), jobs
// lost, and drain latency. The paper's harvesting story (Ch. 5: evict on
// owner return) becomes an economy here: the health plane prices each
// host's expected time-to-eviction, placement prefers long-runway hosts,
// and drains convert owner pressure into migrations and checkpoint
// relaunches instead of lost work.
func E18FleetEconomy(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E18",
		Title:    "Fleet economy under eviction storms: goodput, jobs lost, drain latency",
		PaperRef: "thesis Ch. 5 harvesting revisited: cordon/drain/remediate/readmit around storms",
		Columns:  []string{"intensity", "hosts", "jobs", "done", "lost", "goodput", "mean job ms", "drains", "remediated", "readmitted", "moved", "evac", "drain mean ms"},
	}
	sizes := []int{100, 1000}
	if cfg.Quick {
		sizes = []int{24}
	}
	if cfg.Hosts > 0 {
		sizes = []int{cfg.Hosts}
	}
	var rows []*e18Row
	for _, n := range sizes {
		jobs := max(6, n/50)
		for _, storm := range e18Intensities {
			row, err := e18Point(cfg, t, storm, n, jobs)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
			t.AddRow(row.Intensity, fmt.Sprintf("%d", row.Hosts),
				fmt.Sprintf("%d", row.Jobs), fmt.Sprintf("%d", row.JobsDone),
				fmt.Sprintf("%d", row.JobsLost),
				fmt.Sprintf("%.2f", row.Goodput),
				fmt.Sprintf("%.1f", row.MeanJobMs),
				fmt.Sprintf("%d/%d", row.DrainsCompleted, row.DrainsStarted),
				fmt.Sprintf("%d", row.Remediations),
				fmt.Sprintf("%d", row.Readmissions),
				fmt.Sprintf("%d", row.Migrated),
				fmt.Sprintf("%d", row.Evacuated),
				fmt.Sprintf("%.1f", row.DrainMeanMs))
		}
	}
	t.AddNote("every host comes back in this schedule, so goodput stays 1.00 at every intensity: storms cost job latency (checkpoint relaunches, migrations), never jobs")
	if cfg.FleetSnapshot != "" {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(cfg.FleetSnapshot, data, 0o644); err != nil {
			return nil, err
		}
		t.AddNote("fleet economy results written to %s", cfg.FleetSnapshot)
	}
	return t, nil
}
