package experiments

import (
	"os"
	"runtime"
	"testing"
	"time"
)

// TestE17DigestsAgree runs the wallclock experiment's workload at quick
// scale and requires every kernel configuration to commit the identical
// event order — the deterministic half of E17, separated from the
// wallclock half so it can run anywhere, including single-core CI.
func TestE17DigestsAgree(t *testing.T) {
	shape := e17Shape{hosts: 32, ticks: 60}
	_, want, err := e17Measure(5, 0, shape)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		_, got, err := e17Measure(5, w, shape)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got != want {
			t.Fatalf("workers=%d digest %#x, serial %#x", w, got, want)
		}
	}
}

// TestE17MigrationDigestsAgree is the confined-hosts counterpart of
// TestE17DigestsAgree: the migration-heavy workload, with every host kernel
// shard-confined, must commit the identical event order under the serial
// oracle and the parallel kernel at every worker count.
func TestE17MigrationDigestsAgree(t *testing.T) {
	shape := e17MigShape{hosts: 6, procs: 2, rounds: 3}
	_, want, err := e17MigMeasure(5, 0, shape)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		_, got, err := e17MigMeasure(5, w, shape)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got != want {
			t.Fatalf("workers=%d digest %#x, serial %#x", w, got, want)
		}
	}
}

// TestE17QuickTable exercises the full driver (table + JSON artifact) at
// quick scale.
func TestE17QuickTable(t *testing.T) {
	snap := t.TempDir() + "/BENCH_wallclock.json"
	tbl, err := E17ParallelWallclock(Config{Seed: 7, Quick: true, WallclockSnapshot: snap})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 4 {
		t.Fatalf("expected serial + >=3 parallel rows, got %d", len(tbl.Rows))
	}
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("artifact is empty")
	}
}

// TestParallelSpeedupGate is E17's acceptance gate: on a machine with at
// least 4 cores, the parallel kernel at 4 workers must run the 1000-host
// workload at least 2x faster than the serial oracle. The gate is opt-in
// (SPRITE_WALLCLOCK_GATE=1, set by the CI wallclock job) because wallclock
// assertions are meaningless on loaded or single-core machines.
func TestParallelSpeedupGate(t *testing.T) {
	if os.Getenv("SPRITE_WALLCLOCK_GATE") == "" {
		t.Skip("set SPRITE_WALLCLOCK_GATE=1 to enforce the speedup gate")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 cores for a 4-worker speedup gate, have %d", runtime.NumCPU())
	}
	shape := e17Shape{hosts: 1000, ticks: 300}
	serial, sd, err := e17Best(3, func() (time.Duration, uint64, error) { return e17Measure(7, 0, shape) })
	if err != nil {
		t.Fatal(err)
	}
	par, pd, err := e17Best(3, func() (time.Duration, uint64, error) { return e17Measure(7, 4, shape) })
	if err != nil {
		t.Fatal(err)
	}
	if sd != pd {
		t.Fatalf("digest mismatch: serial %#x parallel %#x", sd, pd)
	}
	speedup := float64(serial) / float64(par)
	t.Logf("serial %v, parallel(4) %v, speedup %.2fx on %d cores", serial, par, speedup, runtime.NumCPU())
	if speedup < 2.0 {
		t.Fatalf("speedup %.2fx below the 2x gate (serial %v, parallel %v)", speedup, serial, par)
	}
}

// TestConfinedMigrationSpeedupGate is the issue's acceptance gate for the
// confined-hosts plane: with host kernels, RPC service loops, and the
// migration machinery all shard-confined, the parallel kernel at 4 workers
// must run the migration-heavy workload at least 2x faster than the serial
// oracle — and commit the identical order while doing it. Opt-in for the
// same reason as TestParallelSpeedupGate.
func TestConfinedMigrationSpeedupGate(t *testing.T) {
	if os.Getenv("SPRITE_WALLCLOCK_GATE") == "" {
		t.Skip("set SPRITE_WALLCLOCK_GATE=1 to enforce the speedup gate")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 cores for a 4-worker speedup gate, have %d", runtime.NumCPU())
	}
	shape := e17MigShape{hosts: 32, procs: 4, rounds: 6}
	serial, sd, err := e17Best(3, func() (time.Duration, uint64, error) { return e17MigMeasure(7, 0, shape) })
	if err != nil {
		t.Fatal(err)
	}
	par, pd, err := e17Best(3, func() (time.Duration, uint64, error) { return e17MigMeasure(7, 4, shape) })
	if err != nil {
		t.Fatal(err)
	}
	if sd != pd {
		t.Fatalf("digest mismatch: serial %#x parallel %#x", sd, pd)
	}
	speedup := float64(serial) / float64(par)
	t.Logf("confined migration: serial %v, parallel(4) %v, speedup %.2fx on %d cores", serial, par, speedup, runtime.NumCPU())
	if speedup < 2.0 {
		t.Fatalf("confined migration speedup %.2fx below the 2x gate (serial %v, parallel %v)", speedup, serial, par)
	}
}
