package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// quick enables Metrics so TestDeterminism doubles as the golden check
// that MetricsSnapshot is byte-identical across same-seed runs of every
// experiment driver.
func quick() Config { return Config{Seed: 42, Quick: true, Metrics: true} }

// cell parses a numeric cell.
func cell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	if row >= len(tbl.Rows) || col >= len(tbl.Rows[row]) {
		t.Fatalf("table %s: no cell (%d,%d)\n%s", tbl.ID, row, col, tbl)
	}
	s := strings.TrimSuffix(tbl.Rows[row][col], "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("table %s cell (%d,%d) = %q not numeric", tbl.ID, row, col, tbl.Rows[row][col])
	}
	return v
}

// findRow locates the first row whose first cells match the given prefix.
func findRow(t *testing.T, tbl *Table, prefix ...string) int {
	t.Helper()
	for i, row := range tbl.Rows {
		ok := len(row) >= len(prefix)
		for j := range prefix {
			if ok && row[j] != prefix[j] {
				ok = false
			}
		}
		if ok {
			return i
		}
	}
	t.Fatalf("table %s: no row with prefix %v\n%s", tbl.ID, prefix, tbl)
	return -1
}

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tbl, err := r.Run(quick())
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s produced no rows", r.ID)
			}
			if tbl.String() == "" {
				t.Fatalf("%s renders empty", r.ID)
			}
		})
	}
}

func TestFindLocatesRunners(t *testing.T) {
	if Find("e5") == nil || Find("E12") == nil {
		t.Fatal("Find failed on valid ids")
	}
	if Find("E99") != nil {
		t.Fatal("Find returned a runner for a bogus id")
	}
}

func TestE1CostGrowsWithStateSize(t *testing.T) {
	tbl, err := E1MigrationBreakdown(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Quick sweep: files {0,4} x dirtyMB {0,4}.
	base := cell(t, tbl, findRow(t, tbl, "0", "0"), 2)
	files := cell(t, tbl, findRow(t, tbl, "4", "0"), 2)
	vm := cell(t, tbl, findRow(t, tbl, "0", "4"), 2)
	if files <= base {
		t.Errorf("open files did not increase migration time: base=%v files=%v", base, files)
	}
	if vm <= base {
		t.Errorf("dirty VM did not increase migration time: base=%v vm=%v", base, vm)
	}
	if vm <= files {
		t.Errorf("4MB of dirty VM (%vms) should dominate 4 open files (%vms)", vm, files)
	}
}

func TestE2RemoteExecIsConstantOverhead(t *testing.T) {
	tbl, err := E2RemoteExec(quick())
	if err != nil {
		t.Fatal(err)
	}
	local0 := cell(t, tbl, findRow(t, tbl, "local fork+exec", "0"), 2)
	remote0 := cell(t, tbl, findRow(t, tbl, "remote exec", "0"), 2)
	if remote0 <= local0 {
		t.Errorf("remote exec (%v) should cost more than local (%v)", remote0, local0)
	}
	// But not wildly more: no VM moves.
	if remote0 > local0*6 {
		t.Errorf("remote exec (%v) should be a modest multiple of local (%v)", remote0, local0)
	}
}

func TestE3StrategyShapes(t *testing.T) {
	tbl, err := E3VMStrategies(quick())
	if err != nil {
		t.Fatal(err)
	}
	// At 4MB dirty: COR freezes far less than full copy; full copy's
	// resume is free; COR's resume is expensive; pre-copy freeze < full.
	corFreeze := cell(t, tbl, findRow(t, tbl, "copy-on-reference", "4"), 3)
	fullFreeze := cell(t, tbl, findRow(t, tbl, "full-copy", "4"), 3)
	preFreeze := cell(t, tbl, findRow(t, tbl, "pre-copy", "4"), 3)
	if corFreeze >= fullFreeze {
		t.Errorf("COR freeze %v should be << full-copy freeze %v", corFreeze, fullFreeze)
	}
	if preFreeze >= fullFreeze {
		t.Errorf("pre-copy freeze %v should be < full-copy freeze %v", preFreeze, fullFreeze)
	}
	corResume := cell(t, tbl, findRow(t, tbl, "copy-on-reference", "4"), 4)
	fullResume := cell(t, tbl, findRow(t, tbl, "full-copy", "4"), 4)
	if corResume <= fullResume {
		t.Errorf("COR resume %v should exceed full-copy resume %v", corResume, fullResume)
	}
	// Sprite's flush grows with dirty size.
	s1 := cell(t, tbl, findRow(t, tbl, "sprite-flush", "1"), 2)
	s4 := cell(t, tbl, findRow(t, tbl, "sprite-flush", "4"), 2)
	if s4 <= s1 {
		t.Errorf("sprite flush at 4MB (%v) should exceed 1MB (%v)", s4, s1)
	}
}

func TestE4ForwardedCallsPayRPC(t *testing.T) {
	tbl, err := E4Forwarding(quick())
	if err != nil {
		t.Fatal(err)
	}
	// getpid: same home and away.
	r := findRow(t, tbl, "getpid")
	if home, away := cell(t, tbl, r, 2), cell(t, tbl, r, 3); away > home*1.2 {
		t.Errorf("getpid should be location independent: home=%v away=%v", home, away)
	}
	// gettimeofday: away >> home.
	r = findRow(t, tbl, "gettimeofday")
	if home, away := cell(t, tbl, r, 2), cell(t, tbl, r, 3); away < home*3 {
		t.Errorf("forwarded gettimeofday should pay an RPC: home=%v away=%v", home, away)
	}
}

func TestE5SpeedupGrowsThenFlattens(t *testing.T) {
	tbl, err := E5PmakeSpeedup(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Quick sweep: hosts {1,4,8}.
	s1 := cell(t, tbl, findRow(t, tbl, "1"), 2)
	s4 := cell(t, tbl, findRow(t, tbl, "4"), 2)
	s8 := cell(t, tbl, findRow(t, tbl, "8"), 2)
	if s1 != 1.0 {
		t.Errorf("speedup(1) = %v", s1)
	}
	if s4 < 1.8 {
		t.Errorf("speedup(4) = %v, want >= 1.8", s4)
	}
	if s8 <= s4 {
		t.Errorf("speedup should still grow at 8 hosts: s4=%v s8=%v", s4, s8)
	}
	// Sub-linear: the sequential link and server contention bite.
	if s8 > 6.5 {
		t.Errorf("speedup(8) = %v, want sub-linear", s8)
	}
}

func TestE6SimulationsBeatPmakeUtilization(t *testing.T) {
	tbl, err := E6Utilization(quick())
	if err != nil {
		t.Fatal(err)
	}
	simU := cell(t, tbl, 0, 5)
	pmakeU := cell(t, tbl, 1, 5)
	if simU <= pmakeU {
		t.Errorf("independent simulations (%v%%) should beat pmake (%v%%)", simU, pmakeU)
	}
	if simU < 300 {
		t.Errorf("simulations utilization %v%%, want several hundred percent", simU)
	}
}

func TestE7CentralLatencyBand(t *testing.T) {
	tbl, err := E7SelectionLatency(quick())
	if err != nil {
		t.Fatal(err)
	}
	r := findRow(t, tbl, "central")
	mean := cell(t, tbl, r, 1)
	if mean < 10 || mean > 150 {
		t.Errorf("central select+release = %vms, want tens of ms (paper: 56ms)", mean)
	}
}

func TestE9ReclaimGrowsWithDirtyVM(t *testing.T) {
	tbl, err := E9Eviction(quick())
	if err != nil {
		t.Fatal(err)
	}
	r0 := cell(t, tbl, findRow(t, tbl, "0"), 1)
	r4 := cell(t, tbl, findRow(t, tbl, "4"), 1)
	if r4 <= r0 {
		t.Errorf("reclaim with 4MB dirty (%vms) should exceed 0MB (%vms)", r4, r0)
	}
}

func TestE10IdleBand(t *testing.T) {
	tbl, err := E10IdleFraction(quick())
	if err != nil {
		t.Fatal(err)
	}
	day := cell(t, tbl, 0, 1)
	night := cell(t, tbl, 1, 1)
	if day < 50 || day > 85 {
		t.Errorf("day idle = %v%%, want in the thesis band (~65-70%%)", day)
	}
	if night <= day-30 || night < 60 {
		t.Errorf("night idle = %v%%, want higher than day (~80%%)", night)
	}
}

func TestE11PolicyOrdering(t *testing.T) {
	tbl, err := E11PlacementVsMigration(quick())
	if err != nil {
		t.Fatal(err)
	}
	none := cell(t, tbl, 0, 2)
	placement := cell(t, tbl, 1, 2)
	both := cell(t, tbl, 2, 2)
	if placement >= none {
		t.Errorf("placement (%vs) should beat no load sharing (%vs)", placement, none)
	}
	if both > placement*1.15 {
		t.Errorf("placement+migration (%vs) should not be much worse than placement (%vs)", both, placement)
	}
}

func TestE12CoversAllPolicies(t *testing.T) {
	tbl, err := E12SyscallTable(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 policies", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if n := cell(t, tbl, findRow(t, tbl, row[0]), 1); n < 1 {
			t.Errorf("policy %s has no calls", row[0])
		}
	}
}

func TestE13OnlyHomeCallsPay(t *testing.T) {
	tbl, err := E13RemotePenalty(quick())
	if err != nil {
		t.Fatal(err)
	}
	compute := cell(t, tbl, findRow(t, tbl, "compute-bound"), 3)
	io := cell(t, tbl, findRow(t, tbl, "file I/O heavy"), 3)
	home := cell(t, tbl, findRow(t, tbl, "home-call heavy"), 3)
	if compute > 1 {
		t.Errorf("compute-bound slowdown = %v%%, want ~0", compute)
	}
	if io > 2 {
		t.Errorf("file-I/O slowdown = %v%%, want ~0 (FS is location transparent)", io)
	}
	if home < 5 {
		t.Errorf("home-call slowdown = %v%%, want noticeable", home)
	}
}

func TestE14BatchRunsRemotely(t *testing.T) {
	tbl, err := E14DayInTheLife(quick())
	if err != nil {
		t.Fatal(err)
	}
	remote := cell(t, tbl, findRow(t, tbl, "remote share of batch CPU (%)"), 1)
	if remote < 50 {
		t.Errorf("remote CPU share = %v%%, want most of the batch off the submit host", remote)
	}
	migs := cell(t, tbl, findRow(t, tbl, "total migrations"), 1)
	if migs < 5 {
		t.Errorf("migrations = %v, want a working load-sharing day", migs)
	}
}

// TestDeterminism runs every experiment driver twice with the same seed and
// requires byte-identical output rows: the tables are pure functions of the
// configuration, which is what makes a fuzzer seed a complete reproduction.
// quick() turns metrics capture on, so the comparison also proves each
// driver's MetricsSnapshot renders byte-identically across same-seed runs.
func TestDeterminism(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			if r.ID == "E17" {
				// E17's table is wallclock (real time) by design; its
				// determinism claim — identical order digests across
				// kernels — is asserted inside the driver and by
				// TestE17DigestsAgree.
				t.Skip("wallclock output is not byte-reproducible by design")
			}
			a, err := r.Run(quick())
			if err != nil {
				t.Fatal(err)
			}
			b, err := r.Run(quick())
			if err != nil {
				t.Fatal(err)
			}
			if a.String() != b.String() {
				t.Fatalf("same seed produced different tables:\n%s\nvs\n%s", a, b)
			}
			// Every cluster-running driver must actually surface metrics
			// (E12 is a static census with no cluster).
			if r.ID != "E12" && len(a.Metrics) == 0 {
				t.Fatalf("%s captured no metrics sections", r.ID)
			}
		})
	}
}

// TestMetricsOffLeavesTablesUnchanged pins the inert-by-default contract:
// with Config.Metrics unset the rendered table is byte-identical to a
// metrics-enabled run with its metrics section stripped — the plane may
// observe an experiment, never perturb it.
func TestMetricsOffLeavesTablesUnchanged(t *testing.T) {
	cfg := quick()
	cfg.Metrics = false
	plain, err := E1MigrationBreakdown(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Metrics) != 0 {
		t.Fatal("metrics sections captured with Metrics off")
	}
	metered, err := E1MigrationBreakdown(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(metered.Metrics) == 0 {
		t.Fatal("no metrics sections captured with Metrics on")
	}
	stripped := *metered
	stripped.Metrics = nil
	if plain.String() != stripped.String() {
		t.Fatalf("metrics capture changed the table:\n%s\nvs\n%s", plain, &stripped)
	}
}
