package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"sprite/internal/fault"
	"sprite/internal/hostsel"
	"sprite/internal/rpc"
	"sprite/internal/sim"
	"sprite/internal/stats"
)

// E16 timeline (simulated time). Warmup lets every host idle past the
// one-minute input age; churn then runs for the middle window while
// requesters compete; the tail drains outstanding protocol activity.
const (
	e16Warmup   = time.Minute
	e16ChurnEnd = 150 * time.Second // faults fall in [70s, churnEnd]
	e16End      = 210 * time.Second
)

// e16Tolerable mirrors the selector protocols' churn tolerance: hosts that
// are down, unreachable, or rebooting mid-protocol are the experiment's
// subject matter, not a driver failure.
func e16Tolerable(err error) bool {
	for _, e := range []error{rpc.ErrHostDown, rpc.ErrTimeout, rpc.ErrNoService, rpc.ErrNoHost, hostsel.ErrNoHosts} {
		if errors.Is(err, e) {
			return true
		}
	}
	return false
}

// e16Row is one (architecture, fleet size) measurement, also the JSON shape
// written to Config.HostselSnapshot.
type e16Row struct {
	Architecture string  `json:"architecture"`
	Hosts        int     `json:"hosts"`
	Requests     uint64  `json:"requests"`
	Granted      uint64  `json:"granted"`
	Denied       uint64  `json:"denied"`
	Conflicts    uint64  `json:"conflicts"`
	MisplaceRate float64 `json:"misplace_rate"`
	MeanMs       float64 `json:"mean_ms"`
	P95Ms        float64 `json:"p95_ms"`
	MsgsPerMin   float64 `json:"msgs_per_min"`
	GossipBytes  uint64  `json:"gossip_bytes,omitempty"`
}

// e16Point runs one selector architecture over one fleet size under the
// combined churn schedule: a reboot storm, flapping hosts, and two network
// partitions, all drawn from the fault plane.
func e16Point(cfg Config, t *Table, n, which int) (*e16Row, error) {
	c, sels, err := selectionCluster(cfg.Seed+int64(which), n)
	if err != nil {
		return nil, err
	}
	sel := sels[which]
	lease := time.Duration(0)
	if _, ok := sel.(*hostsel.Probabilistic); ok {
		lease = hostsel.DefaultProbabilisticParams().ClaimLease
	}
	ledger := hostsel.NewClaimLedger(sel, c, lease)
	ledger.Register(c)
	plane := fault.NewPlane(c, cfg.Seed*1_000_003+int64(n)*10+int64(which))

	// Fault targets occupy a contiguous band starting past the requesters;
	// storm, flap, and partition sets are disjoint so each churn shape is
	// attributable.
	requesters := 3
	stormCount := max(2, n/10)
	flapCount := max(2, n/20)
	partCount := max(4, n/8)
	band := requesters + 1
	hostAt := func(i int) rpc.HostID { return c.Workstation(i % n).Host() }

	// Reboot storm: two staggered waves across the storm set.
	for i := 0; i < stormCount; i++ {
		h := hostAt(band + i)
		plane.ScheduleReboot(h, 70*time.Second+time.Duration(i)*(40*time.Second/time.Duration(stormCount)))
		plane.ScheduleReboot(h, 115*time.Second+time.Duration(i)*(30*time.Second/time.Duration(stormCount)))
	}
	// Partitions: each half of the partition set is isolated for one window.
	partBase := band + stormCount + flapCount
	var partA, partB []rpc.HostID
	for i := 0; i < partCount/2; i++ {
		partA = append(partA, hostAt(partBase+i))
		partB = append(partB, hostAt(partBase+partCount/2+i))
	}
	plane.Partition(70*time.Second, 100*time.Second, partA...)
	plane.Partition(115*time.Second, 145*time.Second, partB...)

	// Flapping: availability retractions and fresh announcements every few
	// seconds, plus simulated user input, without the hosts going down.
	flapBase := band + stormCount
	c.Boot("flapper", func(env *sim.Env) error {
		if err := env.Sleep(70 * time.Second); err != nil {
			return err
		}
		for round := 0; env.Now() < e16ChurnEnd; round++ {
			for i := 0; i < flapCount; i++ {
				k := c.Workstation((flapBase + i) % n)
				if (round+i)%2 == 0 {
					k.NoteInput(env.Now())
					if err := sel.NotifyAvailability(env, k.Host(), false); err != nil && !e16Tolerable(err) {
						return err
					}
				} else if err := sel.NotifyAvailability(env, k.Host(), true); err != nil && !e16Tolerable(err) {
					return err
				}
			}
			if err := env.Sleep(4 * time.Second); err != nil {
				return err
			}
		}
		return nil
	})

	// Announcer: the load-daemon stand-in pushing availability into the
	// selector, tolerating hosts that are down mid-round.
	c.Boot("announce", func(env *sim.Env) error {
		if err := env.Sleep(e16Warmup); err != nil {
			return err
		}
		for env.Now() < e16End {
			for _, k := range c.Workstations() {
				if c.HostDown(k.Host()) {
					continue
				}
				if err := sel.NotifyAvailability(env, k.Host(), k.Available(env.Now())); err != nil && !e16Tolerable(err) {
					return err
				}
			}
			if err := env.Sleep(5 * time.Second); err != nil {
				return err
			}
		}
		// Shutdown: retry file-server closes that failed mid-partition, so
		// no host leaves a leaked open entry behind (the shared-file
		// selector's state file is the one at risk).
		for _, k := range c.Workstations() {
			if !c.HostDown(k.Host()) {
				c.FS().Client(k.Host()).Settle(env)
			}
		}
		return nil
	})

	if g, ok := sel.(*hostsel.Probabilistic); ok {
		c.Boot("gossipd", func(env *sim.Env) error {
			if err := env.Sleep(e16Warmup); err != nil {
				return err
			}
			g.StartDaemons(env)
			if err := env.Sleep(e16End - e16Warmup); err != nil {
				return err
			}
			g.Stop()
			return nil
		})
	}

	var sample stats.Sample
	for r := 0; r < requesters; r++ {
		r := r
		client := c.Workstation(r).Host()
		c.Boot(fmt.Sprintf("req%d", r), func(env *sim.Env) error {
			if err := env.Sleep(e16Warmup + time.Duration(r)*300*time.Millisecond); err != nil {
				return err
			}
			for env.Now() < e16End-5*time.Second {
				t0 := env.Now()
				got, err := ledger.RequestHosts(env, client, 2)
				if err != nil && !e16Tolerable(err) {
					return fmt.Errorf("req%d: %w", r, err)
				}
				sample.AddDuration(env.Now() - t0)
				if err := env.Sleep(time.Second); err != nil {
					return err
				}
				if len(got) > 0 {
					if err := ledger.Release(env, client, got); err != nil && !e16Tolerable(err) {
						return fmt.Errorf("req%d release: %w", r, err)
					}
				}
				if err := env.Sleep(time.Second); err != nil {
					return err
				}
			}
			return nil
		})
	}

	if err := c.Run(0); err != nil {
		return nil, err
	}
	if viol := c.CheckInvariants(true); len(viol) > 0 {
		return nil, fmt.Errorf("E16 %s hosts=%d: invariants violated: %v", sel.Name(), n, viol)
	}
	t.CaptureMetrics(cfg, fmt.Sprintf("%s hosts=%d", sel.Name(), n), c)

	st := sel.Stats()
	row := &e16Row{
		Architecture: sel.Name(),
		Hosts:        n,
		Requests:     st.Requests,
		Granted:      st.Granted,
		Denied:       st.Denied,
		Conflicts:    st.Conflicts,
		MeanMs:       sample.Mean() * 1000,
		P95Ms:        sample.Percentile(95) * 1000,
		MsgsPerMin:   float64(st.Messages) / (e16End - e16Warmup).Minutes(),
	}
	if st.Granted+st.Conflicts > 0 {
		row.MisplaceRate = float64(st.Conflicts) / float64(st.Granted+st.Conflicts)
	}
	if g, ok := sel.(*hostsel.Probabilistic); ok {
		row.GossipBytes = g.Gossip().Bytes
	}
	return row, nil
}

// E16SelectorShootout reruns the Ch. 6 selector comparison at fleet scale
// under churn: every architecture faces the same reboot storm, flapping
// hosts, and network partitions, and is scored on selection latency,
// misplacement rate (stale grants caught at claim time), and message
// overhead. The gossip selector's partial load vectors are the subject: the
// experiment shows what bounded, aging, epoch-guarded views cost in
// misplacements relative to the central server's perfect state.
func E16SelectorShootout(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E16",
		Title:    "Selector shoot-out at fleet scale under churn",
		PaperRef: "thesis Ch. 6 revisited: gossip load vectors vs central, shared-file, multicast",
		Columns:  []string{"architecture", "hosts", "granted", "denied", "misplaced", "misplace %", "mean ms", "p95 ms", "msgs/min"},
	}
	sizes := []int{100, 1000}
	if cfg.Quick {
		sizes = []int{24}
	} else if cfg.Fleet10k {
		sizes = append(sizes, 10000)
	}
	if cfg.Hosts > 0 {
		// Explicit scale override (spritesim -hosts): run exactly that one
		// fleet size — how the 10k CI tier invokes the combined-churn
		// schedule without paying for the standard sweep first.
		sizes = []int{cfg.Hosts}
	}
	var rows []*e16Row
	for _, n := range sizes {
		for which := 0; which < 4; which++ {
			row, err := e16Point(cfg, t, n, which)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
			t.AddRow(row.Architecture, fmt.Sprintf("%d", row.Hosts),
				fmt.Sprintf("%d", row.Granted),
				fmt.Sprintf("%d", row.Denied),
				fmt.Sprintf("%d", row.Conflicts),
				fmt.Sprintf("%.2f", row.MisplaceRate*100),
				fmt.Sprintf("%.1f", row.MeanMs),
				fmt.Sprintf("%.1f", row.P95Ms),
				fmt.Sprintf("%.0f", row.MsgsPerMin))
		}
	}
	t.AddNote("paper shape: central stays conflict-free but funnels every update through one host; gossip's bounded aged views misplace a small fraction of claims and recover via claim verification; multicast pays per-request fleet-wide traffic")
	if cfg.HostselSnapshot != "" {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(cfg.HostselSnapshot, data, 0o644); err != nil {
			return nil, err
		}
		t.AddNote("shoot-out results written to %s", cfg.HostselSnapshot)
	}
	return t, nil
}
