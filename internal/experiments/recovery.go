package experiments

import (
	"fmt"
	"os"
	"strings"
	"time"

	"sprite/internal/recovery"
)

// E15CrashRecovery goes beyond the thesis' performance tables into the
// availability story Sprite's design leans on: host liveness epochs, orphan
// reaping, and checkpoint-backed failover. It runs the canonical demo — a
// deferred-reap cluster, a liveness monitor, and three supervised jobs whose
// host dies mid-run — and reports what the recovery plane observed. The
// fault schedule is overridable from the CLI (-crash host@t[+dur]), and
// -recovery-snapshot dumps the full metrics snapshot as JSON for dashboards
// and the CI chaos artifact.
func E15CrashRecovery(cfg Config) (*Table, error) {
	res, err := recovery.RunDemoWith(cfg.Seed, cfg.Crashes)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:       "E15",
		Title:    "crash recovery and checkpointed failover",
		PaperRef: "beyond the thesis: Sprite's recovery model (host epochs, Welch 1990)",
		Columns:  []string{"metric", "value"},
	}
	cnt := res.Snapshot.Counters
	t.AddRow("jobs submitted", fmt.Sprintf("%d", cnt["recovery.jobs.submitted"]))
	t.AddRow("jobs completed", fmt.Sprintf("%d", res.Completed))
	t.AddRow("jobs lost", fmt.Sprintf("%d", len(res.Lost)))
	t.AddRow("restarts", fmt.Sprintf("%d", res.Restarts))
	t.AddRow("checkpoints taken", fmt.Sprintf("%d", cnt["recovery.checkpoints"]))
	t.AddRow("cpu recovered (ms)", ms(time.Duration(cnt["recovery.cpu_recovered_ns"])))
	t.AddRow("host-down events", fmt.Sprintf("%d", cnt["recovery.host_down"]))
	t.AddRow("host-up events", fmt.Sprintf("%d", cnt["recovery.host_up"]))
	if d, ok := res.Snapshot.Timings["recovery.detect_latency"]; ok && d.N > 0 {
		t.AddRow("detect latency p50 (ms)", ms(d.P50))
	}
	if r, ok := res.Snapshot.Timings["recovery.restart_latency"]; ok && r.N > 0 {
		t.AddRow("restart latency p50 (ms)", ms(r.P50))
	}

	var evs []string
	for _, ev := range res.Events {
		evs = append(evs, fmt.Sprintf("%v %v epoch=%d at=%v", ev.Kind, ev.Host, ev.Epoch, ev.At))
	}
	t.AddNote("liveness events: %s", strings.Join(evs, "; "))
	if len(res.Violations) != 0 {
		t.AddNote("INVARIANT VIOLATIONS: %s", strings.Join(res.Violations, "; "))
	}
	t.CaptureSnapshot(cfg, "demo", res.Snapshot)
	if cfg.RecoverySnapshot != "" {
		data, err := res.Snapshot.JSON()
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(cfg.RecoverySnapshot, data, 0o644); err != nil {
			return nil, fmt.Errorf("write recovery snapshot: %w", err)
		}
		t.AddNote("metrics snapshot written to %s", cfg.RecoverySnapshot)
	}
	return t, nil
}
