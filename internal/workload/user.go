package workload

import (
	"fmt"
	"time"

	"sprite/internal/core"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// Notify is how a user model reports availability transitions (usually a
// hostsel.Selector's NotifyAvailability).
type Notify func(env *sim.Env, host rpc.HostID, available bool) error

// UserPool drives one simulated user per workstation: alternating
// keyboard-activity bursts and idle gaps per the profile. During a burst the
// user types every couple of seconds (keeping the host unavailable); after a
// gap exceeds the kernel's idle-input age the host becomes available and the
// transition is announced.
type UserPool struct {
	cluster *core.Cluster
	profile DayProfile
	notify  Notify
	stopped bool
	typing  time.Duration
}

// NewUserPool creates a pool over every workstation in the cluster. notify
// may be nil.
func NewUserPool(cluster *core.Cluster, profile DayProfile, notify Notify) *UserPool {
	return &UserPool{
		cluster: cluster,
		profile: profile,
		notify:  notify,
		typing:  2 * time.Second,
	}
}

// Start spawns one user activity per workstation. Users run until Stop.
func (u *UserPool) Start(env *sim.Env) {
	for _, k := range u.cluster.Workstations() {
		kernel := k
		env.Spawn(fmt.Sprintf("user-%v", kernel.Host()), func(uenv *sim.Env) error {
			return u.runUser(uenv, kernel)
		})
	}
}

// Stop ends every user at its next state change.
func (u *UserPool) Stop() { u.stopped = true }

func (u *UserPool) runUser(env *sim.Env, k *core.Kernel) error {
	idleAge := u.cluster.Params().IdleInputAge
	rng := env.Rand()
	// Stagger start so users don't move in lockstep.
	if err := env.Sleep(time.Duration(rng.Int63n(int64(u.profile.SessionMean) + 1))); err != nil {
		return err
	}
	for !u.stopped {
		gap, busy := u.profile.NextSession(rng, env.Now())
		// Idle gap: after idleAge of silence the host becomes available.
		if gap > idleAge {
			if err := env.Sleep(idleAge); err != nil {
				return err
			}
			if u.stopped {
				return nil
			}
			if u.notify != nil && k.Available(env.Now()) {
				if err := u.notify(env, k.Host(), true); err != nil {
					return err
				}
			}
			if err := env.Sleep(gap - idleAge); err != nil {
				return err
			}
		} else if err := env.Sleep(gap); err != nil {
			return err
		}
		if u.stopped {
			return nil
		}
		// The user returns: the host is immediately unavailable.
		k.NoteInput(env.Now())
		if u.notify != nil {
			if err := u.notify(env, k.Host(), false); err != nil {
				return err
			}
		}
		// Activity burst: keystrokes every couple of seconds.
		end := env.Now() + busy
		for env.Now() < end && !u.stopped {
			step := u.typing
			if remaining := end - env.Now(); remaining < step {
				step = remaining
			}
			if err := env.Sleep(step); err != nil {
				return err
			}
			k.NoteInput(env.Now())
		}
	}
	return nil
}

// SampleAvailability polls the cluster every interval for total, and
// returns the fraction of workstations available at each sample.
func SampleAvailability(env *sim.Env, cluster *core.Cluster, interval, total time.Duration) ([]float64, error) {
	var out []float64
	steps := int(total / interval)
	for i := 0; i < steps; i++ {
		if err := env.Sleep(interval); err != nil {
			return out, err
		}
		idle := 0
		ws := cluster.Workstations()
		for _, k := range ws {
			if k.Available(env.Now()) {
				idle++
			}
		}
		out = append(out, float64(idle)/float64(len(ws)))
	}
	return out, nil
}
