// Package workload generates the synthetic load the experiments drive the
// cluster with: process lifetimes matched to Zhou's BSD measurements, user
// activity sessions with day/night structure (Ch. 8's availability traces),
// and the long-running simulation jobs the thesis cites as migration's best
// customers.
package workload

import (
	"math/rand"
	"time"
)

// LifetimeDist is a two-phase hyperexponential process-lifetime
// distribution: most processes are very short, a few run for a long time.
type LifetimeDist struct {
	// PShort is the probability a process is short-lived.
	PShort float64
	// ShortMean and LongMean are the phase means.
	ShortMean time.Duration
	LongMean  time.Duration
}

// ZhouLifetimes returns a distribution matched to Zhou's VAX-11/780 trace
// [Zho87]: mean ~1.5 s, standard deviation ~19 s, with the large majority
// of processes living under a second.
func ZhouLifetimes() LifetimeDist {
	return LifetimeDist{
		PShort:    0.993,
		ShortMean: 400 * time.Millisecond,
		LongMean:  157 * time.Second,
	}
}

// Sample draws one lifetime.
func (d LifetimeDist) Sample(rng *rand.Rand) time.Duration {
	mean := d.LongMean
	if rng.Float64() < d.PShort {
		mean = d.ShortMean
	}
	return time.Duration(rng.ExpFloat64() * float64(mean))
}

// Mean returns the distribution's analytic mean.
func (d LifetimeDist) Mean() time.Duration {
	return time.Duration(d.PShort*float64(d.ShortMean) + (1-d.PShort)*float64(d.LongMean))
}

// DayProfile describes a user's activity pattern by time of day.
type DayProfile struct {
	// DayStart and DayEnd delimit working hours within each 24 h period.
	DayStart time.Duration
	DayEnd   time.Duration
	// BusyFracDay and BusyFracNight are the fractions of time the user is
	// at the keyboard in each regime.
	BusyFracDay   float64
	BusyFracNight float64
	// SessionMean is the mean length of one activity burst.
	SessionMean time.Duration
}

// DefaultDayProfile is calibrated so that cluster-wide idleness lands in
// the thesis's 65-70% daytime / ~80% night band.
func DefaultDayProfile() DayProfile {
	return DayProfile{
		DayStart:      9 * time.Hour,
		DayEnd:        17 * time.Hour,
		BusyFracDay:   0.32,
		BusyFracNight: 0.18,
		SessionMean:   15 * time.Minute,
	}
}

// BusyFrac returns the target busy fraction at a given time.
func (p DayProfile) BusyFrac(now time.Duration) float64 {
	tod := now % (24 * time.Hour)
	if tod >= p.DayStart && tod < p.DayEnd {
		return p.BusyFracDay
	}
	return p.BusyFracNight
}

// NextSession samples (gap, busy) for the next activity cycle at time now:
// the user is away for gap, then active for busy.
func (p DayProfile) NextSession(rng *rand.Rand, now time.Duration) (gap, busy time.Duration) {
	frac := p.BusyFrac(now)
	if frac <= 0 {
		frac = 0.01
	}
	if frac >= 1 {
		frac = 0.99
	}
	busy = time.Duration(rng.ExpFloat64() * float64(p.SessionMean))
	meanGap := float64(p.SessionMean) * (1 - frac) / frac
	gap = time.Duration(rng.ExpFloat64() * meanGap)
	return gap, busy
}
