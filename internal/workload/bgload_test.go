package workload

import (
	"testing"
	"time"

	"sprite/internal/metrics"
	"sprite/internal/sim"
)

// bgloadRun executes the background-load plane under the given kernel and
// returns everything observable: the committed-order digest, the rendered
// metrics snapshot, and the collector's state.
func bgloadRun(t *testing.T, workers int) (uint64, string, int, map[int]uint64) {
	t.Helper()
	s := sim.New(7)
	s.SetLookahead(500 * time.Microsecond)
	if workers > 0 {
		s.ConfigureParallel(workers)
	}
	reg := metrics.New()
	if workers > 0 {
		reg.EnableSharding(workers)
	}
	b := StartBgLoad(s, reg, BgLoadConfig{
		Hosts:       12,
		Tick:        2 * time.Millisecond,
		WorkPerTick: 200,
		ReportEvery: 5,
	})
	if err := s.Run(100 * time.Millisecond); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	digest := s.OrderDigest()
	snap := reg.Snapshot().Text()
	loads := make(map[int]uint64)
	for h := 0; h < 12; h++ {
		if v, ok := b.LastLoad(h); ok {
			loads[h] = v
		}
	}
	s.Stop()
	_ = s.Run(0)
	if n := s.LiveActivities(); n != 0 {
		t.Fatalf("workers=%d leaked %d activities", workers, n)
	}
	return digest, snap, b.Received(), loads
}

// TestBgLoadSerialParallelEquivalence proves the load plane — daemons,
// sharded instruments, mailbox reports, collector — is a pure function of
// the seed, independent of kernel and worker count.
func TestBgLoadSerialParallelEquivalence(t *testing.T) {
	wantDigest, wantSnap, wantN, wantLoads := bgloadRun(t, 0)
	if wantN == 0 {
		t.Fatal("collector received no reports; workload too short to test anything")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		digest, snap, n, loads := bgloadRun(t, workers)
		if digest != wantDigest {
			t.Errorf("workers=%d digest %#x, want %#x", workers, digest, wantDigest)
		}
		if snap != wantSnap {
			t.Errorf("workers=%d metrics snapshot diverged:\n got: %s\nwant: %s", workers, snap, wantSnap)
		}
		if n != wantN {
			t.Errorf("workers=%d received %d reports, want %d", workers, n, wantN)
		}
		for h, v := range wantLoads {
			if loads[h] != v {
				t.Errorf("workers=%d host %d load %#x, want %#x", workers, h, loads[h], v)
			}
		}
	}
}

// TestBgLoadMetricsCount checks the sharded counters land exactly: every
// daemon runs its full tick budget within the time limit, so the tick
// counter equals Hosts*Ticks regardless of which worker cells absorbed the
// increments.
func TestBgLoadMetricsCount(t *testing.T) {
	s := sim.New(3)
	s.SetLookahead(time.Millisecond)
	s.ConfigureParallel(4)
	reg := metrics.New()
	reg.EnableSharding(4)
	StartBgLoad(s, reg, BgLoadConfig{Hosts: 8, Tick: time.Millisecond, WorkPerTick: 50, Ticks: 25})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("bgload.ticks").Value(); got != 8*25 {
		t.Fatalf("bgload.ticks = %d, want %d", got, 8*25)
	}
	if got := reg.Timing("bgload.tick_gap").N(); got != 8*25 {
		t.Fatalf("bgload.tick_gap n = %d, want %d", got, 8*25)
	}
}
