package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"sprite/internal/core"
	"sprite/internal/sim"
	"sprite/internal/stats"
)

func TestZhouLifetimeMoments(t *testing.T) {
	d := ZhouLifetimes()
	rng := rand.New(rand.NewSource(42))
	var s stats.Sample
	short := 0
	n := 200000
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		s.AddDuration(v)
		if v < time.Second {
			short++
		}
	}
	mean := s.Mean()
	if mean < 1.2 || mean > 1.9 {
		t.Fatalf("mean = %.2fs, want ~1.5s (Zhou)", mean)
	}
	std := s.Std()
	if std < 14 || std > 25 {
		t.Fatalf("std = %.1fs, want ~19s (Zhou)", std)
	}
	// Cabrera: more than 78% of processes live less than one second.
	frac := float64(short) / float64(n)
	if frac < 0.78 {
		t.Fatalf("%.1f%% of processes under 1s, want > 78%%", frac*100)
	}
}

func TestLifetimeAnalyticMean(t *testing.T) {
	d := ZhouLifetimes()
	got := d.Mean().Seconds()
	if math.Abs(got-1.5) > 0.2 {
		t.Fatalf("analytic mean = %.2fs, want ~1.5s", got)
	}
}

func TestDayProfileRegimes(t *testing.T) {
	p := DefaultDayProfile()
	if got := p.BusyFrac(12 * time.Hour); got != p.BusyFracDay {
		t.Fatalf("noon busy frac = %v", got)
	}
	if got := p.BusyFrac(3 * time.Hour); got != p.BusyFracNight {
		t.Fatalf("3am busy frac = %v", got)
	}
	// Second day repeats the pattern.
	if got := p.BusyFrac(24*time.Hour + 12*time.Hour); got != p.BusyFracDay {
		t.Fatalf("noon day 2 busy frac = %v", got)
	}
}

func TestSessionSamplesMatchBusyFraction(t *testing.T) {
	p := DefaultDayProfile()
	rng := rand.New(rand.NewSource(7))
	var busyTotal, gapTotal time.Duration
	for i := 0; i < 50000; i++ {
		gap, busy := p.NextSession(rng, 12*time.Hour)
		busyTotal += busy
		gapTotal += gap
	}
	frac := float64(busyTotal) / float64(busyTotal+gapTotal)
	if math.Abs(frac-p.BusyFracDay) > 0.03 {
		t.Fatalf("sampled busy frac = %.3f, want ~%.2f", frac, p.BusyFracDay)
	}
}

func TestUserPoolProducesIdleBand(t *testing.T) {
	c, err := core.NewCluster(core.Options{Workstations: 24, FileServers: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewUserPool(c, DefaultDayProfile(), nil)
	var samples []float64
	c.Boot("boot", func(env *sim.Env) error {
		pool.Start(env)
		// Sample daytime availability between 10:00 and 14:00.
		if err := env.Sleep(10 * time.Hour); err != nil {
			return err
		}
		samples, err = SampleAvailability(env, c, time.Minute, 4*time.Hour)
		if err != nil {
			return err
		}
		pool.Stop()
		return nil
	})
	if err := c.Run(15 * time.Hour); err != nil {
		t.Fatal(err)
	}
	c.Stop()
	_ = c.Run(0)
	var s stats.Sample
	for _, v := range samples {
		s.Add(v)
	}
	mean := s.Mean()
	// Thesis band: 65-70% idle during the day. Allow simulation slack.
	if mean < 0.55 || mean > 0.8 {
		t.Fatalf("daytime idle fraction = %.2f, want within [0.55, 0.80]", mean)
	}
}
