package workload

import (
	"fmt"
	"time"

	"sprite/internal/metrics"
	"sprite/internal/sim"
)

// BgLoadConfig sizes the background-load plane: one confined daemon per
// host, each on its own simulation shard, modelling the per-host load
// accounting (sampling, EWMA folding, table maintenance) that in Sprite ran
// on every workstation regardless of what the migration plane was doing.
// These daemons are the cluster's embarrassingly parallel component: they
// interact with the exclusive plane only through Mailbox reports, so the
// conservative parallel kernel can dispatch them concurrently while
// committing exactly the serial order.
type BgLoadConfig struct {
	// Hosts is the daemon count; daemon i runs on shard FirstShard+i.
	Hosts int
	// FirstShard is the first confined shard to use (default 1).
	FirstShard int
	// Tick is the mean sampling period (default 50ms); each daemon jitters
	// its ticks from its shard-local deterministic stream.
	Tick time.Duration
	// WorkPerTick is the synthetic bookkeeping cost of one sample, in hash
	// iterations (default 2000) — the knob E17 turns to set the
	// parallel-to-serial work ratio.
	WorkPerTick int
	// ReportEvery sends one load report to the central collector every N
	// ticks (0 disables reporting).
	ReportEvery int
	// Ticks bounds each daemon's lifetime (0 = run until the simulation
	// stops or the daemon is interrupted).
	Ticks int
}

func (c BgLoadConfig) withDefaults() BgLoadConfig {
	if c.FirstShard <= 0 {
		c.FirstShard = 1
	}
	if c.Tick <= 0 {
		c.Tick = 50 * time.Millisecond
	}
	if c.WorkPerTick <= 0 {
		c.WorkPerTick = 2000
	}
	return c
}

// BgLoadReport is one daemon's periodic message to the collector.
type BgLoadReport struct {
	Host int
	Tick int
	// Load is the daemon's accumulated synthetic load word — a pure
	// function of (seed, shard, tick), so collectors can assert
	// determinism across kernels and worker counts.
	Load uint64
}

// BgLoad is the handle on a running background-load plane. All accessors
// are for after the run (or from exclusive activities).
type BgLoad struct {
	cfg  BgLoadConfig
	mbox *sim.Mailbox

	ticks   *metrics.Counter
	reports *metrics.Counter
	tickDur *metrics.Timing

	received int
	lastLoad map[int]uint64
}

// StartBgLoad spawns the per-host daemons and, when reporting is on, one
// exclusive collector draining their shared mailbox. Must be called before
// the simulation runs (it is scenario setup, not an activity).
func StartBgLoad(s *sim.Simulation, reg *metrics.Registry, cfg BgLoadConfig) *BgLoad {
	cfg = cfg.withDefaults()
	b := &BgLoad{cfg: cfg, lastLoad: make(map[int]uint64)}
	if reg != nil {
		// Instrument pointers are resolved here, in the exclusive setup
		// phase, so confined ticks never touch the registry lock.
		b.ticks = reg.Counter("bgload.ticks")
		b.reports = reg.Counter("bgload.reports")
		b.tickDur = reg.Timing("bgload.tick_gap")
	}
	if cfg.ReportEvery > 0 {
		// Reports cross shards, so they ride a mailbox whose delay clears
		// the conservative horizon.
		delay := s.Lookahead()
		if delay <= 0 {
			delay = time.Millisecond
		}
		b.mbox = sim.NewMailbox(s, delay)
		s.Spawn("bgload.collector", func(env *sim.Env) error {
			done := 0
			for {
				v, err := b.mbox.Recv(env)
				if err != nil {
					return nil
				}
				r := v.(BgLoadReport)
				if r.Tick < 0 {
					// Retirement sentinel from a daemon that exhausted its
					// tick budget; once all have retired the collector exits
					// so bounded runs quiesce instead of deadlocking on an
					// empty mailbox.
					done++
					if cfg.Ticks > 0 && done == cfg.Hosts {
						return nil
					}
					continue
				}
				b.received++
				b.lastLoad[r.Host] = r.Load
			}
		})
	}
	for i := 0; i < cfg.Hosts; i++ {
		host := i
		s.SpawnOn(cfg.FirstShard+i, fmt.Sprintf("bgload.%d", host), b.daemon(host))
	}
	return b
}

// daemon is one host's load-accounting loop: jittered ticks, a burst of
// synthetic bookkeeping per tick, sharded metrics, periodic reports.
func (b *BgLoad) daemon(host int) func(env *sim.Env) error {
	return func(env *sim.Env) error {
		r := env.LocalRand()
		slot := 0
		load := uint64(env.Shard())
		last := env.Now()
		for tick := 0; b.cfg.Ticks == 0 || tick < b.cfg.Ticks; tick++ {
			jitter := time.Duration(r.Int63n(int64(b.cfg.Tick)))
			if err := env.Sleep(b.cfg.Tick/2 + jitter); err != nil {
				return nil
			}
			// WorkerSlot must be sampled inside the dispatched tick — the
			// daemon migrates between workers across windows.
			slot = sim.WorkerSlot(env)
			for j := 0; j < b.cfg.WorkPerTick; j++ {
				load = (load ^ uint64(j)) * 1099511628211
			}
			if b.ticks != nil {
				b.ticks.IncSlot(slot)
				b.tickDur.ObserveSlot(slot, env.Now()-last)
			}
			last = env.Now()
			if b.mbox != nil && b.cfg.ReportEvery > 0 && (tick+1)%b.cfg.ReportEvery == 0 {
				env.Emit("bgload.report", fmt.Sprintf("host=%d tick=%d", host, tick))
				b.mbox.Send(env, BgLoadReport{Host: host, Tick: tick, Load: load})
				if b.reports != nil {
					b.reports.IncSlot(slot)
				}
			}
		}
		if b.mbox != nil {
			b.mbox.Send(env, BgLoadReport{Host: host, Tick: -1, Load: load})
		}
		return nil
	}
}

// Received returns how many reports the collector drained.
func (b *BgLoad) Received() int { return b.received }

// LastLoad returns host's most recent reported load word.
func (b *BgLoad) LastLoad(host int) (uint64, bool) {
	v, ok := b.lastLoad[host]
	return v, ok
}

// Mailbox returns the report mailbox (nil when reporting is off); tests
// close it to unwind the collector.
func (b *BgLoad) Mailbox() *sim.Mailbox { return b.mbox }
