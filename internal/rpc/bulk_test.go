package rpc

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"sprite/internal/netsim"
	"sprite/internal/sim"
)

// newBulkFabric builds a two-plus-host fabric with the full default protocol
// parameters (retry machinery armed) and a reasonably fast link, so latency
// amortization — the point of the bulk path — is visible.
func newBulkFabric(t testing.TB, hosts int) (*sim.Simulation, *Transport) {
	t.Helper()
	s := sim.New(1)
	net := netsim.New(s, netsim.Params{Latency: 500 * time.Microsecond, BandwidthBytesPerSec: 10 << 20})
	tr := NewTransport(s, net, DefaultParams())
	for i := 1; i <= hosts; i++ {
		tr.Register(HostID(i))
	}
	return s, tr
}

// scriptInjector adapts a closure to the Injector interface for per-test
// fault scripts.
type scriptInjector struct {
	fn func(service string, attempt int) Verdict
}

func (si *scriptInjector) Intercept(env *sim.Env, from, to HostID, service string, attempt int) Verdict {
	return si.fn(service, attempt)
}

func TestCallBulkOutDeliversAndBeatsPerFragmentCalls(t *testing.T) {
	s, tr := newBulkFabric(t, 2)
	const payload = 256 << 10 // 16 fragments at the default 16KiB
	var handled int
	var gotArg any
	tr.Endpoint(2).Handle("blob", func(env *sim.Env, from HostID, arg any) (any, int, error) {
		handled++
		gotArg = arg
		return "done", 16, nil
	})
	tr.Endpoint(2).Handle("unit", func(env *sim.Env, from HostID, arg any) (any, int, error) {
		return nil, 16, nil
	})
	var bs BulkStats
	var reply any
	var bulkTook, callsTook time.Duration
	s.Spawn("caller", func(env *sim.Env) error {
		t0 := env.Now()
		var err error
		reply, bs, err = tr.Endpoint(1).CallBulk(env, 2, "blob", "hdr", 64, payload, BulkOut)
		if err != nil {
			return err
		}
		bulkTook = env.Now() - t0
		// The ablation: the same bytes as 16 independent 16KiB calls.
		t0 = env.Now()
		for i := 0; i < 16; i++ {
			if _, err := tr.Endpoint(1).Call(env, 2, "unit", nil, 16<<10); err != nil {
				return err
			}
		}
		callsTook = env.Now() - t0
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if handled != 1 || gotArg != "hdr" || reply != "done" {
		t.Fatalf("handler ran %d times, arg %v, reply %v", handled, gotArg, reply)
	}
	if bs.Calls != 1 || bs.Fragments != 16 || bs.Bytes != payload || bs.Retransmits != 0 {
		t.Fatalf("stats = %+v", bs)
	}
	if bulkTook >= callsTook {
		t.Fatalf("bulk transfer %v not cheaper than %v of per-fragment calls", bulkTook, callsTook)
	}
}

func TestCallBulkInStreamsReplyPayload(t *testing.T) {
	s, tr := newBulkFabric(t, 2)
	data := bytes.Repeat([]byte{0xAB}, 64<<10)
	tr.Endpoint(2).Handle("fetch", func(env *sim.Env, from HostID, arg any) (any, int, error) {
		return data, len(data), nil
	})
	var bs BulkStats
	var reply any
	s.Spawn("caller", func(env *sim.Env) error {
		var err error
		reply, bs, err = tr.Endpoint(1).CallBulk(env, 2, "fetch", nil, 32, 0, BulkIn)
		return err
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if got, ok := reply.([]byte); !ok || !bytes.Equal(got, data) {
		t.Fatalf("reply = %T (%d bytes)", reply, len(data))
	}
	if bs.Fragments != 4 || bs.Bytes != len(data) || bs.Retransmits != 0 {
		t.Fatalf("stats = %+v", bs)
	}
}

// TestCallBulkFragmentDropRetransmits: one fragment lost mid-batch costs a
// retransmission timeout but the transfer completes, delivering every byte
// exactly once.
func TestCallBulkFragmentDropRetransmits(t *testing.T) {
	s, tr := newBulkFabric(t, 2)
	frag := 0
	tr.SetInjector(&scriptInjector{fn: func(service string, attempt int) Verdict {
		if service != "blob.frag" {
			return Verdict{}
		}
		frag++
		if frag == 3 && attempt == 0 {
			return Verdict{DropRequest: true}
		}
		return Verdict{}
	}})
	var handled int
	tr.Endpoint(2).Handle("blob", func(env *sim.Env, from HostID, arg any) (any, int, error) {
		handled++
		return nil, 16, nil
	})
	var bs BulkStats
	s.Spawn("caller", func(env *sim.Env) error {
		_, st, err := tr.Endpoint(1).CallBulk(env, 2, "blob", nil, 32, 128<<10, BulkOut)
		bs = st
		return err
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if handled != 1 {
		t.Fatalf("handler ran %d times, want 1", handled)
	}
	if bs.Fragments != 8 || bs.Bytes != 128<<10 || bs.Retransmits != 1 {
		t.Fatalf("stats = %+v, want 8 fragments and exactly 1 retransmit", bs)
	}
	if got := tr.Retries(); got != 1 {
		t.Fatalf("transport retries = %d, want 1", got)
	}
}

// TestCallBulkPersistentFragmentLossTimesOut: a fragment that never gets
// through exhausts MaxRetries and surfaces ErrTimeout; the handler never runs
// (the write must not be applied from a half-delivered batch).
func TestCallBulkPersistentFragmentLossTimesOut(t *testing.T) {
	s, tr := newBulkFabric(t, 2)
	tr.SetInjector(&scriptInjector{fn: func(service string, attempt int) Verdict {
		if service == "blob.frag" {
			return Verdict{DropRequest: true}
		}
		return Verdict{}
	}})
	var handled int
	tr.Endpoint(2).Handle("blob", func(env *sim.Env, from HostID, arg any) (any, int, error) {
		handled++
		return nil, 16, nil
	})
	var bs BulkStats
	var cerr error
	s.Spawn("caller", func(env *sim.Env) error {
		_, bs, cerr = tr.Endpoint(1).CallBulk(env, 2, "blob", nil, 32, 64<<10, BulkOut)
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(cerr, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", cerr)
	}
	if handled != 0 {
		t.Fatalf("handler ran %d times on a failed batch", handled)
	}
	if bs.Retransmits != DefaultParams().MaxRetries {
		t.Fatalf("retransmits = %d, want %d (MaxRetries)", bs.Retransmits, DefaultParams().MaxRetries)
	}
}

// TestCallBulkFragmentDelayAddsLatencyOnly: a delayed fragment slows the
// stream by exactly the injected delay — no retransmission, no byte loss.
func TestCallBulkFragmentDelayAddsLatencyOnly(t *testing.T) {
	const delay = 5 * time.Millisecond
	run := func(inj Injector) (time.Duration, BulkStats) {
		s, tr := newBulkFabric(t, 2)
		tr.SetInjector(inj)
		tr.Endpoint(2).Handle("blob", func(env *sim.Env, from HostID, arg any) (any, int, error) {
			return nil, 16, nil
		})
		var took time.Duration
		var bs BulkStats
		s.Spawn("caller", func(env *sim.Env) error {
			var err error
			_, bs, err = tr.Endpoint(1).CallBulk(env, 2, "blob", nil, 32, 64<<10, BulkOut)
			took = env.Now()
			return err
		})
		if err := s.Run(0); err != nil {
			t.Fatal(err)
		}
		return took, bs
	}
	clean, cleanStats := run(nil)
	delayed, delayedStats := run(&scriptInjector{fn: func(service string, attempt int) Verdict {
		if service == "blob.frag" && attempt == 0 {
			return Verdict{Delay: delay}
		}
		return Verdict{}
	}})
	if delayedStats.Retransmits != 0 || delayedStats.Fragments != cleanStats.Fragments {
		t.Fatalf("delayed stats = %+v, clean %+v", delayedStats, cleanStats)
	}
	if want := clean + 4*delay; delayed != want { // 4 fragments, each delayed once
		t.Fatalf("delayed run took %v, want %v (clean %v + 4x%v)", delayed, want, clean, delay)
	}
}

func TestCallBulkLocalShortcutIsFree(t *testing.T) {
	s, tr := newBulkFabric(t, 1)
	tr.Endpoint(1).Handle("blob", func(env *sim.Env, from HostID, arg any) (any, int, error) {
		return "ok", 8, nil
	})
	var took time.Duration
	var bs BulkStats
	s.Spawn("caller", func(env *sim.Env) error {
		var err error
		_, bs, err = tr.Endpoint(1).CallBulk(env, 1, "blob", nil, 32, 1<<20, BulkOut)
		took = env.Now()
		return err
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if took != 0 {
		t.Fatalf("local bulk call took %v, want 0", took)
	}
	if tr.Network().Messages() != 0 {
		t.Fatal("local bulk call touched the network")
	}
	if bs.Calls != 1 || bs.Fragments != 0 {
		t.Fatalf("stats = %+v", bs)
	}
}
