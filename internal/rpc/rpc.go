// Package rpc implements the kernel-to-kernel remote procedure call system
// that Sprite kernels use to cooperate (modeled on Welch's Sprite RPC
// [Wel86], itself in the style of Birrell & Nelson [BN84]).
//
// Every host owns one Endpoint with a set of named services. A call charges
// the caller for client-side software overhead, the network for the request
// and reply payloads, and then executes the service handler synchronously in
// the caller's activity; handlers charge any server-side costs to the
// server's own resources (CPU, disk) explicitly.
package rpc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sprite/internal/metrics"
	"sprite/internal/netsim"
	"sprite/internal/sim"
)

// HostID identifies one host (workstation or file server) on the network.
type HostID int

// String renders the host id in the conventional "host<N>" form.
func (h HostID) String() string { return fmt.Sprintf("host%d", int(h)) }

// NoHost is the zero HostID; valid hosts are numbered from 1.
const NoHost HostID = 0

// Epoch is a host's boot incarnation number. It starts at 1 when the host
// first registers and increases by one on every restart, so a host that
// crashes and comes back at the same address is distinguishable from one
// that never went down — the recovery plane's reboot detector keys on it.
type Epoch uint64

// EpochObserver is notified with the replying host's current epoch every
// time a call to that host completes (success or handler error — the reply
// made it back either way). Replies piggyback the epoch the way Sprite RPC
// piggybacks the boot timestamp; a passive observer therefore learns about
// reboots from ordinary traffic without waiting for the next heartbeat.
type EpochObserver func(host HostID, epoch Epoch)

// HintProvider supplies a small opaque payload piggybacked on every remote
// reply the endpoint sends, in the same spirit as the epoch piggyback: a
// subsystem with soft state (the gossip host selector's eviction hints) can
// spread small facts on ordinary traffic without extra messages. The
// returned size is charged to the reply on the wire; return (nil, 0) when
// there is nothing to say, which keeps the call byte-identical to one with
// no provider installed. The payload is captured when the handler executes,
// so a retransmitted (cached) reply carries the same hints.
type HintProvider func() (payload any, size int)

// HintObserver receives the piggybacked payload delivered with a reply.
// caller is the host whose call carried the reply back; server is the host
// whose provider produced the payload. Like EpochObserver, it runs inside
// the calling activity and must be pure bookkeeping: no sleeping, no calls.
type HintObserver func(caller, server HostID, payload any)

// Errors reported by the transport.
var (
	// ErrHostDown is returned when calling a host marked down.
	ErrHostDown = errors.New("rpc: host down")
	// ErrNoService is returned when the target host does not implement the
	// requested service.
	ErrNoService = errors.New("rpc: no such service")
	// ErrNoHost is returned when the target host is not registered.
	ErrNoHost = errors.New("rpc: no such host")
	// ErrTimeout is returned when a call exhausts its retransmissions without
	// ever seeing a reply (only reachable under fault injection: with no
	// injector installed, messages are never lost).
	ErrTimeout = errors.New("rpc: call timed out")
)

// Verdict is a fault injector's decision about one call attempt.
type Verdict struct {
	// DropRequest loses the request message: the server never sees it and
	// the client times out and retransmits.
	DropRequest bool
	// DropReply loses the reply message: the server processes the call but
	// the client times out and retransmits; the server's duplicate detection
	// then resends the cached reply without re-executing the handler
	// (Sprite RPC's at-most-once semantics, after Birrell & Nelson).
	DropReply bool
	// Duplicate delivers the request twice; the server discards the
	// duplicate but the extra packet is charged to the network.
	Duplicate bool
	// Delay adds one-way latency to the request leg.
	Delay time.Duration
}

// Injector decides the fate of individual RPC messages. Implementations must
// be deterministic functions of simulation state; Intercept runs in the
// calling activity, once per transmission attempt.
type Injector interface {
	Intercept(env *sim.Env, from, to HostID, service string, attempt int) Verdict
}

// Handler is a service implementation. It runs synchronously in the calling
// activity; reply is the result value and replySize its wire size in bytes.
type Handler func(env *sim.Env, from HostID, arg any) (reply any, replySize int, err error)

// Params configures per-call software overheads and loss recovery.
type Params struct {
	// ClientOverhead is CPU time charged to the caller per call (marshal,
	// trap, protocol processing on both ends folded together).
	ClientOverhead time.Duration
	// CallTimeout is how long the client waits for a reply before
	// retransmitting. Only lost messages (fault injection) ever make a call
	// wait this long.
	CallTimeout time.Duration
	// MaxRetries is how many retransmissions are attempted after the first
	// try before the call fails with ErrTimeout.
	MaxRetries int
	// RetryBackoff is the extra pause before the first retransmission,
	// doubling on each subsequent one.
	RetryBackoff time.Duration
	// BulkFragmentBytes is the payload carried by one fragment of a bulk
	// transfer (CallBulk). Fragments are pipelined: only the first in a
	// window pays the one-way latency.
	BulkFragmentBytes int
	// BulkWindow is how many bulk fragments may be in flight before the
	// sender must wait for an acknowledgement from the receiver.
	BulkWindow int
	// BulkFragOverhead is the per-fragment header cost in bytes (sequence
	// number, checksum, transaction id).
	BulkFragOverhead int
}

// DefaultParams returns Sun-3-era RPC software overhead (about 1 ms of
// processing per round trip in addition to two network traversals), with
// loss-recovery constants in the spirit of Sprite's RPC channel timeouts.
func DefaultParams() Params {
	return Params{
		ClientOverhead:    1 * time.Millisecond,
		CallTimeout:       25 * time.Millisecond,
		MaxRetries:        4,
		RetryBackoff:      10 * time.Millisecond,
		BulkFragmentBytes: 16 << 10,
		BulkWindow:        8,
		BulkFragOverhead:  32,
	}
}

// CallStats aggregates per-service call accounting.
type CallStats struct {
	Calls uint64
	Bytes uint64
	Errs  uint64
}

// svcStats is the internal, concurrency-safe accumulator behind CallStats.
// Confined hosts record calls from concurrently dispatched workers, so the
// fields are atomics (integer addition commutes, so the merged totals match
// a serial run exactly).
type svcStats struct {
	calls atomic.Uint64
	bytes atomic.Uint64
	errs  atomic.Uint64
}

// Transport is the RPC fabric connecting all hosts.
type Transport struct {
	sim       *sim.Simulation
	net       *netsim.Network
	params    Params
	endpoints map[HostID]*Endpoint
	stats     sync.Map // service name -> *svcStats
	injector  Injector
	observer  EpochObserver
	hintObs   HintObserver
	retries   atomic.Uint64
	timeouts  atomic.Uint64

	// confined is set by ConfineHosts: every remote call is routed through
	// per-host shard mailboxes instead of executing the handler inline in
	// the caller's activity.
	confined bool
	shardOf  func(HostID) int

	// Optional metrics plane. Counter pointers are cached here so the
	// per-call cost with metrics installed is a handful of atomic adds.
	m struct {
		reg      *metrics.Registry
		calls    *metrics.Counter
		bytes    *metrics.Counter
		errs     *metrics.Counter
		retries  *metrics.Counter
		timeouts *metrics.Counter
		perHost  map[HostID]*hostCounters

		bulkCalls       *metrics.Counter
		bulkBytes       *metrics.Counter
		bulkFragments   *metrics.Counter
		bulkRetransmits *metrics.Counter
	}
}

// hostCounters is the cached per-destination-host instrument set.
type hostCounters struct {
	calls *metrics.Counter
	bytes *metrics.Counter
	errs  *metrics.Counter
}

// SetMetrics installs (or with nil removes) the registry receiving RPC
// traffic counters: rpc.calls / rpc.bytes / rpc.errs / rpc.retries /
// rpc.timeouts plus per-destination rpc.to.<host>.{calls,bytes,errs}.
func (t *Transport) SetMetrics(reg *metrics.Registry) {
	t.m.reg = reg
	t.m.perHost = nil
	if reg == nil {
		t.m.calls, t.m.bytes, t.m.errs, t.m.retries, t.m.timeouts = nil, nil, nil, nil, nil
		t.m.bulkCalls, t.m.bulkBytes, t.m.bulkFragments, t.m.bulkRetransmits = nil, nil, nil, nil
		return
	}
	t.m.calls = reg.Counter("rpc.calls")
	t.m.bytes = reg.Counter("rpc.bytes")
	t.m.errs = reg.Counter("rpc.errs")
	t.m.retries = reg.Counter("rpc.retries")
	t.m.timeouts = reg.Counter("rpc.timeouts")
	t.m.bulkCalls = reg.Counter("rpc.bulk.calls")
	t.m.bulkBytes = reg.Counter("rpc.bulk.bytes")
	t.m.bulkFragments = reg.Counter("rpc.bulk.fragments")
	t.m.bulkRetransmits = reg.Counter("rpc.bulk.retransmits")
	t.m.perHost = make(map[HostID]*hostCounters)
	if t.confined {
		t.precreateHostCounters()
	}
}

// precreateHostCounters materializes the per-destination instrument set for
// every registered host. Under confinement record() runs on concurrently
// dispatched workers, so the map must be complete (read-only) before any
// window executes.
func (t *Transport) precreateHostCounters() {
	if t.m.reg == nil {
		return
	}
	for _, id := range t.Hosts() {
		t.makeHostCounters(id)
	}
}

func (t *Transport) makeHostCounters(to HostID) *hostCounters {
	hc := &hostCounters{
		calls: t.m.reg.Counter(fmt.Sprintf("rpc.to.%v.calls", to)),
		bytes: t.m.reg.Counter(fmt.Sprintf("rpc.to.%v.bytes", to)),
		errs:  t.m.reg.Counter(fmt.Sprintf("rpc.to.%v.errs", to)),
	}
	t.m.perHost[to] = hc
	return hc
}

func (t *Transport) hostCounters(to HostID) *hostCounters {
	hc, ok := t.m.perHost[to]
	if ok {
		return hc
	}
	if t.confined {
		// Unregistered destination (ErrNoHost path): skip the per-host
		// instruments rather than mutate the shared map from a confined
		// worker.
		return nil
	}
	return t.makeHostCounters(to)
}

// SetInjector installs (or, with nil, removes) the fault injector consulted
// on every remote call attempt. With no injector, calls never lose messages
// and the retry machinery is completely inert, keeping default runs
// bit-identical.
func (t *Transport) SetInjector(inj Injector) { t.injector = inj }

// SetEpochObserver installs (or, with nil, removes) the callback invoked
// with the server's boot epoch whenever a remote call's reply arrives.
// Observers must be pure bookkeeping: they run inside the calling activity
// and may not sleep, block, or issue further calls.
func (t *Transport) SetEpochObserver(obs EpochObserver) { t.observer = obs }

// SetHintObserver installs (or, with nil, removes) the callback receiving
// reply-piggybacked hint payloads. With no observer — or no endpoint
// provider — the piggyback machinery is completely inert.
func (t *Transport) SetHintObserver(obs HintObserver) { t.hintObs = obs }

// Retries returns the number of retransmissions performed so far.
func (t *Transport) Retries() uint64 { return t.retries.Load() }

// Timeouts returns the number of calls that failed with ErrTimeout.
func (t *Transport) Timeouts() uint64 { return t.timeouts.Load() }

// Confined reports whether ConfineHosts has switched the transport to
// per-host shard delivery.
func (t *Transport) Confined() bool { return t.confined }

// faulty reports whether any message-loss mechanism is installed. With no
// injector and no network hook, nothing is ever lost, so the confined call
// path can wait for replies without a timeout and the duplicate-suppression
// cache stays unallocated.
func (t *Transport) faulty() bool { return t.injector != nil || t.net.Hooked() }

// NewTransport returns an empty transport over the given network.
func NewTransport(s *sim.Simulation, net *netsim.Network, params Params) *Transport {
	return &Transport{
		sim:       s,
		net:       net,
		params:    params,
		endpoints: make(map[HostID]*Endpoint),
	}
}

// Register creates (or returns) the endpoint for a host. Registration must
// precede ConfineHosts: a confined transport's endpoint set is frozen, since
// every endpoint needs a request mailbox and dispatcher homed on its shard.
func (t *Transport) Register(host HostID) *Endpoint {
	if ep, ok := t.endpoints[host]; ok {
		return ep
	}
	if t.confined {
		panic(fmt.Sprintf("rpc: Register(%v) after ConfineHosts; confined transports have a frozen host set", host))
	}
	ep := &Endpoint{host: host, transport: t, services: make(map[string]Handler), epoch: 1}
	t.endpoints[host] = ep
	return ep
}

// Endpoint returns the endpoint for host, or nil if unregistered.
func (t *Transport) Endpoint(host HostID) *Endpoint { return t.endpoints[host] }

// Hosts returns all registered host ids in ascending order.
func (t *Transport) Hosts() []HostID {
	ids := make([]HostID, 0, len(t.endpoints))
	for id := range t.endpoints {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Network returns the underlying network model.
func (t *Transport) Network() *netsim.Network { return t.net }

// Stats returns a copy of the per-service call statistics.
func (t *Transport) Stats() map[string]CallStats {
	out := make(map[string]CallStats)
	t.stats.Range(func(k, v any) bool {
		st := v.(*svcStats)
		out[k.(string)] = CallStats{
			Calls: st.calls.Load(),
			Bytes: st.bytes.Load(),
			Errs:  st.errs.Load(),
		}
		return true
	})
	return out
}

// TotalCalls returns the total number of RPCs issued.
func (t *Transport) TotalCalls() uint64 {
	var n uint64
	t.stats.Range(func(_, v any) bool {
		n += v.(*svcStats).calls.Load()
		return true
	})
	return n
}

func (t *Transport) svc(service string) *svcStats {
	if v, ok := t.stats.Load(service); ok {
		return v.(*svcStats)
	}
	v, _ := t.stats.LoadOrStore(service, &svcStats{})
	return v.(*svcStats)
}

func (t *Transport) record(env *sim.Env, to HostID, service string, bytes int, failed bool) {
	st := t.svc(service)
	st.calls.Add(1)
	st.bytes.Add(uint64(bytes))
	if failed {
		st.errs.Add(1)
	}
	if t.m.reg == nil {
		return
	}
	slot := sim.WorkerSlot(env)
	t.m.calls.IncSlot(slot)
	t.m.bytes.AddSlot(slot, int64(bytes))
	hc := t.hostCounters(to)
	if hc != nil {
		hc.calls.IncSlot(slot)
		hc.bytes.AddSlot(slot, int64(bytes))
	}
	if failed {
		t.m.errs.IncSlot(slot)
		if hc != nil {
			hc.errs.IncSlot(slot)
		}
	}
}

// Endpoint is one host's attachment to the RPC fabric.
type Endpoint struct {
	host      HostID
	transport *Transport
	services  map[string]Handler
	down      bool
	epoch     Epoch
	hints     HintProvider

	// Confined-mode state (ConfineHosts): the host's shard, its request
	// mailbox (homed on that shard), and the client-side transaction id
	// sequence. xidSeq is only touched from the endpoint's home shard or
	// the exclusive shard, so it needs no atomics.
	shard  int
	reqBox *sim.Mailbox
	xidSeq uint64
}

// Host returns the endpoint's host id.
func (e *Endpoint) Host() HostID { return e.host }

// Handle registers a service handler, replacing any previous registration.
func (e *Endpoint) Handle(service string, h Handler) { e.services[service] = h }

// SetDown marks the host unreachable (failure injection); calls to it fail
// with ErrHostDown.
func (e *Endpoint) SetDown(down bool) { e.down = down }

// Down reports whether the host is marked unreachable.
func (e *Endpoint) Down() bool { return e.down }

// Epoch returns the host's current boot incarnation.
func (e *Endpoint) Epoch() Epoch { return e.epoch }

// SetHintProvider installs (or, with nil, removes) the provider whose
// payload is piggybacked on this endpoint's remote replies. The provider
// survives Restart: piggyback state is a property of the software running
// on the host, and reinstalling it on every reboot would lose hints queued
// by handlers that already ran under the new epoch.
func (e *Endpoint) SetHintProvider(p HintProvider) { e.hints = p }

// Restart brings the host back up under a new boot epoch. It is the
// transport-level half of a reboot: the address and service table survive,
// but every reply now advertises the new incarnation so peers can tell the
// host lost its volatile state.
func (e *Endpoint) Restart() {
	e.down = false
	e.epoch++
}

// Call performs a synchronous RPC from this endpoint's host to the named
// service on host `to`. argSize and the handler's replySize are charged to
// the network.
//
// Under fault injection a request or reply message can be lost; the client
// then waits CallTimeout, backs off, and retransmits, up to MaxRetries
// times. The server executes the handler at most once per call: a
// retransmission of an already-executed call is answered from the cached
// reply (duplicate suppression by transaction id, as in Sprite RPC).
func (e *Endpoint) Call(env *sim.Env, to HostID, service string, arg any, argSize int) (any, error) {
	t := e.transport
	target, ok := t.endpoints[to]
	if !ok {
		t.record(env, to, service, argSize, true)
		return nil, fmt.Errorf("%w: %v", ErrNoHost, to)
	}
	if target.down || e.down {
		t.record(env, to, service, argSize, true)
		return nil, fmt.Errorf("%w: %v", ErrHostDown, to)
	}
	if e.host == to {
		// Local shortcut: no network, no protocol overhead, no faults.
		h, ok := target.services[service]
		if !ok {
			t.record(env, to, service, argSize, true)
			return nil, fmt.Errorf("%w: %s on %v", ErrNoService, service, to)
		}
		reply, _, err := h(env, e.host, arg)
		t.record(env, to, service, 0, err != nil)
		return reply, err
	}
	if t.confined {
		// Per-host shard delivery: the handler runs on the server's shard,
		// reached through its request mailbox. The service lookup happens
		// server-side too — the services table is shard-local state.
		return e.callConfined(env, target, service, arg, argSize)
	}
	h, ok := target.services[service]
	if !ok {
		t.record(env, to, service, argSize, true)
		return nil, fmt.Errorf("%w: %s on %v", ErrNoService, service, to)
	}
	if err := env.Sleep(t.params.ClientOverhead); err != nil {
		return nil, err
	}
	executed := false
	var reply any
	var replySize int
	var herr error
	var hintPayload any
	for attempt := 0; ; attempt++ {
		// A host that went down between attempts fails fast, like a channel
		// reset in Sprite RPC.
		if target.down || e.down {
			t.record(env, to, service, argSize, true)
			return nil, fmt.Errorf("%w: %v", ErrHostDown, to)
		}
		var v Verdict
		if t.injector != nil {
			v = t.injector.Intercept(env, e.host, to, service, attempt)
		}
		if v.Delay > 0 {
			if err := env.Sleep(v.Delay); err != nil {
				return nil, err
			}
		}
		if v.DropRequest {
			if err := e.awaitRetry(env, to, service, attempt); err != nil {
				t.record(env, to, service, argSize, true)
				return nil, err
			}
			continue
		}
		if err := t.net.Send(env, argSize); err != nil {
			if errors.Is(err, netsim.ErrDropped) {
				if rerr := e.awaitRetry(env, to, service, attempt); rerr != nil {
					t.record(env, to, service, argSize, true)
					return nil, rerr
				}
				continue
			}
			return nil, err
		}
		if !executed {
			reply, replySize, herr = h(env, e.host, arg)
			if target.hints != nil {
				var hintSize int
				hintPayload, hintSize = target.hints()
				replySize += hintSize
			}
			executed = true
		}
		if v.Duplicate {
			// The duplicate request occupies the wire but is discarded by
			// the server's transaction check; the error (if the medium is
			// perturbed again) does not affect the call.
			_ = t.net.Send(env, argSize)
		}
		if v.DropReply {
			if err := e.awaitRetry(env, to, service, attempt); err != nil {
				t.record(env, to, service, argSize, true)
				return nil, err
			}
			continue
		}
		if nerr := t.net.Send(env, replySize); nerr != nil {
			if errors.Is(nerr, netsim.ErrDropped) {
				if rerr := e.awaitRetry(env, to, service, attempt); rerr != nil {
					t.record(env, to, service, argSize, true)
					return nil, rerr
				}
				continue
			}
			return nil, nerr
		}
		t.record(env, to, service, argSize+replySize, herr != nil)
		if t.observer != nil {
			t.observer(to, target.epoch)
		}
		if t.hintObs != nil && hintPayload != nil {
			t.hintObs(e.host, to, hintPayload)
		}
		return reply, herr
	}
}

// callTimeout returns the retransmission timeout, defaulted.
func (t *Transport) callTimeout() time.Duration {
	if t.params.CallTimeout > 0 {
		return t.params.CallTimeout
	}
	return 25 * time.Millisecond
}

// awaitRetry charges the client the retransmission timeout plus exponential
// backoff, or fails the call with ErrTimeout once the retry budget is spent.
func (e *Endpoint) awaitRetry(env *sim.Env, to HostID, service string, attempt int) error {
	if err := env.Sleep(e.transport.callTimeout()); err != nil {
		return err
	}
	return e.retryBookkeeping(env, to, service, attempt)
}

// retryBookkeeping is awaitRetry after the timeout has already elapsed (the
// confined path waits it out inside Mailbox.RecvTimeout): count the retry or
// the final timeout and charge the exponential backoff.
func (e *Endpoint) retryBookkeeping(env *sim.Env, to HostID, service string, attempt int) error {
	t := e.transport
	slot := sim.WorkerSlot(env)
	if attempt >= t.params.MaxRetries {
		t.timeouts.Add(1)
		if t.m.reg != nil {
			t.m.timeouts.IncSlot(slot)
		}
		return fmt.Errorf("%w: %s to %v after %d attempts", ErrTimeout, service, to, attempt+1)
	}
	t.retries.Add(1)
	if t.m.reg != nil {
		t.m.retries.IncSlot(slot)
	}
	if b := t.params.RetryBackoff; b > 0 {
		return env.Sleep(b << uint(attempt))
	}
	return nil
}

// Broadcast delivers arg to the named service on every other registered host
// that is up and implements it, returning the replies keyed by host. It
// models one multicast packet on the wire plus one reply message per
// responder.
// Broadcasts are unreliable datagrams: a host that misses the multicast or
// whose reply is lost simply looks like a non-responder, so fault injection
// prunes responders instead of triggering retransmission.
func (e *Endpoint) Broadcast(env *sim.Env, service string, arg any, argSize int) (map[HostID]any, error) {
	t := e.transport
	if t.confined && env.Shard() != 0 {
		panic(fmt.Sprintf("rpc: Broadcast(%s) from confined shard %d; broadcasts touch every host's state and are exclusive-only under confinement", service, env.Shard()))
	}
	if err := env.Sleep(t.params.ClientOverhead); err != nil {
		return nil, err
	}
	if err := t.net.Send(env, argSize); err != nil {
		if errors.Is(err, netsim.ErrDropped) {
			// The multicast itself was lost; nobody answers.
			return make(map[HostID]any), nil
		}
		return nil, err
	}
	replies := make(map[HostID]any)
	for _, id := range t.Hosts() {
		if id == e.host {
			continue
		}
		target := t.endpoints[id]
		if target.down {
			continue
		}
		h, ok := target.services[service]
		if !ok {
			continue
		}
		if t.injector != nil {
			v := t.injector.Intercept(env, e.host, id, service, 0)
			if v.DropRequest || v.DropReply {
				continue
			}
		}
		reply, replySize, err := h(env, e.host, arg)
		if err != nil {
			continue
		}
		if nerr := t.net.Send(env, replySize); nerr != nil {
			if errors.Is(nerr, netsim.ErrDropped) {
				continue
			}
			return nil, nerr
		}
		t.record(env, id, service+".bcast", argSize+replySize, false)
		if t.observer != nil {
			t.observer(id, target.epoch)
		}
		replies[id] = reply
	}
	return replies, nil
}
