package rpc

import (
	"errors"
	"testing"
	"time"

	"sprite/internal/netsim"
	"sprite/internal/sim"
)

func newFabric(t *testing.T, hosts int) (*sim.Simulation, *Transport) {
	t.Helper()
	s := sim.New(1)
	net := netsim.New(s, netsim.Params{Latency: time.Millisecond, BandwidthBytesPerSec: 1e6})
	tr := NewTransport(s, net, Params{ClientOverhead: time.Millisecond})
	for i := 1; i <= hosts; i++ {
		tr.Register(HostID(i))
	}
	return s, tr
}

func TestCallRoundTrip(t *testing.T) {
	s, tr := newFabric(t, 2)
	tr.Endpoint(2).Handle("echo", func(env *sim.Env, from HostID, arg any) (any, int, error) {
		return arg, 100, nil
	})
	var got any
	var took time.Duration
	s.Spawn("caller", func(env *sim.Env) error {
		v, err := tr.Endpoint(1).Call(env, 2, "echo", "hello", 100)
		if err != nil {
			return err
		}
		got = v
		took = env.Now()
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Fatalf("got %v", got)
	}
	// overhead 1ms + 2 messages: each 1ms latency + 0.1ms transfer = 3.2ms
	want := time.Millisecond + 2*(time.Millisecond+100*time.Microsecond)
	if took != want {
		t.Fatalf("round trip %v, want %v", took, want)
	}
}

func TestLocalCallIsFree(t *testing.T) {
	s, tr := newFabric(t, 1)
	tr.Endpoint(1).Handle("ping", func(env *sim.Env, from HostID, arg any) (any, int, error) {
		return "pong", 4, nil
	})
	var took time.Duration
	s.Spawn("caller", func(env *sim.Env) error {
		if _, err := tr.Endpoint(1).Call(env, 1, "ping", nil, 4); err != nil {
			return err
		}
		took = env.Now()
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if took != 0 {
		t.Fatalf("local call took %v, want 0", took)
	}
	if tr.Network().Messages() != 0 {
		t.Fatal("local call should not touch the network")
	}
}

func TestCallErrors(t *testing.T) {
	s, tr := newFabric(t, 2)
	var noSvc, noHost, down error
	s.Spawn("caller", func(env *sim.Env) error {
		_, noSvc = tr.Endpoint(1).Call(env, 2, "missing", nil, 1)
		_, noHost = tr.Endpoint(1).Call(env, 99, "x", nil, 1)
		tr.Endpoint(2).SetDown(true)
		tr.Endpoint(2).Handle("x", func(env *sim.Env, from HostID, arg any) (any, int, error) {
			return nil, 0, nil
		})
		_, down = tr.Endpoint(1).Call(env, 2, "x", nil, 1)
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(noSvc, ErrNoService) {
		t.Fatalf("noSvc = %v", noSvc)
	}
	if !errors.Is(noHost, ErrNoHost) {
		t.Fatalf("noHost = %v", noHost)
	}
	if !errors.Is(down, ErrHostDown) {
		t.Fatalf("down = %v", down)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	s, tr := newFabric(t, 2)
	sentinel := errors.New("kaboom")
	tr.Endpoint(2).Handle("fail", func(env *sim.Env, from HostID, arg any) (any, int, error) {
		return nil, 0, sentinel
	})
	var got error
	s.Spawn("caller", func(env *sim.Env) error {
		_, got = tr.Endpoint(1).Call(env, 2, "fail", nil, 1)
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got, sentinel) {
		t.Fatalf("got %v", got)
	}
	st := tr.Stats()["fail"]
	if st.Calls != 1 || st.Errs != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBroadcastCollectsReplies(t *testing.T) {
	s, tr := newFabric(t, 4)
	for i := 2; i <= 4; i++ {
		id := HostID(i)
		tr.Endpoint(id).Handle("idle?", func(env *sim.Env, from HostID, arg any) (any, int, error) {
			if id == 3 {
				return nil, 0, errors.New("busy")
			}
			return id, 8, nil
		})
	}
	var replies map[HostID]any
	s.Spawn("caller", func(env *sim.Env) error {
		var err error
		replies, err = tr.Endpoint(1).Broadcast(env, "idle?", nil, 16)
		return err
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(replies) != 2 {
		t.Fatalf("replies = %v", replies)
	}
	if replies[2] != HostID(2) || replies[4] != HostID(4) {
		t.Fatalf("replies = %v", replies)
	}
}

func TestStatsAccumulate(t *testing.T) {
	s, tr := newFabric(t, 2)
	tr.Endpoint(2).Handle("svc", func(env *sim.Env, from HostID, arg any) (any, int, error) {
		return nil, 50, nil
	})
	s.Spawn("caller", func(env *sim.Env) error {
		for i := 0; i < 3; i++ {
			if _, err := tr.Endpoint(1).Call(env, 2, "svc", nil, 50); err != nil {
				return err
			}
		}
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()["svc"]
	if st.Calls != 3 || st.Bytes != 300 {
		t.Fatalf("stats = %+v", st)
	}
	if tr.TotalCalls() != 3 {
		t.Fatalf("total = %d", tr.TotalCalls())
	}
}

func TestHostsSorted(t *testing.T) {
	_, tr := newFabric(t, 3)
	ids := tr.Hosts()
	if len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
		t.Fatalf("hosts = %v", ids)
	}
}

// TestHintPiggyback: a hint provider installed on the server endpoint rides
// on ordinary replies — the observer sees (caller, server, payload) on the
// caller's side, and the hint's size is charged to the reply message.
func TestHintPiggyback(t *testing.T) {
	s, tr := newFabric(t, 2)
	tr.Endpoint(2).Handle("svc", func(env *sim.Env, from HostID, arg any) (any, int, error) {
		return "reply", 100, nil
	})
	tr.Endpoint(2).SetHintProvider(func() (any, int) {
		return "evict host9", 12
	})
	type seen struct {
		caller, server HostID
		payload        any
	}
	var got []seen
	tr.SetHintObserver(func(caller, server HostID, payload any) {
		got = append(got, seen{caller, server, payload})
	})
	var plain, hinted time.Duration
	s.Spawn("caller", func(env *sim.Env) error {
		t0 := env.Now()
		if _, err := tr.Endpoint(1).Call(env, 2, "svc", nil, 100); err != nil {
			return err
		}
		hinted = env.Now() - t0
		// Same call with the provider removed: the reply is 12 bytes lighter.
		tr.Endpoint(2).SetHintProvider(nil)
		t0 = env.Now()
		if _, err := tr.Endpoint(1).Call(env, 2, "svc", nil, 100); err != nil {
			return err
		}
		plain = env.Now() - t0
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("observer fired %d times, want 1", len(got))
	}
	if got[0].caller != 1 || got[0].server != 2 || got[0].payload != "evict host9" {
		t.Fatalf("observed %+v", got[0])
	}
	if hinted <= plain {
		t.Fatalf("hinted reply (%v) should cost more than plain reply (%v): hint bytes not charged", hinted, plain)
	}
}

// TestHintPiggybackInertWhenEmpty: a provider returning (nil, 0) adds no
// bytes and never reaches the observer — quiet endpoints keep default runs
// byte-identical.
func TestHintPiggybackInertWhenEmpty(t *testing.T) {
	s, tr := newFabric(t, 2)
	tr.Endpoint(2).Handle("svc", func(env *sim.Env, from HostID, arg any) (any, int, error) {
		return nil, 100, nil
	})
	fired := 0
	tr.SetHintObserver(func(caller, server HostID, payload any) { fired++ })
	var withProvider time.Duration
	s.Spawn("caller", func(env *sim.Env) error {
		t0 := env.Now()
		if _, err := tr.Endpoint(1).Call(env, 2, "svc", nil, 100); err != nil {
			return err
		}
		base := env.Now() - t0
		tr.Endpoint(2).SetHintProvider(func() (any, int) { return nil, 0 })
		t0 = env.Now()
		if _, err := tr.Endpoint(1).Call(env, 2, "svc", nil, 100); err != nil {
			return err
		}
		withProvider = env.Now() - t0
		if withProvider != base {
			t.Errorf("empty provider changed reply timing: %v vs %v", withProvider, base)
		}
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("observer fired %d times for empty hints, want 0", fired)
	}
}

// TestHintPiggybackSkipsLocalShortcut: same-host calls bypass the network
// and carry no piggyback.
func TestHintPiggybackSkipsLocalShortcut(t *testing.T) {
	s, tr := newFabric(t, 1)
	tr.Endpoint(1).Handle("svc", func(env *sim.Env, from HostID, arg any) (any, int, error) {
		return nil, 4, nil
	})
	tr.Endpoint(1).SetHintProvider(func() (any, int) { return "hint", 4 })
	fired := 0
	tr.SetHintObserver(func(caller, server HostID, payload any) { fired++ })
	s.Spawn("caller", func(env *sim.Env) error {
		_, err := tr.Endpoint(1).Call(env, 1, "svc", nil, 4)
		return err
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("observer fired %d times on a local call, want 0", fired)
	}
}

// TestHintProviderSurvivesRestart: like handlers, the provider is part of
// the host's configuration, not its volatile state.
func TestHintProviderSurvivesRestart(t *testing.T) {
	s, tr := newFabric(t, 2)
	tr.Endpoint(2).Handle("svc", func(env *sim.Env, from HostID, arg any) (any, int, error) {
		return nil, 4, nil
	})
	tr.Endpoint(2).SetHintProvider(func() (any, int) { return "still here", 4 })
	fired := 0
	tr.SetHintObserver(func(caller, server HostID, payload any) { fired++ })
	tr.Endpoint(2).SetDown(true)
	tr.Endpoint(2).Restart()
	s.Spawn("caller", func(env *sim.Env) error {
		_, err := tr.Endpoint(1).Call(env, 2, "svc", nil, 4)
		return err
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("observer fired %d times after restart, want 1", fired)
	}
}
