package rpc

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"sprite/internal/netsim"
	"sprite/internal/sim"
)

// confFP fingerprints everything observable about one confined-fabric run:
// the committed order digest, the virtual clock, every client's reply log,
// per-host handler execution counts, and the transport/network counters.
type confFP struct {
	digest   uint64
	now      time.Duration
	replies  string
	execs    string
	calls    uint64
	retries  uint64
	timeouts uint64
	messages uint64
	bytes    uint64
	runErr   string
}

func (fp confFP) String() string {
	return fmt.Sprintf("digest=%016x now=%v calls=%d retries=%d timeouts=%d msgs=%d bytes=%d runErr=%q\nexecs=%q\nreplies=%q",
		fp.digest, fp.now, fp.calls, fp.retries, fp.timeouts, fp.messages, fp.bytes, fp.runErr, fp.execs, fp.replies)
}

// pureInjector drops/duplicates/delays messages as a pure function of
// (from, to, service, attempt), so verdicts are identical no matter which
// worker asks, in which order.
type pureInjector struct{}

func (pureInjector) Intercept(env *sim.Env, from, to HostID, service string, attempt int) Verdict {
	if attempt > 0 {
		return Verdict{}
	}
	k := int(from)*7 + int(to)*13 + len(service)
	return Verdict{
		DropRequest: k%5 == 0,
		DropReply:   k%5 != 0 && k%3 == 0,
		Duplicate:   k%4 == 0,
		Delay:       time.Duration(k%3) * 100 * time.Microsecond,
	}
}

// runConfinedFabric builds an H-host confined fabric (host i on shard i),
// runs one ring-calling client per host, and fingerprints the result.
// Handlers charge virtual time on the server's shard, so calls overlap
// across hosts under the parallel kernel.
func runConfinedFabric(t *testing.T, seed int64, hosts, callsPerHost, workers int, faulty bool) confFP {
	t.Helper()
	const latency = time.Millisecond
	s := sim.New(seed)
	s.SetLookahead(latency)
	if workers > 0 {
		s.ConfigureParallel(workers)
	}
	net := netsim.New(s, netsim.Params{Latency: latency, BandwidthBytesPerSec: 1e7})
	tr := NewTransport(s, net, DefaultParams())
	if faulty {
		tr.SetInjector(pureInjector{})
	}
	execs := make([]int, hosts+1)
	for i := 1; i <= hosts; i++ {
		host := HostID(i)
		ep := tr.Register(host)
		ep.Handle("work", func(env *sim.Env, from HostID, arg any) (any, int, error) {
			execs[int(host)]++
			n := arg.(int)
			if err := env.Sleep(time.Duration(n%5+1) * 200 * time.Microsecond); err != nil {
				return nil, 0, err
			}
			return n * 2, 64 + n%32, nil
		})
	}
	tr.ConfineHosts(func(h HostID) int { return int(h) })

	logs := make([]string, hosts+1)
	for i := 1; i <= hosts; i++ {
		host := HostID(i)
		s.SpawnOn(int(host), fmt.Sprintf("client-%v", host), func(env *sim.Env) error {
			var b strings.Builder
			for c := 0; c < callsPerHost; c++ {
				to := HostID((int(host)+c)%hosts + 1)
				if to == host {
					to = HostID(int(to)%hosts + 1)
				}
				v, err := tr.Endpoint(host).Call(env, to, "work", int(host)*100+c, 96)
				fmt.Fprintf(&b, "%v->%v c%d v=%v err=%v @%d\n", host, to, c, v, err, env.Now()/time.Microsecond)
			}
			logs[int(host)] = b.String()
			return nil
		})
	}
	err := s.Run(0)
	fp := confFP{
		digest:   s.OrderDigest(),
		now:      s.Now(),
		replies:  strings.Join(logs, ""),
		calls:    tr.TotalCalls(),
		retries:  tr.Retries(),
		timeouts: tr.Timeouts(),
		messages: net.Messages(),
		bytes:    net.Bytes(),
	}
	var eb strings.Builder
	for i := 1; i <= hosts; i++ {
		fmt.Fprintf(&eb, "%d:%d ", i, execs[i])
	}
	fp.execs = eb.String()
	if err != nil {
		fp.runErr = err.Error()
	}
	return fp
}

// TestConfinedCallEquivalence pins the tentpole property at the rpc layer:
// with hosts confined, the serial oracle and the parallel kernel commit
// byte-identical outcomes at any worker count, with and without faults.
func TestConfinedCallEquivalence(t *testing.T) {
	for _, faulty := range []bool{false, true} {
		for _, seed := range []int64{1, 42} {
			serial := runConfinedFabric(t, seed, 8, 12, 0, faulty)
			for _, workers := range []int{1, 2, 4, 8} {
				got := runConfinedFabric(t, seed, 8, 12, workers, faulty)
				if got != serial {
					t.Fatalf("seed %d faulty=%v workers %d diverged:\nserial: %v\npar:    %v",
						seed, faulty, workers, serial, got)
				}
			}
		}
	}
}

// TestConfinedAtMostOnce drives a reply-loss retransmission through the
// confined path and checks Sprite RPC's at-most-once contract: the handler
// runs exactly once, the retransmission is answered from the cached reply,
// and the retry is counted.
func TestConfinedAtMostOnce(t *testing.T) {
	for _, workers := range []int{0, 4} {
		s := sim.New(1)
		s.SetLookahead(time.Millisecond)
		if workers > 0 {
			s.ConfigureParallel(workers)
		}
		net := netsim.New(s, netsim.Params{Latency: time.Millisecond, BandwidthBytesPerSec: 1e7})
		tr := NewTransport(s, net, DefaultParams())
		tr.SetInjector(dropFirstReply{})
		execs := 0
		tr.Register(1)
		tr.Register(2).Handle("once", func(env *sim.Env, from HostID, arg any) (any, int, error) {
			execs++
			return "done", 16, nil
		})
		tr.ConfineHosts(func(h HostID) int { return int(h) })
		var got any
		var gerr error
		s.SpawnOn(1, "caller", func(env *sim.Env) error {
			got, gerr = tr.Endpoint(1).Call(env, 2, "once", nil, 32)
			return nil
		})
		if err := s.Run(0); err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if gerr != nil || got != "done" {
			t.Fatalf("workers %d: got %v, %v", workers, got, gerr)
		}
		if execs != 1 {
			t.Fatalf("workers %d: handler ran %d times, want exactly once", workers, execs)
		}
		if tr.Retries() != 1 || tr.Timeouts() != 0 {
			t.Fatalf("workers %d: retries=%d timeouts=%d, want 1/0", workers, tr.Retries(), tr.Timeouts())
		}
	}
}

type dropFirstReply struct{}

func (dropFirstReply) Intercept(env *sim.Env, from, to HostID, service string, attempt int) Verdict {
	return Verdict{DropReply: attempt == 0}
}

// TestConfinedSlowHandlerRetransmit parks a retransmission behind a handler
// still executing (slower than the call timeout): the duplicate must wait for
// the first execution instead of starting a second one.
func TestConfinedSlowHandlerRetransmit(t *testing.T) {
	for _, workers := range []int{0, 4} {
		s := sim.New(1)
		s.SetLookahead(time.Millisecond)
		if workers > 0 {
			s.ConfigureParallel(workers)
		}
		net := netsim.New(s, netsim.Params{Latency: time.Millisecond, BandwidthBytesPerSec: 1e7})
		tr := NewTransport(s, net, DefaultParams())
		tr.SetInjector(dropFirstReply{})
		execs := 0
		tr.Register(1)
		tr.Register(2).Handle("slow", func(env *sim.Env, from HostID, arg any) (any, int, error) {
			execs++
			if err := env.Sleep(60 * time.Millisecond); err != nil {
				return nil, 0, err
			}
			return "slow-done", 16, nil
		})
		tr.ConfineHosts(func(h HostID) int { return int(h) })
		var got any
		var gerr error
		s.SpawnOn(1, "caller", func(env *sim.Env) error {
			got, gerr = tr.Endpoint(1).Call(env, 2, "slow", nil, 32)
			return nil
		})
		if err := s.Run(0); err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if gerr != nil || got != "slow-done" {
			t.Fatalf("workers %d: got %v, %v", workers, got, gerr)
		}
		if execs != 1 {
			t.Fatalf("workers %d: handler ran %d times, want exactly once", workers, execs)
		}
	}
}

// TestConfinedErrors checks that the server-side service lookup and the
// down-host reset surface the same sentinel errors as the inline path.
func TestConfinedErrors(t *testing.T) {
	s := sim.New(1)
	s.SetLookahead(time.Millisecond)
	net := netsim.New(s, netsim.Params{Latency: time.Millisecond, BandwidthBytesPerSec: 1e7})
	tr := NewTransport(s, net, DefaultParams())
	tr.Register(1)
	tr.Register(2)
	tr.ConfineHosts(func(h HostID) int { return int(h) })
	var noSvc, noHost error
	s.SpawnOn(1, "caller", func(env *sim.Env) error {
		_, noSvc = tr.Endpoint(1).Call(env, 2, "missing", nil, 8)
		_, noHost = tr.Endpoint(1).Call(env, 9, "missing", nil, 8)
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(noSvc, ErrNoService) {
		t.Fatalf("missing service: %v", noSvc)
	}
	if !errors.Is(noHost, ErrNoHost) {
		t.Fatalf("missing host: %v", noHost)
	}
}

// TestConfinedEpochAndHints checks the reply piggybacks survive the mailbox
// hop: the epoch observer and hint observer fire client-side with the values
// captured at handler execution.
func TestConfinedEpochAndHints(t *testing.T) {
	s := sim.New(1)
	s.SetLookahead(time.Millisecond)
	net := netsim.New(s, netsim.Params{Latency: time.Millisecond, BandwidthBytesPerSec: 1e7})
	tr := NewTransport(s, net, DefaultParams())
	tr.Register(1)
	srv := tr.Register(2)
	srv.Handle("ping", func(env *sim.Env, from HostID, arg any) (any, int, error) {
		return "pong", 8, nil
	})
	srv.SetHintProvider(func() (any, int) { return "hint-payload", 12 })
	var seenEpoch Epoch
	var seenHint any
	tr.SetEpochObserver(func(h HostID, e Epoch) {
		if h == 2 {
			seenEpoch = e
		}
	})
	tr.SetHintObserver(func(caller, server HostID, payload any) { seenHint = payload })
	srv.Restart() // epoch 2
	tr.ConfineHosts(func(h HostID) int { return int(h) })
	s.SpawnOn(1, "caller", func(env *sim.Env) error {
		_, err := tr.Endpoint(1).Call(env, 2, "ping", nil, 8)
		return err
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if seenEpoch != 2 {
		t.Fatalf("epoch piggyback: got %d, want 2", seenEpoch)
	}
	if seenHint != "hint-payload" {
		t.Fatalf("hint piggyback: got %v", seenHint)
	}
}

// TestConfinedBulkEquivalence runs bulk transfers in both directions across
// confined hosts and pins serial/parallel byte-identity.
func TestConfinedBulkEquivalence(t *testing.T) {
	run := func(workers int) confFP {
		const latency = time.Millisecond
		s := sim.New(3)
		s.SetLookahead(latency)
		if workers > 0 {
			s.ConfigureParallel(workers)
		}
		net := netsim.New(s, netsim.Params{Latency: latency, BandwidthBytesPerSec: 1e7})
		tr := NewTransport(s, net, DefaultParams())
		hosts := 4
		for i := 1; i <= hosts; i++ {
			host := HostID(i)
			tr.Register(host).Handle("xfer", func(env *sim.Env, from HostID, arg any) (any, int, error) {
				n := arg.(int)
				if err := env.Sleep(300 * time.Microsecond); err != nil {
					return nil, 0, err
				}
				return n + 1, 40 << 10, nil
			})
		}
		tr.ConfineHosts(func(h HostID) int { return int(h) })
		logs := make([]string, hosts+1)
		for i := 1; i <= hosts; i++ {
			host := HostID(i)
			s.SpawnOn(int(host), fmt.Sprintf("bulk-%v", host), func(env *sim.Env) error {
				var b strings.Builder
				to := HostID(int(host)%hosts + 1)
				for c := 0; c < 3; c++ {
					dir := BulkOut
					if c%2 == 1 {
						dir = BulkIn
					}
					v, bs, err := tr.Endpoint(host).CallBulk(env, to, "xfer", c, 128, 100<<10, dir)
					fmt.Fprintf(&b, "%v->%v c%d v=%v frags=%d bytes=%d err=%v @%d\n",
						host, to, c, v, bs.Fragments, bs.Bytes, err, env.Now()/time.Microsecond)
				}
				logs[int(host)] = b.String()
				return nil
			})
		}
		err := s.Run(0)
		fp := confFP{
			digest:   s.OrderDigest(),
			now:      s.Now(),
			replies:  strings.Join(logs, ""),
			calls:    tr.TotalCalls(),
			messages: net.Messages(),
			bytes:    net.Bytes(),
		}
		if err != nil {
			fp.runErr = err.Error()
		}
		return fp
	}
	serial := run(0)
	if serial.runErr != "" {
		t.Fatalf("serial run: %v", serial.runErr)
	}
	for _, workers := range []int{1, 2, 4} {
		if got := run(workers); got != serial {
			t.Fatalf("workers %d diverged:\nserial: %v\npar:    %v", workers, serial, got)
		}
	}
}

// TestConfinedBroadcastPanics pins the confinement contract: broadcasts read
// every host's state inline and are exclusive-only once hosts are confined.
func TestConfinedBroadcastPanics(t *testing.T) {
	s := sim.New(1)
	s.SetLookahead(time.Millisecond)
	net := netsim.New(s, netsim.Params{Latency: time.Millisecond, BandwidthBytesPerSec: 1e7})
	tr := NewTransport(s, net, DefaultParams())
	tr.Register(1)
	tr.Register(2)
	tr.ConfineHosts(func(h HostID) int { return int(h) })
	panicked := false
	s.SpawnOn(1, "caster", func(env *sim.Env) error {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		_, _ = tr.Endpoint(1).Broadcast(env, "svc", nil, 8)
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("Broadcast from a confined activity should panic")
	}
}

// TestConfinedRPCStorm saturates a confined fabric with concurrent
// cross-host traffic — every host calling every other, with faults — and
// checks serial/parallel identity. Run under -race this doubles as the
// data-race probe for the whole confined call path.
func TestConfinedRPCStorm(t *testing.T) {
	serial := runConfinedFabric(t, 99, 12, 20, 0, true)
	for _, workers := range []int{2, 4, 8} {
		if got := runConfinedFabric(t, 99, 12, 20, workers, true); got != serial {
			t.Fatalf("storm workers %d diverged:\nserial: %v\npar:    %v", workers, serial, got)
		}
	}
}
