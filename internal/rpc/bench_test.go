package rpc

import (
	"testing"

	"sprite/internal/sim"
)

// BenchmarkCallBulk measures the bulk-transfer hot path: one handshake plus
// a windowed pipeline of fragments moving 256 KiB.
func BenchmarkCallBulk(b *testing.B) {
	benchTransfer(b, func(env *sim.Env, tr *Transport) error {
		_, _, err := tr.Endpoint(1).CallBulk(env, 2, "blob", nil, 64, 256<<10, BulkOut)
		return err
	})
}

// BenchmarkCallPerFragment is the ablation: the same 256 KiB as sixteen
// independent synchronous calls, each paying a full round trip.
func BenchmarkCallPerFragment(b *testing.B) {
	benchTransfer(b, func(env *sim.Env, tr *Transport) error {
		for i := 0; i < 16; i++ {
			if _, err := tr.Endpoint(1).Call(env, 2, "blob", nil, 16<<10); err != nil {
				return err
			}
		}
		return nil
	})
}

func benchTransfer(b *testing.B, xfer func(env *sim.Env, tr *Transport) error) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, tr := newBulkFabric(b, 2)
		tr.Endpoint(2).Handle("blob", func(env *sim.Env, from HostID, arg any) (any, int, error) {
			return nil, 16, nil
		})
		s.Spawn("caller", func(env *sim.Env) error {
			return xfer(env, tr)
		})
		if err := s.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}
