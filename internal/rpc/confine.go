// Confined-mode RPC: per-host shard delivery.
//
// The default transport executes a service handler inline in the calling
// activity, which is only safe when every activity runs exclusively. When the
// cluster confines each host to its own shard (sim.SpawnOn), a handler must
// run on the *server's* shard — it touches the server host's kernel state —
// so the request travels through a mailbox homed there, a dispatcher daemon
// spawns a handler activity per request, and the reply travels back through a
// per-call mailbox homed on the caller's shard. Both legs carry propagation
// latency plus size-dependent transfer time, and the latency doubles as the
// conservative lookahead bound, so deliveries always land beyond the current
// window's horizon.
//
// Loss recovery keeps Sprite RPC's shape: the client retransmits after
// CallTimeout with exponential backoff, and the server suppresses duplicates
// by (caller, transaction id), answering retransmissions of an executed call
// from the cached reply without re-running the handler (at-most-once, after
// Birrell & Nelson). With no injector and no network hook nothing is ever
// lost, so the client waits without a timeout and the cache is never
// allocated — the fleet-scale no-fault runs pay none of the bookkeeping.
package rpc

import (
	"errors"
	"fmt"

	"sprite/internal/sim"
)

// ConfineHosts switches the transport to per-host shard delivery: every
// registered endpoint is assigned the shard shardOf(host), given a request
// mailbox homed there, and served by a dispatcher daemon spawned on it.
// Call then routes every remote call through the mailboxes under both
// kernels, so serial runs replay the exact event sequence parallel runs
// commit.
//
// ConfineHosts must run after all hosts are registered and before Run, from
// the exclusive setup context. It refuses a contended network (the shared
// medium is cluster-global state no shard may block on) and requires
// 0 < lookahead <= one-way latency, the conservative contract that makes
// cross-shard delivery safe.
func (t *Transport) ConfineHosts(shardOf func(HostID) int) {
	if t.confined {
		panic("rpc: ConfineHosts called twice")
	}
	if shardOf == nil {
		panic("rpc: ConfineHosts with nil shardOf")
	}
	if t.net.Contended() {
		panic("rpc: ConfineHosts over a contended network; the shared medium serializes all hosts")
	}
	la := t.sim.Lookahead()
	if lat := t.net.Latency(); la <= 0 || lat < la {
		panic(fmt.Sprintf("rpc: ConfineHosts needs 0 < lookahead <= latency (lookahead %v, latency %v)", la, lat))
	}
	t.shardOf = shardOf
	if t.m.reg != nil {
		t.precreateHostCounters()
	}
	t.confined = true
	for _, id := range t.Hosts() {
		ep := t.endpoints[id]
		shard := shardOf(id)
		if shard <= 0 {
			panic(fmt.Sprintf("rpc: ConfineHosts mapped %v to shard %d; hosts need confined shards (> 0)", id, shard))
		}
		ep.shard = shard
		ep.reqBox = sim.NewMailboxOn(t.sim, shard, t.net.Latency())
		t.sim.SpawnOn(shard, fmt.Sprintf("rpcd-%v", id), ep.dispatchLoop)
	}
}

// confReq is one request message: everything the server needs to execute the
// call and route the reply home.
type confReq struct {
	from    HostID
	xid     uint64
	service string
	arg     any
	reply   *sim.Mailbox // homed on the caller's shard

	// dup marks the wasted wire image of a Duplicate verdict; the server's
	// transaction check discards it without touching the call.
	dup bool
	// dropReply marks this attempt's reply as eaten by the injector: the
	// server executes (and caches) but withholds the answer.
	dropReply bool
	// internal marks a bulk-transfer execution hop: the wire cost of the
	// payload was already charged by the fragment stream, so the reply
	// rides back on bare latency with no accounting and no piggybacks.
	internal bool
}

// confReply is the server's answer, carrying the reply piggybacks that
// ordinary traffic spreads: the boot epoch and the hint payload.
type confReply struct {
	value any
	size  int
	err   error
	epoch Epoch
	hint  any
}

// confKey identifies a transaction for duplicate suppression. Transaction
// ids are per calling endpoint, so the caller is part of the key.
type confKey struct {
	from HostID
	xid  uint64
}

// confEntry tracks one transaction on the server: rep is nil while the
// handler is still executing, and retransmissions that arrive in that window
// park in pending to be answered when it finishes — the handler still runs
// exactly once.
type confEntry struct {
	rep     *confReply
	pending []*confReq
}

// dispatchLoop is the endpoint's server daemon: it receives requests from
// the host's mailbox and spawns a handler activity per call, so a slow
// handler (disk, nested RPC) never head-of-line-blocks the endpoint. It is
// a daemon — bounded runs quiesce cleanly with it parked in Recv.
func (ep *Endpoint) dispatchLoop(env *sim.Env) error {
	env.MarkDaemon()
	t := ep.transport
	var cache map[confKey]*confEntry
	for {
		v, err := ep.reqBox.Recv(env)
		if err != nil {
			return nil
		}
		req := v.(*confReq)
		if req.dup {
			// The duplicate occupied the wire; the transaction check
			// discards it.
			continue
		}
		if ep.down {
			// A down host answers with a channel reset rather than
			// leaving the caller to hang on an internal hop.
			ep.sendConfReply(env, req, &confReply{
				err:   fmt.Errorf("%w: %v", ErrHostDown, ep.host),
				epoch: ep.epoch,
			})
			continue
		}
		if req.internal {
			// Bulk execution hop: reliable, no transaction bookkeeping.
			ep.execAsync(env, req, nil)
			continue
		}
		if t.faulty() && cache == nil {
			cache = make(map[confKey]*confEntry)
		}
		if cache == nil {
			ep.execAsync(env, req, nil)
			continue
		}
		k := confKey{req.from, req.xid}
		if ent, ok := cache[k]; ok {
			if ent.rep != nil {
				// Retransmission of an executed call: answer from the
				// cached reply, handler not re-run.
				ep.sendConfReply(env, req, ent.rep)
			} else {
				ent.pending = append(ent.pending, req)
			}
			continue
		}
		ent := &confEntry{}
		cache[k] = ent
		ep.execAsync(env, req, ent)
	}
}

// execAsync runs the handler in a fresh activity on the server's shard and
// routes the reply (and any parked retransmissions') back to the caller.
func (ep *Endpoint) execAsync(env *sim.Env, req *confReq, ent *confEntry) {
	env.Spawn(fmt.Sprintf("rpc-%v-%s", ep.host, req.service), func(henv *sim.Env) error {
		rep := ep.execConfined(henv, req)
		if ent != nil {
			ent.rep = rep
			pending := ent.pending
			ent.pending = nil
			for _, dup := range pending {
				ep.sendConfReply(henv, dup, rep)
			}
		}
		ep.sendConfReply(henv, req, rep)
		return nil
	})
}

// execConfined looks the service up and runs it on the server's shard,
// capturing the reply piggybacks at execution time so a retransmitted
// (cached) reply carries the same epoch and hints.
func (ep *Endpoint) execConfined(env *sim.Env, req *confReq) *confReply {
	h, ok := ep.services[req.service]
	if !ok {
		return &confReply{
			err:   fmt.Errorf("%w: %s on %v", ErrNoService, req.service, ep.host),
			epoch: ep.epoch,
		}
	}
	value, size, herr := h(env, req.from, req.arg)
	rep := &confReply{value: value, size: size, err: herr, epoch: ep.epoch}
	if !req.internal && ep.hints != nil {
		var hs int
		rep.hint, hs = ep.hints()
		rep.size += hs
	}
	return rep
}

// sendConfReply books the reply on the network and posts it to the caller's
// mailbox. A dropReply attempt or a hook drop withholds it — the caller's
// timeout does the rest.
func (ep *Endpoint) sendConfReply(env *sim.Env, req *confReq, rep *confReply) {
	t := ep.transport
	if req.internal {
		req.reply.SendAfter(env, rep, t.net.Latency())
		return
	}
	if req.dropReply {
		return
	}
	xfer, extra, drop := t.net.Account(env, rep.size)
	if drop {
		return
	}
	req.reply.SendAfter(env, rep, t.net.Latency()+xfer+extra)
}

// callConfined is Call's remote path under confinement: the Sprite RPC
// client loop with the handler execution moved to the server's shard. The
// injector's verdicts are still taken client-side, once per attempt, in the
// same order as the inline path.
func (e *Endpoint) callConfined(env *sim.Env, target *Endpoint, service string, arg any, argSize int) (any, error) {
	t := e.transport
	to := target.host
	if s := env.Shard(); s != 0 && s != e.shard {
		panic(fmt.Sprintf("rpc: call via %v's endpoint from foreign shard %d (home %d)", e.host, s, e.shard))
	}
	if err := env.Sleep(t.params.ClientOverhead); err != nil {
		return nil, err
	}
	replyBox := sim.NewMailboxOn(t.sim, env.Shard(), 0)
	e.xidSeq++
	xid := e.xidSeq
	for attempt := 0; ; attempt++ {
		// A host that went down between attempts fails fast, like a channel
		// reset in Sprite RPC.
		if target.down || e.down {
			t.record(env, to, service, argSize, true)
			return nil, fmt.Errorf("%w: %v", ErrHostDown, to)
		}
		var v Verdict
		if t.injector != nil {
			v = t.injector.Intercept(env, e.host, to, service, attempt)
		}
		if v.Delay > 0 {
			if err := env.Sleep(v.Delay); err != nil {
				return nil, err
			}
		}
		sent := false
		if !v.DropRequest {
			xfer, extra, drop := t.net.Account(env, argSize)
			if !drop {
				target.reqBox.SendAfter(env, &confReq{
					from: e.host, xid: xid, service: service, arg: arg,
					reply: replyBox, dropReply: v.DropReply,
				}, t.net.Latency()+xfer+extra)
				sent = true
				if v.Duplicate {
					// The duplicate occupies the wire; the server's
					// transaction check discards it on arrival.
					if dxfer, dextra, ddrop := t.net.Account(env, argSize); !ddrop {
						target.reqBox.SendAfter(env, &confReq{
							from: e.host, xid: xid, service: service, dup: true, reply: replyBox,
						}, t.net.Latency()+dxfer+dextra)
					}
				}
			}
		}
		if sent {
			var rv any
			var rerr error
			if t.faulty() {
				rv, rerr = replyBox.RecvTimeout(env, t.callTimeout())
			} else {
				// Nothing can be lost: wait for the reply however long the
				// handler takes, exactly like the inline path.
				rv, rerr = replyBox.Recv(env)
			}
			if rerr == nil {
				rep := rv.(*confReply)
				t.record(env, to, service, argSize+rep.size, rep.err != nil)
				if t.observer != nil {
					t.observer(to, rep.epoch)
				}
				if t.hintObs != nil && rep.hint != nil {
					t.hintObs(e.host, to, rep.hint)
				}
				return rep.value, rep.err
			}
			if !errors.Is(rerr, sim.ErrTimeout) {
				return nil, rerr
			}
		} else if err := env.Sleep(t.callTimeout()); err != nil {
			// The request (or its wire image) was lost before arriving;
			// the client still waits the full timeout.
			return nil, err
		}
		if err := e.retryBookkeeping(env, to, service, attempt); err != nil {
			t.record(env, to, service, argSize, true)
			return nil, err
		}
	}
}

// execRemote is the bulk-transfer execution hop: a reliable mailbox round
// trip (no injection — faults were already applied to the handshake and the
// fragment stream) that runs the handler on the server's shard. The payload
// bytes were charged by the stream, so both legs ride bare latency.
func (e *Endpoint) execRemote(env *sim.Env, target *Endpoint, service string, arg any) (*confReply, error) {
	t := e.transport
	replyBox := sim.NewMailboxOn(t.sim, env.Shard(), 0)
	e.xidSeq++
	target.reqBox.SendAfter(env, &confReq{
		from: e.host, xid: e.xidSeq, service: service, arg: arg,
		reply: replyBox, internal: true,
	}, t.net.Latency())
	rv, err := replyBox.Recv(env)
	if err != nil {
		return nil, err
	}
	return rv.(*confReply), nil
}

// callBulkConfined is CallBulk's remote path under confinement. The
// handshake, the windowed fragment stream, and the trailing control trip are
// pure wire timing plus counters, all shard-local, so they run client-side
// exactly as in the inline path; only the handler execution hops to the
// server's shard.
func (e *Endpoint) callBulkConfined(env *sim.Env, target *Endpoint, service string, arg any, argSize, payloadBytes int, dir BulkDir) (any, BulkStats, error) {
	t := e.transport
	to := target.host
	var bs BulkStats
	bs.Calls = 1
	if s := env.Shard(); s != 0 && s != e.shard {
		panic(fmt.Sprintf("rpc: bulk call via %v's endpoint from foreign shard %d (home %d)", e.host, s, e.shard))
	}
	if err := env.Sleep(t.params.ClientOverhead); err != nil {
		return nil, bs, err
	}
	wire := argSize + t.fragOverhead()
	if err := e.bulkControl(env, target, service, argSize, t.fragOverhead()); err != nil {
		t.record(env, to, service, wire, true)
		return nil, bs, err
	}
	switch dir {
	case BulkOut:
		w, err := e.streamFragments(env, target, service, payloadBytes, &bs)
		wire += w
		if err != nil {
			t.record(env, to, service, wire, true)
			t.recordBulk(env, &bs)
			return nil, bs, err
		}
		rep, err := e.execRemote(env, target, service, arg)
		if err != nil {
			t.record(env, to, service, wire, true)
			t.recordBulk(env, &bs)
			return nil, bs, err
		}
		if err := e.bulkControl(env, target, service, rep.size, 0); err != nil {
			t.record(env, to, service, wire+rep.size, true)
			t.recordBulk(env, &bs)
			return nil, bs, err
		}
		wire += rep.size
		t.record(env, to, service, wire, rep.err != nil)
		t.recordBulk(env, &bs)
		return rep.value, bs, rep.err
	case BulkIn:
		rep, err := e.execRemote(env, target, service, arg)
		if err != nil {
			t.record(env, to, service, wire, true)
			t.recordBulk(env, &bs)
			return nil, bs, err
		}
		if rep.err == nil {
			w, serr := e.streamFragments(env, target, service, rep.size, &bs)
			wire += w
			if serr != nil {
				t.record(env, to, service, wire, true)
				t.recordBulk(env, &bs)
				return nil, bs, serr
			}
		} else if cerr := e.bulkControl(env, target, service, t.fragOverhead(), 0); cerr != nil {
			// The error reply is a plain small message.
			t.record(env, to, service, wire, true)
			return nil, bs, cerr
		}
		t.record(env, to, service, wire, rep.err != nil)
		t.recordBulk(env, &bs)
		return rep.value, bs, rep.err
	default:
		return nil, bs, fmt.Errorf("rpc: unknown bulk direction %d", dir)
	}
}
