package rpc

import (
	"errors"
	"fmt"

	"sprite/internal/netsim"
	"sprite/internal/sim"
)

// BulkDir selects which way a bulk transfer's payload flows.
type BulkDir int

const (
	// BulkOut streams the payload from the caller to the server before the
	// handler runs (bulk write).
	BulkOut BulkDir = iota
	// BulkIn runs the handler first and streams its reply payload back to
	// the caller (bulk read).
	BulkIn
)

// BulkStats reports what one CallBulk cost on the wire.
type BulkStats struct {
	// Calls is the number of bulk transfers (1 per CallBulk; summed by Add).
	Calls int
	// Fragments is the number of distinct payload fragments delivered.
	Fragments int
	// Retransmits counts fragment retransmissions forced by loss.
	Retransmits int
	// Bytes is the payload bytes streamed, fragment headers excluded.
	Bytes int
}

// Add accumulates another transfer's stats into s.
func (s *BulkStats) Add(o BulkStats) {
	s.Calls += o.Calls
	s.Fragments += o.Fragments
	s.Retransmits += o.Retransmits
	s.Bytes += o.Bytes
}

// CallBulk performs a bulk-transfer RPC: one handshake round trip that sets
// up the stream (carrying arg, like a normal request), then the payload as a
// windowed sequence of pipelined fragments. Within a window only the leading
// fragment pays one-way latency; the rest ride the pipe and are charged
// transfer time alone, which is what makes bulk transfer cheaper than
// len(payload)/fragment independent RPCs.
//
// With dir == BulkOut the payload travels caller→server and the handler runs
// once the last fragment lands, exactly like a vectored write. With dir ==
// BulkIn the handler runs right after the handshake and its replySize is
// streamed back caller-ward, like a read-ahead fill. payloadBytes is the
// outbound payload size and is ignored for BulkIn.
//
// Fault injection applies per fragment under the service name
// "<service>.frag": a dropped or timed-out fragment waits out the
// retransmission timeout (with backoff) and is selectively resent, counting
// into BulkStats.Retransmits and the rpc.bulk.retransmits metric. The
// handshake and the final reply use the ordinary per-attempt retry loop
// under the plain service name.
func (e *Endpoint) CallBulk(env *sim.Env, to HostID, service string, arg any, argSize, payloadBytes int, dir BulkDir) (any, BulkStats, error) {
	t := e.transport
	var bs BulkStats
	target, ok := t.endpoints[to]
	if !ok {
		t.record(env, to, service, argSize, true)
		return nil, bs, fmt.Errorf("%w: %v", ErrNoHost, to)
	}
	if target.down || e.down {
		t.record(env, to, service, argSize, true)
		return nil, bs, fmt.Errorf("%w: %v", ErrHostDown, to)
	}
	if e.host == to {
		// Local shortcut: no network, no protocol overhead, no faults.
		h, ok := target.services[service]
		if !ok {
			t.record(env, to, service, argSize, true)
			return nil, bs, fmt.Errorf("%w: %s on %v", ErrNoService, service, to)
		}
		bs.Calls = 1
		reply, _, err := h(env, e.host, arg)
		t.record(env, to, service, 0, err != nil)
		return reply, bs, err
	}
	if t.confined {
		// Per-host shard delivery: the handler hops to the server's shard;
		// the service lookup happens there too.
		return e.callBulkConfined(env, target, service, arg, argSize, payloadBytes, dir)
	}
	h, ok := target.services[service]
	if !ok {
		t.record(env, to, service, argSize, true)
		return nil, bs, fmt.Errorf("%w: %s on %v", ErrNoService, service, to)
	}
	bs.Calls = 1
	if err := env.Sleep(t.params.ClientOverhead); err != nil {
		return nil, bs, err
	}
	wire := argSize + t.fragOverhead()
	if err := e.bulkControl(env, target, service, argSize, t.fragOverhead()); err != nil {
		t.record(env, to, service, wire, true)
		return nil, bs, err
	}
	var reply any
	var replySize int
	var herr error
	switch dir {
	case BulkOut:
		w, err := e.streamFragments(env, target, service, payloadBytes, &bs)
		wire += w
		if err != nil {
			t.record(env, to, service, wire, true)
			t.recordBulk(env, &bs)
			return nil, bs, err
		}
		reply, replySize, herr = h(env, e.host, arg)
		// Reply leg: a small control message, retried on loss like a
		// normal reply (the server answers retransmissions from its
		// cached reply without re-running the handler).
		if err := e.bulkControl(env, target, service, replySize, 0); err != nil {
			t.record(env, to, service, wire+replySize, true)
			t.recordBulk(env, &bs)
			return nil, bs, err
		}
		wire += replySize
	case BulkIn:
		reply, replySize, herr = h(env, e.host, arg)
		if herr == nil {
			w, err := e.streamFragments(env, target, service, replySize, &bs)
			wire += w
			if err != nil {
				t.record(env, to, service, wire, true)
				t.recordBulk(env, &bs)
				return nil, bs, err
			}
		} else if err := e.bulkControl(env, target, service, t.fragOverhead(), 0); err != nil {
			// The error reply is a plain small message.
			t.record(env, to, service, wire, true)
			return nil, bs, err
		}
	default:
		return nil, bs, fmt.Errorf("rpc: unknown bulk direction %d", dir)
	}
	t.record(env, to, service, wire, herr != nil)
	t.recordBulk(env, &bs)
	return reply, bs, herr
}

// fragOverhead returns the per-fragment header size, defaulted.
func (t *Transport) fragOverhead() int {
	if t.params.BulkFragOverhead > 0 {
		return t.params.BulkFragOverhead
	}
	return 32
}

// fragSize returns the fragment payload size, defaulted.
func (t *Transport) fragSize() int {
	if t.params.BulkFragmentBytes > 0 {
		return t.params.BulkFragmentBytes
	}
	return 16 << 10
}

// window returns the bulk window size in fragments, defaulted.
func (t *Transport) window() int {
	if t.params.BulkWindow > 0 {
		return t.params.BulkWindow
	}
	return 8
}

// recordBulk folds one transfer's stats into the bulk metrics counters.
func (t *Transport) recordBulk(env *sim.Env, bs *BulkStats) {
	if t.m.reg == nil {
		return
	}
	slot := sim.WorkerSlot(env)
	t.m.bulkCalls.IncSlot(slot)
	t.m.bulkBytes.AddSlot(slot, int64(bs.Bytes))
	t.m.bulkFragments.AddSlot(slot, int64(bs.Fragments))
	t.m.bulkRetransmits.AddSlot(slot, int64(bs.Retransmits))
}

// bulkControl delivers one small control round trip (handshake or final
// reply) under the plain service name, with the standard per-attempt retry
// loop: lost request or lost acknowledgement costs a timeout plus backoff
// and is retransmitted, up to MaxRetries.
func (e *Endpoint) bulkControl(env *sim.Env, target *Endpoint, service string, reqSize, ackSize int) error {
	t := e.transport
	for attempt := 0; ; attempt++ {
		if target.down || e.down {
			return fmt.Errorf("%w: %v", ErrHostDown, target.host)
		}
		var v Verdict
		if t.injector != nil {
			v = t.injector.Intercept(env, e.host, target.host, service, attempt)
		}
		if v.Delay > 0 {
			if err := env.Sleep(v.Delay); err != nil {
				return err
			}
		}
		if v.DropRequest {
			if err := e.awaitRetry(env, target.host, service, attempt); err != nil {
				return err
			}
			continue
		}
		if err := t.net.Send(env, reqSize); err != nil {
			if errors.Is(err, netsim.ErrDropped) {
				if rerr := e.awaitRetry(env, target.host, service, attempt); rerr != nil {
					return rerr
				}
				continue
			}
			return err
		}
		if v.Duplicate {
			// The duplicate occupies the wire; the receiver's transaction
			// check discards it.
			_ = t.net.Send(env, reqSize)
		}
		if ackSize <= 0 {
			return nil
		}
		if v.DropReply {
			if err := e.awaitRetry(env, target.host, service, attempt); err != nil {
				return err
			}
			continue
		}
		if nerr := t.net.Send(env, ackSize); nerr != nil {
			if errors.Is(nerr, netsim.ErrDropped) {
				if rerr := e.awaitRetry(env, target.host, service, attempt); rerr != nil {
					return rerr
				}
				continue
			}
			return nerr
		}
		return nil
	}
}

// streamFragments delivers payload bytes as the windowed fragment stream and
// returns the wire bytes charged (payload plus headers, retransmissions
// included). A lost fragment (injector drop or network drop) waits out the
// retransmission timeout and is selectively resent; the resend restarts the
// pipeline, so it pays the one-way latency again.
func (e *Endpoint) streamFragments(env *sim.Env, target *Endpoint, service string, payload int, bs *BulkStats) (int, error) {
	t := e.transport
	fragSize := t.fragSize()
	window := t.window()
	overhead := t.fragOverhead()
	frags := (payload + fragSize - 1) / fragSize
	if frags <= 0 {
		return 0, nil
	}
	latency := t.net.Params().Latency
	rtt := 2 * latency
	// If a whole window transfers faster than its ack can return, the
	// sender stalls for the difference at every window boundary.
	wstall := rtt - t.net.TransferTime(window*(fragSize+overhead))
	if wstall < 0 {
		wstall = 0
	}
	// Pipeline fill: the stream's leading edge pays the one-way latency.
	if err := env.Sleep(latency); err != nil {
		return 0, err
	}
	fragService := service + ".frag"
	wire := 0
	remaining := payload
	for i := 0; i < frags; i++ {
		n := fragSize
		if n > remaining {
			n = remaining
		}
		remaining -= n
		size := n + overhead
		for attempt := 0; ; attempt++ {
			if target.down || e.down {
				return wire, fmt.Errorf("%w: %v", ErrHostDown, target.host)
			}
			var v Verdict
			if t.injector != nil {
				v = t.injector.Intercept(env, e.host, target.host, fragService, attempt)
			}
			if v.Delay > 0 {
				if err := env.Sleep(v.Delay); err != nil {
					return wire, err
				}
			}
			// For a fragment, a lost ack and a lost fragment look the
			// same to the sender: the selective-repeat hole never closes
			// and the fragment is resent after the timeout.
			lost := v.DropRequest || v.DropReply
			if !lost {
				err := t.net.SendPipelined(env, size)
				wire += size
				if err != nil {
					if !errors.Is(err, netsim.ErrDropped) {
						return wire, err
					}
					lost = true
				}
			}
			if lost {
				if err := e.awaitRetry(env, target.host, fragService, attempt); err != nil {
					return wire, err
				}
				bs.Retransmits++
				// The resend restarts the pipeline.
				if err := env.Sleep(latency); err != nil {
					return wire, err
				}
				continue
			}
			if v.Duplicate {
				_ = t.net.SendPipelined(env, size)
				wire += size
			}
			break
		}
		bs.Fragments++
		bs.Bytes += n
		if wstall > 0 && (i+1)%window == 0 && i+1 < frags {
			if err := env.Sleep(wstall); err != nil {
				return wire, err
			}
		}
	}
	// Drain: the last fragment propagates to the receiver and its
	// cumulative ack comes back.
	if err := env.Sleep(rtt); err != nil {
		return wire, err
	}
	return wire, nil
}
