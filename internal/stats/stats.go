// Package stats provides the small set of summary statistics used by the
// experiment harness: online mean/variance, percentiles, and fixed-bucket
// histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample accumulates observations and summarizes them.
type Sample struct {
	values []float64
	sorted bool

	// Mean and variance are memoized between Adds, like the sorted flag:
	// repeated Mean/Std calls on a settled sample must not rescan it.
	momentsValid bool
	cachedMean   float64
	cachedVar    float64
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
	s.momentsValid = false
}

// AddDuration records a duration observation in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// ensureMoments computes mean and population variance once per batch of
// Adds, in the same two-pass order the unmemoized code used so results are
// bit-identical.
func (s *Sample) ensureMoments() {
	if s.momentsValid {
		return
	}
	s.momentsValid = true
	n := len(s.values)
	if n == 0 {
		s.cachedMean, s.cachedVar = 0, 0
		return
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	m := sum / float64(n)
	sq := 0.0
	for _, v := range s.values {
		d := v - m
		sq += d * d
	}
	s.cachedMean = m
	s.cachedVar = sq / float64(n)
}

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	s.ensureMoments()
	return s.cachedMean
}

// Std returns the population standard deviation.
func (s *Sample) Std() float64 {
	s.ensureMoments()
	return math.Sqrt(s.cachedVar)
}

// Min returns the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.values[0]
}

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.values[len(s.values)-1]
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank interpolation.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo]
	}
	frac := rank - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 {
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Histogram counts observations into fixed-width buckets.
type Histogram struct {
	Lo, Width float64
	Counts    []uint64
	under     uint64
	over      uint64
	n         uint64
}

// NewHistogram returns a histogram with buckets [lo, lo+width), ...
func NewHistogram(lo, width float64, buckets int) *Histogram {
	return &Histogram{Lo: lo, Width: width, Counts: make([]uint64, buckets)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	h.n++
	if v < h.Lo {
		h.under++
		return
	}
	// Compare in floating point before converting, so huge observations
	// cannot overflow the bucket index.
	bucket := (v - h.Lo) / h.Width
	if bucket >= float64(len(h.Counts)) {
		h.over++
		return
	}
	h.Counts[int(bucket)]++
}

// N returns the total number of observations.
func (h *Histogram) N() uint64 { return h.n }

// Fraction returns the fraction of observations in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.n)
}

// FractionBelow returns the fraction of observations strictly below v.
func (h *Histogram) FractionBelow(v float64) float64 {
	if h.n == 0 {
		return 0
	}
	count := h.under
	for i, c := range h.Counts {
		hi := h.Lo + float64(i+1)*h.Width
		if hi <= v {
			count += c
		}
	}
	return float64(count) / float64(h.n)
}

// String renders a compact textual summary.
func (h *Histogram) String() string {
	return fmt.Sprintf("hist(n=%d, under=%d, over=%d)", h.n, h.under, h.over)
}
