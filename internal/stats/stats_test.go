package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	if s.N() != 4 {
		t.Fatalf("N = %d", s.N())
	}
	if !almost(s.Mean(), 2.5) {
		t.Fatalf("mean = %v", s.Mean())
	}
	if !almost(s.Std(), math.Sqrt(1.25)) {
		t.Fatalf("std = %v", s.Std())
	}
	if s.Min() != 1 || s.Max() != 4 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if !almost(s.Sum(), 10) {
		t.Fatalf("sum = %v", s.Sum())
	}
}

func TestEmptySampleIsSafe(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty sample should summarize to zeros")
	}
}

func TestPercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 100}, {50, 50.5},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); !almost(got, c.want) {
			t.Fatalf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestAddDuration(t *testing.T) {
	var s Sample
	s.AddDuration(1500 * time.Millisecond)
	if !almost(s.Mean(), 1.5) {
		t.Fatalf("mean = %v", s.Mean())
	}
}

func TestPercentileMonotonic(t *testing.T) {
	f := func(vals []float64, a, b uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var s Sample
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		pa := float64(a) / 255 * 100
		pb := float64(b) / 255 * 100
		if pa > pb {
			pa, pb = pb, pa
		}
		return s.Percentile(pa) <= s.Percentile(pb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanBounded(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		var s Sample
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return true // outside the library's duration-seconds domain
			}
			s.Add(v)
		}
		m := s.Mean()
		return m >= s.Min()-1e-6 && m <= s.Max()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	for _, v := range []float64{-1, 0.5, 1.5, 1.7, 9.9, 100} {
		h.Add(v)
	}
	if h.N() != 6 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[9] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if !almost(h.Fraction(1), 2.0/6.0) {
		t.Fatalf("fraction = %v", h.Fraction(1))
	}
	if got := h.FractionBelow(2); !almost(got, 4.0/6.0) {
		t.Fatalf("FractionBelow(2) = %v", got)
	}
}

// TestMomentsMemoized: Mean/Std results must survive interleaved reads and
// stay correct after further Adds invalidate the cache.
func TestMomentsMemoized(t *testing.T) {
	var s Sample
	for i := 1; i <= 4; i++ {
		s.Add(float64(i))
	}
	m1, d1 := s.Mean(), s.Std()
	if m2, d2 := s.Mean(), s.Std(); m1 != m2 || d1 != d2 {
		t.Fatalf("repeated reads changed: %v/%v vs %v/%v", m1, d1, m2, d2)
	}
	// Sorting accessors must not disturb the cached moments.
	_ = s.Percentile(50)
	if !almost(s.Mean(), 2.5) || !almost(s.Std(), math.Sqrt(1.25)) {
		t.Fatalf("moments after sort: mean=%v std=%v", s.Mean(), s.Std())
	}
	s.Add(100)
	if almost(s.Mean(), 2.5) {
		t.Fatal("Add did not invalidate the cached mean")
	}
	want := 0.0
	for _, v := range []float64{1, 2, 3, 4, 100} {
		want += v
	}
	if !almost(s.Mean(), want/5) {
		t.Fatalf("mean after invalidation = %v", s.Mean())
	}
}

// BenchmarkSampleStd backs the memoization: repeated Std calls on a settled
// sample must be O(1), not a rescan of the values.
func BenchmarkSampleStd(b *testing.B) {
	var s Sample
	for i := 0; i < 100000; i++ {
		s.Add(float64(i))
	}
	s.Std() // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Std()
	}
}

func BenchmarkSampleStdUncached(b *testing.B) {
	var s Sample
	for i := 0; i < 100000; i++ {
		s.Add(float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.momentsValid = false
		_ = s.Std()
	}
}

func TestHistogramFractionBelowMonotonic(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram(0, 0.5, 20)
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			h.Add(v)
		}
		prev := -1.0
		for x := 0.0; x <= 10; x += 0.5 {
			cur := h.FractionBelow(x)
			if cur < prev-1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
