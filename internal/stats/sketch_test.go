package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// exactRank returns the sorted sample value at the same rank Quantile
// estimates: round(q*(n-1)).
func exactRank(sorted []float64, q float64) float64 {
	rank := int(math.Round(q * float64(len(sorted)-1)))
	return sorted[rank]
}

// withinAlpha reports whether got approximates want to the sketch's
// relative-error contract.
func withinAlpha(got, want, alpha float64) bool {
	return math.Abs(got-want) <= alpha*math.Abs(want)+1e-12
}

func TestSketchBasics(t *testing.T) {
	s := NewSketch(0.01)
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i))
	}
	if s.N() != 1000 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Min() != 1 || s.Max() != 1000 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		want := exactRank(vals, q)
		if got := s.Quantile(q); !withinAlpha(got, want, s.Alpha()) {
			t.Fatalf("Q(%v) = %v, want within %v%% of %v", q, got, s.Alpha()*100, want)
		}
	}
}

func TestSketchEmptyAndZeros(t *testing.T) {
	s := NewSketch(0)
	if s.Quantile(0.5) != 0 || s.N() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sketch should summarize to zeros")
	}
	if s.Alpha() != DefaultSketchAccuracy {
		t.Fatalf("alpha = %v", s.Alpha())
	}
	for i := 0; i < 10; i++ {
		s.Add(0)
	}
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("all-zero sketch Q(0.5) = %v", got)
	}
	if s.Buckets() != 1 {
		t.Fatalf("buckets = %d", s.Buckets())
	}
}

func TestSketchNonFinite(t *testing.T) {
	s := NewSketch(0.01)
	s.Add(math.NaN()) // ignored
	s.Add(math.Inf(1))
	s.Add(math.Inf(-1))
	s.Add(1)
	if s.N() != 3 {
		t.Fatalf("N = %d (NaN must be ignored)", s.N())
	}
	if s.Max() != math.MaxFloat64 || s.Min() != -math.MaxFloat64 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSketchMergeAlphaMismatch(t *testing.T) {
	a, b := NewSketch(0.01), NewSketch(0.05)
	b.Add(1)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging sketches with different alpha must fail")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merging nil: %v", err)
	}
}

// TestSketchQuantileWithinAlpha is the core accuracy property: for random
// inputs, every reported quantile is within alpha (relative) of the exact
// sorted-sample value at the same rank.
func TestSketchQuantileWithinAlpha(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%512) + 1
		vals := make([]float64, count)
		s := NewSketch(0.01)
		for i := range vals {
			// Span many decades, mixed signs and exact zeros — the domains
			// a duration/byte-count sketch must survive.
			v := (rng.Float64() - 0.3) * math.Pow(10, float64(rng.Intn(12)-4))
			if rng.Intn(20) == 0 {
				v = 0
			}
			vals[i] = v
			s.Add(v)
		}
		sort.Float64s(vals)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
			if !withinAlpha(s.Quantile(q), exactRank(vals, q), s.Alpha()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSketchMergeMatchesWhole: splitting a sample across sketches and
// merging must stay within alpha of the exact quantiles of the whole —
// the property that lets per-kernel sketches roll up into cluster ones.
func TestSketchMergeMatchesWhole(t *testing.T) {
	f := func(seed int64, n uint16, cut uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%512) + 2
		vals := make([]float64, count)
		for i := range vals {
			vals[i] = rng.ExpFloat64() * math.Pow(10, float64(rng.Intn(8)-2))
		}
		k := int(cut) % count
		a, b := NewSketch(0.01), NewSketch(0.01)
		for _, v := range vals[:k] {
			a.Add(v)
		}
		for _, v := range vals[k:] {
			b.Add(v)
		}
		if err := a.Merge(b); err != nil {
			return false
		}
		if a.N() != uint64(count) {
			return false
		}
		sort.Float64s(vals)
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			if !withinAlpha(a.Quantile(q), exactRank(vals, q), a.Alpha()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSketchQuantileMonotonic: quantiles never decrease in q.
func TestSketchQuantileMonotonic(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSketch(0.02)
		for i := 0; i < int(n%256)+1; i++ {
			s.Add((rng.Float64() - 0.5) * 1e6)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			cur := s.Quantile(q)
			if cur < prev-1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSketchAdd(b *testing.B) {
	s := NewSketch(0.01)
	for i := 0; i < b.N; i++ {
		s.Add(float64(i%10000) + 0.5)
	}
}
