package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sketch is an online, mergeable quantile sketch with a bounded relative
// error, in the style of DDSketch [Masson et al., VLDB 2019]: observations
// land in logarithmically spaced buckets, so any reported quantile is within
// a factor of (1 ± alpha) of the exact sample quantile at the same rank.
// Memory is proportional to the dynamic range of the data (a few hundred
// buckets for nanoseconds-to-hours of durations), never to the number of
// observations, which is what lets every migration in a long run feed one
// sketch cheaply.
//
// The zero value is not usable; construct with NewSketch. All operations are
// deterministic functions of the inserted values, so sketches are safe to
// include in golden snapshots.
type Sketch struct {
	alpha  float64 // relative accuracy target
	gamma  float64 // bucket growth factor: (1+alpha)/(1-alpha)
	lgamma float64 // log(gamma), cached

	pos  map[int]uint64 // buckets for v > 0: index ceil(log_gamma v)
	neg  map[int]uint64 // buckets for v < 0, keyed by |v|'s index
	zero uint64         // exact zeros

	n        uint64
	min, max float64
}

// DefaultSketchAccuracy is the relative error used when NewSketch is given
// a non-positive alpha: quantiles within 1% of the exact value.
const DefaultSketchAccuracy = 0.01

// NewSketch returns an empty sketch with relative accuracy alpha
// (0 < alpha < 1; non-positive values select DefaultSketchAccuracy).
func NewSketch(alpha float64) *Sketch {
	if alpha <= 0 || alpha >= 1 {
		alpha = DefaultSketchAccuracy
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:  alpha,
		gamma:  gamma,
		lgamma: math.Log(gamma),
		pos:    make(map[int]uint64),
		neg:    make(map[int]uint64),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Alpha returns the sketch's relative accuracy target.
func (s *Sketch) Alpha() float64 { return s.alpha }

// N returns the number of recorded observations.
func (s *Sketch) N() uint64 { return s.n }

// Min returns the smallest observation (0 for an empty sketch).
func (s *Sketch) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 for an empty sketch).
func (s *Sketch) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Add records one observation. NaN is ignored; infinities are clamped to
// ±MaxFloat64 so they land in the extreme buckets instead of poisoning the
// index arithmetic.
func (s *Sketch) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	if math.IsInf(v, 1) {
		v = math.MaxFloat64
	} else if math.IsInf(v, -1) {
		v = -math.MaxFloat64
	}
	s.n++
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	switch {
	case v > 0:
		s.pos[s.bucket(v)]++
	case v < 0:
		s.neg[s.bucket(-v)]++
	default:
		s.zero++
	}
}

// AddDuration records a duration observation in seconds.
func (s *Sketch) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// bucket maps a positive magnitude to its log-spaced bucket index.
func (s *Sketch) bucket(v float64) int {
	return int(math.Ceil(math.Log(v) / s.lgamma))
}

// value returns the representative magnitude of bucket i: the bucket
// midpoint 2*gamma^i/(gamma+1), which is within alpha of every value the
// bucket can hold.
func (s *Sketch) value(i int) float64 {
	return 2 * math.Pow(s.gamma, float64(i)) / (s.gamma + 1)
}

// Merge folds other into s. Both sketches must share the same accuracy
// (merging differently sized buckets would silently void the error bound).
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil || other.n == 0 {
		return nil
	}
	if other.alpha != s.alpha {
		return fmt.Errorf("stats: cannot merge sketches with alpha %v and %v", s.alpha, other.alpha)
	}
	for i, c := range other.pos {
		s.pos[i] += c
	}
	for i, c := range other.neg {
		s.neg[i] += c
	}
	s.zero += other.zero
	s.n += other.n
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	return nil
}

// Quantile returns an estimate of the q-th quantile (0 <= q <= 1): the
// representative value of the bucket holding the observation of rank
// round(q*(n-1)) in sorted order. The estimate is within a relative factor
// of alpha of that observation's true value (exact for zeros, and pinned to
// the true min/max at the extremes). An empty sketch reports 0.
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	rank := uint64(math.Round(q * float64(s.n-1)))

	// Walk the value axis in ascending order: negative buckets from the
	// most negative (largest magnitude) down, then zeros, then positive
	// buckets ascending.
	negIdx := sortedKeys(s.neg)
	cum := uint64(0)
	for j := len(negIdx) - 1; j >= 0; j-- {
		i := negIdx[j]
		cum += s.neg[i]
		if rank < cum {
			return clamp(-s.value(i), s.min, s.max)
		}
	}
	cum += s.zero
	if rank < cum {
		return 0
	}
	for _, i := range sortedKeys(s.pos) {
		cum += s.pos[i]
		if rank < cum {
			return clamp(s.value(i), s.min, s.max)
		}
	}
	return s.max
}

func sortedKeys(m map[int]uint64) []int {
	out := make([]int, 0, len(m))
	for i := range m {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Buckets returns the number of occupied buckets (a memory gauge).
func (s *Sketch) Buckets() int {
	n := len(s.pos) + len(s.neg)
	if s.zero > 0 {
		n++
	}
	return n
}
