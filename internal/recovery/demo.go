package recovery

import (
	"fmt"
	"strings"
	"time"

	"sprite/internal/core"
	"sprite/internal/metrics"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// DemoResult is what RunDemo hands back: enough to print a report, assert
// determinism, or ship a metrics artifact from CI.
type DemoResult struct {
	// Snapshot is the cluster metrics at the end of the run (recovery.*
	// counters and latency quantiles included).
	Snapshot metrics.Snapshot
	// Completed and Restarts count supervised jobs that finished and the
	// restarts it took.
	Completed int
	Restarts  int
	// Lost names jobs the supervisor gave up on (empty on a healthy run).
	Lost []string
	// Events is the liveness event stream, in order.
	Events []Event
	// Violations is CheckInvariants(true) at the end of the run.
	Violations []string
}

// Digest renders the result's deterministic one-line summary (used by
// tests asserting same-seed reproducibility).
func (r DemoResult) Digest() string {
	evs := ""
	for _, ev := range r.Events {
		evs += fmt.Sprintf("[%v %v e%d]", ev.Kind, ev.Host, ev.Epoch)
	}
	return fmt.Sprintf("completed=%d restarts=%d lost=%d events=%s violations=%d",
		r.Completed, r.Restarts, len(r.Lost), evs, len(r.Violations))
}

// CrashSpec schedules one host fault for RunDemoWith: the named host dies
// at At and restarts Dur later. Dur == 0 means an instantaneous reboot —
// state lost and epoch bumped, but no down-time window for timeout
// detection to observe.
type CrashSpec struct {
	Host string // "ws<N>" (workstation index) or "fs<N>" (file server index)
	At   time.Duration
	Dur  time.Duration
}

func (s CrashSpec) String() string {
	if s.Dur == 0 {
		return fmt.Sprintf("%s@%v", s.Host, s.At)
	}
	return fmt.Sprintf("%s@%v+%v", s.Host, s.At, s.Dur)
}

// ParseCrashSpec parses the spritesim -crash syntax host@at[+dur], e.g.
// "ws1@250ms+200ms" (crash, restart 200 ms later) or "ws2@300ms"
// (instant reboot).
func ParseCrashSpec(s string) (CrashSpec, error) {
	host, rest, ok := strings.Cut(s, "@")
	if !ok || host == "" || rest == "" {
		return CrashSpec{}, fmt.Errorf("crash spec %q: want host@at[+dur]", s)
	}
	atStr, durStr, hasDur := strings.Cut(rest, "+")
	at, err := time.ParseDuration(atStr)
	if err != nil {
		return CrashSpec{}, fmt.Errorf("crash spec %q: bad crash time: %v", s, err)
	}
	sp := CrashSpec{Host: host, At: at}
	if hasDur {
		d, err := time.ParseDuration(durStr)
		if err != nil {
			return CrashSpec{}, fmt.Errorf("crash spec %q: bad down duration: %v", s, err)
		}
		sp.Dur = d
	}
	return sp, nil
}

// resolveHost maps a CrashSpec host name onto the demo cluster's layout
// (file servers occupy the low host IDs, workstations follow).
func resolveHost(c *core.Cluster, name string) (rpc.HostID, error) {
	var idx int
	switch {
	case strings.HasPrefix(name, "ws"):
		if _, err := fmt.Sscanf(name, "ws%d", &idx); err != nil || idx < 0 || idx >= len(c.Workstations()) {
			return rpc.NoHost, fmt.Errorf("no workstation %q (have ws0..ws%d)", name, len(c.Workstations())-1)
		}
		return c.Workstation(idx).Host(), nil
	case strings.HasPrefix(name, "fs"):
		nfs := int(c.Workstation(0).Host()) - 1 // workstation IDs start after the file servers
		if _, err := fmt.Sscanf(name, "fs%d", &idx); err != nil || idx < 0 || idx >= nfs {
			return rpc.NoHost, fmt.Errorf("no file server %q (have fs0..fs%d)", name, nfs-1)
		}
		return rpc.HostID(1 + idx), nil
	}
	return rpc.NoHost, fmt.Errorf("bad host %q: want ws<N> or fs<N>", name)
}

// RunDemo runs the canonical crash-recovery scenario: a deferred-reap
// cluster of four workstations and a file server, a liveness monitor with
// reaping on, a supervisor running three checkpointed compute jobs on a
// remote host — and that host crashing mid-run, staying dead long enough
// for timeout detection, then coming back under a new epoch. Every job must
// run to completion, restarted from its checkpoint on a surviving host.
//
// The same function backs the spritesim "recovery" experiment, the
// examples/recovery walkthrough, and the CI chaos artifact, so the story
// printed in the docs is the code path the tests pin down.
func RunDemo(seed int64) (DemoResult, error) {
	return RunDemoWith(seed, nil)
}

// RunDemoWith runs the demo under a caller-supplied fault schedule (the
// spritesim -crash flags). An empty schedule falls back to the canonical
// one: the jobs' target host crashing at 250 ms and restarting 200 ms
// later.
func RunDemoWith(seed int64, crashes []CrashSpec) (DemoResult, error) {
	c, err := core.NewCluster(core.Options{Workstations: 4, FileServers: 1, Seed: seed})
	if err != nil {
		return DemoResult{}, err
	}
	c.SetDeferredReap(true)
	if err := c.SeedBinary("/bin/job", 128<<10); err != nil {
		return DemoResult{}, err
	}

	mon := NewMonitor(c, DefaultParams())
	sup := NewSupervisor(c, mon, DefaultSupervisorParams())
	mon.Start()

	var res DemoResult
	mon.Subscribe(func(ev Event) { res.Events = append(res.Events, ev) })

	cfg := core.ProcConfig{Binary: "/bin/job", CodePages: 16, HeapPages: 32, StackPages: 4}
	if len(crashes) == 0 {
		// ws1 is the supervisor's first pick for every job's target. Late
		// enough that all three jobs have arrived there and checkpointed at
		// least once; early enough that none has finished.
		crashes = []CrashSpec{{Host: "ws1", At: 250 * time.Millisecond, Dur: 200 * time.Millisecond}}
	}
	for _, sp := range crashes {
		victim, err := resolveHost(c, sp.Host)
		if err != nil {
			return DemoResult{}, err
		}
		sp := sp
		c.Boot("demo-crash-"+sp.Host, func(env *sim.Env) error {
			if err := env.Sleep(sp.At); err != nil {
				return nil
			}
			if sp.Dur == 0 {
				c.Reboot(env, victim)
				return nil
			}
			c.CrashHost(env, victim)
			if err := env.Sleep(sp.Dur); err != nil {
				return nil
			}
			c.RestartHost(env, victim)
			return nil
		})
	}

	c.Boot("demo-driver", func(env *sim.Env) error {
		for i := 0; i < 3; i++ {
			if _, err := sup.Submit(env, fmt.Sprintf("job%d", i), cfg, ComputeJob(250*time.Millisecond, 25*time.Millisecond)); err != nil {
				return err
			}
		}
		if err := sup.Wait(env); err != nil {
			return err
		}
		// All jobs resolved: release the monitor so the simulation drains.
		mon.Stop()
		sup.Stop()
		return nil
	})
	if err := c.Run(30 * time.Second); err != nil {
		return DemoResult{}, err
	}
	for _, j := range sup.jobs {
		if j.done.Done() && !j.lost {
			res.Completed++
		}
		res.Restarts += j.restarts
	}
	res.Lost = sup.Lost()
	res.Violations = c.CheckInvariants(true)
	res.Snapshot = c.MetricsSnapshot()
	return res, nil
}
