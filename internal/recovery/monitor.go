// Package recovery is the crash-recovery plane: host liveness detection
// through boot epochs, Sprite-style reaping of the processes a dead host
// strands, and an opt-in supervisor that restarts remote processes from
// checkpoints after their host dies.
//
// Sprite's recovery story [Wel90] rests on two observations the monitor
// reproduces: a host's death is *detected*, never announced (kernels ping
// each other and watch for broken RPC channels), and a reboot is
// distinguished from a network hiccup by a boot timestamp — here a boot
// epoch — piggybacked on every RPC reply. When a peer's epoch advances, the
// old incarnation is known dead no matter how quickly the machine came
// back.
package recovery

import (
	"sort"
	"time"

	"sprite/internal/core"
	"sprite/internal/hostsel"
	"sprite/internal/metrics"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// EventKind classifies a liveness transition.
type EventKind int

// Liveness transitions.
const (
	// HostDown means a boot incarnation of a host has been declared dead.
	HostDown EventKind = iota + 1
	// HostUp means a host has been observed alive under a new boot epoch.
	HostUp
)

func (k EventKind) String() string {
	switch k {
	case HostDown:
		return "host-down"
	case HostUp:
		return "host-up"
	default:
		return "?"
	}
}

// Event is a liveness transition delivered to subscribers.
type Event struct {
	Kind EventKind
	Host rpc.HostID
	// Epoch is the dead incarnation for HostDown, the new one for HostUp.
	Epoch rpc.Epoch
	At    time.Duration
}

// Params configures the liveness monitor.
type Params struct {
	// Interval is the heartbeat period per watched host.
	Interval time.Duration
	// FailThreshold is how many consecutive failed pings it takes to
	// suspect a host enough to declare it down.
	FailThreshold int
	// Reap, when set, makes the monitor call Cluster.ReapDeadHost for every
	// incarnation it declares dead — the full Sprite recovery matrix runs as
	// a consequence of detection, which is the normal configuration. Tests
	// that want to drive reaping by hand leave it off.
	Reap bool
}

// DefaultParams returns a monitor configuration suited to the cluster's
// RPC timeouts: the detection latency floor is roughly
// Interval + FailThreshold RPC timeout cycles.
func DefaultParams() Params {
	return Params{
		Interval:      20 * time.Millisecond,
		FailThreshold: 2,
		Reap:          true,
	}
}

// Monitor watches every registered host from the vantage of its live peers
// and turns broken RPC channels and advancing boot epochs into HostDown /
// HostUp events. One monitor stands in for the per-kernel recovery modules
// real Sprite ran: each watched host is pinged from the first live peer, so
// detection keeps working whichever single host is down.
type Monitor struct {
	c   *core.Cluster
	p   Params
	sel hostsel.Selector

	// lastEpoch is the newest epoch each host has been seen alive under.
	lastEpoch map[rpc.HostID]rpc.Epoch
	// observed collects epochs piggybacked on ordinary RPC replies (the
	// transport's epoch observer feeds it); ticks fold it into lastEpoch.
	observed map[rpc.HostID]rpc.Epoch
	// declaredDown is the newest epoch per host declared dead.
	declaredDown map[rpc.HostID]rpc.Epoch
	suspect      map[rpc.HostID]int
	isDown       map[rpc.HostID]bool

	subs     []func(Event)
	probeObs func(host rpc.HostID, ok bool, at time.Duration)
	stopped  bool

	pings        *metrics.Counter
	pingFailures *metrics.Counter
	hostDown     *metrics.Counter
	hostUp       *metrics.Counter
	detect       *metrics.Timing
}

// NewMonitor builds a monitor over the cluster. Call Start to arm it.
func NewMonitor(c *core.Cluster, p Params) *Monitor {
	if p.Interval <= 0 {
		p.Interval = DefaultParams().Interval
	}
	if p.FailThreshold <= 0 {
		p.FailThreshold = DefaultParams().FailThreshold
	}
	reg := c.Metrics()
	return &Monitor{
		c:            c,
		p:            p,
		lastEpoch:    make(map[rpc.HostID]rpc.Epoch),
		observed:     make(map[rpc.HostID]rpc.Epoch),
		declaredDown: make(map[rpc.HostID]rpc.Epoch),
		suspect:      make(map[rpc.HostID]int),
		isDown:       make(map[rpc.HostID]bool),
		pings:        reg.Counter("recovery.pings"),
		pingFailures: reg.Counter("recovery.ping.failures"),
		hostDown:     reg.Counter("recovery.host_down"),
		hostUp:       reg.Counter("recovery.host_up"),
		detect:       reg.Timing("recovery.detect_latency"),
	}
}

// Params returns the monitor's configuration.
func (m *Monitor) Params() Params { return m.p }

// SetSelector attaches a host-selection architecture: declared-dead hosts
// are withdrawn from the idle pool (NotifyAvailability false) and rebooted
// workstations are offered back.
func (m *Monitor) SetSelector(sel hostsel.Selector) { m.sel = sel }

// Subscribe registers a liveness event callback. Callbacks run inside the
// declaring watcher's activity, in subscription order.
func (m *Monitor) Subscribe(fn func(Event)) { m.subs = append(m.subs, fn) }

// SetProbeObserver installs a per-probe callback: every ping the monitor
// sends reports (host, ok, at) the instant the reply or failure lands. The
// fleet health plane feeds its missed-probe signal from it; unlike
// Subscribe it sees every probe, not only declaration edges. One observer;
// nil removes it.
func (m *Monitor) SetProbeObserver(fn func(host rpc.HostID, ok bool, at time.Duration)) {
	m.probeObs = fn
}

// DeclaredDown returns the newest boot epoch of host the monitor has
// declared dead (0 if none). The supervisor gates restarts on it so a
// failover never races ahead of the reaping that detection triggers.
func (m *Monitor) DeclaredDown(host rpc.HostID) rpc.Epoch { return m.declaredDown[host] }

// Stop makes every watcher exit at its next tick.
func (m *Monitor) Stop() { m.stopped = true }

// hosts returns every registered host in sorted order (determinism: watcher
// spawn order and vantage choice must not depend on map iteration).
func (m *Monitor) hosts() []rpc.HostID {
	hs := m.c.Transport().Hosts()
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	return hs
}

// Start arms the monitor: it registers the recovery.ping service on every
// endpoint, installs the transport's epoch observer, seeds the epoch table
// from the hosts' current epochs, and spawns one watcher activity per host.
func (m *Monitor) Start() {
	t := m.c.Transport()
	for _, h := range m.hosts() {
		ep := t.Endpoint(h)
		if ep == nil {
			continue
		}
		m.lastEpoch[h] = ep.Epoch()
		ep.Handle("recovery.ping", func(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
			return ep.Epoch(), 8, nil
		})
	}
	t.SetEpochObserver(func(host rpc.HostID, epoch rpc.Epoch) {
		if epoch > m.observed[host] {
			m.observed[host] = epoch
		}
	})
	for _, h := range m.hosts() {
		host := h
		m.c.Boot("recovery-monitor-"+host.String(), func(env *sim.Env) error {
			return m.watch(env, host)
		})
	}
}

func (m *Monitor) watch(env *sim.Env, host rpc.HostID) error {
	for {
		if err := env.Sleep(m.p.Interval); err != nil {
			return nil // the simulation is unwinding
		}
		if m.stopped {
			return nil
		}
		m.tick(env, host)
	}
}

// vantage picks the live peer the ping is sent from: the first registered
// host, in host order, that is not the watched host and is up.
func (m *Monitor) vantage(host rpc.HostID) *rpc.Endpoint {
	for _, h := range m.hosts() {
		if h == host {
			continue
		}
		if ep := m.c.Transport().Endpoint(h); ep != nil && !ep.Down() {
			return ep
		}
	}
	return nil
}

func (m *Monitor) tick(env *sim.Env, host rpc.HostID) {
	// Fold in epochs piggybacked on ordinary RPC traffic first: a reboot may
	// have been observed between pings, and that observation alone proves the
	// previous incarnation dead.
	if obs := m.observed[host]; obs > m.lastEpoch[host] {
		m.declareDown(env, host, obs-1)
		m.declareUp(env, host, obs)
	}
	v := m.vantage(host)
	if v == nil {
		return // no live peer to ping from; try again next interval
	}
	m.pings.Inc()
	var reply any
	err := m.c.FailAt(env, "recovery.ping", core.NilPID)
	if err == nil {
		reply, err = v.Call(env, host, "recovery.ping", nil, 16)
	}
	if m.probeObs != nil {
		m.probeObs(host, err == nil, env.Now())
	}
	if err != nil {
		m.pingFailures.Inc()
		m.suspect[host]++
		// Timeouts alone never kill a host: under message-drop fault windows
		// a live host can miss many pings, and reaping a live host's
		// processes would be a catastrophe. Suspicion plus the channel
		// actually being down (Sprite: every RPC to the host erroring, not
		// just this monitor's) is the declaration condition.
		if m.suspect[host] >= m.p.FailThreshold && m.c.HostDown(host) {
			m.declareDown(env, host, m.c.HostEpoch(host))
		}
		return
	}
	m.suspect[host] = 0
	epoch, _ := reply.(rpc.Epoch)
	if epoch > m.lastEpoch[host] {
		// The host answered under a newer incarnation: the old one died,
		// however briefly the outage was.
		m.declareDown(env, host, epoch-1)
		m.declareUp(env, host, epoch)
		return
	}
	if m.isDown[host] {
		m.declareUp(env, host, epoch)
	}
}

// declareDown marks one boot incarnation of host dead (idempotent per
// epoch): metrics, the optional reaping pass, selector withdrawal, and
// subscriber events all fire here.
func (m *Monitor) declareDown(env *sim.Env, host rpc.HostID, dead rpc.Epoch) {
	if dead == 0 || m.declaredDown[host] >= dead {
		return
	}
	m.declaredDown[host] = dead
	m.isDown[host] = true
	m.hostDown.Inc()
	if at, ok := m.c.DownSince(host); ok {
		m.detect.Observe(env.Now() - at)
	}
	if m.p.Reap {
		m.c.ReapDeadHost(env, host, dead)
	}
	if m.sel != nil && m.c.KernelOn(host) != nil {
		_ = m.sel.NotifyAvailability(env, host, false)
	}
	ev := Event{Kind: HostDown, Host: host, Epoch: dead, At: env.Now()}
	for _, fn := range m.subs {
		fn(ev)
	}
}

// declareUp marks host alive under the given epoch.
func (m *Monitor) declareUp(env *sim.Env, host rpc.HostID, epoch rpc.Epoch) {
	if epoch > m.lastEpoch[host] {
		m.lastEpoch[host] = epoch
	}
	if !m.isDown[host] {
		return
	}
	m.isDown[host] = false
	m.hostUp.Inc()
	if m.sel != nil && m.c.KernelOn(host) != nil {
		_ = m.sel.NotifyAvailability(env, host, true)
	}
	ev := Event{Kind: HostUp, Host: host, Epoch: epoch, At: env.Now()}
	for _, fn := range m.subs {
		fn(ev)
	}
}
