package recovery

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sprite/internal/core"
	"sprite/internal/sim"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the crash-scenario goldens under testdata/")

// renderRecords renders completed migration records and asserts the abort
// accounting discipline: every record's phase times must tile its Total
// exactly — a crash-induced abort that loses (or double-counts) a phase
// shows up here as a tiling error before it shows up in the golden diff.
func renderRecords(t *testing.T, b *strings.Builder, c *core.Cluster) {
	t.Helper()
	for i, rec := range c.MigrationRecords() {
		sum := rec.NegotiateTime + rec.VMTime + rec.FileTime + rec.PCBTime + rec.ResumeTime
		if sum != rec.Total {
			t.Errorf("record %d: phases sum to %v, Total = %v (accounting does not tile)", i, sum, rec.Total)
		}
		fmt.Fprintf(b, "record %d: %v %v->%v strategy=%s batched=%v total=%v neg=%v vm=%v files=%v pcb=%v resume=%v\n",
			i, rec.PID, rec.From, rec.To, rec.Strategy, rec.Batched,
			rec.Total, rec.NegotiateTime, rec.VMTime, rec.FileTime, rec.PCBTime, rec.ResumeTime)
	}
}

// checkGolden compares got against testdata/<name>.golden, rewriting it
// under -update-golden.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Fatalf("snapshot changed vs %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// traceSink collects the crash-relevant slice of the event stream.
func traceSink(b *strings.Builder) core.TraceFunc {
	keep := map[string]bool{
		"proc-start": true, "proc-exit": true, "proc-crash": true,
		"migration": true, "host-crash": true, "host-restart": true,
		"host-reboot": true, "host-reap": true, "reap-orphan": true,
	}
	return func(at time.Duration, kind, detail string) {
		if keep[kind] {
			fmt.Fprintf(b, "%12v %-12s %s\n", at, kind, detail)
		}
	}
}

// targetCrashSnapshot pins "target crashes mid-bulk-transfer": a process
// with a large dirty heap starts a batched migration and the target
// fail-stops while page runs are on the wire. The migration aborts back to
// the source, the process then migrates successfully to a third host, and
// both the abort metrics and the completed record's exact phase tiling are
// part of the snapshot.
func targetCrashSnapshot(t *testing.T, seed int64) string {
	t.Helper()
	params := core.DefaultParams()
	params.Batch.Enabled = true
	c, err := core.NewCluster(core.Options{Workstations: 3, FileServers: 1, Seed: seed, Params: &params})
	if err != nil {
		t.Fatal(err)
	}
	c.SetDeferredReap(true)
	if err := c.SeedBinary("/bin/prog", 64<<10); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	c.SetTrace(traceSink(&b))
	src, victim, refuge := c.Workstation(0), c.Workstation(1), c.Workstation(2)
	var firstErr, secondErr error
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "golden", func(ctx *core.Ctx) error {
			if err := ctx.TouchHeap(0, 64, true); err != nil {
				return err
			}
			firstErr = ctx.Migrate(victim.Host())
			secondErr = ctx.Migrate(refuge.Host())
			return ctx.Compute(10 * time.Millisecond)
		}, core.ProcConfig{Binary: "/bin/prog", CodePages: 8, HeapPages: 64, StackPages: 4})
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	c.Boot("crash", func(env *sim.Env) error {
		// Mid-VM-transfer for the batched sprite-flush of a 64-page dirty
		// heap (the migration starts at ~8 ms and runs tens of ms).
		if err := env.Sleep(30 * time.Millisecond); err != nil {
			return nil
		}
		c.CrashHost(env, victim.Host())
		c.ReapDeadHost(env, victim.Host(), c.HostEpoch(victim.Host()))
		return nil
	})
	if err := c.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&b, "first-migrate-failed=%v second-migrate-ok=%v\n", firstErr != nil, secondErr == nil)
	renderRecords(t, &b, c)
	snap := c.MetricsSnapshot()
	fmt.Fprintf(&b, "mig.started=%d mig.completed=%d mig.aborted=%d\n",
		snap.Counters["mig.started"], snap.Counters["mig.completed"], snap.Counters["mig.aborted"])
	if v := c.CheckInvariants(true); len(v) != 0 {
		t.Errorf("invariants violated: %v", v)
	}
	return b.String()
}

// homeCrashSnapshot pins "home crashes while child is remote": a parent
// forks a child, the child migrates away, then the home machine dies. The
// reaping pass kills the orphan on its current host (Sprite's
// home-dependency semantics) and the invariants — ledger, tables, stream
// refs — must all settle.
func homeCrashSnapshot(t *testing.T, seed int64) string {
	t.Helper()
	c, err := core.NewCluster(core.Options{Workstations: 2, FileServers: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	c.SetDeferredReap(true)
	if err := c.SeedBinary("/bin/prog", 64<<10); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	c.SetTrace(traceSink(&b))
	home, away := c.Workstation(0), c.Workstation(1)
	c.Boot("boot", func(env *sim.Env) error {
		_, err := home.StartProcess(env, "parent", func(ctx *core.Ctx) error {
			_, err := ctx.Fork("child", func(cctx *core.Ctx) error {
				if err := cctx.Migrate(away.Host()); err != nil {
					return err
				}
				// Compute long enough that the home dies mid-run; the kill
				// arrives at a quantum boundary.
				return cctx.Compute(500 * time.Millisecond)
			}, core.ProcConfig{Binary: "/bin/prog", CodePages: 4, HeapPages: 16, StackPages: 2})
			if err != nil {
				return err
			}
			_, _, werr := ctx.Wait()
			return werr
		}, core.ProcConfig{Binary: "/bin/prog", CodePages: 4, HeapPages: 16, StackPages: 2})
		return err
	})
	c.Boot("crash", func(env *sim.Env) error {
		if err := env.Sleep(120 * time.Millisecond); err != nil {
			return nil
		}
		c.CrashHost(env, home.Host())
		c.ReapDeadHost(env, home.Host(), c.HostEpoch(home.Host()))
		return nil
	})
	if err := c.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	renderRecords(t, &b, c)
	if v := c.CheckInvariants(true); len(v) != 0 {
		t.Errorf("invariants violated: %v", v)
	}
	return b.String()
}

// TestGoldenCrashScenarios pins the two canonical crash-during-migration
// stories byte for byte. Each must be identical run over run (determinism)
// and identical to the committed golden; regenerate with -update-golden
// when a cost-model change is intentional.
func TestGoldenCrashScenarios(t *testing.T) {
	cases := []struct {
		name string
		fn   func(*testing.T, int64) string
	}{
		{"target_crash_midtransfer", targetCrashSnapshot},
		{"home_crash_remote_child", homeCrashSnapshot},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := tc.fn(t, 1)
			if again := tc.fn(t, 1); again != got {
				t.Fatalf("same-seed reruns differ:\n--- first ---\n%s\n--- second ---\n%s", got, again)
			}
			checkGolden(t, tc.name, got)
		})
	}
}
