package recovery

import (
	"fmt"
	"testing"
	"time"

	"sprite/internal/core"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

var jobCfg = core.ProcConfig{Binary: "/bin/job", CodePages: 16, HeapPages: 32, StackPages: 4}

// TestRunDemo pins down the canonical failover story: three checkpointed
// jobs, one host crash, every job completes, restarted work resumes from
// its checkpoint, and the cluster invariants hold.
func TestRunDemo(t *testing.T) {
	res, err := RunDemo(42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 3 {
		t.Errorf("completed = %d, want 3", res.Completed)
	}
	if len(res.Lost) != 0 {
		t.Errorf("lost jobs: %v", res.Lost)
	}
	if res.Restarts != 3 {
		t.Errorf("restarts = %d, want 3 (every job ran on the crashed host)", res.Restarts)
	}
	if len(res.Violations) != 0 {
		t.Errorf("invariants violated: %v", res.Violations)
	}
	if n := res.Snapshot.Counters["recovery.checkpoints"]; n == 0 {
		t.Error("no checkpoints were taken")
	}
	if n := res.Snapshot.Counters["recovery.cpu_recovered_ns"]; n == 0 {
		t.Error("restarted jobs recovered no checkpointed progress")
	}
	if n := res.Snapshot.Counters["recovery.host_down"]; n != 1 {
		t.Errorf("recovery.host_down = %d, want 1", n)
	}
}

// TestRunDemoDeterministic: same seed, byte-identical outcome — digest,
// event stream, and the full metrics snapshot text.
func TestRunDemoDeterministic(t *testing.T) {
	a, err := RunDemo(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDemo(7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("digest mismatch:\n  %s\n  %s", a.Digest(), b.Digest())
	}
	if a.Snapshot.Text() != b.Snapshot.Text() {
		t.Fatal("metrics snapshots differ between same-seed runs")
	}
}

// acceptanceRun is the issue's acceptance harness: a cluster running
// supervised jobs, with exactly one host (chosen by role) crashing at one
// named migration failpoint, then rebooting shortly after the monitor
// declares it dead. Every job must run to completion and the invariants
// must hold — whichever host died, at whichever point.
func acceptanceRun(t *testing.T, role string, point string) {
	t.Helper()
	c, err := core.NewCluster(core.Options{Workstations: 4, FileServers: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	c.SetDeferredReap(true)
	if err := c.SeedBinary("/bin/job", 128<<10); err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(c, Params{Interval: 10 * time.Millisecond, FailThreshold: 2, Reap: true})
	sup := NewSupervisor(c, mon, SupervisorParams{
		MaxRestarts:     3,
		CheckpointEvery: 20 * time.Millisecond,
		Dir:             "/ckpt",
	})
	mon.Start()

	// Role → the host that dies. Jobs are homed on workstation 0 and the
	// supervisor's first pick for a target is workstation 1, so "home" kills
	// the source side of the first migration and "target" the destination.
	var victim rpc.HostID
	switch role {
	case "home":
		victim = c.Workstation(0).Host()
	case "target":
		victim = c.Workstation(1).Host()
	case "fs":
		victim = rpc.HostID(1)
	default:
		t.Fatalf("unknown role %q", role)
	}

	// The crash fires exactly once, from a spawned activity so the
	// migrating process is interrupted at (not inside) the failpoint call.
	fired := false
	c.SetFailpoint(func(env *sim.Env, name string, pid core.PID) error {
		if name != point || fired {
			return nil
		}
		fired = true
		env.Spawn("crash-at-failpoint", func(e *sim.Env) error {
			c.CrashHost(e, victim)
			return nil
		})
		return nil
	})
	// Reboot 50 ms after the monitor declares the crash (role-agnostic:
	// whenever and whatever died, it comes back under a new epoch).
	mon.Subscribe(func(ev Event) {
		if ev.Kind != HostDown {
			return
		}
		c.Boot("reboot-"+ev.Host.String(), func(env *sim.Env) error {
			if err := env.Sleep(50 * time.Millisecond); err != nil {
				return nil
			}
			c.RestartHost(env, ev.Host)
			return nil
		})
	})

	c.Boot("driver", func(env *sim.Env) error {
		for i := 0; i < 2; i++ {
			if _, err := sup.Submit(env, fmt.Sprintf("job%d", i), jobCfg, ComputeJob(120*time.Millisecond, 12*time.Millisecond)); err != nil {
				return err
			}
		}
		if err := sup.Wait(env); err != nil {
			return err
		}
		mon.Stop()
		sup.Stop()
		return nil
	})
	if err := c.Run(time.Minute); err != nil {
		t.Fatal(err)
	}

	if !fired {
		t.Fatalf("failpoint %s never fired — scenario exercised nothing", point)
	}
	if lost := sup.Lost(); len(lost) != 0 {
		t.Errorf("lost jobs: %v", lost)
	}
	for _, j := range sup.jobs {
		if !j.done.Done() {
			t.Errorf("job %s never resolved", j.name)
		}
	}
	if v := c.CheckInvariants(true); len(v) != 0 {
		t.Errorf("invariants violated: %v", v)
	}
}

// TestCrashAnyHostAtAnyFailpoint is the issue's acceptance matrix: crashing
// the migration source/home, the target, or the file server at every named
// migration failpoint leaves the invariants green and (with the supervisor
// attached) every workload process runs to completion.
func TestCrashAnyHostAtAnyFailpoint(t *testing.T) {
	roles := []string{"home", "target", "fs"}
	points := []string{"mig.init", "mig.vm", "mig.streams", "mig.pcb"}
	for _, role := range roles {
		for _, point := range points {
			role, point := role, point
			t.Run(role+"/"+point, func(t *testing.T) {
				acceptanceRun(t, role, point)
			})
		}
	}
}

// TestSupervisorRecoversCheckpointProgress: the restarted incarnation's
// image carries cumulative progress, so total compute across incarnations
// tracks the job size rather than doubling.
func TestSupervisorRecoversCheckpointProgress(t *testing.T) {
	c, err := core.NewCluster(core.Options{Workstations: 3, FileServers: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	c.SetDeferredReap(true)
	if err := c.SeedBinary("/bin/job", 64<<10); err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(c, Params{Interval: 10 * time.Millisecond, FailThreshold: 2, Reap: true})
	sup := NewSupervisor(c, mon, SupervisorParams{MaxRestarts: 3, CheckpointEvery: 10 * time.Millisecond, Dir: "/ckpt"})
	mon.Start()
	victim := c.Workstation(1).Host()

	var h *Handle
	c.Boot("driver", func(env *sim.Env) error {
		var err error
		h, err = sup.Submit(env, "steady", jobCfg, ComputeJob(200*time.Millisecond, 10*time.Millisecond))
		if err != nil {
			return err
		}
		// The initial migration alone takes ~75 ms; crash once the job has
		// computed (and checkpointed) for a while on the victim.
		if err := env.Sleep(150 * time.Millisecond); err != nil {
			return err
		}
		c.CrashHost(env, victim)
		if err := env.Sleep(80 * time.Millisecond); err != nil {
			return err
		}
		c.RestartHost(env, victim)
		if _, err := h.Done().Wait(env); err != nil {
			return err
		}
		mon.Stop()
		sup.Stop()
		return nil
	})
	if err := c.Run(time.Minute); err != nil {
		t.Fatal(err)
	}

	if h.Restarts() != 1 {
		t.Fatalf("restarts = %d, want 1", h.Restarts())
	}
	resumed := time.Duration(h.Resumed().CPUUsedNanos)
	if resumed <= 0 || resumed >= 200*time.Millisecond {
		t.Errorf("resumed progress = %v, want in (0, 200ms)", resumed)
	}
	snap := c.MetricsSnapshot()
	if snap.Counters["recovery.cpu_recovered_ns"] != int64(resumed) {
		t.Errorf("cpu_recovered_ns = %d, want %d", snap.Counters["recovery.cpu_recovered_ns"], resumed)
	}
	if v := c.CheckInvariants(true); len(v) != 0 {
		t.Errorf("invariants: %v", v)
	}
}

// TestSupervisorGivesUpOnRealFailures: a job that fails on its own (not a
// host crash) is not retried — the supervisor only hides infrastructure
// deaths, never program bugs.
func TestSupervisorGivesUpOnRealFailures(t *testing.T) {
	c, err := core.NewCluster(core.Options{Workstations: 2, FileServers: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SeedBinary("/bin/job", 64<<10); err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(c, DefaultParams())
	sup := NewSupervisor(c, mon, DefaultSupervisorParams())
	mon.Start()

	c.Boot("driver", func(env *sim.Env) error {
		h, err := sup.Submit(env, "buggy", jobCfg, func(ctx *core.Ctx, jc *JobCtx) error {
			if err := ctx.Compute(10 * time.Millisecond); err != nil {
				return err
			}
			return ctx.Exit(9) // deliberate failure
		})
		if err != nil {
			return err
		}
		if _, err := h.Done().Wait(env); err == nil {
			t.Error("buggy job resolved without ErrJobLost")
		}
		if h.Restarts() != 0 {
			t.Errorf("restarts = %d, want 0", h.Restarts())
		}
		mon.Stop()
		return nil
	})
	if err := c.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := sup.Lost(); len(got) != 1 || got[0] != "buggy" {
		t.Fatalf("Lost() = %v, want [buggy]", got)
	}
}
