package recovery

import (
	"errors"
	"fmt"
	"time"

	"sprite/internal/checkpoint"
	"sprite/internal/core"
	"sprite/internal/hostsel"
	"sprite/internal/metrics"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// ErrJobLost is the error a job's Done future resolves with when the
// supervisor gives up on it: either the restart budget is exhausted or the
// job died for a reason that is not a host crash (a genuine program
// failure is not the supervisor's to retry).
var ErrJobLost = errors.New("recovery: job lost")

// SupervisorParams configures checkpoint-backed failover.
type SupervisorParams struct {
	// MaxRestarts bounds how many times one job is restarted.
	MaxRestarts int
	// CheckpointEvery is the minimum gap between a job's checkpoints;
	// JobCtx.Checkpoint calls inside the gap are free no-ops, so programs
	// can offer checkpoints at every natural boundary and let the
	// supervisor pick the cadence.
	CheckpointEvery time.Duration
	// Dir is where checkpoint images live in the shared file system.
	Dir string
	// Home optionally pins the kernel jobs are homed on (default: the
	// first live workstation).
	Home *core.Kernel
}

// DefaultSupervisorParams returns a failover configuration matched to the
// default monitor cadence.
func DefaultSupervisorParams() SupervisorParams {
	return SupervisorParams{
		MaxRestarts:     3,
		CheckpointEvery: 50 * time.Millisecond,
		Dir:             "/ckpt",
	}
}

// JobFunc is the body of a supervised job. It must be restartable: consult
// jc.Resumed() for the progress recorded in the checkpoint it was restored
// from (zero on a fresh start) and call jc.Checkpoint at convenient
// boundaries.
type JobFunc func(ctx *core.Ctx, jc *JobCtx) error

// job is the supervisor's record of one submitted workload.
type job struct {
	name string
	cfg  core.ProcConfig
	fn   JobFunc
	// base is the image path prefix; saves alternate between two slot files
	// (Save truncates at open, so a crash mid-save destroys the file being
	// written — double-buffering keeps the previous image intact).
	base string
	// slot is the slot the next save writes to; goodPath is the last image
	// known fully written (empty if none yet). Both live in the supervisor,
	// not the job process — the shadow-side bookkeeping Condor keeps.
	slot     int
	goodPath string
	restarts int
	// resumed is the header of the checkpoint the current incarnation was
	// restored from (zero for the first, or when no image was readable).
	resumed  checkpoint.Header
	lastCkpt time.Duration
	proc     *core.Process
	done     *sim.Future
	lost     bool
	// incarnation counts every launch (fresh, restart, or evacuation) for
	// unique process naming and the restore-from-checkpoint decision.
	incarnation int
	// evacuating marks a deliberate kill issued by Evacuate: the watcher
	// relaunches from checkpoint immediately instead of treating the death
	// as a program failure or waiting for a down declaration.
	evacuating bool
	evacFrom   rpc.HostID
}

// Handle is the caller's view of a submitted job.
type Handle struct {
	j *job
}

// Name returns the job's name.
func (h *Handle) Name() string { return h.j.name }

// Done returns a future resolving to the job's final exit status; it
// resolves with ErrJobLost if the supervisor gave up.
func (h *Handle) Done() *sim.Future { return h.j.done }

// Restarts returns how many times the job has been restarted so far.
func (h *Handle) Restarts() int { return h.j.restarts }

// PID returns the current incarnation's process id (NilPID before the
// first launch or after the job is lost).
func (h *Handle) PID() core.PID {
	if h.j.proc == nil || h.j.lost {
		return core.NilPID
	}
	return h.j.proc.PID()
}

// Resumed returns the checkpoint header the current incarnation restored
// from (zero if it started fresh).
func (h *Handle) Resumed() checkpoint.Header { return h.j.resumed }

// JobCtx is the restart-aware half of a supervised job's interface.
type JobCtx struct {
	s *Supervisor
	j *job
}

// Resumed returns the checkpoint header this incarnation restored from.
// CPUUsedNanos in it is cumulative across incarnations; a compute loop
// resumes from there.
func (jc *JobCtx) Resumed() checkpoint.Header { return jc.j.resumed }

// Checkpoint saves the job's image if at least CheckpointEvery has passed
// since the last save (a call inside the gap is a free no-op, so programs
// offer checkpoints at every convenient boundary). The image records
// cumulative progress: the restored base plus this incarnation's compute
// time. Saves alternate between two slot files so a crash in the middle of
// one never costs the previous good image.
func (jc *JobCtx) Checkpoint(ctx *core.Ctx) error {
	j, s := jc.j, jc.s
	now := ctx.Now()
	if j.lastCkpt > 0 && now-j.lastCkpt < s.p.CheckpointEvery {
		return nil
	}
	path := fmt.Sprintf("%s.%d.ckpt", j.base, j.slot)
	if _, err := checkpoint.SaveFrom(ctx, path, time.Duration(j.resumed.CPUUsedNanos)); err != nil {
		s.ckptFailures.Inc()
		return err
	}
	j.goodPath = path
	j.slot = 1 - j.slot
	j.lastCkpt = now
	s.ckpts.Inc()
	return nil
}

// Supervisor runs jobs on remote hosts and, when a host crash kills one,
// restarts it elsewhere from its last checkpoint. This is the
// checkpoint/restart failover style the thesis compares migration against
// (Condor [Lit87]): the restarted process is a *new* process with a new
// pid — transparent recovery of the original is exactly what Sprite does
// not promise — but the work survives, because progress lives in the
// checkpoint image in the shared file system.
type Supervisor struct {
	c   *core.Cluster
	mon *Monitor
	p   SupervisorParams
	sel hostsel.Selector

	jobs    []*job
	stopped bool

	submitted       *metrics.Counter
	completed       *metrics.Counter
	lostC           *metrics.Counter
	restarts        *metrics.Counter
	restartFailures *metrics.Counter
	ckpts           *metrics.Counter
	ckptFailures    *metrics.Counter
	restoreFailures *metrics.Counter
	cpuRecovered    *metrics.Counter
	evacuations     *metrics.Counter
	restartLatency  *metrics.Timing
}

// NewSupervisor builds a supervisor over the cluster. The monitor is
// required: restarts are gated on its HostDown declarations, never on
// ground truth the real system would not have.
func NewSupervisor(c *core.Cluster, mon *Monitor, p SupervisorParams) *Supervisor {
	def := DefaultSupervisorParams()
	if p.MaxRestarts <= 0 {
		p.MaxRestarts = def.MaxRestarts
	}
	if p.CheckpointEvery <= 0 {
		p.CheckpointEvery = def.CheckpointEvery
	}
	if p.Dir == "" {
		p.Dir = def.Dir
	}
	reg := c.Metrics()
	return &Supervisor{
		c:               c,
		mon:             mon,
		p:               p,
		submitted:       reg.Counter("recovery.jobs.submitted"),
		completed:       reg.Counter("recovery.jobs.completed"),
		lostC:           reg.Counter("recovery.jobs.lost"),
		restarts:        reg.Counter("recovery.restarts"),
		restartFailures: reg.Counter("recovery.restart.failures"),
		ckpts:           reg.Counter("recovery.checkpoints"),
		ckptFailures:    reg.Counter("recovery.checkpoint.failures"),
		restoreFailures: reg.Counter("recovery.restore.failures"),
		cpuRecovered:    reg.Counter("recovery.cpu_recovered_ns"),
		evacuations:     reg.Counter("recovery.evacuations"),
		restartLatency:  reg.Timing("recovery.restart_latency"),
	}
}

// Params returns the supervisor's configuration.
func (s *Supervisor) Params() SupervisorParams { return s.p }

// SetSelector attaches a host-selection architecture used to pick restart
// targets (default: first live workstation other than the job's home).
func (s *Supervisor) SetSelector(sel hostsel.Selector) { s.sel = sel }

// Stop makes the supervisor abandon pending restarts (watchers exit at
// their next wakeup; Done futures of unfinished jobs never resolve).
func (s *Supervisor) Stop() { s.stopped = true }

// Submit launches a job: a process homed on a live workstation, migrated to
// a restart-selected target, supervised until it exits cleanly or the
// restart budget runs out.
func (s *Supervisor) Submit(env *sim.Env, name string, cfg core.ProcConfig, fn JobFunc) (*Handle, error) {
	j := &job{
		name: name,
		cfg:  cfg,
		fn:   fn,
		base: s.p.Dir + "/" + name,
		done: sim.NewFuture(s.c.Sim()),
	}
	home := s.pickHome(rpc.NoHost)
	if home == nil {
		return nil, fmt.Errorf("recovery: submit %s: no live workstation", name)
	}
	s.jobs = append(s.jobs, j)
	s.submitted.Inc()
	if err := s.launch(env, j, home, s.pickTarget(env, home, rpc.NoHost)); err != nil {
		return nil, err
	}
	return &Handle{j: j}, nil
}

// Wait blocks until every submitted job has resolved (completed or lost).
func (s *Supervisor) Wait(env *sim.Env) error {
	for _, j := range s.jobs {
		if _, err := j.done.Wait(env); err != nil && !errors.Is(err, ErrJobLost) {
			return err
		}
	}
	return nil
}

// Lost returns the names of jobs the supervisor gave up on.
func (s *Supervisor) Lost() []string {
	var out []string
	for _, j := range s.jobs {
		if j.lost {
			out = append(out, j.name)
		}
	}
	return out
}

// Supervised reports whether pid is the live incarnation of a supervised
// job — i.e. killing it would trigger an evacuation relaunch rather than
// lose work. The fleet drain path uses it to choose checkpoint/restart as
// the fallback for residents no host accepts.
func (s *Supervisor) Supervised(pid core.PID) bool {
	for _, j := range s.jobs {
		if j.proc != nil && !j.lost && j.proc.PID() == pid && j.proc.State() != core.StateExited {
			return true
		}
	}
	return false
}

// Evacuate deliberately relocates every supervised job executing on — or
// homed on — host: each incarnation is killed and relaunched from its last
// checkpoint elsewhere, without waiting for a down declaration — the host
// is alive, it is being drained. Jobs merely homed on the host move too,
// because a relaunch is a new process with a new home: live migration
// would keep the home dependency and the coming remediation reboot would
// orphan them (Sprite's home-dependency semantics). The fleet plane's
// drain path calls it for residents no target will accept as a live
// migration. Returns how many jobs were told to move.
func (s *Supervisor) Evacuate(env *sim.Env, host rpc.HostID) (int, error) {
	n := 0
	for _, j := range s.jobs {
		p := j.proc
		if p == nil || j.lost || j.evacuating || p.State() == core.StateExited {
			continue
		}
		resident := p.Current() != nil && p.Current().Host() == host
		homed := p.Home() != nil && p.Home().Host() == host
		if !resident && !homed {
			continue
		}
		via := s.pickHome(host)
		if via == nil {
			return n, fmt.Errorf("recovery: evacuate %v: no live workstation", host)
		}
		j.evacuating = true
		j.evacFrom = host
		if err := s.c.Kill(env, via, p.PID()); err != nil {
			j.evacuating = false
			return n, fmt.Errorf("recovery: evacuate %s: %w", j.name, err)
		}
		s.evacuations.Inc()
		n++
	}
	return n, nil
}

// pickHome chooses the kernel a (re)started job is homed on: the pinned
// Home if it is up, else the first live workstation, skipping avoid.
func (s *Supervisor) pickHome(avoid rpc.HostID) *core.Kernel {
	if k := s.p.Home; k != nil && k.Host() != avoid && !s.c.HostDown(k.Host()) {
		return k
	}
	for _, k := range s.c.Workstations() {
		if k.Host() != avoid && !s.c.HostDown(k.Host()) {
			return k
		}
	}
	return nil
}

// pickTarget chooses the host the job runs on: the selector's choice if one
// is attached and usable, else the first live workstation that is neither
// the home nor the just-crashed host, else the home itself.
func (s *Supervisor) pickTarget(env *sim.Env, home *core.Kernel, avoid rpc.HostID) rpc.HostID {
	if s.sel != nil {
		if hosts, err := s.sel.RequestHosts(env, home.Host(), 1); err == nil && len(hosts) > 0 {
			h := hosts[0]
			if h != avoid && !s.c.HostDown(h) && s.c.KernelOn(h) != nil {
				return h
			}
			_ = s.sel.Release(env, home.Host(), hosts)
		}
	}
	for _, k := range s.c.Workstations() {
		h := k.Host()
		if h != home.Host() && h != avoid && !s.c.HostDown(h) {
			return h
		}
	}
	return home.Host()
}

// launch starts one incarnation of the job and spawns its watcher.
func (s *Supervisor) launch(env *sim.Env, j *job, home *core.Kernel, target rpc.HostID) error {
	restarted := j.incarnation > 0
	j.incarnation++
	j.lastCkpt = 0
	prog := func(ctx *core.Ctx) error {
		// Run remotely when a distinct target exists; a failed migration
		// (the target died between selection and arrival) degrades to
		// running at home rather than failing the job.
		if target != home.Host() {
			_ = ctx.Migrate(target)
		}
		if restarted {
			j.resumed = checkpoint.Header{}
			if j.goodPath == "" {
				// Died before the first complete checkpoint: start over.
			} else if h, err := checkpoint.Restore(ctx, j.goodPath); err == nil {
				j.resumed = h
				s.cpuRecovered.Add(h.CPUUsedNanos)
			} else {
				// The image exists but is unreadable right now (its file
				// server is down, typically): start the work over.
				s.restoreFailures.Inc()
			}
		}
		return j.fn(ctx, &JobCtx{s: s, j: j})
	}
	p, err := home.StartProcess(env, fmt.Sprintf("%s#%d", j.name, j.incarnation-1), prog, j.cfg)
	if err != nil {
		return fmt.Errorf("recovery: launch %s: %w", j.name, err)
	}
	j.proc = p
	env.Spawn(fmt.Sprintf("recovery-watch-%s#%d", j.name, j.incarnation-1), func(wenv *sim.Env) error {
		return s.watch(wenv, j)
	})
	return nil
}

// watch joins one incarnation and decides its fate: clean exit resolves the
// job; a host-crash death waits for the monitor to declare the crash, then
// restarts from the last checkpoint; anything else is a real failure.
func (s *Supervisor) watch(env *sim.Env, j *job) error {
	p := j.proc
	v, err := p.Exited().Wait(env)
	if err != nil {
		return nil // the simulation is unwinding
	}
	status, _ := v.(int)
	if status == 0 {
		s.completed.Inc()
		j.done.Complete(0, nil)
		return nil
	}
	if j.evacuating {
		// A deliberate drain kill, not a failure: relaunch from the last
		// checkpoint right away. The host is alive, so there is no down
		// declaration to wait for and no restart budget to charge.
		j.evacuating = false
		from := j.evacFrom
		home := s.pickHome(from)
		if home == nil {
			s.giveUp(j, status)
			return nil
		}
		return s.launch(env, j, home, s.pickTarget(env, home, from))
	}
	crashHost, epoch, isCrash := s.crashSite(p, status)
	if !isCrash {
		s.giveUp(j, status)
		return nil
	}
	if j.restarts >= s.p.MaxRestarts {
		s.giveUp(j, status)
		return nil
	}
	// Act on detection, not ground truth: the restart may begin only once
	// the monitor has declared the incarnation dead (which also means the
	// reaping pass has run, so the job's old state is fully settled).
	for s.mon.DeclaredDown(crashHost) < epoch {
		if s.stopped {
			return nil
		}
		if err := env.Sleep(s.mon.Params().Interval); err != nil {
			return nil
		}
	}
	// The recovery.restart failpoint lets the fault plane delay or starve
	// failover just like any migration step.
	for {
		ferr := s.c.FailAt(env, "recovery.restart", p.PID())
		if ferr == nil {
			break
		}
		s.restartFailures.Inc()
		if s.stopped {
			return nil
		}
		if err := env.Sleep(s.mon.Params().Interval); err != nil {
			return nil
		}
	}
	j.restarts++
	s.restarts.Inc()
	if at, ok := s.c.DownSince(crashHost); ok {
		s.restartLatency.Observe(env.Now() - at)
	}
	home := s.pickHome(crashHost)
	if home == nil {
		s.giveUp(j, status)
		return nil
	}
	return s.launch(env, j, home, s.pickTarget(env, home, crashHost))
}

// crashSite decides whether an abnormal exit was a host crash and, if so,
// which host's which boot incarnation to blame.
//
//   - CrashStatus means the process died *on* a crashing host: blame where
//     it ran.
//   - A kill (status < 0) of a process whose home is down, or whose home
//     rebooted out from under it, is the reaping pass destroying an orphan:
//     blame the home's dead incarnation.
//   - Any other failure is the program's own.
func (s *Supervisor) crashSite(p *core.Process, status int) (rpc.HostID, rpc.Epoch, bool) {
	if status == core.CrashStatus {
		return p.Current().Host(), p.CrashEpoch(), true
	}
	if status < 0 {
		homeHost := p.Home().Host()
		if s.c.HostDown(homeHost) || s.c.HostEpoch(homeHost) > p.HomeEpoch() {
			return homeHost, p.HomeEpoch(), true
		}
	}
	return rpc.NoHost, 0, false
}

func (s *Supervisor) giveUp(j *job, status int) {
	j.lost = true
	s.lostC.Inc()
	j.done.Complete(status, fmt.Errorf("%w: %s after %d restarts (status %d)", ErrJobLost, j.name, j.restarts, status))
}

// ComputeJob returns the canonical restartable workload: total compute
// time, performed in step-sized slices with a checkpoint offered after
// each. On restart it resumes from the cumulative progress in the restored
// image, so the cluster never recomputes checkpointed work.
func ComputeJob(total, step time.Duration) JobFunc {
	return func(ctx *core.Ctx, jc *JobCtx) error {
		done := time.Duration(jc.Resumed().CPUUsedNanos)
		for done < total {
			d := step
			if total-done < d {
				d = total - done
			}
			if err := ctx.Compute(d); err != nil {
				return err
			}
			done += d
			// Checkpoint failures (e.g. the image's file server is down) are
			// survivable: the job keeps computing and the next restart just
			// resumes from an older image.
			_ = jc.Checkpoint(ctx)
		}
		return nil
	}
}
