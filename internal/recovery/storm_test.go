// External test package: internal/fault imports internal/recovery (the
// fleet fuzzer drives the monitor and supervisor), so tests that use the
// fault plane must sit outside the package to avoid an import cycle.
package recovery_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"sprite/internal/core"
	"sprite/internal/fault"
	"sprite/internal/recovery"
	"sprite/internal/sim"
)

// stormSummary is the per-configuration slice of the metrics snapshot that
// the chaos CI job uploads as its artifact (see `make chaos`).
type stormSummary struct {
	Strategy    string `json:"strategy"`
	Batched     bool   `json:"batched"`
	HostDown    int64  `json:"host_down"`
	HostUp      int64  `json:"host_up"`
	Restarts    int64  `json:"restarts"`
	Checkpoints int64  `json:"checkpoints"`
	Recovered   int64  `json:"cpu_recovered_ns"`
	Completed   int64  `json:"jobs_completed"`
}

// stormRun drives one crash storm: a deferred-reap cluster under a monitor
// and supervisor, three checkpointed jobs, and a staggered schedule of
// crash+restart and instant-reboot faults across every host the jobs can
// land on. The home workstation stays up so "no job may be lost" is an
// unconditional assertion.
func stormRun(t *testing.T, strategy core.TransferStrategy, batched bool) stormSummary {
	t.Helper()
	params := core.DefaultParams()
	params.Batch.Enabled = batched
	c, err := core.NewCluster(core.Options{Workstations: 4, FileServers: 1, Seed: 17, Params: &params})
	if err != nil {
		t.Fatal(err)
	}
	c.SetStrategyAll(strategy)
	c.SetDeferredReap(true)
	if err := c.SeedBinary("/bin/job", 128<<10); err != nil {
		t.Fatal(err)
	}

	mon := recovery.NewMonitor(c, recovery.Params{Interval: 10 * time.Millisecond, FailThreshold: 2, Reap: true})
	sup := recovery.NewSupervisor(c, mon, recovery.SupervisorParams{
		MaxRestarts:     6,
		CheckpointEvery: 15 * time.Millisecond,
		Dir:             "/ckpt",
	})
	mon.Start()

	// The storm: every non-home workstation dies once. Workstation 1 (the
	// supervisor's first target pick) crashes after the jobs have checkpointed
	// there and stays down long enough for timeout detection; workstation 2 —
	// where the restarted jobs land — reboots instantly under their feet
	// (epoch-only detection, second kill); workstation 3 crashes while those
	// second recoveries are still in flight.
	plane := fault.NewPlane(c, 17)
	plane.ScheduleCrash(c.Workstation(1).Host(), 280*time.Millisecond, 250*time.Millisecond)
	plane.ScheduleReboot(c.Workstation(2).Host(), 430*time.Millisecond)
	plane.ScheduleCrash(c.Workstation(3).Host(), 500*time.Millisecond, 150*time.Millisecond)

	cfg := core.ProcConfig{Binary: "/bin/job", CodePages: 16, HeapPages: 32, StackPages: 4}
	c.Boot("storm-driver", func(env *sim.Env) error {
		for _, name := range []string{"stormA", "stormB", "stormC"} {
			if _, err := sup.Submit(env, name, cfg, recovery.ComputeJob(200*time.Millisecond, 20*time.Millisecond)); err != nil {
				return err
			}
		}
		if err := sup.Wait(env); err != nil {
			return err
		}
		mon.Stop()
		sup.Stop()
		return nil
	})
	if err := c.Run(time.Minute); err != nil {
		t.Fatal(err)
	}

	if lost := sup.Lost(); len(lost) != 0 {
		t.Errorf("lost jobs: %v", lost)
	}
	if v := c.CheckInvariants(true); len(v) != 0 {
		t.Errorf("invariants violated: %v", v)
	}
	snap := c.MetricsSnapshot()
	if snap.Counters["recovery.host_down"] == 0 {
		t.Error("storm produced no detected crashes — schedule is not exercising recovery")
	}
	if snap.Counters["recovery.cpu_recovered_ns"] == 0 {
		t.Error("no checkpointed progress was recovered — restarts all began from scratch")
	}
	return stormSummary{
		Strategy:    strategy.Name(),
		Batched:     batched,
		HostDown:    snap.Counters["recovery.host_down"],
		HostUp:      snap.Counters["recovery.host_up"],
		Restarts:    snap.Counters["recovery.restarts"],
		Checkpoints: snap.Counters["recovery.checkpoints"],
		Recovered:   snap.Counters["recovery.cpu_recovered_ns"],
		Completed:   snap.Counters["recovery.jobs.completed"],
	}
}

// TestCrashStorm is the chaos suite behind `make chaos`: the full crash
// storm under every migration strategy in both batch modes. When
// SPRITE_CHAOS_SNAPSHOT names a file, the per-configuration recovery
// metrics are written there as JSON for the CI artifact.
func TestCrashStorm(t *testing.T) {
	strategies := []core.TransferStrategy{
		core.SpriteFlushStrategy{},
		core.FullCopyStrategy{},
		core.CopyOnReferenceStrategy{},
		core.PreCopyStrategy{RedirtyPagesPerSec: 100},
	}
	var summaries []stormSummary
	for _, s := range strategies {
		for _, batched := range []bool{false, true} {
			s, batched := s, batched
			mode := "legacy"
			if batched {
				mode = "batched"
			}
			t.Run(s.Name()+"/"+mode, func(t *testing.T) {
				summaries = append(summaries, stormRun(t, s, batched))
			})
		}
	}
	if path := os.Getenv("SPRITE_CHAOS_SNAPSHOT"); path != "" && !t.Failed() {
		data, err := json.MarshalIndent(summaries, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote chaos metrics snapshot to %s", path)
	}
}
