// External test package: internal/fault imports internal/recovery (the
// fleet fuzzer drives the monitor and supervisor), so tests that use the
// fault plane must sit outside the package to avoid an import cycle.
package recovery_test

import (
	"testing"
	"time"

	"sprite/internal/core"
	"sprite/internal/fault"
	"sprite/internal/recovery"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

func newCluster(t *testing.T, ws int) *core.Cluster {
	t.Helper()
	c, err := core.NewCluster(core.Options{Workstations: ws, FileServers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// driver boots fn and a joiner that stops the monitor once fn's future
// resolves, then runs the cluster to completion.
func runWithMonitor(t *testing.T, c *core.Cluster, mon *recovery.Monitor, fn func(env *sim.Env) error) {
	t.Helper()
	done := sim.NewFuture(c.Sim())
	c.Boot("test-driver", func(env *sim.Env) error {
		err := fn(env)
		mon.Stop()
		done.Complete(nil, err)
		return err
	})
	if err := c.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !done.Done() {
		t.Fatal("test driver never finished")
	}
}

// TestMonitorDetectsCrash: a crashed host is declared down (with the right
// epoch) within a few heartbeat intervals, and declared up again after the
// restart.
func TestMonitorDetectsCrash(t *testing.T) {
	c := newCluster(t, 3)
	c.SetDeferredReap(true)
	mon := recovery.NewMonitor(c, recovery.Params{Interval: 10 * time.Millisecond, FailThreshold: 2, Reap: true})
	var events []recovery.Event
	mon.Subscribe(func(ev recovery.Event) { events = append(events, ev) })
	mon.Start()
	victim := c.Workstation(1).Host()

	runWithMonitor(t, c, mon, func(env *sim.Env) error {
		if err := env.Sleep(50 * time.Millisecond); err != nil {
			return err
		}
		c.CrashHost(env, victim)
		// Give the detector a few intervals: threshold 2 at 10 ms cadence.
		if err := env.Sleep(100 * time.Millisecond); err != nil {
			return err
		}
		if got := mon.DeclaredDown(victim); got != 1 {
			t.Errorf("DeclaredDown(%v) = %d, want 1", victim, got)
		}
		c.RestartHost(env, victim)
		return env.Sleep(100 * time.Millisecond)
	})

	if len(events) != 2 {
		t.Fatalf("events = %v, want [down, up]", events)
	}
	if events[0].Kind != recovery.HostDown || events[0].Host != victim || events[0].Epoch != 1 {
		t.Errorf("first event = %+v, want HostDown %v epoch 1", events[0], victim)
	}
	if events[1].Kind != recovery.HostUp || events[1].Epoch != 2 {
		t.Errorf("second event = %+v, want HostUp epoch 2", events[1])
	}
	if v := c.CheckInvariants(true); len(v) != 0 {
		t.Errorf("invariants: %v", v)
	}
}

// TestMonitorDetectsInstantReboot: a host that crashes and comes back
// between two heartbeats is still caught — the ping reply carries the new
// boot epoch, which proves the old incarnation died (Sprite's reboot
// detection via boot timestamps).
func TestMonitorDetectsInstantReboot(t *testing.T) {
	c := newCluster(t, 3)
	c.SetDeferredReap(true)
	mon := recovery.NewMonitor(c, recovery.Params{Interval: 10 * time.Millisecond, FailThreshold: 3, Reap: true})
	var events []recovery.Event
	mon.Subscribe(func(ev recovery.Event) { events = append(events, ev) })
	mon.Start()
	victim := c.Workstation(2).Host()

	runWithMonitor(t, c, mon, func(env *sim.Env) error {
		if err := env.Sleep(45 * time.Millisecond); err != nil {
			return err
		}
		c.Reboot(env, victim) // down for zero virtual time
		return env.Sleep(100 * time.Millisecond)
	})

	if len(events) != 2 || events[0].Kind != recovery.HostDown || events[0].Epoch != 1 ||
		events[1].Kind != recovery.HostUp || events[1].Epoch != 2 {
		t.Fatalf("events = %+v, want HostDown e1 then HostUp e2", events)
	}
	if got := c.ReapedEpoch(victim); got != 1 {
		t.Errorf("ReapedEpoch = %d, want 1 (monitor reaps what it declares)", got)
	}
}

// TestMonitorIgnoresMessageLoss: a drop window that starves every ping must
// not get a live host declared dead — suspicion requires the channel to be
// really down, so a lossy network yields ping.failures but no HostDown.
func TestMonitorIgnoresMessageLoss(t *testing.T) {
	c := newCluster(t, 3)
	plane := fault.NewPlane(c, 7)
	victim := c.Workstation(1).Host()
	plane.DropMessages(0, 300*time.Millisecond, 1.0, victim)

	mon := recovery.NewMonitor(c, recovery.Params{Interval: 10 * time.Millisecond, FailThreshold: 2, Reap: true})
	var events []recovery.Event
	mon.Subscribe(func(ev recovery.Event) { events = append(events, ev) })
	mon.Start()

	runWithMonitor(t, c, mon, func(env *sim.Env) error {
		return env.Sleep(250 * time.Millisecond)
	})

	if len(events) != 0 {
		t.Fatalf("events = %+v, want none (host never crashed)", events)
	}
	if mon.DeclaredDown(victim) != 0 {
		t.Fatal("live host declared down under message loss")
	}
	snap := c.MetricsSnapshot()
	if snap.Counters["recovery.ping.failures"] == 0 {
		t.Fatal("drop window did not starve any pings — test exercised nothing")
	}
}

// TestMonitorSurvivesVantageCrash: detection keeps working when the default
// vantage host (the file server, host 1) is itself the crashed one — pings
// re-route through the next live peer.
func TestMonitorSurvivesVantageCrash(t *testing.T) {
	c := newCluster(t, 3)
	c.SetDeferredReap(true)
	mon := recovery.NewMonitor(c, recovery.Params{Interval: 10 * time.Millisecond, FailThreshold: 2, Reap: true})
	var events []recovery.Event
	mon.Subscribe(func(ev recovery.Event) { events = append(events, ev) })
	mon.Start()
	server := rpc.HostID(1)

	runWithMonitor(t, c, mon, func(env *sim.Env) error {
		if err := env.Sleep(50 * time.Millisecond); err != nil {
			return err
		}
		c.CrashHost(env, server)
		if err := env.Sleep(100 * time.Millisecond); err != nil {
			return err
		}
		if got := mon.DeclaredDown(server); got != 1 {
			t.Errorf("DeclaredDown(fs server) = %d, want 1", got)
		}
		c.RestartHost(env, server)
		return env.Sleep(100 * time.Millisecond)
	})

	if len(events) != 2 || events[0].Kind != recovery.HostDown || events[1].Kind != recovery.HostUp {
		t.Fatalf("events = %+v, want fs-server down then up", events)
	}
}
