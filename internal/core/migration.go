package core

import (
	"errors"
	"fmt"
	"time"

	"sprite/internal/fs"
	"sprite/internal/rpc"
	"sprite/internal/sim"
	"sprite/internal/vm"
)

// MigrationRecord documents one completed migration, component by
// component — the breakdown the thesis's performance chapter tabulates.
type MigrationRecord struct {
	PID    PID
	From   rpc.HostID
	To     rpc.HostID
	Reason string
	Start  time.Duration

	// Total is wall time of the whole migration; Freeze is the part during
	// which the process could not execute anywhere (for pre-copy they
	// differ).
	Total  time.Duration
	Freeze time.Duration

	// NegotiateTime, VMTime, FileTime, PCBTime, ResumeTime decompose
	// Total: the handshake, the VM strategy's work, the open-stream moves,
	// the PCB shipment, and the tail (home-machine update plus the final
	// switch-over).
	NegotiateTime time.Duration
	VMTime        time.Duration
	FileTime      time.Duration
	PCBTime       time.Duration
	ResumeTime    time.Duration

	// VMBytes counts bytes moved at migration time (flush or direct copy).
	VMBytes int
	// PagesFlushed / PagesCopied detail the VM strategy's work.
	PagesFlushed int
	PagesCopied  int
	// Files is the number of open streams transferred.
	Files int
	// ExecTime marks an exec-time migration (no VM transfer).
	ExecTime bool
	// Residual marks a residual dependency left on the source host.
	Residual bool
	// Strategy names the VM transfer strategy used.
	Strategy string

	// Batched marks a migration whose VM transfer used the bulk data
	// plane; BatchRuns / BatchFragments / BatchRetransmits detail it
	// (all zero on the legacy per-page path).
	Batched          bool
	BatchRuns        int
	BatchFragments   int
	BatchRetransmits int
}

// RequestMigration asks for p to migrate to target at its next migration
// point. The returned future resolves to the new host id (or an error). A
// process using shared writable memory refuses, as in Sprite.
func (k *Kernel) RequestMigration(p *Process, target *Kernel, reason string) *sim.Future {
	done := sim.NewFuture(k.cluster.sim)
	switch {
	case p.state == StateExited:
		done.Complete(nil, fmt.Errorf("%w: %v", ErrNoSuchProcess, p.pid))
	case p.sharedMemory:
		done.Complete(nil, fmt.Errorf("%w: %v uses shared writable memory", ErrNotMigratable, p.pid))
	case p.migrateReq != nil:
		done.Complete(nil, fmt.Errorf("%w: %v migration already pending", ErrNotMigratable, p.pid))
	case target == p.cur:
		done.Complete(target.host, nil)
	default:
		p.migrateReq = &migrationRequest{target: target, reason: reason, done: done}
	}
	return done
}

// RequestExecMigration marks p to migrate to target at its next exec — the
// cheap remote-invocation path (no VM transfer).
func (k *Kernel) RequestExecMigration(p *Process, target *Kernel, reason string) *sim.Future {
	done := sim.NewFuture(k.cluster.sim)
	switch {
	case p.state == StateExited:
		done.Complete(nil, fmt.Errorf("%w: %v", ErrNoSuchProcess, p.pid))
	case p.migrateReq != nil:
		done.Complete(nil, fmt.Errorf("%w: %v migration already pending", ErrNotMigratable, p.pid))
	default:
		p.migrateReq = &migrationRequest{target: target, reason: reason, done: done, atExec: true}
	}
	return done
}

// migrateNow validates and performs a migration inline, in p's own activity
// (used by the explicit migrate call, which is itself a migration point).
func (k *Kernel) migrateNow(env *sim.Env, p *Process, target *Kernel, reason string) error {
	switch {
	case p.state == StateExited:
		return fmt.Errorf("%w: %v", ErrNoSuchProcess, p.pid)
	case p.sharedMemory:
		return fmt.Errorf("%w: %v uses shared writable memory", ErrNotMigratable, p.pid)
	case p.migrateReq != nil:
		return fmt.Errorf("%w: %v migration already pending", ErrNotMigratable, p.pid)
	case target == p.cur:
		return nil
	}
	return k.migrateSelf(env, p, &migrationRequest{target: target, reason: reason})
}

// migrateSelf performs a full migration of p from this kernel to
// req.target, executed in p's own activity at a migration point. The order
// follows the thesis: negotiate, transfer virtual memory, transfer open
// streams (with I/O server coordination), transfer the PCB, update the home
// machine, resume on the target.
func (k *Kernel) migrateSelf(env *sim.Env, p *Process, req *migrationRequest) error {
	target := req.target
	if target == k {
		return nil
	}
	rec := MigrationRecord{
		PID:      p.pid,
		From:     k.host,
		To:       target.host,
		Reason:   req.reason,
		Start:    env.Now(),
		Strategy: k.strategy.Name(),
	}
	p.state = StateMigrating
	t0 := env.Now()
	// Expose in-flight progress so crash injection can release stream
	// references already moved to the target if this host dies mid-flight.
	p.migTarget = target
	defer func() { p.migTarget, p.migMoved = nil, nil }()

	mm := newMigMeter(env, k.cluster.metrics)

	// abort undoes a partial migration so the process resumes on the
	// source: streams already moved come back, a PCB already installed at
	// the target is discarded there. A process destroyed by a crash of its
	// own host skips recovery — there is nothing left to resume. The
	// metrics rollback always runs: an aborted migration must not leave a
	// phase timing or a dangling in-flight count behind.
	var moved []*fs.Stream
	abort := func(err error) error {
		if k.cluster.confined {
			// Abort recovery repairs target-side tables from the source
			// activity — cross-shard by nature. The confined contract
			// excludes every abort trigger (crashes, failpoints, version
			// skew), so reaching here is a configuration bug.
			panic(&sim.ConfinedContractError{
				Op:     "migration abort",
				Host:   fmt.Sprintf("%v (on %v)", p.pid, k.host),
				Reason: err.Error(),
			})
		}
		mm.abort(env)
		k.stats.MigrationsAborted++
		if p.crashed {
			return err
		}
		if len(moved) > 0 {
			k.recoverStreams(env, moved, target)
		}
		if _, installed := target.procs[p.pid]; installed {
			delete(target.procs, p.pid)
			target.stats.MigrationsIn--
		}
		p.state = StateRunning
		return err
	}

	// 1. Handshake: version check and skeleton allocation at the target.
	mm.next(env, "negotiate")
	if err := k.migInit(env, p, target); err != nil {
		return abort(err)
	}
	if err := k.cluster.failAt(env, "mig.init", p.pid); err != nil {
		return abort(err)
	}
	rec.NegotiateTime = mm.next(env, "vm."+rec.Strategy)

	// 2 + 3. Virtual memory and open streams. With the batched data plane's
	// overlap on, the stream transfer runs in its own activity concurrent
	// with the VM transfer: both phases still tile Total exactly because the
	// vm span closes retroactively at the instant the VM work finished and
	// the streams span covers only the tail that outlived it (zero when the
	// streams won the race).
	overlap := k.params.Batch.Enabled && k.params.Batch.OverlapStreams
	tVM := env.Now()
	var strmDone *sim.Future
	if overlap {
		strmDone = sim.NewFuture(k.cluster.sim)
		env.Spawn(fmt.Sprintf("mig-streams-%v", p.pid), func(senv *sim.Env) error {
			mv, serr := k.transferStreams(senv, p, target, &rec)
			strmDone.Complete(mv, serr)
			return nil
		})
	}
	vmErr := k.strategy.Transfer(env, k, target, p, &rec)
	if vmErr != nil {
		vmErr = fmt.Errorf("vm transfer: %w", vmErr)
	} else {
		vmErr = k.cluster.failAt(env, "mig.vm", p.pid)
	}
	tVMEnd := env.Now()
	if overlap {
		// Join the stream mover before acting on any error: abort recovery
		// needs the final moved list, and the mover must not outlive the
		// migration it belongs to.
		mv, serr := strmDone.Wait(env)
		if ms, ok := mv.([]*fs.Stream); ok {
			moved = ms
		}
		if vmErr != nil {
			return abort(vmErr)
		}
		rec.VMTime = mm.nextAt(env, "streams", tVMEnd)
		if serr != nil {
			return abort(fmt.Errorf("stream transfer: %w", serr))
		}
		if err := k.cluster.failAt(env, "mig.streams", p.pid); err != nil {
			return abort(err)
		}
		rec.FileTime = env.Now() - tVMEnd
	} else {
		if vmErr != nil {
			return abort(vmErr)
		}
		rec.VMTime = env.Now() - tVM
		mm.next(env, "streams")
		tF := env.Now()
		var serr error
		if moved, serr = k.transferStreams(env, p, target, &rec); serr != nil {
			return abort(fmt.Errorf("stream transfer: %w", serr))
		}
		if err := k.cluster.failAt(env, "mig.streams", p.pid); err != nil {
			return abort(err)
		}
		rec.FileTime = env.Now() - tF
	}
	mm.next(env, "pcb")

	// 4. PCB and residual untyped state.
	tP := env.Now()
	if err := k.transferPCB(env, p, target); err != nil {
		return abort(fmt.Errorf("pcb transfer: %w", err))
	}
	if err := k.cluster.failAt(env, "mig.pcb", p.pid); err != nil {
		return abort(err)
	}
	rec.PCBTime = env.Now() - tP
	mm.next(env, "resume")

	// 5. Tell the home machine where the process now lives. Confined
	// clusters always take the RPC (even migrating home), because the home
	// record lives on the home host's shard and this activity is still on
	// the source shard.
	if p.home != target || k.cluster.confined {
		if _, err := k.ep.Call(env, p.home.host, "k.updateLoc", updateLocArgs{
			PID: p.pid, Loc: target.host,
		}, 32); err != nil {
			return abort(fmt.Errorf("update home: %w", err))
		}
	} else if hr := p.home.homeRecs[p.pid]; hr != nil {
		hr.location = target.host
	}

	// The target may have crashed after the PCB landed; resuming there
	// would run the process on a dead host.
	if k.cluster.HostDown(target.host) {
		if hr := p.home.homeRecs[p.pid]; hr != nil {
			hr.location = k.host
		}
		return abort(fmt.Errorf("%w: target %v crashed mid-migration", rpc.ErrHostDown, target.host))
	}

	// 6. Switch the process over and resume.
	delete(k.procs, p.pid)
	k.stats.MigrationsOut++
	p.cur = target
	p.migrations++
	p.state = StateRunning
	if p.space != nil {
		p.space.SetPagerAll(k.strategy.TargetPager(k, target))
	}

	rec.ResumeTime = mm.complete(env)
	rec.Total = env.Now() - t0
	if rec.Freeze == 0 {
		rec.Freeze = rec.Total
	} else {
		// A strategy that set its own freeze (pre-copy) froze the process
		// only for its final pass; stream and PCB transfer freeze it too.
		rec.Freeze += rec.FileTime + rec.PCBTime
	}
	mm.observeTotals(env, &rec)
	k.records = append(k.records, rec)
	k.cluster.emitEnv(env, "migration",
		fmt.Sprintf("%v %v->%v (%s, %s) total=%v vm=%dB files=%d",
			p.pid, rec.From, rec.To, rec.Reason, rec.Strategy, rec.Total, rec.VMBytes, rec.Files))
	return nil
}

// migrateForExec performs the exec-time variant: no VM transfer at all; the
// new image is built on the target. Only streams, PCB, and the exec
// arguments move.
func (k *Kernel) migrateForExec(env *sim.Env, p *Process, req *migrationRequest) error {
	target := req.target
	if target == k {
		return nil
	}
	rec := MigrationRecord{
		PID:      p.pid,
		From:     k.host,
		To:       target.host,
		Reason:   req.reason,
		Start:    env.Now(),
		ExecTime: true,
		Strategy: "exec-time",
	}
	p.state = StateMigrating
	t0 := env.Now()
	p.migTarget = target
	defer func() { p.migTarget, p.migMoved = nil, nil }()

	mm := newMigMeter(env, k.cluster.metrics)

	// Same recovery contract as migrateSelf: an aborted exec-time migration
	// resumes the process on the source (where exec rebuilds the image
	// locally instead). As there, the metrics rollback runs even for a
	// crash-destroyed process.
	var moved []*fs.Stream
	abort := func(err error) error {
		if k.cluster.confined {
			// Same reasoning as migrateSelf's abort: recovery is cross-shard
			// and every abort trigger is excluded by the confined contract.
			panic(&sim.ConfinedContractError{
				Op:     "migration abort",
				Host:   fmt.Sprintf("%v (on %v)", p.pid, k.host),
				Reason: err.Error(),
			})
		}
		mm.abort(env)
		k.stats.MigrationsAborted++
		if p.crashed {
			return err
		}
		if len(moved) > 0 {
			k.recoverStreams(env, moved, target)
		}
		if _, installed := target.procs[p.pid]; installed {
			delete(target.procs, p.pid)
			target.stats.MigrationsIn--
		}
		p.state = StateRunning
		return err
	}

	mm.next(env, "negotiate")
	if err := k.migInit(env, p, target); err != nil {
		return abort(err)
	}
	if err := k.cluster.failAt(env, "mig.init", p.pid); err != nil {
		return abort(err)
	}
	// Discard the old image here; nothing of it moves.
	if err := p.discardSpace(env); err != nil {
		return abort(err)
	}
	rec.NegotiateTime = mm.next(env, "streams")
	tF := env.Now()
	var serr error
	if moved, serr = k.transferStreams(env, p, target, &rec); serr != nil {
		return abort(fmt.Errorf("stream transfer: %w", serr))
	}
	if err := k.cluster.failAt(env, "mig.streams", p.pid); err != nil {
		return abort(err)
	}
	rec.FileTime = env.Now() - tF
	mm.next(env, "pcb")
	tP := env.Now()
	if err := k.transferPCB(env, p, target); err != nil {
		return abort(fmt.Errorf("pcb transfer: %w", err))
	}
	if err := k.cluster.failAt(env, "mig.pcb", p.pid); err != nil {
		return abort(err)
	}
	// Exec arguments ride along with the PCB.
	argBytes := 0
	for _, a := range p.args {
		argBytes += len(a)
	}
	if argBytes > 0 {
		if err := k.cluster.net.Send(env, argBytes); err != nil {
			return abort(err)
		}
	}
	rec.PCBTime = env.Now() - tP
	mm.next(env, "resume")
	if p.home != target || k.cluster.confined {
		if _, err := k.ep.Call(env, p.home.host, "k.updateLoc", updateLocArgs{
			PID: p.pid, Loc: target.host,
		}, 32); err != nil {
			return abort(fmt.Errorf("update home: %w", err))
		}
	} else if hr := p.home.homeRecs[p.pid]; hr != nil {
		hr.location = target.host
	}
	// The target may have crashed after the PCB landed; resuming there
	// would run the process on a dead host.
	if k.cluster.HostDown(target.host) {
		if hr := p.home.homeRecs[p.pid]; hr != nil {
			hr.location = k.host
		}
		return abort(fmt.Errorf("%w: target %v crashed mid-migration", rpc.ErrHostDown, target.host))
	}
	delete(k.procs, p.pid)
	k.stats.MigrationsOut++
	k.stats.RemoteExecs++
	p.cur = target
	p.migrations++
	p.state = StateRunning
	rec.ResumeTime = mm.complete(env)
	rec.Total = env.Now() - t0
	rec.Freeze = rec.Total
	mm.observeTotals(env, &rec)
	k.records = append(k.records, rec)
	k.cluster.emitEnv(env, "exec-migration",
		fmt.Sprintf("%v %v->%v (%s) total=%v", p.pid, rec.From, rec.To, rec.Reason, rec.Total))
	return nil
}

func (k *Kernel) migInit(env *sim.Env, p *Process, target *Kernel) error {
	if err := k.cpu.Compute(env, k.params.MigInitCPU); err != nil {
		return err
	}
	if _, err := k.ep.Call(env, target.host, "k.migInit", migInitArgs{
		PID: p.pid, Version: k.migrationVersion,
	}, k.params.MigInitBytes); err != nil {
		return fmt.Errorf("migration handshake: %w", err)
	}
	return nil
}

// transferStreams moves every open stream (including VM backing streams) to
// the target host, with per-file kernel bookkeeping cost on top of the I/O
// server coordination performed by the file system. It returns the streams
// actually moved so an aborting migration can move them back — on error the
// partial list covers everything transferred before the failure.
func (k *Kernel) transferStreams(env *sim.Env, p *Process, target *Kernel, rec *MigrationRecord) ([]*fs.Stream, error) {
	streams := p.openStreams()
	if p.space != nil {
		for _, seg := range p.space.Segments() {
			if seg.Backing != nil {
				streams = append(streams, seg.Backing)
			}
		}
	}
	var moved []*fs.Stream
	for _, st := range streams {
		if err := k.cpu.Compute(env, k.params.MigPerFileCPU); err != nil {
			return moved, err
		}
		if err := k.fsc.MoveStream(env, st, target.host); err != nil {
			return moved, fmt.Errorf("move %s: %w", st.Path, err)
		}
		if k.cluster.confined {
			// The destination client's version/size updates for this move are
			// pended on the source client (MoveStream cannot write another
			// shard's tables); carry them on the process, which applies them
			// after it rehomes onto the target shard. Harvesting per call
			// keeps concurrent migrations from the same source untangled —
			// MoveStream cannot yield between pending and returning.
			p.migRecon = append(p.migRecon, k.fsc.TakeReconciles()...)
		}
		moved = append(moved, st)
		p.migMoved = moved
		rec.Files++
	}
	return moved, nil
}

// transferPCB ships the process control block and installs the process in
// the target's tables.
func (k *Kernel) transferPCB(env *sim.Env, p *Process, target *Kernel) error {
	if err := k.cpu.Compute(env, k.params.MigPCBCPU); err != nil {
		return err
	}
	if _, err := k.ep.Call(env, target.host, "k.migPCB", migPCBArgs{
		PID: p.pid, Proc: p,
	}, k.params.MigPCBBytes); err != nil {
		return fmt.Errorf("pcb transfer: %w", err)
	}
	return nil
}

// EvictAll migrates every evictable foreign process off this host and
// waits for the evictions to complete. Sprite triggers this when a
// workstation's owner returns. The destination is the process's home
// machine unless an eviction target policy is installed (the re-select
// ablation).
func (k *Kernel) EvictAll(env *sim.Env) error {
	var waits []*sim.Future
	for _, p := range k.ForeignProcesses() {
		if !p.evictable || p.state == StateExited {
			continue
		}
		target := p.home
		if k.evictTarget != nil {
			if t := k.evictTarget(env, p); t != nil && t != k {
				target = t
			}
		}
		waits = append(waits, k.RequestMigration(p, target, "eviction"))
		k.stats.Evictions++
		k.cluster.emitEnv(env, "eviction", fmt.Sprintf("%v evicted from %v to %v", p.pid, k.host, target.host))
	}
	for _, w := range waits {
		if _, err := w.Wait(env); err != nil {
			// A process that exits before reaching its migration point
			// has vacated the host on its own; that is a successful
			// eviction, not a failure.
			if errors.Is(err, ErrNoSuchProcess) {
				continue
			}
			return fmt.Errorf("eviction: %w", err)
		}
	}
	return nil
}

// SetEvictionTarget installs a policy choosing where evicted processes go
// (nil, the default, evicts home as Sprite does; returning nil from the
// policy also falls back to home).
func (k *Kernel) SetEvictionTarget(f func(env *sim.Env, p *Process) *Kernel) {
	k.evictTarget = f
}

// --- remote exec convenience (the pmake path) ---

// ForkRemoteExec forks a child that immediately execs `name` on the target
// host: fork locally, migrate at exec time (no VM transfer), then build the
// new image remotely. This is how pmake and other load-sharing applications
// use migration in Sprite.
func (c *Ctx) ForkRemoteExec(name string, prog Program, cfg ProcConfig, target rpc.HostID) (*Process, error) {
	tk := c.proc.cur.cluster.KernelOn(target)
	if tk == nil {
		return nil, fmt.Errorf("%w: %v", rpc.ErrNoHost, target)
	}
	trampoline := func(cc *Ctx) error {
		return cc.Exec(name, prog, cfg)
	}
	child, err := c.Fork(name, trampoline, ProcConfig{})
	if err != nil {
		return nil, err
	}
	// Pend the exec-time migration before the child reaches its exec.
	c.proc.cur.RequestExecMigration(child, tk, "remote-exec")
	return child, nil
}

// corPager satisfies post-migration faults by pulling pages from the source
// host (Accent/Zayas copy-on-reference).
type corPager struct {
	src *Kernel
	dst *Kernel
	pid PID
}

var _ vm.Pager = (*corPager)(nil)

func (p *corPager) PageIn(env *sim.Env, seg *vm.Segment, page int) error {
	_, err := p.dst.ep.Call(env, p.src.host, "k.fetchPage", fetchPageArgs{PID: p.pid, Page: page}, 32)
	return err
}
