package core

import (
	"time"

	"sprite/internal/fs"
	"sprite/internal/netsim"
	"sprite/internal/rpc"
	"sprite/internal/vm"
)

// Params collects every calibration constant in the model. The defaults
// approximate the Sun-3-class workstations and 10 Mbit/s Ethernet of the
// thesis's testbed; EXPERIMENTS.md records which results are sensitive to
// which constants, and the ablation benches sweep the interesting ones.
type Params struct {
	Net netsim.Params
	RPC rpc.Params
	FS  fs.Params
	VM  vm.Params
	Sim SimParams

	// CPUQuantum is the timesharing quantum of each host's scheduler.
	CPUQuantum time.Duration
	// SyscallCPU is the local kernel-call overhead (trap + dispatch).
	SyscallCPU time.Duration
	// ForkCPU is the local cost of fork (PCB setup; Sprite used COW so the
	// address-space cost is deferred to touches).
	ForkCPU time.Duration
	// ExecCPU is the local cost of exec excluding code page-ins, which are
	// charged naturally as the new program touches its text.
	ExecCPU time.Duration
	// ExitCPU is the local cost of process teardown.
	ExitCPU time.Duration

	// MigInitCPU is the handshake cost at each end of a migration (version
	// check, allocating the skeleton PCB).
	MigInitCPU time.Duration
	// MigInitBytes is the wire size of the migration handshake.
	MigInitBytes int
	// MigPCBCPU is the cost of encapsulating and installing the process
	// control block and other untyped process state.
	MigPCBCPU time.Duration
	// MigPCBBytes is the wire size of the transferred PCB state.
	MigPCBBytes int
	// MigPerFileCPU is the per-open-stream bookkeeping cost at migration
	// time, in addition to the fs RPCs the stream move itself performs.
	MigPerFileCPU time.Duration

	// IdleLoadThreshold and IdleInputAge define host availability: load
	// average below the threshold and no user input for at least the age
	// (Sprite required roughly load < 0.3 and 30 s of input silence).
	IdleLoadThreshold float64
	IdleInputAge      time.Duration

	// PageWireOverhead is the per-page message overhead for strategies
	// that ship pages directly between kernels.
	PageWireOverhead int

	// Batch configures the batched migration data plane.
	Batch BatchParams
}

// SimParams selects and tunes the event kernel (DESIGN.md §13). The zero
// value is the serial oracle; the conservative parallel kernel commits an
// event order that is bit-for-bit identical to it, so flipping Parallel can
// never change a result — only wallclock.
type SimParams struct {
	// Parallel dispatches shard-confined activities on worker goroutines.
	// All cluster kernels live on the exclusive shard and are unaffected;
	// parallelism comes from confined daemons (internal/workload.BgLoad).
	Parallel bool
	// Workers is the worker-goroutine count when Parallel is set
	// (0 = GOMAXPROCS).
	Workers int
	// Lookahead is the conservative horizon: confined events closer than
	// this to the window head commit without cross-shard coordination.
	// 0 derives it from Net.Latency, the propagation delay that already
	// lower-bounds any cross-host interaction.
	Lookahead time.Duration
	// ConfineHosts homes every simulated host on its own shard: RPC
	// dispatchers, fs servers, and process activities for host H run
	// confined to shard H, and all cross-host interaction rides mailboxes
	// with delay >= lookahead. Combined with Parallel this dispatches the
	// whole RPC/FS/migration plane concurrently inside lookahead windows;
	// without Parallel it exercises the identical code path under the
	// serial oracle (which is how equivalence is checked). Confined
	// clusters trade generality for speed — see DESIGN.md §14 for the
	// contract (uncontended network, no host crashes, no migration aborts,
	// drivers pinned to host shards via BootOn).
	ConfineHosts bool
}

// BatchParams holds the knobs of the batched, pipelined migration data
// plane. The batched path is the default; disabling it restores the legacy
// one-RPC-per-page behaviour as an ablation.
type BatchParams struct {
	// Enabled routes migration VM traffic through the bulk-transfer RPC
	// path: dirty pages flush as coalesced runs (fs.writeBulk), direct-copy
	// strategies ship pages as pipelined fragment streams (k.migPages), and
	// the migrated process demand-pages through the readahead pager.
	Enabled bool
	// MaxRunPages bounds one bulk transfer's length in pages (0 =
	// unlimited): long flush runs are split so a single call never
	// monopolizes the server or the wire.
	MaxRunPages int
	// PrefetchPages is the target-side readahead window: a post-migration
	// fault pulls up to this many pages in one bulk read. Values < 2
	// disable readahead.
	PrefetchPages int
	// OverlapStreams runs the open-stream transfer concurrently with the
	// VM transfer during migration, instead of strictly after it.
	OverlapStreams bool
}

// DefaultParams returns the Sun-3-era calibration.
func DefaultParams() Params {
	return Params{
		Net: netsim.DefaultParams(),
		RPC: rpc.DefaultParams(),
		FS:  fs.DefaultParams(),
		VM:  vm.DefaultParams(),

		CPUQuantum: 20 * time.Millisecond,
		SyscallCPU: 100 * time.Microsecond,
		ForkCPU:    8 * time.Millisecond,
		ExecCPU:    20 * time.Millisecond,
		ExitCPU:    4 * time.Millisecond,

		MigInitCPU:    6 * time.Millisecond,
		MigInitBytes:  128,
		MigPCBCPU:     12 * time.Millisecond,
		MigPCBBytes:   4096,
		MigPerFileCPU: 4 * time.Millisecond,

		IdleLoadThreshold: 0.3,
		IdleInputAge:      30 * time.Second,

		PageWireOverhead: 64,

		Batch: BatchParams{
			Enabled:        true,
			MaxRunPages:    256,
			PrefetchPages:  16,
			OverlapStreams: true,
		},
	}
}
