package core

import (
	"errors"
	"fmt"
	"time"

	"sprite/internal/fs"
	"sprite/internal/rpc"
	"sprite/internal/sim"
	"sprite/internal/vm"
)

// Errors visible to programs and kernels.
var (
	// ErrKilled is delivered to a program when its process is killed.
	ErrKilled = errors.New("core: process killed")
	// ErrNoSuchProcess is returned for operations on unknown pids.
	ErrNoSuchProcess = errors.New("core: no such process")
	// ErrNotMigratable is returned when a process refuses migration (e.g.
	// it uses shared writable memory, which Sprite disallows migrating).
	ErrNotMigratable = errors.New("core: process not migratable")
	// ErrBadFD is returned for operations on invalid file descriptors.
	ErrBadFD = errors.New("core: bad file descriptor")
	// ErrVersionMismatch is returned when source and target kernels have
	// incompatible migration versions.
	ErrVersionMismatch = errors.New("core: migration version mismatch")
	// ErrNoChildren is returned by Wait when the process has no children.
	ErrNoChildren = errors.New("core: no children to wait for")
	// ErrHostCrashed is delivered to a program when the host it runs on (or
	// its home machine) crashes under fault injection.
	ErrHostCrashed = errors.New("core: host crashed")

	// errExit is the internal unwinding sentinel used by Ctx.Exit.
	errExit = errors.New("core: process exited")
)

// CrashStatus is the exit status recorded for a process destroyed by a host
// crash (distinct from the -1 used for kills and program errors).
const CrashStatus = -2

// PID identifies a process. Sprite process ids encode the home machine: a
// process keeps its pid across migrations and the home field is how other
// kernels route process-specific operations.
type PID struct {
	Home rpc.HostID
	Seq  int
}

// String renders the pid in "host.seq" form.
func (p PID) String() string { return fmt.Sprintf("%v.%d", p.Home, p.Seq) }

// NilPID is the zero PID.
var NilPID = PID{}

// ProcessState describes a process's lifecycle.
type ProcessState int

// Process states.
const (
	StateRunning ProcessState = iota + 1
	StateMigrating
	StateExited
)

func (s ProcessState) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateMigrating:
		return "migrating"
	case StateExited:
		return "exited"
	default:
		return "?"
	}
}

// Program is the body of a simulated user process. It runs as one sim
// activity and interacts with the world only through its Ctx — each Ctx
// method is a kernel call, dispatched per the Appendix-A handling table, so
// a program behaves identically before and after migration.
type Program func(ctx *Ctx) error

// migrationRequest is a pending migration set on a process; the process
// performs it at its next migration point (kernel-call entry or compute
// quantum boundary; at exec time when AtExec is set).
type migrationRequest struct {
	target *Kernel
	atExec bool
	reason string
	done   *sim.Future
}

// Process is a simulated Sprite user process.
type Process struct {
	pid    PID
	name   string
	uid    string
	state  ProcessState
	parent PID
	pgrp   PID // process group (leader's pid); inherited across fork

	home *Kernel // never changes: the transparency anchor
	cur  *Kernel // changes on migration

	// homeEpoch is the home host's boot epoch when the process started. The
	// reaping pass uses it to tell this incarnation's processes from ones
	// started after a reboot of the same address.
	homeEpoch rpc.Epoch
	// crashEpoch, for a crash-destroyed process, is the boot epoch of the
	// host it died on (set by destroyProcess; guards late reaping).
	crashEpoch rpc.Epoch

	space *vm.AddressSpace
	files []*fs.Stream // descriptor table; nil entries are closed fds

	program Program
	args    []string

	exited     *sim.Future // resolves to exit status (int)
	exitStatus int

	killed     bool
	crashed    bool     // destroyed by a host crash; the activity must unwind silently
	env        *sim.Env // the process activity's Env, for crash interruption
	pending    []Signal
	handlers   map[Signal]SignalHandler
	contWaiter *sim.Future
	cwd        string
	migrateReq *migrationRequest
	// In-flight migration progress, maintained so crash injection can
	// release stream references a dead mid-migration process already moved
	// to a surviving target host.
	migTarget *Kernel
	migMoved  []*fs.Stream
	// migRecon carries the destination fs client's stream-move bookkeeping
	// across a confined migration: MoveStream on the source shard cannot
	// write the target client's tables, so the updates ride here until
	// confinedResume applies them on the target's shard.
	migRecon []fs.Reconcile
	// sharedMemory marks the process as using shared writable memory,
	// which Sprite refuses to migrate.
	sharedMemory bool
	// evictable processes may be migrated away by host reclaiming.
	evictable bool

	migrations int
	cpuUsed    time.Duration
	created    time.Duration
}

// PID returns the process id.
func (p *Process) PID() PID { return p.pid }

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// State returns the lifecycle state.
func (p *Process) State() ProcessState { return p.state }

// Home returns the home kernel.
func (p *Process) Home() *Kernel { return p.home }

// Current returns the kernel where the process currently executes.
func (p *Process) Current() *Kernel { return p.cur }

// Foreign reports whether the process executes away from home.
func (p *Process) Foreign() bool { return p.cur != p.home }

// Migrations returns how many times the process has migrated.
func (p *Process) Migrations() int { return p.migrations }

// HomeEpoch returns the home host's boot epoch when the process started.
func (p *Process) HomeEpoch() rpc.Epoch { return p.homeEpoch }

// CrashEpoch returns, for a crash-destroyed process, the boot epoch of the
// host it died on (0 otherwise).
func (p *Process) CrashEpoch() rpc.Epoch { return p.crashEpoch }

// Space returns the process's address space.
func (p *Process) Space() *vm.AddressSpace { return p.space }

// CPUUsed returns accumulated compute time.
func (p *Process) CPUUsed() time.Duration { return p.cpuUsed }

// SetShared marks the process as using shared writable memory (it becomes
// non-migratable, as in Sprite).
func (p *Process) SetShared(shared bool) { p.sharedMemory = shared }

// SetEvictable controls whether eviction may move this process.
func (p *Process) SetEvictable(e bool) { p.evictable = e }

// Exited returns a future resolving to the exit status.
func (p *Process) Exited() *sim.Future { return p.exited }

// confinedResume finishes a migration's switch-over on a confined cluster:
// the process activity rehomes onto its new host's shard (arriving a
// lookahead later, which is what gives every source-side write of the
// migration a happens-before edge to target-side readers), then applies the
// stream bookkeeping the source shard pended for the destination fs client.
// On ordinary clusters it is a no-op, so callers need not branch.
func (p *Process) confinedResume(env *sim.Env) error {
	c := p.cur.cluster
	if !c.confined {
		return nil
	}
	if shard := int(p.cur.host); env.Shard() != shard {
		if err := env.Rehome(shard, c.sim.Lookahead()); err != nil {
			return err
		}
	}
	if rs := p.migRecon; len(rs) > 0 {
		p.migRecon = nil
		p.cur.fsc.ApplyReconciles(rs)
	}
	return nil
}

// openStreams returns the distinct open streams in the descriptor table.
func (p *Process) openStreams() []*fs.Stream {
	seen := make(map[*fs.Stream]bool)
	var out []*fs.Stream
	for _, st := range p.files {
		if st != nil && !seen[st] {
			seen[st] = true
			out = append(out, st)
		}
	}
	return out
}

// Ctx is a program's window onto the kernel: its system call interface.
type Ctx struct {
	proc *Process
	env  *sim.Env
	// forwarded marks that the current kernel call already paid its trip
	// home (set by the forward-everything baseline to avoid double
	// charging calls that are home-forwarded anyway).
	forwarded bool
}

// Process returns the calling process.
func (c *Ctx) Process() *Process { return c.proc }

// Env returns the simulation environment (for Sleep in workload code).
func (c *Ctx) Env() *sim.Env { return c.env }

// Now returns the current virtual time.
func (c *Ctx) Now() time.Duration { return c.env.Now() }
