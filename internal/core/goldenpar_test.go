package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenFrozenUnderParallelKernel is the golden freeze: the committed
// migration snapshots must pass byte-for-byte with the conservative
// parallel kernel switched on, at every worker count. The parallel kernel
// commits the serial event order exactly, so a golden that moves here is a
// kernel bug, never an acceptable regeneration.
func TestGoldenFrozenUnderParallelKernel(t *testing.T) {
	for _, batched := range []bool{true, false} {
		mode := "legacy"
		if batched {
			mode = "batched"
		}
		want, err := os.ReadFile(filepath.Join("testdata", "migration_"+mode+".golden"))
		if err != nil {
			t.Fatalf("missing golden (regenerate with -update-golden): %v", err)
		}
		for _, workers := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("%s/workers%d", mode, workers), func(t *testing.T) {
				got := migrationSnapshot(t, 1, batched, SimParams{Parallel: true, Workers: workers})
				if got != string(want) {
					t.Fatalf("parallel kernel moved the %s golden:\n--- got ---\n%s\n--- want ---\n%s", mode, got, want)
				}
			})
		}
	}
}

