package core

import (
	"errors"
	"testing"
	"time"

	"sprite/internal/fs"
	"sprite/internal/sim"
)

// newCluster builds a small test cluster with a seeded binary.
func newCluster(t *testing.T, workstations int) *Cluster {
	t.Helper()
	c, err := NewCluster(Options{Workstations: workstations, FileServers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SeedBinary("/bin/prog", 128*1024); err != nil {
		t.Fatal(err)
	}
	return c
}

func runCluster(t *testing.T, c *Cluster) {
	t.Helper()
	if err := c.Run(0); err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	if n := c.Sim().LiveActivities(); n != 0 {
		t.Fatalf("leaked %d activities", n)
	}
}

var smallProc = ProcConfig{Binary: "/bin/prog", CodePages: 4, HeapPages: 8, StackPages: 2}

func TestProcessRunsAndExits(t *testing.T) {
	c := newCluster(t, 1)
	var status any
	c.Boot("boot", func(env *sim.Env) error {
		p, err := c.Workstation(0).StartProcess(env, "hello", func(ctx *Ctx) error {
			if err := ctx.Compute(100 * time.Millisecond); err != nil {
				return err
			}
			return ctx.Exit(7)
		}, smallProc)
		if err != nil {
			return err
		}
		status, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	if status != 7 {
		t.Fatalf("status = %v, want 7", status)
	}
}

func TestComputeChargesCPUAndLoad(t *testing.T) {
	c := newCluster(t, 1)
	k := c.Workstation(0)
	c.Boot("boot", func(env *sim.Env) error {
		p, err := k.StartProcess(env, "burn", func(ctx *Ctx) error {
			return ctx.Compute(2 * time.Second)
		}, smallProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	if c.Sim().Now() < 2*time.Second {
		t.Fatalf("elapsed %v, want >= 2s", c.Sim().Now())
	}
	if k.CPU().BusyTime(c.Sim().Now()) < 2*time.Second {
		t.Fatalf("cpu busy %v, want >= 2s", k.CPU().BusyTime(c.Sim().Now()))
	}
}

func TestForkAndWait(t *testing.T) {
	c := newCluster(t, 1)
	var waited PID
	var wstatus int
	c.Boot("boot", func(env *sim.Env) error {
		p, err := c.Workstation(0).StartProcess(env, "parent", func(ctx *Ctx) error {
			child, err := ctx.Fork("child", func(cc *Ctx) error {
				if err := cc.Compute(50 * time.Millisecond); err != nil {
					return err
				}
				return cc.Exit(3)
			}, smallProc)
			if err != nil {
				return err
			}
			waited, wstatus, err = ctx.Wait()
			if err != nil {
				return err
			}
			if waited != child.PID() {
				t.Errorf("waited %v, want %v", waited, child.PID())
			}
			return nil
		}, smallProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	if wstatus != 3 {
		t.Fatalf("wait status = %d, want 3", wstatus)
	}
}

func TestWaitNoChildren(t *testing.T) {
	c := newCluster(t, 1)
	var werr error
	c.Boot("boot", func(env *sim.Env) error {
		p, err := c.Workstation(0).StartProcess(env, "lonely", func(ctx *Ctx) error {
			_, _, werr = ctx.Wait()
			return nil
		}, smallProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	if !errors.Is(werr, ErrNoChildren) {
		t.Fatalf("err = %v, want ErrNoChildren", werr)
	}
}

func TestFileSyscalls(t *testing.T) {
	c := newCluster(t, 1)
	c.Boot("boot", func(env *sim.Env) error {
		p, err := c.Workstation(0).StartProcess(env, "io", func(ctx *Ctx) error {
			fd, err := ctx.Open("/out", fs.WriteMode, fs.OpenOptions{Create: true})
			if err != nil {
				return err
			}
			if _, err := ctx.Write(fd, []byte("payload")); err != nil {
				return err
			}
			if err := ctx.Close(fd); err != nil {
				return err
			}
			rd, err := ctx.Open("/out", fs.ReadMode, fs.OpenOptions{})
			if err != nil {
				return err
			}
			got, err := ctx.Read(rd, 100)
			if err != nil {
				return err
			}
			if string(got) != "payload" {
				t.Errorf("read %q", got)
			}
			size, err := ctx.Stat("/out")
			if err != nil {
				return err
			}
			if size != 7 {
				t.Errorf("size = %d", size)
			}
			return ctx.Close(rd)
		}, smallProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
}

// migrateOnce runs a process that dirties memory, migrates it, and verifies
// it completes correctly on the target.
func migrateOnce(t *testing.T, strategy TransferStrategy) (c *Cluster, rec MigrationRecord) {
	t.Helper()
	c = newCluster(t, 2)
	c.SetStrategyAll(strategy)
	src, dst := c.Workstation(0), c.Workstation(1)
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "mover", func(ctx *Ctx) error {
			if err := ctx.TouchHeap(0, 8, true); err != nil {
				return err
			}
			if err := ctx.Migrate(dst.Host()); err != nil {
				return err
			}
			if ctx.Process().Current() != dst {
				t.Errorf("process on %v, want %v", ctx.Process().Current().Host(), dst.Host())
			}
			// Touch memory again on the target: pages must come back.
			if err := ctx.TouchHeap(0, 8, true); err != nil {
				return err
			}
			return ctx.Compute(10 * time.Millisecond)
		}, smallProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	recs := c.MigrationRecords()
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1", len(recs))
	}
	return c, recs[0]
}

func TestMigrationSpriteFlush(t *testing.T) {
	c, rec := migrateOnce(t, SpriteFlushStrategy{})
	if rec.Strategy != "sprite-flush" {
		t.Fatalf("strategy = %s", rec.Strategy)
	}
	if rec.PagesFlushed != 8 {
		t.Fatalf("flushed = %d, want 8", rec.PagesFlushed)
	}
	if rec.Residual {
		t.Fatal("sprite flush must not leave residual dependencies")
	}
	if rec.Total <= 0 || rec.Freeze != rec.Total {
		t.Fatalf("times: total=%v freeze=%v", rec.Total, rec.Freeze)
	}
	// Stream transfer must include the heap/stack backing and binary.
	if rec.Files < 3 {
		t.Fatalf("files = %d, want >= 3", rec.Files)
	}
	src := c.Workstation(0)
	if src.Stats().MigrationsOut != 1 {
		t.Fatalf("src stats = %+v", src.Stats())
	}
	if c.Workstation(1).Stats().MigrationsIn != 1 {
		t.Fatalf("dst stats = %+v", c.Workstation(1).Stats())
	}
}

func TestMigrationFullCopy(t *testing.T) {
	_, rec := migrateOnce(t, FullCopyStrategy{})
	if rec.PagesCopied == 0 {
		t.Fatal("full copy moved no pages")
	}
	if rec.Residual {
		t.Fatal("full copy must not leave residual dependencies")
	}
}

func TestMigrationCopyOnReference(t *testing.T) {
	_, rec := migrateOnce(t, CopyOnReferenceStrategy{})
	if !rec.Residual {
		t.Fatal("copy-on-reference must record a residual dependency")
	}
	// Page tables only: far smaller than one page.
	if rec.VMBytes >= 8192 {
		t.Fatalf("vm bytes = %d, want < one page", rec.VMBytes)
	}
}

func TestMigrationPreCopy(t *testing.T) {
	_, rec := migrateOnce(t, PreCopyStrategy{RedirtyPagesPerSec: 100})
	if rec.PagesCopied == 0 {
		t.Fatal("pre-copy moved no pages")
	}
	if rec.Freeze >= rec.Total {
		t.Fatalf("pre-copy freeze %v should be < total %v", rec.Freeze, rec.Total)
	}
}

func TestFreezeTimeOrdering(t *testing.T) {
	// The central design comparison: for the same dirty footprint,
	// freeze(COR) < freeze(pre-copy) < freeze(full-copy), and Sprite's
	// flush sits near full copy (bounded by dirty pages, not all pages).
	freeze := func(s TransferStrategy) time.Duration {
		_, rec := migrateOnce(t, s)
		return rec.Freeze
	}
	cor := freeze(CopyOnReferenceStrategy{})
	pre := freeze(PreCopyStrategy{RedirtyPagesPerSec: 100})
	full := freeze(FullCopyStrategy{})
	if !(cor < full) {
		t.Errorf("freeze: cor=%v full=%v, want cor < full", cor, full)
	}
	if !(pre < full) {
		t.Errorf("freeze: pre=%v full=%v, want pre < full", pre, full)
	}
}

func TestTransparencyAcrossMigration(t *testing.T) {
	c := newCluster(t, 2)
	src, dst := c.Workstation(0), c.Workstation(1)
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "transparent", func(ctx *Ctx) error {
			pidBefore, err := ctx.GetPID()
			if err != nil {
				return err
			}
			hostBefore, err := ctx.GetHostname()
			if err != nil {
				return err
			}
			if err := ctx.Migrate(dst.Host()); err != nil {
				return err
			}
			pidAfter, err := ctx.GetPID()
			if err != nil {
				return err
			}
			hostAfter, err := ctx.GetHostname()
			if err != nil {
				return err
			}
			if pidBefore != pidAfter {
				t.Errorf("pid changed across migration: %v -> %v", pidBefore, pidAfter)
			}
			if hostBefore != hostAfter {
				t.Errorf("hostname changed across migration: %v -> %v", hostBefore, hostAfter)
			}
			if hostAfter != src.Host().String() {
				t.Errorf("hostname = %v, want home %v", hostAfter, src.Host())
			}
			return nil
		}, smallProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
}

func TestOpenFileSurvivesMigration(t *testing.T) {
	c := newCluster(t, 2)
	src, dst := c.Workstation(0), c.Workstation(1)
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "filemover", func(ctx *Ctx) error {
			fd, err := ctx.Open("/log", fs.WriteMode, fs.OpenOptions{Create: true})
			if err != nil {
				return err
			}
			if _, err := ctx.Write(fd, []byte("before ")); err != nil {
				return err
			}
			if err := ctx.Migrate(dst.Host()); err != nil {
				return err
			}
			if _, err := ctx.Write(fd, []byte("after")); err != nil {
				return err
			}
			return ctx.Close(fd)
		}, smallProc)
		if err != nil {
			return err
		}
		if _, err := p.Exited().Wait(env); err != nil {
			return err
		}
		// Verify the file's contents from a third party.
		got, err := dst.FSClient().ReadFile(env, "/log")
		if err != nil {
			return err
		}
		if string(got) != "before after" {
			t.Errorf("file = %q, want %q", got, "before after")
		}
		return nil
	})
	runCluster(t, c)
}

func TestForwardedCallsCostMoreWhenForeign(t *testing.T) {
	c := newCluster(t, 2)
	src, dst := c.Workstation(0), c.Workstation(1)
	var localCost, remoteCost time.Duration
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "timer", func(ctx *Ctx) error {
			t0 := ctx.Now()
			if _, err := ctx.GetTimeOfDay(); err != nil {
				return err
			}
			localCost = ctx.Now() - t0
			if err := ctx.Migrate(dst.Host()); err != nil {
				return err
			}
			t0 = ctx.Now()
			if _, err := ctx.GetTimeOfDay(); err != nil {
				return err
			}
			remoteCost = ctx.Now() - t0
			return nil
		}, smallProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	if remoteCost <= localCost {
		t.Fatalf("forwarded gettimeofday %v should exceed local %v", remoteCost, localCost)
	}
	if dst.Stats().ForwardedCalls == 0 {
		t.Fatal("no forwarded calls recorded")
	}
}

func TestExecTimeMigrationSkipsVM(t *testing.T) {
	c := newCluster(t, 2)
	src, dst := c.Workstation(0), c.Workstation(1)
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "launcher", func(ctx *Ctx) error {
			child, err := ctx.ForkRemoteExec("worker", func(cc *Ctx) error {
				if cc.Process().Current() != dst {
					t.Errorf("worker on %v, want %v", cc.Process().Current().Host(), dst.Host())
				}
				return cc.Compute(20 * time.Millisecond)
			}, smallProc, dst.Host())
			if err != nil {
				return err
			}
			_, err = child.Exited().Wait(ctx.Env())
			return err
		}, smallProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	recs := c.MigrationRecords()
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1", len(recs))
	}
	if !recs[0].ExecTime {
		t.Fatal("migration not marked exec-time")
	}
	if recs[0].VMBytes != 0 || recs[0].PagesFlushed != 0 {
		t.Fatalf("exec-time migration moved VM: %+v", recs[0])
	}
	if src.Stats().RemoteExecs != 1 {
		t.Fatalf("remote execs = %d", src.Stats().RemoteExecs)
	}
}

func TestEvictionSendsForeignProcessesHome(t *testing.T) {
	c := newCluster(t, 2)
	home, away := c.Workstation(0), c.Workstation(1)
	c.Boot("boot", func(env *sim.Env) error {
		p, err := home.StartProcess(env, "guest", func(ctx *Ctx) error {
			if err := ctx.Migrate(away.Host()); err != nil {
				return err
			}
			return ctx.Compute(10 * time.Second)
		}, smallProc)
		if err != nil {
			return err
		}
		// Let it migrate and run a bit, then the away host's user returns.
		if err := env.Sleep(2 * time.Second); err != nil {
			return err
		}
		if len(away.ForeignProcesses()) != 1 {
			t.Errorf("foreign on away = %d, want 1", len(away.ForeignProcesses()))
		}
		if err := away.EvictAll(env); err != nil {
			return err
		}
		if len(away.ForeignProcesses()) != 0 {
			t.Error("foreign processes remain after eviction")
		}
		if p.Current() != home {
			t.Errorf("process on %v after eviction, want home", p.Current().Host())
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	if away.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", away.Stats().Evictions)
	}
}

func TestSharedMemoryProcessRefusesMigration(t *testing.T) {
	c := newCluster(t, 2)
	src, dst := c.Workstation(0), c.Workstation(1)
	var merr error
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "shared", func(ctx *Ctx) error {
			ctx.Process().SetShared(true)
			done := src.RequestMigration(ctx.Process(), dst, "test")
			_, merr = done.Wait(ctx.Env())
			return nil
		}, smallProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	if !errors.Is(merr, ErrNotMigratable) {
		t.Fatalf("err = %v, want ErrNotMigratable", merr)
	}
}

func TestMigrationVersionMismatchRejected(t *testing.T) {
	c := newCluster(t, 2)
	src, dst := c.Workstation(0), c.Workstation(1)
	dst.SetMigrationVersion(2)
	var merr error
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "versioned", func(ctx *Ctx) error {
			merr = ctx.Migrate(dst.Host())
			return nil
		}, smallProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	if !errors.Is(merr, ErrVersionMismatch) {
		t.Fatalf("err = %v, want ErrVersionMismatch", merr)
	}
}

func TestKillRoutedThroughHome(t *testing.T) {
	c := newCluster(t, 2)
	src, dst := c.Workstation(0), c.Workstation(1)
	c.Boot("boot", func(env *sim.Env) error {
		victim, err := src.StartProcess(env, "victim", func(ctx *Ctx) error {
			if err := ctx.Migrate(dst.Host()); err != nil {
				return err
			}
			return ctx.Compute(time.Hour)
		}, smallProc)
		if err != nil {
			return err
		}
		if err := env.Sleep(2 * time.Second); err != nil {
			return err
		}
		killer, err := src.StartProcess(env, "killer", func(ctx *Ctx) error {
			return ctx.Kill(victim.PID())
		}, smallProc)
		if err != nil {
			return err
		}
		if _, err := killer.Exited().Wait(env); err != nil {
			return err
		}
		st, err := victim.Exited().Wait(env)
		if err != nil {
			return err
		}
		if st != -1 {
			t.Errorf("victim status = %v, want -1 (killed)", st)
		}
		return nil
	})
	runCluster(t, c)
}

func TestHomeRecordTracksLocation(t *testing.T) {
	c := newCluster(t, 2)
	src, dst := c.Workstation(0), c.Workstation(1)
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "tracked", func(ctx *Ctx) error {
			if err := ctx.Migrate(dst.Host()); err != nil {
				return err
			}
			return ctx.Compute(time.Second)
		}, smallProc)
		if err != nil {
			return err
		}
		if err := env.Sleep(500 * time.Millisecond); err != nil {
			return err
		}
		loc, err := src.LocationOf(p.PID())
		if err != nil {
			return err
		}
		if loc != dst.Host() {
			t.Errorf("location = %v, want %v", loc, dst.Host())
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
}

func TestChildOfForeignProcessBelongsToHome(t *testing.T) {
	c := newCluster(t, 2)
	src, dst := c.Workstation(0), c.Workstation(1)
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "parent", func(ctx *Ctx) error {
			if err := ctx.Migrate(dst.Host()); err != nil {
				return err
			}
			child, err := ctx.Fork("kid", func(cc *Ctx) error {
				return cc.Exit(0)
			}, smallProc)
			if err != nil {
				return err
			}
			if child.PID().Home != src.Host() {
				t.Errorf("child home = %v, want %v", child.PID().Home, src.Host())
			}
			if child.Current() != dst {
				t.Errorf("child runs on %v, want parent's host %v", child.Current().Host(), dst.Host())
			}
			_, _, err = ctx.Wait()
			return err
		}, smallProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
}

func TestIdleDetection(t *testing.T) {
	c := newCluster(t, 1)
	k := c.Workstation(0)
	c.Boot("boot", func(env *sim.Env) error {
		k.NoteInput(env.Now())
		if k.Available(env.Now()) {
			t.Error("host with fresh input should not be available")
		}
		if err := env.Sleep(time.Minute); err != nil {
			return err
		}
		if !k.Available(env.Now()) {
			t.Error("quiet host should be available")
		}
		// Load makes it unavailable even when input is old.
		p, err := k.StartProcess(env, "burn", func(ctx *Ctx) error {
			return ctx.Compute(2 * time.Minute)
		}, smallProc)
		if err != nil {
			return err
		}
		if err := env.Sleep(90 * time.Second); err != nil {
			return err
		}
		if k.Available(env.Now()) {
			t.Error("loaded host should not be available")
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
}

func TestTwoComputeProcessesShareCPU(t *testing.T) {
	c := newCluster(t, 1)
	k := c.Workstation(0)
	var end1, end2 time.Duration
	c.Boot("boot", func(env *sim.Env) error {
		p1, err := k.StartProcess(env, "a", func(ctx *Ctx) error {
			err := ctx.Compute(10 * time.Second)
			end1 = ctx.Now()
			return err
		}, smallProc)
		if err != nil {
			return err
		}
		p2, err := k.StartProcess(env, "b", func(ctx *Ctx) error {
			err := ctx.Compute(10 * time.Second)
			end2 = ctx.Now()
			return err
		}, smallProc)
		if err != nil {
			return err
		}
		if _, err := p1.Exited().Wait(env); err != nil {
			return err
		}
		_, err = p2.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	if end1 < 19*time.Second || end2 < 19*time.Second {
		t.Fatalf("ends = %v, %v; want ~20s (processor sharing)", end1, end2)
	}
}

func TestMigrationDuringComputeAtQuantum(t *testing.T) {
	c := newCluster(t, 2)
	src, dst := c.Workstation(0), c.Workstation(1)
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "busy", func(ctx *Ctx) error {
			return ctx.Compute(5 * time.Second)
		}, smallProc)
		if err != nil {
			return err
		}
		if err := env.Sleep(time.Second); err != nil {
			return err
		}
		done := src.RequestMigration(p, dst, "policy")
		if _, err := done.Wait(env); err != nil {
			return err
		}
		if p.Current() != dst {
			t.Errorf("process on %v, want %v", p.Current().Host(), dst.Host())
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
}

func TestMigrateToSelfIsNoop(t *testing.T) {
	c := newCluster(t, 1)
	k := c.Workstation(0)
	c.Boot("boot", func(env *sim.Env) error {
		p, err := k.StartProcess(env, "self", func(ctx *Ctx) error {
			return ctx.Migrate(k.Host())
		}, smallProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	if len(c.MigrationRecords()) != 0 {
		t.Fatal("self-migration should not record a migration")
	}
}

func TestSyscallTableCoverage(t *testing.T) {
	// Every policy class must be represented, and the calls the simulator
	// dispatches must be classified.
	counts := make(map[HandlingPolicy]int)
	for _, p := range SyscallTable {
		counts[p]++
	}
	for _, p := range []HandlingPolicy{PolicyLocal, PolicyFile, PolicyHome, PolicyTransfer, PolicyDenied} {
		if counts[p] == 0 {
			t.Errorf("no syscalls classified %v", p)
		}
	}
	for _, call := range []string{"getpid", "gettimeofday", "open", "read", "write", "fork", "wait", "exec", "exit", "kill", "migrate", "gethostname"} {
		if _, ok := SyscallTable[call]; !ok {
			t.Errorf("dispatched call %q missing from table", call)
		}
	}
}
