package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sprite/internal/fs"
	"sprite/internal/sim"
)

// This file is the equivalence suite for per-host confinement (DESIGN.md
// §14): every simulated host homed on its own shard, the whole
// RPC/FS/migration plane dispatching inside lookahead windows. The
// conservative kernel commits the serial order bit-for-bit, so a confined
// run must produce the identical OrderDigest, trace stream, and metrics
// snapshot at every worker count — and identical to the serial oracle
// running the same confined code path.

// confinedFingerprint runs one migration-heavy confined scenario and folds
// everything observable — committed order, final virtual time, the full
// trace stream, migration counts, and the metrics snapshot — into one
// string. Any divergence between kernels shows up as a byte difference.
func confinedFingerprint(t *testing.T, strategy TransferStrategy, batched bool, simp SimParams) string {
	t.Helper()
	params := DefaultParams()
	params.Batch.Enabled = batched
	params.Sim = simp
	params.Sim.ConfineHosts = true
	const W = 4
	c, err := NewCluster(Options{Workstations: W, FileServers: 1, Seed: 7, Params: &params})
	if err != nil {
		t.Fatal(err)
	}
	c.SetStrategyAll(strategy)
	var trace strings.Builder
	c.SetTrace(func(at time.Duration, kind, detail string) {
		fmt.Fprintf(&trace, "%v %s %s\n", at, kind, detail)
	})
	if err := c.SeedBinary("/bin/prog", 64<<10); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < W; i++ {
		if err := c.Seed(fmt.Sprintf("/data/f%d", i), []byte(strings.Repeat("x", 2048))); err != nil {
			t.Fatal(err)
		}
	}
	ws := c.Workstations()
	for i := 0; i < W; i++ {
		i := i
		k := ws[i]
		peer := ws[(i+1)%W]
		// Each host's driver boots on that host's shard (BootOn): it starts
		// home processes, requests migrations, and joins exits without ever
		// touching another shard's kernel.
		c.BootOn(k.Host(), fmt.Sprintf("driver-%d", i), func(env *sim.Env) error {
			// A worker that opens a file at home, migrates with the stream,
			// keeps writing from the new host, and computes long enough for
			// the peer's evictor to push it home again mid-run.
			mig, err := k.StartProcess(env, fmt.Sprintf("mig-%d", i), func(ctx *Ctx) error {
				fd, err := ctx.Open(fmt.Sprintf("/data/f%d", i), fs.ReadWriteMode, fs.OpenOptions{})
				if err != nil {
					return err
				}
				if err := ctx.TouchHeap(0, 24, true); err != nil {
					return err
				}
				if err := ctx.Migrate(peer.Host()); err != nil {
					return err
				}
				if _, err := ctx.Write(fd, []byte(strings.Repeat("y", 512))); err != nil {
					return err
				}
				if err := ctx.TouchHeap(0, 8, false); err != nil {
					return err
				}
				if err := ctx.Compute(150 * time.Millisecond); err != nil {
					return err
				}
				return ctx.Close(fd)
			}, ProcConfig{Binary: "/bin/prog", CodePages: 4, HeapPages: 24, StackPages: 2})
			if err != nil {
				return err
			}
			// The pmake path: a master forks a child that execs on the peer
			// (exec-time migration, no VM transfer), then waits for it. The
			// child exits foreign, so its exit settles home via k.exitNotify.
			master, err := k.StartProcess(env, fmt.Sprintf("master-%d", i), func(ctx *Ctx) error {
				_, err := ctx.ForkRemoteExec(fmt.Sprintf("rx-%d", i), func(cc *Ctx) error {
					if err := cc.TouchHeap(0, 8, true); err != nil {
						return err
					}
					return cc.Compute(30 * time.Millisecond)
				}, ProcConfig{Binary: "/bin/prog", CodePages: 2, HeapPages: 8, StackPages: 1}, peer.Host())
				if err != nil {
					return err
				}
				_, _, err = ctx.Wait()
				return err
			}, ProcConfig{CodePages: 1, HeapPages: 2, StackPages: 1})
			if err != nil {
				return err
			}
			if _, err := mig.Exited().Wait(env); err != nil {
				return err
			}
			_, err = master.Exited().Wait(env)
			return err
		})
		// Each host also reclaims itself partway through the run, evicting
		// whatever foreign processes landed here back to their homes.
		c.BootOn(k.Host(), fmt.Sprintf("evictor-%d", i), func(env *sim.Env) error {
			if err := env.Sleep(100 * time.Millisecond); err != nil {
				return err
			}
			return k.EvictAll(env)
		})
	}
	runCluster(t, c)
	if msgs := c.CheckInvariants(true); len(msgs) > 0 {
		t.Fatalf("invariants violated:\n%s", strings.Join(msgs, "\n"))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digest=%#x now=%v\n", c.Sim().OrderDigest(), c.Sim().Now())
	fmt.Fprintf(&b, "migrations=%d\n", len(c.MigrationRecords()))
	b.WriteString(trace.String())
	b.WriteString(c.MetricsSnapshot().Text())
	return b.String()
}

// TestConfinedMigrationEquivalence is the core acceptance property of host
// confinement: for every VM transfer strategy, over both data planes, the
// serial oracle and the parallel kernel at 1/2/4/8 workers produce
// byte-identical fingerprints (order digest + traces + metrics) with hosts
// confined.
func TestConfinedMigrationEquivalence(t *testing.T) {
	strategies := []TransferStrategy{
		SpriteFlushStrategy{},
		FullCopyStrategy{},
		CopyOnReferenceStrategy{},
		PreCopyStrategy{RedirtyPagesPerSec: 100},
	}
	for _, batched := range []bool{true, false} {
		mode := "legacy"
		if batched {
			mode = "batched"
		}
		for _, strategy := range strategies {
			strategy := strategy
			t.Run(mode+"/"+strategy.Name(), func(t *testing.T) {
				serial := confinedFingerprint(t, strategy, batched, SimParams{})
				for _, workers := range []int{1, 2, 4, 8} {
					par := confinedFingerprint(t, strategy, batched, SimParams{Parallel: true, Workers: workers})
					if par != serial {
						t.Fatalf("workers=%d diverged from serial oracle:\n--- parallel ---\n%.2000s\n--- serial ---\n%.2000s", workers, par, serial)
					}
				}
			})
		}
	}
}

// TestConfinedGoldenFrozen pins the batched sprite-flush confined
// fingerprint byte for byte under testdata/. A golden that moves here means
// either an intentional cost-model change (regenerate with -update-golden)
// or a determinism leak in the confined plane.
func TestConfinedGoldenFrozen(t *testing.T) {
	got := confinedFingerprint(t, SpriteFlushStrategy{}, true, SimParams{Parallel: true, Workers: 4})
	path := filepath.Join("testdata", "confined_batched.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Fatalf("confined golden moved:\n--- got ---\n%.3000s\n--- want ---\n%.3000s", got, string(want))
	}
}

// TestConfinedCrossHostStorm is the -race stress leg: a dense all-to-all
// storm of migrating, forking, and file-writing processes across 8 confined
// hosts, dispatched on 4 workers. Running it under `go test -race` (the
// `make race-confined` leg) audits every shard handoff in the confined
// RPC/FS/migration plane; the digest check keeps the storm honest against
// the serial oracle.
func TestConfinedCrossHostStorm(t *testing.T) {
	storm := func(simp SimParams) string {
		params := DefaultParams()
		params.Sim = simp
		params.Sim.ConfineHosts = true
		const W = 8
		c, err := NewCluster(Options{Workstations: W, FileServers: 2, Seed: 11, Params: &params})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SeedBinary("/bin/prog", 32<<10); err != nil {
			t.Fatal(err)
		}
		if err := c.Seed("/data/shared", []byte(strings.Repeat("s", 4096))); err != nil {
			t.Fatal(err)
		}
		ws := c.Workstations()
		strategies := []TransferStrategy{
			SpriteFlushStrategy{},
			FullCopyStrategy{},
			CopyOnReferenceStrategy{},
			PreCopyStrategy{RedirtyPagesPerSec: 100},
		}
		for i := 0; i < W; i++ {
			i := i
			k := ws[i]
			k.SetStrategy(strategies[i%len(strategies)])
			c.BootOn(k.Host(), fmt.Sprintf("storm-%d", i), func(env *sim.Env) error {
				var procs []*Process
				for j := 0; j < 3; j++ {
					target := ws[(i+j+1)%W]
					p, err := k.StartProcess(env, fmt.Sprintf("s-%d-%d", i, j), func(ctx *Ctx) error {
						if err := ctx.TouchHeap(0, 12, true); err != nil {
							return err
						}
						if err := ctx.Migrate(target.Host()); err != nil {
							return err
						}
						fd, err := ctx.Open("/data/shared", fs.ReadMode, fs.OpenOptions{})
						if err != nil {
							return err
						}
						if _, err := ctx.Read(fd, 1024); err != nil {
							return err
						}
						if err := ctx.Close(fd); err != nil {
							return err
						}
						if err := ctx.Compute(40 * time.Millisecond); err != nil {
							return err
						}
						// Bounce once more before exiting foreign.
						return ctx.Migrate(ws[(i+j+3)%W].Host())
					}, ProcConfig{Binary: "/bin/prog", CodePages: 2, HeapPages: 12, StackPages: 1})
					if err != nil {
						return err
					}
					procs = append(procs, p)
				}
				for _, p := range procs {
					if _, err := p.Exited().Wait(env); err != nil {
						return err
					}
				}
				return nil
			})
		}
		runCluster(t, c)
		if msgs := c.CheckInvariants(true); len(msgs) > 0 {
			t.Fatalf("invariants violated:\n%s", strings.Join(msgs, "\n"))
		}
		return fmt.Sprintf("digest=%#x now=%v migs=%d", c.Sim().OrderDigest(), c.Sim().Now(), len(c.MigrationRecords()))
	}
	serial := storm(SimParams{})
	par := storm(SimParams{Parallel: true, Workers: 4})
	if par != serial {
		t.Fatalf("storm diverged: parallel %q vs serial %q", par, serial)
	}
}

// TestConfinedContract verifies the §14 restrictions fail loudly rather
// than corrupt a run: the crash/restart plane and migration aborts panic on
// a confined cluster.
func TestConfinedContract(t *testing.T) {
	newConfined := func(t *testing.T) *Cluster {
		t.Helper()
		params := DefaultParams()
		params.Sim.ConfineHosts = true
		c, err := NewCluster(Options{Workstations: 2, FileServers: 1, Seed: 1, Params: &params})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	// Activity panics surface as the activity's error, which Run reports.
	t.Run("crash-panics", func(t *testing.T) {
		c := newConfined(t)
		c.BootOn(c.Workstation(0).Host(), "crasher", func(env *sim.Env) error {
			c.CrashHost(env, c.Workstation(1).Host())
			return nil
		})
		err := c.Run(0)
		if err == nil || !strings.Contains(err.Error(), "not supported under host confinement") {
			t.Fatalf("confined CrashHost: err = %v, want confinement panic", err)
		}
	})
	t.Run("abort-panics", func(t *testing.T) {
		c := newConfined(t)
		if err := c.SeedBinary("/bin/prog", 8<<10); err != nil {
			t.Fatal(err)
		}
		c.SetFailpoint(func(env *sim.Env, name string, pid PID) error {
			if name == "mig.init" {
				return fmt.Errorf("injected")
			}
			return nil
		})
		src, dst := c.Workstation(0), c.Workstation(1)
		c.BootOn(src.Host(), "driver", func(env *sim.Env) error {
			p, err := src.StartProcess(env, "victim", func(ctx *Ctx) error {
				return ctx.Migrate(dst.Host())
			}, ProcConfig{Binary: "/bin/prog", CodePages: 1, HeapPages: 4, StackPages: 1})
			if err != nil {
				return err
			}
			_, err = p.Exited().Wait(env)
			return err
		})
		err := c.Run(0)
		if err == nil || !strings.Contains(err.Error(), "migration abort") {
			t.Fatalf("confined migration abort: err = %v, want abort panic", err)
		}
	})
}
