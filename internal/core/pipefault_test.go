package core

import (
	"errors"
	"testing"
	"time"

	"sprite/internal/fs"
	"sprite/internal/sim"
)

// These tests pin down pipe end-of-stream semantics under migration and
// fail-stop faults: a blocked reader must see data (not a spurious EOF)
// when its peer merely migrates, EOF exactly once when the last writer
// dies, and a blocked writer must see EPIPE when the last reader dies.

// TestPipeNoSpuriousEOFWhenWriterMigratesMidBlockingRead: the reader blocks
// on an empty pipe while the writer migrates twice; the migration must not
// look like a writer disappearing (which would deliver EOF to the blocked
// reader). The reader sees the data, then exactly one clean EOF.
func TestPipeNoSpuriousEOFWhenWriterMigratesMidBlockingRead(t *testing.T) {
	c := newCluster(t, 3)
	h0, h1, h2 := c.Workstation(0), c.Workstation(1), c.Workstation(2)
	var received string
	var reads []int
	c.Boot("boot", func(env *sim.Env) error {
		parent, err := h0.StartProcess(env, "pair", func(ctx *Ctx) error {
			rfd, wfd, err := ctx.Pipe()
			if err != nil {
				return err
			}
			if _, err := ctx.Fork("producer", func(cc *Ctx) error {
				if err := cc.Close(rfd); err != nil {
					return err
				}
				// Give the consumer time to block on the empty pipe, then
				// migrate with it still blocked.
				if err := cc.Compute(50 * time.Millisecond); err != nil {
					return err
				}
				if err := cc.Migrate(h1.Host()); err != nil {
					return err
				}
				if _, err := cc.Write(wfd, []byte("payload")); err != nil {
					return err
				}
				if err := cc.Migrate(h2.Host()); err != nil {
					return err
				}
				return cc.Close(wfd)
			}, smallProc); err != nil {
				return err
			}
			if _, err := ctx.Fork("consumer", func(cc *Ctx) error {
				if err := cc.Close(wfd); err != nil {
					return err
				}
				var got []byte
				for {
					data, err := cc.Read(rfd, 64)
					if err != nil {
						return err
					}
					reads = append(reads, len(data))
					if len(data) == 0 {
						break
					}
					got = append(got, data...)
				}
				received = string(got)
				return cc.Close(rfd)
			}, smallProc); err != nil {
				return err
			}
			if err := ctx.Close(rfd); err != nil {
				return err
			}
			if err := ctx.Close(wfd); err != nil {
				return err
			}
			if _, _, err := ctx.Wait(); err != nil {
				return err
			}
			_, _, err = ctx.Wait()
			return err
		}, smallProc)
		if err != nil {
			return err
		}
		_, err = parent.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	if received != "payload" {
		t.Fatalf("received %q, want %q", received, "payload")
	}
	// First read must carry data (no spurious EOF while the writer was in
	// transit), and the only empty read is the final EOF.
	if len(reads) < 2 || reads[0] == 0 || reads[len(reads)-1] != 0 {
		t.Fatalf("read sizes = %v, want data then exactly one trailing EOF", reads)
	}
	if v := c.CheckInvariants(true); len(v) != 0 {
		t.Errorf("invariants violated: %v", v)
	}
}

// TestPipeEOFWhenWriterHostCrashes: the writer migrates away and its new
// host fail-stops while the reader is blocked mid-read. Scrubbing the
// crashed host's pipe ends must wake the reader with EOF, not hang it.
func TestPipeEOFWhenWriterHostCrashes(t *testing.T) {
	c := newCluster(t, 2)
	h0, h1 := c.Workstation(0), c.Workstation(1)
	moved := sim.NewFuture(c.Sim())
	var received string
	c.Boot("boot", func(env *sim.Env) error {
		parent, err := h0.StartProcess(env, "pair", func(ctx *Ctx) error {
			rfd, wfd, err := ctx.Pipe()
			if err != nil {
				return err
			}
			if _, err := ctx.Fork("producer", func(cc *Ctx) error {
				if err := cc.Close(rfd); err != nil {
					return err
				}
				if err := cc.Migrate(h1.Host()); err != nil {
					return err
				}
				if _, err := cc.Write(wfd, []byte("last words")); err != nil {
					return err
				}
				moved.Complete(nil, nil)
				// Never closes wfd: only the host crash can deliver EOF.
				return cc.Compute(10 * time.Second)
			}, smallProc); err != nil {
				return err
			}
			if _, err := ctx.Fork("consumer", func(cc *Ctx) error {
				if err := cc.Close(wfd); err != nil {
					return err
				}
				var got []byte
				for {
					data, err := cc.Read(rfd, 64)
					if err != nil {
						return err
					}
					if len(data) == 0 {
						break
					}
					got = append(got, data...)
				}
				received = string(got)
				return cc.Close(rfd)
			}, smallProc); err != nil {
				return err
			}
			if err := ctx.Close(rfd); err != nil {
				return err
			}
			if err := ctx.Close(wfd); err != nil {
				return err
			}
			// Both children: the producer dies in the crash (status -2),
			// the consumer exits cleanly after EOF.
			if _, _, err := ctx.Wait(); err != nil {
				return err
			}
			_, _, err = ctx.Wait()
			return err
		}, smallProc)
		if err != nil {
			return err
		}
		if _, err := moved.Wait(env); err != nil {
			return err
		}
		// Let the consumer drain the chunk and block on the empty pipe.
		if err := env.Sleep(200 * time.Millisecond); err != nil {
			return err
		}
		c.CrashHost(env, h1.Host())
		_, err = parent.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	if received != "last words" {
		t.Fatalf("received %q, want %q", received, "last words")
	}
	if v := c.CheckInvariants(true); len(v) != 0 {
		t.Errorf("invariants violated: %v", v)
	}
}

// TestPipeEPIPEWhenReaderHostCrashes: the reader migrates away and its new
// host fail-stops while the writer is blocked on a full pipe. The writer
// must be woken with EPIPE (ErrBadStream), exactly as if the last reader
// had closed.
func TestPipeEPIPEWhenReaderHostCrashes(t *testing.T) {
	c := newCluster(t, 2)
	h0, h1 := c.Workstation(0), c.Workstation(1)
	moved := sim.NewFuture(c.Sim())
	var writeErr error
	c.Boot("boot", func(env *sim.Env) error {
		parent, err := h0.StartProcess(env, "pair", func(ctx *Ctx) error {
			rfd, wfd, err := ctx.Pipe()
			if err != nil {
				return err
			}
			if _, err := ctx.Fork("consumer", func(cc *Ctx) error {
				if err := cc.Close(wfd); err != nil {
					return err
				}
				if err := cc.Migrate(h1.Host()); err != nil {
					return err
				}
				if _, err := cc.Read(rfd, 64); err != nil {
					return err
				}
				moved.Complete(nil, nil)
				// Never reads again: the pipe fills and the writer blocks.
				return cc.Compute(10 * time.Second)
			}, smallProc); err != nil {
				return err
			}
			if _, err := ctx.Fork("producer", func(cc *Ctx) error {
				if err := cc.Close(rfd); err != nil {
					return err
				}
				chunk := make([]byte, 4096)
				for {
					if _, err := cc.Write(wfd, chunk); err != nil {
						writeErr = err
						break
					}
				}
				return cc.Close(wfd)
			}, smallProc); err != nil {
				return err
			}
			if err := ctx.Close(rfd); err != nil {
				return err
			}
			if err := ctx.Close(wfd); err != nil {
				return err
			}
			if _, _, err := ctx.Wait(); err != nil {
				return err
			}
			_, _, err = ctx.Wait()
			return err
		}, smallProc)
		if err != nil {
			return err
		}
		if _, err := moved.Wait(env); err != nil {
			return err
		}
		// Let the pipe fill and the producer block in write.
		if err := env.Sleep(500 * time.Millisecond); err != nil {
			return err
		}
		c.CrashHost(env, h1.Host())
		_, err = parent.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	if !errors.Is(writeErr, fs.ErrBadStream) {
		t.Fatalf("write err = %v, want ErrBadStream (EPIPE)", writeErr)
	}
	if v := c.CheckInvariants(true); len(v) != 0 {
		t.Errorf("invariants violated: %v", v)
	}
}
