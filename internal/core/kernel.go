package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"sprite/internal/fs"
	"sprite/internal/rpc"
	"sprite/internal/sim"
	"sprite/internal/vm"
)

// KernelStats counts migration-related kernel events.
type KernelStats struct {
	MigrationsOut uint64
	MigrationsIn  uint64
	// MigrationsAborted counts outbound migrations from this host that hit
	// the abort-recovery path (target crash, failpoint, version skew). The
	// fleet health plane reads it as a per-host sickness signal.
	MigrationsAborted uint64
	Evictions         uint64
	ForwardedCalls    uint64
	RemoteExecs       uint64
	ProcsStarted      uint64
	ProcsExited       uint64
	ProcsCrashed      uint64
}

// homeRecord is the state a home kernel keeps for every process whose home
// is this host — including processes currently running elsewhere. It is what
// makes migration transparent: signals, waits, and ps-style queries resolve
// here and are routed onward.
type homeRecord struct {
	pid      PID
	proc     *Process
	location rpc.HostID
	parent   PID
	children map[PID]bool
	// exits queues exited-but-unwaited children of THIS process.
	exits []childExit
	// waiter is resolved when a child exit arrives while the process is
	// blocked in Wait.
	waiter *sim.Future
}

type childExit struct {
	pid    PID
	status int
}

// Kernel is one host's Sprite kernel: the process table, the migration
// mechanism, and the forwarding target for the host's home processes.
type Kernel struct {
	cluster *Cluster
	host    rpc.HostID
	params  Params
	cpu     *sim.CPU
	fsc     *fs.Client
	ep      *rpc.Endpoint

	procs    map[PID]*Process // processes executing here now
	homeRecs map[PID]*homeRecord
	pidSeq   int

	// migrationVersion guards against migrating between incompatible
	// kernels (the thesis's antidote to migration fragility).
	migrationVersion int
	strategy         TransferStrategy

	lastInput   time.Duration
	records     []MigrationRecord
	stats       KernelStats
	evictTarget func(env *sim.Env, p *Process) *Kernel

	// forwardAll, when set, forwards *every* kernel call of foreign
	// processes to their home machines — the Remote UNIX design [Lit87]
	// that the thesis argues against in §4.3.1. It exists as a baseline
	// for the forwarding-cost comparison.
	forwardAll bool
}

// SetForwardAll switches this kernel to the forward-everything baseline
// for its foreign processes (Remote UNIX-style; see §4.3.1).
func (k *Kernel) SetForwardAll(v bool) { k.forwardAll = v }

func newKernel(c *Cluster, host rpc.HostID) *Kernel {
	k := &Kernel{
		cluster:          c,
		host:             host,
		params:           c.params,
		cpu:              sim.NewCPU(c.sim, c.params.CPUQuantum),
		fsc:              c.fs.AddClient(host),
		ep:               c.transport.Register(host),
		procs:            make(map[PID]*Process),
		homeRecs:         make(map[PID]*homeRecord),
		migrationVersion: 1,
		strategy:         SpriteFlushStrategy{},
	}
	k.ep.Handle("k.forward", k.handleForward)
	k.ep.Handle("k.migInit", k.handleMigInit)
	k.ep.Handle("k.migPCB", k.handleMigPCB)
	k.ep.Handle("k.updateLoc", k.handleUpdateLoc)
	k.ep.Handle("k.exitNotify", k.handleExitNotify)
	k.ep.Handle("k.kill", k.handleKill)
	k.ep.Handle("k.kill2", k.handleKillLocal)
	k.ep.Handle("k.killpg", k.handleKillpg)
	k.ep.Handle("k.evict", k.handleEvict)
	k.ep.Handle("k.fetchPage", k.handleFetchPage)
	k.ep.Handle("k.migPages", k.handleMigPages)
	return k
}

// Host returns the kernel's host id.
func (k *Kernel) Host() rpc.HostID { return k.host }

// CPU returns the host's processor model.
func (k *Kernel) CPU() *sim.CPU { return k.cpu }

// FSClient returns the host's file system client.
func (k *Kernel) FSClient() *fs.Client { return k.fsc }

// Cluster returns the owning cluster.
func (k *Kernel) Cluster() *Cluster { return k.cluster }

// Stats returns a copy of the kernel's counters.
func (k *Kernel) Stats() KernelStats { return k.stats }

// MigrationRecords returns the detailed per-migration records collected at
// this kernel (as migration source).
func (k *Kernel) MigrationRecords() []MigrationRecord {
	out := make([]MigrationRecord, len(k.records))
	copy(out, k.records)
	return out
}

// SetStrategy replaces the VM transfer strategy used for migrations that
// leave this kernel.
func (k *Kernel) SetStrategy(s TransferStrategy) { k.strategy = s }

// SetMigrationVersion overrides the kernel's migration version (failure
// injection for version-mismatch behaviour).
func (k *Kernel) SetMigrationVersion(v int) { k.migrationVersion = v }

// --- idle detection (Sprite's load daemon) ---

// NoteInput records user input (keyboard/mouse) at the host.
func (k *Kernel) NoteInput(now time.Duration) { k.lastInput = now }

// LastInput returns the time of the most recent user input.
func (k *Kernel) LastInput() time.Duration { return k.lastInput }

// LoadAverage returns the host's smoothed runnable-process count.
func (k *Kernel) LoadAverage(now time.Duration) float64 { return k.cpu.LoadAverage(now) }

// Available reports whether the host would advertise itself as an idle
// migration target: low load and no recent user input.
func (k *Kernel) Available(now time.Duration) bool {
	if k.cpu.LoadAverage(now) >= k.params.IdleLoadThreshold {
		return false
	}
	return now-k.lastInput >= k.params.IdleInputAge
}

// --- process lifecycle ---

// ProcConfig sizes a process image.
type ProcConfig struct {
	// Binary is the program file backing the code segment ("" for none).
	Binary string
	// CodePages, HeapPages, StackPages size the segments.
	CodePages  int
	HeapPages  int
	StackPages int
	// Args are the exec arguments (their size is charged on exec-time
	// migration).
	Args []string
}

// StartProcess launches a new top-level process on this host. Its home is
// this kernel. The returned process runs in its own activity; use
// Exited().Wait to join it.
func (k *Kernel) StartProcess(env *sim.Env, name string, prog Program, cfg ProcConfig) (*Process, error) {
	return k.startProcess(env, name, prog, cfg, nil)
}

func (k *Kernel) startProcess(env *sim.Env, name string, prog Program, cfg ProcConfig, parent *Process) (*Process, error) {
	home := k
	var parentPID PID
	if parent != nil {
		home = parent.home
		parentPID = parent.pid
	}
	home.pidSeq++
	pid := PID{Home: home.host, Seq: home.pidSeq}
	pgrp := pid // a top-level process leads its own group
	if parent != nil {
		pgrp = parent.pgrp
	}
	p := &Process{
		pid:       pid,
		pgrp:      pgrp,
		name:      name,
		state:     StateRunning,
		parent:    parentPID,
		home:      home,
		cur:       k,
		program:   prog,
		args:      cfg.Args,
		exited:    sim.NewFuture(k.cluster.sim),
		evictable: true,
		created:   env.Now(),
		homeEpoch: home.ep.Epoch(),
	}
	// Fork semantics: the child inherits the working directory and the
	// signal dispositions...
	if parent != nil {
		p.cwd = parent.cwd
		if len(parent.handlers) > 0 {
			p.handlers = make(map[Signal]SignalHandler, len(parent.handlers))
			for s, h := range parent.handlers {
				p.handlers[s] = h
			}
		}
	}
	// ...and the descriptor table; each inherited entry shares the stream
	// (and its access position).
	if parent != nil && len(parent.files) > 0 {
		p.files = make([]*fs.Stream, len(parent.files))
		for fd, st := range parent.files {
			if st == nil {
				continue
			}
			if err := k.fsc.Dup(st); err != nil {
				return nil, fmt.Errorf("fork: dup fd %d: %w", fd, err)
			}
			p.files[fd] = st
		}
	}
	rec := &homeRecord{
		pid:      pid,
		proc:     p,
		location: k.host,
		parent:   parentPID,
		children: make(map[PID]bool),
	}
	home.homeRecs[pid] = rec
	if parent != nil {
		if prec := home.homeRecs[parentPID]; prec != nil {
			prec.children[pid] = true
		}
	}
	k.procs[pid] = p
	k.stats.ProcsStarted++
	k.cluster.noteStart(pid)
	k.cluster.emitEnv(env, "proc-start", fmt.Sprintf("%v %s on %v", pid, name, k.host))

	body := func(penv *sim.Env) error {
		return k.runProcess(penv, p, cfg)
	}
	if k.cluster.confined {
		// The process activity belongs to its host's shard. env.Spawn would
		// inherit the caller's shard, which is right when the driver booted
		// via BootOn — pinning explicitly makes a misplaced driver fail at
		// spawn time instead of at the first cross-shard wake.
		env.SpawnOn(int(k.host), fmt.Sprintf("proc-%v-%s", pid, name), body)
	} else {
		env.Spawn(fmt.Sprintf("proc-%v-%s", pid, name), body)
	}
	return p, nil
}

// runProcess is the body of a process activity: build the image, run the
// program, tear down.
func (k *Kernel) runProcess(env *sim.Env, p *Process, cfg ProcConfig) error {
	p.env = env
	ctx := &Ctx{proc: p, env: env}
	if err := p.buildSpace(env, p.name, cfg); err != nil {
		if p.crashed {
			return nil // destroyProcess already did the bookkeeping
		}
		p.finishExit(env, -1)
		return fmt.Errorf("proc %v: build space: %w", p.pid, err)
	}
	err := p.program(ctx)
	if p.crashed {
		return nil
	}
	if err == errExit {
		err = nil
	}
	if err == ErrKilled {
		p.exitStatus = -1
		err = nil
	}
	if err != nil {
		p.finishExit(env, -1)
		return fmt.Errorf("proc %v (%s): %w", p.pid, p.name, err)
	}
	if err := p.exitCleanup(env); err != nil {
		if p.crashed {
			return nil
		}
		return err
	}
	return nil
}

// buildSpace creates the process's address space on its current host.
func (p *Process) buildSpace(env *sim.Env, name string, cfg ProcConfig) error {
	vmName := fmt.Sprintf("%v-%s", p.pid, name)
	space, err := vm.New(env, p.cur.fsc, vmName, vm.Config{
		CodePages:  cfg.CodePages,
		HeapPages:  cfg.HeapPages,
		StackPages: cfg.StackPages,
		BinaryPath: cfg.Binary,
	}, p.cur.params.VM)
	if err != nil {
		return err
	}
	space.SetCPU(func(e *sim.Env, d time.Duration) error {
		p.cpuUsed += d
		return p.cur.cpu.Compute(e, d)
	})
	space.SetPagerAll(&vm.FilePager{Client: p.cur.fsc})
	p.space = space
	return nil
}

// discardSpace closes the address space's backing streams and removes its
// swap files.
func (p *Process) discardSpace(env *sim.Env) error {
	if p.space == nil {
		return nil
	}
	c := p.cur.fsc
	for _, seg := range p.space.Segments() {
		st := seg.Backing
		if st == nil {
			continue
		}
		path := st.Path
		for st.RefsOn(c.Host()) > 0 {
			if err := c.Close(env, st); err != nil {
				if errors.Is(err, rpc.ErrHostDown) || errors.Is(err, rpc.ErrTimeout) {
					// The I/O server is down. Sprite servers rebuild their
					// open tables from the clients during recovery, so a ref
					// dropped now is simply never re-registered: repair the
					// shared tables directly and move on.
					p.cur.cluster.fs.DropRef(st, c.Host())
					continue
				}
				return err
			}
		}
		if seg.Kind != vm.CodeSegment {
			if err := c.Remove(env, path); err != nil {
				if errors.Is(err, rpc.ErrHostDown) || errors.Is(err, rpc.ErrTimeout) {
					continue // the server lost the swap file with its tables
				}
				return err
			}
		}
	}
	p.space = nil
	return nil
}

// exitCleanup performs orderly process teardown: close descriptors, discard
// the address space, notify home, wake the parent.
func (p *Process) exitCleanup(env *sim.Env) error {
	k := p.cur
	for fd, st := range p.files {
		if st == nil {
			continue
		}
		p.files[fd] = nil
		if err := k.fsc.Close(env, st); err != nil {
			if errors.Is(err, rpc.ErrHostDown) || errors.Is(err, rpc.ErrTimeout) {
				// The stream's I/O server is down; drop the ref directly (the
				// server rebuilds open tables from surviving clients on
				// recovery, so this ref just won't be re-registered).
				k.cluster.fs.DropRef(st, k.host)
				continue
			}
			return fmt.Errorf("proc %v: close fd %d: %w", p.pid, fd, err)
		}
	}
	if err := p.discardSpace(env); err != nil {
		return fmt.Errorf("proc %v: discard space: %w", p.pid, err)
	}
	if d := k.params.ExitCPU; d > 0 {
		if err := k.cpu.Compute(env, d); err != nil {
			return err
		}
	}
	if p.Foreign() && !k.cluster.confined {
		// Confined clusters skip this: finishExit itself sends the notify, so
		// error-path exits (which bypass exitCleanup) also settle the home.
		if _, err := k.ep.Call(env, p.home.host, "k.exitNotify", exitNotifyArgs{
			PID: p.pid, Status: p.exitStatus,
		}, 32); err != nil {
			// A crashed home machine cannot take the notification; the exit
			// still completes here (there is no record left to settle there).
			if !errors.Is(err, rpc.ErrHostDown) && !errors.Is(err, rpc.ErrTimeout) {
				return fmt.Errorf("proc %v: exit notify: %w", p.pid, err)
			}
		}
	}
	p.finishExit(env, p.exitStatus)
	return nil
}

// finishExit updates tables and resolves futures. On ordinary clusters it
// charges no time; on a confined cluster a foreign exit sends the
// k.exitNotify RPC from here, because the home half — the record, the
// process's visible state, and the exited future (whose waiters live on the
// home shard) — must settle on the home host's shard, and routing it through
// finishExit covers the error-path exits that never reach exitCleanup.
func (p *Process) finishExit(env *sim.Env, status int) {
	k := p.cur
	delete(k.procs, p.pid)
	k.stats.ProcsExited++
	k.cluster.noteEnd(p.pid)
	k.cluster.emitEnv(env, "proc-exit", fmt.Sprintf("%v %s status=%d on %v", p.pid, p.name, status, k.host))
	if k.cluster.confined && p.Foreign() {
		if req := p.migrateReq; req != nil {
			p.migrateReq = nil
			req.done.Complete(nil, fmt.Errorf("%w: exited before migration", ErrNoSuchProcess))
		}
		if _, err := k.ep.Call(env, p.home.host, "k.exitNotify", exitNotifyArgs{
			PID: p.pid, Status: status,
		}, 32); err != nil {
			// No crashes under confinement, so the home is reachable by
			// contract; a failure here is a bug, and swallowing it would hang
			// every waiter on p.exited.
			panic(fmt.Sprintf("core: confined exit notify for %v: %v", p.pid, err))
		}
		return
	}
	p.state = StateExited
	p.exitStatus = status
	p.home.recordExit(p.pid, status)
	if req := p.migrateReq; req != nil {
		p.migrateReq = nil
		req.done.Complete(nil, fmt.Errorf("%w: exited before migration", ErrNoSuchProcess))
	}
	p.exited.Complete(status, nil)
}

// recordExit runs at the home kernel: detach the record and queue the exit
// for the parent's Wait.
func (k *Kernel) recordExit(pid PID, status int) {
	rec := k.homeRecs[pid]
	if rec == nil {
		return
	}
	delete(k.homeRecs, pid)
	prec := k.homeRecs[rec.parent]
	if prec == nil {
		return // orphan: no one will wait
	}
	delete(prec.children, pid)
	prec.exits = append(prec.exits, childExit{pid: pid, status: status})
	if prec.waiter != nil {
		w := prec.waiter
		prec.waiter = nil
		w.Complete(nil, nil)
	}
}

// waitChild implements Wait at the home kernel.
func (k *Kernel) waitChild(env *sim.Env, parent PID) (PID, int, error) {
	for {
		rec := k.homeRecs[parent]
		if rec == nil {
			return NilPID, 0, fmt.Errorf("%w: %v", ErrNoSuchProcess, parent)
		}
		if len(rec.exits) > 0 {
			ce := rec.exits[0]
			rec.exits = rec.exits[1:]
			return ce.pid, ce.status, nil
		}
		if len(rec.children) == 0 {
			return NilPID, 0, ErrNoChildren
		}
		rec.waiter = sim.NewFuture(k.cluster.sim)
		if _, err := rec.waiter.Wait(env); err != nil {
			return NilPID, 0, err
		}
	}
}

// Processes returns the processes currently executing on this host.
func (k *Kernel) Processes() []*Process {
	out := make([]*Process, 0, len(k.procs))
	for _, p := range k.procs {
		out = append(out, p)
	}
	sortProcs(out)
	return out
}

// ForeignProcesses returns the processes executing here whose home is
// elsewhere.
func (k *Kernel) ForeignProcesses() []*Process {
	var out []*Process
	for _, p := range k.procs {
		if p.Foreign() {
			out = append(out, p)
		}
	}
	sortProcs(out)
	return out
}

// HomeProcessCount returns the number of live processes whose home is this
// host (wherever they run) — what Sprite's ps shows on the home machine.
func (k *Kernel) HomeProcessCount() int { return len(k.homeRecs) }

// ProcessListing is one row of the home machine's ps output.
type ProcessListing struct {
	PID      PID
	Name     string
	State    ProcessState
	Location rpc.HostID
	Foreign  bool
	CPUUsed  time.Duration
}

// ListHomeProcesses returns ps-style rows for every live process whose
// home is this host, wherever each currently runs. Migration transparency
// means a user's processes always appear on their own machine's listing,
// never on the hosts actually running them (contrast LOCUS, where remote
// processes show up in the remote site's listing).
func (k *Kernel) ListHomeProcesses() []ProcessListing {
	out := make([]ProcessListing, 0, len(k.homeRecs))
	for _, rec := range k.homeRecs {
		p := rec.proc
		out = append(out, ProcessListing{
			PID:      p.pid,
			Name:     p.name,
			State:    p.state,
			Location: rec.location,
			Foreign:  rec.location != k.host,
			CPUUsed:  p.cpuUsed,
		})
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i].PID, out[j].PID) })
	return out
}

// LocationOf returns where a home process currently runs.
func (k *Kernel) LocationOf(pid PID) (rpc.HostID, error) {
	rec := k.homeRecs[pid]
	if rec == nil {
		return rpc.NoHost, fmt.Errorf("%w: %v", ErrNoSuchProcess, pid)
	}
	return rec.location, nil
}

func sortProcs(ps []*Process) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && less(ps[j].pid, ps[j-1].pid); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func less(a, b PID) bool {
	if a.Home != b.Home {
		return a.Home < b.Home
	}
	return a.Seq < b.Seq
}

// --- RPC wire types and handlers ---

type (
	migInitArgs struct {
		PID     PID
		Version int
	}
	migPCBArgs struct {
		PID  PID
		Proc *Process
	}
	updateLocArgs struct {
		PID PID
		Loc rpc.HostID
	}
	exitNotifyArgs struct {
		PID    PID
		Status int
	}
	killArgs struct {
		PID PID
		// Sig selects the signal; the zero value means SIGKILL for
		// compatibility with plain kill.
		Sig Signal
	}
	fetchPageArgs struct {
		PID  PID
		Page int
	}
	migPagesArgs struct {
		PID   PID
		Pages int
	}
)

func (k *Kernel) handleForward(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	if _, ok := arg.(forwardArgs); !ok {
		return nil, 0, fmt.Errorf("k.forward: bad args %T", arg)
	}
	// The forwarded call's home-side work is modeled as one kernel-call
	// dispatch on the home CPU.
	if err := k.cpu.Compute(env, k.params.SyscallCPU); err != nil {
		return nil, 0, err
	}
	return nil, 32, nil
}

func (k *Kernel) handleMigInit(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(migInitArgs)
	if !ok {
		return nil, 0, fmt.Errorf("k.migInit: bad args %T", arg)
	}
	if a.Version != k.migrationVersion {
		return nil, 0, fmt.Errorf("%w: source %d, target %d", ErrVersionMismatch, a.Version, k.migrationVersion)
	}
	if err := k.cpu.Compute(env, k.params.MigInitCPU); err != nil {
		return nil, 0, err
	}
	return nil, 16, nil
}

func (k *Kernel) handleMigPCB(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(migPCBArgs)
	if !ok {
		return nil, 0, fmt.Errorf("k.migPCB: bad args %T", arg)
	}
	if err := k.cpu.Compute(env, k.params.MigPCBCPU); err != nil {
		return nil, 0, err
	}
	k.procs[a.PID] = a.Proc
	k.stats.MigrationsIn++
	return nil, 16, nil
}

func (k *Kernel) handleUpdateLoc(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(updateLocArgs)
	if !ok {
		return nil, 0, fmt.Errorf("k.updateLoc: bad args %T", arg)
	}
	if rec := k.homeRecs[a.PID]; rec != nil {
		rec.location = a.Loc
	}
	return nil, 8, nil
}

func (k *Kernel) handleExitNotify(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(exitNotifyArgs)
	if !ok {
		return nil, 0, fmt.Errorf("k.exitNotify: bad args %T", arg)
	}
	// On ordinary clusters this is bookkeeping cost only; recordExit is
	// invoked by finishExit on the process side (shared memory in the
	// simulator). On a confined cluster the notification IS the settlement:
	// the dispatcher runs on this (home) shard, so the record, the process's
	// visible state, and the exited future resolve here.
	if err := k.cpu.Compute(env, k.params.SyscallCPU); err != nil {
		return nil, 0, err
	}
	if k.cluster.confined {
		rec := k.homeRecs[a.PID]
		if rec == nil {
			panic(fmt.Sprintf("core: confined exit notify for unknown %v", a.PID))
		}
		p := rec.proc
		p.state = StateExited
		p.exitStatus = a.Status
		k.recordExit(a.PID, a.Status)
		p.exited.Complete(a.Status, nil)
	}
	return nil, 8, nil
}

func (k *Kernel) handleKill(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(killArgs)
	if !ok {
		return nil, 0, fmt.Errorf("k.kill: bad args %T", arg)
	}
	rec := k.homeRecs[a.PID]
	if rec == nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrNoSuchProcess, a.PID)
	}
	if rec.location != k.host {
		// Route onward to the process's current location.
		if _, err := k.ep.Call(env, rec.location, "k.kill2", a, 16); err != nil {
			return nil, 0, err
		}
		return nil, 8, nil
	}
	rec.proc.post(normalizeSig(a.Sig))
	return nil, 8, nil
}

// normalizeSig maps the zero value to SIGKILL (the plain-kill wire format).
func normalizeSig(s Signal) Signal {
	if s == 0 {
		return SigKill
	}
	return s
}

// handleKillLocal delivers a routed kill at the process's current location.
func (k *Kernel) handleKillLocal(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(killArgs)
	if !ok {
		return nil, 0, fmt.Errorf("k.kill2: bad args %T", arg)
	}
	if err := k.routeSignalLocal(a.PID, normalizeSig(a.Sig)); err != nil {
		return nil, 0, err
	}
	return nil, 8, nil
}

func (k *Kernel) handleEvict(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	if err := k.EvictAll(env); err != nil {
		return nil, 0, err
	}
	return nil, 8, nil
}

// handleFetchPage serves copy-on-reference pulls from this (source) host.
func (k *Kernel) handleFetchPage(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	if _, ok := arg.(fetchPageArgs); !ok {
		return nil, 0, fmt.Errorf("k.fetchPage: bad args %T", arg)
	}
	if err := k.cpu.Compute(env, k.params.VM.FaultCPU); err != nil {
		return nil, 0, err
	}
	return nil, k.params.VM.PageSize + k.params.PageWireOverhead, nil
}

// handleMigPages accepts a bulk page shipment at the target of a direct-copy
// migration (full-copy, pre-copy). The pages landed via the bulk fragment
// stream, whose wire cost the caller already paid; installing them costs one
// fault's worth of CPU for the mapping batch.
func (k *Kernel) handleMigPages(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	if _, ok := arg.(migPagesArgs); !ok {
		return nil, 0, fmt.Errorf("k.migPages: bad args %T", arg)
	}
	if err := k.cpu.Compute(env, k.params.VM.FaultCPU); err != nil {
		return nil, 0, err
	}
	return nil, 16, nil
}
