package core

import (
	"fmt"
	"sort"
	"time"

	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// Signal is a 4.3BSD-style signal. Signal *state* (handlers, pending set)
// is transferred with the PCB at migration; signal *routing* goes through
// the target's home machine, which always knows where the process runs —
// the combination that keeps kill(1) working on migrated processes.
type Signal int

// Signals modeled by the simulator.
const (
	// SigTerm requests termination; a handler may catch it.
	SigTerm Signal = iota + 1
	// SigKill terminates unconditionally.
	SigKill
	// SigStop suspends the process until SigCont.
	SigStop
	// SigCont resumes a stopped process.
	SigCont
	// SigUser1 and SigUser2 are application-defined.
	SigUser1
	SigUser2
)

func (s Signal) String() string {
	switch s {
	case SigTerm:
		return "SIGTERM"
	case SigKill:
		return "SIGKILL"
	case SigStop:
		return "SIGSTOP"
	case SigCont:
		return "SIGCONT"
	case SigUser1:
		return "SIGUSR1"
	case SigUser2:
		return "SIGUSR2"
	default:
		return fmt.Sprintf("SIG(%d)", int(s))
	}
}

// SignalHandler is a user signal handler; it runs in the process's own
// activity at the next migration point after delivery.
type SignalHandler func(ctx *Ctx, sig Signal) error

// SigVec installs a handler for sig (nil restores the default action).
// Handler state is part of the PCB: it survives migration (Appendix A
// classifies sigvec as transferred state).
func (c *Ctx) SigVec(sig Signal, handler SignalHandler) error {
	if err := c.enter("sigvec"); err != nil {
		return err
	}
	p := c.proc
	if p.handlers == nil {
		p.handlers = make(map[Signal]SignalHandler)
	}
	if handler == nil {
		delete(p.handlers, sig)
		return nil
	}
	p.handlers[sig] = handler
	return nil
}

// SendSignal delivers sig to another process, routed through its home
// machine like kill (Appendix A: forwarded home).
func (c *Ctx) SendSignal(target PID, sig Signal) error {
	if err := c.enter("kill"); err != nil {
		return err
	}
	if err := c.forwardHome("kill"); err != nil {
		return err
	}
	return c.proc.cur.cluster.signalPID(c.env, c.proc.cur, target, sig)
}

// signalPID routes a signal via the target's home kernel.
func (c *Cluster) signalPID(env *sim.Env, via *Kernel, target PID, sig Signal) error {
	homeK := c.kernels[target.Home]
	if homeK == nil {
		return fmt.Errorf("%w: %v", ErrNoSuchProcess, target)
	}
	if _, err := via.ep.Call(env, homeK.host, "k.kill", killArgs{PID: target, Sig: sig}, 32); err != nil {
		return err
	}
	return nil
}

// post records a signal against the process and wakes it if it is stopped
// (so SIGCONT and SIGKILL can get through).
func (p *Process) post(sig Signal) {
	switch sig {
	case SigKill:
		p.killed = true
	case SigCont:
		p.pending = append(p.pending, sig)
		if p.contWaiter != nil {
			w := p.contWaiter
			p.contWaiter = nil
			w.Complete(nil, nil)
		}
		return
	default:
		p.pending = append(p.pending, sig)
	}
	if p.contWaiter != nil {
		w := p.contWaiter
		p.contWaiter = nil
		w.Complete(nil, nil)
	}
}

// deliverPending runs at migration points: handle every queued signal in
// arrival order.
func (c *Ctx) deliverPending() error {
	p := c.proc
	for len(p.pending) > 0 {
		sig := p.pending[0]
		p.pending = p.pending[1:]
		switch sig {
		case SigCont:
			// Already running: nothing to do.
		case SigStop:
			if err := c.waitForCont(); err != nil {
				return err
			}
		case SigTerm, SigUser1, SigUser2:
			if h := p.handlers[sig]; h != nil {
				if err := h(c, sig); err != nil {
					return err
				}
			} else if sig == SigTerm {
				p.killed = true
				return ErrKilled
			}
		}
		if p.killed {
			return ErrKilled
		}
	}
	if p.killed {
		return ErrKilled
	}
	return nil
}

// waitForCont parks the process until SIGCONT (or SIGKILL) arrives.
func (c *Ctx) waitForCont() error {
	p := c.proc
	for {
		if p.killed {
			return ErrKilled
		}
		// A continue may already be queued.
		for i, s := range p.pending {
			if s == SigCont {
				p.pending = append(p.pending[:i], p.pending[i+1:]...)
				return nil
			}
		}
		p.contWaiter = sim.NewFuture(p.cur.cluster.sim)
		if _, err := p.contWaiter.Wait(c.env); err != nil {
			return err
		}
	}
}

// Stopped reports whether the process is currently suspended by SIGSTOP.
func (p *Process) Stopped() bool { return p.contWaiter != nil }

// GetPgrp returns the caller's process group (forwarded home: group
// membership is family state kept at the home machine).
func (c *Ctx) GetPgrp() (PID, error) {
	if err := c.enter("getpgrp"); err != nil {
		return NilPID, err
	}
	if err := c.forwardHome("getpgrp"); err != nil {
		return NilPID, err
	}
	return c.proc.pgrp, nil
}

// SetPgrp makes the caller the leader of a new process group.
func (c *Ctx) SetPgrp() error {
	if err := c.enter("setpgrp"); err != nil {
		return err
	}
	if err := c.forwardHome("setpgrp"); err != nil {
		return err
	}
	c.proc.pgrp = c.proc.pid
	return nil
}

// SignalGroup delivers sig to every member of a process group. The group's
// home machine enumerates the members (they all share it, since children
// inherit their parent's home) and routes to each member's location.
func (c *Ctx) SignalGroup(pgrp PID, sig Signal) error {
	if err := c.enter("kill"); err != nil {
		return err
	}
	if err := c.forwardHome("kill"); err != nil {
		return err
	}
	homeK := c.proc.cur.cluster.kernels[pgrp.Home]
	if homeK == nil {
		return fmt.Errorf("%w: group %v", ErrNoSuchProcess, pgrp)
	}
	// One RPC to the home machine carries the group signal...
	if _, err := c.proc.cur.ep.Call(c.env, homeK.host, "k.killpg", killArgs{PID: pgrp, Sig: sig}, 32); err != nil {
		return err
	}
	return nil
}

// handleKillpg delivers a signal to every member of a local group.
func (k *Kernel) handleKillpg(env *sim.Env, from rpc.HostID, arg any) (any, int, error) {
	a, ok := arg.(killArgs)
	if !ok {
		return nil, 0, fmt.Errorf("k.killpg: bad args %T", arg)
	}
	sig := normalizeSig(a.Sig)
	delivered := 0
	for _, rec := range k.homeRecords() {
		if rec.proc.pgrp != a.PID {
			continue
		}
		delivered++
		if rec.location == k.host {
			rec.proc.post(sig)
			continue
		}
		// ...and one onward RPC per remote member.
		if _, err := k.ep.Call(env, rec.location, "k.kill2", killArgs{PID: rec.pid, Sig: sig}, 16); err != nil {
			return nil, 0, err
		}
	}
	if delivered == 0 {
		return nil, 0, fmt.Errorf("%w: group %v", ErrNoSuchProcess, a.PID)
	}
	return delivered, 8, nil
}

// homeRecords snapshots the home-record list (delivery may mutate the map).
func (k *Kernel) homeRecords() []*homeRecord {
	out := make([]*homeRecord, 0, len(k.homeRecs))
	for _, rec := range k.homeRecs {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i].pid, out[j].pid) })
	return out
}

// Rusage is the resource-usage record returned by GetRusage.
type Rusage struct {
	// CPUTime is accumulated compute (and kernel-call) time.
	CPUTime time.Duration
	// PageFaults counts VM faults taken.
	PageFaults uint64
	// Migrations counts completed migrations.
	Migrations int
}

// GetRusage returns the caller's resource usage. Like other
// process-attribute calls it is forwarded home so that accounting is
// consistent for the whole family.
func (c *Ctx) GetRusage() (Rusage, error) {
	if err := c.enter("getrusage"); err != nil {
		return Rusage{}, err
	}
	if err := c.forwardHome("getrusage"); err != nil {
		return Rusage{}, err
	}
	p := c.proc
	r := Rusage{CPUTime: p.cpuUsed, Migrations: p.migrations}
	if p.space != nil {
		r.PageFaults = p.space.Stats().Faults
	}
	return r, nil
}

// Chdir changes the working directory — PCB state that migrates with the
// process (the FS resolves relative paths against it wherever the process
// runs).
func (c *Ctx) Chdir(dir string) error {
	if err := c.enter("chdir"); err != nil {
		return err
	}
	// Resolving the directory is a name lookup at its server.
	if _, _, err := c.proc.cur.fsc.Stat(c.env, dir); err != nil {
		return fmt.Errorf("chdir %s: %w", dir, err)
	}
	c.proc.cwd = dir
	return nil
}

// Getwd returns the working directory.
func (c *Ctx) Getwd() (string, error) {
	if err := c.enter("getwd"); err != nil {
		return "", err
	}
	if c.proc.cwd == "" {
		return "/", nil
	}
	return c.proc.cwd, nil
}

// resolvePath makes relative paths absolute against the process's cwd.
func (p *Process) resolvePath(path string) string {
	if len(path) > 0 && path[0] == '/' {
		return path
	}
	cwd := p.cwd
	if cwd == "" || cwd == "/" {
		return "/" + path
	}
	return cwd + "/" + path
}

// Nap blocks the process for d of virtual time (the sleep system call).
// Like any kernel call it is a migration and signal-delivery point.
func (c *Ctx) Nap(d time.Duration) error {
	if err := c.enter("sleep"); err != nil {
		return err
	}
	return c.env.Sleep(d)
}

// --- host-id aware signal extension of the kill wire protocol ---

// routeSignalLocal delivers a routed signal at the process's current host.
func (k *Kernel) routeSignalLocal(pid PID, sig Signal) error {
	p := k.procs[pid]
	if p == nil {
		return fmt.Errorf("%w: %v", ErrNoSuchProcess, pid)
	}
	p.post(sig)
	return nil
}
