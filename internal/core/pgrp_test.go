package core

import (
	"errors"
	"testing"
	"time"

	"sprite/internal/sim"
)

func TestPgrpInheritedAcrossForkAndMigration(t *testing.T) {
	c := newCluster(t, 2)
	src, dst := c.Workstation(0), c.Workstation(1)
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "leader", func(ctx *Ctx) error {
			lg, err := ctx.GetPgrp()
			if err != nil {
				return err
			}
			if lg != ctx.Process().PID() {
				t.Errorf("leader pgrp = %v, want own pid", lg)
			}
			child, err := ctx.Fork("member", func(cc *Ctx) error {
				if err := cc.Migrate(dst.Host()); err != nil {
					return err
				}
				cg, err := cc.GetPgrp()
				if err != nil {
					return err
				}
				if cg != lg {
					t.Errorf("migrated child pgrp = %v, want %v", cg, lg)
				}
				return nil
			}, smallProc)
			if err != nil {
				return err
			}
			_ = child
			_, _, err = ctx.Wait()
			return err
		}, smallProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
}

func TestSignalGroupReachesMigratedMembers(t *testing.T) {
	c := newCluster(t, 3)
	src, d1, d2 := c.Workstation(0), c.Workstation(1), c.Workstation(2)
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "leader", func(ctx *Ctx) error {
			for _, target := range []*Kernel{d1, d2} {
				dest := target
				if _, err := ctx.Fork("member", func(cc *Ctx) error {
					if err := cc.Migrate(dest.Host()); err != nil {
						return err
					}
					return cc.Compute(time.Hour)
				}, smallProc); err != nil {
					return err
				}
			}
			// Give the members time to migrate and settle.
			if err := ctx.Nap(5 * time.Second); err != nil {
				return err
			}
			pg, err := ctx.GetPgrp()
			if err != nil {
				return err
			}
			if err := ctx.SignalGroup(pg, SigTerm); err != nil {
				return err
			}
			// The leader is in the group too: its own SIGTERM is pending
			// and delivers at the next migration point (this compute).
			return ctx.Compute(time.Hour)
		}, smallProc)
		if err != nil {
			return err
		}
		// The leader has no SIGTERM handler, so the group broadcast kills
		// it too once it reaches a delivery point.
		st, err := p.Exited().Wait(env)
		if err != nil {
			return err
		}
		if st != -1 {
			t.Errorf("leader status = %v, want killed by its own broadcast", st)
		}
		return nil
	})
	if err := c.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if n := c.Sim().LiveActivities(); n != 0 {
		t.Fatalf("group members survived the broadcast (%d live)", n)
	}
}

func TestSetPgrpIsolates(t *testing.T) {
	c := newCluster(t, 1)
	k := c.Workstation(0)
	c.Boot("boot", func(env *sim.Env) error {
		p, err := k.StartProcess(env, "parent", func(ctx *Ctx) error {
			loner, err := ctx.Fork("loner", func(cc *Ctx) error {
				if err := cc.SetPgrp(); err != nil { // leaves the group
					return err
				}
				return cc.Compute(3 * time.Second)
			}, smallProc)
			if err != nil {
				return err
			}
			if err := ctx.Nap(time.Second); err != nil {
				return err
			}
			// Signal the loner's OLD group (the parent's): loner must
			// survive; deliver SIGUSR1 which the parent ignores by handler.
			if err := ctx.SigVec(SigUser1, func(cc *Ctx, sig Signal) error { return nil }); err != nil {
				return err
			}
			pg, err := ctx.GetPgrp()
			if err != nil {
				return err
			}
			if err := ctx.SignalGroup(pg, SigUser1); err != nil {
				return err
			}
			pid, st, err := ctx.Wait()
			if err != nil {
				return err
			}
			if pid != loner.PID() || st != 0 {
				t.Errorf("loner exited %v status %d, want clean exit", pid, st)
			}
			return nil
		}, smallProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
}

func TestSignalGroupUnknownGroup(t *testing.T) {
	c := newCluster(t, 1)
	var gotErr error
	c.Boot("boot", func(env *sim.Env) error {
		p, err := c.Workstation(0).StartProcess(env, "p", func(ctx *Ctx) error {
			gotErr = ctx.SignalGroup(PID{Home: c.Workstation(0).Host(), Seq: 999}, SigTerm)
			return nil
		}, smallProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	if !errors.Is(gotErr, ErrNoSuchProcess) {
		t.Fatalf("err = %v, want ErrNoSuchProcess", gotErr)
	}
}
