// Package core is the reproduction's primary contribution: per-host Sprite
// kernels with transparent process migration (Douglis & Ousterhout, ICDCS
// 1987; Douglis's 1990 thesis).
//
// A Cluster assembles workstations and file servers over one RPC fabric
// and one shared file system. Each workstation's Kernel owns a process
// table; simulated user processes are Go closures over a Ctx whose methods
// are the kernel calls, each dispatched per the Appendix-A handling table
// (SyscallTable):
//
//   - location-independent calls execute on the current host;
//   - file-system calls are transparent through the shared FS;
//   - family/host/time calls of a migrated process are forwarded to its
//     home machine, which keeps a record of every home process and its
//     current location;
//   - calls that depend on transferred state (address space, descriptor
//     table, signal dispositions, cwd) work locally because migration
//     moves that state.
//
// Migration itself happens at migration points (kernel-call entry, compute
// quantum boundaries, exec): handshake with version check, virtual memory
// per the configured TransferStrategy (Sprite's backing-store flush by
// default; full copy, copy-on-reference, and pre-copy as ablations), open
// streams with I/O-server coordination, then the PCB. Exec-time migration
// skips the VM entirely — the remote-invocation path pmake uses. Eviction
// sends every foreign process home when a workstation's owner returns.
package core
