package core

import (
	"errors"
	"testing"
	"time"

	"sprite/internal/fs"
	"sprite/internal/sim"
)

// startVictim launches a long-running process (optionally migrated away)
// and returns a sender helper; both are used from boot activities.
func startVictim(c *Cluster, migrate bool) (getProc func() *Process) {
	src, dst := c.Workstation(0), c.Workstation(1)
	var p *Process
	c.Boot("victim-start", func(env *sim.Env) error {
		var err error
		p, err = src.StartProcess(env, "victim", func(ctx *Ctx) error {
			if migrate {
				if err := ctx.Migrate(dst.Host()); err != nil {
					return err
				}
			}
			return ctx.Compute(time.Hour)
		}, smallProc)
		return err
	})
	return func() *Process { return p }
}

// sendSig runs a one-shot sender process that signals the target.
func sendSig(env *sim.Env, k *Kernel, target PID, sig Signal) error {
	sender, err := k.StartProcess(env, "sender", func(ctx *Ctx) error {
		return ctx.SendSignal(target, sig)
	}, smallProc)
	if err != nil {
		return err
	}
	_, err = sender.Exited().Wait(env)
	return err
}

func TestSigTermDefaultKills(t *testing.T) {
	c := newCluster(t, 2)
	getP := startVictim(c, false)
	c.Boot("driver", func(env *sim.Env) error {
		if err := env.Sleep(time.Second); err != nil {
			return err
		}
		return sendSig(env, c.Workstation(0), getP().PID(), SigTerm)
	})
	if err := c.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if n := c.Sim().LiveActivities(); n != 0 {
		t.Fatalf("victim survived SIGTERM (%d live)", n)
	}
}

func TestSignalRoutedToMigratedProcess(t *testing.T) {
	c := newCluster(t, 2)
	getP := startVictim(c, true)
	c.Boot("driver", func(env *sim.Env) error {
		if err := env.Sleep(2 * time.Second); err != nil {
			return err
		}
		if !getP().Foreign() {
			t.Error("victim did not migrate")
		}
		return sendSig(env, c.Workstation(0), getP().PID(), SigKill)
	})
	if err := c.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if getP().State() != StateExited {
		t.Fatalf("victim state = %v, want exited", getP().State())
	}
}

func TestSigTermHandlerCatches(t *testing.T) {
	c := newCluster(t, 1)
	caught := 0
	c.Boot("boot", func(env *sim.Env) error {
		p, err := c.Workstation(0).StartProcess(env, "catcher", func(ctx *Ctx) error {
			if err := ctx.SigVec(SigTerm, func(cc *Ctx, sig Signal) error {
				caught++
				return nil
			}); err != nil {
				return err
			}
			return ctx.Compute(5 * time.Second)
		}, smallProc)
		if err != nil {
			return err
		}
		if err := env.Sleep(time.Second); err != nil {
			return err
		}
		killer, err := c.Workstation(0).StartProcess(env, "killer", func(ctx *Ctx) error {
			return ctx.SendSignal(p.PID(), SigTerm)
		}, smallProc)
		if err != nil {
			return err
		}
		if _, err := killer.Exited().Wait(env); err != nil {
			return err
		}
		st, err := p.Exited().Wait(env)
		if err != nil {
			return err
		}
		if st != 0 {
			t.Errorf("status = %v, want 0 (handled)", st)
		}
		return nil
	})
	runCluster(t, c)
	if caught != 1 {
		t.Fatalf("handler ran %d times, want 1", caught)
	}
}

func TestStopAndContinue(t *testing.T) {
	c := newCluster(t, 1)
	k := c.Workstation(0)
	var finished time.Duration
	c.Boot("boot", func(env *sim.Env) error {
		p, err := k.StartProcess(env, "stoppee", func(ctx *Ctx) error {
			err := ctx.Compute(2 * time.Second)
			finished = ctx.Now()
			return err
		}, smallProc)
		if err != nil {
			return err
		}
		if err := env.Sleep(time.Second); err != nil {
			return err
		}
		stopper, err := k.StartProcess(env, "stopper", func(ctx *Ctx) error {
			return ctx.SendSignal(p.PID(), SigStop)
		}, smallProc)
		if err != nil {
			return err
		}
		if _, err := stopper.Exited().Wait(env); err != nil {
			return err
		}
		// Stopped for 5 seconds.
		if err := env.Sleep(5 * time.Second); err != nil {
			return err
		}
		if !p.Stopped() {
			t.Error("process not stopped")
		}
		conter, err := k.StartProcess(env, "conter", func(ctx *Ctx) error {
			return ctx.SendSignal(p.PID(), SigCont)
		}, smallProc)
		if err != nil {
			return err
		}
		if _, err := conter.Exited().Wait(env); err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	// 2s of work + ~5s stopped: must finish well after 6s.
	if finished < 6*time.Second {
		t.Fatalf("finished at %v, want > 6s (stop did not suspend)", finished)
	}
}

func TestHandlerSurvivesMigration(t *testing.T) {
	c := newCluster(t, 2)
	src, dst := c.Workstation(0), c.Workstation(1)
	caught := 0
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "mover", func(ctx *Ctx) error {
			if err := ctx.SigVec(SigUser1, func(cc *Ctx, sig Signal) error {
				caught++
				return nil
			}); err != nil {
				return err
			}
			if err := ctx.Migrate(dst.Host()); err != nil {
				return err
			}
			return ctx.Compute(5 * time.Second)
		}, smallProc)
		if err != nil {
			return err
		}
		if err := env.Sleep(2 * time.Second); err != nil {
			return err
		}
		sender, err := src.StartProcess(env, "sender", func(ctx *Ctx) error {
			return ctx.SendSignal(p.PID(), SigUser1)
		}, smallProc)
		if err != nil {
			return err
		}
		if _, err := sender.Exited().Wait(env); err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	if caught != 1 {
		t.Fatalf("handler ran %d times after migration, want 1", caught)
	}
}

func TestChdirMigratesWithProcess(t *testing.T) {
	c := newCluster(t, 2)
	if err := c.Seed("/proj/data.txt", []byte("relative!")); err != nil {
		t.Fatal(err)
	}
	if err := c.Seed("/proj", nil); err != nil { // the directory itself
		t.Fatal(err)
	}
	src, dst := c.Workstation(0), c.Workstation(1)
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "reler", func(ctx *Ctx) error {
			if err := ctx.Chdir("/proj"); err != nil {
				return err
			}
			if err := ctx.Migrate(dst.Host()); err != nil {
				return err
			}
			wd, err := ctx.Getwd()
			if err != nil {
				return err
			}
			if wd != "/proj" {
				t.Errorf("cwd after migration = %q", wd)
			}
			fd, err := ctx.Open("data.txt", fs.ReadMode, fs.OpenOptions{})
			if err != nil {
				return err
			}
			data, err := ctx.Read(fd, 64)
			if err != nil {
				return err
			}
			if string(data) != "relative!" {
				t.Errorf("read %q", data)
			}
			return ctx.Close(fd)
		}, smallProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
}

func TestGetRusage(t *testing.T) {
	c := newCluster(t, 2)
	src, dst := c.Workstation(0), c.Workstation(1)
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "worker", func(ctx *Ctx) error {
			if err := ctx.TouchHeap(0, 8, true); err != nil {
				return err
			}
			if err := ctx.Compute(time.Second); err != nil {
				return err
			}
			if err := ctx.Migrate(dst.Host()); err != nil {
				return err
			}
			ru, err := ctx.GetRusage()
			if err != nil {
				return err
			}
			if ru.CPUTime < time.Second {
				t.Errorf("rusage cpu = %v, want >= 1s", ru.CPUTime)
			}
			if ru.PageFaults == 0 {
				t.Error("rusage faults = 0")
			}
			if ru.Migrations != 1 {
				t.Errorf("rusage migrations = %d, want 1", ru.Migrations)
			}
			return nil
		}, smallProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
}

func TestNapIsAMigrationPoint(t *testing.T) {
	c := newCluster(t, 2)
	src, dst := c.Workstation(0), c.Workstation(1)
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "napper", func(ctx *Ctx) error {
			for i := 0; i < 100; i++ {
				if err := ctx.Nap(100 * time.Millisecond); err != nil {
					if errors.Is(err, ErrKilled) {
						return err
					}
					return err
				}
				if ctx.Process().Current() == dst {
					return nil // migrated mid-nap-loop
				}
			}
			t.Error("migration never happened at a nap boundary")
			return nil
		}, smallProc)
		if err != nil {
			return err
		}
		if err := env.Sleep(time.Second); err != nil {
			return err
		}
		done := src.RequestMigration(p, dst, "test")
		if _, err := done.Wait(env); err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
}
