package core

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"sprite/internal/fs"
	"sprite/internal/metrics"
	"sprite/internal/netsim"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// applyEnvParallel lets CI suites opt whole test binaries into the parallel
// kernel without touching scenario code: SPRITE_SIM_PARALLEL=1 (or =true)
// enables it with GOMAXPROCS workers, SPRITE_SIM_PARALLEL=N (N>1) pins the
// worker count, unset/0/false leaves the configured kernel alone. Because
// the parallel kernel commits the serial order bit-for-bit, this is safe to
// set across any suite — it is how `make race` audits the worker handoffs.
func applyEnvParallel(p *SimParams) {
	v := os.Getenv("SPRITE_SIM_PARALLEL")
	if v != "" && v != "0" && v != "false" {
		p.Parallel = true
		if n, err := strconv.Atoi(v); err == nil && n > 1 {
			p.Workers = n
		}
	}
	// SPRITE_SIM_CONFINE=1 additionally homes every host on its own shard.
	// Unlike SPRITE_SIM_PARALLEL this is NOT safe across arbitrary suites:
	// confined clusters reject crashes, migration aborts, and shard-0
	// process joins (DESIGN.md §14), so only point it at suites written for
	// the confined contract (the `make race-confined` / `chaos-confined`
	// legs select those by name).
	if v := os.Getenv("SPRITE_SIM_CONFINE"); v == "1" || v == "true" {
		p.ConfineHosts = true
	}
}

// Options configures a simulated Sprite cluster.
type Options struct {
	// Workstations is the number of diskless workstations (minimum 1).
	Workstations int
	// FileServers is the number of file servers (minimum 1). The first
	// serves "/"; additional servers serve "/vol2", "/vol3", ...
	FileServers int
	// ServerPrefixes optionally overrides the domain served by each file
	// server (index i configures server i). Longest prefix wins, so e.g.
	// {"/", "/swap"} dedicates the second server to VM backing store.
	ServerPrefixes []string
	// Params carries every calibration constant (DefaultParams if zero).
	Params *Params
	// Seed seeds the simulation's deterministic random stream.
	Seed int64
}

// Cluster is a simulated Sprite installation: a set of workstations and
// file servers joined by one network, one RPC fabric, and one shared file
// system.
type Cluster struct {
	sim       *sim.Simulation
	params    Params
	net       *netsim.Network
	transport *rpc.Transport
	fs        *fs.FS

	kernels      map[rpc.HostID]*Kernel
	workstations []*Kernel
	servers      []*fs.Server

	// metrics is the cluster-wide metrics plane. It is always present —
	// every instrument is an atomic add or a mutex-guarded histogram
	// insert, and none of them touches virtual time, so carrying it
	// unconditionally cannot perturb an experiment.
	metrics *metrics.Registry

	// confined records that every host is homed on its own shard
	// (Params.Sim.ConfineHosts): process activities spawn on their host's
	// shard, trace events route through the sim's barrier-ordered sink, and
	// the cross-shard bookkeeping of migration takes its RPC/rehome paths.
	confined bool

	trace TraceFunc

	// failpoint, when set, is consulted at named migration steps (fault
	// injection; see SetFailpoint).
	failpoint FailpointFunc

	// The process ledger backs the exactly-once accounting invariant:
	// every started pid must exit (or be reported crashed) exactly once.
	// The mutex covers confined clusters, where starts and exits on
	// different host shards book concurrently inside a window; the counts
	// are commutative sums and the invariant checker only reads them from
	// exclusive context, after every window has committed.
	ledgerMu      sync.Mutex
	ledgerStarted map[PID]int
	ledgerEnded   map[PID]int

	// deferReap switches host crashes from the omniscient legacy semantics
	// (every kernel reacts the instant the crash happens) to Sprite's real
	// ones: surviving kernels keep running on stale state until a detector
	// calls ReapDeadHost. See SetDeferredReap.
	deferReap bool
	// reapedEpochs records, per host, the highest boot epoch whose death has
	// been reaped cluster-wide (ReapDeadHost idempotence + invariant checks).
	reapedEpochs map[rpc.HostID]rpc.Epoch
	// downAt records when each host last crashed, for detection-latency
	// metrics in the recovery plane.
	downAt map[rpc.HostID]time.Duration

	// extraChecks are invariant contributions registered by subsystems
	// layered on the cluster (the host-selection claim ledger, for one);
	// CheckInvariants runs them after its own checks.
	extraChecks []func(endOfRun bool) []string

	// reapHooks run at the end of ReapDeadHost, once per reaped (host,
	// epoch): subsystems holding per-host soft state keyed by the dead
	// incarnation (leased claims in hostsel, drain bookkeeping in fleet)
	// scrub it here, epoch-guarded, instead of leaking it until the
	// end-of-run audit.
	reapHooks []func(env *sim.Env, host rpc.HostID, epoch rpc.Epoch)
}

// AddInvariantCheck registers an additional cluster-wide invariant checker
// consulted by CheckInvariants. Checkers must be read-only and
// deterministic: they run at quiesce points and their messages land in
// fuzzer digests and test assertions.
func (c *Cluster) AddInvariantCheck(fn func(endOfRun bool) []string) {
	c.extraChecks = append(c.extraChecks, fn)
}

// AddReapHook registers a callback run at the end of every effective
// ReapDeadHost (after the cluster-wide crash-recovery matrix has settled,
// skipped for the idempotent re-reap of an already-reaped epoch). Hooks run
// in registration order in the reaping activity's context.
func (c *Cluster) AddReapHook(fn func(env *sim.Env, host rpc.HostID, epoch rpc.Epoch)) {
	c.reapHooks = append(c.reapHooks, fn)
}

// TraceFunc receives cluster events (migrations, evictions, process
// lifecycle) as they happen in virtual time. See internal/trace for a
// ready-made ring-buffer sink.
type TraceFunc func(at time.Duration, kind, detail string)

// SetTrace installs an event sink (nil disables tracing). Finished metric
// spans (migration phases, etc.) land in the same sink as "span" events.
// On a confined cluster the sink is wired through the simulation's trace
// sink instead: confined activities emit via Env.Emit, which buffers
// in-window events and flushes them at the barrier in committed order, so
// the sink observes the serial sequence under any worker count. Metric
// spans are not traced on confined clusters (their completion would call
// the sink from confined activities directly); the span histograms
// themselves are still recorded.
func (c *Cluster) SetTrace(fn TraceFunc) {
	c.trace = fn
	if c.confined {
		c.sim.SetTraceSink(fn)
		return
	}
	c.metrics.SetTrace(fn)
}

// emit records a trace event if a sink is installed. It is the exclusive-
// context variant; paths reachable from confined activities use emitEnv.
func (c *Cluster) emit(at time.Duration, kind, detail string) {
	if c.trace != nil {
		c.trace(at, kind, detail)
	}
}

// emitEnv records a trace event from an activity. On a confined cluster it
// routes through Env.Emit so in-window events reach the sink barrier-ordered;
// otherwise it is exactly emit, preserving the legacy byte-identical stream.
func (c *Cluster) emitEnv(env *sim.Env, kind, detail string) {
	if c.confined {
		if c.trace != nil {
			env.Emit(kind, detail)
		}
		return
	}
	c.emit(env.Now(), kind, detail)
}

// NewCluster builds a cluster per the options.
func NewCluster(opts Options) (*Cluster, error) {
	if opts.Workstations < 1 {
		return nil, fmt.Errorf("core: need at least one workstation, got %d", opts.Workstations)
	}
	if opts.FileServers < 1 {
		opts.FileServers = 1
	}
	params := DefaultParams()
	if opts.Params != nil {
		params = *opts.Params
	}
	applyEnvParallel(&params.Sim)
	s := sim.New(opts.Seed)
	look := params.Sim.Lookahead
	if look <= 0 {
		look = params.Net.Latency
	}
	s.SetLookahead(look)
	net := netsim.New(s, params.Net)
	transport := rpc.NewTransport(s, net, params.RPC)
	fsys := fs.New(s, transport, params.FS)
	reg := metrics.New()
	if params.Sim.Parallel {
		w := params.Sim.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		s.ConfigureParallel(w)
		reg.EnableSharding(w)
	}
	transport.SetMetrics(reg)
	fsys.SetMetrics(reg)

	c := &Cluster{
		sim:           s,
		params:        params,
		net:           net,
		transport:     transport,
		fs:            fsys,
		metrics:       reg,
		kernels:       make(map[rpc.HostID]*Kernel),
		ledgerStarted: make(map[PID]int),
		ledgerEnded:   make(map[PID]int),
		reapedEpochs:  make(map[rpc.HostID]rpc.Epoch),
		downAt:        make(map[rpc.HostID]time.Duration),
	}
	for i := 0; i < opts.FileServers; i++ {
		host := rpc.HostID(1 + i)
		prefix := "/"
		if i > 0 {
			prefix = fmt.Sprintf("/vol%d", i+1)
		}
		if i < len(opts.ServerPrefixes) && opts.ServerPrefixes[i] != "" {
			prefix = opts.ServerPrefixes[i]
		}
		c.servers = append(c.servers, fsys.AddServer(host, prefix))
	}
	for i := 0; i < opts.Workstations; i++ {
		host := rpc.HostID(1 + opts.FileServers + i)
		k := newKernel(c, host)
		c.kernels[host] = k
		c.workstations = append(c.workstations, k)
	}
	if params.Sim.ConfineHosts {
		// Confinement must switch on only after every endpoint has
		// registered its handlers: ConfineHosts spawns the per-host
		// dispatcher daemons and freezes the handler tables.
		c.confined = true
		c.transport.ConfineHosts(func(h rpc.HostID) int { return int(h) })
	}
	return c, nil
}

// Sim returns the underlying simulation.
func (c *Cluster) Sim() *sim.Simulation { return c.sim }

// Params returns the cluster's calibration constants.
func (c *Cluster) Params() Params { return c.params }

// FS returns the shared file system.
func (c *Cluster) FS() *fs.FS { return c.fs }

// Network returns the network model.
func (c *Cluster) Network() *netsim.Network { return c.net }

// Transport returns the RPC fabric.
func (c *Cluster) Transport() *rpc.Transport { return c.transport }

// Metrics returns the cluster-wide metrics registry. Subsystems (rpc, fs,
// migration) feed it continuously; derived statistics kept elsewhere are
// folded in by MetricsSnapshot.
func (c *Cluster) Metrics() *metrics.Registry { return c.metrics }

// MetricsSnapshot folds every derived statistic the cluster keeps outside
// the registry — scheduler counters, per-kernel migration tallies, per-file-
// server activity, per-RPC-service traffic — into gauges, then returns a
// deterministic point-in-time snapshot. Two same-seed runs produce
// byte-identical Text()/JSON() renderings.
func (c *Cluster) MetricsSnapshot() metrics.Snapshot {
	r := c.metrics
	ss := c.sim.Stats()
	r.Gauge("sim.events_dispatched").Set(int64(ss.EventsDispatched))
	r.Gauge("sim.context_switches").Set(int64(ss.ContextSwitches))
	r.Gauge("sim.max_queue_depth").Set(int64(ss.MaxQueueDepth))
	r.Gauge("sim.activities_spawned").Set(int64(ss.Spawned))
	// mig.inflight is derived, not tracked live: the migration hot path runs
	// confined, where a shared gauge's high-water mark would depend on the
	// cross-shard interleaving. The identity started == completed + aborted
	// + inflight (migmeter.go) makes the level recoverable from the sharded
	// counters at any exclusive point.
	r.Gauge("mig.inflight").Set(r.Counter("mig.started").Value() -
		r.Counter("mig.completed").Value() - r.Counter("mig.aborted").Value())
	// Every fold below iterates its source map in sorted key order: gauge
	// registration order feeds the snapshot's rendering contract, so the
	// first snapshot of a run must see identical key sequences run to run.
	for _, host := range sortedHosts(c.kernels) {
		pre := fmt.Sprintf("kernel.%v.", host)
		st := c.kernels[host].Stats()
		r.Gauge(pre + "migrations_out").Set(int64(st.MigrationsOut))
		r.Gauge(pre + "migrations_in").Set(int64(st.MigrationsIn))
		r.Gauge(pre + "evictions").Set(int64(st.Evictions))
		r.Gauge(pre + "forwarded_calls").Set(int64(st.ForwardedCalls))
		r.Gauge(pre + "remote_execs").Set(int64(st.RemoteExecs))
		r.Gauge(pre + "procs_started").Set(int64(st.ProcsStarted))
		r.Gauge(pre + "procs_exited").Set(int64(st.ProcsExited))
		r.Gauge(pre + "procs_crashed").Set(int64(st.ProcsCrashed))
	}
	servers := c.fs.Servers()
	for _, host := range sortedHosts(servers) {
		pre := fmt.Sprintf("fsserver.%v.", host)
		st := servers[host].Stats()
		r.Gauge(pre + "lookups").Set(int64(st.Lookups))
		r.Gauge(pre + "blocks_read").Set(int64(st.BlocksRead))
		r.Gauge(pre + "blocks_written").Set(int64(st.BlocksWrite))
		r.Gauge(pre + "cold_reads").Set(int64(st.ColdReads))
		r.Gauge(pre + "flush_recalls").Set(int64(st.FlushRecall))
		r.Gauge(pre + "cache_disables").Set(int64(st.Disables))
	}
	svcStats := c.transport.Stats()
	svcs := make([]string, 0, len(svcStats))
	for svc := range svcStats {
		svcs = append(svcs, svc)
	}
	sort.Strings(svcs)
	for _, svc := range svcs {
		st := svcStats[svc]
		pre := "rpc.service." + svc + "."
		r.Gauge(pre + "calls").Set(int64(st.Calls))
		r.Gauge(pre + "bytes").Set(int64(st.Bytes))
		r.Gauge(pre + "errs").Set(int64(st.Errs))
	}
	return r.Snapshot()
}

// sortedHosts returns m's keys in ascending host order.
func sortedHosts[V any](m map[rpc.HostID]V) []rpc.HostID {
	hosts := make([]rpc.HostID, 0, len(m))
	for h := range m {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	return hosts
}

// Workstations returns the workstation kernels in host order.
func (c *Cluster) Workstations() []*Kernel {
	out := make([]*Kernel, len(c.workstations))
	copy(out, c.workstations)
	return out
}

// Servers returns the file servers in host order.
func (c *Cluster) Servers() []*fs.Server {
	out := make([]*fs.Server, len(c.servers))
	copy(out, c.servers)
	return out
}

// Workstation returns the i-th workstation kernel (0-based).
func (c *Cluster) Workstation(i int) *Kernel { return c.workstations[i] }

// KernelOn returns the kernel running on the given host, or nil.
func (c *Cluster) KernelOn(host rpc.HostID) *Kernel { return c.kernels[host] }

// Run executes the simulation until no events remain or the time limit is
// reached (limit <= 0 means unlimited).
func (c *Cluster) Run(limit time.Duration) error { return c.sim.Run(limit) }

// Stop aborts the simulation, unwinding every activity.
func (c *Cluster) Stop() { c.sim.Stop() }

// Boot spawns a driver activity at time zero. It is the usual way to inject
// scenario code into the cluster. On a confined cluster drivers that start,
// join, or migrate processes must instead boot on the home host's shard via
// BootOn; a shard-0 driver touching a confined kernel trips the simulation's
// cross-shard checks.
func (c *Cluster) Boot(name string, fn func(env *sim.Env) error) {
	c.sim.Spawn(name, fn)
}

// BootOn spawns a driver activity confined to the given host's shard. It is
// how scenario code enters a confined cluster: the driver shares the host
// kernel's shard, so StartProcess, Wait, and RequestMigration run without
// cross-shard coordination. On non-confined clusters every host maps to the
// exclusive shard, so BootOn degenerates to Boot and scenarios stay portable
// across both configurations.
func (c *Cluster) BootOn(host rpc.HostID, name string, fn func(env *sim.Env) error) {
	if !c.confined {
		c.sim.Spawn(name, fn)
		return
	}
	c.sim.SpawnOn(int(host), name, fn)
}

// Confined reports whether the cluster homes each host on its own shard.
func (c *Cluster) Confined() bool { return c.confined }

// Seed creates a file in the shared FS without charging virtual time
// (scenario setup).
func (c *Cluster) Seed(path string, data []byte) error {
	_, err := c.fs.Seed(path, data, false)
	return err
}

// SeedBinary seeds a program binary of the given size.
func (c *Cluster) SeedBinary(path string, size int) error {
	_, err := c.fs.SeedSized(path, size, false)
	return err
}

// SetStrategyAll installs one VM transfer strategy on every workstation.
func (c *Cluster) SetStrategyAll(s TransferStrategy) {
	for _, k := range c.workstations {
		k.SetStrategy(s)
	}
}

// MigrationRecords gathers the migration records of every kernel.
func (c *Cluster) MigrationRecords() []MigrationRecord {
	var out []MigrationRecord
	for _, k := range c.workstations {
		out = append(out, k.MigrationRecords()...)
	}
	return out
}

// Kill routes a kill of target through its home machine, issued from via's
// endpoint — the daemon-context counterpart of Ctx.Kill. The fleet drain
// path uses it to evacuate a resident no host will accept alive.
func (c *Cluster) Kill(env *sim.Env, via *Kernel, target PID) error {
	return c.killPID(env, via, target)
}

// killPID routes a kill through the target's home machine.
func (c *Cluster) killPID(env *sim.Env, via *Kernel, target PID) error {
	homeK := c.kernels[target.Home]
	if homeK == nil {
		return fmt.Errorf("%w: %v", ErrNoSuchProcess, target)
	}
	if _, err := via.ep.Call(env, homeK.host, "k.kill", killArgs{PID: target}, 32); err != nil {
		return err
	}
	return nil
}
