package core

import (
	"strings"
	"testing"

	"sprite/internal/fs"
	"sprite/internal/sim"
)

// TestInvariantCheckerCatchesInjectedRefLeak is the mutation test for the
// cluster invariant checker: deliberately unbalance a stream's reference
// counts the way a buggy migration path would — the client-side reference
// vanishes while the server still counts the open — and require the
// checker to flag it, both at a mid-run quiesce point and at end of run.
func TestInvariantCheckerCatchesInjectedRefLeak(t *testing.T) {
	c := newCluster(t, 1)
	ws := c.Workstation(0)
	var midRun []string
	c.Boot("boot", func(env *sim.Env) error {
		p, err := ws.StartProcess(env, "leaker", func(ctx *Ctx) error {
			fd, err := ctx.Open("/data/leak", fs.ReadWriteMode, fs.OpenOptions{Create: true})
			if err != nil {
				return err
			}
			// Mutation: scrub this host's reference from the stream without
			// telling the server, exactly the imbalance a lost migrateStream
			// or a missed close would leave behind.
			sts := ctx.Process().openStreams()
			sts[len(sts)-1].ScrubHost(ws.Host())
			midRun = c.CheckInvariants(false)
			// The leaked stream is unusable now; drop the fd regardless.
			_ = ctx.Close(fd)
			return nil
		}, smallProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	if len(midRun) == 0 {
		t.Fatal("injected refcount leak not caught at quiesce point")
	}
	found := false
	for _, v := range midRun {
		if strings.Contains(v, "refs:") {
			found = true
		}
	}
	if !found {
		t.Errorf("quiesce violations %v lack a refs imbalance", midRun)
	}
	// The stranded server-side open must still be visible at end of run.
	end := c.CheckInvariants(true)
	if len(end) == 0 {
		t.Fatal("stranded server open not caught at end of run")
	}
}

// TestInvariantsCleanOnHealthyRun is the control for the mutation test: the
// same workload without the injected leak reports nothing.
func TestInvariantsCleanOnHealthyRun(t *testing.T) {
	c := newCluster(t, 1)
	ws := c.Workstation(0)
	var midRun []string
	c.Boot("boot", func(env *sim.Env) error {
		p, err := ws.StartProcess(env, "clean", func(ctx *Ctx) error {
			fd, err := ctx.Open("/data/clean", fs.ReadWriteMode, fs.OpenOptions{Create: true})
			if err != nil {
				return err
			}
			if _, err := ctx.Write(fd, make([]byte, 1024)); err != nil {
				return err
			}
			midRun = c.CheckInvariants(false)
			return ctx.Close(fd)
		}, smallProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	if len(midRun) != 0 {
		t.Errorf("healthy quiesce point reported %v", midRun)
	}
	if v := c.CheckInvariants(true); len(v) != 0 {
		t.Errorf("healthy end of run reported %v", v)
	}
}
