package core

import (
	"errors"
	"testing"
	"time"

	"sprite/internal/sim"
)

// TestMigrationPhaseMetrics: a clean migration decomposes exactly into the
// five phases — negotiate, VM transfer, stream handoff, PCB, resume — both
// in the MigrationRecord and in the metrics plane's phase timings, and the
// started/completed/in-flight accounting balances.
func TestMigrationPhaseMetrics(t *testing.T) {
	c := newCluster(t, 2)
	src, dst := c.Workstation(0), c.Workstation(1)
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "mover", func(ctx *Ctx) error {
			if err := ctx.TouchHeap(0, 16, true); err != nil {
				return err
			}
			return ctx.Migrate(dst.Host())
		}, bigProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)

	recs := c.MigrationRecords()
	if len(recs) != 1 {
		t.Fatalf("migrations = %d, want 1", len(recs))
	}
	rec := recs[0]
	// FileTime may be zero: with the batched data plane the stream transfer
	// overlaps the VM transfer, and its span covers only the tail that
	// outlives the VM work.
	if rec.NegotiateTime <= 0 || rec.VMTime <= 0 || rec.FileTime < 0 || rec.PCBTime <= 0 {
		t.Fatalf("phase times must all be non-negative (negotiate/vm/pcb positive): %+v", rec)
	}
	// The phases tile Total with no gap: spans are contiguous in virtual
	// time, so the decomposition must be exact, not approximate.
	if sum := rec.NegotiateTime + rec.VMTime + rec.FileTime + rec.PCBTime + rec.ResumeTime; sum != rec.Total {
		t.Fatalf("phase sum %v != total %v", sum, rec.Total)
	}

	snap := c.MetricsSnapshot()
	if got := snap.Counters["mig.started"]; got != 1 {
		t.Fatalf("mig.started = %d", got)
	}
	if got := snap.Counters["mig.completed"]; got != 1 {
		t.Fatalf("mig.completed = %d", got)
	}
	if got := snap.Counters["mig.aborted"]; got != 0 {
		t.Fatalf("mig.aborted = %d", got)
	}
	// mig.inflight is derived from the counters at snapshot time (the hot
	// path runs confined and cannot drive a shared gauge); after the
	// migration completed the level is back to zero.
	g := snap.Gauges["mig.inflight"]
	if g.Value != 0 {
		t.Fatalf("mig.inflight = %+v, want value 0", g)
	}
	for _, name := range []string{
		"mig.phase.negotiate", "mig.phase.vm.sprite-flush",
		"mig.phase.streams", "mig.phase.pcb", "mig.phase.resume",
		"mig.total", "mig.total.sprite-flush", "mig.freeze",
	} {
		ts, ok := snap.Timings[name]
		if !ok || ts.N != 1 {
			t.Fatalf("timing %s = %+v, want one observation", name, ts)
		}
	}
	if got := snap.Timings["mig.phase.vm.sprite-flush"].Sum; got != rec.VMTime {
		t.Fatalf("vm phase timing %v != record VMTime %v", got, rec.VMTime)
	}
	if got := snap.Counters["mig.vm_bytes"]; got != int64(rec.VMBytes) {
		t.Fatalf("mig.vm_bytes = %d, want %d", got, rec.VMBytes)
	}
	if v := c.CheckInvariants(true); len(v) != 0 {
		t.Fatalf("invariants: %v", v)
	}
}

// TestMetricsAbortRollbackUnderFault drives two failed migrations through
// the fault plane — one killed by an injected VM-phase error, one by the
// target host crashing just before switch-over — and asserts the metrics
// plane rolls both back coherently: no phase timing is recorded for work
// that never completed, the aborts are charged to the right phase, the
// in-flight gauge returns to zero, and the invariant checker agrees.
func TestMetricsAbortRollbackUnderFault(t *testing.T) {
	c := newCluster(t, 3)
	src, dstA, dstB := c.Workstation(0), c.Workstation(1), c.Workstation(2)
	injected := errors.New("injected vm fault")
	vmFault := true
	c.SetFailpoint(func(env *sim.Env, name string, pid PID) error {
		switch {
		case vmFault && name == "mig.vm":
			vmFault = false
			return injected
		case name == "mig.pcb" && c.KernelOn(dstB.Host()) != nil && !c.HostDown(dstB.Host()):
			// Crash the second target after its PCB landed: the migration
			// must detect the dead host and abort during resume.
			c.CrashHost(env, dstB.Host())
		}
		return nil
	})
	var errA, errB error
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "unlucky", func(ctx *Ctx) error {
			if err := ctx.TouchHeap(0, 16, true); err != nil {
				return err
			}
			errA = ctx.Migrate(dstA.Host())
			errB = ctx.Migrate(dstB.Host())
			// Life goes on at the source either way.
			return ctx.Compute(10 * time.Millisecond)
		}, bigProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)

	if !errors.Is(errA, injected) {
		t.Fatalf("first migration err = %v, want injected fault", errA)
	}
	if errB == nil {
		t.Fatal("second migration must fail: target crashed mid-flight")
	}

	snap := c.MetricsSnapshot()
	if got := snap.Counters["mig.started"]; got != 2 {
		t.Fatalf("mig.started = %d", got)
	}
	if got := snap.Counters["mig.completed"]; got != 0 {
		t.Fatalf("mig.completed = %d", got)
	}
	if got := snap.Counters["mig.aborted"]; got != 2 {
		t.Fatalf("mig.aborted = %d", got)
	}
	if got := snap.Counters["mig.aborted.vm.sprite-flush"]; got != 1 {
		t.Fatalf("mig.aborted.vm.sprite-flush = %d", got)
	}
	if got := snap.Counters["mig.aborted.resume"]; got != 1 {
		t.Fatalf("mig.aborted.resume = %d", got)
	}
	if g := snap.Gauges["mig.inflight"]; g.Value != 0 {
		t.Fatalf("mig.inflight = %d after aborts, want 0", g.Value)
	}
	// No partial-phase leaks: an aborted phase contributes no latency
	// observation. The VM phase aborted on the first attempt and completed
	// zero times; resume never completed at all.
	if ts, ok := snap.Timings["mig.phase.vm.sprite-flush"]; ok && ts.N != 1 {
		t.Fatalf("vm phase timings = %+v, want only the second attempt's", ts)
	}
	if ts, ok := snap.Timings["mig.phase.resume"]; ok && ts.N != 0 {
		t.Fatalf("resume phase recorded %d timings for aborted work", ts.N)
	}
	// Completed-phase counts line up with how far each attempt got:
	// negotiate ran twice (both attempts), streams and pcb once (second).
	if ts := snap.Timings["mig.phase.negotiate"]; ts.N != 2 {
		t.Fatalf("negotiate timings = %d, want 2", ts.N)
	}
	if ts := snap.Timings["mig.phase.pcb"]; ts.N != 1 {
		t.Fatalf("pcb timings = %d, want 1", ts.N)
	}
	if got := snap.Timings["mig.total"].N; got != 0 {
		t.Fatalf("mig.total recorded %d aborted migrations", got)
	}
	if v := c.CheckInvariants(true); len(v) != 0 {
		t.Fatalf("invariants after fault run: %v", v)
	}
}

// TestMetricsSnapshotDeterministic: two clusters run from the same seed
// render byte-identical metrics snapshots.
func TestMetricsSnapshotDeterministic(t *testing.T) {
	run := func() string {
		c := newCluster(t, 3)
		c.Boot("boot", func(env *sim.Env) error {
			p, err := c.Workstation(0).StartProcess(env, "hopper", func(ctx *Ctx) error {
				if err := ctx.TouchHeap(0, 8, true); err != nil {
					return err
				}
				if err := ctx.Migrate(c.Workstation(1).Host()); err != nil {
					return err
				}
				return ctx.Migrate(c.Workstation(2).Host())
			}, smallProc)
			if err != nil {
				return err
			}
			_, err = p.Exited().Wait(env)
			return err
		})
		runCluster(t, c)
		return c.MetricsSnapshot().Text()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed snapshots differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if a == "" {
		t.Fatal("snapshot is empty")
	}
}
