package core

import (
	"fmt"
	"sort"
	"strings"

	"sprite/internal/fs"
	"sprite/internal/rpc"
)

// CheckInvariants verifies cluster-wide consistency and returns one message
// per violation (empty means clean). It is meant to run at quiesce points —
// when no process is mid-migration and no RPC is in flight — and at the end
// of a run (endOfRun true adds emptiness checks). It assumes every open
// stream is owned by a process; drivers that open files directly should not
// use it mid-run.
//
// Checked invariants:
//
//   - exactly-once accounting: every started pid exits, or is reported
//     crashed, exactly once — never zero times (with endOfRun), never twice;
//   - process-table consistency: a table entry belongs to its kernel (or is
//     a migration skeleton), is not exited, and is ledger-live;
//   - stream/server reference conservation: for every file, the open counts
//     in the server's table equal what surviving processes' streams imply,
//     host by host — migration and eviction must neither leak nor lose
//     references; pipe ends must likewise match host for host;
//   - migration-metrics conservation: every migration the metrics plane
//     saw start was retired exactly once (completed or aborted, phase
//     counters included), and at a quiesce point none is still in flight —
//     an abort path that forgot its rollback shows up here as a leak;
//   - with endOfRun: no processes, home records, server opens, or pipes
//     remain, and no dirty cache blocks survive (delegated fs checks);
//   - any subsystem checks registered with AddInvariantCheck (the
//     host-selection claim ledger's no-double-claim/no-leak audit).
func (c *Cluster) CheckInvariants(endOfRun bool) []string {
	var out []string
	out = append(out, c.checkLedger(endOfRun)...)
	out = append(out, c.checkTables(endOfRun)...)
	out = append(out, c.checkStreamRefs()...)
	out = append(out, c.checkMigrationMetrics()...)
	out = append(out, c.checkRecovery()...)
	out = append(out, c.fs.CheckInvariants(endOfRun)...)
	for _, fn := range c.extraChecks {
		out = append(out, fn(endOfRun)...)
	}
	return out
}

// checkRecovery verifies the crash-recovery matrix was applied completely
// for every reaped boot epoch: no process of a reaped home incarnation may
// still be running un-killed anywhere, and no surviving home may still hold
// an unsettled record for a child that died on a reaped incarnation. (Both
// conditions are epoch-guarded, so post-reboot processes are exempt.)
func (c *Cluster) checkRecovery() []string {
	var out []string
	hosts := make([]rpc.HostID, 0, len(c.reapedEpochs))
	for h := range c.reapedEpochs {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	for _, host := range hosts {
		reaped := c.reapedEpochs[host]
		for _, k := range c.workstations {
			for _, p := range k.Processes() {
				if p.cur != k || p.state == StateExited || p.killed || p.crashed {
					continue
				}
				if p.home.host == host && p.homeEpoch <= reaped {
					out = append(out, fmt.Sprintf("recovery: %v on %v survives reap of its home %v epoch %d",
						p.pid, k.host, host, reaped))
				}
			}
			if k.host == host {
				continue
			}
			for _, rec := range k.homeRecords() {
				p := rec.proc
				if p.crashed && p.state == StateExited && p.cur != nil && p.cur.host == host && p.crashEpoch <= reaped {
					out = append(out, fmt.Sprintf("recovery: home %v still holds unsettled record for %v, which died on reaped %v epoch %d",
						k.host, p.pid, host, reaped))
				}
			}
		}
	}
	return out
}

// checkMigrationMetrics cross-checks the metrics plane against itself: at
// a quiesce point (where this checker is defined to run) no migration is
// in flight, so the started counter must equal completed + aborted — the
// derived mig.inflight level (see migmeter.go) must be zero — and the
// per-phase abort counters must sum to the total abort counter.
func (c *Cluster) checkMigrationMetrics() []string {
	var out []string
	snap := c.metrics.Snapshot()
	started := snap.Counters["mig.started"]
	completed := snap.Counters["mig.completed"]
	aborted := snap.Counters["mig.aborted"]
	if inflight := started - completed - aborted; inflight != 0 {
		out = append(out, fmt.Sprintf("metrics: mig.inflight = %d at a quiesce point (started %d, completed %d, aborted %d)",
			inflight, started, completed, aborted))
	}
	var byPhase int64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "mig.aborted.") {
			byPhase += v
		}
	}
	if byPhase != aborted {
		out = append(out, fmt.Sprintf("metrics: per-phase abort counters sum to %d, mig.aborted = %d",
			byPhase, aborted))
	}
	return out
}

func (c *Cluster) checkLedger(endOfRun bool) []string {
	var out []string
	pids := make([]PID, 0, len(c.ledgerStarted))
	for pid := range c.ledgerStarted {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return less(pids[i], pids[j]) })
	for _, pid := range pids {
		started := c.ledgerStarted[pid]
		ended := c.ledgerEnded[pid]
		if started != 1 {
			out = append(out, fmt.Sprintf("ledger: %v started %d times", pid, started))
		}
		if ended > 1 {
			out = append(out, fmt.Sprintf("ledger: %v ended %d times (exit/crash reported more than once)", pid, ended))
		}
		if endOfRun && ended == 0 {
			out = append(out, fmt.Sprintf("ledger: %v started but never exited or crashed", pid))
		}
	}
	ends := make([]PID, 0)
	for pid := range c.ledgerEnded {
		if c.ledgerStarted[pid] == 0 {
			ends = append(ends, pid)
		}
	}
	sort.Slice(ends, func(i, j int) bool { return less(ends[i], ends[j]) })
	for _, pid := range ends {
		out = append(out, fmt.Sprintf("ledger: %v ended without ever starting", pid))
	}
	return out
}

func (c *Cluster) checkTables(endOfRun bool) []string {
	var out []string
	for _, k := range c.workstations {
		for _, p := range k.Processes() {
			switch {
			case p.state == StateExited:
				out = append(out, fmt.Sprintf("table: host %v still holds exited %v", k.host, p.pid))
			case p.cur != k && p.state != StateMigrating:
				out = append(out, fmt.Sprintf("table: host %v holds %v which runs on %v", k.host, p.pid, p.cur.host))
			case p.cur == k && c.ledgerEnded[p.pid] > 0:
				out = append(out, fmt.Sprintf("table: %v is live on %v but the ledger says it ended", p.pid, k.host))
			}
		}
		if endOfRun {
			if n := len(k.procs); n > 0 {
				out = append(out, fmt.Sprintf("table: host %v has %d processes at end of run", k.host, n))
			}
			if n := len(k.homeRecs); n > 0 {
				out = append(out, fmt.Sprintf("table: host %v has %d home records at end of run", k.host, n))
			}
		}
	}
	return out
}

// checkStreamRefs rebuilds, from surviving processes, the open-reference
// table every file server should hold, and diffs it against the real one.
func (c *Cluster) checkStreamRefs() []string {
	var out []string

	// One server-side open reference exists per (stream, host) pair with a
	// positive client refcount, counted under the stream's mode class.
	type refKey struct {
		fid  fs.FileID
		host rpc.HostID
	}
	expected := make(map[refKey]fs.OpenCount)
	expReaders := make(map[refKey]bool) // pipe ends expected per host
	expWriters := make(map[refKey]bool)
	seen := make(map[fs.StreamID]bool)
	for _, k := range c.workstations {
		for _, p := range k.Processes() {
			if p.cur != k || p.state == StateExited {
				continue
			}
			streams := p.openStreams()
			if p.space != nil {
				for _, seg := range p.space.Segments() {
					if seg.Backing != nil {
						streams = append(streams, seg.Backing)
					}
				}
			}
			for _, st := range streams {
				if seen[st.ID] {
					continue
				}
				seen[st.ID] = true
				for h, n := range st.Owners() {
					if n <= 0 {
						continue
					}
					key := refKey{fid: st.FID, host: h}
					if st.Pipe() {
						if st.Mode.CanWrite() {
							expWriters[key] = true
						} else {
							expReaders[key] = true
						}
						continue
					}
					oc := expected[key]
					if st.Mode.CanWrite() {
						oc.Writers++
					} else {
						oc.Readers++
					}
					expected[key] = oc
				}
			}
		}
	}

	actual := make(map[refKey]fs.OpenCount)
	actReaders := make(map[refKey]bool)
	actWriters := make(map[refKey]bool)
	for _, srv := range c.servers {
		for fid, hosts := range srv.OpenRefs() {
			for h, oc := range hosts {
				actual[refKey{fid: fid, host: h}] = oc
			}
		}
		for _, pi := range srv.Pipes() {
			fid := fs.FileID{Server: srv.Host(), Ino: pi.Ino}
			for _, h := range pi.ReaderHosts {
				actReaders[refKey{fid: fid, host: h}] = true
			}
			for _, h := range pi.WriterHosts {
				actWriters[refKey{fid: fid, host: h}] = true
			}
		}
	}

	keys := make(map[refKey]bool)
	for k := range expected {
		keys[k] = true
	}
	for k := range actual {
		keys[k] = true
	}
	sorted := make([]refKey, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.fid.Server != b.fid.Server {
			return a.fid.Server < b.fid.Server
		}
		if a.fid.Ino != b.fid.Ino {
			return a.fid.Ino < b.fid.Ino
		}
		return a.host < b.host
	})
	for _, k := range sorted {
		if e, a := expected[k], actual[k]; e != a {
			out = append(out, fmt.Sprintf("refs: file %v host %v: server holds r=%d w=%d, live streams imply r=%d w=%d",
				k.fid, k.host, a.Readers, a.Writers, e.Readers, e.Writers))
		}
	}

	diffEnds := func(exp, act map[refKey]bool, end string) {
		keys := make(map[refKey]bool)
		for k := range exp {
			keys[k] = true
		}
		for k := range act {
			keys[k] = true
		}
		sorted := make([]refKey, 0, len(keys))
		for k := range keys {
			sorted = append(sorted, k)
		}
		sort.Slice(sorted, func(i, j int) bool {
			a, b := sorted[i], sorted[j]
			if a.fid.Server != b.fid.Server {
				return a.fid.Server < b.fid.Server
			}
			if a.fid.Ino != b.fid.Ino {
				return a.fid.Ino < b.fid.Ino
			}
			return a.host < b.host
		})
		for _, k := range sorted {
			switch {
			case exp[k] && !act[k]:
				out = append(out, fmt.Sprintf("refs: pipe %v: live %s stream on host %v but server lost the end", k.fid, end, k.host))
			case !exp[k] && act[k]:
				out = append(out, fmt.Sprintf("refs: pipe %v: server holds a %s end for host %v with no live stream", k.fid, end, k.host))
			}
		}
	}
	diffEnds(expReaders, actReaders, "reader")
	diffEnds(expWriters, actWriters, "writer")
	return out
}
