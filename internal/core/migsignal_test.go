package core

import (
	"testing"
	"time"

	"sprite/internal/sim"
)

// These tests race signal delivery against an in-flight migration: the
// "mig.pcb" failpoint holds the PCB between hosts while a signal is routed
// through the victim's home machine. Whatever host the signal lands on, it
// must take effect exactly once — one exit in the ledger for SIGKILL, one
// suspension (resumable by SIGCONT) for SIGSTOP.

// transitHarness starts a process on home that migrates to target, holding
// the PCB transfer at "mig.pcb" until hold elapses. inTransit completes the
// moment the transfer begins to hang, so the boot activity can race a
// signal against it.
func transitHarness(c *Cluster, victim *PID, hold time.Duration) *sim.Future {
	inTransit := sim.NewFuture(c.Sim())
	c.SetFailpoint(func(env *sim.Env, name string, pid PID) error {
		if name != "mig.pcb" || pid != *victim {
			return nil
		}
		inTransit.Complete(nil, nil)
		return env.Sleep(hold)
	})
	return inTransit
}

func TestSigKillRacesInFlightMigration(t *testing.T) {
	c := newCluster(t, 3)
	home, target, other := c.Workstation(0), c.Workstation(1), c.Workstation(2)
	var victim PID
	inTransit := transitHarness(c, &victim, 20*time.Millisecond)
	var status any
	c.Boot("boot", func(env *sim.Env) error {
		p, err := home.StartProcess(env, "victim", func(ctx *Ctx) error {
			if err := ctx.TouchHeap(0, 8, true); err != nil {
				return err
			}
			if err := ctx.Migrate(target.Host()); err != nil {
				return err
			}
			return ctx.Compute(10 * time.Second)
		}, smallProc)
		if err != nil {
			return err
		}
		victim = p.PID()
		if _, err := inTransit.Wait(env); err != nil {
			return err
		}
		// The PCB is between hosts right now: kill, routed via home.
		if err := c.signalPID(env, other, victim, SigKill); err != nil {
			return err
		}
		status, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	if status != -1 {
		t.Fatalf("exit status = %v, want -1 (killed)", status)
	}
	var exited uint64
	for _, k := range []*Kernel{home, target, other} {
		exited += k.Stats().ProcsExited
	}
	if exited != 1 {
		t.Errorf("exits recorded = %d, want exactly 1", exited)
	}
	if v := c.CheckInvariants(true); len(v) != 0 {
		t.Errorf("invariants violated: %v", v)
	}
}

func TestSigStopRacesInFlightMigration(t *testing.T) {
	c := newCluster(t, 3)
	home, target, other := c.Workstation(0), c.Workstation(1), c.Workstation(2)
	var victim PID
	inTransit := transitHarness(c, &victim, 20*time.Millisecond)
	finished := false
	c.Boot("boot", func(env *sim.Env) error {
		p, err := home.StartProcess(env, "sleeper", func(ctx *Ctx) error {
			if err := ctx.TouchHeap(0, 8, true); err != nil {
				return err
			}
			if err := ctx.Migrate(target.Host()); err != nil {
				return err
			}
			if err := ctx.Compute(50 * time.Millisecond); err != nil {
				return err
			}
			finished = true
			return nil
		}, smallProc)
		if err != nil {
			return err
		}
		victim = p.PID()
		if _, err := inTransit.Wait(env); err != nil {
			return err
		}
		// Stop the process while its PCB is between hosts.
		if err := c.signalPID(env, other, victim, SigStop); err != nil {
			return err
		}
		// Once the migration completes, the stop takes effect at the next
		// kernel call — on the TARGET, where the process now lives.
		if err := env.Sleep(100 * time.Millisecond); err != nil {
			return err
		}
		if !p.Stopped() {
			t.Error("process not stopped after SIGSTOP raced the migration")
		}
		if p.Current() != target {
			t.Errorf("stopped on %v, want target %v", p.Current().Host(), target.Host())
		}
		if finished {
			t.Error("process ran to completion while supposedly stopped")
		}
		if err := c.signalPID(env, other, victim, SigCont); err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	if !finished {
		t.Error("process never resumed after SIGCONT")
	}
	var exited uint64
	for _, k := range []*Kernel{home, target, other} {
		exited += k.Stats().ProcsExited
	}
	if exited != 1 {
		t.Errorf("exits recorded = %d, want exactly 1", exited)
	}
	if v := c.CheckInvariants(true); len(v) != 0 {
		t.Errorf("invariants violated: %v", v)
	}
}
