package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sprite/internal/fs"
	"sprite/internal/sim"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the migration snapshot goldens under testdata/")

// migrationSnapshot runs the pinned migration scenario — open files, a dirty
// heap, one migration, a touchback — and renders everything observable about
// it: the record's full phase decomposition, the bulk data-plane counters,
// and the whole metrics snapshot.
func migrationSnapshot(t *testing.T, seed int64, batched bool, simp SimParams) string {
	t.Helper()
	params := DefaultParams()
	params.Batch.Enabled = batched
	params.Sim = simp
	c, err := NewCluster(Options{Workstations: 2, FileServers: 1, Seed: seed, Params: &params})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SeedBinary("/bin/prog", 64<<10); err != nil {
		t.Fatal(err)
	}
	if err := c.Seed("/data/f0", []byte("golden")); err != nil {
		t.Fatal(err)
	}
	src, dst := c.Workstation(0), c.Workstation(1)
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "golden", func(ctx *Ctx) error {
			if _, err := ctx.Open("/data/f0", fs.ReadMode, fs.OpenOptions{}); err != nil {
				return err
			}
			if err := ctx.TouchHeap(0, 32, true); err != nil {
				return err
			}
			if err := ctx.Migrate(dst.Host()); err != nil {
				return err
			}
			return ctx.TouchHeap(0, 8, false)
		}, ProcConfig{Binary: "/bin/prog", CodePages: 4, HeapPages: 32, StackPages: 2})
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	recs := c.MigrationRecords()
	if len(recs) != 1 {
		t.Fatalf("migrations = %d, want 1", len(recs))
	}
	rec := recs[0]
	var b strings.Builder
	fmt.Fprintf(&b, "strategy=%s batched=%v\n", rec.Strategy, rec.Batched)
	fmt.Fprintf(&b, "total=%v freeze=%v\n", rec.Total, rec.Freeze)
	fmt.Fprintf(&b, "negotiate=%v vm=%v streams=%v pcb=%v resume=%v\n",
		rec.NegotiateTime, rec.VMTime, rec.FileTime, rec.PCBTime, rec.ResumeTime)
	fmt.Fprintf(&b, "vm_bytes=%d pages_flushed=%d pages_copied=%d files=%d\n",
		rec.VMBytes, rec.PagesFlushed, rec.PagesCopied, rec.Files)
	fmt.Fprintf(&b, "batch_runs=%d batch_fragments=%d batch_retransmits=%d\n",
		rec.BatchRuns, rec.BatchFragments, rec.BatchRetransmits)
	b.WriteString(c.MetricsSnapshot().Text())
	return b.String()
}

// TestGoldenMigrationSnapshots pins one batched and one legacy migration run
// byte for byte: the snapshot must be identical run over run, identical
// across two seeds (the scenario draws no randomness — any divergence means
// nondeterminism leaked into the data plane), and identical to the golden
// committed under testdata/. Regenerate with -update-golden when a cost
// model change is intentional.
func TestGoldenMigrationSnapshots(t *testing.T) {
	for _, batched := range []bool{true, false} {
		mode := "legacy"
		if batched {
			mode = "batched"
		}
		t.Run(mode, func(t *testing.T) {
			got := migrationSnapshot(t, 1, batched, SimParams{})
			if again := migrationSnapshot(t, 1, batched, SimParams{}); again != got {
				t.Fatalf("same-seed reruns differ:\n--- first ---\n%s\n--- second ---\n%s", got, again)
			}
			if other := migrationSnapshot(t, 2, batched, SimParams{}); other != got {
				t.Fatalf("seed 2 diverged from seed 1:\n--- seed1 ---\n%s\n--- seed2 ---\n%s", got, other)
			}
			path := filepath.Join("testdata", "migration_"+mode+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Fatalf("snapshot changed vs %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}
