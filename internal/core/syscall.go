package core

import (
	"fmt"
	"time"

	"sprite/internal/fs"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// HandlingPolicy classifies how a kernel call behaves for a migrated
// (foreign) process — the content of the thesis's Appendix A. Sprite keeps
// remote execution transparent by choosing, per call, whether to execute it
// on the current host, forward it to the home machine, or rely on state that
// migration transferred.
type HandlingPolicy int

// Handling policies.
const (
	// PolicyLocal: executes entirely on the current host with no
	// location-dependent state (e.g. getpid — the pid travels in the PCB).
	PolicyLocal HandlingPolicy = iota + 1
	// PolicyFile: handled by the network file system, which is already
	// location transparent (open/read/write/...).
	PolicyFile
	// PolicyHome: forwarded to the home machine because it touches state
	// kept there (process families, host-specific identity, time kept
	// consistent with home).
	PolicyHome
	// PolicyTransfer: depends on state that migration moves with the
	// process (address space, descriptor table); executes locally after
	// transfer.
	PolicyTransfer
	// PolicyDenied: refused for migrated processes (Sprite refuses to
	// migrate processes that would need it, e.g. shared writable memory
	// mappings).
	PolicyDenied
)

func (h HandlingPolicy) String() string {
	switch h {
	case PolicyLocal:
		return "local"
	case PolicyFile:
		return "file-system"
	case PolicyHome:
		return "forwarded-home"
	case PolicyTransfer:
		return "transferred-state"
	case PolicyDenied:
		return "denied"
	default:
		return "?"
	}
}

// SyscallTable is the per-call handling classification, reconstructed from
// Appendix A ("Handling of UNIX system calls in Sprite"). The 4.3BSD call
// set is grouped by the policy that applies to a remote process. Calls the
// simulation actually models are dispatched through this table; the rest
// document the classification (and are exercised generically by the
// conformance tests).
var SyscallTable = map[string]HandlingPolicy{
	// Local: depend only on state carried in the PCB.
	"getpid": PolicyLocal, "getppid": PolicyLocal, "getuid": PolicyLocal,
	"geteuid": PolicyLocal, "getgid": PolicyLocal, "umask": PolicyLocal,
	"sbrk": PolicyLocal, "getrlimit": PolicyLocal, "setrlimit": PolicyLocal,
	"sigsetmask": PolicyLocal, "sigblock": PolicyLocal, "sigpause": PolicyLocal,
	"getwd": PolicyLocal, "sleep": PolicyLocal,

	// File system: location transparent through the shared FS.
	"open": PolicyFile, "close": PolicyFile, "read": PolicyFile,
	"write": PolicyFile, "lseek": PolicyFile, "dup": PolicyFile,
	"dup2": PolicyFile, "pipe": PolicyFile, "stat": PolicyFile,
	"fstat": PolicyFile, "unlink": PolicyFile, "rename": PolicyFile,
	"mkdir": PolicyFile, "rmdir": PolicyFile, "chdir": PolicyFile,
	"chmod": PolicyFile, "chown": PolicyFile, "truncate": PolicyFile,
	"fsync": PolicyFile, "select": PolicyFile, "ioctl": PolicyFile,

	// Forwarded home: process family, host identity, time, signals to
	// other processes, and migration initiation itself.
	"fork": PolicyHome, "wait": PolicyHome, "kill": PolicyHome,
	"gettimeofday": PolicyHome, "settimeofday": PolicyHome,
	"getpgrp": PolicyHome, "setpgrp": PolicyHome, "setpriority": PolicyHome,
	"getpriority": PolicyHome, "gethostname": PolicyHome,
	"getrusage": PolicyHome, "migrate": PolicyHome,

	// Transferred state: correct locally once migration has moved the
	// state they depend on.
	"exec": PolicyTransfer, "exit": PolicyTransfer, "brk": PolicyTransfer,
	"sigvec": PolicyTransfer, "sigreturn": PolicyTransfer,

	// Denied for migrated processes.
	"mmap-shared": PolicyDenied, "ptrace": PolicyDenied,
}

// forwardArgs is the wire format of a home-forwarded kernel call.
type forwardArgs struct {
	PID  PID
	Call string
}

// enter is the common kernel-call prologue: it is the migration point (a
// pending migration is performed before the call executes), the kill point,
// and where the local trap overhead is charged.
func (c *Ctx) enter(call string) error {
	p := c.proc
	if p.killed {
		return ErrKilled
	}
	if req := p.migrateReq; req != nil && !req.atExec {
		p.migrateReq = nil
		if err := p.cur.migrateSelf(c.env, p, req); err != nil {
			req.done.Complete(nil, err)
			if p.crashed || p.killed {
				return fmt.Errorf("migrate %v: %w", p.pid, err)
			}
			// The abort path restored the process on the source; the
			// requester learns of the failure, the process runs on.
		} else {
			// Complete before rehoming: the requester waits on the source
			// shard, where this activity still runs.
			req.done.Complete(p.cur.host, nil)
			if err := p.confinedResume(c.env); err != nil {
				return err
			}
		}
	}
	// Kernel-call entry is also the signal-delivery point.
	if err := c.deliverPending(); err != nil {
		return err
	}
	if d := p.cur.params.SyscallCPU; d > 0 {
		if err := p.cur.cpu.Compute(c.env, d); err != nil {
			return err
		}
		p.cpuUsed += d
	}
	// The Remote UNIX baseline: every call of a foreign process pays a
	// round trip home, regardless of its Appendix-A classification.
	c.forwarded = false
	if p.cur.forwardAll && p.Foreign() {
		if err := c.forwardHome(call); err != nil {
			return err
		}
		c.forwarded = true
	}
	return nil
}

// forwardHome charges a home-forwarded call's round trip when the process is
// foreign. The home kernel's handler does the (trivial) work; the latency is
// the point.
func (c *Ctx) forwardHome(call string) error {
	p := c.proc
	if !p.Foreign() || c.forwarded {
		return nil
	}
	_, err := p.cur.ep.Call(c.env, p.home.host, "k.forward", forwardArgs{PID: p.pid, Call: call}, 64)
	if err != nil {
		return fmt.Errorf("forward %s home: %w", call, err)
	}
	p.cur.stats.ForwardedCalls++
	return nil
}

// Syscall enters the kernel for a named call with no effect beyond the
// entry itself: trap cost, pending migration, and signal delivery. Services
// built outside the core package (pseudo-devices, for instance) use it so
// their operations are real kernel calls with real migration points.
func (c *Ctx) Syscall(name string) error { return c.enter(name) }

// --- Process identity and time ---

// GetPID returns the caller's pid (local policy: pid travels in the PCB).
func (c *Ctx) GetPID() (PID, error) {
	if err := c.enter("getpid"); err != nil {
		return NilPID, err
	}
	return c.proc.pid, nil
}

// GetTimeOfDay returns the current time, forwarded home for foreign
// processes so that a process family observes one clock.
func (c *Ctx) GetTimeOfDay() (time.Duration, error) {
	if err := c.enter("gettimeofday"); err != nil {
		return 0, err
	}
	if err := c.forwardHome("gettimeofday"); err != nil {
		return 0, err
	}
	return c.env.Now(), nil
}

// GetHostname returns the *home* host's name: Sprite forwards host-identity
// calls so migration stays invisible to the process.
func (c *Ctx) GetHostname() (string, error) {
	if err := c.enter("gethostname"); err != nil {
		return "", err
	}
	if err := c.forwardHome("gethostname"); err != nil {
		return "", err
	}
	return c.proc.home.host.String(), nil
}

// --- Compute ---

// Compute consumes d of CPU time on the current host, checking for kill and
// migration at every scheduling quantum: quanta are the migration points for
// compute-bound processes.
func (c *Ctx) Compute(d time.Duration) error {
	p := c.proc
	for d > 0 {
		if p.killed {
			return ErrKilled
		}
		if req := p.migrateReq; req != nil && !req.atExec {
			p.migrateReq = nil
			if err := p.cur.migrateSelf(c.env, p, req); err != nil {
				req.done.Complete(nil, err)
				if p.crashed || p.killed {
					return fmt.Errorf("migrate %v: %w", p.pid, err)
				}
			} else {
				req.done.Complete(p.cur.host, nil)
				if err := p.confinedResume(c.env); err != nil {
					return err
				}
			}
		}
		if err := c.deliverPending(); err != nil {
			return err
		}
		slice := p.cur.params.CPUQuantum
		if d < slice {
			slice = d
		}
		if err := p.cur.cpu.Compute(c.env, slice); err != nil {
			return err
		}
		p.cpuUsed += slice
		d -= slice
	}
	if p.killed {
		return ErrKilled
	}
	return c.deliverPending()
}

// TouchHeap references n heap pages starting at page lo; write dirties them.
// Faults are serviced by the current segment pager (the file system in
// steady state; a strategy-specific pager right after migration).
func (c *Ctx) TouchHeap(lo, n int, write bool) error {
	if err := c.enter("brk"); err != nil {
		return err
	}
	return c.proc.space.TouchRange(c.env, c.proc.space.Heap, lo, lo+n, write)
}

// TouchCode references the first n code pages (program text execution).
func (c *Ctx) TouchCode(n int) error {
	if err := c.enter("brk"); err != nil {
		return err
	}
	return c.proc.space.TouchRange(c.env, c.proc.space.Code, 0, n, false)
}

// --- File system calls (location transparent through fs) ---

// Open opens a path (relative paths resolve against the working
// directory, which migrates with the PCB) and returns a file descriptor.
func (c *Ctx) Open(path string, mode fs.OpenMode, opts fs.OpenOptions) (int, error) {
	if err := c.enter("open"); err != nil {
		return -1, err
	}
	st, err := c.proc.cur.fsc.Open(c.env, c.proc.resolvePath(path), mode, opts)
	if err != nil {
		return -1, err
	}
	return c.proc.addStream(st), nil
}

// Read reads up to n bytes from fd.
func (c *Ctx) Read(fd, n int) ([]byte, error) {
	if err := c.enter("read"); err != nil {
		return nil, err
	}
	st, err := c.proc.stream(fd)
	if err != nil {
		return nil, err
	}
	return c.proc.cur.fsc.Read(c.env, st, n)
}

// Write writes data to fd.
func (c *Ctx) Write(fd int, data []byte) (int, error) {
	if err := c.enter("write"); err != nil {
		return 0, err
	}
	st, err := c.proc.stream(fd)
	if err != nil {
		return 0, err
	}
	return c.proc.cur.fsc.Write(c.env, st, data)
}

// Fsync forces fd's dirty blocks through to its file server, overriding
// the delayed write-back policy. Sprite programs that must survive a
// client crash — checkpointers above all — pay the synchronous server
// traffic for durability, exactly the trade delayed writes otherwise hide.
func (c *Ctx) Fsync(fd int) error {
	if err := c.enter("fsync"); err != nil {
		return err
	}
	st, err := c.proc.stream(fd)
	if err != nil {
		return err
	}
	return c.proc.cur.fsc.FlushFile(c.env, st.FID)
}

// Seek sets fd's access position.
func (c *Ctx) Seek(fd int, off int64) error {
	if err := c.enter("lseek"); err != nil {
		return err
	}
	st, err := c.proc.stream(fd)
	if err != nil {
		return err
	}
	return c.proc.cur.fsc.Seek(c.env, st, off)
}

// Close closes fd.
func (c *Ctx) Close(fd int) error {
	if err := c.enter("close"); err != nil {
		return err
	}
	st, err := c.proc.stream(fd)
	if err != nil {
		return err
	}
	c.proc.files[fd] = nil
	return c.proc.cur.fsc.Close(c.env, st)
}

// Dup duplicates fd, sharing the stream and its access position.
func (c *Ctx) Dup(fd int) (int, error) {
	if err := c.enter("dup"); err != nil {
		return -1, err
	}
	st, err := c.proc.stream(fd)
	if err != nil {
		return -1, err
	}
	if err := c.proc.cur.fsc.Dup(st); err != nil {
		return -1, err
	}
	return c.proc.addStream(st), nil
}

// StatTimes returns a file's size and modification time (virtual time of
// its last server-side change).
func (c *Ctx) StatTimes(path string) (int, time.Duration, error) {
	if err := c.enter("stat"); err != nil {
		return 0, 0, err
	}
	info, err := c.proc.cur.fsc.StatFull(c.env, c.proc.resolvePath(path))
	if err != nil {
		return 0, 0, err
	}
	return info.Size, info.MTime, nil
}

// Rename atomically renames a file (within one server's domain).
func (c *Ctx) Rename(from, to string) error {
	if err := c.enter("rename"); err != nil {
		return err
	}
	return c.proc.cur.fsc.Rename(c.env, c.proc.resolvePath(from), c.proc.resolvePath(to))
}

// ReadDir lists a directory's immediate children.
func (c *Ctx) ReadDir(dir string) ([]string, error) {
	if err := c.enter("readdir"); err != nil {
		return nil, err
	}
	return c.proc.cur.fsc.ReadDir(c.env, c.proc.resolvePath(dir))
}

// Pipe creates a pipe (buffered at the I/O server, so both ends survive
// migration) and returns its read and write file descriptors.
func (c *Ctx) Pipe() (int, int, error) {
	if err := c.enter("pipe"); err != nil {
		return -1, -1, err
	}
	r, w, err := c.proc.cur.fsc.CreatePipe(c.env)
	if err != nil {
		return -1, -1, err
	}
	return c.proc.addStream(r), c.proc.addStream(w), nil
}

// Stat returns a file's size.
func (c *Ctx) Stat(path string) (int, error) {
	if err := c.enter("stat"); err != nil {
		return 0, err
	}
	_, size, err := c.proc.cur.fsc.Stat(c.env, c.proc.resolvePath(path))
	return size, err
}

// Remove unlinks a path.
func (c *Ctx) Remove(path string) error {
	if err := c.enter("unlink"); err != nil {
		return err
	}
	return c.proc.cur.fsc.Remove(c.env, c.proc.resolvePath(path))
}

// --- Process management (forwarded home) ---

// Fork creates a child process running prog on the caller's current host.
// Pid allocation and family bookkeeping happen at home (forwarded for a
// foreign caller), so the child is a home-machine process wherever its
// parent happens to be running — Sprite's transparency rule.
func (c *Ctx) Fork(name string, prog Program, cfg ProcConfig) (*Process, error) {
	if err := c.enter("fork"); err != nil {
		return nil, err
	}
	p := c.proc
	if p.cur.cluster.confined && p.Foreign() {
		// Fork allocates the pid and family record in the home kernel's
		// tables — another shard's state. The confined contract keeps
		// process-family calls on the home host (DESIGN.md §14).
		panic(&sim.ConfinedContractError{
			Op:     "Fork by migrated process",
			Host:   fmt.Sprintf("%v (on %v)", p.pid, p.cur.host),
			Reason: "pid allocation lives on the home shard",
		})
	}
	if err := c.forwardHome("fork"); err != nil {
		return nil, err
	}
	if d := p.cur.params.ForkCPU; d > 0 {
		if err := p.cur.cpu.Compute(c.env, d); err != nil {
			return nil, err
		}
		p.cpuUsed += d
	}
	child, err := p.cur.startProcess(c.env, name, prog, cfg, p)
	if err != nil {
		return nil, err
	}
	return child, nil
}

// Wait blocks until one of the caller's children exits and returns its pid
// and status. Child records live at home.
func (c *Ctx) Wait() (PID, int, error) {
	if err := c.enter("wait"); err != nil {
		return NilPID, 0, err
	}
	if c.proc.cur.cluster.confined && c.proc.Foreign() {
		// waitChild blocks on the home kernel's records — another shard's
		// state and a cross-shard future wake (DESIGN.md §14).
		panic(&sim.ConfinedContractError{
			Op:     "Wait by migrated process",
			Host:   fmt.Sprintf("%v (on %v)", c.proc.pid, c.proc.cur.host),
			Reason: "child records live on the home shard",
		})
	}
	if err := c.forwardHome("wait"); err != nil {
		return NilPID, 0, err
	}
	return c.proc.home.waitChild(c.env, c.proc.pid)
}

// Kill terminates another process. The home machine of the target routes
// the signal to wherever the target currently runs.
func (c *Ctx) Kill(target PID) error {
	if err := c.enter("kill"); err != nil {
		return err
	}
	if err := c.forwardHome("kill"); err != nil {
		return err
	}
	return c.proc.cur.cluster.killPID(c.env, c.proc.cur, target)
}

// Exit terminates the calling program with the given status. It unwinds the
// program by returning a sentinel that the process runner recognizes; the
// deferred teardown in the runner performs the actual exit work.
func (c *Ctx) Exit(status int) error {
	c.proc.exitStatus = status
	return errExit
}

// Migrate asks the kernel to migrate the calling process to target at the
// next migration point (i.e. immediately, since the caller is in a kernel
// call). Initiation is forwarded home, as in Appendix A.
func (c *Ctx) Migrate(target rpc.HostID) error {
	if err := c.enter("migrate"); err != nil {
		return err
	}
	if err := c.forwardHome("migrate"); err != nil {
		return err
	}
	k := c.proc.cur.cluster.KernelOn(target)
	if k == nil {
		return fmt.Errorf("%w: %v", rpc.ErrNoHost, target)
	}
	// The caller is already at a migration point (a kernel-call boundary),
	// so the migration happens inline in its own activity.
	if err := c.proc.cur.migrateNow(c.env, c.proc, k, "explicit"); err != nil {
		return err
	}
	return c.proc.confinedResume(c.env)
}

// Exec replaces the process image: a fresh address space sized by cfg,
// running prog. If an exec-time migration is pending, the new image is
// created directly on the target host — the cheap path that remote
// invocation (pmake) uses, with no virtual memory to transfer.
func (c *Ctx) Exec(name string, prog Program, cfg ProcConfig) error {
	if err := c.enter("exec"); err != nil {
		return err
	}
	p := c.proc
	// Exec-time migration: move before building the new address space.
	if req := p.migrateReq; req != nil && req.atExec {
		p.migrateReq = nil
		if err := p.cur.migrateForExec(c.env, p, req); err != nil {
			if p.crashed || p.killed {
				req.done.Complete(nil, err)
				return fmt.Errorf("exec-migrate %v: %w", p.pid, err)
			}
			// An aborted exec-time migration leaves the process intact on
			// the source; Sprite demotes it to a plain local exec.
			p.cur.cluster.emit(c.env.Now(), "exec-migrate-abort",
				fmt.Sprintf("%v -> %v: %v", p.pid, req.target.host, err))
		}
		req.done.Complete(p.cur.host, nil)
		if err := p.confinedResume(c.env); err != nil {
			return err
		}
	}
	if d := p.cur.params.ExecCPU; d > 0 {
		if err := p.cur.cpu.Compute(c.env, d); err != nil {
			return err
		}
		p.cpuUsed += d
	}
	if err := p.discardSpace(c.env); err != nil {
		return err
	}
	if err := p.buildSpace(c.env, name, cfg); err != nil {
		return err
	}
	p.name = name
	p.program = prog
	p.args = cfg.Args
	// Run the new image inline: the activity is the process.
	err := prog(c)
	if err == errExit {
		err = nil
	}
	if err != nil {
		return err
	}
	return errExit // unwind: the old image never resumes
}

// --- descriptor table helpers ---

func (p *Process) addStream(st *fs.Stream) int {
	for i, s := range p.files {
		if s == nil {
			p.files[i] = st
			return i
		}
	}
	p.files = append(p.files, st)
	return len(p.files) - 1
}

func (p *Process) stream(fd int) (*fs.Stream, error) {
	if fd < 0 || fd >= len(p.files) || p.files[fd] == nil {
		return nil, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	return p.files[fd], nil
}
